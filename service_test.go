package sigmund

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestServiceEndToEnd(t *testing.T) {
	svc := NewService(DemoConfig())
	fleet := GenerateFleet(FleetSpec{NumRetailers: 2, MinItems: 40, MaxItems: 100, Seed: 81})
	for _, r := range fleet {
		svc.AddRetailer(r.Catalog, r.Log)
	}
	if svc.NumRetailers() != 2 {
		t.Fatalf("NumRetailers = %d", svc.NumRetailers())
	}
	report, err := svc.RunDay(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Retailers) != 2 || report.BestMAP() <= 0 {
		t.Fatalf("report: %+v", report)
	}
	if svc.Day() != 1 || svc.SnapshotVersion() != 1 {
		t.Fatalf("day=%d version=%d", svc.Day(), svc.SnapshotVersion())
	}

	// Serve through the facade.
	r0 := fleet[0]
	recs := svc.Recommend(r0.Catalog.Retailer, Context{{Type: View, Item: 0}}, 5)
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}

	// And over HTTP.
	h := svc.Handler()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/recommend?retailer="+string(r0.Catalog.Retailer)+"&context=view:0", nil))
	if w.Code != 200 {
		t.Fatalf("http status %d: %s", w.Code, w.Body.String())
	}

	if wr, rd := svc.StorageStats(); wr == 0 || rd == 0 {
		t.Fatal("no storage traffic recorded")
	}
}

func TestServiceManualCatalog(t *testing.T) {
	// Exercise the catalog-building surface of the public API (Figure 1's
	// phone store).
	tb := NewTaxonomy("Cell Phones")
	smart := tb.AddChild(RootCategory, "Smart Phones")
	android := tb.AddChild(smart, "Android Phones")
	apple := tb.AddChild(smart, "Apple Phones")
	cat := NewCatalog("phone-shop", tb.Build())
	google := cat.AddBrand("Google")
	nexus5x := cat.AddItem(Item{Name: "Nexus 5X", Category: android, Brand: google, Price: 34900, InStock: true})
	nexus6p := cat.AddItem(Item{Name: "Nexus 6P", Category: android, Brand: google, Price: 49900, InStock: true})
	iphone := cat.AddItem(Item{Name: "iPhone 6", Category: apple, Price: 64900, InStock: true})

	log := NewLog()
	for u := 0; u < 30; u++ {
		uid := UserID(u)
		log.Append(Event{User: uid, Item: nexus5x, Type: View, Time: int64(3 * u)})
		log.Append(Event{User: uid, Item: nexus6p, Type: View, Time: int64(3*u + 1)})
		log.Append(Event{User: uid, Item: iphone, Type: View, Time: int64(3*u + 2)})
	}

	svc := NewService(DemoConfig())
	svc.AddRetailer(cat, log)
	if _, err := svc.RunDay(context.Background()); err != nil {
		t.Fatal(err)
	}
	recs := svc.Recommend("phone-shop", Context{{Type: View, Item: nexus5x}}, 5)
	if len(recs) == 0 {
		t.Fatal("no recommendations for the Figure 1 scenario")
	}
}

func TestServiceFromInterchangeFormats(t *testing.T) {
	// End to end from the data formats a real retailer would upload:
	// catalog as JSONL, interactions as CSV.
	catalogJSONL := `{"type":"root","name":"Shoes"}
{"type":"category","name":"Running","parent":"Shoes"}
{"type":"category","name":"Hiking","parent":"Shoes"}
{"type":"item","name":"Roadrunner 2","category":"Running","brand":"Fleet","price_cents":12900}
{"type":"item","name":"Trail Blazer","category":"Hiking","brand":"Summit","price_cents":15900}
{"type":"item","name":"Roadrunner 1","category":"Running","brand":"Fleet","price_cents":9900}
{"type":"item","name":"Peak Pro","category":"Hiking","brand":"Summit","price_cents":18900}
`
	cat, err := LoadCatalogJSONL(strings.NewReader(catalogJSONL), "shoe-shop")
	if err != nil {
		t.Fatal(err)
	}

	var csvB strings.Builder
	csvB.WriteString("user_id,item_id,type,time\n")
	tm := 0
	for u := 0; u < 30; u++ {
		a, b := 0, 2 // runners co-browse the running shoes
		if u%2 == 1 {
			a, b = 1, 3 // hikers co-browse the hiking shoes
		}
		fmt.Fprintf(&csvB, "%d,%d,view,%d\n", u, a, tm)
		fmt.Fprintf(&csvB, "%d,%d,view,%d\n", u, b, tm+1)
		fmt.Fprintf(&csvB, "%d,%d,cart,%d\n", u, a, tm+2)
		tm += 3
	}
	log, err := LoadEventsCSV(strings.NewReader(csvB.String()), cat.NumItems())
	if err != nil {
		t.Fatal(err)
	}

	svc := NewService(DemoConfig())
	svc.AddRetailer(cat, log)
	if _, err := svc.RunDay(context.Background()); err != nil {
		t.Fatal(err)
	}
	recs := svc.Recommend("shoe-shop", Context{{Type: View, Item: 0}}, 2)
	if len(recs) == 0 {
		t.Fatal("no recommendations from interchange-loaded data")
	}
	// A runner viewing Roadrunner 2 should see the other running shoe
	// before hiking gear.
	if recs[0].Item != 2 {
		t.Fatalf("expected the co-browsed running shoe first, got %v", recs)
	}
}

func TestServiceAddRetailerDuplicateIsError(t *testing.T) {
	svc := NewService(DemoConfig())
	r := GenerateFleet(FleetSpec{NumRetailers: 1, MinItems: 40, MaxItems: 60, Seed: 5})[0]
	if err := svc.AddRetailer(r.Catalog, r.Log); err != nil {
		t.Fatal(err)
	}
	if err := svc.AddRetailer(r.Catalog, r.Log); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if svc.NumRetailers() != 1 {
		t.Fatalf("NumRetailers = %d", svc.NumRetailers())
	}
}

func TestServiceChaosModeRunsWithoutFleetFailure(t *testing.T) {
	// Chaos mode floods the stack with injected faults; the fleet-level
	// contract is that RunDay still never fails — individual tenants may
	// degrade (serving stale) but the day always completes.
	cfg := DemoConfig()
	cfg.Chaos = true
	cfg.ChaosSeed = 99
	svc := NewService(cfg)
	fleet := GenerateFleet(FleetSpec{NumRetailers: 3, MinItems: 40, MaxItems: 80, Seed: 82})
	for _, r := range fleet {
		if err := svc.AddRetailer(r.Catalog, r.Log); err != nil {
			t.Fatal(err)
		}
	}
	days := 3
	if testing.Short() {
		days = 2
	}
	for day := 0; day < days; day++ {
		if _, err := svc.RunDay(context.Background()); err != nil {
			t.Fatalf("day %d: chaos caused a fleet-level failure: %v", day, err)
		}
	}
	// Every registered tenant has serving status, and staleness never
	// exceeds the number of elapsed days.
	statuses := svc.TenantStatuses()
	for _, r := range fleet {
		st, ok := statuses[r.Catalog.Retailer]
		if !ok {
			t.Fatalf("%s missing from tenant statuses", r.Catalog.Retailer)
		}
		if age := svc.SnapshotVersion() - st.RecsVersion; age < 0 || age >= int64(days) {
			t.Fatalf("%s: implausible snapshot age %d", r.Catalog.Retailer, age)
		}
	}
}
