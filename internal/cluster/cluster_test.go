package cluster

import (
	"math"
	"testing"
)

func opts() Options {
	return Options{
		Cells: 2, MachinesPerCell: 2,
		Machine:             MachineSpec{CPUs: 4, MemMB: 32 << 10},
		PreemptibleDiscount: 0.3,
		RegularRate:         1.0,
		Seed:                1,
	}
}

func TestSingleTaskCompletes(t *testing.T) {
	c := New(opts())
	sum := c.Run([]*Task{{
		Name: "t1", CPUs: 2, DeclaredMemMB: 1024, Priority: Regular,
		WorkSeconds: 100, Cell: AnyCell,
	}})
	if sum.Failed() != 0 {
		t.Fatalf("task failed: %+v", sum.Results)
	}
	r := sum.Results[0]
	if !r.Completed || r.End != 100 || r.Start != 0 {
		t.Fatalf("result = %+v", r)
	}
	// Regular price: 100s * 2 CPUs * 1.0.
	if r.Cost != 200 {
		t.Fatalf("cost = %v, want 200", r.Cost)
	}
	if sum.Makespan != 100 {
		t.Fatalf("makespan = %v", sum.Makespan)
	}
}

func TestPreemptibleDiscountWithoutPreemptions(t *testing.T) {
	o := opts()
	o.PreemptionRate = 0
	c := New(o)
	sum := c.Run([]*Task{{
		Name: "t", CPUs: 1, DeclaredMemMB: 100, Priority: Preemptible,
		WorkSeconds: 100, Cell: AnyCell,
	}})
	if got := sum.Results[0].Cost; math.Abs(got-30) > 1e-9 {
		t.Fatalf("preemptible cost = %v, want 30 (70%% discount)", got)
	}
}

func TestQueueingWhenClusterFull(t *testing.T) {
	o := opts()
	o.Cells, o.MachinesPerCell = 1, 1
	o.Machine = MachineSpec{CPUs: 1, MemMB: 1024}
	c := New(o)
	tasks := []*Task{
		{Name: "a", CPUs: 1, DeclaredMemMB: 512, Priority: Regular, WorkSeconds: 10, Cell: AnyCell},
		{Name: "b", CPUs: 1, DeclaredMemMB: 512, Priority: Regular, WorkSeconds: 10, Cell: AnyCell},
	}
	sum := c.Run(tasks)
	if sum.Failed() != 0 {
		t.Fatal("tasks failed")
	}
	// One CPU: tasks serialize; makespan 20.
	if sum.Makespan != 20 {
		t.Fatalf("makespan = %v, want 20", sum.Makespan)
	}
	if sum.Results[1].Start != 10 {
		t.Fatalf("second task started at %v, want 10", sum.Results[1].Start)
	}
}

func TestUnplaceableTask(t *testing.T) {
	c := New(opts())
	sum := c.Run([]*Task{{
		Name: "huge", CPUs: 64, DeclaredMemMB: 1, Priority: Regular, WorkSeconds: 1, Cell: AnyCell,
	}})
	if sum.Unplaceable != 1 || sum.Failed() != 1 {
		t.Fatalf("summary = %+v", sum)
	}
}

func TestCellPinning(t *testing.T) {
	c := New(opts())
	sum := c.Run([]*Task{
		{Name: "c0", CPUs: 1, DeclaredMemMB: 10, Priority: Regular, WorkSeconds: 5, Cell: 0},
		{Name: "c1", CPUs: 1, DeclaredMemMB: 10, Priority: Regular, WorkSeconds: 5, Cell: 1},
	})
	if sum.Failed() != 0 {
		t.Fatal("pinned tasks failed")
	}
	if sum.Results[0].Cell != 0 || sum.Results[1].Cell != 1 {
		t.Fatalf("cells = %d, %d", sum.Results[0].Cell, sum.Results[1].Cell)
	}
}

func TestPreemptionWithCheckpointsMakesProgress(t *testing.T) {
	o := opts()
	o.PreemptionRate = 1.0 / 50 // expected preemption every 50s
	o.Seed = 7
	c := New(o)
	sum := c.Run([]*Task{{
		Name: "train", CPUs: 1, DeclaredMemMB: 100, Priority: Preemptible,
		WorkSeconds: 200, CheckpointEvery: 10, CheckpointCost: 0.1,
		Cell: AnyCell,
	}})
	r := sum.Results[0]
	if !r.Completed {
		t.Fatalf("task with checkpoints failed: %+v", r)
	}
	if r.Preemptions == 0 {
		t.Fatal("expected preemptions at this rate")
	}
	// Lost work per preemption is bounded by the checkpoint interval.
	if r.LostWorkSeconds > float64(r.Preemptions)*10+1e-6 {
		t.Fatalf("lost work %v exceeds interval bound for %d preemptions", r.LostWorkSeconds, r.Preemptions)
	}
	// Wall time = work + overhead + lost work, so End >= 200.
	if r.End < 200 {
		t.Fatalf("completed before doing the work: end=%v", r.End)
	}
}

func TestCheckpointIntervalBoundsLostWork(t *testing.T) {
	// Same workload, two checkpoint intervals: the finer interval must
	// lose less work per preemption on average.
	run := func(interval float64) float64 {
		o := opts()
		o.PreemptionRate = 1.0 / 30
		o.Seed = 11
		c := New(o)
		var tasks []*Task
		for i := 0; i < 20; i++ {
			tasks = append(tasks, &Task{
				Name: "t", CPUs: 1, DeclaredMemMB: 10, Priority: Preemptible,
				WorkSeconds: 100, CheckpointEvery: interval, CheckpointCost: 0.05,
				Cell: AnyCell,
			})
		}
		sum := c.Run(tasks)
		if sum.TotalPreemptions == 0 {
			t.Fatal("no preemptions in lost-work comparison")
		}
		return sum.TotalLostWork / float64(sum.TotalPreemptions)
	}
	fine := run(5)
	coarse := run(50)
	if fine >= coarse {
		t.Fatalf("finer checkpoints lost more work: fine=%v coarse=%v", fine, coarse)
	}
}

func TestNoCheckpointLosesAllProgress(t *testing.T) {
	o := opts()
	o.PreemptionRate = 1.0 / 40
	o.Seed = 3
	c := New(o)
	sum := c.Run([]*Task{{
		Name: "naked", CPUs: 1, DeclaredMemMB: 10, Priority: Preemptible,
		WorkSeconds: 60, Cell: AnyCell,
	}})
	r := sum.Results[0]
	if r.Preemptions > 0 && r.LostWorkSeconds == 0 {
		t.Fatal("preempted checkpoint-less task lost no work?")
	}
	if r.Completed && r.End < 60 {
		t.Fatalf("impossible completion time %v", r.End)
	}
}

func TestOOMKillsCoScheduledTasks(t *testing.T) {
	// Two tasks declare 1GB each but actually use 20GB; machine has 32GB.
	// Co-scheduled they blow the machine; the simulator must OOM-kill and
	// (with attempts left) eventually finish them on separate machines...
	// except first-fit keeps co-placing them, so with MaxAttempts=2 they
	// fail — demonstrating the paper's point that declared-memory
	// scheduling cannot be trusted for model training.
	o := opts()
	o.Cells, o.MachinesPerCell = 1, 2
	c := New(o)
	mk := func(name string) *Task {
		return &Task{
			Name: name, CPUs: 1, DeclaredMemMB: 1 << 10, ActualMemMB: 20 << 10,
			Priority: Preemptible, WorkSeconds: 50, MaxAttempts: 2, Cell: AnyCell,
		}
	}
	sum := c.Run([]*Task{mk("big-a"), mk("big-b")})
	if sum.TotalOOMKills == 0 {
		t.Fatal("oversubscribed machine did not OOM")
	}
	// One-retailer-per-machine (declare the real footprint): no OOM.
	honest := func(name string) *Task {
		t := mk(name)
		t.DeclaredMemMB = 20 << 10
		return t
	}
	sum = c.Run([]*Task{honest("big-a"), honest("big-b")})
	if sum.TotalOOMKills != 0 || sum.Failed() != 0 {
		t.Fatalf("honest declarations still OOMed: %+v", sum)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	run := func() Summary {
		o := opts()
		o.PreemptionRate = 1.0 / 20
		o.Seed = 42
		c := New(o)
		var tasks []*Task
		for i := 0; i < 10; i++ {
			tasks = append(tasks, &Task{
				Name: "t", CPUs: 1, DeclaredMemMB: 10, Priority: Preemptible,
				WorkSeconds: 30, CheckpointEvery: 5, Cell: AnyCell,
			})
		}
		return c.Run(tasks)
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan || a.TotalCost != b.TotalCost || a.TotalPreemptions != b.TotalPreemptions {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestPreemptibleCheaperDespiteRework(t *testing.T) {
	// The paper's core economics claim (C6): at moderate preemption rates,
	// pre-emptible + checkpointing beats regular price even counting lost
	// work and checkpoint overhead.
	mkTasks := func(p Priority) []*Task {
		var tasks []*Task
		for i := 0; i < 30; i++ {
			tasks = append(tasks, &Task{
				Name: "t", CPUs: 2, DeclaredMemMB: 100, Priority: p,
				WorkSeconds: 100, CheckpointEvery: 10, CheckpointCost: 0.2,
				Cell: AnyCell,
			})
		}
		return tasks
	}
	o := opts()
	o.PreemptionRate = 1.0 / 200
	o.Seed = 5
	pre := New(o).Run(mkTasks(Preemptible))
	reg := New(o).Run(mkTasks(Regular))
	if pre.Failed() != 0 || reg.Failed() != 0 {
		t.Fatal("tasks failed")
	}
	if pre.TotalCost >= reg.TotalCost {
		t.Fatalf("preemptible cost %v >= regular %v", pre.TotalCost, reg.TotalCost)
	}
}

func TestPriorityAndClusterString(t *testing.T) {
	if Preemptible.String() != "preemptible" || Regular.String() != "regular" {
		t.Fatal("Priority strings")
	}
	c := New(opts())
	if c.String() == "" || c.NumMachines() != 4 {
		t.Fatal("cluster description")
	}
}

func TestUtilization(t *testing.T) {
	o := opts()
	o.Cells, o.MachinesPerCell = 1, 1
	o.Machine = MachineSpec{CPUs: 2, MemMB: 1024}
	c := New(o)
	// One task using 1 of 2 CPUs for the whole run: utilization 0.5.
	sum := c.Run([]*Task{{
		Name: "t", CPUs: 1, DeclaredMemMB: 100, Priority: Regular,
		WorkSeconds: 100, Cell: AnyCell,
	}})
	if got := sum.Utilization(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("Utilization = %v, want 0.5", got)
	}
	if (Summary{}).Utilization() != 0 {
		t.Fatal("empty summary utilization should be 0")
	}
}
