// Package cluster is a discrete-event simulator of the Borg-like cluster
// infrastructure Sigmund runs on (Section II-B): cells (data centers) of
// machines, regular and pre-emptible task priorities, preemption of
// low-priority work when high-priority demand arrives, and per-VM-second
// cost accounting in which pre-emptible capacity costs ~30% of regular
// capacity ("the cost advantage ... can be nearly 70%").
//
// The simulator reproduces the paper's systems trade-offs without real
// hardware: fault-tolerance overhead (checkpoint writes, lost work on
// preemption, re-execution) competes against the pre-emptible discount, so
// experiments C6/C7/C9 in EXPERIMENTS.md can sweep preemption rates and
// checkpoint policies and measure cost and makespan. It also models the
// memory-oversubscription failure mode from Section IV-B2: tasks declare a
// memory request for scheduling, but their actual model footprint may be
// larger; when the actual usage on a machine exceeds its capacity, every
// task on the machine is OOM-killed — exactly why Sigmund trains one
// retailer per machine.
package cluster

import (
	"container/heap"
	"fmt"
	"math"

	"sigmund/internal/obs"
	"sigmund/internal/preempt"
)

// Priority is a task's scheduling class.
type Priority uint8

const (
	// Preemptible tasks run at a steep discount but can be torn down at
	// any moment. Sigmund's training and inference use these.
	Preemptible Priority = iota
	// Regular tasks are never preempted and pay full price.
	Regular
)

func (p Priority) String() string {
	if p == Preemptible {
		return "preemptible"
	}
	return "regular"
}

// MachineSpec describes one machine's capacity.
type MachineSpec struct {
	CPUs  int
	MemMB int64
}

// Options configures a simulated cluster.
type Options struct {
	Cells           int
	MachinesPerCell int
	Machine         MachineSpec
	// PreemptionRate is the expected number of preemption events per
	// second of pre-emptible task runtime (exponential inter-arrivals).
	PreemptionRate float64
	// PreemptibleDiscount is the price of pre-emptible capacity relative
	// to regular (paper: ~0.3).
	PreemptibleDiscount float64
	// RegularRate is the cost of one CPU-second at regular priority.
	RegularRate float64
	Seed        uint64

	// Metrics optionally rolls each Run's summary into an obs.Registry
	// (sigmund_cluster_* metrics). nil disables.
	Metrics *obs.Registry
}

// Defaulted fills zero fields with usable values.
func (o Options) Defaulted() Options {
	if o.Cells <= 0 {
		o.Cells = 1
	}
	if o.MachinesPerCell <= 0 {
		o.MachinesPerCell = 4
	}
	if o.Machine.CPUs <= 0 {
		o.Machine.CPUs = 4
	}
	if o.Machine.MemMB <= 0 {
		o.Machine.MemMB = 32 << 10
	}
	if o.PreemptibleDiscount <= 0 {
		o.PreemptibleDiscount = 0.3
	}
	if o.RegularRate <= 0 {
		o.RegularRate = 1.0
	}
	return o
}

// AnyCell places a task in whichever cell has room.
const AnyCell = -1

// Task is one unit of work submitted to the cluster.
type Task struct {
	Name     string
	CPUs     int
	Priority Priority
	// DeclaredMemMB is the scheduler-visible memory request.
	DeclaredMemMB int64
	// ActualMemMB is the true peak usage (0 = same as declared). The gap
	// between the two is what makes naive co-scheduling dangerous.
	ActualMemMB int64
	// WorkSeconds is the wall-clock compute the task needs.
	WorkSeconds float64
	// CheckpointEvery, when > 0, checkpoints progress on this wall-clock
	// interval; on preemption the task resumes from the last checkpoint.
	CheckpointEvery float64
	// CheckpointCost is the seconds each checkpoint write adds.
	CheckpointCost float64
	// MaxAttempts bounds placements (0 = 100).
	MaxAttempts int
	// Cell pins the task to a cell, or AnyCell.
	Cell int
}

func (t *Task) actualMem() int64 {
	if t.ActualMemMB > 0 {
		return t.ActualMemMB
	}
	return t.DeclaredMemMB
}

func (t *Task) maxAttempts() int {
	if t.MaxAttempts > 0 {
		return t.MaxAttempts
	}
	return 100
}

// TaskResult reports one task's fate.
type TaskResult struct {
	Name      string
	Completed bool
	// Start is when the task first began executing; End is completion (or
	// the time of final failure).
	Start, End float64
	// BilledSeconds is total machine occupancy across attempts.
	BilledSeconds float64
	Cost          float64
	Preemptions   int
	OOMKills      int
	// LostWorkSeconds is work done but rolled back at preemptions.
	LostWorkSeconds float64
	// CheckpointSeconds is the overhead spent writing checkpoints.
	CheckpointSeconds float64
	Cell              int
}

// Summary aggregates a simulation run.
type Summary struct {
	Makespan         float64
	TotalCost        float64
	TotalPreemptions int
	TotalOOMKills    int
	TotalLostWork    float64
	Unplaceable      int
	Results          []TaskResult
	// BilledCPUSeconds is total CPU occupancy billed across all tasks.
	BilledCPUSeconds float64
	// Machines is the fleet size, for utilization math.
	Machines int
	// MachineCPUs is the per-machine CPU capacity.
	MachineCPUs int
}

// Utilization returns billed CPU-seconds over the fleet's CPU-seconds of
// wall time (makespan) — how busy the cluster was. Low utilization on a
// dedicated fleet is the economic argument for using shared pre-emptible
// capacity instead.
func (s Summary) Utilization() float64 {
	denom := s.Makespan * float64(s.Machines*s.MachineCPUs)
	if denom == 0 {
		return 0
	}
	return s.BilledCPUSeconds / denom
}

// Failed returns the number of tasks that did not complete.
func (s Summary) Failed() int {
	n := 0
	for _, r := range s.Results {
		if !r.Completed {
			n++
		}
	}
	return n
}

type machine struct {
	cell     int
	spec     MachineSpec
	freeCPUs int
	freeMem  int64
	running  map[*taskState]struct{}
}

type taskState struct {
	task      *Task
	remaining float64
	attempts  int
	result    TaskResult
	started   bool

	// Current placement.
	machine      *machine
	attemptStart float64
	attemptDur   float64
	attemptCkpts float64 // checkpoint overhead included in attemptDur
	epoch        int     // invalidates stale heap events
}

type event struct {
	at    float64
	kind  eventKind
	ts    *taskState
	epoch int
	seq   int
}

type eventKind uint8

const (
	evFinish eventKind = iota
	evPreempt
)

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h *eventHeap) pop() event   { return heap.Pop(h).(event) }
func (h *eventHeap) push(e event) { heap.Push(h, e) }
func (h eventHeap) empty() bool   { return len(h) == 0 }

// Cluster is a simulated fleet. Create with New, submit with Run.
type Cluster struct {
	opts     Options
	machines []*machine
	// arrivals samples preemption inter-arrival times from the shared
	// model in internal/preempt — the same process the live MapReduce
	// worker substrate uses, so simulated economics and live chaos runs
	// agree on what "a preemption rate" means. Nil when preemption is off.
	arrivals *preempt.Stream
}

// New builds a cluster per opts.
func New(opts Options) *Cluster {
	opts = opts.Defaulted()
	c := &Cluster{opts: opts}
	if opts.PreemptionRate > 0 {
		c.arrivals = preempt.Model{Rate: opts.PreemptionRate, Seed: opts.Seed ^ 0xc1a5}.Stream(0)
	}
	for cell := 0; cell < opts.Cells; cell++ {
		for m := 0; m < opts.MachinesPerCell; m++ {
			c.machines = append(c.machines, &machine{
				cell:     cell,
				spec:     opts.Machine,
				freeCPUs: opts.Machine.CPUs,
				freeMem:  opts.Machine.MemMB,
				running:  make(map[*taskState]struct{}),
			})
		}
	}
	return c
}

// NumMachines returns the fleet size.
func (c *Cluster) NumMachines() int { return len(c.machines) }

// Run simulates the given tasks to completion (or failure) and returns the
// summary. Run may be called repeatedly; each call starts from an idle
// cluster and time zero.
func (c *Cluster) Run(tasks []*Task) Summary {
	for _, m := range c.machines {
		m.freeCPUs = m.spec.CPUs
		m.freeMem = m.spec.MemMB
		for ts := range m.running {
			delete(m.running, ts)
		}
	}
	states := make([]*taskState, len(tasks))
	queue := make([]*taskState, 0, len(tasks))
	var sum Summary
	for i, t := range tasks {
		ts := &taskState{task: t, remaining: t.WorkSeconds}
		ts.result.Name = t.Name
		ts.result.Cell = -1
		states[i] = ts
		if t.CPUs > c.opts.Machine.CPUs || t.DeclaredMemMB > c.opts.Machine.MemMB {
			sum.Unplaceable++
			continue
		}
		queue = append(queue, ts)
	}

	var events eventHeap
	seq := 0
	now := 0.0

	schedule := func() {
		// Alternate placement and OOM detection until a fixed point:
		// OOM kills requeue tasks that may then fit elsewhere. The loop
		// terminates because every kill consumes a bounded attempt.
		for {
			placed := false
			remaining := queue[:0]
			for _, ts := range queue {
				m := c.place(ts)
				if m == nil {
					remaining = append(remaining, ts)
					continue
				}
				c.start(ts, m, now, &events, &seq)
				placed = true
			}
			queue = append([]*taskState(nil), remaining...)

			// OOM detection: actual memory oversubscription kills every
			// task on the machine (Section IV-B2's failure mode).
			oomed := false
			for _, m := range c.machines {
				var actual int64
				for ts := range m.running {
					actual += ts.task.actualMem()
				}
				if actual <= m.spec.MemMB || len(m.running) == 0 {
					continue
				}
				victims := make([]*taskState, 0, len(m.running))
				for ts := range m.running {
					victims = append(victims, ts)
				}
				// Deterministic order.
				for i := 0; i < len(victims); i++ {
					for j := i + 1; j < len(victims); j++ {
						if victims[j].task.Name < victims[i].task.Name {
							victims[i], victims[j] = victims[j], victims[i]
						}
					}
				}
				for _, ts := range victims {
					c.interrupt(ts, now, true)
					oomed = true
					if ts.attempts >= ts.task.maxAttempts() {
						ts.result.End = now
					} else {
						queue = append(queue, ts)
					}
				}
			}
			if !oomed && !placed {
				return
			}
			if !oomed {
				return
			}
		}
	}

	schedule()
	for !events.empty() {
		e := events.pop()
		if e.epoch != e.ts.epoch || e.ts.machine == nil {
			continue // stale
		}
		now = e.at
		ts := e.ts
		switch e.kind {
		case evFinish:
			c.bill(ts, ts.attemptDur, now)
			ts.result.CheckpointSeconds += ts.attemptCkpts
			ts.remaining = 0
			ts.result.Completed = true
			ts.result.End = now
			c.free(ts)
		case evPreempt:
			c.interrupt(ts, now, false)
			if ts.attempts >= ts.task.maxAttempts() {
				ts.result.End = now
			} else {
				queue = append(queue, ts)
			}
		}
		schedule()
	}

	for _, ts := range states {
		sum.Results = append(sum.Results, ts.result)
		sum.TotalCost += ts.result.Cost
		sum.TotalPreemptions += ts.result.Preemptions
		sum.TotalOOMKills += ts.result.OOMKills
		sum.TotalLostWork += ts.result.LostWorkSeconds
		sum.BilledCPUSeconds += ts.result.BilledSeconds * float64(ts.task.CPUs)
		if ts.result.End > sum.Makespan {
			sum.Makespan = ts.result.End
		}
	}
	sum.Machines = len(c.machines)
	sum.MachineCPUs = c.opts.Machine.CPUs
	c.report(sum)
	return sum
}

// report rolls one Run's summary into the configured registry. Simulation
// runs are discrete, so counters advance once per Run rather than per
// simulated event.
func (c *Cluster) report(sum Summary) {
	reg := c.opts.Metrics
	if reg == nil {
		return
	}
	reg.Counter("sigmund_cluster_runs_total", "Cluster simulation runs completed.").Inc()
	reg.Counter("sigmund_cluster_tasks_total", "Simulated tasks, by outcome.",
		obs.L("outcome", "completed")).Add(int64(len(sum.Results) - sum.Failed()))
	reg.Counter("sigmund_cluster_tasks_total", "Simulated tasks, by outcome.",
		obs.L("outcome", "failed")).Add(int64(sum.Failed()))
	reg.Counter("sigmund_cluster_preemptions_total", "Simulated preemption events.").Add(int64(sum.TotalPreemptions))
	reg.Counter("sigmund_cluster_oom_kills_total", "Simulated OOM kills from memory oversubscription.").Add(int64(sum.TotalOOMKills))
	reg.Counter("sigmund_cluster_unplaceable_total", "Tasks that could never be placed.").Add(int64(sum.Unplaceable))
	reg.Gauge("sigmund_cluster_last_makespan_seconds", "Makespan of the most recent simulation run.").Set(sum.Makespan)
	reg.Gauge("sigmund_cluster_last_cost", "Total cost of the most recent simulation run.").Set(sum.TotalCost)
	reg.Gauge("sigmund_cluster_last_utilization", "Fleet utilization of the most recent simulation run.").Set(sum.Utilization())
}

// place finds a machine (first fit, honoring cell pinning) or nil.
func (c *Cluster) place(ts *taskState) *machine {
	for _, m := range c.machines {
		if ts.task.Cell != AnyCell && ts.task.Cell != m.cell {
			continue
		}
		if m.freeCPUs >= ts.task.CPUs && m.freeMem >= ts.task.DeclaredMemMB {
			return m
		}
	}
	return nil
}

func (c *Cluster) start(ts *taskState, m *machine, now float64, events *eventHeap, seq *int) {
	m.freeCPUs -= ts.task.CPUs
	m.freeMem -= ts.task.DeclaredMemMB
	m.running[ts] = struct{}{}
	ts.machine = m
	ts.attempts++
	ts.epoch++
	ts.attemptStart = now
	if !ts.started {
		ts.started = true
		ts.result.Start = now
		ts.result.Cell = m.cell
	}
	ckptOverhead := 0.0
	if ts.task.CheckpointEvery > 0 {
		ckptOverhead = math.Floor(ts.remaining/ts.task.CheckpointEvery) * ts.task.CheckpointCost
	}
	ts.attemptDur = ts.remaining + ckptOverhead
	ts.attemptCkpts = ckptOverhead

	*seq++
	events.push(event{at: now + ts.attemptDur, kind: evFinish, ts: ts, epoch: ts.epoch, seq: *seq})
	if ts.task.Priority == Preemptible && c.arrivals != nil {
		dt := c.arrivals.NextSeconds()
		if dt < ts.attemptDur {
			*seq++
			events.push(event{at: now + dt, kind: evPreempt, ts: ts, epoch: ts.epoch, seq: *seq})
		}
	}
}

// interrupt rolls a running task back to its last checkpoint and frees its
// machine. oom marks the interruption as an OOM kill rather than a
// preemption.
func (c *Cluster) interrupt(ts *taskState, now float64, oom bool) {
	elapsed := now - ts.attemptStart
	c.bill(ts, elapsed, now)
	// Split elapsed time into real work and checkpoint overhead
	// proportionally, then roll back to the last completed checkpoint.
	workFrac := 1.0
	if ts.attemptDur > 0 {
		workFrac = ts.remaining / ts.attemptDur
	}
	workDone := elapsed * workFrac
	saved := 0.0
	if ts.task.CheckpointEvery > 0 {
		saved = math.Floor(workDone/ts.task.CheckpointEvery) * ts.task.CheckpointEvery
		ts.result.CheckpointSeconds += math.Floor(workDone/ts.task.CheckpointEvery) * ts.task.CheckpointCost
	}
	ts.result.LostWorkSeconds += workDone - saved
	ts.remaining -= saved
	if oom {
		ts.result.OOMKills++
	} else {
		ts.result.Preemptions++
	}
	c.free(ts)
	ts.epoch++ // invalidate any outstanding finish event
}

func (c *Cluster) free(ts *taskState) {
	m := ts.machine
	if m == nil {
		return
	}
	m.freeCPUs += ts.task.CPUs
	m.freeMem += ts.task.DeclaredMemMB
	delete(m.running, ts)
	ts.machine = nil
}

func (c *Cluster) bill(ts *taskState, seconds, _ float64) {
	rate := c.opts.RegularRate
	if ts.task.Priority == Preemptible {
		rate *= c.opts.PreemptibleDiscount
	}
	ts.result.BilledSeconds += seconds
	ts.result.Cost += seconds * float64(ts.task.CPUs) * rate
}

// String summarizes the fleet for logs.
func (c *Cluster) String() string {
	return fmt.Sprintf("cluster{cells=%d machines=%d cpus=%d mem=%dMB rate=%g/%g}",
		c.opts.Cells, len(c.machines), c.opts.Machine.CPUs, c.opts.Machine.MemMB,
		c.opts.RegularRate, c.opts.RegularRate*c.opts.PreemptibleDiscount)
}
