package dfs

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
)

// journalFile builds a well-formed on-disk journal holding the given
// payloads, for seeding the fuzz corpus.
func journalFile(payloads ...[]byte) []byte {
	buf := append([]byte{}, journalMagic...)
	var b4 [4]byte
	for _, p := range payloads {
		binary.LittleEndian.PutUint32(b4[:], uint32(len(p)))
		buf = append(buf, b4[:]...)
		binary.LittleEndian.PutUint32(b4[:], crc32.ChecksumIEEE(p))
		buf = append(buf, b4[:]...)
		buf = append(buf, p...)
	}
	return buf
}

// FuzzIntegrityFooter feeds arbitrary bytes to StripFooter. Whatever the
// bytes, stripping must never panic, and the three outcomes must be
// mutually consistent: a verified strip round-trips through AppendFooter
// byte-identically, a legacy result returns the input unchanged, and an
// error is always the typed ErrCorrupt. Flipping any single bit of a
// valid footered blob must never yield a verified strip of the original
// payload.
func FuzzIntegrityFooter(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("short"))
	f.Add(AppendFooter(nil))
	f.Add(AppendFooter([]byte("payload")))
	tampered := AppendFooter([]byte("payload"))
	tampered[0] ^= 1
	f.Add(tampered)
	// Footer magic with garbage length/checksum fields.
	f.Add(append(bytes.Repeat([]byte{0xaa}, 8), []byte("SFT1\xff\xff\xff\xff\xff\xff\xff\xff\x00\x00\x00\x00")...))

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, verified, err := StripFooter(data)
		switch {
		case err != nil:
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("error not ErrCorrupt: %v", err)
			}
		case verified:
			if !bytes.Equal(AppendFooter(payload), data) {
				t.Fatal("verified strip does not round-trip through AppendFooter")
			}
		default:
			if !bytes.Equal(payload, data) {
				t.Fatal("legacy strip modified the blob")
			}
		}
		// Single-bit rot of a freshly footered image must always be caught
		// (the footer is long enough that a flip inside it demotes the blob
		// to legacy — but never to a *verified* wrong payload).
		blob := AppendFooter(data)
		for _, bit := range []int{0, len(blob)*8 - 1, (len(blob) * 8) / 2} {
			flipped := bytes.Clone(blob)
			flipped[bit/8] ^= 1 << (bit % 8)
			p, v, _ := StripFooter(flipped)
			if v && bytes.Equal(p, data) {
				t.Fatalf("bit %d flip went undetected as verified original", bit)
			}
		}
	})
}

// FuzzJournal feeds arbitrary bytes to OpenJournal as a pre-existing
// journal file. Whatever the bytes, opening must not panic; when it
// succeeds, the journal must stay appendable and a reopen must return
// exactly the recovered records plus the appended one.
func FuzzJournal(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("SJL"))
	f.Add(journalMagic)
	f.Add(journalFile([]byte(`{"type":"intent"}`), []byte(`{"type":"done"}`)))
	// Torn tail: a frame that claims more bytes than exist.
	f.Add(append(journalFile([]byte("rec-0")), 0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0))
	// Corrupt tail: flip a payload byte after the checksum was computed.
	corrupt := journalFile([]byte("rec-0"), []byte("rec-1"))
	corrupt[len(corrupt)-1] ^= 0xff
	f.Add(corrupt)
	f.Add([]byte("XXXX not a journal"))

	f.Fuzz(func(t *testing.T, data []byte) {
		fs := New()
		if err := fs.Write("days/day-0/journal", data); err != nil {
			t.Fatalf("seeding file: %v", err)
		}
		j, recs, err := OpenJournal(fs, "days/day-0/journal")
		if err != nil {
			if !errors.Is(err, ErrJournalMagic) {
				t.Fatalf("OpenJournal: unexpected error class: %v", err)
			}
			return // not a journal; nothing to recover
		}
		if j.Len() != len(recs) {
			t.Fatalf("Len() = %d, recovered %d records", j.Len(), len(recs))
		}
		// The journal must remain appendable from the recovered state.
		probe := []byte("probe-record")
		idx, err := j.Append(probe)
		if err != nil {
			t.Fatalf("Append after recovery: %v", err)
		}
		if idx != len(recs) {
			t.Fatalf("Append index = %d, want %d", idx, len(recs))
		}
		// A reopen sees the recovered prefix plus the new record, exactly.
		_, again, err := OpenJournal(fs, "days/day-0/journal")
		if err != nil {
			t.Fatalf("reopen after append: %v", err)
		}
		if len(again) != len(recs)+1 {
			t.Fatalf("reopen found %d records, want %d", len(again), len(recs)+1)
		}
		for i := range recs {
			if !bytes.Equal(again[i], recs[i]) {
				t.Fatalf("record %d changed across reopen", i)
			}
		}
		if !bytes.Equal(again[len(recs)], probe) {
			t.Fatalf("appended record corrupted: %q", again[len(recs)])
		}
	})
}
