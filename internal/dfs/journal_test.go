package dfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"strings"
	"testing"

	"sigmund/internal/faults"
)

func TestJournalAppendAndReopen(t *testing.T) {
	fs := New()
	j, recs, err := OpenJournal(fs, "days/0/journal")
	if err != nil {
		t.Fatalf("open fresh: %v", err)
	}
	if len(recs) != 0 || j.Len() != 0 {
		t.Fatalf("fresh journal not empty: %d recs, Len %d", len(recs), j.Len())
	}
	want := [][]byte{[]byte(`{"type":"intent"}`), []byte(""), []byte(`{"type":"done"}`)}
	for i, p := range want {
		idx, err := j.Append(p)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if idx != i {
			t.Fatalf("append %d: got index %d", i, idx)
		}
	}
	if j.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", j.Len(), len(want))
	}

	// A fresh open (the restarted coordinator) sees every record, in order.
	j2, recs, err := OpenJournal(fs, "days/0/journal")
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if len(recs) != len(want) {
		t.Fatalf("reopen: %d records, want %d", len(recs), len(want))
	}
	for i := range want {
		if string(recs[i]) != string(want[i]) {
			t.Fatalf("record %d = %q, want %q", i, recs[i], want[i])
		}
	}
	// And appending to the reopened journal continues the sequence.
	idx, err := j2.Append([]byte("next"))
	if err != nil || idx != len(want) {
		t.Fatalf("append after reopen: idx %d err %v", idx, err)
	}
}

func TestJournalTruncatesTornTail(t *testing.T) {
	fs := New()
	j, _, err := OpenJournal(fs, "j")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := j.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	data, err := fs.Read("j")
	if err != nil {
		t.Fatal(err)
	}

	// Simulate the torn tails a real filesystem can produce: a partial
	// header, a frame cut mid-payload, and a frame whose payload bytes were
	// garbled in place.
	cases := []struct {
		name string
		mut  func([]byte) []byte
		want int // surviving records
	}{
		{"partial header", func(b []byte) []byte { return append(b, 0x09, 0x00) }, 3},
		{"frame cut mid-payload", func(b []byte) []byte { return b[:len(b)-2] }, 2},
		{"garbled tail payload", func(b []byte) []byte {
			cp := append([]byte(nil), b...)
			cp[len(cp)-1] ^= 0xff
			return cp
		}, 2},
		{"tail length overflows file", func(b []byte) []byte {
			cp := append([]byte(nil), b...)
			var hdr [8]byte
			binary.LittleEndian.PutUint32(hdr[0:], 1<<30)
			binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(nil))
			return append(cp, hdr[:]...)
		}, 3},
		{"shorter than magic", func([]byte) []byte { return []byte("SJ") }, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs2 := New()
			if err := fs2.Write("j", tc.mut(data)); err != nil {
				t.Fatal(err)
			}
			j2, recs, err := OpenJournal(fs2, "j")
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			if len(recs) != tc.want {
				t.Fatalf("got %d records, want %d", len(recs), tc.want)
			}
			// The truncated journal stays appendable and the new record
			// lands right after the surviving prefix.
			if idx, err := j2.Append([]byte("after")); err != nil || idx != tc.want {
				t.Fatalf("append after truncation: idx %d err %v", idx, err)
			}
			_, recs, err = OpenJournal(fs2, "j")
			if err != nil || len(recs) != tc.want+1 {
				t.Fatalf("reopen after repair: %d recs, err %v", len(recs), err)
			}
			if string(recs[tc.want]) != "after" {
				t.Fatalf("appended record = %q", recs[tc.want])
			}
		})
	}
}

func TestJournalRejectsForeignFile(t *testing.T) {
	fs := New()
	if err := fs.Write("j", []byte("definitely not a journal")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(fs, "j"); !errors.Is(err, ErrJournalMagic) {
		t.Fatalf("err = %v, want ErrJournalMagic", err)
	}
}

func TestJournalAppendFailureRollsBack(t *testing.T) {
	fs := New()
	j, _, err := OpenJournal(fs, "j")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append([]byte("first")); err != nil {
		t.Fatal(err)
	}
	fs.SetInjector(faults.NewInjector(1, faults.Rule{
		Ops: []faults.Op{faults.OpWrite}, Kind: faults.Error, EveryNth: 1, Times: 1,
	}))
	if _, err := j.Append([]byte("doomed")); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("append under injection: %v, want ErrInjected", err)
	}
	// The failed frame must not linger in memory: the retried append gets
	// the same index and the durable file holds exactly one copy.
	idx, err := j.Append([]byte("doomed"))
	if err != nil || idx != 1 {
		t.Fatalf("retried append: idx %d err %v", idx, err)
	}
	_, recs, err := OpenJournal(fs, "j")
	if err != nil || len(recs) != 2 {
		t.Fatalf("reopen: %d recs, err %v", len(recs), err)
	}
	if string(recs[1]) != "doomed" {
		t.Fatalf("record 1 = %q", recs[1])
	}
}

func TestCheckpointerSaveFailureLeavesNoTmp(t *testing.T) {
	fs := New()
	c := NewCheckpointer(fs, "task/ckpt")

	// Failing write callback.
	if _, err := c.Save(func(io.Writer) error { return errors.New("boom") }); err == nil {
		t.Fatal("Save with failing writer succeeded")
	}
	// Rename failure after a committed temp — the leak this guards against.
	fs.SetInjector(faults.NewInjector(1, faults.Rule{
		Ops: []faults.Op{faults.OpRename}, Kind: faults.Error, EveryNth: 1, Times: 1,
	}))
	if _, err := c.Save(func(w io.Writer) error { _, err := w.Write([]byte("state")); return err }); err == nil {
		t.Fatal("Save with failing rename succeeded")
	}
	for _, p := range fs.List("task/ckpt/") {
		if strings.HasSuffix(p, ".tmp") {
			t.Fatalf("leaked temp file %s", p)
		}
	}
	// The checkpointer still works after the failures.
	path, err := c.Save(func(w io.Writer) error { _, err := w.Write([]byte("state")); return err })
	if err != nil {
		t.Fatalf("Save after failures: %v", err)
	}
	if got, _ := c.Latest(); got != path {
		t.Fatalf("Latest = %q, want %q", got, path)
	}
}

func TestScanLatestCollectsOrphanTmp(t *testing.T) {
	fs := New()
	// A crashed writer left a committed checkpoint and an orphaned temp.
	if err := fs.Write("task/ckpt/ckpt.3", []byte("good")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("task/ckpt/ckpt.4.tmp", []byte("torn")); err != nil {
		t.Fatal(err)
	}
	c := NewCheckpointer(fs, "task/ckpt")
	if path, ok := c.Latest(); !ok || path != "task/ckpt/ckpt.3" {
		t.Fatalf("Latest = %q ok=%v", path, ok)
	}
	if fs.Exists("task/ckpt/ckpt.4.tmp") {
		t.Fatal("orphaned .tmp survived scanLatest")
	}
	// The restarted sequence continues past the committed checkpoint.
	path, err := c.Save(func(w io.Writer) error { _, err := w.Write([]byte("next")); return err })
	if err != nil {
		t.Fatal(err)
	}
	if path != "task/ckpt/ckpt.4" {
		t.Fatalf("next checkpoint at %q", path)
	}
}
