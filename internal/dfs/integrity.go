package dfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Every blob the FS stores carries a self-describing integrity footer so
// that at-rest corruption is a detected, typed event (ErrCorrupt) instead
// of a silent wrong answer. The footer is appended to the payload:
//
//	payload | magic "SFT1" (4B) | payload length u64 LE (8B) | CRC32-C of payload u32 LE (4B)
//
// Write appends it; Read/Open verify and strip it, so callers round-trip
// payloads unchanged and never see footer bytes. Blobs without the magic
// are "legacy" (pre-footer fixtures, hand-written test files) and are
// returned as-is — the escape hatch that keeps old fixtures and
// carry-forward manifests loadable.
//
// The footer detects bit flips in the payload (CRC mismatch) and in the
// length echo. Two corruption shapes can destroy the footer itself —
// truncation that cuts into it, and a flip inside the magic — making the
// blob look legacy. Those are caught by the second layer: every structured
// reader (segment.Parse's exact-length check, the manifest/model/recs
// decoders, the journal's per-record CRCs) rejects the now-misshapen
// bytes, and the store classifies any decode failure of a referenced blob
// as the same integrity event as ErrCorrupt.

// FooterLen is the size of the integrity footer appended to every stored
// blob.
const FooterLen = 16

// footerMagic identifies (and versions) the integrity footer.
var footerMagic = []byte("SFT1")

// footerTable is the CRC32 polynomial for payload checksums. Castagnoli
// rather than IEEE so a footer CRC is never confused with the journal's
// per-record IEEE CRCs.
var footerTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt is returned when a blob's integrity footer is present but
// does not verify — the stored bytes are not the bytes that were written.
// It is distinct from ErrNotExist: the file is there, but it is poison.
var ErrCorrupt = errors.New("dfs: blob failed integrity verification")

// AppendFooter returns payload with its integrity footer appended. The
// input slice is not modified. Exported for tests and fuzz harnesses that
// need to craft footered (or deliberately mis-footered) blobs; normal
// callers just use FS.Write, which appends the footer itself.
func AppendFooter(payload []byte) []byte {
	out := make([]byte, 0, len(payload)+FooterLen)
	out = append(out, payload...)
	out = append(out, footerMagic...)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, footerTable))
	return out
}

// StripFooter verifies blob's integrity footer and returns the payload
// with the footer removed. verified reports whether a footer was present
// and checked: (payload, true, nil) for a good footer, (blob, false, nil)
// for a legacy blob with no footer, and (nil, false, err wrapping
// ErrCorrupt) when the footer is present but the length echo or checksum
// disagrees with the payload.
func StripFooter(blob []byte) (payload []byte, verified bool, err error) {
	if len(blob) < FooterLen {
		return blob, false, nil
	}
	f := blob[len(blob)-FooterLen:]
	if string(f[:4]) != string(footerMagic) {
		return blob, false, nil
	}
	payload = blob[:len(blob)-FooterLen]
	echo := binary.LittleEndian.Uint64(f[4:12])
	if echo != uint64(len(payload)) {
		return nil, false, fmt.Errorf("footer length echo %d != payload length %d: %w",
			echo, len(payload), ErrCorrupt)
	}
	want := binary.LittleEndian.Uint32(f[12:16])
	if got := crc32.Checksum(payload, footerTable); got != want {
		return nil, false, fmt.Errorf("payload checksum %08x != footer %08x: %w",
			got, want, ErrCorrupt)
	}
	return payload, true, nil
}
