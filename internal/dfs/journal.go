package dfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
)

// Journal is a durable, append-only record log over the shared filesystem
// — the coordinator's write-ahead log for a pipeline day. Records are
// framed as
//
//	[4-byte LE payload length][4-byte LE CRC32 (IEEE) of payload][payload]
//
// after a 4-byte magic header. The simulated FS commits whole files
// atomically, so a torn tail cannot occur here; the framing defends the
// format against real filesystems, where a crashed writer can leave a
// partial final record. OpenJournal truncates any undecodable suffix
// (short frame, bad checksum) rather than failing: journal consumers must
// treat records as completion markers for work whose artifacts are
// already durable, so losing a suffix only re-runs work, never corrupts
// it.
//
// The FS has no append primitive, so each Append rewrites the whole file.
// Day journals hold tens of small records; the rewrite cost is negligible
// next to the work each record commits.
type Journal struct {
	fs   *FS
	path string

	mu  sync.Mutex
	buf []byte // encoded journal, including magic header
	n   int    // decoded record count
}

// journalMagic versions the on-disk format.
var journalMagic = []byte("SJL1")

// ErrJournalMagic reports a file that is not a journal (or a journal from
// an incompatible format version).
var ErrJournalMagic = errors.New("dfs: bad journal magic")

const journalHeaderLen = 8 // length + crc per record

// OpenJournal opens (or prepares to create) the journal at path and
// returns it together with the payloads already committed there, in
// append order. A missing file yields an empty journal. A trailing
// undecodable region — torn frame or checksum mismatch — is truncated:
// subsequent Appends rewrite the file from the last good record.
func OpenJournal(fs *FS, path string) (*Journal, [][]byte, error) {
	j := &Journal{fs: fs, path: path}
	j.buf = append(j.buf, journalMagic...)
	data, err := fs.Read(path)
	if errors.Is(err, ErrNotExist) {
		return j, nil, nil
	}
	if err != nil {
		// This includes ErrCorrupt: the whole-file footer did not verify,
		// so even the "good prefix" cannot be trusted — unlike a torn tail,
		// which only loses a suffix. Propagate so the caller re-runs the
		// day from scratch instead of resuming from poisoned state.
		return nil, nil, fmt.Errorf("opening journal %s: %w", path, err)
	}
	recs, good, err := decodeJournal(data)
	if err != nil {
		return nil, nil, fmt.Errorf("opening journal %s: %w", path, err)
	}
	if good < len(journalMagic) {
		// File shorter than the header: treat as empty, keep the magic.
		good = 0
		j.buf = append(j.buf[:0], journalMagic...)
	} else {
		j.buf = append(j.buf[:0], data[:good]...)
	}
	j.n = len(recs)
	return j, recs, nil
}

// decodeJournal walks the framed records in data and returns the decoded
// payloads plus the byte offset of the last cleanly framed record. Any
// suffix that does not decode — including a file too short to hold the
// magic — is simply not counted; the caller truncates there.
func decodeJournal(data []byte) (recs [][]byte, good int, err error) {
	if len(data) < len(journalMagic) {
		return nil, 0, nil
	}
	for i, b := range journalMagic {
		if data[i] != b {
			return nil, 0, ErrJournalMagic
		}
	}
	off := len(journalMagic)
	good = off
	for off+journalHeaderLen <= len(data) {
		length := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		end := off + journalHeaderLen + int(length)
		if end < off || end > len(data) {
			break // torn tail: frame claims more bytes than exist
		}
		payload := data[off+journalHeaderLen : end]
		if crc32.ChecksumIEEE(payload) != sum {
			break // corrupt tail: discard from here
		}
		cp := make([]byte, len(payload))
		copy(cp, payload)
		recs = append(recs, cp)
		off = end
		good = off
	}
	return recs, good, nil
}

// Append durably commits one record and returns its zero-based index. On
// write failure the in-memory image is rolled back, so a retried Append
// of the same payload cannot double-commit.
func (j *Journal) Append(payload []byte) (int, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	n0 := len(j.buf)
	var hdr [journalHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	j.buf = append(j.buf, hdr[:]...)
	j.buf = append(j.buf, payload...)
	if err := j.fs.Write(j.path, j.buf); err != nil {
		j.buf = j.buf[:n0]
		return 0, err
	}
	idx := j.n
	j.n++
	return idx, nil
}

// Len returns the number of committed records.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// Path returns the journal's filesystem path.
func (j *Journal) Path() string { return j.path }
