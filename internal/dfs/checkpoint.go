package dfs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Checkpointer implements the paper's checkpoint discipline (Section
// IV-B3): checkpoints are written asynchronously on a wall-clock interval,
// committed atomically (write temp, then rename), and only the latest is
// kept — "as soon as a new checkpoint is written, we garbage-collect the
// previous checkpoint".
//
// Checkpoint paths look like <base>/ckpt.<seq>; the temp file is
// <base>/ckpt.<seq>.tmp and is renamed into place so a reader never
// observes a torn checkpoint.
type Checkpointer struct {
	fs   *FS
	base string

	mu   sync.Mutex
	seq  int
	last string
}

// NewCheckpointer returns a checkpointer rooted at base. If checkpoints
// already exist under base (a restarted task), the sequence continues from
// the highest existing one.
func NewCheckpointer(fs *FS, base string) *Checkpointer {
	c := &Checkpointer{fs: fs, base: strings.TrimSuffix(base, "/")}
	if path, seq, ok := c.scanLatest(); ok {
		c.seq = seq + 1
		c.last = path
	}
	return c
}

func (c *Checkpointer) prefix() string { return c.base + "/ckpt." }

func (c *Checkpointer) scanLatest() (path string, seq int, ok bool) {
	best := -1
	for _, p := range c.fs.List(c.prefix()) {
		if strings.HasSuffix(p, ".tmp") {
			// Orphaned temp from a crashed or failed writer. Committed
			// checkpoints leave .tmp via atomic rename, so anything still
			// here is garbage. A rival in-flight Save may lose its temp to
			// this sweep; its commit then fails, and checkpoint saves are
			// best-effort by contract.
			_ = c.fs.Delete(p)
			continue
		}
		n, err := strconv.Atoi(strings.TrimPrefix(p, c.prefix()))
		if err != nil {
			continue
		}
		if n > best {
			best = n
			path = p
		}
	}
	return path, best, best >= 0
}

// Save writes a new checkpoint produced by write, commits it atomically,
// and garbage-collects the previous one. It returns the committed path.
func (c *Checkpointer) Save(write func(w io.Writer) error) (string, error) {
	c.mu.Lock()
	seq := c.seq
	c.seq++
	prev := c.last
	c.mu.Unlock()

	final := fmt.Sprintf("%s%d", c.prefix(), seq)
	tmp := final + ".tmp"
	w := c.fs.Create(tmp)
	if err := write(w); err != nil {
		c.discard(tmp)
		return "", fmt.Errorf("dfs: producing checkpoint %s: %w", final, err)
	}
	if err := w.Close(); err != nil {
		c.discard(tmp)
		return "", err
	}
	if err := c.fs.Rename(tmp, final); err != nil {
		c.discard(tmp)
		return "", err
	}
	c.mu.Lock()
	// Another Save may have committed a later checkpoint concurrently;
	// only advance "last" forward.
	if c.last == prev {
		c.last = final
	}
	c.mu.Unlock()
	if prev != "" && prev != final {
		// Best effort GC: a concurrent reader may have already deleted it.
		_ = c.fs.Delete(prev)
	}
	return final, nil
}

// discard removes an abandoned temp file so a failed Save cannot leak it.
// Best effort: the temp may not exist (the write never reached the FS) or
// a concurrent scanLatest may have collected it already.
func (c *Checkpointer) discard(tmp string) {
	_ = c.fs.Delete(tmp)
}

// Latest returns the newest committed checkpoint path.
func (c *Checkpointer) Latest() (string, bool) {
	path, _, ok := c.scanLatest()
	return path, ok
}

// Clean removes every checkpoint (and temp file) under the base — called
// after a task completes successfully and its final model is persisted.
func (c *Checkpointer) Clean() {
	c.fs.DeletePrefix(c.prefix())
	c.mu.Lock()
	c.last = ""
	c.mu.Unlock()
}

// LatestCheckpoint is a package-level convenience for recovery code that
// has only the base path.
func LatestCheckpoint(fs *FS, base string) (string, bool) {
	return NewCheckpointer(fs, base).Latest()
}

// SortedCheckpoints lists committed checkpoints under base in sequence
// order (diagnostics; production keeps at most one).
func SortedCheckpoints(fs *FS, base string) []string {
	prefix := strings.TrimSuffix(base, "/") + "/ckpt."
	var out []string
	for _, p := range fs.List(prefix) {
		if !strings.HasSuffix(p, ".tmp") {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ni, _ := strconv.Atoi(strings.TrimPrefix(out[i], prefix))
		nj, _ := strconv.Atoi(strings.TrimPrefix(out[j], prefix))
		return ni < nj
	})
	return out
}
