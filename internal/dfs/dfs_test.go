package dfs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"

	"sigmund/internal/faults"
)

func TestWriteReadRoundTrip(t *testing.T) {
	fs := New()
	if err := fs.Write("a/b", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Read("a/b")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("Read = %q", got)
	}
	// Mutating the returned slice must not affect the stored file.
	got[0] = 'X'
	again, _ := fs.Read("a/b")
	if string(again) != "hello" {
		t.Fatal("Read returned aliased storage")
	}
	// Writes copy their input too.
	data := []byte("mut")
	fs.Write("m", data)
	data[0] = 'X'
	if got, _ := fs.Read("m"); string(got) != "mut" {
		t.Fatal("Write aliased caller buffer")
	}
}

func TestReadMissing(t *testing.T) {
	fs := New()
	if _, err := fs.Read("nope"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v, want ErrNotExist", err)
	}
	if _, err := fs.Open("nope"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Open err = %v", err)
	}
	if _, err := fs.Size("nope"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Size err = %v", err)
	}
	if err := fs.Delete("nope"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Delete err = %v", err)
	}
	if err := fs.Rename("nope", "x"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Rename err = %v", err)
	}
}

func TestCreateCommitsOnClose(t *testing.T) {
	fs := New()
	w := fs.Create("out")
	io.WriteString(w, "part1 ")
	if fs.Exists("out") {
		t.Fatal("file visible before Close")
	}
	io.WriteString(w, "part2")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.Read("out")
	if string(got) != "part1 part2" {
		t.Fatalf("content = %q", got)
	}
	// Double close is fine; write-after-close is not.
	if err := w.Close(); err != nil {
		t.Fatal("second Close errored")
	}
	if _, err := w.Write([]byte("x")); err == nil {
		t.Fatal("write after close succeeded")
	}
}

func TestRenameAtomicReplace(t *testing.T) {
	fs := New()
	fs.Write("src", []byte("new"))
	fs.Write("dst", []byte("old"))
	if err := fs.Rename("src", "dst"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("src") {
		t.Fatal("source survived rename")
	}
	got, _ := fs.Read("dst")
	if string(got) != "new" {
		t.Fatalf("dst = %q", got)
	}
}

func TestListAndDeletePrefix(t *testing.T) {
	fs := New()
	for _, p := range []string{"models/a", "models/b", "data/c", "models/a/sub"} {
		fs.Write(p, []byte("x"))
	}
	got := fs.List("models/")
	if len(got) != 3 || got[0] != "models/a" || got[1] != "models/a/sub" {
		t.Fatalf("List = %v", got)
	}
	if n := fs.DeletePrefix("models/"); n != 3 {
		t.Fatalf("DeletePrefix removed %d", n)
	}
	if fs.NumFiles() != 1 {
		t.Fatalf("NumFiles = %d", fs.NumFiles())
	}
}

func TestStats(t *testing.T) {
	fs := New()
	fs.Write("a", make([]byte, 100))
	fs.Read("a")
	fs.Read("a")
	w, r := fs.Stats()
	if w != 100 || r != 200 {
		t.Fatalf("Stats = %d, %d", w, r)
	}
}

func TestFailureInjection(t *testing.T) {
	fs := New()
	fs.FailEveryNthWrite(3)
	var failures int
	for i := 0; i < 9; i++ {
		if err := fs.Write(fmt.Sprintf("f%d", i), []byte("x")); err != nil {
			if !errors.Is(err, ErrInjectedFailure) {
				t.Fatalf("unexpected error %v", err)
			}
			failures++
		}
	}
	if failures != 3 {
		t.Fatalf("failures = %d, want 3", failures)
	}
	fs.FailEveryNthWrite(0)
	if err := fs.Write("ok", []byte("x")); err != nil {
		t.Fatal("injection not disabled")
	}
}

func TestFailureInjectionOnRenamePath(t *testing.T) {
	// FailEveryNthWrite counts Writes and Renames in one stream, so the
	// write-then-rename commit discipline is exercised on both legs.
	fs := New()
	fs.Write("a", []byte("x"))
	fs.Write("b", []byte("y"))
	fs.FailEveryNthWrite(2)
	if err := fs.Rename("a", "a2"); err != nil {
		t.Fatalf("first op failed: %v", err) // op 1 of 2
	}
	err := fs.Rename("b", "b2")
	if !errors.Is(err, ErrInjectedFailure) {
		t.Fatalf("second rename err = %v, want injected failure", err)
	}
	// A failed rename must leave the source intact and not create the
	// destination: the commit either happens atomically or not at all.
	if !fs.Exists("b") || fs.Exists("b2") {
		t.Fatal("failed rename mutated the filesystem")
	}
	// The stream keeps counting: next op succeeds, the one after fails.
	if err := fs.Rename("b", "b2"); err != nil {
		t.Fatalf("third op failed: %v", err)
	}
	if err := fs.Write("c", []byte("z")); !errors.Is(err, ErrInjectedFailure) {
		t.Fatalf("fourth op err = %v, want injected failure", err)
	}
}

func TestSetInjectorScopedRules(t *testing.T) {
	fs := New()
	fs.Write("days/0/ckpt/m/ckpt.0.tmp", []byte("x"))
	fs.Write("other", []byte("y"))
	// Only checkpoint renames fail.
	fs.SetInjector(faults.NewInjector(1, faults.Rule{
		Ops: []faults.Op{faults.OpRename}, PathContains: "/ckpt/", EveryNth: 1,
	}))
	if err := fs.Rename("days/0/ckpt/m/ckpt.0.tmp", "days/0/ckpt/m/ckpt.0"); !errors.Is(err, ErrInjectedFailure) {
		t.Fatalf("checkpoint rename err = %v", err)
	}
	if err := fs.Rename("other", "other2"); err != nil {
		t.Fatalf("unrelated rename failed: %v", err)
	}
	if err := fs.Write("days/0/ckpt/m/ckpt.1.tmp", []byte("x")); err != nil {
		t.Fatalf("write matched a rename-only rule: %v", err)
	}
	// Removing the injector restores normal operation.
	fs.SetInjector(nil)
	fs.Write("days/0/ckpt/m/ckpt.2.tmp", []byte("x"))
	if err := fs.Rename("days/0/ckpt/m/ckpt.2.tmp", "days/0/ckpt/m/ckpt.2"); err != nil {
		t.Fatalf("rename after removing injector: %v", err)
	}
}

func TestInjectorBitFlipReadReturnsErrCorrupt(t *testing.T) {
	fs := New()
	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	fs.Write("model", payload)
	fs.SetInjector(faults.NewInjector(1, faults.Rule{
		Ops: []faults.Op{faults.OpRead}, Kind: faults.BitFlip, EveryNth: 1, Times: 1,
	}))
	// The seeded flip lands in the payload (the payload dwarfs the
	// 16-byte footer), so the checksum catches it and the read surfaces
	// the typed corruption error — never garbled bytes with a nil error.
	if _, err := fs.Read("model"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupted read err = %v, want ErrCorrupt", err)
	}
	if _, _, corrupt := fs.IntegrityStats(); corrupt != 1 {
		t.Fatalf("corrupt reads = %d, want 1", corrupt)
	}
	// Read-time corruption never touches the stored file: the rule is
	// exhausted, so the next read sees pristine bytes.
	clean, err := fs.Read("model")
	if err != nil || !bytes.Equal(clean, payload) {
		t.Fatalf("stored file corrupted (err %v)", err)
	}
}

func TestInjectorCorruptKindStillGarbles(t *testing.T) {
	// The legacy Corrupt kind XORs a stripe through the whole stored
	// image. Whatever it hits — payload (checksum mismatch) or footer
	// (blob demoted to legacy, returning garbled bytes) — the read must
	// not return the pristine payload with a clean verification.
	fs := New()
	fs.Write("model", []byte("pristine model bytes"))
	fs.SetInjector(faults.NewInjector(1, faults.Rule{
		Ops: []faults.Op{faults.OpRead}, Kind: faults.Corrupt, EveryNth: 1,
	}))
	got, err := fs.Read("model")
	if err == nil && string(got) == "pristine model bytes" {
		t.Fatal("corrupt read returned pristine verified payload")
	}
	fs.SetInjector(nil)
	if clean, _ := fs.Read("model"); string(clean) != "pristine model bytes" {
		t.Fatal("stored file corrupted")
	}
}

func TestFooterRoundTrip(t *testing.T) {
	payload := []byte("some payload")
	blob := AppendFooter(payload)
	if len(blob) != len(payload)+FooterLen {
		t.Fatalf("footered length = %d", len(blob))
	}
	got, verified, err := StripFooter(blob)
	if err != nil || !verified || string(got) != string(payload) {
		t.Fatalf("StripFooter = %q, %v, %v", got, verified, err)
	}
	// Empty payloads carry a footer too.
	got, verified, err = StripFooter(AppendFooter(nil))
	if err != nil || !verified || len(got) != 0 {
		t.Fatalf("empty payload: %q, %v, %v", got, verified, err)
	}
}

func TestFooterLegacyAndCorruptCases(t *testing.T) {
	// Short or footer-less blobs pass through unverified (legacy escape
	// hatch for fixtures written before the footer existed).
	for _, blob := range [][]byte{nil, []byte("short"), []byte("long enough but no footer magic")} {
		got, verified, err := StripFooter(blob)
		if err != nil || verified || string(got) != string(blob) {
			t.Fatalf("legacy blob %q: %q, %v, %v", blob, got, verified, err)
		}
	}
	// A flipped payload bit under an intact footer is typed corruption.
	blob := AppendFooter([]byte("some payload"))
	blob[3] ^= 0x10
	if _, _, err := StripFooter(blob); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped payload err = %v, want ErrCorrupt", err)
	}
	// Bytes missing from the middle while the footer survives: the length
	// echo catches it before the checksum runs.
	blob = AppendFooter([]byte("some payload"))
	blob = append(blob[:4], blob[8:]...)
	if _, _, err := StripFooter(blob); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("shrunken payload err = %v, want ErrCorrupt", err)
	}
}

func TestWriteLegacySkipsFooter(t *testing.T) {
	fs := New()
	fs.Write("footered", []byte("abc"))
	fs.WriteLegacy("legacy", []byte("abcdefghijklmnopqrstuvwxyz"))
	if got, err := fs.Read("legacy"); err != nil || string(got) != "abcdefghijklmnopqrstuvwxyz" {
		t.Fatalf("legacy read = %q, %v", got, err)
	}
	fs.Read("footered")
	verified, legacy, corrupt := fs.IntegrityStats()
	if verified != 1 || legacy != 1 || corrupt != 0 {
		t.Fatalf("IntegrityStats = %d, %d, %d", verified, legacy, corrupt)
	}
	// Size reports payload bytes for footered files and raw bytes for
	// legacy ones.
	if n, _ := fs.Size("footered"); n != 3 {
		t.Fatalf("footered Size = %d", n)
	}
	if n, _ := fs.Size("legacy"); n != 26 {
		t.Fatalf("legacy Size = %d", n)
	}
}

func TestAtRestCorruptionDetectedOnEveryRead(t *testing.T) {
	// Simulated at-rest rot: store a footered image with one flipped bit
	// via the legacy (raw) writer. Every read must fail the same way —
	// detection is deterministic, not probabilistic.
	fs := New()
	image := AppendFooter([]byte("segment bytes here"))
	image[5] ^= 0x04
	fs.WriteLegacy("rotted", image)
	for i := 0; i < 3; i++ {
		if _, err := fs.Read("rotted"); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("read %d: err = %v, want ErrCorrupt", i, err)
		}
	}
	if _, _, corrupt := fs.IntegrityStats(); corrupt != 3 {
		t.Fatalf("corrupt reads = %d, want 3", corrupt)
	}
}

func TestCreateCloseRetainsWriteError(t *testing.T) {
	fs := New()
	w := fs.Create("out")
	io.WriteString(w, "data")
	fs.FailEveryNthWrite(1)
	err := w.Close()
	if !errors.Is(err, ErrInjectedFailure) {
		t.Fatalf("Close err = %v, want injected failure", err)
	}
	// A second Close must report the same failure, not silently succeed:
	// callers that defer Close and also check it explicitly would
	// otherwise see the commit vanish.
	if err2 := w.Close(); !errors.Is(err2, ErrInjectedFailure) {
		t.Fatalf("second Close err = %v, want injected failure", err2)
	}
	if fs.Exists("out") {
		t.Fatal("failed Close still committed the file")
	}
}

func TestConcurrentAccess(t *testing.T) {
	fs := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				p := fmt.Sprintf("g%d/f%d", g, i)
				fs.Write(p, []byte{byte(i)})
				if got, err := fs.Read(p); err != nil || got[0] != byte(i) {
					t.Errorf("concurrent read mismatch at %s", p)
					return
				}
				fs.List(fmt.Sprintf("g%d/", g))
			}
		}(g)
	}
	wg.Wait()
	if fs.NumFiles() != 800 {
		t.Fatalf("NumFiles = %d", fs.NumFiles())
	}
}

func TestCheckpointerKeepsOnlyLatest(t *testing.T) {
	fs := New()
	c := NewCheckpointer(fs, "train/model-7")
	for i := 0; i < 5; i++ {
		payload := fmt.Sprintf("state-%d", i)
		path, err := c.Save(func(w io.Writer) error {
			_, err := w.Write([]byte(payload))
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := fs.Read(path)
		if err != nil || string(got) != payload {
			t.Fatalf("checkpoint %d content %q err %v", i, got, err)
		}
		// Only one committed checkpoint at any time (keep-latest-only GC).
		if cks := SortedCheckpoints(fs, "train/model-7"); len(cks) != 1 {
			t.Fatalf("after save %d: %d checkpoints live: %v", i, len(cks), cks)
		}
	}
	latest, ok := c.Latest()
	if !ok || latest != "train/model-7/ckpt.4" {
		t.Fatalf("Latest = %q, %v", latest, ok)
	}
}

func TestCheckpointerResumesSequence(t *testing.T) {
	fs := New()
	a := NewCheckpointer(fs, "base")
	a.Save(func(w io.Writer) error { w.Write([]byte("one")); return nil })
	// A restarted task constructs a fresh Checkpointer over the same base.
	b := NewCheckpointer(fs, "base")
	latest, ok := b.Latest()
	if !ok {
		t.Fatal("restart lost the checkpoint")
	}
	if got, _ := fs.Read(latest); string(got) != "one" {
		t.Fatalf("restart sees %q", got)
	}
	p, err := b.Save(func(w io.Writer) error { w.Write([]byte("two")); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if p != "base/ckpt.1" {
		t.Fatalf("sequence did not resume: %s", p)
	}
	if cks := SortedCheckpoints(fs, "base"); len(cks) != 1 || cks[0] != "base/ckpt.1" {
		t.Fatalf("old checkpoint not GCed: %v", cks)
	}
}

func TestCheckpointerWriteFailureLeavesPreviousIntact(t *testing.T) {
	fs := New()
	c := NewCheckpointer(fs, "b")
	if _, err := c.Save(func(w io.Writer) error { w.Write([]byte("good")); return nil }); err != nil {
		t.Fatal(err)
	}
	// Producer error: no new checkpoint, old one stays.
	_, err := c.Save(func(w io.Writer) error { return errors.New("producer died") })
	if err == nil {
		t.Fatal("expected producer error")
	}
	latest, ok := c.Latest()
	if !ok {
		t.Fatal("previous checkpoint lost")
	}
	if got, _ := fs.Read(latest); string(got) != "good" {
		t.Fatalf("latest = %q", got)
	}
}

func TestCheckpointerClean(t *testing.T) {
	fs := New()
	c := NewCheckpointer(fs, "x")
	c.Save(func(w io.Writer) error { w.Write([]byte("s")); return nil })
	c.Clean()
	if _, ok := c.Latest(); ok {
		t.Fatal("Clean left checkpoints")
	}
	if fs.NumFiles() != 0 {
		t.Fatal("Clean left files")
	}
}

func TestLatestCheckpointHelper(t *testing.T) {
	fs := New()
	if _, ok := LatestCheckpoint(fs, "none"); ok {
		t.Fatal("found checkpoint in empty fs")
	}
}
