// Package dfs simulates the shared distributed filesystem (GFS in the
// paper) that every Sigmund pipeline stage reads and writes: training data,
// model checkpoints, trained models, config records, and materialized
// recommendations.
//
// The simulation provides exactly the contract the pipeline depends on —
// whole-file writes with atomic visibility, atomic rename, list-by-prefix,
// and shared access from concurrently running tasks — plus failure
// injection so fault-tolerance paths can be tested deterministically.
package dfs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"sigmund/internal/faults"
)

// ErrNotExist is returned when a path has no file.
var ErrNotExist = errors.New("dfs: file does not exist")

// ErrInjectedFailure is returned by operations killed by failure
// injection. It aliases faults.ErrInjected so errors.Is matches through
// either package's sentinel.
var ErrInjectedFailure = faults.ErrInjected

// FS is an in-memory shared filesystem. All methods are safe for
// concurrent use.
type FS struct {
	mu    sync.RWMutex
	files map[string][]byte

	// inj is the user-installed fault injector; legacy backs the
	// FailEveryNthWrite convenience knob. Both are consulted.
	inj    atomic.Pointer[faults.Injector]
	legacy atomic.Pointer[faults.Injector]

	bytesWritten int64
	bytesRead    int64

	// Integrity accounting: reads that verified a footer, reads of
	// footerless legacy blobs, and reads rejected with ErrCorrupt.
	verifiedReads int64
	legacyReads   int64
	corruptReads  int64
}

// New returns an empty filesystem.
func New() *FS {
	return &FS{files: make(map[string][]byte)}
}

// SetInjector installs a fault injector consulted on Write, Rename, and
// Read (nil removes it). Error rules fail the operation with
// ErrInjectedFailure, Latency rules delay it. Corrupt/BitFlip/Truncate
// rules garble the stored (write) or returned (read) image — footer
// included — so the damage is exactly what footer verification exists to
// catch: a corrupted read surfaces as ErrCorrupt, not as garbled payload
// bytes.
func (f *FS) SetInjector(in *faults.Injector) {
	f.inj.Store(in)
}

// FailEveryNthWrite arranges for every nth Write/Rename to fail with
// ErrInjectedFailure (0 disables). Deterministic, for tests; it is a thin
// wrapper over a faults.Rule and composes with SetInjector.
func (f *FS) FailEveryNthWrite(n int) {
	if n <= 0 {
		f.legacy.Store(nil)
		return
	}
	f.legacy.Store(faults.NewInjector(uint64(n), faults.Rule{
		Ops:      []faults.Op{faults.OpWrite, faults.OpRename},
		EveryNth: n,
	}))
}

// inject consults both injectors before an operation.
func (f *FS) inject(op faults.Op, path string) error {
	if err := f.legacy.Load().Before(op, path); err != nil {
		return err
	}
	return f.inj.Load().Before(op, path)
}

// Write stores data at path atomically, replacing any existing file. The
// stored image is the payload plus its integrity footer; fault-injected
// corruption is applied to the image after the footer is computed, so
// rot-at-write is detectable by the next verified read.
func (f *FS) Write(path string, data []byte) error {
	if err := f.inject(faults.OpWrite, path); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	image := AppendFooter(data)
	image = f.inj.Load().CorruptData(faults.OpWrite, path, image)
	f.mu.Lock()
	f.files[path] = image
	f.mu.Unlock()
	atomic.AddInt64(&f.bytesWritten, int64(len(data)))
	return nil
}

// WriteLegacy stores data at path without an integrity footer — the
// pre-footer on-disk shape. Tests use it to model old fixtures and blobs
// written by earlier releases; everything else should use Write.
func (f *FS) WriteLegacy(path string, data []byte) error {
	if err := f.inject(faults.OpWrite, path); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	cp = f.inj.Load().CorruptData(faults.OpWrite, path, cp)
	f.mu.Lock()
	f.files[path] = cp
	f.mu.Unlock()
	atomic.AddInt64(&f.bytesWritten, int64(len(data)))
	return nil
}

// Read returns a copy of the file's payload at path, verifying and
// stripping the integrity footer. A blob whose footer fails verification
// returns an error wrapping ErrCorrupt; a footerless legacy blob is
// returned as-is.
func (f *FS) Read(path string) ([]byte, error) {
	if err := f.inject(faults.OpRead, path); err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	f.mu.RLock()
	data, ok := f.files[path]
	f.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("reading %s: %w", path, ErrNotExist)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	cp = f.inj.Load().CorruptData(faults.OpRead, path, cp)
	payload, verified, err := StripFooter(cp)
	if err != nil {
		atomic.AddInt64(&f.corruptReads, 1)
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	if verified {
		atomic.AddInt64(&f.verifiedReads, 1)
	} else {
		atomic.AddInt64(&f.legacyReads, 1)
	}
	atomic.AddInt64(&f.bytesRead, int64(len(payload)))
	return payload, nil
}

// Open returns a reader over the file's contents at open time (snapshot
// semantics: later writes do not affect the reader).
func (f *FS) Open(path string) (io.Reader, error) {
	data, err := f.Read(path)
	if err != nil {
		return nil, err
	}
	return bytes.NewReader(data), nil
}

// Create returns a writer whose content becomes visible atomically at
// Close — the write-then-commit discipline MapReduce output relies on.
func (f *FS) Create(path string) io.WriteCloser {
	return &fileWriter{fs: f, path: path}
}

type fileWriter struct {
	fs       *FS
	path     string
	buf      bytes.Buffer
	done     bool
	closeErr error
}

func (w *fileWriter) Write(p []byte) (int, error) {
	if w.done {
		return 0, errors.New("dfs: write after close")
	}
	return w.buf.Write(p)
}

// Close commits the buffered content. A repeated Close returns the first
// Close's result, so a failed commit cannot be masked by a deferred
// second Close returning nil.
func (w *fileWriter) Close() error {
	if w.done {
		return w.closeErr
	}
	w.done = true
	w.closeErr = w.fs.Write(w.path, w.buf.Bytes())
	return w.closeErr
}

// Exists reports whether path holds a file.
func (f *FS) Exists(path string) bool {
	f.mu.RLock()
	_, ok := f.files[path]
	f.mu.RUnlock()
	return ok
}

// Size returns the file's payload length in bytes (excluding the
// integrity footer, so it matches what Read returns).
func (f *FS) Size(path string) (int64, error) {
	f.mu.RLock()
	data, ok := f.files[path]
	f.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("stat %s: %w", path, ErrNotExist)
	}
	if payload, verified, err := StripFooter(data); err == nil && verified {
		return int64(len(payload)), nil
	}
	return int64(len(data)), nil
}

// Delete removes the file at path; deleting a missing file is an error.
func (f *FS) Delete(path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.files[path]; !ok {
		return fmt.Errorf("deleting %s: %w", path, ErrNotExist)
	}
	delete(f.files, path)
	return nil
}

// Rename atomically moves a file, replacing any existing destination. This
// is the primitive checkpointing builds on.
func (f *FS) Rename(from, to string) error {
	if err := f.inject(faults.OpRename, from); err != nil {
		return fmt.Errorf("renaming %s: %w", from, err)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	data, ok := f.files[from]
	if !ok {
		return fmt.Errorf("renaming %s: %w", from, ErrNotExist)
	}
	f.files[to] = data
	delete(f.files, from)
	return nil
}

// List returns the paths with the given prefix, sorted.
func (f *FS) List(prefix string) []string {
	f.mu.RLock()
	out := make([]string, 0, 8)
	for p := range f.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	f.mu.RUnlock()
	sort.Strings(out)
	return out
}

// DeletePrefix removes every file under prefix and returns the count.
func (f *FS) DeletePrefix(prefix string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for p := range f.files {
		if strings.HasPrefix(p, prefix) {
			delete(f.files, p)
			n++
		}
	}
	return n
}

// Stats reports cumulative traffic counters (payload bytes, excluding
// integrity footers).
func (f *FS) Stats() (bytesWritten, bytesRead int64) {
	return atomic.LoadInt64(&f.bytesWritten), atomic.LoadInt64(&f.bytesRead)
}

// IntegrityStats reports cumulative read-verification outcomes: reads
// whose footer verified, reads of footerless legacy blobs, and reads
// rejected with ErrCorrupt.
func (f *FS) IntegrityStats() (verified, legacy, corrupt int64) {
	return atomic.LoadInt64(&f.verifiedReads),
		atomic.LoadInt64(&f.legacyReads),
		atomic.LoadInt64(&f.corruptReads)
}

// NumFiles returns the number of stored files.
func (f *FS) NumFiles() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.files)
}
