package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 100; i++ {
		if NewRNG(42).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(7)
	s := r.Split()
	// The split stream must not replay the parent stream.
	matches := 0
	for i := 0; i < 64; i++ {
		if r.Uint64() == s.Uint64() {
			matches++
		}
	}
	if matches > 1 {
		t.Fatalf("split stream matched parent %d/64 times", matches)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(2)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(3)
	const n = 50000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 1 + r.Intn(200)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFillNormal(t *testing.T) {
	r := NewRNG(4)
	x := make([]float32, 10000)
	r.FillNormal(x, 0.1)
	var sumsq float64
	for _, v := range x {
		sumsq += float64(v) * float64(v)
	}
	sd := math.Sqrt(sumsq / float64(len(x)))
	if math.Abs(sd-0.1) > 0.01 {
		t.Fatalf("FillNormal stddev = %v, want ~0.1", sd)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(5)
	const n = 50000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exp(3.0)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-3) > 0.1 {
		t.Fatalf("Exp mean = %v, want ~3", mean)
	}
}

func TestZipfSkewAndBounds(t *testing.T) {
	r := NewRNG(6)
	const n, draws = 1000, 50000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		k := r.Zipf(n, 1.1)
		if k < 0 || k >= n {
			t.Fatalf("Zipf out of range: %d", k)
		}
		counts[k]++
	}
	// The head must be far more popular than the mid/tail.
	head := counts[0] + counts[1] + counts[2]
	tail := counts[n-3] + counts[n-2] + counts[n-1]
	if head <= tail*10 {
		t.Fatalf("Zipf not skewed: head=%d tail=%d", head, tail)
	}
	// Degenerate sizes.
	if got := r.Zipf(1, 1.1); got != 0 {
		t.Fatalf("Zipf(1) = %d, want 0", got)
	}
	if got := r.Zipf(0, 1.1); got != 0 {
		t.Fatalf("Zipf(0) = %d, want 0", got)
	}
}

func TestZipfExponentOne(t *testing.T) {
	r := NewRNG(8)
	for i := 0; i < 10000; i++ {
		if k := r.Zipf(100, 1.0); k < 0 || k >= 100 {
			t.Fatalf("Zipf s=1 out of range: %d", k)
		}
	}
}

func TestShuffleCoversOrders(t *testing.T) {
	r := NewRNG(9)
	seen := map[[3]int]bool{}
	for i := 0; i < 600; i++ {
		x := [3]int{0, 1, 2}
		r.Shuffle(3, func(i, j int) { x[i], x[j] = x[j], x[i] })
		seen[x] = true
	}
	if len(seen) != 6 {
		t.Fatalf("Shuffle reached %d/6 permutations of 3 elements", len(seen))
	}
}

func TestFloat32Range(t *testing.T) {
	r := NewRNG(10)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Float32()
		if v < 0 || v >= 1 {
			t.Fatalf("Float32 = %v out of [0,1)", v)
		}
		sum += float64(v)
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Float32 mean = %v", mean)
	}
}
