package linalg

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (SplitMix64-based). Sigmund's grid search includes the RNG seed as a
// hyper-parameter, incremental training must reproduce yesterday's
// initialization, and Hogwild training threads each need an independent
// stream — so every randomized component in this repository takes an
// explicit *RNG rather than using the global math/rand source.
//
// RNG is not safe for concurrent use; derive one per goroutine with Split.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Distinct seeds yield
// decorrelated streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{state: seed}
	// Warm up so that small seeds (0, 1, 2...) do not produce correlated
	// first outputs.
	r.Uint64()
	r.Uint64()
	return r
}

// Split derives an independent generator from r. The derived stream is
// decorrelated from r's future output, which makes it suitable for seeding
// per-thread Hogwild samplers from one model seed.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0x9e3779b97f4a7c15)
}

// Uint64 returns the next value in the stream (SplitMix64 step).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("linalg: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform value in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// NormFloat64 returns a standard normal variate (Box-Muller).
func (r *RNG) NormFloat64() float64 {
	// Draw u1 in (0,1] to avoid log(0).
	u1 := 1 - r.Float64()
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Perm returns a random permutation of [0, n) (Fisher-Yates). The training
// pipeline uses it to randomly permute config records so work is balanced
// across MapReduce shards (Section IV-B1 of the paper).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle randomizes the order of n elements using the provided swap
// function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// FillNormal fills x with N(0, stddev^2) variates — the random-embedding
// initializer for new items.
func (r *RNG) FillNormal(x []float32, stddev float64) {
	for i := range x {
		x[i] = float32(r.NormFloat64() * stddev)
	}
}

// Exp returns an exponential variate with the given mean. The cluster
// simulator uses it for preemption inter-arrival times.
func (r *RNG) Exp(mean float64) float64 {
	u := 1 - r.Float64()
	return -mean * math.Log(u)
}

// Zipf returns a value in [0, n) drawn from a Zipf-like distribution with
// exponent s (larger s = heavier head). Item popularity in the synthetic
// workload follows this distribution, which is what produces the long tail
// studied in Figure 6 of the paper.
//
// The implementation uses inverse-CDF sampling over the harmonic weights
// via rejection-free approximation: P(k) ∝ (k+1)^-s.
func (r *RNG) Zipf(n int, s float64) int {
	if n <= 1 {
		return 0
	}
	// Approximate inverse CDF of the continuous analogue, then clamp.
	// For s != 1 the CDF of p(x) ∝ x^-s on [1, n+1] inverts in closed form.
	u := r.Float64()
	if s == 1 {
		k := int(math.Pow(float64(n+1), u)) - 1
		if k < 0 {
			k = 0
		}
		if k >= n {
			k = n - 1
		}
		return k
	}
	oneMinusS := 1 - s
	nf := math.Pow(float64(n+1), oneMinusS)
	x := math.Pow(u*(nf-1)+1, 1/oneMinusS) - 1
	k := int(x)
	if k < 0 {
		k = 0
	}
	if k >= n {
		k = n - 1
	}
	return k
}
