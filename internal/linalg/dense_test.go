package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMatBasics(t *testing.T) {
	m := NewMat(3)
	m.Set(0, 1, 5)
	m.Add(0, 1, 2)
	if m.At(0, 1) != 7 {
		t.Fatalf("At = %v", m.At(0, 1))
	}
	m.AddDiagonal(1)
	for i := 0; i < 3; i++ {
		if m.At(i, i) != 1 {
			t.Fatal("AddDiagonal wrong")
		}
	}
	c := m.Copy()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("Copy aliases")
	}
}

func TestAddOuterScaled(t *testing.T) {
	m := NewMat(2)
	m.AddOuterScaled(2, []float32{1, 3})
	// 2 * [1,3][1,3]^T = [[2,6],[6,18]]
	want := []float64{2, 6, 6, 18}
	for i, w := range want {
		if math.Abs(m.Data[i]-w) > 1e-12 {
			t.Fatalf("outer[%d] = %v, want %v", i, m.Data[i], w)
		}
	}
}

func TestGramUpdate(t *testing.T) {
	m := NewMat(2)
	// Rows (1,0) and (0,2): gram = [[1,0],[0,4]].
	m.GramUpdate([]float32{1, 0, 0, 2}, 2, 1)
	if m.At(0, 0) != 1 || m.At(1, 1) != 4 || m.At(0, 1) != 0 {
		t.Fatalf("gram = %+v", m.Data)
	}
}

func TestCholeskySolveKnownSystem(t *testing.T) {
	// A = [[4,2],[2,3]], b = [10, 8] -> x = [1.75, 1.5]
	a := NewMat(2)
	a.Set(0, 0, 4)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 3)
	x, err := CholeskySolve(a, []float64{10, 8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1.75) > 1e-12 || math.Abs(x[1]-1.5) > 1e-12 {
		t.Fatalf("x = %v", x)
	}
	// Inputs untouched.
	if a.At(0, 0) != 4 {
		t.Fatal("CholeskySolve mutated A")
	}
}

func TestCholeskySolveRejectsIndefinite(t *testing.T) {
	a := NewMat(2)
	a.Set(0, 0, 1)
	a.Set(1, 1, -1)
	if _, err := CholeskySolve(a, []float64{1, 1}); err == nil {
		t.Fatal("indefinite matrix accepted")
	}
	if _, err := CholeskySolve(NewMat(2), []float64{1}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

// Property: for random SPD systems A = GᵀG + I, CholeskySolve returns x
// with A x ≈ b.
func TestCholeskySolveProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		n := 1 + rng.Intn(8)
		// Build A = sum of outer products + ridge (guaranteed SPD).
		a := NewMat(n)
		for r := 0; r < n+2; r++ {
			v := make([]float32, n)
			rng.FillNormal(v, 1)
			a.AddOuterScaled(1, v)
		}
		a.AddDiagonal(0.5)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := CholeskySolve(a, b)
		if err != nil {
			return false
		}
		// Residual check.
		for i := 0; i < n; i++ {
			var s float64
			for j := 0; j < n; j++ {
				s += a.At(i, j) * x[j]
			}
			if math.Abs(s-b[i]) > 1e-8*(1+math.Abs(b[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
