// Package linalg provides the small dense-vector kernels and deterministic
// random-number utilities used by the factorization core.
//
// Embeddings in Sigmund are short float32 vectors (5-200 dimensions, the
// grid-search range from the paper). All kernels operate on flat slices so
// models can store every embedding in one contiguous allocation and hand out
// sub-slices; this keeps per-retailer model memory compact and makes
// checkpoint serialization a single bulk write.
package linalg

import "math"

// Dot returns the inner product of a and b. The slices must have equal
// length; this is the affinity kernel x_ui = <u, v_i> from the paper and is
// the hottest function in training and inference.
func Dot(a, b []float32) float32 {
	_ = b[len(a)-1] // eliminate bounds checks in the loop
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := s0 + s1 + s2 + s3
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// Axpy computes dst[k] += alpha * x[k] for all k. It is the embedding
// update primitive for SGD steps and for accumulating weighted context
// vectors (Equation 1 in the paper).
func Axpy(alpha float32, x, dst []float32) {
	_ = dst[len(x)-1]
	for i := range x {
		dst[i] += alpha * x[i]
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float32, x []float32) {
	for i := range x {
		x[i] *= alpha
	}
}

// AddTo computes dst[k] += x[k] for all k.
func AddTo(x, dst []float32) {
	_ = dst[len(x)-1]
	for i := range x {
		dst[i] += x[i]
	}
}

// Zero clears x in place.
func Zero(x []float32) {
	for i := range x {
		x[i] = 0
	}
}

// Copy copies src into dst (lengths must match) and returns dst.
func Copy(dst, src []float32) []float32 {
	copy(dst, src)
	return dst
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float32) float32 {
	return float32(math.Sqrt(float64(Dot(x, x))))
}

// SquaredNorm returns <x, x>.
func SquaredNorm(x []float32) float32 { return Dot(x, x) }

// Sigmoid returns the logistic function 1/(1+exp(-z)), clamped so that
// extreme inputs cannot produce NaN gradients.
func Sigmoid(z float64) float64 {
	switch {
	case z > 35:
		return 1
	case z < -35:
		return 0
	}
	return 1 / (1 + math.Exp(-z))
}

// CosineSim returns the cosine similarity of a and b, or 0 when either
// vector is all-zero (a fresh cold-start embedding).
func CosineSim(a, b []float32) float32 {
	na, nb := Norm2(a), Norm2(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}
