package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDot(t *testing.T) {
	tests := []struct {
		name string
		a, b []float32
		want float32
	}{
		{"empty-ish single", []float32{2}, []float32{3}, 6},
		{"orthogonal", []float32{1, 0, 0, 1}, []float32{0, 1, 1, 0}, 0},
		{"len5 crosses unrolled boundary", []float32{1, 2, 3, 4, 5}, []float32{5, 4, 3, 2, 1}, 35},
		{"negative values", []float32{-1, 2, -3}, []float32{4, -5, 6}, -32},
		{"len8 exact unroll", []float32{1, 1, 1, 1, 1, 1, 1, 1}, []float32{1, 2, 3, 4, 5, 6, 7, 8}, 36},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Dot(tt.a, tt.b); got != tt.want {
				t.Errorf("Dot(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestDotMatchesNaive(t *testing.T) {
	f := func(vals []float32) bool {
		if len(vals) == 0 {
			return true
		}
		// Clamp generated values to the embedding-magnitude regime;
		// quick generates float32 extremes that overflow accumulation.
		a := make([]float32, len(vals))
		for i, v := range vals {
			a[i] = float32(math.Mod(float64(v), 100))
			if math.IsNaN(float64(a[i])) {
				a[i] = 0
			}
		}
		b := make([]float32, len(a))
		for i := range b {
			b[i] = float32(i%7) - 3
		}
		var naive float64
		for i := range a {
			naive += float64(a[i]) * float64(b[i])
		}
		got := float64(Dot(a, b))
		// float32 accumulation differs slightly from float64 naive sum.
		scale := math.Abs(naive) + 1
		return almostEq(got, naive, 1e-3*scale)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAxpy(t *testing.T) {
	dst := []float32{1, 2, 3}
	Axpy(2, []float32{10, 20, 30}, dst)
	want := []float32{21, 42, 63}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("Axpy result[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

func TestScaleZeroCopy(t *testing.T) {
	x := []float32{2, -4, 8}
	Scale(0.5, x)
	if x[0] != 1 || x[1] != -2 || x[2] != 4 {
		t.Fatalf("Scale produced %v", x)
	}
	Zero(x)
	for i, v := range x {
		if v != 0 {
			t.Fatalf("Zero left x[%d] = %v", i, v)
		}
	}
	src := []float32{7, 8}
	dst := make([]float32, 2)
	if got := Copy(dst, src); got[0] != 7 || got[1] != 8 {
		t.Fatalf("Copy produced %v", got)
	}
}

func TestNorms(t *testing.T) {
	x := []float32{3, 4}
	if got := Norm2(x); got != 5 {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	if got := SquaredNorm(x); got != 25 {
		t.Errorf("SquaredNorm = %v, want 25", got)
	}
}

func TestSigmoid(t *testing.T) {
	if got := Sigmoid(0); got != 0.5 {
		t.Errorf("Sigmoid(0) = %v, want 0.5", got)
	}
	if got := Sigmoid(100); got != 1 {
		t.Errorf("Sigmoid(100) = %v, want clamp to 1", got)
	}
	if got := Sigmoid(-100); got != 0 {
		t.Errorf("Sigmoid(-100) = %v, want clamp to 0", got)
	}
	// Symmetry: sigma(z) + sigma(-z) == 1.
	for _, z := range []float64{0.1, 1, 3, 10} {
		if !almostEq(Sigmoid(z)+Sigmoid(-z), 1, 1e-12) {
			t.Errorf("Sigmoid symmetry broken at z=%v", z)
		}
	}
}

func TestCosineSim(t *testing.T) {
	if got := CosineSim([]float32{1, 0}, []float32{2, 0}); !almostEq(float64(got), 1, 1e-6) {
		t.Errorf("parallel vectors: got %v, want 1", got)
	}
	if got := CosineSim([]float32{1, 0}, []float32{0, 5}); got != 0 {
		t.Errorf("orthogonal vectors: got %v, want 0", got)
	}
	if got := CosineSim([]float32{0, 0}, []float32{1, 1}); got != 0 {
		t.Errorf("zero vector must yield 0, got %v", got)
	}
}

func TestAddTo(t *testing.T) {
	dst := []float32{1, 1}
	AddTo([]float32{2, 3}, dst)
	if dst[0] != 3 || dst[1] != 4 {
		t.Fatalf("AddTo produced %v", dst)
	}
}
