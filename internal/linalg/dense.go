package linalg

import (
	"fmt"
	"math"
)

// Dense linear algebra for the alternating-least-squares solver: small
// symmetric positive-definite systems (F x F, with F the factor count) are
// solved by Cholesky decomposition. Matrices are row-major flat float64
// slices.

// Mat is a dense row-major matrix.
type Mat struct {
	N    int // rows == cols; the solver only needs square matrices
	Data []float64
}

// NewMat allocates an N x N zero matrix.
func NewMat(n int) *Mat {
	return &Mat{N: n, Data: make([]float64, n*n)}
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.N+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.N+j] = v }

// Add increments element (i, j).
func (m *Mat) Add(i, j int, v float64) { m.Data[i*m.N+j] += v }

// Copy returns a deep copy.
func (m *Mat) Copy() *Mat {
	c := NewMat(m.N)
	copy(c.Data, m.Data)
	return c
}

// AddDiagonal adds v to every diagonal element (ridge regularization).
func (m *Mat) AddDiagonal(v float64) {
	for i := 0; i < m.N; i++ {
		m.Data[i*m.N+i] += v
	}
}

// AddOuterScaled performs m += scale * x xᵀ for a float32 vector x — the
// rank-one update that accumulates YᵀCY terms in ALS.
func (m *Mat) AddOuterScaled(scale float64, x []float32) {
	n := m.N
	for i := 0; i < n; i++ {
		xi := scale * float64(x[i])
		row := m.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			row[j] += xi * float64(x[j])
		}
	}
}

// GramUpdate performs m += scale * xᵀx over a set of float32 row vectors
// laid out flat with the given stride (m must be stride x stride).
func (m *Mat) GramUpdate(flat []float32, stride int, scale float64) {
	for off := 0; off+stride <= len(flat); off += stride {
		m.AddOuterScaled(scale, flat[off:off+stride])
	}
}

// CholeskySolve solves A x = b for symmetric positive-definite A,
// overwriting neither input. It returns an error when A is not (numerically)
// positive definite — callers should increase regularization.
func CholeskySolve(a *Mat, b []float64) ([]float64, error) {
	n := a.N
	if len(b) != n {
		return nil, fmt.Errorf("linalg: CholeskySolve dimension mismatch: %d vs %d", n, len(b))
	}
	// Decompose A = L Lᵀ into a scratch copy.
	l := a.Copy()
	for j := 0; j < n; j++ {
		d := l.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 1e-12 {
			return nil, fmt.Errorf("linalg: matrix not positive definite at pivot %d (d=%g)", j, d)
		}
		dj := sqrt64(d)
		l.Set(j, j, dj)
		for i := j + 1; i < n; i++ {
			s := l.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/dj)
		}
	}
	// Forward substitution: L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Back substitution: Lᵀ x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}

func sqrt64(x float64) float64 { return math.Sqrt(x) }
