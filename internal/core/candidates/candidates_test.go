package candidates

import (
	"testing"

	"sigmund/internal/catalog"
	"sigmund/internal/cooccur"
	"sigmund/internal/interactions"
	"sigmund/internal/taxonomy"
)

// fixture: electronics with phones/cases/laptops and a grocery department.
//
//	root
//	├── electronics
//	│   ├── phones    (0, 1)
//	│   ├── cases     (2, 3)
//	│   └── laptops   (4)
//	└── grocery
//	    └── water     (5, 6)
type fx struct {
	cat    *catalog.Catalog
	cooc   *cooccur.Model
	phones taxonomy.NodeID
	cases  taxonomy.NodeID
	water  taxonomy.NodeID
}

func buildFx(t *testing.T) *fx {
	t.Helper()
	b := taxonomy.NewBuilder("root")
	elec := b.AddChild(taxonomy.Root, "electronics")
	groc := b.AddChild(taxonomy.Root, "grocery")
	phones := b.AddChild(elec, "phones")
	cases := b.AddChild(elec, "cases")
	laptops := b.AddChild(elec, "laptops")
	water := b.AddChild(groc, "water")
	c := catalog.New("s", b.Build())
	for i, cat := range []taxonomy.NodeID{phones, phones, cases, cases, laptops, water, water} {
		it := catalog.Item{Name: "it", Category: cat, InStock: true}
		if i == 0 || i == 2 {
			it.Facets = map[string]string{"color": "black"}
		}
		if i == 3 {
			it.Facets = map[string]string{"color": "red"}
		}
		c.AddItem(it)
	}
	return &fx{cat: c, cooc: cooccur.NewModel(c.NumItems(), 5), phones: phones, cases: cases, water: water}
}

func (f *fx) coview(u interactions.UserID, items ...catalog.ItemID) {
	for i, it := range items {
		f.cooc.Observe(interactions.Event{User: u, Item: it, Type: interactions.View, Time: int64(i)})
	}
}

func (f *fx) cobuy(u interactions.UserID, items ...catalog.ItemID) {
	for i, it := range items {
		f.cooc.Observe(interactions.Event{User: u, Item: it, Type: interactions.Conversion, Time: int64(i)})
	}
}

func has(ids []catalog.ItemID, want catalog.ItemID) bool {
	for _, id := range ids {
		if id == want {
			return true
		}
	}
	return false
}

func TestForViewExpandsCoViewedThroughTaxonomy(t *testing.T) {
	f := buildFx(t)
	// Item 0 (phone) is co-viewed with item 1 (phone) by several users.
	for u := 0; u < 4; u++ {
		f.coview(interactions.UserID(u), 0, 1)
	}
	s := NewSelector(f.cat, f.cooc)
	got := s.ForView(0)
	// lca_2(1) covers all of electronics: items 1,2,3,4 (and 0, removed as query).
	for _, want := range []catalog.ItemID{1, 2, 3, 4} {
		if !has(got, want) {
			t.Fatalf("ForView(0) = %v, missing %d", got, want)
		}
	}
	if has(got, 0) {
		t.Fatal("query item included in its own candidates")
	}
	if has(got, 5) || has(got, 6) {
		t.Fatal("grocery leaked into electronics candidates")
	}
}

func TestForViewColdItemFallsBackToTaxonomy(t *testing.T) {
	f := buildFx(t)
	// No co-occurrence data at all.
	s := NewSelector(f.cat, f.cooc)
	got := s.ForView(4) // the lone laptop
	// Fallback is lca_2(4) = electronics.
	if len(got) == 0 {
		t.Fatal("cold item received no candidates")
	}
	for _, id := range got {
		if id == 5 || id == 6 {
			t.Fatal("fallback crossed departments")
		}
	}
}

func TestForPurchaseRemovesSubstitutes(t *testing.T) {
	f := buildFx(t)
	// Users buy phone 0 together with case 2.
	for u := 0; u < 4; u++ {
		f.cobuy(interactions.UserID(u), 0, 2)
	}
	s := NewSelector(f.cat, f.cooc)
	got := s.ForPurchase(0)
	// Candidates come from lca_1(2) = cases {2,3}; lca_1(0) = phones {0,1}
	// is subtracted: the user already owns a phone.
	if !has(got, 2) || !has(got, 3) {
		t.Fatalf("ForPurchase(0) = %v, want the cases", got)
	}
	if has(got, 0) || has(got, 1) {
		t.Fatalf("ForPurchase(0) = %v, substitutes not removed", got)
	}
}

func TestForPurchaseRepurchasableKeepsOwnCategory(t *testing.T) {
	f := buildFx(t)
	// Users repeatedly buy water 5 and water 6 together.
	log := interactions.NewLog()
	for u := 0; u < 6; u++ {
		uid := interactions.UserID(u)
		log.Append(interactions.Event{User: uid, Item: 5, Type: interactions.Conversion, Time: int64(10 * u)})
		log.Append(interactions.Event{User: uid, Item: 5, Type: interactions.Conversion, Time: int64(10*u + 5)})
		f.cobuy(uid, 5, 6)
	}
	rs := ComputeRepurchase(log, f.cat, 0.5)
	if !rs.IsRepurchasable(f.water) {
		t.Fatal("water category should be repurchasable")
	}
	s := NewSelector(f.cat, f.cooc)
	s.Repurchase = rs
	got := s.ForPurchase(5)
	if !has(got, 6) {
		t.Fatalf("ForPurchase(5) = %v: repurchasable category lost its own items", got)
	}
	// Without repurchase stats the same query subtracts water.
	s.Repurchase = nil
	got = s.ForPurchase(5)
	if has(got, 6) {
		t.Fatalf("ForPurchase(5) without repurchase stats = %v: substitutes kept", got)
	}
}

func TestInStockFilterAndCap(t *testing.T) {
	f := buildFx(t)
	for u := 0; u < 4; u++ {
		f.coview(interactions.UserID(u), 0, 1)
	}
	f.cat.SetStock(3, false)
	s := NewSelector(f.cat, f.cooc)
	got := s.ForView(0)
	if has(got, 3) {
		t.Fatal("out-of-stock item in candidates")
	}
	s.InStockOnly = false
	if got = s.ForView(0); !has(got, 3) {
		t.Fatal("stock filter applied when disabled")
	}
	s.MaxCandidates = 2
	if got = s.ForView(0); len(got) != 2 {
		t.Fatalf("cap not applied: %v", got)
	}
}

func TestFilterByFacets(t *testing.T) {
	f := buildFx(t)
	// Query item 0 is black; candidates: 2 (black case), 3 (red case).
	got := FilterByFacets(f.cat, 0, []catalog.ItemID{2, 3}, []string{"color"})
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("FilterByFacets = %v, want [2]", got)
	}
	// Query without facets: unconstrained.
	got = FilterByFacets(f.cat, 1, []catalog.ItemID{2, 3}, []string{"color"})
	if len(got) != 2 {
		t.Fatalf("facetless query filtered: %v", got)
	}
	// No keys: unchanged.
	got = FilterByFacets(f.cat, 0, []catalog.ItemID{2, 3}, nil)
	if len(got) != 2 {
		t.Fatalf("no-keys call filtered: %v", got)
	}
}

func TestRepurchaseStats(t *testing.T) {
	f := buildFx(t)
	log := interactions.NewLog()
	// 4 water buyers, 2 repeat (50%); gaps of 10 and 20.
	log.Append(interactions.Event{User: 0, Item: 5, Type: interactions.Conversion, Time: 0})
	log.Append(interactions.Event{User: 0, Item: 5, Type: interactions.Conversion, Time: 10})
	log.Append(interactions.Event{User: 1, Item: 6, Type: interactions.Conversion, Time: 0})
	log.Append(interactions.Event{User: 1, Item: 6, Type: interactions.Conversion, Time: 20})
	log.Append(interactions.Event{User: 2, Item: 5, Type: interactions.Conversion, Time: 5})
	log.Append(interactions.Event{User: 3, Item: 6, Type: interactions.Conversion, Time: 7})
	// One phone buyer, no repeats. Views never count.
	log.Append(interactions.Event{User: 0, Item: 0, Type: interactions.Conversion, Time: 3})
	log.Append(interactions.Event{User: 1, Item: 0, Type: interactions.View, Time: 4})

	rs := ComputeRepurchase(log, f.cat, 0.4)
	if got := rs.RepeatRate(f.water); got != 0.5 {
		t.Fatalf("water repeat rate = %v, want 0.5", got)
	}
	if !rs.IsRepurchasable(f.water) {
		t.Fatal("water not repurchasable at threshold 0.4")
	}
	if rs.IsRepurchasable(f.phones) {
		t.Fatal("phones repurchasable?")
	}
	if got := rs.MeanInterval(f.water); got != 15 {
		t.Fatalf("water mean interval = %v, want 15", got)
	}
	if !rs.DuePeriodicRecommendation(f.water, 0, 15) {
		t.Fatal("periodic recommendation not due at the mean interval")
	}
	if rs.DuePeriodicRecommendation(f.water, 0, 5) {
		t.Fatal("periodic recommendation due too early")
	}
	if rs.DuePeriodicRecommendation(f.phones, 0, 1000) {
		t.Fatal("non-repurchasable category due for periodic recommendation")
	}
}
