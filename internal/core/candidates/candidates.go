// Package candidates implements Sigmund's inference-time candidate
// selection (Section III-D1). Scoring every item in a multi-million item
// catalog for every context is infeasible, so inference first narrows to
// roughly a thousand plausible items and only ranks those. The paper's
// recipes:
//
//	view-based      C = ∪_{j ∈ cv(i)} lca_k(j)            (k = 2 works best)
//	purchase-based  C = ∪_{j ∈ cb(i)} lca_1(j) \ lca_1(i) (k = 1 works best)
//
// i.e. expand the co-viewed (resp. co-bought) items through the taxonomy,
// and for purchases remove the query item's own near-substitutes — the user
// already bought one. Repurchasable categories (diapers, water) skip the
// subtraction and instead get periodic re-recommendation; late-funnel users
// get candidates further constrained to matching item facets.
package candidates

import (
	"sort"

	"sigmund/internal/catalog"
	"sigmund/internal/cooccur"
	"sigmund/internal/interactions"
	"sigmund/internal/taxonomy"
)

// Selector produces candidate sets for one retailer.
type Selector struct {
	Cat  *catalog.Catalog
	Cooc *cooccur.Model
	// ViewLCA is the taxonomy expansion radius for view-based candidates.
	// The paper found k=2 the best precision/coverage trade-off.
	ViewLCA int
	// BuyLCA is the radius for purchase-based candidates (paper: k=1).
	BuyLCA int
	// MinSupport filters weak co-occurrence edges.
	MinSupport int
	// MaxCandidates caps the returned set (paper: "about a thousand").
	MaxCandidates int
	// Repurchase, when set, disables substitute-subtraction for
	// repurchasable categories.
	Repurchase *RepurchaseStats
	// InStockOnly drops out-of-stock items from candidate sets.
	InStockOnly bool
}

// NewSelector returns a selector with the paper's settings.
func NewSelector(cat *catalog.Catalog, cooc *cooccur.Model) *Selector {
	return &Selector{
		Cat: cat, Cooc: cooc,
		ViewLCA: 2, BuyLCA: 1,
		MinSupport: 2, MaxCandidates: 1000,
		InStockOnly: true,
	}
}

// ForView returns candidates to show a user who viewed item i but has not
// purchased — substitute-flavoured recommendations. Cold items with no
// co-view data fall back to the item's own taxonomy neighbourhood, which is
// what keeps coverage on the long tail.
func (s *Selector) ForView(i catalog.ItemID) []catalog.ItemID {
	set := make(map[catalog.ItemID]struct{})
	seeds := s.Cooc.CoViewed(i, s.MinSupport)
	for _, j := range seeds {
		s.addLCAk(set, j, s.ViewLCA)
	}
	if len(set) == 0 {
		s.addLCAk(set, i, s.ViewLCA)
	}
	delete(set, i)
	return s.finish(set)
}

// ForPurchase returns candidates to show a user who purchased item i —
// complement/accessory-flavoured recommendations. The item's own
// near-substitutes (lca_1(i)) are removed unless its category is
// repurchasable.
func (s *Selector) ForPurchase(i catalog.ItemID) []catalog.ItemID {
	set := make(map[catalog.ItemID]struct{})
	seeds := s.Cooc.CoBought(i, s.MinSupport)
	for _, j := range seeds {
		s.addLCAk(set, j, s.BuyLCA)
	}
	if len(set) == 0 {
		// Cold item: fall back to co-viewed expansion, then taxonomy.
		for _, j := range s.Cooc.CoViewed(i, s.MinSupport) {
			s.addLCAk(set, j, s.BuyLCA)
		}
	}
	if len(set) == 0 {
		s.addLCAk(set, i, s.ViewLCA)
	}
	cat := s.Cat.Item(i).Category
	if s.Repurchase == nil || !s.Repurchase.IsRepurchasable(cat) {
		for _, sub := range s.Cat.LCAk(i, s.BuyLCA) {
			delete(set, sub)
		}
	}
	delete(set, i)
	return s.finish(set)
}

func (s *Selector) addLCAk(set map[catalog.ItemID]struct{}, j catalog.ItemID, k int) {
	for _, c := range s.Cat.LCAk(j, k) {
		set[c] = struct{}{}
	}
}

// finish applies the stock filter, sorts deterministically, and truncates.
func (s *Selector) finish(set map[catalog.ItemID]struct{}) []catalog.ItemID {
	out := make([]catalog.ItemID, 0, len(set))
	for id := range set {
		if s.InStockOnly && !s.Cat.Item(id).InStock {
			continue
		}
		out = append(out, id)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	if s.MaxCandidates > 0 && len(out) > s.MaxCandidates {
		out = out[:s.MaxCandidates]
	}
	return out
}

// FilterByFacets restricts cands to items sharing the query item's values
// for the given facet keys — the late-funnel tightening from the paper
// ("for late funnel users ... we select candidates that are further
// constrained to have the same item facets"). Facets absent on the query
// item are not constrained.
func FilterByFacets(cat *catalog.Catalog, query catalog.ItemID, cands []catalog.ItemID, keys []string) []catalog.ItemID {
	q := cat.Item(query).Facets
	if len(q) == 0 || len(keys) == 0 {
		return cands
	}
	out := cands[:0:0]
	for _, id := range cands {
		f := cat.Item(id).Facets
		ok := true
		for _, k := range keys {
			want, has := q[k]
			if !has {
				continue
			}
			if f[k] != want {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, id)
		}
	}
	return out
}

// RepurchaseStats estimates which categories are habitually repurchased
// and at what cadence, by counting users with repeat conversions in the
// same category.
type RepurchaseStats struct {
	// repeatRate[node] = users with >= 2 conversions in the category /
	// users with >= 1.
	repeatRate map[taxonomy.NodeID]float64
	// meanInterval[node] = average time between a user's consecutive
	// conversions in the category (event-time ticks).
	meanInterval map[taxonomy.NodeID]float64
	// Threshold above which a category counts as repurchasable.
	Threshold float64
}

// ComputeRepurchase scans the log's conversions once.
func ComputeRepurchase(log *interactions.Log, cat *catalog.Catalog, threshold float64) *RepurchaseStats {
	type userCat struct {
		u interactions.UserID
		c taxonomy.NodeID
	}
	times := make(map[userCat][]int64)
	for _, e := range log.Events() {
		if e.Type != interactions.Conversion {
			continue
		}
		if int(e.Item) < 0 || int(e.Item) >= cat.NumItems() {
			continue
		}
		k := userCat{e.User, cat.Item(e.Item).Category}
		times[k] = append(times[k], e.Time)
	}
	buyers := make(map[taxonomy.NodeID]int)
	repeaters := make(map[taxonomy.NodeID]int)
	gapSum := make(map[taxonomy.NodeID]float64)
	gapN := make(map[taxonomy.NodeID]int)
	for k, ts := range times {
		buyers[k.c]++
		if len(ts) >= 2 {
			repeaters[k.c]++
			sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
			for i := 1; i < len(ts); i++ {
				gapSum[k.c] += float64(ts[i] - ts[i-1])
				gapN[k.c]++
			}
		}
	}
	rs := &RepurchaseStats{
		repeatRate:   make(map[taxonomy.NodeID]float64),
		meanInterval: make(map[taxonomy.NodeID]float64),
		Threshold:    threshold,
	}
	for c, b := range buyers {
		rs.repeatRate[c] = float64(repeaters[c]) / float64(b)
		if gapN[c] > 0 {
			rs.meanInterval[c] = gapSum[c] / float64(gapN[c])
		}
	}
	return rs
}

// IsRepurchasable reports whether the category's repeat-purchase rate
// clears the threshold.
func (r *RepurchaseStats) IsRepurchasable(c taxonomy.NodeID) bool {
	return r.repeatRate[c] >= r.Threshold && r.Threshold > 0
}

// RepeatRate returns the fraction of the category's buyers who repurchased.
func (r *RepurchaseStats) RepeatRate(c taxonomy.NodeID) float64 { return r.repeatRate[c] }

// MeanInterval returns the average gap between repeat purchases in the
// category (0 when unknown) — the cadence for periodic re-recommendation.
func (r *RepurchaseStats) MeanInterval(c taxonomy.NodeID) float64 { return r.meanInterval[c] }

// DuePeriodicRecommendation reports whether a repurchasable-category item
// bought at lastPurchase should be re-recommended at now.
func (r *RepurchaseStats) DuePeriodicRecommendation(c taxonomy.NodeID, lastPurchase, now int64) bool {
	if !r.IsRepurchasable(c) {
		return false
	}
	iv := r.meanInterval[c]
	return iv > 0 && float64(now-lastPurchase) >= iv
}
