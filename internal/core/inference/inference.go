// Package inference implements Sigmund's offline inference job (Section
// IV-C): for each retailer's best model, materialize the top-K
// recommendations for every item in the inventory, so serving is a cheap
// lookup. The computational cost is roughly linear in the number of items
// because candidate selection bounds the per-item ranking work.
//
// The package also implements the job's parallelization strategy: retailers
// are partitioned across cells with a greedy first-fit (largest-first)
// bin-packing heuristic weighted by inventory size, which minimizes the
// overall makespan given the power-law skew in retailer sizes (Section
// IV-C1).
package inference

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"sigmund/internal/catalog"
	"sigmund/internal/core/hybrid"
	"sigmund/internal/mapreduce"
	"sigmund/internal/obs"
)

// ItemRecs is the materialized output for one item: the ranked
// recommendation lists served before (view) and after (purchase) the
// purchase decision — Figure 1's two surfaces.
type ItemRecs struct {
	Item     catalog.ItemID  `json:"item"`
	View     []hybrid.Scored `json:"view"`
	Purchase []hybrid.Scored `json:"purchase"`
	// LateFunnel is the facet-constrained view surface for users deep in
	// the purchase funnel (empty when facet materialization is off or the
	// constraint would leave too few items).
	LateFunnel []hybrid.Scored `json:"late_funnel,omitempty"`
}

// Options configures a materialization run.
type Options struct {
	// TopK recommendations per item per surface.
	TopK int
	// Workers is the parallelism (map tasks run concurrently; each task
	// is single-threaded per the paper, with multithreading inside the
	// scoring code).
	Workers int
	// SkipOutOfStock omits out-of-stock query items entirely.
	SkipOutOfStock bool
	// LateFunnelFacets enables materializing the facet-constrained
	// late-funnel surface with these facet keys (nil = off).
	LateFunnelFacets []string
	// Substrate configures worker preemption/lease/speculation for the
	// underlying MapReduce (zero value: reliable workers).
	Substrate mapreduce.Substrate
	// Metrics optionally reports the underlying MapReduce's lifecycle into
	// an obs.Registry. nil disables.
	Metrics *obs.Registry
}

// Defaulted fills zeros.
func (o Options) Defaulted() Options {
	if o.TopK <= 0 {
		o.TopK = 10
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	return o
}

// Materialize computes ItemRecs for every item using the hybrid
// recommender. It runs as a map-only MapReduce over the item ids so the
// fault-tolerance and parallelism semantics match the production job.
func Materialize(ctx context.Context, rec *hybrid.Recommender, cat *catalog.Catalog, opts Options) ([]ItemRecs, error) {
	out, _, err := MaterializeStats(ctx, rec, cat, opts)
	return out, err
}

// MaterializeStats is Materialize exposing the underlying job's counters,
// which the pipeline rolls into the day's report and /statz.
func MaterializeStats(ctx context.Context, rec *hybrid.Recommender, cat *catalog.Catalog, opts Options) ([]ItemRecs, mapreduce.Counters, error) {
	opts = opts.Defaulted()
	input := make([]mapreduce.Record, 0, cat.NumItems())
	for i := 0; i < cat.NumItems(); i++ {
		if opts.SkipOutOfStock && !cat.Item(catalog.ItemID(i)).InStock {
			continue
		}
		input = append(input, mapreduce.Record{Key: itemKey(len(input), catalog.ItemID(i))})
	}
	// Results flow through emit into attempt-isolated buffers rather than
	// side-effect writes into a shared slice: with the worker substrate,
	// two attempts of one task can be live at once (a zombie whose lease
	// expired, or a speculative backup racing its primary), and only the
	// committed attempt's output may count.
	mapper := mapreduce.MapperFunc(func(mctx context.Context, r mapreduce.Record, emit mapreduce.Emit) error {
		if err := mctx.Err(); err != nil {
			return err
		}
		_, id, err := parseItemKey(r.Key)
		if err != nil {
			return err
		}
		ir := ItemRecs{Item: id}
		ir.View = truncate(rec.RecommendForView(id), opts.TopK)
		ir.Purchase = truncate(rec.RecommendForPurchase(id), opts.TopK)
		if len(opts.LateFunnelFacets) > 0 {
			ir.LateFunnel = truncate(rec.RecommendForViewLateFunnel(id, opts.LateFunnelFacets), opts.TopK)
		}
		emit(r.Key, EncodeItemRecs(ir))
		return nil
	})
	spec := mapreduce.Spec{
		Name:        "inference/" + string(cat.Retailer),
		NumMapTasks: opts.Workers * 4,
		Workers:     opts.Workers,
		Substrate:   opts.Substrate,
		Metrics:     opts.Metrics,
	}
	res, err := mapreduce.Run(ctx, spec, input, mapper, nil)
	if err != nil {
		return nil, res.Counters, err
	}
	out := make([]ItemRecs, len(input))
	for _, kv := range res.Output {
		idx, _, err := parseItemKey(kv.Key)
		if err != nil {
			return nil, res.Counters, err
		}
		if idx < 0 || idx >= len(out) {
			return nil, res.Counters, fmt.Errorf("inference: ordinal %d out of range", idx)
		}
		ir, err := DecodeItemRecs(kv.Value)
		if err != nil {
			return nil, res.Counters, err
		}
		out[idx] = ir
	}
	return out, res.Counters, nil
}

// EncodeItemRecs serializes one item's recommendations into the compact
// binary form shuffled through the materialization job.
func EncodeItemRecs(ir ItemRecs) []byte {
	buf := binary.AppendUvarint(nil, uint64(ir.Item))
	for _, list := range [][]hybrid.Scored{ir.View, ir.Purchase, ir.LateFunnel} {
		buf = binary.AppendUvarint(buf, uint64(len(list)))
		for _, s := range list {
			buf = binary.AppendUvarint(buf, uint64(s.Item))
			buf = binary.AppendUvarint(buf, math.Float64bits(s.Score))
			buf = append(buf, byte(s.Source))
		}
	}
	return buf
}

// DecodeItemRecs inverts EncodeItemRecs.
func DecodeItemRecs(b []byte) (ItemRecs, error) {
	var ir ItemRecs
	item, n := binary.Uvarint(b)
	if n <= 0 {
		return ir, fmt.Errorf("inference: truncated ItemRecs payload")
	}
	b = b[n:]
	ir.Item = catalog.ItemID(item)
	for i := 0; i < 3; i++ {
		count, n := binary.Uvarint(b)
		if n <= 0 {
			return ir, fmt.Errorf("inference: truncated ItemRecs list header")
		}
		b = b[n:]
		var list []hybrid.Scored
		for j := uint64(0); j < count; j++ {
			var s hybrid.Scored
			id, n := binary.Uvarint(b)
			if n <= 0 {
				return ir, fmt.Errorf("inference: truncated scored item")
			}
			b = b[n:]
			bits, n := binary.Uvarint(b)
			if n <= 0 || len(b[n:]) < 1 {
				return ir, fmt.Errorf("inference: truncated scored payload")
			}
			b = b[n:]
			s.Item = catalog.ItemID(id)
			s.Score = math.Float64frombits(bits)
			s.Source = hybrid.Source(b[0])
			b = b[1:]
			list = append(list, s)
		}
		switch i {
		case 0:
			ir.View = list
		case 1:
			ir.Purchase = list
		case 2:
			ir.LateFunnel = list
		}
	}
	if len(b) != 0 {
		return ir, fmt.Errorf("inference: %d trailing bytes in ItemRecs payload", len(b))
	}
	return ir, nil
}

func truncate(s []hybrid.Scored, k int) []hybrid.Scored {
	if len(s) > k {
		return s[:k]
	}
	return s
}

// itemKey encodes (ordinal, item) so the mapper can write results into a
// pre-sized slice without locks: ordinals are dense over the input even
// when stock filtering leaves gaps in the item-id sequence.
func itemKey(ordinal int, id catalog.ItemID) string {
	return strconv.Itoa(ordinal) + ":" + strconv.Itoa(int(id))
}

func parseItemKey(key string) (int, catalog.ItemID, error) {
	colon := strings.IndexByte(key, ':')
	if colon < 0 {
		return 0, 0, fmt.Errorf("inference: malformed item key %q", key)
	}
	ord, err := strconv.Atoi(key[:colon])
	if err != nil {
		return 0, 0, fmt.Errorf("inference: malformed item key %q: %w", key, err)
	}
	id, err := strconv.Atoi(key[colon+1:])
	if err != nil {
		return 0, 0, fmt.Errorf("inference: malformed item key %q: %w", key, err)
	}
	return ord, catalog.ItemID(id), nil
}

// Bin-packing -----------------------------------------------------------

// Partition assigns weighted retailers to bins (cells/machine pools),
// returning bin indices parallel to the input. Strategy selects the
// heuristic.
type Strategy uint8

const (
	// GreedyFirstFit sorts retailers by descending weight and assigns each
	// to the currently lightest bin — the paper's heuristic (also known as
	// LPT scheduling), within 4/3 of optimal makespan.
	GreedyFirstFit Strategy = iota
	// RoundRobin ignores weights (the strawman baseline).
	RoundRobin
	// InOrderFirstFit assigns in given order to the lightest bin
	// (sensitive to input order; between the two above).
	InOrderFirstFit
)

func (s Strategy) String() string {
	switch s {
	case GreedyFirstFit:
		return "greedy-first-fit"
	case RoundRobin:
		return "round-robin"
	case InOrderFirstFit:
		return "in-order-first-fit"
	}
	return "unknown"
}

// Assignment is the result of a partition.
type Assignment struct {
	// Bin[i] is the bin index for input weight i.
	Bin []int
	// Load[b] is the total weight assigned to bin b.
	Load []float64
}

// Makespan returns the heaviest bin's load — the job completes when the
// slowest cell finishes.
func (a Assignment) Makespan() float64 {
	var m float64
	for _, l := range a.Load {
		if l > m {
			m = l
		}
	}
	return m
}

// Imbalance returns makespan / mean load (1.0 = perfectly balanced).
func (a Assignment) Imbalance() float64 {
	var sum float64
	for _, l := range a.Load {
		sum += l
	}
	if sum == 0 {
		return 1
	}
	mean := sum / float64(len(a.Load))
	return a.Makespan() / mean
}

// Partition distributes weights into bins using the strategy. Weights are
// retailer inventory sizes: "the computational cost of inference is roughly
// linearly proportional to the number of items".
func Partition(weights []float64, bins int, strategy Strategy) Assignment {
	if bins <= 0 {
		bins = 1
	}
	a := Assignment{Bin: make([]int, len(weights)), Load: make([]float64, bins)}
	switch strategy {
	case RoundRobin:
		for i, w := range weights {
			b := i % bins
			a.Bin[i] = b
			a.Load[b] += w
		}
	case InOrderFirstFit:
		for i, w := range weights {
			b := lightest(a.Load)
			a.Bin[i] = b
			a.Load[b] += w
		}
	default: // GreedyFirstFit
		order := make([]int, len(weights))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(x, y int) bool { return weights[order[x]] > weights[order[y]] })
		for _, i := range order {
			b := lightest(a.Load)
			a.Bin[i] = b
			a.Load[b] += weights[i]
		}
	}
	return a
}

func lightest(load []float64) int {
	best := 0
	for i := 1; i < len(load); i++ {
		if load[i] < load[best] {
			best = i
		}
	}
	return best
}
