package inference

import (
	"context"
	"math"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"sigmund/internal/catalog"
	"sigmund/internal/cooccur"
	"sigmund/internal/core/bpr"
	"sigmund/internal/core/candidates"
	"sigmund/internal/core/hybrid"
	"sigmund/internal/interactions"
	"sigmund/internal/linalg"
	"sigmund/internal/mapreduce"
	"sigmund/internal/preempt"
	"sigmund/internal/synth"
)

func buildRecommender(t testing.TB, seed uint64) (*hybrid.Recommender, *catalog.Catalog) {
	t.Helper()
	r := synth.GenerateRetailer(synth.RetailerSpec{
		NumItems: 120, NumUsers: 100, EventsPerUserMean: 12, NumBrands: 5, BrandCoverage: 0.6, Seed: seed,
	})
	cooc := cooccur.FromLog(r.Log, r.Catalog.NumItems(), 5)
	stats := interactions.ComputeItemStats(r.Log, r.Catalog.NumItems())
	h := bpr.DefaultHyperparams()
	h.Factors = 6
	m, err := bpr.NewModel(h, r.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	ds := bpr.NewDataset(r.Log, r.Catalog)
	if _, err := bpr.Train(context.Background(), m, ds, bpr.TrainOptions{Epochs: 6, Threads: 2, Cooc: cooc}); err != nil {
		t.Fatal(err)
	}
	sel := candidates.NewSelector(r.Catalog, cooc)
	return hybrid.NewRecommender(cooc, m, sel, stats), r.Catalog
}

func TestMaterializeCoversCatalog(t *testing.T) {
	rec, cat := buildRecommender(t, 61)
	out, err := Materialize(context.Background(), rec, cat, Options{TopK: 5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != cat.NumItems() {
		t.Fatalf("materialized %d of %d items", len(out), cat.NumItems())
	}
	seen := map[catalog.ItemID]bool{}
	withRecs := 0
	for _, ir := range out {
		if seen[ir.Item] {
			t.Fatalf("item %d materialized twice", ir.Item)
		}
		seen[ir.Item] = true
		if len(ir.View) > 5 || len(ir.Purchase) > 5 {
			t.Fatalf("TopK exceeded for item %d", ir.Item)
		}
		for _, s := range ir.View {
			if s.Item == ir.Item {
				t.Fatalf("item %d recommends itself", ir.Item)
			}
		}
		if len(ir.View) > 0 {
			withRecs++
		}
	}
	// The coverage claim: nearly every item gets view recommendations.
	if withRecs < cat.NumItems()*8/10 {
		t.Fatalf("only %d/%d items have view recs", withRecs, cat.NumItems())
	}
}

func TestMaterializeSkipsOutOfStock(t *testing.T) {
	rec, cat := buildRecommender(t, 62)
	cat.SetStock(0, false)
	cat.SetStock(5, false)
	out, err := Materialize(context.Background(), rec, cat, Options{TopK: 5, Workers: 2, SkipOutOfStock: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != cat.NumItems()-2 {
		t.Fatalf("materialized %d, want %d", len(out), cat.NumItems()-2)
	}
	for _, ir := range out {
		if ir.Item == 0 || ir.Item == 5 {
			t.Fatal("out-of-stock query item materialized")
		}
	}
}

func TestMaterializeHonorsCancellation(t *testing.T) {
	rec, cat := buildRecommender(t, 63)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Materialize(ctx, rec, cat, Options{}); err == nil {
		t.Fatal("expected cancellation error")
	}
}

func TestItemKeyRoundTrip(t *testing.T) {
	k := itemKey(17, 345)
	ord, id, err := parseItemKey(k)
	if err != nil || ord != 17 || id != 345 {
		t.Fatalf("roundtrip: %d %d %v", ord, id, err)
	}
	for _, bad := range []string{"", "nocolon", "x:1", "1:y"} {
		if _, _, err := parseItemKey(bad); err == nil {
			t.Fatalf("parseItemKey(%q) succeeded", bad)
		}
	}
}

func powerLawWeights(n int, seed uint64) []float64 {
	rng := linalg.NewRNG(seed)
	w := make([]float64, n)
	for i := range w {
		w[i] = math.Pow(float64(rng.Intn(1000)+1), 1.5)
	}
	return w
}

func TestPartitionAssignsAll(t *testing.T) {
	w := powerLawWeights(50, 1)
	for _, s := range []Strategy{GreedyFirstFit, RoundRobin, InOrderFirstFit} {
		a := Partition(w, 4, s)
		if len(a.Bin) != 50 || len(a.Load) != 4 {
			t.Fatalf("%v: shape wrong", s)
		}
		var total float64
		loads := make([]float64, 4)
		for i, b := range a.Bin {
			if b < 0 || b >= 4 {
				t.Fatalf("%v: bin %d out of range", s, b)
			}
			loads[b] += w[i]
			total += w[i]
		}
		for b := range loads {
			if math.Abs(loads[b]-a.Load[b]) > 1e-9 {
				t.Fatalf("%v: reported load mismatch bin %d", s, b)
			}
		}
	}
}

func TestGreedyBeatsRoundRobinOnSkewedInput(t *testing.T) {
	// The paper's C8 claim at unit-test scale: on power-law weights the
	// greedy largest-first heuristic yields a lower makespan.
	w := powerLawWeights(60, 7)
	greedy := Partition(w, 5, GreedyFirstFit)
	rr := Partition(w, 5, RoundRobin)
	if greedy.Makespan() >= rr.Makespan() {
		t.Fatalf("greedy makespan %v >= round-robin %v", greedy.Makespan(), rr.Makespan())
	}
	if greedy.Imbalance() > 1.35 {
		t.Fatalf("greedy imbalance %v exceeds LPT bound regime", greedy.Imbalance())
	}
}

func TestPartitionEdgeCases(t *testing.T) {
	a := Partition(nil, 3, GreedyFirstFit)
	if len(a.Bin) != 0 || a.Makespan() != 0 {
		t.Fatal("empty input")
	}
	if a.Imbalance() != 1 {
		t.Fatal("empty imbalance should be 1")
	}
	a = Partition([]float64{5}, 0, GreedyFirstFit) // bins clamped to 1
	if a.Bin[0] != 0 || a.Load[0] != 5 {
		t.Fatal("single-bin clamp")
	}
	if GreedyFirstFit.String() == "" || RoundRobin.String() == "" || InOrderFirstFit.String() == "" || Strategy(9).String() != "unknown" {
		t.Fatal("strategy strings")
	}
}

func TestGreedyWithinLPTBound(t *testing.T) {
	// LPT guarantee: makespan <= (4/3 - 1/(3m)) * OPT, and OPT >= total/m,
	// OPT >= max weight. Check against the lower bound.
	w := powerLawWeights(40, 3)
	m := 4
	a := Partition(w, m, GreedyFirstFit)
	var total, maxW float64
	for _, x := range w {
		total += x
		if x > maxW {
			maxW = x
		}
	}
	lower := total / float64(m)
	if maxW > lower {
		lower = maxW
	}
	bound := (4.0/3.0 - 1.0/(3.0*float64(m))) * lower
	// a.Makespan() <= 4/3*OPT and OPT >= lower, so this is conservative
	// only when OPT == lower; allow small slack.
	if a.Makespan() > bound*1.34 {
		t.Fatalf("greedy makespan %v way above LPT regime (lower bound %v)", a.Makespan(), lower)
	}
}

func TestItemRecsCodecRoundTrip(t *testing.T) {
	ir := ItemRecs{
		Item: 42,
		View: []hybrid.Scored{
			{Item: 7, Score: 1.5, Source: hybrid.FromCooccurrence},
			{Item: 900000, Score: -0.25, Source: hybrid.FromFactorization},
		},
		Purchase:   []hybrid.Scored{{Item: 3, Score: math.Inf(1), Source: hybrid.FromFactorization}},
		LateFunnel: nil,
	}
	got, err := DecodeItemRecs(EncodeItemRecs(ir))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ir) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, ir)
	}
	if _, err := DecodeItemRecs([]byte{0x01}); err == nil {
		t.Fatal("truncated payload decoded without error")
	}
	if _, err := DecodeItemRecs(append(EncodeItemRecs(ir), 0xff)); err == nil {
		t.Fatal("trailing garbage decoded without error")
	}
}

func TestMaterializeUnderPreemption(t *testing.T) {
	// The emit-based output path must survive worker preemption with
	// byte-identical results: attempts re-run but only one commits. A
	// zero-delay injected crash guarantees at least one preemption
	// (deterministic at attempt start) on top of the timed exponential
	// arrivals, which may or may not fire on fast tasks.
	rec, cat := buildRecommender(t, 62)
	control, err := Materialize(context.Background(), rec, cat, Options{TopK: 5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var crashed atomic.Bool
	chaotic, counters, err := MaterializeStats(context.Background(), rec, cat, Options{
		TopK: 5, Workers: 4,
		Substrate: mapreduce.Substrate{
			Preemption: preempt.FromMeanBetween(500*time.Microsecond, 13),
			WorkerFaults: func(_ mapreduce.Phase, _, _, _, _ int) (mapreduce.WorkerFault, time.Duration) {
				if crashed.CompareAndSwap(false, true) {
					return mapreduce.WorkerCrash, 0
				}
				return mapreduce.WorkerOK, 0
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if counters.Preemptions == 0 {
		t.Fatal("expected at least the injected preemption")
	}
	if !reflect.DeepEqual(control, chaotic) {
		t.Fatal("preempted materialization differs from fault-free control")
	}
}
