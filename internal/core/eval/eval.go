// Package eval implements the ranking goodness metrics from Section III-C2
// of the paper. The evaluation protocol: for every user with more than two
// interactions, the final item of their sequence is held out; the model
// ranks all items for that user's context, and the metric rewards placing
// the held-out item near the top.
//
// Sigmund selects models by MAP@10 — it weights the top of the list, where
// the (at most ~10) recommendation slots are. AUC is computed but
// deliberately not used for selection: it treats all rank positions
// equally, and for large retailers the AUC gap between a good and a
// mediocre model hides in the fourth decimal. For very large catalogs the
// package supports estimating metrics on a sampled subset of items (the
// paper samples 10%) to save CPU.
package eval

import (
	"math"

	"sigmund/internal/catalog"
	"sigmund/internal/interactions"
	"sigmund/internal/linalg"
)

// Scorer produces affinity scores for every item under a user context.
// *bpr.Model implements it; so do the co-occurrence and hybrid adapters.
type Scorer interface {
	ScoreAll(ctx interactions.Context, out []float64)
}

// SubsetScorer is the optional fast path for sampled evaluation: score only
// a candidate subset instead of the whole catalog. This is where the
// paper's 10% sampling actually saves CPU — without it, sampling only skips
// comparisons, not scoring. *bpr.Model implements it.
type SubsetScorer interface {
	ScoreSubset(ctx interactions.Context, items []catalog.ItemID, out []float64)
}

// Options configures an evaluation pass.
type Options struct {
	// K is the ranking cutoff (10 in production: "most recommender
	// applications are constrained to show fewer than 10 items").
	K int
	// SampleFraction estimates ranks on a uniform item sample when < 1
	// (the paper uses 0.10 for very large retailers). 0 or 1 = exact.
	SampleFraction float64
	// Seed drives the item sampling.
	Seed uint64
	// ExcludeContext removes items present in the user's context from the
	// candidate ranking (they were used for training; recommending them
	// back is trivial). Default true via DefaultOptions.
	ExcludeContext bool
}

// DefaultOptions returns the production settings: MAP@10, exact ranks,
// context items excluded.
func DefaultOptions() Options {
	return Options{K: 10, SampleFraction: 1.0, ExcludeContext: true}
}

// Result aggregates metrics over a holdout set.
type Result struct {
	MAP       float64 // MAP@K — the model-selection metric
	Precision float64 // Precision@K
	Recall    float64 // Recall@K
	NDCG      float64 // NDCG@K
	AUC       float64
	Examples  int // holdout examples evaluated
	// NonFinite counts NaN/Inf scores seen during ranking. Non-finite
	// competitor scores are excluded from the comparison set; a non-finite
	// positive score forces the worst rank (zero credit). Without this a
	// NaN positive score makes every comparison false and silently ranks
	// first — a degenerate model would look perfect.
	NonFinite int
}

func finite(f float64) bool {
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}

// Evaluate scores every holdout example and aggregates the metrics.
// numItems must match the scorer's item space.
func Evaluate(s Scorer, holdout []interactions.HoldoutExample, numItems int, opts Options) Result {
	var r Result
	if len(holdout) == 0 || numItems == 0 {
		return r
	}
	if opts.K <= 0 {
		opts.K = 10
	}
	sampled := opts.SampleFraction > 0 && opts.SampleFraction < 1
	subsetScorer, fastSample := s.(SubsetScorer)
	fastSample = fastSample && sampled
	rng := linalg.NewRNG(opts.Seed ^ 0x5eed)
	scores := make([]float64, numItems)
	var sampleIDs []catalog.ItemID
	var sampleScores []float64
	var sumAP, sumP, sumRec, sumNDCG, sumAUC float64
	for _, h := range holdout {
		if int(h.Item) < 0 || int(h.Item) >= numItems {
			continue
		}
		var rank, total int
		posBad := false
		if fastSample {
			// Fast path: draw ~fraction*n candidate items (with
			// replacement) and score ONLY those plus the positive — this is
			// how sampling cuts CPU on huge catalogs.
			k := int(opts.SampleFraction * float64(numItems))
			if k < 1 {
				k = 1
			}
			sampleIDs = sampleIDs[:0]
			sampleIDs = append(sampleIDs, h.Item)
			for d := 0; d < k; d++ {
				j := catalog.ItemID(rng.Intn(numItems))
				if j == h.Item {
					continue
				}
				if opts.ExcludeContext && h.Context.Contains(j) {
					continue
				}
				sampleIDs = append(sampleIDs, j)
			}
			if cap(sampleScores) < len(sampleIDs) {
				sampleScores = make([]float64, len(sampleIDs))
			}
			sampleScores = sampleScores[:len(sampleIDs)]
			subsetScorer.ScoreSubset(h.Context, sampleIDs, sampleScores)
			pos := sampleScores[0]
			posBad = !finite(pos)
			if posBad {
				r.NonFinite++
			}
			higher := 0.0
			drawn := 0
			for _, sc := range sampleScores[1:] {
				if !finite(sc) {
					r.NonFinite++
					continue
				}
				drawn++
				if sc > pos {
					higher++
				} else if sc == pos {
					higher += 0.5 // ties count half: no optimistic tie-break
				}
			}
			eligibleTotal := numItems - 1 // approximate; context overlap is tiny
			if drawn > 0 {
				rank = 1 + int(higher*float64(eligibleTotal)/float64(drawn))
			} else {
				rank = 1
			}
			total = numItems
			if posBad {
				rank = total
			}
		} else {
			s.ScoreAll(h.Context, scores)
			pos := scores[h.Item]
			posBad = !finite(pos)
			if posBad {
				r.NonFinite++
			}

			// rank = 1 + competitors scoring strictly higher + half the
			// exact ties. Counting ties half matters: a weak model that
			// gives whole groups of items identical scores must not get
			// credit for ranking the positive "first" within its group.
			var higher float64
			eligible := 0
			for j := 0; j < numItems; j++ {
				if j == int(h.Item) {
					continue
				}
				if opts.ExcludeContext && h.Context.Contains(catalog.ItemID(j)) {
					continue
				}
				if sampled && rng.Float64() >= opts.SampleFraction {
					continue
				}
				if !finite(scores[j]) {
					r.NonFinite++
					continue
				}
				eligible++
				if scores[j] > pos {
					higher++
				} else if scores[j] == pos {
					higher += 0.5
				}
			}
			rank = 1 + int(higher)
			total = eligible + 1
			if sampled && opts.SampleFraction > 0 {
				// Scale the sampled counts back to the full catalog.
				rank = 1 + int(higher/opts.SampleFraction)
				total = 1 + int(float64(eligible)/opts.SampleFraction)
			}
			if posBad {
				rank = total
			}
		}

		if !posBad && rank <= opts.K {
			// One relevant item: AP@K = 1/rank.
			sumAP += 1 / float64(rank)
			sumP += 1 / float64(opts.K)
			sumRec += 1
			sumNDCG += 1 / math.Log2(float64(rank)+1)
		}
		if total > 1 {
			sumAUC += float64(total-rank) / float64(total-1)
		}
		r.Examples++
	}
	if r.Examples == 0 {
		return r
	}
	n := float64(r.Examples)
	r.MAP = sumAP / n
	r.Precision = sumP / n
	r.Recall = sumRec / n
	r.NDCG = sumNDCG / n
	r.AUC = sumAUC / n
	return r
}

// RankOf returns the exact rank (1-based) the scorer assigns to item in the
// given context, with context items excluded. Used by diagnostics and
// tests. Non-finite competitor scores are excluded; a non-finite positive
// score ranks last among the finite competitors.
func RankOf(s Scorer, ctx interactions.Context, item catalog.ItemID, numItems int) int {
	scores := make([]float64, numItems)
	s.ScoreAll(ctx, scores)
	pos := scores[item]
	var higher float64
	eligible := 0
	for j := 0; j < numItems; j++ {
		if catalog.ItemID(j) == item || ctx.Contains(catalog.ItemID(j)) {
			continue
		}
		if !finite(scores[j]) {
			continue
		}
		eligible++
		if scores[j] > pos {
			higher++
		} else if scores[j] == pos {
			higher += 0.5
		}
	}
	if !finite(pos) {
		return eligible + 1
	}
	return 1 + int(higher)
}
