package eval

import (
	"math"
	"testing"

	"sigmund/internal/catalog"
	"sigmund/internal/interactions"
)

// fixedSubsetScorer is fixedScorer plus the sampled fast path.
type fixedSubsetScorer []float64

func (f fixedSubsetScorer) ScoreAll(_ interactions.Context, out []float64) {
	copy(out, f)
}

func (f fixedSubsetScorer) ScoreSubset(_ interactions.Context, items []catalog.ItemID, out []float64) {
	for i, it := range items {
		out[i] = f[it]
	}
}

// A scorer that emits NaN for the positive item used to score a perfect
// MAP before the fix: every comparison against NaN is false, so the
// positive "outranked" everything.
func TestEvaluateNaNPositiveScoresZero(t *testing.T) {
	nan := math.NaN()
	s := fixedScorer{1, 2, 3, 4, 5, 6, 7, 8, 9, nan}
	h := []interactions.HoldoutExample{holdout(9, 0), holdout(9, 1)}
	r := Evaluate(s, h, 10, DefaultOptions())
	if r.Examples != 2 {
		t.Fatalf("Examples = %d", r.Examples)
	}
	if r.MAP != 0 || r.Recall != 0 || r.NDCG != 0 || r.AUC != 0 {
		t.Fatalf("NaN positive must score zero, got %+v", r)
	}
	if r.NonFinite != 2 {
		t.Fatalf("NonFinite = %d, want 2 (one NaN positive per example)", r.NonFinite)
	}
}

func TestEvaluateAllNaNModelScoresZero(t *testing.T) {
	nan := math.NaN()
	s := fixedScorer{nan, nan, nan, nan, nan, nan, nan, nan, nan, nan}
	h := []interactions.HoldoutExample{holdout(9, 0)}
	r := Evaluate(s, h, 10, DefaultOptions())
	if r.MAP != 0 || r.AUC != 0 {
		t.Fatalf("all-NaN model must score zero, got %+v", r)
	}
	if r.NonFinite == 0 {
		t.Fatalf("NonFinite = 0, want > 0")
	}
}

func TestEvaluateNaNCompetitorsExcluded(t *testing.T) {
	// The positive scores highest among finite items; NaN/Inf competitors
	// are excluded from the comparison set, not ranked above or below.
	nan, inf := math.NaN(), math.Inf(1)
	s := fixedScorer{nan, inf, 1, 1, 1, 1, 1, 1, 1, 5}
	h := []interactions.HoldoutExample{holdout(9, 2)}
	r := Evaluate(s, h, 10, DefaultOptions())
	if r.MAP != 1 {
		t.Fatalf("MAP = %v, want 1 (positive tops all finite competitors)", r.MAP)
	}
	if r.NonFinite != 2 {
		t.Fatalf("NonFinite = %d, want 2", r.NonFinite)
	}
}

func TestEvaluateNaNSampledFastPath(t *testing.T) {
	nan := math.NaN()
	scores := make(fixedSubsetScorer, 200)
	for i := range scores {
		scores[i] = float64(i)
	}
	scores[199] = nan
	h := []interactions.HoldoutExample{holdout(199, 0)}
	opts := DefaultOptions()
	opts.SampleFraction = 0.5
	opts.Seed = 7
	r := Evaluate(scores, h, 200, opts)
	if r.MAP != 0 || r.AUC != 0 {
		t.Fatalf("sampled NaN positive must score zero, got %+v", r)
	}
	if r.NonFinite == 0 {
		t.Fatalf("NonFinite = 0, want > 0")
	}
}

func TestRankOfNaN(t *testing.T) {
	nan := math.NaN()
	s := fixedScorer{1, 2, nan, 4, 5}
	// NaN positive ranks last among the 4 finite competitors → rank 5.
	if got := RankOf(s, nil, 2, 5); got != 5 {
		t.Fatalf("RankOf(NaN positive) = %d, want 5", got)
	}
	// NaN competitor excluded: item 4 still ranks first.
	if got := RankOf(s, nil, 4, 5); got != 1 {
		t.Fatalf("RankOf with NaN competitor = %d, want 1", got)
	}
}
