package eval

import (
	"math"
	"testing"

	"sigmund/internal/catalog"
	"sigmund/internal/interactions"
)

// fixedScorer ranks items by a fixed score table regardless of context.
type fixedScorer []float64

func (f fixedScorer) ScoreAll(_ interactions.Context, out []float64) {
	copy(out, f)
}

// contextScorer gives score 1 to a designated item per context length,
// exercising context-dependent paths.
type perfectScorer struct{ target map[int]catalog.ItemID }

func (p perfectScorer) ScoreAll(ctx interactions.Context, out []float64) {
	for i := range out {
		out[i] = 0
	}
	if t, ok := p.target[len(ctx)]; ok {
		out[t] = 1
	}
}

func holdout(item catalog.ItemID, ctxItems ...catalog.ItemID) interactions.HoldoutExample {
	ctx := make(interactions.Context, len(ctxItems))
	for i, it := range ctxItems {
		ctx[i] = interactions.Action{Type: interactions.View, Item: it}
	}
	return interactions.HoldoutExample{User: 0, Context: ctx, Item: item}
}

func TestEvaluatePerfectModel(t *testing.T) {
	// 10 items; the held-out item always scores highest.
	s := fixedScorer{0, 0, 0, 0, 0, 0, 0, 0, 0, 9}
	h := []interactions.HoldoutExample{holdout(9, 0), holdout(9, 1)}
	r := Evaluate(s, h, 10, DefaultOptions())
	if r.Examples != 2 {
		t.Fatalf("Examples = %d", r.Examples)
	}
	if r.MAP != 1 || r.Recall != 1 || r.NDCG != 1 || r.AUC != 1 {
		t.Fatalf("perfect model metrics: %+v", r)
	}
	if math.Abs(r.Precision-0.1) > 1e-12 { // 1 relevant of K=10
		t.Fatalf("Precision = %v, want 0.1", r.Precision)
	}
}

func TestEvaluateRankTwo(t *testing.T) {
	// Held-out item ranked second: AP = 1/2, NDCG = 1/log2(3).
	s := fixedScorer{5, 3, 0, 0, 0, 0, 0, 0, 0, 0}
	h := []interactions.HoldoutExample{holdout(1, 4)}
	r := Evaluate(s, h, 10, DefaultOptions())
	if math.Abs(r.MAP-0.5) > 1e-12 {
		t.Fatalf("MAP = %v, want 0.5", r.MAP)
	}
	if math.Abs(r.NDCG-1/math.Log2(3)) > 1e-12 {
		t.Fatalf("NDCG = %v", r.NDCG)
	}
	// AUC: total=9 eligible+1? items 0..9 minus context item 4 = 9 candidates
	// incl. positive; rank 2 of 9 -> AUC = (9-2)/(9-1) = 0.875.
	if math.Abs(r.AUC-0.875) > 1e-12 {
		t.Fatalf("AUC = %v, want 0.875", r.AUC)
	}
}

func TestEvaluateBeyondK(t *testing.T) {
	// Positive ranked 11th with K=10: MAP/P/R/NDCG all zero, AUC > 0.
	scores := make(fixedScorer, 20)
	for i := 0; i < 11; i++ {
		scores[i] = float64(20 - i)
	}
	h := []interactions.HoldoutExample{holdout(11)} // score 0, 11 items above
	r := Evaluate(scores, h, 20, DefaultOptions())
	if r.MAP != 0 || r.Recall != 0 {
		t.Fatalf("beyond-K metrics should be zero: %+v", r)
	}
	if r.AUC <= 0 || r.AUC >= 1 {
		t.Fatalf("AUC = %v", r.AUC)
	}
}

func TestExcludeContext(t *testing.T) {
	// Context item scores above the positive; exclusion changes rank 2 -> 1.
	s := fixedScorer{9, 5, 0, 0, 0}
	h := []interactions.HoldoutExample{holdout(1, 0)}
	with := Evaluate(s, h, 5, Options{K: 10, ExcludeContext: true})
	without := Evaluate(s, h, 5, Options{K: 10, ExcludeContext: false})
	if with.MAP != 1 {
		t.Fatalf("with exclusion MAP = %v, want 1", with.MAP)
	}
	if without.MAP != 0.5 {
		t.Fatalf("without exclusion MAP = %v, want 0.5", without.MAP)
	}
}

func TestSampledMAPApproximatesExact(t *testing.T) {
	// 2000 items with a deterministic score ramp; positives at assorted
	// ranks. The 10% sampled estimate should track the exact MAP closely
	// in aggregate.
	n := 2000
	scores := make(fixedScorer, n)
	for i := range scores {
		scores[i] = float64(n - i)
	}
	var h []interactions.HoldoutExample
	for _, rank := range []int{1, 2, 3, 5, 8, 15, 40, 200} {
		h = append(h, holdout(catalog.ItemID(rank-1)))
	}
	exact := Evaluate(scores, h, n, Options{K: 10, SampleFraction: 1, ExcludeContext: true})
	sampled := Evaluate(scores, h, n, Options{K: 10, SampleFraction: 0.1, Seed: 42, ExcludeContext: true})
	// Rank estimation from a 10% sample is upward-biased at head ranks
	// (a rank-5 item usually has no sampled higher-scorers), so sampled
	// MAP >= exact MAP; what matters for model selection is that it stays
	// within a constant factor and preserves ordering (next test).
	if sampled.MAP < exact.MAP*0.8 || sampled.MAP > exact.MAP*3 {
		t.Fatalf("sampled MAP %v too far from exact %v", sampled.MAP, exact.MAP)
	}
	if sampled.Examples != exact.Examples {
		t.Fatal("sampling changed the example count")
	}
}

func TestSampledPreservesModelOrdering(t *testing.T) {
	// The paper's requirement is weaker than accuracy: sampling must not
	// flip which of two clearly-separated models is better.
	n := 1000
	good := make(fixedScorer, n)
	bad := make(fixedScorer, n)
	for i := range good {
		good[i] = float64(n - i)
		bad[i] = float64(i % 97)
	}
	var h []interactions.HoldoutExample
	for _, rank := range []int{1, 2, 4, 9} {
		h = append(h, holdout(catalog.ItemID(rank-1)))
	}
	opts := Options{K: 10, SampleFraction: 0.1, Seed: 7, ExcludeContext: true}
	g := Evaluate(good, h, n, opts)
	b := Evaluate(bad, h, n, opts)
	if g.MAP <= b.MAP {
		t.Fatalf("sampled evaluation flipped model ordering: good=%v bad=%v", g.MAP, b.MAP)
	}
}

// subsetScorer implements both Scorer and SubsetScorer over a fixed table.
type subsetScorer struct{ table fixedScorer }

func (s subsetScorer) ScoreAll(ctx interactions.Context, out []float64) {
	s.table.ScoreAll(ctx, out)
}

func (s subsetScorer) ScoreSubset(_ interactions.Context, items []catalog.ItemID, out []float64) {
	for i, it := range items {
		out[i] = s.table[it]
	}
}

func TestSampledFastPathApproximatesExact(t *testing.T) {
	n := 2000
	table := make(fixedScorer, n)
	for i := range table {
		table[i] = float64(n - i)
	}
	s := subsetScorer{table: table}
	var h []interactions.HoldoutExample
	for _, rank := range []int{1, 3, 8, 30, 400} {
		h = append(h, holdout(catalog.ItemID(rank-1)))
	}
	exact := Evaluate(s, h, n, DefaultOptions())
	opts := Options{K: 10, SampleFraction: 0.1, Seed: 5, ExcludeContext: true}
	fast := Evaluate(s, h, n, opts)
	if fast.MAP < exact.MAP*0.8 || fast.MAP > exact.MAP*3 {
		t.Fatalf("fast-path sampled MAP %v too far from exact %v", fast.MAP, exact.MAP)
	}
	// Ordering preservation between clearly separated models.
	bad := make(fixedScorer, n)
	for i := range bad {
		bad[i] = float64(i % 61)
	}
	b := Evaluate(subsetScorer{table: bad}, h, n, opts)
	if b.MAP >= fast.MAP {
		t.Fatalf("fast path flipped model ordering: good=%v bad=%v", fast.MAP, b.MAP)
	}
}

func TestEvaluateEdgeCases(t *testing.T) {
	s := fixedScorer{1, 2, 3}
	if r := Evaluate(s, nil, 3, DefaultOptions()); r.Examples != 0 {
		t.Fatal("empty holdout must yield zero result")
	}
	// Out-of-range holdout items are skipped.
	h := []interactions.HoldoutExample{holdout(99)}
	if r := Evaluate(s, h, 3, DefaultOptions()); r.Examples != 0 {
		t.Fatal("out-of-range item evaluated")
	}
	// K defaulted when 0.
	h = []interactions.HoldoutExample{holdout(2)}
	r := Evaluate(s, h, 3, Options{ExcludeContext: true})
	if r.MAP != 1 {
		t.Fatalf("K default: MAP = %v", r.MAP)
	}
}

func TestRankOf(t *testing.T) {
	s := fixedScorer{5, 9, 3, 7}
	if got := RankOf(s, nil, 1, 4); got != 1 {
		t.Fatalf("RankOf best = %d", got)
	}
	if got := RankOf(s, nil, 2, 4); got != 4 {
		t.Fatalf("RankOf worst = %d", got)
	}
	// Excluding a higher-scored context item improves the rank.
	ctx := interactions.Context{{Type: interactions.View, Item: 1}}
	if got := RankOf(s, ctx, 3, 4); got != 1 {
		t.Fatalf("RankOf with exclusion = %d", got)
	}
}
