package hybrid

import (
	"context"
	"testing"

	"sigmund/internal/catalog"
	"sigmund/internal/cooccur"
	"sigmund/internal/core/bpr"
	"sigmund/internal/core/candidates"
	"sigmund/internal/core/eval"
	"sigmund/internal/interactions"
	"sigmund/internal/synth"
)

// env builds a trained environment over a synthetic retailer.
type env struct {
	r     *synth.Retailer
	cooc  *cooccur.Model
	model *bpr.Model
	sel   *candidates.Selector
	stats *interactions.ItemStats
	split interactions.Split
}

func buildEnv(t testing.TB, seed uint64) *env {
	t.Helper()
	r := synth.GenerateRetailer(synth.RetailerSpec{
		NumItems: 150, NumUsers: 150, EventsPerUserMean: 14, NumBrands: 6, BrandCoverage: 0.6, Seed: seed,
	})
	split := interactions.HoldoutSplit(r.Log, 25)
	cooc := cooccur.FromLog(split.Train, r.Catalog.NumItems(), 5)
	stats := interactions.ComputeItemStats(split.Train, r.Catalog.NumItems())
	h := bpr.DefaultHyperparams()
	h.Factors = 8
	m, err := bpr.NewModel(h, r.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	ds := bpr.NewDataset(split.Train, r.Catalog)
	if _, err := bpr.Train(context.Background(), m, ds, bpr.TrainOptions{Epochs: 12, Threads: 2, Cooc: cooc}); err != nil {
		t.Fatal(err)
	}
	sel := candidates.NewSelector(r.Catalog, cooc)
	return &env{r: r, cooc: cooc, model: m, sel: sel, stats: stats, split: split}
}

func TestRecommendHeadUsesCooccurrence(t *testing.T) {
	e := buildEnv(t, 51)
	rec := NewRecommender(e.cooc, e.model, e.sel, e.stats)
	rec.HeadMinEvents = 10

	// Find a genuinely popular item.
	order := e.stats.PopularityOrder()
	head := order[0]
	if !rec.IsHead(head) {
		t.Fatalf("most popular item (%d events) not head", e.stats.Total[head])
	}
	got := rec.RecommendForView(head)
	if len(got) == 0 {
		t.Fatal("no recommendations for head item")
	}
	coocCount := 0
	for _, s := range got {
		if s.Item == head {
			t.Fatal("item recommends itself")
		}
		if s.Source == FromCooccurrence {
			coocCount++
		}
	}
	if coocCount == 0 {
		t.Fatal("head item got no co-occurrence recommendations")
	}
}

func TestRecommendTailUsesFactorization(t *testing.T) {
	e := buildEnv(t, 52)
	rec := NewRecommender(e.cooc, e.model, e.sel, e.stats)
	rec.HeadMinEvents = 10

	order := e.stats.PopularityOrder()
	tail := order[len(order)-1]
	if rec.IsHead(tail) {
		t.Skip("no tail item in this sample")
	}
	got := rec.RecommendForView(tail)
	if len(got) == 0 {
		t.Fatal("tail item got no recommendations — the coverage claim fails")
	}
	for _, s := range got {
		if s.Source != FromFactorization {
			t.Fatalf("tail item served from %v", s.Source)
		}
	}
}

func TestRecommendFillsUpToTopK(t *testing.T) {
	e := buildEnv(t, 53)
	rec := NewRecommender(e.cooc, e.model, e.sel, e.stats)
	rec.HeadMinEvents = 10
	rec.TopK = 8
	order := e.stats.PopularityOrder()
	for _, probe := range []catalog.ItemID{order[0], order[len(order)/2]} {
		got := rec.RecommendForView(probe)
		if len(got) > 8 {
			t.Fatalf("TopK exceeded: %d", len(got))
		}
		seen := map[catalog.ItemID]bool{}
		for _, s := range got {
			if seen[s.Item] {
				t.Fatalf("duplicate recommendation %d", s.Item)
			}
			seen[s.Item] = true
		}
	}
}

func TestRecommendForPurchaseExcludesSubstitutes(t *testing.T) {
	e := buildEnv(t, 54)
	rec := NewRecommender(e.cooc, e.model, e.sel, e.stats)
	rec.HeadMinEvents = 1 << 30 // force the factorization path for determinism
	probe := catalog.ItemID(0)
	got := rec.RecommendForPurchase(probe)
	for _, s := range got {
		if e.r.Catalog.ItemLCADistance(probe, s.Item) <= e.sel.BuyLCA {
			t.Fatalf("purchase recs include near-substitute %d", s.Item)
		}
	}
}

func TestCoocScorerRanksAssociatedItems(t *testing.T) {
	e := buildEnv(t, 55)
	s := CoocScorer{Model: e.cooc, Kind: cooccur.CoView, MinSupport: 2, Decay: 0.85}
	// Pick a holdout example whose held-out item is associated with the
	// context; the scorer should give it a positive score.
	out := make([]float64, e.r.Catalog.NumItems())
	anyPositive := false
	for _, h := range e.split.Holdout {
		s.ScoreAll(h.Context, out)
		for _, v := range out {
			if v > 0 {
				anyPositive = true
				break
			}
		}
		if anyPositive {
			break
		}
	}
	if !anyPositive {
		t.Fatal("cooc scorer produced no positive scores on any holdout context")
	}
}

func TestHybridScorerCoversBothRegimes(t *testing.T) {
	e := buildEnv(t, 56)
	hs := Scorer{
		Cooc:          CoocScorer{Model: e.cooc, Kind: cooccur.CoView, MinSupport: 2, Decay: 0.85},
		MF:            e.model,
		Stats:         e.stats,
		HeadMinEvents: 30,
	}
	n := e.r.Catalog.NumItems()
	res := eval.Evaluate(hs, e.split.Holdout, n, eval.DefaultOptions())
	if res.Examples == 0 {
		t.Fatal("no examples evaluated")
	}
	// The hybrid must be a usable ranker: clearly better than random
	// (random MAP@10 for ~150 items is about 10/150 * avg precision ~ small).
	if res.MAP < 0.02 {
		t.Fatalf("hybrid MAP implausibly low: %v", res.MAP)
	}
	// And it should not lose badly to either component.
	mf := eval.Evaluate(e.model, e.split.Holdout, n, eval.DefaultOptions())
	cooc := eval.Evaluate(hs.Cooc, e.split.Holdout, n, eval.DefaultOptions())
	best := mf.MAP
	if cooc.MAP > best {
		best = cooc.MAP
	}
	if res.MAP < best*0.5 {
		t.Fatalf("hybrid MAP %.4f collapses vs components (mf %.4f cooc %.4f)", res.MAP, mf.MAP, cooc.MAP)
	}
}

func TestSourceString(t *testing.T) {
	if FromCooccurrence.String() != "cooc" || FromFactorization.String() != "mf" {
		t.Fatal("Source strings wrong")
	}
}

func TestRecommendForViewLateFunnel(t *testing.T) {
	e := buildEnv(t, 57)
	rec := NewRecommender(e.cooc, e.model, e.sel, e.stats)
	rec.TopK = 10
	// Attach facets: half the catalog is "black", half "red"; probe is black.
	for i := 0; i < e.r.Catalog.NumItems(); i++ {
		it := e.r.Catalog.Items()[i]
		color := "black"
		if i%2 == 1 {
			color = "red"
		}
		it.Facets = map[string]string{"color": color}
		e.r.Catalog.Items()[i] = it
	}
	probe := catalog.ItemID(0) // black
	full := rec.RecommendForView(probe)
	lf := rec.RecommendForViewLateFunnel(probe, []string{"color"})
	if len(lf) == 0 {
		t.Fatal("late-funnel list empty")
	}
	if len(lf) > len(full) {
		t.Fatal("late-funnel list longer than the full list")
	}
	for _, s := range lf {
		if e.r.Catalog.Item(s.Item).Facets["color"] != "black" {
			t.Fatalf("late-funnel rec %d has wrong facet", s.Item)
		}
	}
	// No facet keys: identical to the full list.
	same := rec.RecommendForViewLateFunnel(probe, nil)
	if len(same) != len(full) {
		t.Fatal("nil keys changed the list")
	}
	// Facet that filters to almost nothing: nil signals "no constrained
	// surface" and serving falls through to the broad view list.
	it := e.r.Catalog.Items()[0]
	it.Facets = map[string]string{"color": "unique-shade"}
	e.r.Catalog.Items()[0] = it
	if fb := rec.RecommendForViewLateFunnel(probe, []string{"color"}); fb != nil {
		t.Fatalf("sparse facets should yield nil, got %d recs", len(fb))
	}
}
