// Package hybrid combines the two recommenders the way Section III-E (and
// the paper's conclusion) prescribes: co-occurrence recommendations for
// popular items — with lots of data they are very hard to beat — and
// factorization-derived recommendations to cover the long tail, where
// co-occurrence has no support. The blend is what lets Sigmund "cover a
// much larger fraction of the inventory with good recommendations".
package hybrid

import (
	"sort"

	"sigmund/internal/catalog"
	"sigmund/internal/cooccur"
	"sigmund/internal/core/bpr"
	"sigmund/internal/core/candidates"
	"sigmund/internal/interactions"
)

// Source identifies which model produced a recommendation.
type Source uint8

const (
	// FromCooccurrence marks a co-occurrence (PMI) recommendation.
	FromCooccurrence Source = iota
	// FromFactorization marks a BPR model recommendation.
	FromFactorization
)

func (s Source) String() string {
	if s == FromCooccurrence {
		return "cooc"
	}
	return "mf"
}

// Scored is one recommended item with its score and provenance.
type Scored struct {
	Item   catalog.ItemID
	Score  float64
	Source Source
}

// Recommender materializes item-to-item recommendations for one retailer.
type Recommender struct {
	Cooc  *cooccur.Model
	Model *bpr.Model
	Sel   *candidates.Selector
	Stats *interactions.ItemStats

	// HeadMinEvents is the popularity threshold: items with at least this
	// many interactions are "head" and served from co-occurrence.
	HeadMinEvents int
	// MinSupport for co-occurrence neighbors.
	MinSupport int
	// TopK recommendations per item.
	TopK int
}

// NewRecommender wires the pieces with production-ish defaults.
func NewRecommender(cooc *cooccur.Model, m *bpr.Model, sel *candidates.Selector, stats *interactions.ItemStats) *Recommender {
	return &Recommender{
		Cooc: cooc, Model: m, Sel: sel, Stats: stats,
		HeadMinEvents: 30, MinSupport: 3, TopK: 10,
	}
}

// IsHead reports whether item i is in the data-rich head.
func (r *Recommender) IsHead(i catalog.ItemID) bool {
	return r.Stats != nil && r.Stats.Total[i] >= r.HeadMinEvents
}

// RecommendForView returns recommendations for a user who viewed item i
// (substitutes). Head items use co-occurrence; the remainder — and any
// unfilled slots — come from the factorization model over the candidate
// set.
func (r *Recommender) RecommendForView(i catalog.ItemID) []Scored {
	return r.recommend(i, cooccur.CoView)
}

// RecommendForPurchase returns recommendations for a user who purchased
// item i (complements/accessories).
func (r *Recommender) RecommendForPurchase(i catalog.ItemID) []Scored {
	return r.recommend(i, cooccur.CoBuy)
}

// LateFunnelFacets, when non-empty, enables the late-funnel view surface:
// candidates constrained to share the query item's values for these facet
// keys (Section III-D1: "for late funnel users ... we select candidates
// that are further constrained to have the same item facets").
var DefaultLateFunnelFacets = []string{"color", "size"}

// RecommendForViewLateFunnel returns the tightened view-surface list for a
// user deep in the purchase funnel: the regular view recommendations
// filtered to items matching the query item's facets. When the filter
// leaves fewer than two items (sparse facet data) it returns nil — the
// serving layer then falls through to the broad view surface, so
// late-funnel users never see an empty shelf.
func (r *Recommender) RecommendForViewLateFunnel(i catalog.ItemID, facetKeys []string) []Scored {
	full := r.RecommendForView(i)
	if len(facetKeys) == 0 {
		return full
	}
	ids := make([]catalog.ItemID, len(full))
	for idx, s := range full {
		ids[idx] = s.Item
	}
	kept := candidates.FilterByFacets(r.Sel.Cat, i, ids, facetKeys)
	if len(kept) < 2 {
		return nil
	}
	keep := make(map[catalog.ItemID]bool, len(kept))
	for _, id := range kept {
		keep[id] = true
	}
	out := make([]Scored, 0, len(kept))
	for _, s := range full {
		if keep[s.Item] {
			out = append(out, s)
		}
	}
	return out
}

func (r *Recommender) recommend(i catalog.ItemID, kind cooccur.Kind) []Scored {
	var out []Scored
	seen := map[catalog.ItemID]bool{i: true}
	if r.IsHead(i) {
		// Count-ranked, like the production co-occurrence recommender the
		// paper keeps for popular items ("customers also viewed", by
		// frequency): Sigmund's head behaviour deliberately matches it.
		for _, n := range r.Cooc.TopKByCount(kind, i, r.TopK, r.MinSupport) {
			out = append(out, Scored{Item: n.Item, Score: float64(n.Count), Source: FromCooccurrence})
			seen[n.Item] = true
		}
	}
	if len(out) >= r.TopK {
		return out[:r.TopK]
	}
	// Fill the remaining slots from factorization over the candidate set.
	var cands []catalog.ItemID
	var ctx interactions.Context
	if kind == cooccur.CoBuy {
		cands = r.Sel.ForPurchase(i)
		ctx = interactions.Context{{Type: interactions.Conversion, Item: i}}
	} else {
		cands = r.Sel.ForView(i)
		ctx = interactions.Context{{Type: interactions.View, Item: i}}
	}
	scored := make([]Scored, 0, len(cands))
	u := make([]float32, r.Model.F())
	r.Model.UserEmbedding(ctx, u)
	phi := make([]float32, r.Model.F())
	for _, c := range cands {
		if seen[c] {
			continue
		}
		r.Model.Composite(c, phi)
		scored = append(scored, Scored{Item: c, Score: dot64(u, phi), Source: FromFactorization})
	}
	sort.Slice(scored, func(a, b int) bool {
		if scored[a].Score != scored[b].Score {
			return scored[a].Score > scored[b].Score
		}
		return scored[a].Item < scored[b].Item
	})
	for _, s := range scored {
		if len(out) >= r.TopK {
			break
		}
		out = append(out, s)
	}
	return out
}

func dot64(a, b []float32) float64 {
	var s float64
	for i := range a {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

// CoocScorer adapts a co-occurrence model to the eval.Scorer interface so
// the baseline can be evaluated with the same MAP@10 protocol as the
// factorization model. The score of item j is the decay-weighted sum of
// its PMI with each context item (unassociated pairs contribute nothing).
type CoocScorer struct {
	Model      *cooccur.Model
	Kind       cooccur.Kind
	MinSupport int
	// Decay matches the BPR context decay so comparisons are fair.
	Decay float64
}

// ScoreAll implements eval.Scorer.
func (c CoocScorer) ScoreAll(ctx interactions.Context, out []float64) {
	for i := range out {
		out[i] = 0
	}
	decay := c.Decay
	if decay <= 0 || decay > 1 {
		decay = 0.85
	}
	w := 1.0
	for j := len(ctx) - 1; j >= 0; j-- {
		it := ctx[j].Item
		if int(it) >= 0 && int(it) < c.Model.NumItems() {
			for _, n := range c.Model.Neighbors(c.Kind, it, c.MinSupport) {
				out[n.Item] += w * n.PMI
			}
		}
		w *= decay
	}
}

// Scorer blends the two models for whole-catalog ranking the way the paper
// prescribes: co-occurrence evidence decides only for *popular* items —
// where its counts are trustworthy — and the factorization model orders
// everything else. A blanket cooc-first rule would inherit the
// co-occurrence model's noise on sparse items, which is exactly what the
// popularity gate avoids.
type Scorer struct {
	Cooc CoocScorer
	MF   *bpr.Model
	// Stats supplies item popularity; nil disables the gate (all items
	// eligible for the co-occurrence boost).
	Stats *interactions.ItemStats
	// HeadMinEvents is the popularity threshold for the gate.
	HeadMinEvents int
}

// ScoreAll implements eval.Scorer.
func (h Scorer) ScoreAll(ctx interactions.Context, out []float64) {
	mf := make([]float64, len(out))
	h.MF.ScoreAll(ctx, mf)
	h.Cooc.ScoreAll(ctx, out)
	// Normalize MF scores into (0, 1); head items with positive
	// co-occurrence evidence rank above all pure-MF items, ordered by PMI
	// with MF as a tiny tie-break.
	lo, hi := mf[0], mf[0]
	for _, v := range mf {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	for i := range out {
		norm := (mf[i] - lo) / span
		isHead := h.Stats == nil || h.Stats.Total[i] >= h.HeadMinEvents
		if out[i] > 0 && isHead {
			out[i] += 2 + 1e-3*norm
		} else {
			out[i] = norm
		}
	}
}
