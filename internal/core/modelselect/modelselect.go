// Package modelselect implements Sigmund's automated per-retailer model
// selection (Sections III-C and IV-A): a hyper-parameter grid, the config
// records that flow through the training MapReduce, and the full/incremental
// sweep planners.
//
// The grid matters because retailers are heterogeneous: the paper reports
// that a model with randomly chosen hyper-parameters can be a hundred times
// worse on hold-out metrics than the best model, and that the best
// combination differs per retailer. A full sweep trains every combination
// (~100 per retailer); the daily incremental sweep re-trains only the top-K
// (typically 3) combinations from the previous run, warm-started from
// yesterday's models.
package modelselect

import (
	"fmt"
	"sort"

	"sigmund/internal/catalog"
	"sigmund/internal/core/bpr"
	"sigmund/internal/core/eval"
)

// FeatureSwitch is one setting of the per-retailer feature-selection
// switches.
type FeatureSwitch struct {
	Taxonomy bool `json:"taxonomy"`
	Brand    bool `json:"brand"`
	Price    bool `json:"price"`
}

// Grid enumerates candidate values per hyper-parameter; Expand crosses
// them. Empty fields fall back to the base config's value.
type Grid struct {
	Factors         []int
	LearningRates   []float64
	RegItems        []float64
	RegContexts     []float64
	FeatureSwitches []FeatureSwitch
	Seeds           []uint64
	Samplers        []bpr.SamplerKind
	Optimizers      []bpr.Optimizer
}

// DefaultGrid returns a grid of about a hundred combinations, mirroring the
// paper's production setting ("we typically restrict to around a hundred
// for each retailer").
func DefaultGrid() Grid {
	return Grid{
		Factors:       []int{8, 16, 32, 64},
		LearningRates: []float64{0.05, 0.1},
		RegItems:      []float64{0.003, 0.01, 0.1},
		RegContexts:   []float64{0.01},
		FeatureSwitches: []FeatureSwitch{
			{Taxonomy: false, Brand: false, Price: false},
			{Taxonomy: true, Brand: false, Price: false},
			{Taxonomy: true, Brand: true, Price: false},
			{Taxonomy: true, Brand: true, Price: true},
		},
		Seeds: []uint64{1},
	}
}

// SmallGrid returns a compact grid for tests and examples.
func SmallGrid() Grid {
	return Grid{
		Factors:       []int{4, 8},
		LearningRates: []float64{0.1},
		RegItems:      []float64{0.01},
		FeatureSwitches: []FeatureSwitch{
			{Taxonomy: true},
		},
		Seeds: []uint64{1},
	}
}

// Size returns the number of combinations Expand will produce.
func (g Grid) Size() int {
	n := 1
	mul := func(k int) {
		if k > 0 {
			n *= k
		}
	}
	mul(len(g.Factors))
	mul(len(g.LearningRates))
	mul(len(g.RegItems))
	mul(len(g.RegContexts))
	mul(len(g.FeatureSwitches))
	mul(len(g.Seeds))
	mul(len(g.Samplers))
	mul(len(g.Optimizers))
	return n
}

// Expand crosses every grid dimension over the base config and returns the
// resulting hyper-parameter combinations in deterministic order.
func (g Grid) Expand(base bpr.Hyperparams) []bpr.Hyperparams {
	out := []bpr.Hyperparams{base}
	cross := func(apply func(h *bpr.Hyperparams, idx int), n int) {
		if n == 0 {
			return
		}
		next := make([]bpr.Hyperparams, 0, len(out)*n)
		for _, h := range out {
			for i := 0; i < n; i++ {
				hc := h
				apply(&hc, i)
				next = append(next, hc)
			}
		}
		out = next
	}
	cross(func(h *bpr.Hyperparams, i int) { h.Factors = g.Factors[i] }, len(g.Factors))
	cross(func(h *bpr.Hyperparams, i int) { h.LearningRate = g.LearningRates[i] }, len(g.LearningRates))
	cross(func(h *bpr.Hyperparams, i int) { h.RegItem = g.RegItems[i] }, len(g.RegItems))
	cross(func(h *bpr.Hyperparams, i int) { h.RegContext = g.RegContexts[i] }, len(g.RegContexts))
	cross(func(h *bpr.Hyperparams, i int) {
		fs := g.FeatureSwitches[i]
		h.UseTaxonomy, h.UseBrand, h.UsePrice = fs.Taxonomy, fs.Brand, fs.Price
	}, len(g.FeatureSwitches))
	cross(func(h *bpr.Hyperparams, i int) { h.Seed = g.Seeds[i] }, len(g.Seeds))
	cross(func(h *bpr.Hyperparams, i int) { h.Sampler = g.Samplers[i] }, len(g.Samplers))
	cross(func(h *bpr.Hyperparams, i int) { h.Optimizer = g.Optimizers[i] }, len(g.Optimizers))
	return out
}

// PruneForRetailer applies the paper's per-retailer feature-selection rule
// of thumb before expansion: a feature whose coverage in the catalog is
// below minCoverage is detrimental ("in many retailers we found the brand
// coverage to be less than 10%, which makes it detrimental to add it in as
// a feature"), so grid points enabling it are dropped.
func (g Grid) PruneForRetailer(cat *catalog.Catalog, minCoverage float64) Grid {
	brandOK := cat.BrandCoverage() >= minCoverage
	priceOK := cat.PriceCoverage() >= minCoverage
	if brandOK && priceOK {
		return g
	}
	pruned := g
	pruned.FeatureSwitches = nil
	seen := map[FeatureSwitch]bool{}
	for _, fs := range g.FeatureSwitches {
		if !brandOK {
			fs.Brand = false
		}
		if !priceOK {
			fs.Price = false
		}
		if !seen[fs] {
			seen[fs] = true
			pruned.FeatureSwitches = append(pruned.FeatureSwitches, fs)
		}
	}
	return pruned
}

// ConfigRecord is the unit of work flowing through the training pipeline
// (Section IV-A): the sweep emits one per (retailer, hyper-parameter
// combination); the training job fills in the metrics; the inference job
// reads them back to find each retailer's best model.
type ConfigRecord struct {
	Retailer catalog.RetailerID `json:"retailer"`
	// ModelID uniquely names this (retailer, config) pair.
	ModelID string          `json:"model_id"`
	Hyper   bpr.Hyperparams `json:"hyper"`

	// TrainDataPath and ModelPath are shared-filesystem locations.
	TrainDataPath string `json:"train_data_path"`
	ModelPath     string `json:"model_path"`
	// WarmStartPath, when set, points at the previous run's model for this
	// config: incremental training loads it instead of random init.
	WarmStartPath string `json:"warm_start_path,omitempty"`
	// Epochs requested for this run (incremental runs need fewer).
	Epochs int `json:"epochs"`

	// Outputs, filled by the training job.
	Trained bool        `json:"trained"`
	Metrics eval.Result `json:"metrics"`
	Err     string      `json:"err,omitempty"`
}

// MAP returns the model-selection metric for the record (0 if untrained).
func (c ConfigRecord) MAP() float64 {
	if !c.Trained {
		return 0
	}
	return c.Metrics.MAP
}

// ModelIDFor builds the canonical model identifier.
func ModelIDFor(r catalog.RetailerID, h bpr.Hyperparams) string {
	return fmt.Sprintf("%s/%s", r, h.Key())
}

// PlanFull emits config records for every combination in the grid — the
// full sweep used at service bootstrap, after catastrophic model loss, or
// for a newly signed-up retailer.
func PlanFull(r catalog.RetailerID, grid Grid, base bpr.Hyperparams, trainDataPath string, epochs int) []ConfigRecord {
	combos := grid.Expand(base)
	out := make([]ConfigRecord, len(combos))
	for i, h := range combos {
		id := ModelIDFor(r, h)
		out[i] = ConfigRecord{
			Retailer:      r,
			ModelID:       id,
			Hyper:         h,
			TrainDataPath: trainDataPath,
			ModelPath:     "models/" + id,
			Epochs:        epochs,
		}
	}
	return out
}

// PlanIncremental emits records for the top-K configurations from the
// previous run, warm-started from their existing models. The paper uses
// K=3-5 and notes incremental runs need far fewer iterations to converge.
func PlanIncremental(previous []ConfigRecord, topK, epochs int) []ConfigRecord {
	best := BestK(previous, topK)
	out := make([]ConfigRecord, 0, len(best))
	for _, rec := range best {
		rec.WarmStartPath = rec.ModelPath
		rec.Epochs = epochs
		rec.Trained = false
		rec.Metrics = eval.Result{}
		rec.Err = ""
		out = append(out, rec)
	}
	return out
}

// BestK returns the k records with the highest MAP@10 (trained records
// only), in descending order. Ties break by ModelID for determinism.
func BestK(records []ConfigRecord, k int) []ConfigRecord {
	trained := make([]ConfigRecord, 0, len(records))
	for _, r := range records {
		if r.Trained && r.Err == "" {
			trained = append(trained, r)
		}
	}
	sort.Slice(trained, func(i, j int) bool {
		if trained[i].Metrics.MAP != trained[j].Metrics.MAP {
			return trained[i].Metrics.MAP > trained[j].Metrics.MAP
		}
		return trained[i].ModelID < trained[j].ModelID
	})
	if len(trained) > k {
		trained = trained[:k]
	}
	return trained
}

// Best returns the single best record, or false when none trained.
func Best(records []ConfigRecord) (ConfigRecord, bool) {
	b := BestK(records, 1)
	if len(b) == 0 {
		return ConfigRecord{}, false
	}
	return b[0], true
}

// GroupByRetailer partitions records per retailer, preserving order.
func GroupByRetailer(records []ConfigRecord) map[catalog.RetailerID][]ConfigRecord {
	out := make(map[catalog.RetailerID][]ConfigRecord)
	for _, r := range records {
		out[r.Retailer] = append(out[r.Retailer], r)
	}
	return out
}
