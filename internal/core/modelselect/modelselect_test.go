package modelselect

import (
	"testing"

	"sigmund/internal/catalog"
	"sigmund/internal/core/bpr"
	"sigmund/internal/core/eval"
	"sigmund/internal/taxonomy"
)

func TestGridExpandSizeAndCoverage(t *testing.T) {
	g := Grid{
		Factors:       []int{4, 8},
		LearningRates: []float64{0.05, 0.1},
		RegItems:      []float64{0.01},
		FeatureSwitches: []FeatureSwitch{
			{Taxonomy: true}, {Taxonomy: true, Brand: true},
		},
		Seeds: []uint64{1, 2},
	}
	combos := g.Expand(bpr.DefaultHyperparams())
	if len(combos) != g.Size() {
		t.Fatalf("Expand produced %d, Size says %d", len(combos), g.Size())
	}
	if len(combos) != 2*2*1*2*2 {
		t.Fatalf("combo count = %d, want 16", len(combos))
	}
	// Every combination is distinct.
	seen := map[string]bool{}
	for _, h := range combos {
		if err := h.Validate(); err != nil {
			t.Fatalf("invalid combo %+v: %v", h, err)
		}
		k := h.Key()
		if seen[k] {
			t.Fatalf("duplicate combo key %s", k)
		}
		seen[k] = true
	}
	// Base values survive for unlisted dimensions.
	for _, h := range combos {
		if h.RegContext != bpr.DefaultHyperparams().RegContext {
			t.Fatal("unlisted dimension modified")
		}
	}
}

func TestDefaultGridIsAboutAHundred(t *testing.T) {
	n := DefaultGrid().Size()
	if n < 50 || n > 200 {
		t.Fatalf("DefaultGrid size %d; the paper restricts to ~100", n)
	}
}

func prunableCatalog(t *testing.T, brandCov float64) *catalog.Catalog {
	t.Helper()
	b := taxonomy.NewBuilder("r")
	leaf := b.AddChild(taxonomy.Root, "leaf")
	c := catalog.New("shop", b.Build())
	br := c.AddBrand("b")
	n := 20
	for i := 0; i < n; i++ {
		item := catalog.Item{Name: "x", Category: leaf, Price: 1000, InStock: true}
		if float64(i) < brandCov*float64(n) {
			item.Brand = br
		}
		c.AddItem(item)
	}
	return c
}

func TestPruneForRetailer(t *testing.T) {
	g := Grid{
		Factors: []int{8},
		FeatureSwitches: []FeatureSwitch{
			{}, {Taxonomy: true}, {Taxonomy: true, Brand: true}, {Taxonomy: true, Brand: true, Price: true},
		},
	}
	// 5% brand coverage: brand grid points collapse away.
	low := prunableCatalog(t, 0.05)
	pruned := g.PruneForRetailer(low, 0.1)
	for _, fs := range pruned.FeatureSwitches {
		if fs.Brand {
			t.Fatal("brand switch survived pruning at 5% coverage")
		}
	}
	if len(pruned.FeatureSwitches) != 3 { // {}, {T}, {T,P} after dedup
		t.Fatalf("pruned switches = %+v", pruned.FeatureSwitches)
	}
	// 90% coverage: untouched.
	high := prunableCatalog(t, 0.9)
	same := g.PruneForRetailer(high, 0.1)
	if len(same.FeatureSwitches) != len(g.FeatureSwitches) {
		t.Fatal("grid pruned despite good coverage")
	}
}

func rec(id string, trained bool, mapv float64) ConfigRecord {
	return ConfigRecord{
		Retailer: "r", ModelID: id, Trained: trained,
		Metrics: eval.Result{MAP: mapv},
	}
}

func TestBestK(t *testing.T) {
	records := []ConfigRecord{
		rec("a", true, 0.10),
		rec("b", true, 0.30),
		rec("c", false, 0.99), // untrained: ignored
		rec("d", true, 0.20),
		{Retailer: "r", ModelID: "e", Trained: true, Err: "boom", Metrics: eval.Result{MAP: 0.9}}, // failed: ignored
	}
	best := BestK(records, 2)
	if len(best) != 2 || best[0].ModelID != "b" || best[1].ModelID != "d" {
		t.Fatalf("BestK = %+v", best)
	}
	b, ok := Best(records)
	if !ok || b.ModelID != "b" {
		t.Fatalf("Best = %+v, %v", b, ok)
	}
	if _, ok := Best(nil); ok {
		t.Fatal("Best on empty should report !ok")
	}
	// Deterministic tie-break.
	ties := []ConfigRecord{rec("z", true, 0.5), rec("a", true, 0.5)}
	if got := BestK(ties, 2); got[0].ModelID != "a" {
		t.Fatalf("tie-break = %+v", got)
	}
}

func TestPlanFull(t *testing.T) {
	g := SmallGrid()
	recs := PlanFull("shop-1", g, bpr.DefaultHyperparams(), "data/shop-1/train", 10)
	if len(recs) != g.Size() {
		t.Fatalf("PlanFull emitted %d records, want %d", len(recs), g.Size())
	}
	ids := map[string]bool{}
	for _, r := range recs {
		if r.Retailer != "shop-1" || r.TrainDataPath != "data/shop-1/train" || r.Epochs != 10 {
			t.Fatalf("bad record %+v", r)
		}
		if r.ModelPath == "" || r.WarmStartPath != "" || r.Trained {
			t.Fatalf("bad record defaults %+v", r)
		}
		if ids[r.ModelID] {
			t.Fatalf("duplicate ModelID %s", r.ModelID)
		}
		ids[r.ModelID] = true
	}
}

func TestPlanIncremental(t *testing.T) {
	prev := []ConfigRecord{
		func() ConfigRecord { r := rec("m1", true, 0.4); r.ModelPath = "models/m1"; return r }(),
		func() ConfigRecord { r := rec("m2", true, 0.6); r.ModelPath = "models/m2"; return r }(),
		func() ConfigRecord { r := rec("m3", true, 0.5); r.ModelPath = "models/m3"; return r }(),
		func() ConfigRecord { r := rec("m4", true, 0.1); r.ModelPath = "models/m4"; return r }(),
	}
	inc := PlanIncremental(prev, 3, 4)
	if len(inc) != 3 {
		t.Fatalf("incremental plan size = %d", len(inc))
	}
	if inc[0].ModelID != "m2" || inc[1].ModelID != "m3" || inc[2].ModelID != "m1" {
		t.Fatalf("incremental order: %+v", inc)
	}
	for _, r := range inc {
		if r.WarmStartPath != r.ModelPath {
			t.Fatalf("warm start not set: %+v", r)
		}
		if r.Trained || r.Metrics.MAP != 0 || r.Epochs != 4 {
			t.Fatalf("outputs not reset: %+v", r)
		}
	}
}

func TestGroupByRetailer(t *testing.T) {
	records := []ConfigRecord{
		{Retailer: "a", ModelID: "1"},
		{Retailer: "b", ModelID: "2"},
		{Retailer: "a", ModelID: "3"},
	}
	g := GroupByRetailer(records)
	if len(g) != 2 || len(g["a"]) != 2 || g["a"][1].ModelID != "3" {
		t.Fatalf("GroupByRetailer = %+v", g)
	}
}

func TestModelIDFor(t *testing.T) {
	h := bpr.DefaultHyperparams()
	id := ModelIDFor("shop", h)
	if id != "shop/"+h.Key() {
		t.Fatalf("ModelIDFor = %q", id)
	}
}

func TestConfigRecordMAP(t *testing.T) {
	r := ConfigRecord{Trained: true, Metrics: eval.Result{MAP: 0.4}}
	if r.MAP() != 0.4 {
		t.Fatal("trained MAP wrong")
	}
	r.Trained = false
	if r.MAP() != 0 {
		t.Fatal("untrained record must report 0")
	}
}
