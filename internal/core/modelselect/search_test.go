package modelselect

import (
	"context"
	"errors"
	"math"
	"testing"

	"sigmund/internal/cooccur"
	"sigmund/internal/core/bpr"
	"sigmund/internal/core/eval"
	"sigmund/internal/interactions"
	"sigmund/internal/linalg"
	"sigmund/internal/synth"
)

func TestSearchSpaceValidate(t *testing.T) {
	if err := DefaultSearchSpace().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []SearchSpace{
		{FactorsMin: 0, FactorsMax: 10, LearningRateMin: 0.1, LearningRateMax: 0.2, RegMin: 0.1, RegMax: 0.2},
		{FactorsMin: 10, FactorsMax: 5, LearningRateMin: 0.1, LearningRateMax: 0.2, RegMin: 0.1, RegMax: 0.2},
		{FactorsMin: 1, FactorsMax: 10, LearningRateMin: 0, LearningRateMax: 0.2, RegMin: 0.1, RegMax: 0.2},
		{FactorsMin: 1, FactorsMax: 10, LearningRateMin: 0.1, LearningRateMax: 0.2, RegMin: 0, RegMax: 0.2},
	}
	for i, sp := range bad {
		if sp.Validate() == nil {
			t.Errorf("bad space %d accepted", i)
		}
	}
}

func TestSampleStaysInBounds(t *testing.T) {
	sp := DefaultSearchSpace()
	rng := linalg.NewRNG(3)
	for i := 0; i < 500; i++ {
		h := sp.Sample(rng, bpr.DefaultHyperparams())
		if h.Factors < sp.FactorsMin || h.Factors > sp.FactorsMax {
			t.Fatalf("factors %d out of bounds", h.Factors)
		}
		if h.LearningRate < sp.LearningRateMin || h.LearningRate > sp.LearningRateMax {
			t.Fatalf("lr %v out of bounds", h.LearningRate)
		}
		if h.RegItem < sp.RegMin || h.RegItem > sp.RegMax {
			t.Fatalf("reg %v out of bounds", h.RegItem)
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("sampled invalid config: %v", err)
		}
	}
}

func TestSampleIsLogUniformish(t *testing.T) {
	// Log-uniform sampling of lr over [0.005, 0.5] puts ~half the mass
	// below the geometric mean (0.05); a linear-uniform sampler would put
	// ~90% above it.
	sp := DefaultSearchSpace()
	rng := linalg.NewRNG(4)
	below := 0
	const n = 2000
	geoMean := math.Sqrt(sp.LearningRateMin * sp.LearningRateMax)
	for i := 0; i < n; i++ {
		if sp.Sample(rng, bpr.DefaultHyperparams()).LearningRate < geoMean {
			below++
		}
	}
	if below < n*4/10 || below > n*6/10 {
		t.Fatalf("log-uniform check: %d/%d below geometric mean", below, n)
	}
}

func TestPlanRandomDistinctConfigs(t *testing.T) {
	recs, err := PlanRandom("shop", DefaultSearchSpace(), bpr.DefaultHyperparams(), 30, "data/train", 8, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 30 {
		t.Fatalf("planned %d", len(recs))
	}
	seen := map[string]bool{}
	for _, r := range recs {
		if seen[r.ModelID] {
			t.Fatalf("duplicate config %s", r.ModelID)
		}
		seen[r.ModelID] = true
		if r.Epochs != 8 || r.TrainDataPath != "data/train" {
			t.Fatalf("bad record %+v", r)
		}
	}
	// Invalid space rejected.
	if _, err := PlanRandom("shop", SearchSpace{}, bpr.DefaultHyperparams(), 3, "p", 1, 1); err == nil {
		t.Fatal("invalid space accepted")
	}
}

func TestSuccessiveHalvingSyntheticObjective(t *testing.T) {
	// Synthetic objective: the "true" quality of a config is known, and
	// short rungs observe it with noise that shrinks as epochs grow.
	recs, err := PlanRandom("shop", DefaultSearchSpace(), bpr.DefaultHyperparams(), 32, "p", 9, 5)
	if err != nil {
		t.Fatal(err)
	}
	truth := make(map[string]float64, len(recs))
	rng := linalg.NewRNG(6)
	bestTrue, bestID := -1.0, ""
	for _, r := range recs {
		q := rng.Float64()
		truth[r.ModelID] = q
		if q > bestTrue {
			bestTrue, bestID = q, r.ModelID
		}
	}
	runner := func(rec ConfigRecord, epochs int) (float64, error) {
		noise := (linalg.NewRNG(uint64(len(rec.ModelID))*uint64(epochs)).Float64() - 0.5) * 0.2 / float64(epochs)
		return truth[rec.ModelID] + noise, nil
	}
	res, err := SuccessiveHalving(recs, runner, []int{1, 3, 9}, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Best) == 0 {
		t.Fatal("no survivors")
	}
	// The winner must be among the truly-top configs.
	if truth[res.Best[0].ModelID] < bestTrue-0.15 {
		t.Fatalf("halving picked %s (true %.3f), best was %s (%.3f)",
			res.Best[0].ModelID, truth[res.Best[0].ModelID], bestID, bestTrue)
	}
	// Budget saving vs full sweep: 32 configs * 9 epochs = 288.
	if res.EpochsSpent >= 32*9 {
		t.Fatalf("halving spent %d epochs, full sweep costs %d", res.EpochsSpent, 32*9)
	}
	if res.Rungs[0] != 32 || res.Rungs[1] != 8 || res.Rungs[2] != 2 {
		t.Fatalf("rung sizes %v", res.Rungs)
	}
}

func TestSuccessiveHalvingValidation(t *testing.T) {
	runner := func(ConfigRecord, int) (float64, error) { return 0, nil }
	if _, err := SuccessiveHalving(nil, runner, []int{1}, 0.5); err == nil {
		t.Fatal("empty configs accepted")
	}
	recs, _ := PlanRandom("s", DefaultSearchSpace(), bpr.DefaultHyperparams(), 2, "p", 1, 1)
	if _, err := SuccessiveHalving(recs, runner, nil, 0.5); err == nil {
		t.Fatal("no rungs accepted")
	}
	if _, err := SuccessiveHalving(recs, runner, []int{1}, 1.5); err == nil {
		t.Fatal("bad keep accepted")
	}
	failing := func(ConfigRecord, int) (float64, error) { return 0, errors.New("boom") }
	if _, err := SuccessiveHalving(recs, failing, []int{1}, 0.5); err == nil {
		t.Fatal("runner errors swallowed")
	}
}

func TestSuccessiveHalvingOnRealTraining(t *testing.T) {
	// End-to-end: halving over real BPR training finds a config whose MAP
	// is close to the best of an exhaustive pass at full budget.
	r := synth.GenerateRetailer(synth.RetailerSpec{
		NumItems: 120, NumUsers: 120, EventsPerUserMean: 12, NumBrands: 6, BrandCoverage: 0.7, Seed: 31,
	})
	split := interactions.HoldoutSplit(r.Log, 25)
	ds := bpr.NewDataset(split.Train, r.Catalog)
	cooc := cooccur.FromLog(split.Train, r.Catalog.NumItems(), cooccur.DefaultWindow)

	sp := DefaultSearchSpace()
	sp.FactorsMax = 32 // keep the test fast
	recs, err := PlanRandom(r.Catalog.Retailer, sp, bpr.DefaultHyperparams(), 8, "p", 6, 13)
	if err != nil {
		t.Fatal(err)
	}
	train := func(rec ConfigRecord, epochs int) (float64, error) {
		m, err := bpr.NewModel(rec.Hyper, r.Catalog)
		if err != nil {
			return 0, err
		}
		if _, err := bpr.Train(context.Background(), m, ds, bpr.TrainOptions{Epochs: epochs, Threads: 1, Cooc: cooc}); err != nil {
			return 0, err
		}
		return eval.Evaluate(m, split.Holdout, r.Catalog.NumItems(), eval.DefaultOptions()).MAP, nil
	}

	res, err := SuccessiveHalving(recs, train, []int{2, 6}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive full-budget baseline.
	bestFull := 0.0
	for _, rec := range recs {
		m, err := train(rec, 6)
		if err != nil {
			t.Fatal(err)
		}
		if m > bestFull {
			bestFull = m
		}
	}
	got := res.Best[0].Metrics.MAP
	t.Logf("halving best %.4f vs exhaustive best %.4f (%d trials, %d epochs vs %d)",
		got, bestFull, res.TrialsRun, res.EpochsSpent, len(recs)*6)
	if got < bestFull*0.7 {
		t.Fatalf("halving result %.4f far below exhaustive %.4f", got, bestFull)
	}
	if res.EpochsSpent >= len(recs)*6 {
		t.Fatal("halving spent more than the exhaustive sweep")
	}
}
