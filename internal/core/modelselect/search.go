package modelselect

import (
	"fmt"
	"math"
	"sort"

	"sigmund/internal/catalog"
	"sigmund/internal/core/bpr"
	"sigmund/internal/linalg"
)

// The paper runs a self-managed grid search and notes (Section III-C1)
// that a black-box optimization service like Vizier "hold[s] promise to
// improve on simple grid-search based techniques ... If we were to rebuild
// the hyperparameter search today, we would design it to integrate deeply
// with such a service." This file provides the two standard black-box
// strategies such services are built from, expressed over the same
// ConfigRecord plumbing as the grid, so a pipeline can swap them in:
//
//   - random search over a continuous SearchSpace (Bergstra & Bengio), and
//   - successive halving (the core of Hyperband / Vizier early stopping):
//     run many configs briefly, keep the best fraction, train survivors
//     longer.

// SearchSpace bounds the continuous hyper-parameters for random search.
// Numeric dimensions sample log-uniformly — the natural scale for factor
// counts, learning rates, and regularization.
type SearchSpace struct {
	FactorsMin, FactorsMax           int
	LearningRateMin, LearningRateMax float64
	RegMin, RegMax                   float64
	FeatureSwitches                  []FeatureSwitch
}

// DefaultSearchSpace covers the paper's grid ranges (factors 5-200).
func DefaultSearchSpace() SearchSpace {
	return SearchSpace{
		FactorsMin: 5, FactorsMax: 200,
		LearningRateMin: 0.005, LearningRateMax: 0.5,
		RegMin: 1e-4, RegMax: 0.3,
		FeatureSwitches: []FeatureSwitch{
			{Taxonomy: true},
			{Taxonomy: true, Brand: true, Price: true},
		},
	}
}

// Validate reports the first problem with the space.
func (sp SearchSpace) Validate() error {
	switch {
	case sp.FactorsMin < 1 || sp.FactorsMax < sp.FactorsMin:
		return fmt.Errorf("modelselect: bad factor range [%d, %d]", sp.FactorsMin, sp.FactorsMax)
	case sp.LearningRateMin <= 0 || sp.LearningRateMax < sp.LearningRateMin:
		return fmt.Errorf("modelselect: bad learning-rate range")
	case sp.RegMin <= 0 || sp.RegMax < sp.RegMin:
		return fmt.Errorf("modelselect: bad regularization range")
	}
	return nil
}

func logUniform(rng *linalg.RNG, lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo * math.Exp(rng.Float64()*math.Log(hi/lo))
}

// Sample draws one configuration from the space over the base config.
func (sp SearchSpace) Sample(rng *linalg.RNG, base bpr.Hyperparams) bpr.Hyperparams {
	h := base
	h.Factors = int(logUniform(rng, float64(sp.FactorsMin), float64(sp.FactorsMax)) + 0.5)
	if h.Factors < sp.FactorsMin {
		h.Factors = sp.FactorsMin
	}
	if h.Factors > sp.FactorsMax {
		h.Factors = sp.FactorsMax
	}
	h.LearningRate = logUniform(rng, sp.LearningRateMin, sp.LearningRateMax)
	h.RegItem = logUniform(rng, sp.RegMin, sp.RegMax)
	h.RegContext = logUniform(rng, sp.RegMin, sp.RegMax)
	if len(sp.FeatureSwitches) > 0 {
		fs := sp.FeatureSwitches[rng.Intn(len(sp.FeatureSwitches))]
		h.UseTaxonomy, h.UseBrand, h.UsePrice = fs.Taxonomy, fs.Brand, fs.Price
	}
	return h
}

// PlanRandom emits n randomly sampled config records for the retailer —
// the drop-in alternative to PlanFull for the full sweep.
func PlanRandom(r catalog.RetailerID, sp SearchSpace, base bpr.Hyperparams, n int, trainDataPath string, epochs int, seed uint64) ([]ConfigRecord, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	rng := linalg.NewRNG(seed ^ 0x5a3c4)
	out := make([]ConfigRecord, 0, n)
	seen := map[string]bool{}
	for len(out) < n {
		h := sp.Sample(rng, base)
		id := ModelIDFor(r, h)
		if seen[id] {
			continue // resample duplicates (possible at small n)
		}
		seen[id] = true
		out = append(out, ConfigRecord{
			Retailer:      r,
			ModelID:       id,
			Hyper:         h,
			TrainDataPath: trainDataPath,
			ModelPath:     "models/" + id,
			Epochs:        epochs,
		})
	}
	return out, nil
}

// TrialRunner trains one configuration for the given number of epochs
// (resuming from earlier rungs when the implementation supports warm
// starts) and returns the holdout MAP@10.
type TrialRunner func(rec ConfigRecord, epochs int) (float64, error)

// HalvingResult reports one successive-halving run.
type HalvingResult struct {
	// Best is the surviving records of the final rung, MAP-descending.
	Best []ConfigRecord
	// TrialsRun counts (config, rung) training invocations.
	TrialsRun int
	// EpochsSpent is the total epochs consumed — compare against
	// len(configs) * finalEpochs for a full sweep.
	EpochsSpent int
	// Rungs records how many configs entered each rung.
	Rungs []int
}

// SuccessiveHalving runs the configs through rungs of increasing training
// budget, keeping the top `keep` fraction after each rung. rungs lists the
// epoch budget of each rung (e.g. [1, 3, 9]); keep is in (0, 1).
func SuccessiveHalving(configs []ConfigRecord, runner TrialRunner, rungs []int, keep float64) (HalvingResult, error) {
	var res HalvingResult
	if len(configs) == 0 {
		return res, fmt.Errorf("modelselect: no configs to search")
	}
	if len(rungs) == 0 {
		return res, fmt.Errorf("modelselect: no rungs")
	}
	if keep <= 0 || keep >= 1 {
		return res, fmt.Errorf("modelselect: keep fraction %v out of (0,1)", keep)
	}
	type scored struct {
		rec ConfigRecord
		m   float64
	}
	cur := make([]scored, len(configs))
	for i, c := range configs {
		cur[i] = scored{rec: c}
	}
	for rung, epochs := range rungs {
		res.Rungs = append(res.Rungs, len(cur))
		for i := range cur {
			m, err := runner(cur[i].rec, epochs)
			if err != nil {
				return res, fmt.Errorf("modelselect: rung %d config %s: %w", rung, cur[i].rec.ModelID, err)
			}
			cur[i].m = m
			res.TrialsRun++
			res.EpochsSpent += epochs
		}
		sort.SliceStable(cur, func(a, b int) bool {
			if cur[a].m != cur[b].m {
				return cur[a].m > cur[b].m
			}
			return cur[a].rec.ModelID < cur[b].rec.ModelID
		})
		if rung < len(rungs)-1 {
			next := int(math.Ceil(float64(len(cur)) * keep))
			if next < 1 {
				next = 1
			}
			cur = cur[:next]
		}
	}
	for _, s := range cur {
		rec := s.rec
		rec.Trained = true
		rec.Metrics.MAP = s.m
		res.Best = append(res.Best, rec)
	}
	return res, nil
}
