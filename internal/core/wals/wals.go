// Package wals implements the weighted alternating-least-squares
// factorization for implicit feedback (Hu, Koren & Volinsky, "Collaborative
// Filtering for Implicit Feedback Datasets", ICDM 2008) — the second of the
// two implicit-feedback families the paper surveys in Section III-B.
// Sigmund chose BPR, but the related-work section states the least-squares
// approach could be substituted "easily"; this package makes that claim
// concrete: the model trains from the same interaction logs and implements
// the same eval.Scorer interface, so every evaluation and serving path can
// run either solver.
//
// The model: preferences p_ui = 1 for observed (u, i) pairs, confidences
// c_ui = 1 + alpha * r_ui where r_ui accumulates interaction strength
// (view=1 ... conversion=4). Alternating ridge regressions solve
//
//	x_u = (YᵀY + Yᵀ(Cᵘ−I)Y + λI)⁻¹ Yᵀ Cᵘ p_u
//
// and symmetrically for items, using the YᵀY precomputation trick so each
// pass is O(nnz·F² + (|U|+|I|)·F³).
//
// New users (the cold-start case Sigmund solves with contexts) are handled
// by fold-in: a user vector is computed on the fly from a context by one
// ridge solve against the trained item factors.
package wals

import (
	"errors"
	"fmt"

	"sigmund/internal/catalog"
	"sigmund/internal/interactions"
	"sigmund/internal/linalg"
)

// Options configures training.
type Options struct {
	Factors    int     // F
	Alpha      float64 // confidence scale: c = 1 + Alpha * r
	Reg        float64 // ridge λ
	Iterations int     // alternating sweeps
	Seed       uint64
}

// DefaultOptions mirrors the common implicit-ALS settings.
func DefaultOptions() Options {
	return Options{Factors: 16, Alpha: 20, Reg: 0.1, Iterations: 8, Seed: 1}
}

// Validate reports the first problem with o.
func (o Options) Validate() error {
	switch {
	case o.Factors < 1:
		return errors.New("wals: Factors must be >= 1")
	case o.Alpha <= 0:
		return errors.New("wals: Alpha must be > 0")
	case o.Reg <= 0:
		return errors.New("wals: Reg must be > 0 (the ridge keeps solves well-posed)")
	case o.Iterations < 1:
		return errors.New("wals: Iterations must be >= 1")
	}
	return nil
}

// strength maps event types to the r_ui increments (the same ordering the
// BPR tiers encode).
func strength(t interactions.EventType) float64 {
	return float64(t) + 1 // view=1, search=2, cart=3, conversion=4
}

// Model holds the factorization. It implements eval.Scorer (via fold-in)
// and eval.SubsetScorer.
type Model struct {
	Opts     Options
	NumItems int

	// Y holds item factors (flat, Factors-strided). X holds the training
	// users' factors, kept for diagnostics; scoring uses fold-in.
	Y []float32
	X []float32

	// users maps UserID -> row in X.
	users map[interactions.UserID]int
}

// obs is one (user, item) observation with accumulated confidence weight.
type obs struct {
	row  int // user row or item id depending on orientation
	col  int
	conf float64 // c_ui
}

// Train fits a model on the log. Events referencing items outside the
// catalog are ignored.
func Train(log *interactions.Log, cat *catalog.Catalog, opts Options) (*Model, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	n := cat.NumItems()
	m := &Model{Opts: opts, NumItems: n, users: make(map[interactions.UserID]int)}

	// Aggregate r_ui over the log.
	type key struct {
		u interactions.UserID
		i catalog.ItemID
	}
	r := make(map[key]float64)
	for _, e := range log.Events() {
		if int(e.Item) < 0 || int(e.Item) >= n {
			continue
		}
		r[key{e.User, e.Item}] += strength(e.Type)
		if _, ok := m.users[e.User]; !ok {
			m.users[e.User] = len(m.users)
		}
	}
	nu := len(m.users)
	if nu == 0 {
		return nil, fmt.Errorf("wals: empty training log")
	}

	// Observation lists per user and per item.
	byUser := make([][]obs, nu)
	byItem := make([][]obs, n)
	for k, v := range r {
		urow := m.users[k.u]
		conf := 1 + opts.Alpha*v
		byUser[urow] = append(byUser[urow], obs{row: urow, col: int(k.i), conf: conf})
		byItem[k.i] = append(byItem[k.i], obs{row: int(k.i), col: urow, conf: conf})
	}

	F := opts.Factors
	rng := linalg.NewRNG(opts.Seed)
	m.X = make([]float32, nu*F)
	m.Y = make([]float32, n*F)
	rng.FillNormal(m.X, 0.1)
	rng.FillNormal(m.Y, 0.1)

	for it := 0; it < opts.Iterations; it++ {
		if err := alternate(m.X, m.Y, byUser, F, opts.Reg); err != nil {
			return nil, fmt.Errorf("wals: user sweep %d: %w", it, err)
		}
		if err := alternate(m.Y, m.X, byItem, F, opts.Reg); err != nil {
			return nil, fmt.Errorf("wals: item sweep %d: %w", it, err)
		}
	}
	return m, nil
}

// alternate solves one side: for every row in `solve`, ridge-regress
// against the fixed factors using that row's observations.
func alternate(solve, fixed []float32, rows [][]obs, F int, reg float64) error {
	// Precompute G = FixedᵀFixed once per sweep (the HKV trick: the dense
	// "all items are weak negatives" term).
	g := linalg.NewMat(F)
	g.GramUpdate(fixed, F, 1)

	b := make([]float64, F)
	for row, observations := range rows {
		a := g.Copy()
		a.AddDiagonal(reg)
		for i := range b {
			b[i] = 0
		}
		for _, o := range observations {
			fv := fixed[o.col*F : (o.col+1)*F]
			// (C - I) correction for observed entries plus the Cᵀp term.
			a.AddOuterScaled(o.conf-1, fv)
			for k := 0; k < F; k++ {
				b[k] += o.conf * float64(fv[k])
			}
		}
		x, err := linalg.CholeskySolve(a, b)
		if err != nil {
			return err
		}
		dst := solve[row*F : (row+1)*F]
		for k := 0; k < F; k++ {
			dst[k] = float32(x[k])
		}
	}
	return nil
}

// ItemVec returns item i's factor vector.
func (m *Model) ItemVec(i catalog.ItemID) []float32 {
	F := m.Opts.Factors
	return m.Y[int(i)*F : (int(i)+1)*F]
}

// UserVec returns the trained factor vector for a known user (nil if the
// user was not in the training log).
func (m *Model) UserVec(u interactions.UserID) []float32 {
	row, ok := m.users[u]
	if !ok {
		return nil
	}
	F := m.Opts.Factors
	return m.X[row*F : (row+1)*F]
}

// NumUsers returns the number of users the model was trained on.
func (m *Model) NumUsers() int { return len(m.users) }

// FoldIn computes a user vector from a context by one ridge solve: the
// context's items act as that pseudo-user's observations, with confidence
// from the action strengths and recency decay. This is how a WALS-backed
// Sigmund would serve brand-new users without retraining.
func (m *Model) FoldIn(ctx interactions.Context) []float32 {
	F := m.Opts.Factors
	out := make([]float32, F)
	if len(ctx) == 0 {
		return out
	}
	g := linalg.NewMat(F)
	g.GramUpdate(m.Y, F, 1)
	g.AddDiagonal(m.Opts.Reg)
	b := make([]float64, F)
	const decay = 0.85
	w := 1.0
	for j := len(ctx) - 1; j >= 0; j-- {
		it := ctx[j].Item
		if int(it) >= 0 && int(it) < m.NumItems {
			conf := (1 + m.Opts.Alpha*strength(ctx[j].Type)) * w
			fv := m.ItemVec(it)
			g.AddOuterScaled(conf-1, fv)
			for k := 0; k < F; k++ {
				b[k] += conf * float64(fv[k])
			}
		}
		w *= decay
	}
	x, err := linalg.CholeskySolve(g, b)
	if err != nil {
		return out // degenerate context: zero vector
	}
	for k := 0; k < F; k++ {
		out[k] = float32(x[k])
	}
	return out
}

// ScoreAll implements eval.Scorer via fold-in.
func (m *Model) ScoreAll(ctx interactions.Context, out []float64) {
	u := m.FoldIn(ctx)
	for i := 0; i < m.NumItems && i < len(out); i++ {
		out[i] = float64(linalg.Dot(u, m.ItemVec(catalog.ItemID(i))))
	}
}

// ScoreSubset implements eval.SubsetScorer.
func (m *Model) ScoreSubset(ctx interactions.Context, items []catalog.ItemID, out []float64) {
	u := m.FoldIn(ctx)
	for idx, i := range items {
		out[idx] = float64(linalg.Dot(u, m.ItemVec(i)))
	}
}
