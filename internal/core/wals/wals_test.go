package wals

import (
	"testing"

	"sigmund/internal/catalog"
	"sigmund/internal/core/eval"
	"sigmund/internal/interactions"
	"sigmund/internal/synth"
	"sigmund/internal/taxonomy"
)

func walsRetailer(tb testing.TB, seed uint64) (*synth.Retailer, interactions.Split) {
	tb.Helper()
	r := synth.GenerateRetailer(synth.RetailerSpec{
		NumItems: 150, NumUsers: 120, EventsPerUserMean: 14,
		NumBrands: 8, BrandCoverage: 0.7, Seed: seed,
	})
	return r, interactions.HoldoutSplit(r.Log, 25)
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Options){
		func(o *Options) { o.Factors = 0 },
		func(o *Options) { o.Alpha = 0 },
		func(o *Options) { o.Reg = 0 },
		func(o *Options) { o.Iterations = 0 },
	}
	for i, mut := range bad {
		o := DefaultOptions()
		mut(&o)
		if o.Validate() == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestTrainLearnsRanking(t *testing.T) {
	r, split := walsRetailer(t, 21)
	o := DefaultOptions()
	o.Factors = 12
	m, err := Train(split.Train, r.Catalog, o)
	if err != nil {
		t.Fatal(err)
	}
	res := eval.Evaluate(m, split.Holdout, r.Catalog.NumItems(), eval.DefaultOptions())
	t.Logf("WALS MAP@10 = %.4f over %d examples", res.MAP, res.Examples)
	// Clearly better than random (~10/150 * small); comparable order of
	// magnitude to BPR on the same data.
	if res.MAP < 0.05 {
		t.Fatalf("WALS failed to learn: MAP %.4f", res.MAP)
	}
}

func TestTrainDeterministic(t *testing.T) {
	r, split := walsRetailer(t, 22)
	o := DefaultOptions()
	o.Factors = 6
	o.Iterations = 3
	a, err := Train(split.Train, r.Catalog, o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(split.Train, r.Catalog, o)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			t.Fatalf("nondeterministic item factors at %d", i)
		}
	}
}

func TestFoldInNewUser(t *testing.T) {
	r, split := walsRetailer(t, 23)
	m, err := Train(split.Train, r.Catalog, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// A context referencing trained items yields a non-zero vector.
	ctx := interactions.Context{
		{Type: interactions.View, Item: 0},
		{Type: interactions.Conversion, Item: 1},
	}
	u := m.FoldIn(ctx)
	var norm float32
	for _, v := range u {
		norm += v * v
	}
	if norm == 0 {
		t.Fatal("fold-in produced a zero vector")
	}
	// Empty context and unknown items degrade gracefully.
	for _, c := range []interactions.Context{nil, {{Type: interactions.View, Item: 9999}}} {
		u := m.FoldIn(c)
		for _, v := range u {
			if v != 0 {
				t.Fatal("degenerate context should give a zero vector")
			}
		}
	}
}

func TestFoldInSelfConsistency(t *testing.T) {
	// The fold-in vector computed from a user's history must rank that
	// user's own interacted items far above random — the property that
	// makes fold-in serving work for users the model never trained on.
	_, split := walsRetailer(t, 24)
	r, _ := walsRetailer(t, 24)
	m, err := Train(split.Train, r.Catalog, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	n := m.NumItems
	scores := make([]float64, n)
	var normRanks []float64
	for _, seq := range split.Train.BySequence() {
		if len(seq.Events) < 5 {
			continue
		}
		ctx := make(interactions.Context, 0, len(seq.Events))
		for _, e := range seq.Events {
			ctx = append(ctx, interactions.Action{Type: e.Type, Item: e.Item})
		}
		m.ScoreAll(ctx, scores)
		// Normalized rank of each recently interacted item.
		recent := ctx[len(ctx)-3:]
		for _, a := range recent {
			pos := scores[a.Item]
			higher := 0
			for j := 0; j < n; j++ {
				if scores[j] > pos {
					higher++
				}
			}
			normRanks = append(normRanks, float64(higher)/float64(n))
		}
		if len(normRanks) >= 90 {
			break
		}
	}
	if len(normRanks) == 0 {
		t.Skip("no eligible users")
	}
	var mean float64
	for _, v := range normRanks {
		mean += v
	}
	mean /= float64(len(normRanks))
	t.Logf("mean normalized rank of own items under fold-in: %.3f (random = 0.5)", mean)
	if mean > 0.3 {
		t.Fatalf("fold-in does not recover the user's own items: mean rank %.3f", mean)
	}
}

func TestUnknownUserVec(t *testing.T) {
	r, split := walsRetailer(t, 25)
	m, err := Train(split.Train, r.Catalog, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if m.UserVec(99999) != nil {
		t.Fatal("unknown user has a vector")
	}
	if m.NumUsers() == 0 {
		t.Fatal("no users trained")
	}
}

func TestTrainEmptyLog(t *testing.T) {
	b := taxonomy.NewBuilder("r")
	cat := catalog.New("e", b.Build())
	cat.AddItem(catalog.Item{Name: "x", Category: taxonomy.Root})
	if _, err := Train(interactions.NewLog(), cat, DefaultOptions()); err == nil {
		t.Fatal("empty log accepted")
	}
}

func TestScoreSubsetMatchesScoreAll(t *testing.T) {
	r, split := walsRetailer(t, 26)
	m, err := Train(split.Train, r.Catalog, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx := interactions.Context{{Type: interactions.View, Item: 3}}
	all := make([]float64, m.NumItems)
	m.ScoreAll(ctx, all)
	items := []catalog.ItemID{0, 5, 17}
	sub := make([]float64, len(items))
	m.ScoreSubset(ctx, items, sub)
	for idx, it := range items {
		if sub[idx] != all[it] {
			t.Fatalf("subset score mismatch for item %d", it)
		}
	}
}
