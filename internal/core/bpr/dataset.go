package bpr

import (
	"sort"

	"sigmund/internal/catalog"
	"sigmund/internal/interactions"
	"sigmund/internal/linalg"
)

// Dataset is the training view of one retailer's interaction log, organized
// the way BPR sampling needs it:
//
//   - per-user event sequences, so each positive event carries the user
//     context that preceded it (Figure 2 in the paper);
//   - per-user "max interaction level" per item, so base negatives can be
//     drawn from unseen items;
//   - per-user per-level item lists, so the tier constraints
//     (search > view, cart > search, conversion > cart) can sample their
//     negatives from exactly the tier below (Section III-B1).
type Dataset struct {
	Cat       *catalog.Catalog
	Sequences []interactions.UserSequence

	// positions flattens every usable training position: event index >= 1
	// within its sequence (index 0 has an empty context and produces a zero
	// gradient).
	positions []position

	// maxLevel[s] maps item -> strongest interaction the user of sequence s
	// had with it.
	maxLevel []map[catalog.ItemID]interactions.EventType
	// levelItems[s][l] lists items whose max level for sequence s is
	// exactly l.
	levelItems [][interactions.NumEventTypes][]catalog.ItemID
}

type position struct {
	seq int32
	idx int32
}

// NewDataset builds the training structures from a log. Events for items
// outside the catalog are dropped defensively.
func NewDataset(log *interactions.Log, cat *catalog.Catalog) *Dataset {
	d := &Dataset{Cat: cat, Sequences: log.BySequence()}
	n := cat.NumItems()
	d.maxLevel = make([]map[catalog.ItemID]interactions.EventType, len(d.Sequences))
	d.levelItems = make([][interactions.NumEventTypes][]catalog.ItemID, len(d.Sequences))
	for s, seq := range d.Sequences {
		ml := make(map[catalog.ItemID]interactions.EventType, len(seq.Events))
		for idx, e := range seq.Events {
			if int(e.Item) < 0 || int(e.Item) >= n {
				continue
			}
			if idx >= 1 {
				d.positions = append(d.positions, position{seq: int32(s), idx: int32(idx)})
			}
			if cur, ok := ml[e.Item]; !ok || e.Type > cur {
				ml[e.Item] = e.Type
			}
		}
		d.maxLevel[s] = ml
		for item, lvl := range ml {
			d.levelItems[s][lvl] = append(d.levelItems[s][lvl], item)
		}
		// Map iteration order is randomized per process; sorted pools keep
		// tier-negative sampling — and therefore training — bit-identical
		// across runs for a given seed.
		for lvl := range d.levelItems[s] {
			pool := d.levelItems[s][lvl]
			sort.Slice(pool, func(a, b int) bool { return pool[a] < pool[b] })
		}
	}
	return d
}

// NumPositions returns how many (context, positive) training positions the
// dataset yields per epoch.
func (d *Dataset) NumPositions() int { return len(d.positions) }

// NumUsers returns the number of distinct users.
func (d *Dataset) NumUsers() int { return len(d.Sequences) }

// Example is one sampled BPR training instance: maximize
// score(Context, Pos) - score(Context, Neg).
type Example struct {
	// SeqIdx identifies the user (sequence index, not UserID).
	SeqIdx int
	// Context is the slice of events preceding the positive, already
	// truncated to the model's context length. It aliases the dataset; do
	// not modify.
	Context []interactions.Event
	Pos     catalog.ItemID
	Neg     catalog.ItemID
	// Tier is the event type whose constraint this example encodes: View
	// means the base interacted-vs-unseen constraint; Search/Cart/Conversion
	// mean the corresponding tier-above-tier-below constraint.
	Tier interactions.EventType
}

// SamplePosition draws a uniform training position and returns the sequence
// index, the positive event, and the preceding context window (capped at
// maxCtx events).
func (d *Dataset) SamplePosition(rng *linalg.RNG, maxCtx int) (seqIdx int, pos interactions.Event, context []interactions.Event) {
	p := d.positions[rng.Intn(len(d.positions))]
	seq := d.Sequences[p.seq]
	start := 0
	if int(p.idx) > maxCtx {
		start = int(p.idx) - maxCtx
	}
	return int(p.seq), seq.Events[p.idx], seq.Events[start:p.idx]
}

// Interacted reports whether the user of sequence s has interacted with
// item i at any level.
func (d *Dataset) Interacted(s int, i catalog.ItemID) bool {
	_, ok := d.maxLevel[s][i]
	return ok
}

// MaxLevel returns the strongest interaction the user of sequence s had
// with item i, and whether any exists.
func (d *Dataset) MaxLevel(s int, i catalog.ItemID) (interactions.EventType, bool) {
	l, ok := d.maxLevel[s][i]
	return l, ok
}

// TierNegatives returns the items whose strongest interaction for sequence
// s is exactly level l — the pool the tier constraint for level l+1 samples
// its negatives from. The returned slice aliases the dataset.
func (d *Dataset) TierNegatives(s int, l interactions.EventType) []catalog.ItemID {
	return d.levelItems[s][l]
}

// ContextOf converts an event window into an interactions.Context (used at
// evaluation boundaries; the training hot path consumes event slices
// directly).
func ContextOf(events []interactions.Event) interactions.Context {
	ctx := make(interactions.Context, len(events))
	for i, e := range events {
		ctx[i] = interactions.Action{Type: e.Type, Item: e.Item}
	}
	return ctx
}
