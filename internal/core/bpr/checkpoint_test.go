package bpr

import (
	"bytes"
	"context"
	"math"
	"testing"

	"sigmund/internal/catalog"
	"sigmund/internal/interactions"
)

func TestCheckpointRoundTrip(t *testing.T) {
	c := testCatalog(t)
	m, _ := NewModel(allFeaturesHyper(), c)
	m.Steps = 12345

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Hyper != m.Hyper {
		t.Fatalf("hyperparams differ: %+v vs %+v", got.Hyper, m.Hyper)
	}
	if got.NumItems != m.NumItems || got.NumNodes != m.NumNodes || got.NumBrands != m.NumBrands {
		t.Fatal("dims differ")
	}
	if got.Steps != 12345 {
		t.Fatalf("Steps = %d", got.Steps)
	}
	check := func(name string, a, b []float32) {
		t.Helper()
		if len(a) != len(b) {
			t.Fatalf("%s: length %d vs %d", name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s[%d] differs", name, i)
			}
		}
	}
	check("V", m.V, got.V)
	check("VC", m.VC, got.VC)
	check("T", m.T, got.T)
	check("B", m.B, got.B)
	check("P", m.P, got.P)
	check("GV", m.GV, got.GV)
	check("GVC", m.GVC, got.GVC)

	// A loaded model scores identically without any catalog rebinding.
	ctx := interactions.Context{{Type: interactions.View, Item: 1}, {Type: interactions.Cart, Item: 3}}
	for i := 0; i < m.NumItems; i++ {
		a, b := m.Score(ctx, catalog.ItemID(i)), got.Score(ctx, catalog.ItemID(i))
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("scores differ for item %d: %v vs %v", i, a, b)
		}
	}
}

func TestCheckpointRoundTripMinimalModel(t *testing.T) {
	c := testCatalog(t)
	h := DefaultHyperparams()
	h.UseTaxonomy, h.UseBrand, h.UsePrice = false, false, false
	h.Optimizer = PlainSGD
	m, _ := NewModel(h, c)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.T != nil || got.B != nil || got.P != nil || got.GV != nil {
		t.Fatal("optional arrays materialized from nothing")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("expected error on bad magic")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected error on empty input")
	}
	// Truncated: valid prefix then EOF.
	c := testCatalog(t)
	m, _ := NewModel(DefaultHyperparams(), c)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Load(bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected error on truncated checkpoint")
	}
}

func TestResumeTrainingFromCheckpoint(t *testing.T) {
	// The preemption-recovery path: train, checkpoint, load, keep training.
	r := synthRetailer(t, 41)
	split := interactions.HoldoutSplit(r.Log, 25)
	ds := NewDataset(split.Train, r.Catalog)
	h := DefaultHyperparams()
	h.Factors = 8
	m, _ := NewModel(h, r.Catalog)
	if _, err := Train(context.Background(), m, ds, TrainOptions{Epochs: 5, Threads: 1}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	before := pairwiseAccuracy(restored, split.Holdout, restored.NumItems, 7)
	if _, err := Train(context.Background(), restored, ds, TrainOptions{Epochs: 15, Threads: 1}); err != nil {
		t.Fatal(err)
	}
	after := pairwiseAccuracy(restored, split.Holdout, restored.NumItems, 7)
	if after < before-0.05 {
		t.Fatalf("resumed training regressed: %.3f -> %.3f", before, after)
	}
	if restored.Steps <= m.Steps {
		t.Fatal("resumed model did not accumulate steps")
	}
}
