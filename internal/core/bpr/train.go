package bpr

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"sigmund/internal/catalog"
	"sigmund/internal/cooccur"
	"sigmund/internal/interactions"
	"sigmund/internal/linalg"
)

// TrainOptions configures one training run.
type TrainOptions struct {
	// Epochs is the number of passes; each epoch performs
	// Dataset.NumPositions() SGD positions (each yielding one base example
	// and possibly one tier example). 0 means 10.
	Epochs int
	// Threads is the Hogwild parallelism (Section IV-B2). Updates are
	// intentionally lock-free and racy, as in Niu et al.; with Threads=1
	// training is fully deterministic. 0 means 1.
	Threads int
	// StepsPerEpoch overrides the number of training positions per epoch
	// (default: Dataset.NumPositions(), one nominal pass). Experiments use
	// it to observe sub-epoch convergence.
	StepsPerEpoch int
	// Sampler overrides the negative sampler; nil builds one from
	// Hyper.Sampler (heuristic samplers use Cooc when provided).
	Sampler NegSampler
	// Cooc supplies co-occurrence data to the heuristic sampler.
	Cooc *cooccur.Model
	// DisableTierConstraints turns off the search>view / cart>search /
	// conversion>cart pairwise constraints, leaving only the base
	// interacted>unseen constraint (ablation A3).
	DisableTierConstraints bool

	// CheckpointEvery triggers asynchronous checkpoints on a fixed
	// wall-clock interval — the paper's policy, chosen over per-N-iteration
	// checkpoints because iteration time varies enormously across retailers
	// (Section IV-B3). 0 disables checkpointing.
	CheckpointEvery time.Duration
	// Checkpoint persists the model; called from a separate goroutine while
	// training continues (async checkpointing). Must be non-nil when
	// CheckpointEvery > 0.
	Checkpoint func(m *Model) error

	// OnEpoch, when non-nil, observes progress after each epoch and may
	// stop training early by returning true. avgLoss is the mean BPR loss
	// -ln sigma(x_ui - x_uj) over the epoch's examples.
	OnEpoch func(epoch int, avgLoss float64) (stop bool)
}

// TrainStats summarizes a completed (or interrupted) run.
type TrainStats struct {
	EpochsRun    int
	Steps        int64 // SGD examples applied (base + tier)
	BaseExamples int64
	TierExamples int64
	FinalLoss    float64 // avg loss of the last completed epoch
	Checkpoints  int
}

// Train runs BPR SGD on the model. It honors ctx cancellation between
// small step batches — on pre-emptible VMs the cluster delivers preemption
// as cancellation, and recovery resumes from the last checkpoint. The
// returned stats are valid even when err != nil.
func Train(ctx context.Context, m *Model, d *Dataset, opts TrainOptions) (TrainStats, error) {
	var stats TrainStats
	if d.NumPositions() == 0 {
		return stats, nil
	}
	if opts.Epochs <= 0 {
		opts.Epochs = 10
	}
	if opts.Threads <= 0 {
		opts.Threads = 1
	}
	if raceEnabled && opts.Threads > 1 {
		// Hogwild updates are intentionally lock-free and racy; the race
		// detector reports those benign races as real ones, so run
		// single-threaded (fully deterministic) under -race.
		opts.Threads = 1
	}
	sampler := opts.Sampler
	if sampler == nil {
		switch m.Hyper.Sampler {
		case SampleHeuristic:
			sampler = NewHeuristicSampler(d.Cat, opts.Cooc)
		default:
			sampler = UniformSampler{NumItems: m.NumItems}
		}
	}

	// Asynchronous wall-clock checkpointer. The checkpoint goroutine
	// serializes the model while workers keep updating it — one more benign
	// race by design (a torn checkpoint is still a usable warm start). Under
	// -race that is a reported race, so race builds checkpoint synchronously
	// between epochs instead (workers are quiesced at the epoch barrier).
	var ckptWG sync.WaitGroup
	var ckptCount int64
	ckptDone := make(chan struct{})
	if !raceEnabled && opts.CheckpointEvery > 0 && opts.Checkpoint != nil {
		ckptWG.Add(1)
		go func() {
			defer ckptWG.Done()
			ticker := time.NewTicker(opts.CheckpointEvery)
			defer ticker.Stop()
			for {
				select {
				case <-ckptDone:
					return
				case <-ctx.Done():
					return
				case <-ticker.C:
					if err := opts.Checkpoint(m); err == nil {
						atomic.AddInt64(&ckptCount, 1)
					}
				}
			}
		}()
	}

	rootRNG := linalg.NewRNG(m.Hyper.Seed ^ 0xabcdef12345)
	workers := make([]*worker, opts.Threads)
	for i := range workers {
		workers[i] = newWorker(m, d, sampler, rootRNG.Split())
		workers[i].noTiers = opts.DisableTierConstraints
	}

	stepsPerEpoch := d.NumPositions()
	if opts.StepsPerEpoch > 0 {
		stepsPerEpoch = opts.StepsPerEpoch
	}
	lastCkpt := time.Now()
	var err error
epochs:
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		if err = ctx.Err(); err != nil {
			break
		}
		var wg sync.WaitGroup
		per := stepsPerEpoch / opts.Threads
		for i, w := range workers {
			n := per
			if i == 0 {
				n += stepsPerEpoch % opts.Threads
			}
			wg.Add(1)
			go func(w *worker, n int) {
				defer wg.Done()
				w.runSteps(ctx, n)
			}(w, n)
		}
		wg.Wait()
		var lossSum float64
		var examples, base, tier int64
		for _, w := range workers {
			lossSum += w.lossSum
			examples += w.examples
			base += w.base
			tier += w.tier
			w.lossSum, w.examples, w.base, w.tier = 0, 0, 0, 0
		}
		stats.EpochsRun = epoch + 1
		stats.Steps += examples
		stats.BaseExamples += base
		stats.TierExamples += tier
		if examples > 0 {
			stats.FinalLoss = lossSum / float64(examples)
		}
		if err = ctx.Err(); err != nil {
			break
		}
		if raceEnabled && opts.CheckpointEvery > 0 && opts.Checkpoint != nil &&
			time.Since(lastCkpt) >= opts.CheckpointEvery {
			if cerr := opts.Checkpoint(m); cerr == nil {
				atomic.AddInt64(&ckptCount, 1)
			}
			lastCkpt = time.Now()
		}
		if opts.OnEpoch != nil && opts.OnEpoch(epoch, stats.FinalLoss) {
			break epochs
		}
	}
	atomic.AddInt64(&m.Steps, stats.Steps)

	close(ckptDone)
	ckptWG.Wait()
	stats.Checkpoints = int(atomic.LoadInt64(&ckptCount))
	return stats, err
}

// worker holds one Hogwild thread's scratch state so the hot loop performs
// no allocation.
type worker struct {
	m       *Model
	d       *Dataset
	sampler NegSampler
	rng     *linalg.RNG

	u, phiI, phiJ, gradU, phiTmp []float32
	ctxItems                     []catalog.ItemID
	ctxW                         []float32

	noTiers bool

	lossSum  float64
	examples int64
	base     int64
	tier     int64
}

func newWorker(m *Model, d *Dataset, s NegSampler, rng *linalg.RNG) *worker {
	F := m.Hyper.Factors
	return &worker{
		m: m, d: d, sampler: s, rng: rng,
		u: make([]float32, F), phiI: make([]float32, F), phiJ: make([]float32, F),
		gradU: make([]float32, F), phiTmp: make([]float32, F),
	}
}

// runSteps performs n training positions, checking for cancellation every
// batch so preemption interrupts promptly.
func (w *worker) runSteps(ctx context.Context, n int) {
	const batch = 256
	for done := 0; done < n; {
		if ctx.Err() != nil {
			return
		}
		end := done + batch
		if end > n {
			end = n
		}
		for ; done < end; done++ {
			w.step()
		}
	}
}

func (w *worker) step() {
	m := w.m
	seqIdx, posEvent, ctxEvents := w.d.SamplePosition(w.rng, m.Hyper.ContextLen)
	w.buildUser(ctxEvents)

	interacted := func(j catalog.ItemID) bool { return w.d.Interacted(seqIdx, j) }
	score := func(j catalog.ItemID) float64 {
		m.Composite(j, w.phiTmp)
		return float64(linalg.Dot(w.u, w.phiTmp))
	}

	// Base constraint: interacted > unseen.
	if neg := w.sampler.SampleBase(w.rng, posEvent.Item, interacted, score); neg != catalog.NoItem {
		w.update(posEvent.Item, neg)
		w.base++
	}

	// Tier constraint: this event's level > the level below
	// (search > view, cart > search, conversion > cart). Implicit feedback
	// is sparse — a user may convert without ever carting — so when the
	// adjacent tier is empty we fall through to the nearest non-empty lower
	// tier, preserving the intended ordering without starving the
	// constraint.
	if posEvent.Type > interactions.View && !w.noTiers {
		for lvl := posEvent.Type - 1; ; lvl-- {
			pool := w.d.TierNegatives(seqIdx, lvl)
			if neg := TierSampler(w.rng, pool, posEvent.Item); neg != catalog.NoItem {
				w.update(posEvent.Item, neg)
				w.tier++
				break
			}
			if lvl == interactions.View {
				break
			}
		}
	}
}

// buildUser computes the user embedding (Equation 1) into w.u and records
// the context items and their normalized weights for the VC update.
func (w *worker) buildUser(ctxEvents []interactions.Event) {
	m := w.m
	linalg.Zero(w.u)
	w.ctxItems = w.ctxItems[:0]
	w.ctxW = w.ctxW[:0]
	n := len(ctxEvents)
	if n == 0 {
		return
	}
	decay := m.Hyper.ContextDecay
	var sum float64
	wt := 1.0
	for j := 0; j < n; j++ {
		sum += wt
		wt *= decay
	}
	wt = 1.0
	for j := n - 1; j >= 0; j-- {
		it := ctxEvents[j].Item
		wj := float32(wt / sum)
		wt *= decay
		if int(it) < 0 || int(it) >= m.NumItems {
			continue
		}
		w.ctxItems = append(w.ctxItems, it)
		w.ctxW = append(w.ctxW, wj)
		linalg.Axpy(wj, m.ContextVec(it), w.u)
	}
}

// update applies one BPR step for the triple (u, pos, neg): gradient ascent
// on ln sigma(x_u,pos - x_u,neg) with L2 regularization on every touched
// parameter row.
func (w *worker) update(pos, neg catalog.ItemID) {
	m := w.m
	m.Composite(pos, w.phiI)
	m.Composite(neg, w.phiJ)
	xui := float64(linalg.Dot(w.u, w.phiI))
	xuj := float64(linalg.Dot(w.u, w.phiJ))
	d := xui - xuj
	g := float32(linalg.Sigmoid(-d))
	w.lossSum += softplus(-d)
	w.examples++

	// Context side: each context item's VC row moves toward (phiI - phiJ)
	// scaled by its context weight.
	for k := range w.gradU {
		w.gradU[k] = w.phiI[k] - w.phiJ[k]
	}
	regC := float32(m.Hyper.RegContext)
	for idx, c := range w.ctxItems {
		w.apply(m.ContextVec(c), accRow(m.GVC, c, m.Hyper.Factors), g*w.ctxW[idx], w.gradU, regC)
	}

	// Item side: positive toward u, negative away from u.
	regV := float32(m.Hyper.RegItem)
	w.apply(m.ItemVec(pos), accRow(m.GV, pos, m.Hyper.Factors), g, w.u, regV)
	w.apply(m.ItemVec(neg), accRow(m.GV, neg, m.Hyper.Factors), -g, w.u, regV)

	// Feature side: the positive's feature rows share the +g*u gradient,
	// the negative's share -g*u (hierarchical additive model).
	regF := float32(m.Hyper.RegFeature)
	w.updateFeatures(pos, g, regF)
	w.updateFeatures(neg, -g, regF)
}

func (w *worker) updateFeatures(i catalog.ItemID, scale, regF float32) {
	m := w.m
	F := m.Hyper.Factors
	if m.T != nil {
		for _, a := range m.catAncestors[m.itemCat[i]] {
			w.apply(m.nodeVec(a), accRow(m.GT, catalog.ItemID(a), F), scale, w.u, regF)
		}
	}
	if m.B != nil {
		if b := m.brandOf[i]; b != catalog.NoBrand {
			w.apply(m.brandVec(b), accRow(m.GB, catalog.ItemID(b), F), scale, w.u, regF)
		}
	}
	if m.P != nil {
		if pb := m.priceBucket[i]; pb >= 0 {
			w.apply(m.priceVec(int(pb)), accRow(m.GP, catalog.ItemID(pb), F), scale, w.u, regF)
		}
	}
}

// accRow returns the Adagrad accumulator row for index i, or nil when the
// optimizer is plain SGD.
func accRow(acc []float32, i catalog.ItemID, f int) []float32 {
	if acc == nil {
		return nil
	}
	return acc[int(i)*f : (int(i)+1)*f]
}

// apply performs param[k] += lr * grad_k (with the Adagrad per-coordinate
// rate when acc != nil), where grad_k = scale*dir[k] - reg*param[k].
func (w *worker) apply(param, acc []float32, scale float32, dir []float32, reg float32) {
	lr := float32(w.m.Hyper.LearningRate)
	if acc != nil {
		for k := range param {
			gk := scale*dir[k] - reg*param[k]
			acc[k] += gk * gk
			param[k] += lr * gk / (sqrt32(acc[k]) + 1e-6)
		}
		return
	}
	for k := range param {
		gk := scale*dir[k] - reg*param[k]
		param[k] += lr * gk
	}
}

func sqrt32(x float32) float32 { return float32(math.Sqrt(float64(x))) }

// softplus returns ln(1 + e^z) computed stably; softplus(-d) is the BPR
// loss -ln sigma(d).
func softplus(z float64) float64 {
	if z > 30 {
		return z
	}
	if z < -30 {
		return 0
	}
	return math.Log1p(math.Exp(z))
}
