package bpr

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"sigmund/internal/catalog"
	"sigmund/internal/taxonomy"
)

// Checkpoint format: a compact self-contained binary encoding of the model
// — hyper-parameters, learned arrays, optimizer state, and the item->feature
// lookup tables — so an inference task on another machine can load and score
// without the catalog, and a preempted training task can resume exactly.
//
// Layout (little endian):
//
//	magic "SGM1"
//	u32 len + hyperparams JSON
//	u32 numItems, u32 numNodes, u32 numBrands
//	u64 steps
//	u8 flags (bit0 T, bit1 B, bit2 P, bit3 adagrad)
//	float32 arrays: V, VC, [T], [B], [P], [GV, GVC, [GT], [GB], [GP]]
//	i32 itemCat[numItems], i32 brandOf[numItems], i16 priceBucket[numItems]
//	per node: u16 count + i32 ancestors
const checkpointMagic = "SGM1"

const (
	flagT uint8 = 1 << iota
	flagB
	flagP
	flagAdagrad
)

// Save serializes the model to w.
func (m *Model) Save(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(checkpointMagic); err != nil {
		return err
	}
	hj, err := json.Marshal(m.Hyper)
	if err != nil {
		return fmt.Errorf("bpr: encoding hyperparams: %w", err)
	}
	writeU32(bw, uint32(len(hj)))
	bw.Write(hj)
	writeU32(bw, uint32(m.NumItems))
	writeU32(bw, uint32(m.NumNodes))
	writeU32(bw, uint32(m.NumBrands))
	writeU64(bw, uint64(m.Steps))
	var flags uint8
	if m.T != nil {
		flags |= flagT
	}
	if m.B != nil {
		flags |= flagB
	}
	if m.P != nil {
		flags |= flagP
	}
	if m.GV != nil {
		flags |= flagAdagrad
	}
	bw.WriteByte(flags)
	for _, arr := range [][]float32{m.V, m.VC, m.T, m.B, m.P, m.GV, m.GVC, m.GT, m.GB, m.GP} {
		writeFloats(bw, arr)
	}
	for _, c := range m.itemCat {
		writeU32(bw, uint32(c))
	}
	for _, b := range m.brandOf {
		writeU32(bw, uint32(int32(b)))
	}
	for _, p := range m.priceBucket {
		writeU16(bw, uint16(p))
	}
	for _, anc := range m.catAncestors {
		writeU16(bw, uint16(len(anc)))
		for _, a := range anc {
			writeU32(bw, uint32(a))
		}
	}
	return bw.Flush()
}

// Load deserializes a model previously written with WriteTo. The result is
// immediately usable for scoring and for resumed/incremental training.
func Load(r io.Reader) (*Model, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, len(checkpointMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("bpr: reading magic: %w", err)
	}
	if string(magic) != checkpointMagic {
		return nil, fmt.Errorf("bpr: bad checkpoint magic %q", magic)
	}
	hlen, err := readU32(br)
	if err != nil {
		return nil, err
	}
	hj := make([]byte, hlen)
	if _, err := io.ReadFull(br, hj); err != nil {
		return nil, err
	}
	m := &Model{}
	if err := json.Unmarshal(hj, &m.Hyper); err != nil {
		return nil, fmt.Errorf("bpr: decoding hyperparams: %w", err)
	}
	var ni, nn, nb uint32
	if ni, err = readU32(br); err != nil {
		return nil, err
	}
	if nn, err = readU32(br); err != nil {
		return nil, err
	}
	if nb, err = readU32(br); err != nil {
		return nil, err
	}
	steps, err := readU64(br)
	if err != nil {
		return nil, err
	}
	m.NumItems, m.NumNodes, m.NumBrands = int(ni), int(nn), int(nb)
	m.Steps = int64(steps)
	flags, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	F := m.Hyper.Factors
	if F < 1 {
		return nil, fmt.Errorf("bpr: checkpoint has invalid Factors %d", F)
	}
	readArr := func(rows int) ([]float32, error) {
		arr := make([]float32, rows*F)
		return arr, readFloats(br, arr)
	}
	if m.V, err = readArr(m.NumItems); err != nil {
		return nil, err
	}
	if m.VC, err = readArr(m.NumItems); err != nil {
		return nil, err
	}
	if flags&flagT != 0 {
		if m.T, err = readArr(m.NumNodes); err != nil {
			return nil, err
		}
	}
	if flags&flagB != 0 {
		if m.B, err = readArr(m.NumBrands + 1); err != nil {
			return nil, err
		}
	}
	if flags&flagP != 0 {
		if m.P, err = readArr(NumPriceBuckets); err != nil {
			return nil, err
		}
	}
	if flags&flagAdagrad != 0 {
		if m.GV, err = readArr(m.NumItems); err != nil {
			return nil, err
		}
		if m.GVC, err = readArr(m.NumItems); err != nil {
			return nil, err
		}
		if flags&flagT != 0 {
			if m.GT, err = readArr(m.NumNodes); err != nil {
				return nil, err
			}
		}
		if flags&flagB != 0 {
			if m.GB, err = readArr(m.NumBrands + 1); err != nil {
				return nil, err
			}
		}
		if flags&flagP != 0 {
			if m.GP, err = readArr(NumPriceBuckets); err != nil {
				return nil, err
			}
		}
	}
	m.itemCat = make([]taxonomy.NodeID, m.NumItems)
	for i := range m.itemCat {
		v, err := readU32(br)
		if err != nil {
			return nil, err
		}
		m.itemCat[i] = taxonomy.NodeID(int32(v))
	}
	m.brandOf = make([]catalog.BrandID, m.NumItems)
	for i := range m.brandOf {
		v, err := readU32(br)
		if err != nil {
			return nil, err
		}
		m.brandOf[i] = catalog.BrandID(int32(v))
	}
	m.priceBucket = make([]int16, m.NumItems)
	for i := range m.priceBucket {
		v, err := readU16(br)
		if err != nil {
			return nil, err
		}
		m.priceBucket[i] = int16(v)
	}
	m.catAncestors = make([][]taxonomy.NodeID, m.NumNodes)
	for i := range m.catAncestors {
		cnt, err := readU16(br)
		if err != nil {
			return nil, err
		}
		anc := make([]taxonomy.NodeID, cnt)
		for j := range anc {
			v, err := readU32(br)
			if err != nil {
				return nil, err
			}
			anc[j] = taxonomy.NodeID(int32(v))
		}
		m.catAncestors[i] = anc
	}
	return m, nil
}

func writeU16(w *bufio.Writer, v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	w.Write(b[:])
}

func writeU32(w *bufio.Writer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.Write(b[:])
}

func writeU64(w *bufio.Writer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.Write(b[:])
}

func writeFloats(w *bufio.Writer, xs []float32) {
	var b [4]byte
	for _, x := range xs {
		binary.LittleEndian.PutUint32(b[:], math.Float32bits(x))
		w.Write(b[:])
	}
}

func readU16(r io.Reader) (uint16, error) {
	var b [2]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b[:]), nil
}

func readU32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func readU64(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func readFloats(r io.Reader, dst []float32) error {
	buf := make([]byte, 4*len(dst))
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return nil
}
