package bpr

import (
	"context"
	"io"
	"testing"
	"testing/quick"

	"sigmund/internal/catalog"
	"sigmund/internal/interactions"
	"sigmund/internal/linalg"
)

// exampleLoss computes the BPR loss -ln sigma(x_u,pos - x_u,neg) for a
// worker's current context embedding.
func exampleLoss(w *worker, pos, neg catalog.ItemID) float64 {
	m := w.m
	m.Composite(pos, w.phiI)
	m.Composite(neg, w.phiJ)
	d := float64(linalg.Dot(w.u, w.phiI)) - float64(linalg.Dot(w.u, w.phiJ))
	return softplus(-d)
}

// TestUpdateDecreasesExampleLoss verifies the paper's Section III-B1
// statement: "Following the update step, the loss is guaranteed to be
// strictly smaller for the example" — for plain SGD with a small step and
// no regularization, one update must reduce that example's own loss.
func TestUpdateDecreasesExampleLoss(t *testing.T) {
	c := testCatalog(t)
	f := func(seed uint64) bool {
		rng := linalg.NewRNG(seed)
		h := DefaultHyperparams()
		h.Factors = 6
		h.Optimizer = PlainSGD
		h.LearningRate = 0.01 // small step: first-order decrease applies
		h.RegItem, h.RegContext, h.RegFeature = 0, 0, 0
		h.UseTaxonomy = rng.Intn(2) == 0
		h.UseBrand = rng.Intn(2) == 0
		h.UsePrice = rng.Intn(2) == 0
		h.Seed = seed
		m, err := NewModel(h, c)
		if err != nil {
			return false
		}
		// Random single-step dataset so worker scratch buffers exist.
		log := interactions.NewLog()
		log.Append(interactions.Event{User: 0, Item: 0, Type: interactions.View, Time: 1})
		log.Append(interactions.Event{User: 0, Item: 1, Type: interactions.View, Time: 2})
		d := NewDataset(log, c)
		w := newWorker(m, d, UniformSampler{NumItems: m.NumItems}, rng.Split())

		for trial := 0; trial < 10; trial++ {
			// Random non-empty context and a (pos, neg) pair.
			n := 1 + rng.Intn(3)
			events := make([]interactions.Event, n)
			for i := range events {
				events[i] = interactions.Event{
					User: 0, Item: catalog.ItemID(rng.Intn(m.NumItems)),
					Type: interactions.EventType(rng.Intn(4)), Time: int64(i),
				}
			}
			w.buildUser(events)
			pos := catalog.ItemID(rng.Intn(m.NumItems))
			neg := catalog.ItemID(rng.Intn(m.NumItems))
			if pos == neg {
				continue
			}
			before := exampleLoss(w, pos, neg)
			w.update(pos, neg)
			// Recompute the user embedding: the update changed the context
			// items' VC rows too.
			w.buildUser(events)
			after := exampleLoss(w, pos, neg)
			if after >= before {
				t.Logf("seed %d trial %d: loss %.6f -> %.6f (pos=%d neg=%d)", seed, trial, before, after, pos, neg)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestTrainingLeavesParamsFinite guards against gradient blow-ups across
// random hyper-parameters: after training, every parameter must be finite.
func TestTrainingLeavesParamsFinite(t *testing.T) {
	f := func(seed uint64) bool {
		rng := linalg.NewRNG(seed)
		r := synthRetailer(t, seed%7)
		h := DefaultHyperparams()
		h.Factors = 4 + rng.Intn(12)
		h.LearningRate = 0.01 + rng.Float64()*0.4
		h.RegItem = rng.Float64() * 0.2
		h.UseBrand = rng.Intn(2) == 0
		h.UsePrice = rng.Intn(2) == 0
		if rng.Intn(2) == 0 {
			h.Optimizer = PlainSGD
		}
		h.Seed = seed
		m, err := NewModel(h, r.Catalog)
		if err != nil {
			return false
		}
		ds := NewDataset(r.Log, r.Catalog)
		if _, err := Train(context.Background(), m, ds, TrainOptions{Epochs: 2, Threads: 2}); err != nil {
			return false
		}
		for _, arr := range [][]float32{m.V, m.VC, m.T, m.B, m.P} {
			for _, v := range arr {
				if v != v || v > 1e20 || v < -1e20 { // NaN or blow-up
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// TestCheckpointRoundTripProperty: Save/Load is the identity on scoring for
// random models and contexts.
func TestCheckpointRoundTripProperty(t *testing.T) {
	c := testCatalog(t)
	f := func(seed uint64) bool {
		rng := linalg.NewRNG(seed)
		h := DefaultHyperparams()
		h.Factors = 1 + rng.Intn(16)
		h.UseTaxonomy = rng.Intn(2) == 0
		h.UseBrand = rng.Intn(2) == 0
		h.UsePrice = rng.Intn(2) == 0
		if rng.Intn(2) == 0 {
			h.Optimizer = PlainSGD
		}
		h.Seed = seed
		m, err := NewModel(h, c)
		if err != nil {
			return false
		}
		var buf writeBuffer
		if err := m.Save(&buf); err != nil {
			return false
		}
		got, err := Load(&buf)
		if err != nil {
			return false
		}
		ctx := interactions.Context{{Type: interactions.View, Item: catalog.ItemID(rng.Intn(c.NumItems()))}}
		for i := 0; i < c.NumItems(); i++ {
			if m.Score(ctx, catalog.ItemID(i)) != got.Score(ctx, catalog.ItemID(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

type writeBuffer struct {
	data []byte
	pos  int
}

func (b *writeBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

func (b *writeBuffer) Read(p []byte) (int, error) {
	if b.pos >= len(b.data) {
		return 0, io.EOF
	}
	n := copy(p, b.data[b.pos:])
	b.pos += n
	return n, nil
}
