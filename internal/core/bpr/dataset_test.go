package bpr

import (
	"testing"

	"sigmund/internal/catalog"
	"sigmund/internal/interactions"
	"sigmund/internal/linalg"
)

func TestDatasetStructures(t *testing.T) {
	c := testCatalog(t)
	log := interactions.NewLog()
	add := func(u interactions.UserID, i catalog.ItemID, et interactions.EventType, tm int64) {
		log.Append(interactions.Event{User: u, Item: i, Type: et, Time: tm})
	}
	// User 0: view 0, search 0, view 1, cart 2  -> maxLevel {0:search, 1:view, 2:cart}
	add(0, 0, interactions.View, 1)
	add(0, 0, interactions.Search, 2)
	add(0, 1, interactions.View, 3)
	add(0, 2, interactions.Cart, 4)
	// User 1: single event -> no positions (idx 0 skipped).
	add(1, 3, interactions.View, 5)

	ds := NewDataset(log, c)
	if ds.NumUsers() != 2 {
		t.Fatalf("NumUsers = %d", ds.NumUsers())
	}
	// Positions: user 0 indices 1,2,3 = 3 positions; user 1 none.
	if ds.NumPositions() != 3 {
		t.Fatalf("NumPositions = %d, want 3", ds.NumPositions())
	}
	if !ds.Interacted(0, 0) || ds.Interacted(0, 5) {
		t.Fatal("Interacted wrong")
	}
	if lvl, ok := ds.MaxLevel(0, 0); !ok || lvl != interactions.Search {
		t.Fatalf("MaxLevel(0,0) = %v,%v", lvl, ok)
	}
	// Tier pools: items whose max level is exactly View for user 0 -> {1}.
	pool := ds.TierNegatives(0, interactions.View)
	if len(pool) != 1 || pool[0] != 1 {
		t.Fatalf("TierNegatives(View) = %v", pool)
	}
	pool = ds.TierNegatives(0, interactions.Search)
	if len(pool) != 1 || pool[0] != 0 {
		t.Fatalf("TierNegatives(Search) = %v", pool)
	}
	if got := ds.TierNegatives(0, interactions.Conversion); len(got) != 0 {
		t.Fatalf("TierNegatives(Conversion) = %v", got)
	}
}

func TestDatasetDropsUnknownItems(t *testing.T) {
	c := testCatalog(t)
	log := interactions.NewLog()
	log.Append(interactions.Event{User: 0, Item: 500, Type: interactions.View, Time: 1})
	log.Append(interactions.Event{User: 0, Item: 0, Type: interactions.View, Time: 2})
	ds := NewDataset(log, c)
	if ds.Interacted(0, 500) {
		t.Fatal("out-of-catalog item recorded")
	}
}

func TestSamplePositionContextWindow(t *testing.T) {
	c := testCatalog(t)
	log := interactions.NewLog()
	for i := int64(0); i < 6; i++ {
		log.Append(interactions.Event{User: 0, Item: catalog.ItemID(i % 8), Type: interactions.View, Time: i})
	}
	ds := NewDataset(log, c)
	rng := linalg.NewRNG(5)
	for trial := 0; trial < 100; trial++ {
		seqIdx, pos, ctx := ds.SamplePosition(rng, 3)
		if seqIdx != 0 {
			t.Fatalf("seqIdx = %d", seqIdx)
		}
		if len(ctx) == 0 || len(ctx) > 3 {
			t.Fatalf("context window size %d out of [1,3]", len(ctx))
		}
		// The context must immediately precede the positive.
		if ctx[len(ctx)-1].Time != pos.Time-1 {
			t.Fatalf("context not contiguous with positive: %v then %v", ctx[len(ctx)-1], pos)
		}
	}
}

func TestContextOf(t *testing.T) {
	evs := []interactions.Event{
		{User: 0, Item: 4, Type: interactions.Search, Time: 9},
		{User: 0, Item: 5, Type: interactions.Cart, Time: 10},
	}
	ctx := ContextOf(evs)
	if len(ctx) != 2 || ctx[0].Item != 4 || ctx[1].Type != interactions.Cart {
		t.Fatalf("ContextOf = %+v", ctx)
	}
}
