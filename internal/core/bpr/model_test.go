package bpr

import (
	"math"
	"testing"

	"sigmund/internal/catalog"
	"sigmund/internal/interactions"
	"sigmund/internal/linalg"
	"sigmund/internal/synth"
	"sigmund/internal/taxonomy"
)

// testCatalog builds a small two-department catalog with brands and prices.
func testCatalog(t testing.TB) *catalog.Catalog {
	t.Helper()
	b := taxonomy.NewBuilder("root")
	d1 := b.AddChild(taxonomy.Root, "electronics")
	d2 := b.AddChild(taxonomy.Root, "apparel")
	phones := b.AddChild(d1, "phones")
	laptops := b.AddChild(d1, "laptops")
	shirts := b.AddChild(d2, "shirts")
	tx := b.Build()
	c := catalog.New("t", tx)
	acme := c.AddBrand("acme")
	zeta := c.AddBrand("zeta")
	cats := []taxonomy.NodeID{phones, phones, laptops, laptops, shirts, shirts, shirts, phones}
	brands := []catalog.BrandID{acme, zeta, acme, catalog.NoBrand, zeta, catalog.NoBrand, acme, zeta}
	for i := 0; i < 8; i++ {
		c.AddItem(catalog.Item{
			Name: "item", Category: cats[i], Brand: brands[i],
			Price: int64(1000 * (i + 1)), InStock: true,
		})
	}
	return c
}

func allFeaturesHyper() Hyperparams {
	h := DefaultHyperparams()
	h.Factors = 6
	h.UseTaxonomy = true
	h.UseBrand = true
	h.UsePrice = true
	return h
}

func TestNewModelShapes(t *testing.T) {
	c := testCatalog(t)
	m, err := NewModel(allFeaturesHyper(), c)
	if err != nil {
		t.Fatal(err)
	}
	F := 6
	if len(m.V) != 8*F || len(m.VC) != 8*F {
		t.Fatalf("item arrays wrong: %d, %d", len(m.V), len(m.VC))
	}
	if len(m.T) != c.Tax.NumNodes()*F {
		t.Fatalf("taxonomy array wrong: %d", len(m.T))
	}
	if len(m.B) != (c.NumBrands()+1)*F {
		t.Fatalf("brand array wrong: %d", len(m.B))
	}
	if len(m.P) != NumPriceBuckets*F {
		t.Fatalf("price array wrong: %d", len(m.P))
	}
	if m.GV == nil {
		t.Fatal("adagrad accumulators missing")
	}
	// NoBrand row must be zero so brandless items get no brand term.
	for k := 0; k < F; k++ {
		if m.B[k] != 0 {
			t.Fatal("NoBrand embedding row not zeroed")
		}
	}
	if m.MemoryBytes() != int64(8*m.NumParams()) {
		t.Fatalf("MemoryBytes = %d, want %d (params + adagrad)", m.MemoryBytes(), 8*m.NumParams())
	}
}

func TestNewModelValidates(t *testing.T) {
	c := testCatalog(t)
	h := DefaultHyperparams()
	h.Factors = 0
	if _, err := NewModel(h, c); err == nil {
		t.Fatal("expected validation error for Factors=0")
	}
	bad := []func(*Hyperparams){
		func(h *Hyperparams) { h.LearningRate = 0 },
		func(h *Hyperparams) { h.RegItem = -1 },
		func(h *Hyperparams) { h.ContextLen = 0 },
		func(h *Hyperparams) { h.ContextDecay = 0 },
		func(h *Hyperparams) { h.ContextDecay = 1.5 },
		func(h *Hyperparams) { h.InitStdDev = 0 },
	}
	for i, mut := range bad {
		h := DefaultHyperparams()
		mut(&h)
		if h.Validate() == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if err := DefaultHyperparams().Validate(); err != nil {
		t.Errorf("defaults invalid: %v", err)
	}
}

func TestCompositeAdditiveStructure(t *testing.T) {
	c := testCatalog(t)
	m, _ := NewModel(allFeaturesHyper(), c)
	F := m.F()
	i := catalog.ItemID(0) // phones, brand acme, price 1000
	got := m.Composite(i, make([]float32, F))

	want := make([]float32, F)
	copy(want, m.ItemVec(i))
	for _, a := range c.Tax.Ancestors(c.Item(i).Category) {
		linalg.AddTo(m.T[int(a)*F:(int(a)+1)*F], want)
	}
	linalg.AddTo(m.B[int(c.Item(i).Brand)*F:(int(c.Item(i).Brand)+1)*F], want)
	pb := c.PriceBucket(i, NumPriceBuckets)
	linalg.AddTo(m.P[pb*F:(pb+1)*F], want)
	for k := range want {
		if math.Abs(float64(got[k]-want[k])) > 1e-6 {
			t.Fatalf("Composite[%d] = %v, want %v", k, got[k], want[k])
		}
	}
}

func TestCompositeWithoutFeatures(t *testing.T) {
	c := testCatalog(t)
	h := DefaultHyperparams()
	h.Factors = 6
	h.UseTaxonomy, h.UseBrand, h.UsePrice = false, false, false
	m, _ := NewModel(h, c)
	got := m.Composite(0, make([]float32, 6))
	v := m.ItemVec(0)
	for k := range got {
		if got[k] != v[k] {
			t.Fatal("featureless composite must equal the raw item vector")
		}
	}
}

func TestUserEmbeddingDecayAndNormalization(t *testing.T) {
	c := testCatalog(t)
	h := allFeaturesHyper()
	h.ContextDecay = 0.5
	m, _ := NewModel(h, c)
	F := m.F()

	// Single-item context: u == VC[item] exactly (weight normalizes to 1).
	u := m.UserEmbedding(interactions.Context{{Type: interactions.View, Item: 2}}, make([]float32, F))
	vc := m.ContextVec(2)
	for k := range u {
		if math.Abs(float64(u[k]-vc[k])) > 1e-6 {
			t.Fatalf("single-item context: u != VC; k=%d", k)
		}
	}

	// Two-item context with decay 0.5: weights 1/3 (old), 2/3 (new).
	ctx := interactions.Context{
		{Type: interactions.View, Item: 1},
		{Type: interactions.View, Item: 2},
	}
	u = m.UserEmbedding(ctx, make([]float32, F))
	for k := 0; k < F; k++ {
		want := float32(1.0/3)*m.ContextVec(1)[k] + float32(2.0/3)*m.ContextVec(2)[k]
		if math.Abs(float64(u[k]-want)) > 1e-5 {
			t.Fatalf("two-item context weight wrong at k=%d: got %v want %v", k, u[k], want)
		}
	}

	// Empty context: zero vector.
	u = m.UserEmbedding(nil, make([]float32, F))
	for _, x := range u {
		if x != 0 {
			t.Fatal("empty context must give zero embedding")
		}
	}

	// Out-of-range items are skipped, not crashed on.
	u = m.UserEmbedding(interactions.Context{{Type: interactions.View, Item: 999}}, make([]float32, F))
	for _, x := range u {
		if x != 0 {
			t.Fatal("unknown item contributed to embedding")
		}
	}
}

func TestUserEmbeddingTruncatesToContextLen(t *testing.T) {
	c := testCatalog(t)
	h := allFeaturesHyper()
	h.ContextLen = 2
	m, _ := NewModel(h, c)
	long := interactions.Context{
		{Type: interactions.View, Item: 0},
		{Type: interactions.View, Item: 1},
		{Type: interactions.View, Item: 2},
	}
	short := long[1:]
	a := m.UserEmbedding(long, make([]float32, m.F()))
	b := m.UserEmbedding(short, make([]float32, m.F()))
	for k := range a {
		if a[k] != b[k] {
			t.Fatal("context not truncated to ContextLen")
		}
	}
}

func TestScoreAllMatchesScore(t *testing.T) {
	c := testCatalog(t)
	m, _ := NewModel(allFeaturesHyper(), c)
	ctx := interactions.Context{
		{Type: interactions.View, Item: 0},
		{Type: interactions.Search, Item: 3},
	}
	all := make([]float64, m.NumItems)
	m.ScoreAll(ctx, all)
	for i := 0; i < m.NumItems; i++ {
		want := m.Score(ctx, catalog.ItemID(i))
		if math.Abs(all[i]-want) > 1e-5 {
			t.Fatalf("ScoreAll[%d] = %v, Score = %v", i, all[i], want)
		}
	}
}

func TestContextWeights(t *testing.T) {
	c := testCatalog(t)
	h := allFeaturesHyper()
	h.ContextDecay = 0.5
	m, _ := NewModel(h, c)
	w := m.ContextWeights(3, nil)
	// Oldest->newest: 0.25, 0.5, 1 normalized by 1.75.
	want := []float64{0.25 / 1.75, 0.5 / 1.75, 1 / 1.75}
	for i := range want {
		if math.Abs(w[i]-want[i]) > 1e-12 {
			t.Fatalf("ContextWeights[%d] = %v, want %v", i, w[i], want[i])
		}
	}
	var sum float64
	for _, x := range w {
		sum += x
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("weights sum to %v, want 1", sum)
	}
}

func TestResetAdagradNorms(t *testing.T) {
	c := testCatalog(t)
	m, _ := NewModel(allFeaturesHyper(), c)
	for i := range m.GV {
		m.GV[i] = 3
	}
	m.GT[0] = 7
	m.ResetAdagradNorms()
	for _, g := range [][]float32{m.GV, m.GVC, m.GT, m.GB, m.GP} {
		for _, x := range g {
			if x != AdagradInitAccumulator {
				t.Fatal("ResetAdagradNorms did not restore the initial accumulator")
			}
		}
	}
}

func TestExpandToCatalog(t *testing.T) {
	c := testCatalog(t)
	m, _ := NewModel(allFeaturesHyper(), c)
	oldVec := make([]float32, m.F())
	copy(oldVec, m.ItemVec(3))

	// Grow the catalog: two new items, one new brand.
	nb := c.AddBrand("newbrand")
	c.AddItem(catalog.Item{Name: "new1", Category: taxonomy.Root, Brand: nb, Price: 500, InStock: true})
	c.AddItem(catalog.Item{Name: "new2", Category: taxonomy.Root, Brand: catalog.NoBrand, InStock: true})

	if err := m.ExpandToCatalog(c, linalg.NewRNG(99)); err != nil {
		t.Fatal(err)
	}
	if m.NumItems != 10 {
		t.Fatalf("NumItems = %d, want 10", m.NumItems)
	}
	// Existing embeddings preserved (warm start).
	for k, v := range m.ItemVec(3) {
		if v != oldVec[k] {
			t.Fatal("expansion clobbered existing embedding")
		}
	}
	// New items' context embeddings initialized (non-zero with
	// overwhelming probability); item-side deviations start at zero under
	// the taxonomy prior.
	var norm float32
	for _, v := range m.ContextVec(9) {
		norm += v * v
	}
	if norm == 0 {
		t.Fatal("new item context embedding not initialized")
	}
	for _, v := range m.ItemVec(9) {
		if v != 0 {
			t.Fatal("new item deviation should start at the category prior (zero)")
		}
	}
	// Accumulators re-allocated to new sizes and zeroed.
	if len(m.GV) != len(m.V) {
		t.Fatal("adagrad accumulator size mismatch after expansion")
	}
	// Scoring covers the new item.
	s := make([]float64, m.NumItems)
	m.ScoreAll(interactions.Context{{Type: interactions.View, Item: 0}}, s)

	// Shrinking is rejected.
	small := catalog.New("t2", c.Tax)
	if err := m.ExpandToCatalog(small, linalg.NewRNG(1)); err == nil {
		t.Fatal("expected error when catalog shrinks")
	}
}

func TestHyperKeyDistinguishesConfigs(t *testing.T) {
	a := DefaultHyperparams()
	b := a
	b.Factors = 32
	if a.Key() == b.Key() {
		t.Fatal("different configs share a Key")
	}
	c := a
	c.UseBrand = true
	if a.Key() == c.Key() {
		t.Fatal("feature switch not reflected in Key")
	}
}

func TestModelDeterministicInit(t *testing.T) {
	c := testCatalog(t)
	h := allFeaturesHyper()
	m1, _ := NewModel(h, c)
	m2, _ := NewModel(h, c)
	for i := range m1.VC {
		if m1.VC[i] != m2.VC[i] {
			t.Fatal("same seed produced different initialization")
		}
	}
	h.Seed = 77
	m3, _ := NewModel(h, c)
	same := true
	for i := range m1.VC {
		if m1.VC[i] != m3.VC[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical initialization")
	}
	// With the taxonomy feature on, item deviations start at zero; without
	// it they are random.
	for _, v := range m1.V {
		if v != 0 {
			t.Fatal("taxonomy model should zero-init item deviations")
		}
	}
	h2 := DefaultHyperparams()
	h2.UseTaxonomy = false
	m4, _ := NewModel(h2, c)
	var norm float32
	for _, v := range m4.V {
		norm += v * v
	}
	if norm == 0 {
		t.Fatal("featureless model needs random item init")
	}
}

// synthRetailer is shared by training tests.
func synthRetailer(tb testing.TB, seed uint64) *synth.Retailer {
	tb.Helper()
	return synth.GenerateRetailer(synth.RetailerSpec{
		NumItems: 150, NumUsers: 120, EventsPerUserMean: 14,
		NumBrands: 8, BrandCoverage: 0.7, Seed: seed,
	})
}

func TestScoreSubsetMatchesScore(t *testing.T) {
	c := testCatalog(t)
	m, _ := NewModel(allFeaturesHyper(), c)
	ctx := interactions.Context{{Type: interactions.View, Item: 1}, {Type: interactions.Cart, Item: 4}}
	items := []catalog.ItemID{0, 3, 7}
	out := make([]float64, len(items))
	m.ScoreSubset(ctx, items, out)
	for idx, it := range items {
		if want := m.Score(ctx, it); math.Abs(out[idx]-want) > 1e-9 {
			t.Fatalf("ScoreSubset[%d] = %v, Score = %v", it, out[idx], want)
		}
	}
}
