package bpr

import (
	"fmt"

	"sigmund/internal/catalog"
	"sigmund/internal/interactions"
	"sigmund/internal/linalg"
	"sigmund/internal/taxonomy"
)

// Model is one trained (or in-training) BPR factorization model for one
// retailer. A model always fits in the memory of a single machine — the
// paper's key simplifying assumption (Section IV) — so all parameters live
// in flat float32 slices.
//
// Scoring is safe for concurrent use; training mutates the model and must
// go through a Trainer.
type Model struct {
	Hyper Hyperparams

	NumItems  int
	NumNodes  int // taxonomy nodes
	NumBrands int

	// Learned parameters (flat, Factors-strided).
	V  []float32 // item embeddings v_i (the ranked side)
	VC []float32 // context embeddings v^C_i (Equation 1)
	T  []float32 // taxonomy node embeddings (nil unless UseTaxonomy)
	B  []float32 // brand embeddings, 1-based by BrandID (nil unless UseBrand)
	P  []float32 // price-bucket embeddings (nil unless UsePrice)

	// Adagrad per-coordinate squared-gradient accumulators, parallel to the
	// parameter slices (nil for PlainSGD).
	GV, GVC, GT, GB, GP []float32

	// Catalog-derived lookup tables, serialized with the model so inference
	// tasks can score without reloading the catalog.
	itemCat     []taxonomy.NodeID // category of each item
	brandOf     []catalog.BrandID
	priceBucket []int16 // -1 = unknown price
	// catAncestors[node] lists node's ancestors including itself; shared
	// across items of one category.
	catAncestors [][]taxonomy.NodeID

	// Steps counts SGD updates applied, for logging and checkpoint naming.
	Steps int64
}

// NewModel allocates and randomly initializes a model for the catalog.
func NewModel(h Hyperparams, cat *catalog.Catalog) (*Model, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	m := &Model{
		Hyper:     h,
		NumItems:  cat.NumItems(),
		NumNodes:  cat.Tax.NumNodes(),
		NumBrands: cat.NumBrands(),
	}
	m.bindCatalog(cat)
	F := h.Factors
	rng := linalg.NewRNG(h.Seed)
	m.V = make([]float32, m.NumItems*F)
	m.VC = make([]float32, m.NumItems*F)
	// Under the hierarchical additive model the item vector v_i is a
	// deviation from the summed category-path embedding, so it starts at
	// zero: an item with no training data then scores purely by its
	// features, which is exactly the cold-start behaviour the taxonomy
	// smoothing exists to provide. Without features, v_i is the whole
	// representation and needs random symmetry breaking.
	if !h.UseTaxonomy {
		rng.FillNormal(m.V, h.InitStdDev)
	}
	rng.FillNormal(m.VC, h.InitStdDev)
	if h.UseTaxonomy {
		m.T = make([]float32, m.NumNodes*F)
		rng.FillNormal(m.T, h.InitStdDev*0.5)
	}
	if h.UseBrand {
		m.B = make([]float32, (m.NumBrands+1)*F)
		rng.FillNormal(m.B, h.InitStdDev*0.5)
		linalg.Zero(m.B[:F]) // NoBrand contributes nothing
	}
	if h.UsePrice {
		m.P = make([]float32, NumPriceBuckets*F)
		rng.FillNormal(m.P, h.InitStdDev*0.5)
	}
	if h.Optimizer == Adagrad {
		m.allocAdagrad()
	}
	return m, nil
}

// AdagradInitAccumulator is the initial per-coordinate squared-gradient
// accumulator. A non-zero floor keeps the very first steps at roughly the
// base learning rate instead of the wildly overscaled lr/|g| that a zero
// accumulator produces (the standard initial_accumulator_value
// stabilization).
const AdagradInitAccumulator = 0.1

func (m *Model) allocAdagrad() {
	fill := func(n int) []float32 {
		a := make([]float32, n)
		for i := range a {
			a[i] = AdagradInitAccumulator
		}
		return a
	}
	m.GV = fill(len(m.V))
	m.GVC = fill(len(m.VC))
	if m.T != nil {
		m.GT = fill(len(m.T))
	}
	if m.B != nil {
		m.GB = fill(len(m.B))
	}
	if m.P != nil {
		m.GP = fill(len(m.P))
	}
}

// bindCatalog (re)derives the item -> feature lookup tables from a catalog.
func (m *Model) bindCatalog(cat *catalog.Catalog) {
	n := cat.NumItems()
	m.itemCat = make([]taxonomy.NodeID, n)
	m.brandOf = make([]catalog.BrandID, n)
	m.priceBucket = make([]int16, n)
	for i := 0; i < n; i++ {
		it := cat.Item(catalog.ItemID(i))
		m.itemCat[i] = it.Category
		m.brandOf[i] = it.Brand
		m.priceBucket[i] = int16(cat.PriceBucket(catalog.ItemID(i), NumPriceBuckets))
	}
	m.catAncestors = make([][]taxonomy.NodeID, cat.Tax.NumNodes())
	for node := 0; node < cat.Tax.NumNodes(); node++ {
		m.catAncestors[node] = cat.Tax.Ancestors(taxonomy.NodeID(node))
	}
}

// F returns the embedding dimensionality.
func (m *Model) F() int { return m.Hyper.Factors }

// ItemVec returns item i's base embedding v_i (a live sub-slice).
func (m *Model) ItemVec(i catalog.ItemID) []float32 {
	F := m.Hyper.Factors
	return m.V[int(i)*F : (int(i)+1)*F]
}

// ContextVec returns item i's context embedding v^C_i (a live sub-slice).
func (m *Model) ContextVec(i catalog.ItemID) []float32 {
	F := m.Hyper.Factors
	return m.VC[int(i)*F : (int(i)+1)*F]
}

func (m *Model) nodeVec(n taxonomy.NodeID) []float32 {
	F := m.Hyper.Factors
	return m.T[int(n)*F : (int(n)+1)*F]
}

func (m *Model) brandVec(b catalog.BrandID) []float32 {
	F := m.Hyper.Factors
	return m.B[int(b)*F : (int(b)+1)*F]
}

func (m *Model) priceVec(bucket int) []float32 {
	F := m.Hyper.Factors
	return m.P[bucket*F : (bucket+1)*F]
}

// Composite writes item i's full feature-augmented embedding
//
//	φ(i) = v_i [+ Σ_{a ∈ ancestors(cat(i))} t_a] [+ b_{brand(i)}] [+ p_{bucket(i)}]
//
// into dst (length F) and returns dst. This hierarchical additive form is
// the Kanagal et al. taxonomy model referenced in Section III-B4: items in
// nearby categories share ancestor terms, which smooths embeddings across
// the taxonomy and gives cold items a sensible representation.
func (m *Model) Composite(i catalog.ItemID, dst []float32) []float32 {
	copy(dst, m.ItemVec(i))
	if m.T != nil {
		for _, a := range m.catAncestors[m.itemCat[i]] {
			linalg.AddTo(m.nodeVec(a), dst)
		}
	}
	if m.B != nil {
		if b := m.brandOf[i]; b != catalog.NoBrand {
			linalg.AddTo(m.brandVec(b), dst)
		}
	}
	if m.P != nil {
		if pb := m.priceBucket[i]; pb >= 0 {
			linalg.AddTo(m.priceVec(int(pb)), dst)
		}
	}
	return dst
}

// ContextWeights returns the normalized decay weights for a context of
// length n: weight[j] ∝ decay^(n-1-j) (newest action has weight ∝ 1).
func (m *Model) ContextWeights(n int, dst []float64) []float64 {
	dst = dst[:0]
	decay := m.Hyper.ContextDecay
	var sum float64
	w := 1.0
	// Compute newest-to-oldest then reverse via indexing.
	tmp := make([]float64, n)
	for j := n - 1; j >= 0; j-- {
		tmp[j] = w
		sum += w
		w *= decay
	}
	for j := 0; j < n; j++ {
		dst = append(dst, tmp[j]/sum)
	}
	return dst
}

// UserEmbedding computes Equation 1 — the decayed, normalized linear
// combination of the context items' context embeddings — into dst (length
// F) and returns dst. Context actions referencing items outside the model
// (possible when serving with a stale model) are skipped.
func (m *Model) UserEmbedding(ctx interactions.Context, dst []float32) []float32 {
	linalg.Zero(dst)
	ctx = ctx.Truncate(m.Hyper.ContextLen)
	n := len(ctx)
	if n == 0 {
		return dst
	}
	decay := m.Hyper.ContextDecay
	// Weights newest->oldest: 1, d, d^2, ...; normalize by the sum.
	var sum float64
	w := 1.0
	for j := 0; j < n; j++ {
		sum += w
		w *= decay
	}
	w = 1.0
	for j := n - 1; j >= 0; j-- {
		it := ctx[j].Item
		if int(it) >= 0 && int(it) < m.NumItems {
			linalg.Axpy(float32(w/sum), m.ContextVec(it), dst)
		}
		w *= decay
	}
	return dst
}

// Score returns the affinity x_ui between a user context and an item.
func (m *Model) Score(ctx interactions.Context, i catalog.ItemID) float64 {
	F := m.Hyper.Factors
	u := make([]float32, F)
	phi := make([]float32, F)
	m.UserEmbedding(ctx, u)
	m.Composite(i, phi)
	return float64(linalg.Dot(u, phi))
}

// ScoreAll writes the affinity of every item for the given context into
// out (length NumItems). It exploits the additive structure: feature terms
// are shared across items, so their dot products with the user embedding
// are computed once per category/brand/bucket instead of once per item.
func (m *Model) ScoreAll(ctx interactions.Context, out []float64) {
	F := m.Hyper.Factors
	u := make([]float32, F)
	m.UserEmbedding(ctx, u)
	m.ScoreAllWithUser(u, out)
}

// ScoreSubset scores only the given candidate items for one context. For
// small subsets this is far cheaper than ScoreAll — it is the fast path
// behind the paper's 10%-sampled MAP evaluation (eval.SubsetScorer).
func (m *Model) ScoreSubset(ctx interactions.Context, items []catalog.ItemID, out []float64) {
	F := m.Hyper.Factors
	u := make([]float32, F)
	phi := make([]float32, F)
	m.UserEmbedding(ctx, u)
	for idx, i := range items {
		m.Composite(i, phi)
		out[idx] = float64(linalg.Dot(u, phi))
	}
}

// ScoreAllWithUser is ScoreAll with a precomputed user embedding, for
// callers that score several candidate sets under one context.
func (m *Model) ScoreAllWithUser(u []float32, out []float64) {
	var catDot []float64
	if m.T != nil {
		catDot = make([]float64, m.NumNodes)
		for node := 0; node < m.NumNodes; node++ {
			var s float64
			for _, a := range m.catAncestors[node] {
				s += float64(linalg.Dot(u, m.nodeVec(a)))
			}
			catDot[node] = s
		}
	}
	var brandDot []float64
	if m.B != nil {
		brandDot = make([]float64, m.NumBrands+1)
		for b := 1; b <= m.NumBrands; b++ {
			brandDot[b] = float64(linalg.Dot(u, m.brandVec(catalog.BrandID(b))))
		}
	}
	var priceDot []float64
	if m.P != nil {
		priceDot = make([]float64, NumPriceBuckets)
		for p := 0; p < NumPriceBuckets; p++ {
			priceDot[p] = float64(linalg.Dot(u, m.priceVec(p)))
		}
	}
	for i := 0; i < m.NumItems; i++ {
		s := float64(linalg.Dot(u, m.ItemVec(catalog.ItemID(i))))
		if catDot != nil {
			s += catDot[m.itemCat[i]]
		}
		if brandDot != nil {
			if b := m.brandOf[i]; b != catalog.NoBrand {
				s += brandDot[b]
			}
		}
		if priceDot != nil {
			if pb := m.priceBucket[i]; pb >= 0 {
				s += priceDot[pb]
			}
		}
		out[i] = s
	}
}

// NumParams returns the number of learned float32 parameters.
func (m *Model) NumParams() int {
	return len(m.V) + len(m.VC) + len(m.T) + len(m.B) + len(m.P)
}

// MemoryBytes estimates the resident size of the model's learned state
// (parameters plus optimizer state). The training scheduler uses this to
// size VMs: one retailer per machine, memory proportional to the model.
func (m *Model) MemoryBytes() int64 {
	opt := 0
	if m.GV != nil {
		opt = m.NumParams()
	}
	return int64(4 * (m.NumParams() + opt))
}

// ResetAdagradNorms resets the Adagrad accumulators to their initial
// value. The paper resets all stored norms before each incremental
// (day-over-day) run so the warm-started model can still move: yesterday's
// large accumulated norms would otherwise freeze the embeddings.
func (m *Model) ResetAdagradNorms() {
	for _, g := range [][]float32{m.GV, m.GVC, m.GT, m.GB, m.GP} {
		for i := range g {
			g[i] = AdagradInitAccumulator
		}
	}
}

// ExpandToCatalog grows the model to cover items added to the catalog since
// the model was trained: existing embeddings are copied over (preserved for
// warm-start), new items get random embeddings, and the lookup tables are
// rebound. This is the incremental-training entry point from Section
// III-C3. It returns an error if the catalog shrank or changed identity.
func (m *Model) ExpandToCatalog(cat *catalog.Catalog, rng *linalg.RNG) error {
	if cat.NumItems() < m.NumItems {
		return fmt.Errorf("bpr: catalog has %d items, model has %d — catalogs only grow", cat.NumItems(), m.NumItems)
	}
	if cat.Tax.NumNodes() < m.NumNodes {
		return fmt.Errorf("bpr: taxonomy shrank from %d to %d nodes", m.NumNodes, cat.Tax.NumNodes())
	}
	F := m.Hyper.Factors
	oldItems := m.NumItems
	m.NumItems = cat.NumItems()
	m.NumNodes = cat.Tax.NumNodes()
	m.NumBrands = cat.NumBrands()

	grow := func(s []float32, oldRows, newRows int, std float64) []float32 {
		ns := make([]float32, newRows*F)
		copy(ns, s)
		if newRows > oldRows {
			rng.FillNormal(ns[oldRows*F:], std)
		}
		return ns
	}
	vStd := m.Hyper.InitStdDev
	if m.Hyper.UseTaxonomy {
		vStd = 0 // new items start at the category prior (see NewModel)
	}
	m.V = grow(m.V, oldItems, m.NumItems, vStd)
	m.VC = grow(m.VC, oldItems, m.NumItems, m.Hyper.InitStdDev)
	if m.T != nil {
		m.T = grow(m.T, len(m.T)/F, m.NumNodes, m.Hyper.InitStdDev*0.5)
	}
	if m.B != nil {
		m.B = grow(m.B, len(m.B)/F, m.NumBrands+1, m.Hyper.InitStdDev*0.5)
	}
	// Price buckets are fixed-size; nothing to grow.
	if m.GV != nil {
		m.allocAdagrad() // fresh zero accumulators sized to the new arrays
	}
	m.bindCatalog(cat)
	return nil
}
