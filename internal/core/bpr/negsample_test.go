package bpr

import (
	"testing"

	"sigmund/internal/catalog"
	"sigmund/internal/cooccur"
	"sigmund/internal/interactions"
	"sigmund/internal/linalg"
)

func constScore(catalog.ItemID) float64 { return 0 }

func TestUniformSamplerAvoidsInteracted(t *testing.T) {
	s := UniformSampler{NumItems: 10}
	rng := linalg.NewRNG(1)
	interacted := func(j catalog.ItemID) bool { return j < 5 }
	for trial := 0; trial < 500; trial++ {
		j := s.SampleBase(rng, 7, interacted, constScore)
		if j == catalog.NoItem {
			t.Fatal("sampler gave up with half the catalog available")
		}
		if j == 7 || interacted(j) {
			t.Fatalf("sampled invalid negative %d", j)
		}
	}
}

func TestUniformSamplerGivesUpWhenSaturated(t *testing.T) {
	s := UniformSampler{NumItems: 3}
	rng := linalg.NewRNG(2)
	all := func(catalog.ItemID) bool { return true }
	if j := s.SampleBase(rng, 0, all, constScore); j != catalog.NoItem {
		t.Fatalf("expected NoItem, got %d", j)
	}
}

func TestHeuristicSamplerTaxonomyRule(t *testing.T) {
	c := testCatalog(t) // phones: 0,1,7; laptops: 2,3; shirts: 4,5,6
	s := NewHeuristicSampler(c, nil)
	rng := linalg.NewRNG(3)
	none := func(catalog.ItemID) bool { return false }
	// Positive is a phone (item 0). Distance(phones, phones)=0,
	// (phones, laptops)=1, (phones, shirts)=2. With MinLCADistance=2 only
	// shirts are acceptable in the strict phase; early draws must never be
	// phones or laptops unless the relaxation kicked in — run many trials
	// and require shirts to dominate.
	shirts, other := 0, 0
	for trial := 0; trial < 400; trial++ {
		j := s.SampleBase(rng, 0, none, constScore)
		if j == catalog.NoItem {
			t.Fatal("sampler failed with plenty of candidates")
		}
		cat := c.Item(j).Category
		if c.Tax.Distance(c.Item(0).Category, cat) >= 2 {
			shirts++
		} else {
			other++
		}
	}
	if shirts < other*3 {
		t.Fatalf("taxonomy rule weak: far=%d near=%d", shirts, other)
	}
}

func TestHeuristicSamplerCooccurrenceExclusion(t *testing.T) {
	c := testCatalog(t)
	// Build strong co-view association between items 0 and 4.
	cm := cooccur.NewModel(c.NumItems(), 5)
	for u := 0; u < 10; u++ {
		cm.Observe(interactions.Event{User: interactions.UserID(u), Item: 0, Type: interactions.View, Time: int64(2 * u)})
		cm.Observe(interactions.Event{User: interactions.UserID(u), Item: 4, Type: interactions.View, Time: int64(2*u + 1)})
	}
	s := NewHeuristicSampler(c, cm)
	rng := linalg.NewRNG(4)
	none := func(catalog.ItemID) bool { return false }
	for trial := 0; trial < 500; trial++ {
		if j := s.SampleBase(rng, 0, none, constScore); j == 4 {
			t.Fatal("highly co-viewed item sampled as negative")
		}
	}
}

func TestHeuristicSamplerAdaptive(t *testing.T) {
	c := testCatalog(t)
	s := NewHeuristicSampler(c, nil)
	s.MinLCADistance = 0 // isolate the adaptive part
	rng := linalg.NewRNG(5)
	none := func(catalog.ItemID) bool { return false }
	// Score ramps with id: the sampler should prefer high ids (hard
	// negatives under the current model).
	score := func(j catalog.ItemID) float64 { return float64(j) }
	high, low := 0, 0
	for trial := 0; trial < 300; trial++ {
		j := s.SampleBase(rng, 0, none, score)
		if j >= 4 {
			high++
		} else {
			low++
		}
	}
	if high <= low {
		t.Fatalf("adaptive sampling not preferring hard negatives: high=%d low=%d", high, low)
	}
}

func TestTierSampler(t *testing.T) {
	rng := linalg.NewRNG(6)
	if j := TierSampler(rng, nil, 0); j != catalog.NoItem {
		t.Fatal("empty pool must return NoItem")
	}
	pool := []catalog.ItemID{3}
	if j := TierSampler(rng, pool, 3); j != catalog.NoItem {
		t.Fatal("pool containing only the positive must return NoItem")
	}
	pool = []catalog.ItemID{3, 4}
	for trial := 0; trial < 50; trial++ {
		if j := TierSampler(rng, pool, 3); j != 4 {
			t.Fatalf("got %d, want 4", j)
		}
	}
}
