// Package bpr implements Sigmund's per-retailer recommendation model: BPR
// (Bayesian Personalized Ranking, Rendle et al.) matrix factorization over
// implicit feedback, extended exactly the way Section III of the paper
// describes:
//
//   - users are represented by their context — a decayed linear combination
//     of context-item embeddings (Equation 1) — so new users need no
//     retraining;
//   - interaction strengths are tiered (view < search < cart < conversion)
//     and each tier contributes pairwise constraints against the tier below;
//   - item embeddings are hierarchically smoothed over the taxonomy and
//     augmented with brand and price-bucket features;
//   - negatives are sampled with taxonomy/co-occurrence/adaptive heuristics;
//   - learning rates are per-coordinate Adagrad (plain SGD is retained as an
//     ablation baseline);
//   - training is single-machine, optionally Hogwild multi-threaded;
//   - models checkpoint to a shared filesystem and support incremental
//     (warm-start) retraining with Adagrad norms reset.
package bpr

import (
	"errors"
	"fmt"
)

// Optimizer selects the learning-rate schedule.
type Optimizer uint8

const (
	// Adagrad is the paper's choice: per-coordinate adaptive rates that
	// damp frequently updated items and boost rare ones.
	Adagrad Optimizer = iota
	// PlainSGD is the constant-rate baseline the paper compares against
	// ("Adagrad converges faster and is more reliable than the basic SGD").
	PlainSGD
)

func (o Optimizer) String() string {
	switch o {
	case Adagrad:
		return "adagrad"
	case PlainSGD:
		return "sgd"
	}
	return fmt.Sprintf("Optimizer(%d)", uint8(o))
}

// SamplerKind selects the negative-sampling strategy.
type SamplerKind uint8

const (
	// SampleUniform draws negatives uniformly from unseen items — the
	// baseline BPR sampler.
	SampleUniform SamplerKind = iota
	// SampleHeuristic applies Section III-B3: prefer items far away in the
	// taxonomy, exclude highly co-viewed/co-bought items, and pick the
	// highest-scoring of a small candidate set (adaptive, Rendle &
	// Freudenthaler 2014).
	SampleHeuristic
)

func (s SamplerKind) String() string {
	switch s {
	case SampleUniform:
		return "uniform"
	case SampleHeuristic:
		return "heuristic"
	}
	return fmt.Sprintf("SamplerKind(%d)", uint8(s))
}

// NumPriceBuckets is the number of log-scale price-bucket embeddings when
// the price feature is enabled.
const NumPriceBuckets = 16

// Hyperparams is one point in Sigmund's grid-search space (Section III-C1).
// The feature switches exist because feature usefulness varies by retailer:
// brand coverage under ~10% makes the brand feature actively harmful, so
// feature selection must be per-retailer.
type Hyperparams struct {
	Factors      int     `json:"factors"`       // F: 5..200 in the paper's grid
	LearningRate float64 `json:"learning_rate"` // Adagrad base rate / SGD rate
	RegItem      float64 `json:"reg_item"`      // λ_V
	RegContext   float64 `json:"reg_context"`   // λ_VC
	RegFeature   float64 `json:"reg_feature"`   // regularization for taxonomy/brand/price embeddings

	UseTaxonomy bool `json:"use_taxonomy"`
	UseBrand    bool `json:"use_brand"`
	UsePrice    bool `json:"use_price"`

	// ContextLen is K, the number of past actions kept in the user context
	// (~25 in production).
	ContextLen int `json:"context_len"`
	// ContextDecay in (0, 1]: the weight of a context action j steps in the
	// past is ContextDecay^j (normalized). 1 = no decay.
	ContextDecay float64 `json:"context_decay"`

	// InitStdDev is the stddev of the random embedding initialization (the
	// paper's "prior variance" knob).
	InitStdDev float64 `json:"init_std_dev"`
	// Seed is the RNG seed — explicitly part of the grid in the paper.
	Seed uint64 `json:"seed"`

	Optimizer Optimizer   `json:"optimizer"`
	Sampler   SamplerKind `json:"sampler"`
}

// DefaultHyperparams returns a sane mid-grid starting point.
func DefaultHyperparams() Hyperparams {
	return Hyperparams{
		Factors:      16,
		LearningRate: 0.1,
		RegItem:      0.01,
		RegContext:   0.01,
		RegFeature:   0.01,
		UseTaxonomy:  true,
		UseBrand:     false,
		UsePrice:     false,
		ContextLen:   25,
		ContextDecay: 0.85,
		InitStdDev:   0.1,
		Seed:         1,
		Optimizer:    Adagrad,
		Sampler:      SampleHeuristic,
	}
}

// Validate reports the first problem with h, or nil.
func (h Hyperparams) Validate() error {
	switch {
	case h.Factors < 1:
		return errors.New("bpr: Factors must be >= 1")
	case h.LearningRate <= 0:
		return errors.New("bpr: LearningRate must be > 0")
	case h.RegItem < 0 || h.RegContext < 0 || h.RegFeature < 0:
		return errors.New("bpr: regularization must be >= 0")
	case h.ContextLen < 1:
		return errors.New("bpr: ContextLen must be >= 1")
	case h.ContextDecay <= 0 || h.ContextDecay > 1:
		return errors.New("bpr: ContextDecay must be in (0, 1]")
	case h.InitStdDev <= 0:
		return errors.New("bpr: InitStdDev must be > 0")
	}
	return nil
}

// Key returns a short deterministic identifier for the combination, used in
// config records and checkpoint paths.
func (h Hyperparams) Key() string {
	feat := ""
	if h.UseTaxonomy {
		feat += "T"
	}
	if h.UseBrand {
		feat += "B"
	}
	if h.UsePrice {
		feat += "P"
	}
	if feat == "" {
		feat = "-"
	}
	return fmt.Sprintf("F%d_lr%g_rv%g_rc%g_%s_%s_%s_s%d",
		h.Factors, h.LearningRate, h.RegItem, h.RegContext, feat, h.Optimizer, h.Sampler, h.Seed)
}
