//go:build race

package bpr

// raceEnabled reports whether the binary was built with the race detector.
// Hogwild training (Niu et al.) performs intentionally lock-free, racy
// parameter updates; the detector flags those benign races as real ones,
// so Train clamps to a single thread under -race.
const raceEnabled = true
