package bpr

import (
	"sigmund/internal/catalog"
	"sigmund/internal/cooccur"
	"sigmund/internal/linalg"
)

// NegSampler draws the negative item j for a BPR triple (u, i, j). BPR is
// sensitive to this choice (Section III-B3), so the sampler is pluggable
// and part of the hyper-parameter grid.
type NegSampler interface {
	// SampleBase draws a negative for positive pos: an item the user has
	// not interacted with. interacted reports user history membership;
	// score returns the model's current affinity of the user to an item
	// (used by adaptive samplers to pick hard negatives). Returns
	// catalog.NoItem when no acceptable negative is found within budget.
	SampleBase(rng *linalg.RNG, pos catalog.ItemID,
		interacted func(catalog.ItemID) bool,
		score func(catalog.ItemID) float64) catalog.ItemID
}

// maxDraws bounds rejection sampling so degenerate users (who interacted
// with nearly everything) cannot stall training.
const maxDraws = 24

// UniformSampler is baseline BPR: negatives uniform over unseen items.
type UniformSampler struct {
	NumItems int
}

// SampleBase implements NegSampler.
func (s UniformSampler) SampleBase(rng *linalg.RNG, pos catalog.ItemID,
	interacted func(catalog.ItemID) bool, score func(catalog.ItemID) float64) catalog.ItemID {
	for t := 0; t < maxDraws; t++ {
		j := catalog.ItemID(rng.Intn(s.NumItems))
		if j != pos && !interacted(j) {
			return j
		}
	}
	return catalog.NoItem
}

// HeuristicSampler implements the paper's combined strategy:
//
//  1. taxonomy: prefer items far from the positive in LCA distance — near
//     items are likely substitutes the user might well like;
//  2. co-occurrence: exclude items highly co-viewed/co-bought with the
//     positive;
//  3. adaptive (Rendle & Freudenthaler 2014): among several acceptable
//     candidates, pick the one the current model scores highest — a hard
//     negative that yields a non-vanishing gradient.
type HeuristicSampler struct {
	Cat *catalog.Catalog
	// Cooc may be nil (e.g. first run before any co-occurrence model
	// exists); the exclusion rule is then skipped.
	Cooc *cooccur.Model
	// MinLCADistance rejects candidates closer than this to the positive
	// (default 2: same-leaf and sibling-category items are spared).
	MinLCADistance int
	// AssocSupport is the co-occurrence count at which a candidate is
	// considered "highly co-viewed/co-bought" and excluded (default 3).
	AssocSupport int
	// Candidates is how many acceptable items compete for highest score
	// (default 3). 1 disables the adaptive part.
	Candidates int
}

// NewHeuristicSampler returns a sampler with the defaults described above.
func NewHeuristicSampler(cat *catalog.Catalog, cooc *cooccur.Model) *HeuristicSampler {
	return &HeuristicSampler{Cat: cat, Cooc: cooc, MinLCADistance: 2, AssocSupport: 3, Candidates: 3}
}

// SampleBase implements NegSampler.
func (s *HeuristicSampler) SampleBase(rng *linalg.RNG, pos catalog.ItemID,
	interacted func(catalog.ItemID) bool, score func(catalog.ItemID) float64) catalog.ItemID {
	n := s.Cat.NumItems()
	posCat := s.Cat.Item(pos).Category
	best := catalog.NoItem
	bestScore := 0.0
	found := 0
	for t := 0; t < maxDraws && found < s.Candidates; t++ {
		j := catalog.ItemID(rng.Intn(n))
		if j == pos || interacted(j) {
			continue
		}
		// Taxonomy rule: skip items too close to the positive. Relax the
		// rule late in the draw budget so tiny or single-category catalogs
		// still find negatives.
		if t < maxDraws/2 && s.Cat.Tax.Distance(posCat, s.Cat.Item(j).Category) < s.MinLCADistance {
			continue
		}
		// Co-occurrence rule: never use a strongly associated item as a
		// negative — it is probably a complement or substitute, not noise.
		if s.Cooc != nil && s.Cooc.HighlyAssociated(pos, j, s.AssocSupport) {
			continue
		}
		sc := score(j)
		if found == 0 || sc > bestScore {
			best, bestScore = j, sc
		}
		found++
	}
	return best
}

// TierSampler draws tier-constraint negatives: for a positive at level L,
// the negative comes from the user's items whose max level is exactly L-1
// ("for every searched item, we sample a negative item that is viewed but
// not searched"). It is not a NegSampler — the pool is per-user — so the
// trainer calls it directly.
func TierSampler(rng *linalg.RNG, pool []catalog.ItemID, pos catalog.ItemID) catalog.ItemID {
	if len(pool) == 0 {
		return catalog.NoItem
	}
	for t := 0; t < 8; t++ {
		j := pool[rng.Intn(len(pool))]
		if j != pos {
			return j
		}
	}
	return catalog.NoItem
}
