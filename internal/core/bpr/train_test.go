package bpr

import (
	"context"
	"testing"
	"time"

	"sigmund/internal/catalog"
	"sigmund/internal/interactions"
	"sigmund/internal/linalg"
	"sigmund/internal/taxonomy"
)

// pairwiseAccuracy measures, over the holdout, how often the model ranks
// the held-out item above a random unseen item — a cheap AUC proxy the
// training tests use before the eval package enters the picture.
func pairwiseAccuracy(m *Model, holdout []interactions.HoldoutExample, numItems int, seed uint64) float64 {
	rng := linalg.NewRNG(seed)
	correct, total := 0, 0
	scores := make([]float64, numItems)
	for _, h := range holdout {
		m.ScoreAll(h.Context, scores)
		pos := scores[h.Item]
		for trial := 0; trial < 20; trial++ {
			j := catalog.ItemID(rng.Intn(numItems))
			if j == h.Item || h.Context.Contains(j) {
				continue
			}
			total++
			if pos > scores[j] {
				correct++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

func TestTrainingImprovesRanking(t *testing.T) {
	r := synthRetailer(t, 31)
	split := interactions.HoldoutSplit(r.Log, 25)
	ds := NewDataset(split.Train, r.Catalog)

	h := DefaultHyperparams()
	h.Factors = 8
	h.UseBrand = true
	h.UsePrice = true
	m, err := NewModel(h, r.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	before := pairwiseAccuracy(m, split.Holdout, m.NumItems, 1)

	stats, err := Train(context.Background(), m, ds, TrainOptions{Epochs: 20, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Steps == 0 || stats.EpochsRun != 20 {
		t.Fatalf("stats = %+v", stats)
	}
	after := pairwiseAccuracy(m, split.Holdout, m.NumItems, 1)
	t.Logf("pairwise accuracy: before=%.3f after=%.3f (loss %.4f)", before, after, stats.FinalLoss)
	if after < before+0.1 || after < 0.6 {
		t.Fatalf("training did not improve ranking: before=%.3f after=%.3f", before, after)
	}
}

func TestTrainingLossDecreases(t *testing.T) {
	r := synthRetailer(t, 32)
	ds := NewDataset(r.Log, r.Catalog)
	h := DefaultHyperparams()
	h.Factors = 8
	m, _ := NewModel(h, r.Catalog)
	var losses []float64
	_, err := Train(context.Background(), m, ds, TrainOptions{
		Epochs: 12, Threads: 1,
		OnEpoch: func(epoch int, avgLoss float64) bool {
			losses = append(losses, avgLoss)
			return false
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(losses) != 12 {
		t.Fatalf("OnEpoch called %d times", len(losses))
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("loss did not decrease: first=%.4f last=%.4f", losses[0], losses[len(losses)-1])
	}
}

func TestTierConstraintOrdersLevels(t *testing.T) {
	// Toy retailer: one user repeatedly views items 0 and 1 but converts
	// only on 0. The tier constraint (conversion > view... through the
	// chain) should leave item 0 scored above item 1 for that user context.
	b := taxonomy.NewBuilder("root")
	c1 := b.AddChild(taxonomy.Root, "a")
	c2 := b.AddChild(taxonomy.Root, "b")
	tx := b.Build()
	c := catalog.New("toy", tx)
	for i := 0; i < 6; i++ {
		cat := c1
		if i >= 3 {
			cat = c2
		}
		c.AddItem(catalog.Item{Name: "x", Category: cat, InStock: true})
	}
	log := interactions.NewLog()
	tm := int64(0)
	for u := 0; u < 30; u++ {
		uid := interactions.UserID(u)
		// Context seeds: view item 2.
		log.Append(interactions.Event{User: uid, Item: 2, Type: interactions.View, Time: tm})
		tm++
		log.Append(interactions.Event{User: uid, Item: 1, Type: interactions.View, Time: tm})
		tm++
		log.Append(interactions.Event{User: uid, Item: 0, Type: interactions.Conversion, Time: tm})
		tm++
	}
	ds := NewDataset(log, c)
	h := DefaultHyperparams()
	h.Factors = 4
	h.Sampler = SampleUniform
	h.UseTaxonomy = false
	m, _ := NewModel(h, c)
	stats, err := Train(context.Background(), m, ds, TrainOptions{Epochs: 40, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.TierExamples == 0 {
		t.Fatal("no tier examples were generated for conversion events")
	}
	ctx := interactions.Context{{Type: interactions.View, Item: 2}}
	s0 := m.Score(ctx, 0)
	s1 := m.Score(ctx, 1)
	s5 := m.Score(ctx, 5) // never interacted
	if s0 <= s1 {
		t.Errorf("converted item (%.3f) not above viewed-only item (%.3f)", s0, s1)
	}
	if s1 <= s5 {
		t.Errorf("viewed item (%.3f) not above unseen item (%.3f)", s1, s5)
	}
}

func TestTrainDeterministicSingleThread(t *testing.T) {
	r := synthRetailer(t, 33)
	ds := NewDataset(r.Log, r.Catalog)
	h := DefaultHyperparams()
	h.Factors = 4
	run := func() *Model {
		m, _ := NewModel(h, r.Catalog)
		if _, err := Train(context.Background(), m, ds, TrainOptions{Epochs: 3, Threads: 1}); err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(), run()
	for i := range a.V {
		if a.V[i] != b.V[i] {
			t.Fatalf("single-threaded training not deterministic at V[%d]", i)
		}
	}
}

func TestTrainHogwildMultithreaded(t *testing.T) {
	r := synthRetailer(t, 34)
	split := interactions.HoldoutSplit(r.Log, 25)
	ds := NewDataset(split.Train, r.Catalog)
	h := DefaultHyperparams()
	h.Factors = 8
	m, _ := NewModel(h, r.Catalog)
	stats, err := Train(context.Background(), m, ds, TrainOptions{Epochs: 15, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Steps == 0 {
		t.Fatal("no steps applied")
	}
	acc := pairwiseAccuracy(m, split.Holdout, m.NumItems, 2)
	if acc < 0.6 {
		t.Fatalf("hogwild training quality too low: %.3f", acc)
	}
}

func TestTrainHonorsCancellation(t *testing.T) {
	r := synthRetailer(t, 35)
	ds := NewDataset(r.Log, r.Catalog)
	h := DefaultHyperparams()
	h.Factors = 32
	m, _ := NewModel(h, r.Catalog)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // pre-empted before the first epoch
	stats, err := Train(ctx, m, ds, TrainOptions{Epochs: 1000, Threads: 2})
	if err == nil {
		t.Fatal("expected context error")
	}
	if stats.EpochsRun >= 1000 {
		t.Fatal("cancellation ignored")
	}
}

func TestTrainEarlyStopViaOnEpoch(t *testing.T) {
	r := synthRetailer(t, 36)
	ds := NewDataset(r.Log, r.Catalog)
	h := DefaultHyperparams()
	h.Factors = 4
	m, _ := NewModel(h, r.Catalog)
	stats, err := Train(context.Background(), m, ds, TrainOptions{
		Epochs: 50, Threads: 1,
		OnEpoch: func(epoch int, _ float64) bool { return epoch == 2 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.EpochsRun != 3 {
		t.Fatalf("EpochsRun = %d, want 3 (early stop)", stats.EpochsRun)
	}
}

func TestTrainCheckpointing(t *testing.T) {
	r := synthRetailer(t, 37)
	ds := NewDataset(r.Log, r.Catalog)
	h := DefaultHyperparams()
	h.Factors = 8
	m, _ := NewModel(h, r.Catalog)
	var ckpts int
	_, err := Train(context.Background(), m, ds, TrainOptions{
		Epochs: 60, Threads: 2,
		CheckpointEvery: 20 * time.Millisecond,
		Checkpoint: func(m *Model) error {
			ckpts++
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ckpts == 0 {
		t.Fatal("no checkpoints taken during a multi-epoch run")
	}
}

func TestTrainEmptyDataset(t *testing.T) {
	c := testCatalog(t)
	ds := NewDataset(interactions.NewLog(), c)
	m, _ := NewModel(DefaultHyperparams(), c)
	stats, err := Train(context.Background(), m, ds, TrainOptions{Epochs: 5})
	if err != nil || stats.Steps != 0 {
		t.Fatalf("empty dataset: stats=%+v err=%v", stats, err)
	}
}

func TestPlainSGDTrains(t *testing.T) {
	r := synthRetailer(t, 38)
	split := interactions.HoldoutSplit(r.Log, 25)
	ds := NewDataset(split.Train, r.Catalog)
	h := DefaultHyperparams()
	h.Factors = 8
	h.Optimizer = PlainSGD
	h.LearningRate = 0.05
	m, _ := NewModel(h, r.Catalog)
	if m.GV != nil {
		t.Fatal("PlainSGD should not allocate accumulators")
	}
	if _, err := Train(context.Background(), m, ds, TrainOptions{Epochs: 15, Threads: 1}); err != nil {
		t.Fatal(err)
	}
	acc := pairwiseAccuracy(m, split.Holdout, m.NumItems, 3)
	if acc < 0.55 {
		t.Fatalf("plain SGD failed to learn: %.3f", acc)
	}
}
