//go:build !race

package bpr

// raceEnabled reports whether the binary was built with the race detector.
const raceEnabled = false
