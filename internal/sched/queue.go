package sched

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"sigmund/internal/catalog"
	"sigmund/internal/core/modelselect"
	"sigmund/internal/dfs"
	"sigmund/internal/faults"
	"sigmund/internal/linalg"
	"sigmund/internal/retry"
)

// The queue log is the scheduler's durable state: every admission and
// every job completion is one CRC-framed record (dfs.Journal — the same
// framing, torn-tail truncation, and whole-file commit the day journal
// uses). Two record types suffice because the job chain within a cycle is
// fixed:
//
//	cycle   tenant admitted for cycle N — its stage job entered the queue
//	done    one job completed (its artifacts already durable), with the
//	        payload its successor needs: staged configs, the selected
//	        config, the guard verdict, the publish generation. Failed
//	        jobs journal done with failed=true, which closes the cycle.
//
// Resume is replay-by-re-walk: the scheduler's discrete-event loop is
// deterministic given job costs, so a resumed run re-walks the same
// schedule from virtual time zero and consults the log at every step — a
// job whose done record is present short-circuits to the journaled
// payload (no re-execution, no re-append, no re-publish); the first job
// without one executes for real and appending resumes. Work in flight at
// the crash left no record and re-executes idempotently (every stage
// persists write-then-commit).
const (
	recCycle = "cycle"
	recDone  = "done"
)

// queueRecord is the JSON payload of one queue-log record.
type queueRecord struct {
	Type   string             `json:"type"`
	Tenant catalog.RetailerID `json:"tenant"`
	Cycle  int                `json:"cycle"`
	// VT is the virtual time of the event (admission time for cycle
	// records, completion time for done records).
	VT int64 `json:"vt"`

	// done
	Kind   string `json:"kind,omitempty"`
	Failed bool   `json:"failed,omitempty"`
	Err    string `json:"err,omitempty"`
	// WallNS is the job's measured real runtime; replay re-seeds the
	// estimator from it.
	WallNS int64 `json:"wall_ns,omitempty"`

	// done(stage)
	FullSweep bool                       `json:"full_sweep,omitempty"`
	Configs   []modelselect.ConfigRecord `json:"configs,omitempty"`
	// done(train)
	Best      *modelselect.ConfigRecord `json:"best,omitempty"`
	BestMAP   float64                   `json:"best_map,omitempty"`
	ConfigsOK int                       `json:"configs_ok,omitempty"`
	// done(infer)
	ItemsServed int `json:"items_served,omitempty"`
	// done(guard)
	Verdict        string  `json:"verdict,omitempty"`
	Reason         string  `json:"reason,omitempty"`
	CanaryFraction float64 `json:"canary_fraction,omitempty"`
	// done(publish); 0 when the cycle was vetoed (nothing pushed).
	Gen int64 `json:"gen,omitempty"`
}

// QueuePath is where the scheduler's queue log lives on the shared
// filesystem. It sits outside the days/ prefix so day GC never collects
// it.
const QueuePath = "sched/queue"

// CrashError is a fleet-level queue-log failure: either an injected
// coordinator crashpoint fired (Crash true) or a record append exhausted
// its retry budget. The log survives, so running the scheduler again
// resumes from it — the supervisor in cmd/sigmundd keys its auto-restart
// on IsCrash.
type CrashError struct {
	Record int
	Crash  bool
	Err    error
}

func (e *CrashError) Error() string {
	if e.Crash {
		return fmt.Sprintf("sched: scheduler crashed after queue record %d: %v", e.Record, e.Err)
	}
	return fmt.Sprintf("sched: queue log: %v", e.Err)
}

func (e *CrashError) Unwrap() error { return e.Err }

// IsCrash reports whether err is an injected scheduler crash (a
// faults.OpCoordinator crashpoint on the queue log).
func IsCrash(err error) bool {
	var ce *CrashError
	return errors.As(err, &ce) && ce.Crash
}

// crashPath is the label the queue log presents to the fault injector
// after committing record idx: "sched/record-<idx>/". The trailing slash
// keeps "record-1/" from substring-matching "record-10".
func crashPath(idx int) string {
	return fmt.Sprintf("sched/record-%d/", idx)
}

// jobKey identifies one job across the log and the live run.
type jobKey struct {
	tenant catalog.RetailerID
	cycle  int
	kind   JobKind
}

type cycleKey struct {
	tenant catalog.RetailerID
	cycle  int
}

// queueLog is the scheduler's live handle on the durable log plus the
// keyed replay index built from it.
type queueLog struct {
	j *dfs.Journal

	records int
	resumed bool
	// admitted / dones index the replayed records by identity — the
	// resumed DES loop consults them instead of re-executing.
	admitted map[cycleKey]*queueRecord
	dones    map[jobKey]*queueRecord
	// maxGen is the highest publish generation committed to the log.
	maxGen   int64
	appendsN int
}

// openQueueLog opens (or creates) the queue log at path and replays it.
// Torn tails were already truncated by dfs.OpenJournal; a record that
// frames cleanly but does not decode is a format bug and fails hard.
func openQueueLog(fs *dfs.FS, path string) (*queueLog, error) {
	j, raw, err := dfs.OpenJournal(fs, path)
	if err != nil {
		return nil, fmt.Errorf("sched: opening queue log: %w", err)
	}
	q := &queueLog{
		j:        j,
		admitted: map[cycleKey]*queueRecord{},
		dones:    map[jobKey]*queueRecord{},
	}
	for _, payload := range raw {
		rec := new(queueRecord)
		if err := json.Unmarshal(payload, rec); err != nil {
			return nil, fmt.Errorf("sched: decoding queue record: %w", err)
		}
		q.fold(rec)
	}
	q.records = len(raw)
	q.resumed = len(raw) > 0
	return q, nil
}

// fold indexes one record (replayed or freshly appended).
func (q *queueLog) fold(rec *queueRecord) {
	switch rec.Type {
	case recCycle:
		q.admitted[cycleKey{rec.Tenant, rec.Cycle}] = rec
	case recDone:
		q.dones[jobKey{rec.Tenant, rec.Cycle, JobKind(rec.Kind)}] = rec
		if rec.Gen > q.maxGen {
			q.maxGen = rec.Gen
		}
	}
}

// hasCycle reports whether a cycle's admission is already journaled.
func (q *queueLog) hasCycle(tenant catalog.RetailerID, cycle int) bool {
	_, ok := q.admitted[cycleKey{tenant, cycle}]
	return ok
}

// done returns a job's journaled completion (nil if not committed).
func (q *queueLog) done(k jobKey) *queueRecord {
	return q.dones[k]
}

// append durably commits one record, indexes it, and then consults the
// coordinator crashpoint keyed by the record's index. Append retries ride
// the given policy with a deterministic jitter seed.
func (q *queueLog) append(ctx context.Context, rec *queueRecord, pol retry.Policy, seed uint64, inj *faults.Injector) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		panic(fmt.Sprintf("sched: encoding queue record: %v", err))
	}
	rng := linalg.NewRNG(seed ^ uint64(q.appendsN)*0x9e3779b97f4a7c15 ^ uint64(len(payload)))
	var idx int
	err = retry.Do(ctx, pol, rng, func(int) error {
		var aerr error
		idx, aerr = q.j.Append(payload)
		return aerr
	})
	if err != nil {
		return &CrashError{Err: fmt.Errorf("appending %s record: %w", rec.Type, err)}
	}
	q.appendsN++
	q.fold(rec)
	if err := inj.Before(faults.OpCoordinator, crashPath(idx)); err != nil {
		return &CrashError{Record: idx, Crash: true, Err: err}
	}
	return nil
}

// resultFromRecord reconstructs a replayed job's result from its done
// record.
func resultFromRecord(rec *queueRecord) JobResult {
	res := JobResult{
		FullSweep:      rec.FullSweep,
		Configs:        rec.Configs,
		BestMAP:        rec.BestMAP,
		ConfigsOK:      rec.ConfigsOK,
		ItemsServed:    rec.ItemsServed,
		Verdict:        rec.Verdict,
		Reason:         rec.Reason,
		CanaryFraction: rec.CanaryFraction,
		Wall:           time.Duration(rec.WallNS),
	}
	if rec.Best != nil {
		res.Best = *rec.Best
		res.BestOK = true
	}
	return res
}
