package sched

import (
	"context"
	"reflect"
	"testing"
	"time"

	"sigmund/internal/catalog"
	"sigmund/internal/core/bpr"
	"sigmund/internal/core/modelselect"
	"sigmund/internal/dfs"
	"sigmund/internal/faults"
	"sigmund/internal/pipeline"
	"sigmund/internal/serving"
	"sigmund/internal/synth"
)

// buildSchedPipeline attaches a real two-tenant pipeline to the given
// filesystem and serving server, mirroring the pipeline package's own
// chaos fixtures. The fleet is deterministic: the same seed yields
// identical tenants, so faulted runs compare against controls and a
// "restarted coordinator" re-registers the same fleet.
func buildSchedPipeline(t testing.TB, fs *dfs.FS, server *serving.Server) *pipeline.Pipeline {
	t.Helper()
	p := pipeline.New(fs, server, pipeline.Options{
		Grid:              modelselect.SmallGrid(),
		BaseHyper:         bpr.DefaultHyperparams(),
		FullEpochs:        4,
		IncrementalEpochs: 2,
		TopKIncremental:   2,
		TrainWorkers:      4,
		TrainThreads:      1,
		Cells:             2,
		InferTopK:         5,
		InferWorkers:      2,
		HeadMinEvents:     20,
		Seed:              1,
	})
	fleet := synth.GenerateFleet(synth.FleetSpec{
		NumRetailers: 2, MinItems: 40, MaxItems: 80,
		UsersPerItem: 1.0, EventsPerUserMean: 10,
		Days: 2, Seed: 1234,
	})
	for _, r := range fleet {
		if err := p.AddRetailer(r.Catalog, r.Log); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func newSchedPipeline(t testing.TB) (*pipeline.Pipeline, *dfs.FS, *serving.Server) {
	t.Helper()
	fs := dfs.New()
	server := serving.NewServer()
	return buildSchedPipeline(t, fs, server), fs, server
}

func schedOpts(inj *faults.Injector) Options {
	return Options{
		Workers:   2,
		MaxCycles: 2,
		Tiers:     map[catalog.RetailerID]Tier{"retailer-000": TierHourly},
		Injector:  inj,
		// Fixed virtual costs pin the dispatch order — and therefore the
		// generation assignment — so crashed-and-resumed runs are
		// comparable to the control byte for byte.
		VirtualCost: func(j *Job) time.Duration { return 10 * time.Minute },
		Seed:        7,
	}
}

// TestSchedulerPipelineKillAndResume drives the real pipeline executor
// through the kill-and-resume drill: a control run publishes each
// tenant's cycles uninterrupted; crashed runs die right after a sampled
// queue-log record commits and resume in a fresh scheduler. The final
// published snapshot — every tenant's recommendations, status, and
// generation — must be byte-identical to the control's.
func TestSchedulerPipelineKillAndResume(t *testing.T) {
	control, _, controlServer := newSchedPipeline(t)
	controlRep, err := New(control, schedOpts(nil)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// 2 tenants x 2 cycles: 4 admissions + 20 job completions.
	n := controlRep.CyclesAdmitted + controlRep.JobsRun
	if n != 24 || controlRep.Publishes != 4 {
		t.Fatalf("control run: %d records, %d publishes, want 24/4", n, controlRep.Publishes)
	}
	want := controlServer.Snapshot()

	// Sweep a spread of crash points (every record in full mode); each
	// iteration runs the whole fleet's real training twice over.
	stride := 1
	if testing.Short() {
		stride = 7
	}
	for k := 0; k < n; k += stride {
		inj := faults.NewInjector(1, faults.Rule{
			Ops:          []faults.Op{faults.OpCoordinator},
			Kind:         faults.Error,
			PathContains: "sched/record-",
			After:        k,
			EveryNth:     1,
			Times:        1,
		})
		p, fs, server := newSchedPipeline(t)
		_, err := New(p, schedOpts(inj)).Run(context.Background())
		if err == nil {
			t.Fatalf("k=%d: run survived its crashpoint", k)
		}
		if !IsCrash(err) {
			t.Fatalf("k=%d: err = %v, want an injected crash", k, err)
		}

		// A restarted coordinator: a fresh pipeline over the same
		// filesystem and serving state (the fleet re-registers the way a
		// restarted process reloads its tenant set), fresh scheduler,
		// fresh estimator.
		resumed := buildSchedPipeline(t, fs, server)
		rep, err := New(resumed, schedOpts(nil)).Run(context.Background())
		if err != nil {
			t.Fatalf("k=%d: resume failed: %v", k, err)
		}
		if !rep.Resumed || rep.RecordsReplayed != k+1 {
			t.Fatalf("k=%d: resumed=%v replayed=%d, want true/%d", k, rep.Resumed, rep.RecordsReplayed, k+1)
		}
		got := server.Snapshot()
		if got.Version != want.Version {
			t.Fatalf("k=%d: version %d, want %d", k, got.Version, want.Version)
		}
		if !reflect.DeepEqual(got.Retailers, want.Retailers) {
			t.Fatalf("k=%d: resumed recommendations diverged from control", k)
		}
		if !reflect.DeepEqual(got.Status, want.Status) {
			t.Fatalf("k=%d: resumed status diverged: %+v vs %+v", k, got.Status, want.Status)
		}
		if rep.Publishes != controlRep.Publishes || rep.MaxGen != controlRep.MaxGen {
			t.Fatalf("k=%d: publishes=%d gen=%d, control %d/%d",
				k, rep.Publishes, rep.MaxGen, controlRep.Publishes, controlRep.MaxGen)
		}
	}
}

// TestSchedulerPipelineRollingPublish checks the no-barrier contract on
// the real serving path: after the first tenant's first cycle publishes,
// the snapshot serves that tenant alone; once every cycle has closed, all
// tenants serve and each publish only advanced its own tenant.
func TestSchedulerPipelineRollingPublish(t *testing.T) {
	p, _, server := newSchedPipeline(t)
	rep, err := New(p, schedOpts(nil)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	snap := server.Snapshot()
	if len(snap.Retailers) != 2 {
		t.Fatalf("final snapshot serves %d tenants, want 2", len(snap.Retailers))
	}
	// Rolling publishes: one generation per publish, not per fleet wave.
	if snap.Version != int64(rep.Publishes) {
		t.Fatalf("final version %d, want one generation per publish (%d)", snap.Version, rep.Publishes)
	}
	// Each tenant's status points at the generation that actually rebuilt
	// it — with rolling publishes these differ across tenants.
	versions := map[int64]bool{}
	for id, st := range snap.Status {
		if st.RecsVersion == 0 {
			t.Fatalf("tenant %s has no materialized generation", id)
		}
		versions[st.RecsVersion] = true
	}
	if len(versions) < 2 {
		t.Fatalf("all tenants share one RecsVersion %v; publishes were not rolling", versions)
	}
}
