package sched

import (
	"context"
	"fmt"
	"testing"
	"time"

	"sigmund/internal/catalog"
	"sigmund/internal/dfs"
)

// BenchmarkSchedulerDispatch measures the scheduler's control-plane cost:
// the DES loop (priority selection, virtual-clock bookkeeping, estimator
// updates) plus the per-record queue-log appends, with job execution
// itself reduced to the fake executor's bookkeeping. Each iteration
// drains a whole fleet — tenants x cycles x 5 jobs — over a fresh queue
// log, so ns/op is the cost of scheduling one fleet drain and allocs/op
// catches per-job garbage creeping into the dispatch path.
func BenchmarkSchedulerDispatch(b *testing.B) {
	run := func(b *testing.B, tenants, cycles, workers int) {
		b.Helper()
		ids := make([]catalog.RetailerID, tenants)
		tiers := map[catalog.RetailerID]Tier{}
		for i := range ids {
			ids[i] = catalog.RetailerID(fmt.Sprintf("r%03d", i))
			switch i % 3 {
			case 0:
				tiers[ids[i]] = TierHourly
			case 1:
				tiers[ids[i]] = TierBestEffort
			}
		}
		wantJobs := tenants * cycles * len(kindChain)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := New(nil, Options{
				Workers: workers, MaxCycles: cycles,
				FS: dfs.New(), Executor: &fakeExec{},
				Tenants: ids, Tiers: tiers,
				VirtualCost: flatCost(10 * time.Minute),
			})
			rep, err := s.Run(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			if rep.JobsRun != wantJobs {
				b.Fatalf("ran %d jobs, want %d", rep.JobsRun, wantJobs)
			}
		}
	}
	b.Run("fleet-16x4", func(b *testing.B) { run(b, 16, 4, 4) })
	b.Run("fleet-64x2", func(b *testing.B) { run(b, 64, 2, 8) })
}
