package estimate

import (
	"testing"
	"time"

	"sigmund/internal/catalog"
	"sigmund/internal/pipeline"
)

func TestColdStartUsesDefaultThenFleetMedian(t *testing.T) {
	e := New(Options{Default: 5 * time.Second})

	// Empty estimator: nothing to take a median over.
	d, src := e.Predict("cold", KindTrain)
	if src != SourceDefault || d != 5*time.Second {
		t.Fatalf("empty estimator: got %v from %v, want 5s from default", d, src)
	}

	// Three tenants with train history: a cold tenant gets their median.
	e.Observe("a", KindTrain, 10*time.Second)
	e.Observe("b", KindTrain, 20*time.Second)
	e.Observe("c", KindTrain, 90*time.Second)
	d, src = e.Predict("cold", KindTrain)
	if src != SourceFleetMedian {
		t.Fatalf("cold tenant: source = %v, want fleet-median", src)
	}
	if d != 20*time.Second {
		t.Fatalf("cold tenant median = %v, want 20s", d)
	}

	// The median is per kind: train history must not leak into infer.
	if _, src := e.Predict("cold", KindInfer); src != SourceDefault {
		t.Fatalf("infer prediction borrowed another kind's history (source %v)", src)
	}

	// A tenant with its own history is exact, regardless of the fleet.
	d, src = e.Predict("c", KindTrain)
	if src != SourceExact || d != 90*time.Second {
		t.Fatalf("warm tenant: got %v from %v, want 90s exact", d, src)
	}
}

func TestEWMAConverges(t *testing.T) {
	e := New(Options{Alpha: 0.5})
	e.Observe("a", KindTrain, 100*time.Millisecond)
	for i := 0; i < 20; i++ {
		e.Observe("a", KindTrain, 200*time.Millisecond)
	}
	d, _ := e.Predict("a", KindTrain)
	if d < 190*time.Millisecond || d > 200*time.Millisecond {
		t.Fatalf("EWMA did not converge toward the steady sample: %v", d)
	}
}

func TestOutlierDamping(t *testing.T) {
	e := New(Options{Alpha: 0.5, OutlierFactor: 4})
	e.Observe("a", KindTrain, 10*time.Second)

	// A wild 1000s outlier is clamped to 4x the current estimate (40s)
	// before folding: estimate = 10 + 0.5*(40-10) = 25s, not 505s.
	e.Observe("a", KindTrain, 1000*time.Second)
	d, _ := e.Predict("a", KindTrain)
	if d != 25*time.Second {
		t.Fatalf("outlier not damped: estimate %v, want 25s", d)
	}

	// Downward outliers clamp too: 1ms is raised to 25s/4 = 6.25s,
	// estimate = 25 + 0.5*(6.25-25) = 15.625s.
	e.Observe("a", KindTrain, time.Millisecond)
	d, _ = e.Predict("a", KindTrain)
	if d != 15625*time.Millisecond {
		t.Fatalf("downward outlier not damped: estimate %v, want 15.625s", d)
	}
}

func TestDampingDisabled(t *testing.T) {
	e := New(Options{Alpha: 1, OutlierFactor: -1})
	e.Observe("a", KindTrain, time.Second)
	e.Observe("a", KindTrain, 100*time.Second)
	if d, _ := e.Predict("a", KindTrain); d != 100*time.Second {
		t.Fatalf("OutlierFactor<=1 should disable damping, got %v", d)
	}
}

func TestSeedFromDayReport(t *testing.T) {
	e := New(Options{})
	rep := pipeline.DayReport{
		Retailers: []pipeline.RetailerReport{
			{Retailer: "a", StagingWall: time.Second, TrainWall: 10 * time.Second, InferWall: 2 * time.Second},
			{Retailer: "bad", Degraded: true, TrainWall: time.Millisecond},
			{Retailer: "c", TrainWall: 30 * time.Second},
		},
	}
	SeedFromDayReport(e, rep, 2)

	if d, src := e.Predict("a", KindTrain); src != SourceExact || d != 20*time.Second {
		t.Fatalf("seeded train wall = %v (%v), want 20s exact (scaled x2)", d, src)
	}
	if d, src := e.Predict("a", KindStage); src != SourceExact || d != 2*time.Second {
		t.Fatalf("seeded stage wall = %v (%v), want 2s exact", d, src)
	}
	// Degraded tenants must not seed.
	if e.Known("bad", KindTrain) {
		t.Fatal("degraded tenant's walls were seeded")
	}
	// Cold tenant now draws the median of a=20s, c=60s → lower middle 20s.
	if d, src := e.Predict("cold", KindTrain); src != SourceFleetMedian || d != 20*time.Second {
		t.Fatalf("cold tenant after seed = %v (%v), want 20s fleet-median", d, src)
	}
}

func TestObserveNegativeClampsToZero(t *testing.T) {
	e := New(Options{})
	e.Observe("a", KindTrain, -time.Second)
	if d, _ := e.Predict("a", KindTrain); d != 0 {
		t.Fatalf("negative sample should clamp to zero, got %v", d)
	}
	var unknown catalog.RetailerID = "nope"
	if e.Known(unknown, KindTrain) {
		t.Fatal("unknown tenant reported known")
	}
}
