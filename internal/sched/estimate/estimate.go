// Package estimate predicts per-tenant job runtimes for the continuous
// fleet scheduler. The predictor is an exponentially weighted moving
// average per (tenant, kind) pair, seeded from the per-tenant phase walls
// the daily pipeline already records in its DayReport. Cold tenants — no
// history for the requested kind — fall back to the fleet median across
// tenants that do have history, so a brand-new tenant is scheduled with a
// typical cost rather than zero. Individual samples are damped before they
// fold in: one pathological wall (a GC pause, a flaky replica retry storm)
// moves the estimate by at most a bounded factor.
package estimate

import (
	"sort"
	"sync"
	"time"

	"sigmund/internal/catalog"
	"sigmund/internal/pipeline"
)

// Source reports where a prediction came from.
type Source int

const (
	// SourceExact: the (tenant, kind) pair has its own EWMA history.
	SourceExact Source = iota
	// SourceFleetMedian: no history for this tenant; the prediction is the
	// median estimate across tenants with history for the same kind.
	SourceFleetMedian
	// SourceDefault: no tenant anywhere has history for the kind; the
	// estimator's configured default is returned.
	SourceDefault
)

func (s Source) String() string {
	switch s {
	case SourceExact:
		return "exact"
	case SourceFleetMedian:
		return "fleet-median"
	default:
		return "default"
	}
}

// Options configures an Estimator. The zero value takes defaults.
type Options struct {
	// Alpha is the EWMA weight of a new sample (0 < Alpha <= 1).
	// Defaults to 0.3: a few cycles to converge, stable against noise.
	Alpha float64
	// OutlierFactor clamps each incoming sample to
	// [current/OutlierFactor, current*OutlierFactor] before folding, so a
	// single wild wall cannot yank the estimate. <= 1 disables damping.
	// Defaults to 8.
	OutlierFactor float64
	// Default is returned when no tenant has history for a kind.
	// Defaults to 1s.
	Default time.Duration
}

func (o Options) defaulted() Options {
	if o.Alpha <= 0 || o.Alpha > 1 {
		o.Alpha = 0.3
	}
	if o.OutlierFactor == 0 {
		o.OutlierFactor = 8
	}
	if o.Default <= 0 {
		o.Default = time.Second
	}
	return o
}

type key struct {
	tenant catalog.RetailerID
	kind   string
}

// Estimator is a concurrency-safe EWMA runtime predictor.
type Estimator struct {
	opts Options

	mu  sync.Mutex
	est map[key]time.Duration
}

// New returns an estimator with the given options.
func New(opts Options) *Estimator {
	return &Estimator{opts: opts.defaulted(), est: map[key]time.Duration{}}
}

// Observe folds one measured runtime into the (tenant, kind) estimate.
// The first sample for a pair sets the estimate directly; later samples
// are outlier-damped and folded with weight Alpha.
func (e *Estimator) Observe(tenant catalog.RetailerID, kind string, d time.Duration) {
	if d < 0 {
		d = 0
	}
	k := key{tenant, kind}
	e.mu.Lock()
	defer e.mu.Unlock()
	cur, ok := e.est[k]
	if !ok {
		e.est[k] = d
		return
	}
	if f := e.opts.OutlierFactor; f > 1 && cur > 0 {
		lo := time.Duration(float64(cur) / f)
		hi := time.Duration(float64(cur) * f)
		if d < lo {
			d = lo
		} else if d > hi {
			d = hi
		}
	}
	e.est[k] = cur + time.Duration(e.opts.Alpha*float64(d-cur))
}

// Predict returns the estimated runtime for (tenant, kind) and where the
// estimate came from: the pair's own EWMA, the fleet median for the kind
// (cold tenant), or the configured default (cold fleet).
func (e *Estimator) Predict(tenant catalog.RetailerID, kind string) (time.Duration, Source) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if d, ok := e.est[key{tenant, kind}]; ok {
		return d, SourceExact
	}
	var vals []time.Duration
	for k, d := range e.est {
		if k.kind == kind {
			vals = append(vals, d)
		}
	}
	if len(vals) == 0 {
		return e.opts.Default, SourceDefault
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals[(len(vals)-1)/2], SourceFleetMedian
}

// Known reports whether (tenant, kind) has its own history.
func (e *Estimator) Known(tenant catalog.RetailerID, kind string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, ok := e.est[key{tenant, kind}]
	return ok
}

// Len returns the number of (tenant, kind) pairs with history.
func (e *Estimator) Len() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.est)
}

// Job kinds the daily pipeline's walls map onto. They match the
// scheduler's job-kind names so one estimator serves both paths.
const (
	KindStage = "stage"
	KindTrain = "train"
	KindInfer = "infer"
)

// SeedFromDayReport folds one completed day's per-tenant phase walls into
// the estimator, scaling each wall by scale (the scheduler's real→virtual
// time factor; use 1 for real time). Degraded tenants are skipped — their
// truncated walls would poison the estimate with near-zero samples.
func SeedFromDayReport(e *Estimator, rep pipeline.DayReport, scale float64) {
	if scale <= 0 {
		scale = 1
	}
	for _, rr := range rep.Retailers {
		if rr.Degraded {
			continue
		}
		for _, w := range []struct {
			kind string
			wall time.Duration
		}{
			{KindStage, rr.StagingWall},
			{KindTrain, rr.TrainWall},
			{KindInfer, rr.InferWall},
		} {
			if w.wall <= 0 {
				continue
			}
			e.Observe(rr.Retailer, w.kind, time.Duration(float64(w.wall)*scale))
		}
	}
}
