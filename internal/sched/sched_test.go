package sched

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"sigmund/internal/catalog"
	"sigmund/internal/core/modelselect"
	"sigmund/internal/dfs"
	"sigmund/internal/faults"
	"sigmund/internal/guard"
)

// pubEvent is one publish the fake executor pushed.
type pubEvent struct {
	Tenant catalog.RetailerID
	Cycle  int
	Gen    int64
}

// fakeExec is a deterministic in-memory Executor: every job succeeds with
// a fixed wall unless its key is in fail, guard verdicts come from the
// per-tenant verdict map (default pass), and publishes are recorded.
type fakeExec struct {
	mu        sync.Mutex
	executed  []jobKey
	committed []jobKey
	published []pubEvent
	fail      map[jobKey]bool
	verdict   map[catalog.RetailerID]string
	sleep     time.Duration
}

func (f *fakeExec) Execute(ctx context.Context, job *Job) (JobResult, error) {
	if f.sleep > 0 {
		select {
		case <-ctx.Done():
			return JobResult{}, ctx.Err()
		case <-time.After(f.sleep):
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	k := jobKey{job.Tenant, job.Cycle, job.Kind}
	f.executed = append(f.executed, k)
	res := JobResult{Wall: time.Millisecond}
	if f.fail[k] {
		return res, fmt.Errorf("fake: %s cycle %d %s failed", job.Tenant, job.Cycle, job.Kind)
	}
	switch job.Kind {
	case KindStage:
		res.FullSweep = job.Cycle == 0
		res.Configs = []modelselect.ConfigRecord{{}}
	case KindTrain:
		res.BestOK = true
		res.BestMAP = 0.5
		res.ConfigsOK = 1
	case KindInfer:
		res.ItemsServed = 7
	case KindGuard:
		res.Verdict = string(guard.VerdictPass)
		if v, ok := f.verdict[job.Tenant]; ok {
			res.Verdict = v
		}
	case KindPublish:
		if guard.Verdict(job.Verdict) != guard.VerdictVeto {
			f.published = append(f.published, pubEvent{job.Tenant, job.Cycle, job.Gen})
		}
	}
	return res, nil
}

func (f *fakeExec) Committed(job *Job, res JobResult) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.committed = append(f.committed, jobKey{job.Tenant, job.Cycle, job.Kind})
}

func (f *fakeExec) pubs() []pubEvent {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]pubEvent(nil), f.published...)
}

func flatCost(d time.Duration) func(*Job) time.Duration {
	return func(*Job) time.Duration { return d }
}

func TestSchedulerDrainsAllCycles(t *testing.T) {
	exec := &fakeExec{}
	s := New(nil, Options{
		Workers: 2, MaxCycles: 2,
		FS: dfs.New(), Executor: exec,
		Tenants:     []catalog.RetailerID{"a", "b", "c"},
		VirtualCost: flatCost(10 * time.Minute),
	})
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.CyclesAdmitted != 6 || rep.CyclesClosed != 6 {
		t.Fatalf("cycles admitted=%d closed=%d, want 6/6", rep.CyclesAdmitted, rep.CyclesClosed)
	}
	if rep.JobsRun != 30 || rep.JobsFailed != 0 || rep.JobsReplayed != 0 {
		t.Fatalf("jobs run=%d failed=%d replayed=%d, want 30/0/0", rep.JobsRun, rep.JobsFailed, rep.JobsReplayed)
	}
	if rep.Publishes != 6 || rep.Vetoed != 0 {
		t.Fatalf("publishes=%d vetoed=%d, want 6/0", rep.Publishes, rep.Vetoed)
	}
	for _, tenant := range []catalog.RetailerID{"a", "b", "c"} {
		if rep.Cycles[tenant] != 2 {
			t.Fatalf("tenant %s closed %d cycles, want 2", tenant, rep.Cycles[tenant])
		}
	}
	// Generations are globally unique 1..6 and strictly increasing per
	// tenant (a tenant's later cycle publishes a later generation).
	pubs := exec.pubs()
	if len(pubs) != 6 || rep.MaxGen != 6 {
		t.Fatalf("pubs=%d maxGen=%d, want 6/6", len(pubs), rep.MaxGen)
	}
	seen := map[int64]bool{}
	lastGen := map[catalog.RetailerID]int64{}
	for _, p := range pubs {
		if p.Gen < 1 || p.Gen > 6 || seen[p.Gen] {
			t.Fatalf("bad generation sequence: %+v", pubs)
		}
		seen[p.Gen] = true
		if p.Gen <= lastGen[p.Tenant] {
			t.Fatalf("tenant %s generations not increasing: %+v", p.Tenant, pubs)
		}
		lastGen[p.Tenant] = p.Gen
	}
	// Daily cadence: cycle 1 is due a virtual day in, so the virtual
	// clock must have advanced past it.
	if rep.VirtualElapsed < 24*time.Hour {
		t.Fatalf("virtual elapsed %v, want at least a day", rep.VirtualElapsed)
	}
	tr := rep.Tiers[TierDaily]
	if tr == nil || tr.Tenants != 3 || tr.Publishes != 6 || len(tr.Staleness) != 6 {
		t.Fatalf("daily tier report = %+v", tr)
	}
}

func TestSchedulerFailedJobClosesCycleAndSkipsSuccessors(t *testing.T) {
	exec := &fakeExec{fail: map[jobKey]bool{{"a", 0, KindTrain}: true}}
	s := New(nil, Options{
		Workers: 1, MaxCycles: 1,
		FS: dfs.New(), Executor: exec,
		Tenants:     []catalog.RetailerID{"a", "b"},
		VirtualCost: flatCost(time.Minute),
	})
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.JobsFailed != 1 || rep.CyclesClosed != 2 || rep.Publishes != 1 {
		t.Fatalf("failed=%d closed=%d publishes=%d, want 1/2/1", rep.JobsFailed, rep.CyclesClosed, rep.Publishes)
	}
	for _, k := range exec.executed {
		if k.tenant == "a" && kindIndex(k.kind) > kindIndex(KindTrain) {
			t.Fatalf("job %+v ran after its cycle failed", k)
		}
	}
	if rep.Cycles["a"] != 1 || rep.Cycles["b"] != 1 {
		t.Fatalf("cycle counts: %+v", rep.Cycles)
	}
}

func TestSchedulerGuardVerdictsDrivePublish(t *testing.T) {
	exec := &fakeExec{verdict: map[catalog.RetailerID]string{
		"a": string(guard.VerdictVeto),
		"b": string(guard.VerdictCanary),
	}}
	s := New(nil, Options{
		Workers: 2, MaxCycles: 1,
		FS: dfs.New(), Executor: exec,
		Tenants:     []catalog.RetailerID{"a", "b", "c"},
		VirtualCost: flatCost(time.Minute),
	})
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Vetoed != 1 || rep.Canaried != 1 || rep.Publishes != 2 {
		t.Fatalf("vetoed=%d canaried=%d publishes=%d, want 1/1/2", rep.Vetoed, rep.Canaried, rep.Publishes)
	}
	for _, p := range exec.pubs() {
		if p.Tenant == "a" {
			t.Fatal("vetoed tenant published")
		}
	}
	// The vetoed cycle consumed no generation: two publishes, gens 1-2.
	if rep.MaxGen != 2 {
		t.Fatalf("maxGen = %d, want 2", rep.MaxGen)
	}
}

// TestSchedulerStarvationBound pins the priority-aging contract: with one
// worker fully saturated by hourly tenants, a best-effort cycle's jobs
// lose every slack comparison — but once a job has waited MaxQueueAge it
// jumps the queue, so its dispatch wait is bounded by MaxQueueAge plus
// about one job's service time, never the length of the run.
func TestSchedulerStarvationBound(t *testing.T) {
	const maxAge = 6 * time.Hour
	exec := &fakeExec{}
	s := New(nil, Options{
		Workers: 1,
		Horizon: 24 * time.Hour,
		Tiers: map[catalog.RetailerID]Tier{
			"h0": TierHourly, "h1": TierHourly,
			"be": TierBestEffort,
		},
		MaxQueueAge: maxAge,
		FS:          dfs.New(), Executor: exec,
		Tenants: []catalog.RetailerID{"h0", "h1", "be"},
		// 6 minutes x 5 jobs = 30m per cycle: two hourly tenants keep the
		// single worker at exactly 100% utilization, so only aging can
		// ever get the best-effort tenant dispatched.
		VirtualCost: flatCost(6 * time.Minute),
	})
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles["be"] != 1 {
		t.Fatalf("best-effort tenant closed %d cycles, want 1", rep.Cycles["be"])
	}
	be := rep.Tiers[TierBestEffort]
	if be == nil || be.Publishes != 1 {
		t.Fatalf("best-effort tier report = %+v", be)
	}
	// It really was starved by priority (waited into the aging regime)...
	if be.MaxDispatchWait <= maxAge {
		t.Fatalf("best-effort max wait %v never exceeded MaxQueueAge %v; the test applied no priority pressure", be.MaxDispatchWait, maxAge)
	}
	// ...but aging bounded the wait at MaxQueueAge plus ~one service time.
	if limit := maxAge + 30*time.Minute; be.MaxDispatchWait > limit {
		t.Fatalf("best-effort max wait %v exceeds aging bound %v", be.MaxDispatchWait, limit)
	}
	// The hourly tenants kept their cadence: 24 cycles each, and the
	// best-effort insertion only ever cost them a bounded delay.
	hr := rep.Tiers[TierHourly]
	if hr == nil || hr.Publishes != 48 {
		t.Fatalf("hourly tier report = %+v", hr)
	}
	if hr.MaxDispatchWait > 2*time.Hour {
		t.Fatalf("hourly max wait %v, want well under the aging bound", hr.MaxDispatchWait)
	}
}

// TestSchedulerKillAndResumeSweep is the scheduler's crash-recovery
// proof, mirroring the day journal's sweep: for every queue-log record
// index k of an uninterrupted control run, crash a fresh run right after
// record k commits, resume it with a brand-new scheduler (a restarted
// process), and require the publish sequence — tenants, cycles, and
// generation numbers, in order — to be identical to the control's, with
// no job ever executed twice.
func TestSchedulerKillAndResumeSweep(t *testing.T) {
	tenants := []catalog.RetailerID{"a", "b", "c"}
	baseOpts := func(fs *dfs.FS, exec Executor, inj *faults.Injector) Options {
		return Options{
			Workers: 2, MaxCycles: 2,
			FS: fs, Executor: exec, Injector: inj,
			Tenants:     tenants,
			VirtualCost: flatCost(10 * time.Minute),
			Seed:        42,
		}
	}

	controlExec := &fakeExec{}
	control, err := New(nil, baseOpts(dfs.New(), controlExec, nil)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantPubs := controlExec.pubs()
	wantJobs := len(controlExec.executed)
	// 6 cycle admissions + 30 job completions.
	n := control.CyclesAdmitted + control.JobsRun
	if n != 36 || len(wantPubs) != 6 {
		t.Fatalf("control run: %d records, %d publishes, want 36/6", n, len(wantPubs))
	}

	for k := 0; k < n; k++ {
		fs := dfs.New()
		exec := &fakeExec{}
		inj := faults.NewInjector(1, faults.Rule{
			Ops:          []faults.Op{faults.OpCoordinator},
			Kind:         faults.Error,
			PathContains: "sched/record-",
			After:        k,
			EveryNth:     1,
			Times:        1,
		})
		_, err := New(nil, baseOpts(fs, exec, inj)).Run(context.Background())
		if err == nil {
			t.Fatalf("k=%d: run survived its crashpoint", k)
		}
		if !IsCrash(err) {
			t.Fatalf("k=%d: err = %v, want an injected crash", k, err)
		}

		// Resume in a fresh scheduler over the same filesystem — same
		// fake executor so the publish log spans both incarnations.
		rep, err := New(nil, baseOpts(fs, exec, nil)).Run(context.Background())
		if err != nil {
			t.Fatalf("k=%d: resume failed: %v", k, err)
		}
		if !rep.Resumed || rep.RecordsReplayed != k+1 {
			t.Fatalf("k=%d: resumed=%v replayed=%d, want true/%d", k, rep.Resumed, rep.RecordsReplayed, k+1)
		}

		// Every journaled job was short-circuited, never re-executed: the
		// cumulative execution log has no duplicates and exactly the
		// control's job count.
		seen := map[jobKey]bool{}
		for _, jk := range exec.executed {
			if seen[jk] {
				t.Fatalf("k=%d: job %+v executed twice across crash and resume", k, jk)
			}
			seen[jk] = true
		}
		if len(exec.executed) != wantJobs {
			t.Fatalf("k=%d: %d jobs executed across incarnations, want %d", k, len(exec.executed), wantJobs)
		}
		if rep.JobsRun+rep.JobsReplayed != wantJobs {
			t.Fatalf("k=%d: run+replayed = %d, want %d", k, rep.JobsRun+rep.JobsReplayed, wantJobs)
		}

		// The publish sequence — including generation assignment — is
		// identical to the uninterrupted run's.
		if got := exec.pubs(); !reflect.DeepEqual(got, wantPubs) {
			t.Fatalf("k=%d: publish sequence diverged:\n got: %+v\nwant: %+v", k, got, wantPubs)
		}
		if rep.CyclesClosed != control.CyclesClosed || rep.MaxGen != control.MaxGen || rep.Publishes != control.Publishes {
			t.Fatalf("k=%d: resumed totals closed=%d gen=%d pubs=%d, control %d/%d/%d",
				k, rep.CyclesClosed, rep.MaxGen, rep.Publishes,
				control.CyclesClosed, control.MaxGen, control.Publishes)
		}
	}
}

// TestSchedulerMultiTierSoak runs a mixed fleet for two virtual days and
// checks the freshness contract: hourly tenants' p99 staleness stays
// under one virtual hour, and daily tenants complete every cycle the
// horizon owes them.
func TestSchedulerMultiTierSoak(t *testing.T) {
	tiers := map[catalog.RetailerID]Tier{
		"h0": TierHourly, "h1": TierHourly,
		"d0": TierDaily, "d1": TierDaily, "d2": TierDaily, "d3": TierDaily,
		"b0": TierBestEffort, "b1": TierBestEffort,
	}
	var tenants []catalog.RetailerID
	for _, id := range []catalog.RetailerID{"h0", "h1", "d0", "d1", "d2", "d3", "b0", "b1"} {
		tenants = append(tenants, id)
	}
	costs := map[JobKind]time.Duration{
		KindStage: 2 * time.Minute, KindTrain: 8 * time.Minute,
		KindInfer: 3 * time.Minute, KindGuard: time.Minute, KindPublish: time.Minute,
	}
	exec := &fakeExec{}
	s := New(nil, Options{
		Workers: 4,
		Horizon: 48 * time.Hour,
		Tiers:   tiers,
		FS:      dfs.New(), Executor: exec,
		Tenants:     tenants,
		VirtualCost: func(j *Job) time.Duration { return costs[j.Kind] },
	})
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.JobsFailed != 0 {
		t.Fatalf("%d jobs failed", rep.JobsFailed)
	}
	hr := rep.Tiers[TierHourly]
	if hr == nil || hr.Publishes != 96 {
		t.Fatalf("hourly tier = %+v, want 96 publishes (2 tenants x 48 cycles)", hr)
	}
	if p99 := hr.StalenessP99(); p99 >= time.Hour {
		t.Fatalf("hourly staleness p99 = %v, want under one virtual hour", p99)
	}
	// Daily throughput: the 48h horizon owes each daily tenant exactly 2
	// cycles (due at 0h and 24h) — all of them must have closed.
	for _, id := range []catalog.RetailerID{"d0", "d1", "d2", "d3"} {
		if rep.Cycles[id] != 2 {
			t.Fatalf("daily tenant %s closed %d cycles, want 2", id, rep.Cycles[id])
		}
	}
	if dr := rep.Tiers[TierDaily]; dr.Publishes != 8 {
		t.Fatalf("daily tier publishes = %d, want 8", dr.Publishes)
	}
	if br := rep.Tiers[TierBestEffort]; br.Publishes != 4 {
		t.Fatalf("best-effort tier publishes = %d, want 4", br.Publishes)
	}
	if rep.VirtualElapsed < 24*time.Hour {
		t.Fatalf("virtual elapsed %v, want at least the second daily wave", rep.VirtualElapsed)
	}
}

// TestSchedulerCloseStopsCleanly starts a long scheduler run in the
// background, closes it mid-flight, and requires a prompt, error-free
// join with no leaked goroutines.
func TestSchedulerCloseStopsCleanly(t *testing.T) {
	before := runtime.NumGoroutine()

	exec := &fakeExec{sleep: 20 * time.Millisecond}
	s := New(nil, Options{
		Workers: 2, MaxCycles: 50,
		FS: dfs.New(), Executor: exec,
		Tenants:     []catalog.RetailerID{"a", "b", "c", "d"},
		VirtualCost: flatCost(time.Minute),
	})
	s.Start(context.Background())
	time.Sleep(60 * time.Millisecond)
	start := time.Now()
	rep, err := s.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Close took %v, want a prompt join", elapsed)
	}
	if rep.JobsRun == 0 {
		t.Fatal("scheduler made no progress before Close")
	}
	if rep.JobsRun >= 50*4*5 {
		t.Fatal("Close did not interrupt the run")
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: before=%d now=%d\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Close before Start is a no-op; a second Close is idempotent.
	var idle Scheduler
	if rep, err := idle.Close(); err != nil || rep.JobsRun != 0 {
		t.Fatalf("Close on never-started scheduler: %+v, %v", rep, err)
	}
	if _, err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
