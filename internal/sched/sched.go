package sched

import (
	"context"
	"errors"
	"sort"
	"strconv"
	"sync"
	"time"

	"sigmund/internal/catalog"
	"sigmund/internal/dfs"
	"sigmund/internal/faults"
	"sigmund/internal/guard"
	"sigmund/internal/obs"
	"sigmund/internal/pipeline"
	"sigmund/internal/retry"
	"sigmund/internal/sched/estimate"
	"sigmund/internal/serving"
)

// Options configures the scheduler. The zero value is usable: Defaulted
// fills a 4-slot worker pool, daily default tier, 1h/24h/24h tier
// periods, and a 6-virtual-hour starvation bound.
type Options struct {
	// Workers is the size of the virtual worker pool: how many jobs can
	// occupy overlapping virtual time. (Job bodies still execute serially
	// in the dispatch loop; the pool bounds modeled concurrency, not OS
	// threads.)
	Workers int

	// Tiers maps tenants to freshness tiers; absent tenants get
	// DefaultTier (daily if unset).
	Tiers       map[catalog.RetailerID]Tier
	DefaultTier Tier

	// HourlyEvery / DailyEvery / BestEffortEvery are the tier cycle
	// periods in virtual time.
	HourlyEvery     time.Duration
	DailyEvery      time.Duration
	BestEffortEvery time.Duration

	// MaxCycles stops admission after each tenant has run this many
	// cycles; Horizon stops admitting cycles due at or past it. At least
	// one must bound the run — with both zero, Defaulted sets MaxCycles=1.
	MaxCycles int
	Horizon   time.Duration

	// MaxQueueAge is the starvation bound: a job that has waited longer
	// (virtually) than this jumps ahead of all slack ordering, oldest
	// first — so a best-effort tenant is delayed at most MaxQueueAge plus
	// one queue drain, never indefinitely.
	MaxQueueAge time.Duration

	// TimeScale converts measured real walls into virtual durations fed
	// to the runtime estimator (virtual = wall * TimeScale). The default
	// 600 makes a 100ms real job ≈ one virtual minute.
	TimeScale float64

	// VirtualCost overrides job cost prediction (tests inject fixed costs
	// for deterministic schedules). nil uses the EWMA estimator.
	VirtualCost func(*Job) time.Duration
	// Estimator is the runtime estimator to use (one is created if nil).
	// Sharing one across restarts preserves learned runtimes in-process;
	// across processes it re-learns from the queue log's journaled walls.
	Estimator *estimate.Estimator

	// Executor overrides the pipeline-backed executor (tests).
	Executor Executor
	// FS overrides the queue-log filesystem (defaults to the pipeline's).
	FS *dfs.FS
	// Tenants overrides the tenant set (defaults to the pipeline's
	// registered retailers, in deterministic order).
	Tenants []catalog.RetailerID
	// Obs overrides the observability surface (defaults to the
	// pipeline's).
	Obs *obs.Observer

	// Injector drives coordinator crashpoints on the queue log
	// ("sched/record-<n>/"); Retry and Seed govern queue-append retries.
	Injector *faults.Injector
	Retry    retry.Policy
	Seed     uint64
	// QueuePath is the queue log's location on the shared filesystem.
	QueuePath string
}

// Defaulted fills zero fields with defaults.
func (o Options) Defaulted() Options {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.DefaultTier == "" {
		o.DefaultTier = TierDaily
	}
	if o.HourlyEvery <= 0 {
		o.HourlyEvery = time.Hour
	}
	if o.DailyEvery <= 0 {
		o.DailyEvery = 24 * time.Hour
	}
	if o.BestEffortEvery <= 0 {
		o.BestEffortEvery = 24 * time.Hour
	}
	if o.MaxCycles <= 0 && o.Horizon <= 0 {
		o.MaxCycles = 1
	}
	if o.MaxQueueAge <= 0 {
		o.MaxQueueAge = 6 * time.Hour
	}
	if o.TimeScale <= 0 {
		o.TimeScale = 600
	}
	if o.QueuePath == "" {
		o.QueuePath = QueuePath
	}
	return o
}

// TierReport summarizes one tier's outcomes over a run.
type TierReport struct {
	// Tenants assigned to this tier.
	Tenants int
	// Cycles closed (published, vetoed, or failed) and Publishes pushed.
	Cycles    int
	Publishes int
	// Staleness has one sample per publish: how far past the cycle's due
	// time the fresh data became servable (virtual time).
	Staleness []time.Duration
	// MaxDispatchWait is the longest any job in this tier sat ready
	// before dispatch (virtual time) — the starvation bound's witness.
	MaxDispatchWait time.Duration
}

// StalenessP99 returns the tier's 99th-percentile publish staleness (0
// with no samples).
func (tr *TierReport) StalenessP99() time.Duration {
	return percentile(tr.Staleness, 0.99)
}

// StalenessMax returns the tier's worst publish staleness.
func (tr *TierReport) StalenessMax() time.Duration {
	var m time.Duration
	for _, d := range tr.Staleness {
		if d > m {
			m = d
		}
	}
	return m
}

// StalenessMean returns the tier's mean publish staleness.
func (tr *TierReport) StalenessMean() time.Duration {
	if len(tr.Staleness) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range tr.Staleness {
		sum += d
	}
	return sum / time.Duration(len(tr.Staleness))
}

func percentile(samples []time.Duration, p float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(float64(len(sorted))*p+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Report is what one scheduler run did.
type Report struct {
	// VirtualElapsed is the virtual clock at the end of the run.
	VirtualElapsed time.Duration
	// JobsRun executed for real; JobsReplayed were short-circuited from
	// the queue log on resume; JobsFailed closed their cycle with an
	// error (both fresh and replayed failures).
	JobsRun      int
	JobsReplayed int
	JobsFailed   int
	// CyclesAdmitted / CyclesClosed count cycle lifecycles this run saw
	// (including replayed ones).
	CyclesAdmitted int
	CyclesClosed   int
	// Publishes pushed a fresh generation; Vetoed cycles no-opped their
	// publish; Canaried published behind a canary slice.
	Publishes int
	Vetoed    int
	Canaried  int
	// Resumed is true when the run continued a non-empty queue log;
	// RecordsReplayed is that log's record count.
	Resumed         bool
	RecordsReplayed int
	// MaxGen is the highest publish generation after the run.
	MaxGen int64
	// Cycles counts closed cycles per tenant.
	Cycles map[catalog.RetailerID]int
	// Tiers breaks outcomes down per freshness tier.
	Tiers map[Tier]*TierReport
}

// Freshness condenses the report into the /statz "freshness" block.
func (r *Report) Freshness() serving.FreshnessInfo {
	info := serving.FreshnessInfo{
		Path:         "sched",
		VirtualHours: r.VirtualElapsed.Hours(),
		Tiers:        map[string]serving.TierFreshness{},
	}
	for tier, tr := range r.Tiers {
		info.Tiers[string(tier)] = serving.TierFreshness{
			Tenants:                tr.Tenants,
			Publishes:              tr.Publishes,
			MeanStalenessSeconds:   tr.StalenessMean().Seconds(),
			P99StalenessSeconds:    tr.StalenessP99().Seconds(),
			MaxStalenessSeconds:    tr.StalenessMax().Seconds(),
			MaxDispatchWaitSeconds: tr.MaxDispatchWait.Seconds(),
		}
	}
	return info
}

// freshnessSink is the optional publisher capability for the /statz
// "freshness" block (both serving.Server and store.Store implement it).
type freshnessSink interface {
	SetFreshnessInfo(serving.FreshnessInfo)
}

// Scheduler is the continuous fleet scheduler. Construct with New; Run it
// to completion, or Start/Close it as a supervised background component.
type Scheduler struct {
	pipe *pipeline.Pipeline
	opts Options
	est  *estimate.Estimator
	exec Executor

	mu      sync.Mutex
	running bool
	cancel  context.CancelFunc
	done    chan struct{}
	report  Report
	err     error
}

// New builds a scheduler over the pipeline's per-tenant stage API. pipe
// may be nil only when opts supplies Executor, FS, and Tenants (tests).
func New(pipe *pipeline.Pipeline, opts Options) *Scheduler {
	opts = opts.Defaulted()
	if opts.Obs == nil && pipe != nil {
		opts.Obs = pipe.Observer()
	}
	est := opts.Estimator
	if est == nil {
		est = estimate.New(estimate.Options{})
	}
	s := &Scheduler{pipe: pipe, opts: opts, est: est}
	if opts.Executor != nil {
		s.exec = opts.Executor
	} else {
		s.exec = newPipelineExecutor(pipe)
	}
	return s
}

// Estimator returns the scheduler's runtime estimator (for seeding from a
// legacy DayReport before the first continuous run).
func (s *Scheduler) Estimator() *estimate.Estimator { return s.est }

// tierOf returns a tenant's tier.
func (s *Scheduler) tierOf(r catalog.RetailerID) Tier {
	if t, ok := s.opts.Tiers[r]; ok && ValidTier(string(t)) {
		return t
	}
	return s.opts.DefaultTier
}

// period returns a tier's cycle period.
func (s *Scheduler) period(t Tier) time.Duration {
	switch t {
	case TierHourly:
		return s.opts.HourlyEvery
	case TierBestEffort:
		return s.opts.BestEffortEvery
	default:
		return s.opts.DailyEvery
	}
}

// costOf predicts a job's virtual duration.
func (s *Scheduler) costOf(j *Job) time.Duration {
	if s.opts.VirtualCost != nil {
		return s.opts.VirtualCost(j)
	}
	d, _ := s.est.Predict(j.Tenant, string(j.Kind))
	return d
}

// remaining is the predicted virtual cost of a job plus its successors
// through publish — the "work left in this cycle" term of the slack
// priority.
func (s *Scheduler) remaining(j *Job) time.Duration {
	var sum time.Duration
	for i := kindIndex(j.Kind); i < len(kindChain); i++ {
		sum += s.costOf(&Job{Tenant: j.Tenant, Cycle: j.Cycle, Kind: kindChain[i], Tier: j.Tier})
	}
	return sum
}

// jobLess orders two queued jobs for dispatch at virtual time t. Two
// levels: jobs starving past MaxQueueAge form a FIFO class ahead of
// everything (the aging bound); everyone else ranks by deadline slack —
// virtual time to the cycle's deadline (due + one period) minus predicted
// remaining work — then tier urgency. Final tie-breaks are total and
// deterministic.
func (s *Scheduler) jobLess(a, b *Job, t time.Duration) bool {
	as := t-a.Ready > s.opts.MaxQueueAge
	bs := t-b.Ready > s.opts.MaxQueueAge
	if as != bs {
		return as
	}
	if as {
		if a.Ready != b.Ready {
			return a.Ready < b.Ready
		}
	} else {
		sa := a.Due + s.period(a.Tier) - t - s.remaining(a)
		sb := b.Due + s.period(b.Tier) - t - s.remaining(b)
		if sa != sb {
			return sa < sb
		}
		if ra, rb := a.Tier.rank(), b.Tier.rank(); ra != rb {
			return ra < rb
		}
	}
	if a.Tenant != b.Tenant {
		return a.Tenant < b.Tenant
	}
	if a.Cycle != b.Cycle {
		return a.Cycle < b.Cycle
	}
	return kindIndex(a.Kind) < kindIndex(b.Kind)
}

// Run drives the scheduler to completion: open (or resume) the queue log,
// then loop the discrete-event dispatch until every admissible cycle has
// closed. Crash-safe: on any CrashError the log retains everything
// committed, and calling Run again replays it.
func (s *Scheduler) Run(ctx context.Context) (Report, error) {
	return s.run(ctx)
}

// Start runs the scheduler on a background goroutine (the supervised
// service path). Close cancels and joins it.
func (s *Scheduler) Start(ctx context.Context) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running {
		return
	}
	ctx, cancel := context.WithCancel(ctx)
	done := make(chan struct{})
	s.cancel, s.done, s.running = cancel, done, true
	go func() {
		rep, err := s.run(ctx)
		s.mu.Lock()
		s.report, s.err = rep, err
		s.running = false
		s.mu.Unlock()
		close(done)
	}()
}

// Close stops a Started scheduler and joins its goroutine, returning the
// (possibly partial) report. Context cancellation is a clean stop, not an
// error. Close on a never-Started scheduler is a no-op.
func (s *Scheduler) Close() (Report, error) {
	s.mu.Lock()
	cancel, done := s.cancel, s.done
	s.mu.Unlock()
	if cancel == nil {
		return Report{}, nil
	}
	cancel()
	<-done
	s.mu.Lock()
	defer s.mu.Unlock()
	rep, err := s.report, s.err
	if errors.Is(err, context.Canceled) {
		err = nil
	}
	return rep, err
}

// tenantState is the live (non-durable) scheduling state of one tenant;
// resume rebuilds it by re-walking the log.
type tenantState struct {
	id        catalog.RetailerID
	tier      Tier
	period    time.Duration
	nextCycle int
	open      bool
}

func (ts *tenantState) due(cycle int) time.Duration {
	return time.Duration(cycle) * ts.period
}

func (s *Scheduler) run(ctx context.Context) (Report, error) {
	fs := s.opts.FS
	if fs == nil && s.pipe != nil {
		fs = s.pipe.FS()
	}
	q, err := openQueueLog(fs, s.opts.QueuePath)
	if err != nil {
		return Report{}, err
	}

	rep := Report{
		Resumed:         q.resumed,
		RecordsReplayed: q.records,
		Cycles:          map[catalog.RetailerID]int{},
		Tiers:           map[Tier]*TierReport{},
	}
	tierRep := func(t Tier) *TierReport {
		tr := rep.Tiers[t]
		if tr == nil {
			tr = &TierReport{}
			rep.Tiers[t] = tr
		}
		return tr
	}

	tenants := s.opts.Tenants
	if tenants == nil && s.pipe != nil {
		tenants = s.pipe.Retailers()
	}
	states := make([]*tenantState, 0, len(tenants))
	for _, r := range tenants {
		tier := s.tierOf(r)
		states = append(states, &tenantState{id: r, tier: tier, period: s.period(tier)})
		tierRep(tier).Tenants++
	}

	var reg *obs.Registry
	if s.opts.Obs != nil {
		reg = s.opts.Obs.Reg()
	}
	var root *obs.Span
	if s.opts.Obs != nil {
		root = s.opts.Obs.Trace().Start("sched",
			obs.L("workers", strconv.Itoa(s.opts.Workers)),
			obs.L("tenants", strconv.Itoa(len(states))))
		defer root.End()
	}
	depthGauge := reg.Gauge("sigmund_sched_queue_depth", "Jobs waiting in the scheduler queue.")
	jobCounter := func(kind JobKind, outcome string) {
		reg.Counter("sigmund_sched_jobs_total", "Scheduler jobs by kind and outcome.",
			obs.L("kind", string(kind)), obs.L("outcome", outcome)).Inc()
	}

	freeAt := make([]time.Duration, s.opts.Workers)
	var pending []*Job
	var simNow time.Duration

	canAdmit := func(ts *tenantState) bool {
		if s.opts.MaxCycles > 0 && ts.nextCycle >= s.opts.MaxCycles {
			return false
		}
		if s.opts.Horizon > 0 && ts.due(ts.nextCycle) >= s.opts.Horizon {
			return false
		}
		return true
	}
	nextDue := func() (time.Duration, bool) {
		var best time.Duration
		found := false
		for _, ts := range states {
			if ts.open || !canAdmit(ts) {
				continue
			}
			if d := ts.due(ts.nextCycle); !found || d < best {
				best, found = d, true
			}
		}
		return best, found
	}
	admit := func(now time.Duration) error {
		for _, ts := range states {
			if ts.open || !canAdmit(ts) {
				continue
			}
			due := ts.due(ts.nextCycle)
			if due > now {
				continue
			}
			cyc := ts.nextCycle
			if !q.hasCycle(ts.id, cyc) {
				rec := &queueRecord{Type: recCycle, Tenant: ts.id, Cycle: cyc, VT: int64(now)}
				if err := q.append(ctx, rec, s.opts.Retry, s.opts.Seed, s.opts.Injector); err != nil {
					return err
				}
			}
			ts.nextCycle = cyc + 1
			ts.open = true
			rep.CyclesAdmitted++
			pending = append(pending, &Job{
				Tenant: ts.id, Cycle: cyc, Kind: KindStage, Tier: ts.tier,
				Due: due, Ready: due,
			})
		}
		return nil
	}
	stateOf := map[catalog.RetailerID]*tenantState{}
	for _, ts := range states {
		stateOf[ts.id] = ts
	}

	finish := func() {
		rep.VirtualElapsed = simNow
		rep.MaxGen = q.maxGen
		if s.pipe != nil {
			if sink, ok := s.pipe.PublisherHandle().(freshnessSink); ok {
				sink.SetFreshnessInfo(rep.Freshness())
			}
		}
	}

	for {
		if err := ctx.Err(); err != nil {
			finish()
			return rep, err
		}
		if err := admit(simNow); err != nil {
			finish()
			return rep, err
		}
		depthGauge.Set(float64(len(pending)))
		if len(pending) == 0 {
			nd, ok := nextDue()
			if !ok {
				break // every admissible cycle has closed
			}
			if nd > simNow {
				simNow = nd
			}
			continue
		}
		// Dispatch on the worker that frees first.
		w := 0
		for i := 1; i < len(freeAt); i++ {
			if freeAt[i] < freeAt[w] {
				w = i
			}
		}
		t := simNow
		if freeAt[w] > t {
			t = freeAt[w]
		}
		// An admission coming due before the dispatch instant joins the
		// queue first (it competes in the priority selection at t).
		if nd, ok := nextDue(); ok && nd <= t {
			simNow = nd
			continue
		}
		// If nothing is ready at t, advance the clock to the next event.
		minReady := pending[0].Ready
		for _, j := range pending[1:] {
			if j.Ready < minReady {
				minReady = j.Ready
			}
		}
		if minReady > t {
			next := minReady
			if nd, ok := nextDue(); ok && nd < next {
				next = nd
			}
			simNow = next
			continue
		}
		simNow = t

		// Priority selection among ready jobs.
		best := -1
		for i, j := range pending {
			if j.Ready > t {
				continue
			}
			if best < 0 || s.jobLess(j, pending[best], t) {
				best = i
			}
		}
		job := pending[best]
		pending = append(pending[:best], pending[best+1:]...)

		wait := t - job.Ready
		if tr := tierRep(job.Tier); wait > tr.MaxDispatchWait {
			tr.MaxDispatchWait = wait
		}
		reg.Histogram("sigmund_sched_dispatch_wait_seconds",
			"Virtual time jobs sat ready before dispatch.",
			obs.StalenessBuckets(), obs.L("tier", string(job.Tier))).Observe(wait.Seconds())

		// Execute — or short-circuit from the log on resume.
		drec := q.done(jobKey{job.Tenant, job.Cycle, job.Kind})
		replayed := drec != nil
		var res JobResult
		var jobErr error
		if replayed {
			res = resultFromRecord(drec)
			if drec.Failed {
				jobErr = errors.New(drec.Err)
			}
			if job.Kind == KindPublish {
				job.Gen = drec.Gen
			}
		} else {
			if job.Kind == KindPublish && guard.Verdict(job.Verdict) != guard.VerdictVeto {
				job.Gen = q.maxGen + 1
			}
			res, jobErr = s.exec.Execute(ctx, job)
			if jobErr != nil && ctx.Err() != nil {
				finish()
				return rep, jobErr
			}
		}
		// The job's virtual span: predicted cost from dispatch. Predict
		// before observing this job's wall so replay and live runs see
		// identical estimator state at this point.
		vcost := s.costOf(job)
		c := t + vcost
		freeAt[w] = c
		if !replayed {
			if err := q.append(ctx, doneRecord(job, res, jobErr, c), s.opts.Retry, s.opts.Seed, s.opts.Injector); err != nil {
				finish()
				return rep, err
			}
			s.exec.Committed(job, res)
			rep.JobsRun++
		} else {
			rep.JobsReplayed++
		}
		if res.Wall > 0 {
			s.est.Observe(job.Tenant, string(job.Kind), time.Duration(float64(res.Wall)*s.opts.TimeScale))
		}
		if root != nil {
			jspan := root.Child("job:"+string(job.Kind),
				obs.L("tenant", string(job.Tenant)),
				obs.L("cycle", strconv.Itoa(job.Cycle)),
				obs.L("tier", string(job.Tier)))
			if replayed {
				jspan.SetAttr("replayed", "true")
			}
			if jobErr != nil {
				jspan.SetAttr("error", jobErr.Error())
			}
			jspan.EndWith(vcost)
		}

		ts := stateOf[job.Tenant]
		if jobErr != nil {
			// A failed job closes its cycle: the tenant keeps serving its
			// previous generation and retries on its next admission.
			rep.JobsFailed++
			rep.CyclesClosed++
			rep.Cycles[ts.id]++
			tierRep(job.Tier).Cycles++
			ts.open = false
			jobCounter(job.Kind, outcomeLabel(replayed, "failed"))
			continue
		}
		jobCounter(job.Kind, outcomeLabel(replayed, "ok"))

		if job.Kind == KindPublish {
			ts.open = false
			rep.CyclesClosed++
			rep.Cycles[ts.id]++
			tr := tierRep(job.Tier)
			tr.Cycles++
			switch guard.Verdict(job.Verdict) {
			case guard.VerdictVeto:
				rep.Vetoed++
			default:
				if guard.Verdict(job.Verdict) == guard.VerdictCanary {
					rep.Canaried++
				}
				rep.Publishes++
				tr.Publishes++
				stale := c - job.Due
				tr.Staleness = append(tr.Staleness, stale)
				reg.Histogram("sigmund_pipeline_staleness_seconds",
					"How far past its due time a tenant's fresh data became servable.",
					obs.StalenessBuckets(),
					obs.L("path", "sched"), obs.L("tier", string(job.Tier))).Observe(stale.Seconds())
			}
			continue
		}

		nk, _ := nextKind(job.Kind)
		succ := &Job{
			Tenant: job.Tenant, Cycle: job.Cycle, Kind: nk, Tier: job.Tier,
			Due: job.Due, Ready: c,
			// Carry the cycle's accumulated payload forward.
			FullSweep: job.FullSweep, Configs: job.Configs,
			Best: job.Best, BestMAP: job.BestMAP,
			ItemsServed: job.ItemsServed,
			Verdict:     job.Verdict, Reason: job.Reason, CanaryFraction: job.CanaryFraction,
			Infer: job.Infer,
		}
		switch job.Kind {
		case KindStage:
			succ.FullSweep, succ.Configs = res.FullSweep, res.Configs
		case KindTrain:
			succ.Best, succ.BestMAP = res.Best, res.BestMAP
		case KindInfer:
			succ.Infer, succ.ItemsServed = res.Infer, res.ItemsServed
		case KindGuard:
			succ.Verdict, succ.Reason, succ.CanaryFraction = res.Verdict, res.Reason, res.CanaryFraction
			if res.Infer != nil {
				succ.Infer = res.Infer
			}
		}
		pending = append(pending, succ)
	}

	depthGauge.Set(0)
	finish()
	return rep, nil
}

func outcomeLabel(replayed bool, outcome string) string {
	if replayed {
		return outcome + "-replayed"
	}
	return outcome
}

// doneRecord builds the durable completion record for a job, carrying
// exactly the payload its successor needs on resume.
func doneRecord(job *Job, res JobResult, jobErr error, completion time.Duration) *queueRecord {
	rec := &queueRecord{
		Type: recDone, Tenant: job.Tenant, Cycle: job.Cycle,
		Kind: string(job.Kind), VT: int64(completion), WallNS: int64(res.Wall),
	}
	if jobErr != nil {
		rec.Failed = true
		rec.Err = jobErr.Error()
		return rec
	}
	switch job.Kind {
	case KindStage:
		rec.FullSweep, rec.Configs = res.FullSweep, res.Configs
	case KindTrain:
		b := res.Best
		rec.Best, rec.BestMAP, rec.ConfigsOK = &b, res.BestMAP, res.ConfigsOK
	case KindInfer:
		rec.ItemsServed = res.ItemsServed
	case KindGuard:
		rec.Verdict, rec.Reason, rec.CanaryFraction = res.Verdict, res.Reason, res.CanaryFraction
	case KindPublish:
		rec.Gen, rec.Verdict = job.Gen, job.Verdict
	}
	return rec
}
