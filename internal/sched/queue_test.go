package sched

import (
	"context"
	"encoding/binary"
	"errors"
	"testing"

	"sigmund/internal/dfs"
	"sigmund/internal/faults"
	"sigmund/internal/retry"
)

// appendRec commits one record with the scheduler's default retry policy
// and no fault injection.
func appendRec(t *testing.T, q *queueLog, rec *queueRecord) {
	t.Helper()
	if err := q.append(context.Background(), rec, retry.Policy{}, 1, nil); err != nil {
		t.Fatalf("append %+v: %v", rec, err)
	}
}

func TestQueueLogAppendReopenReplays(t *testing.T) {
	fs := dfs.New()
	q, err := openQueueLog(fs, QueuePath)
	if err != nil {
		t.Fatal(err)
	}
	if q.resumed || q.records != 0 {
		t.Fatalf("fresh log: resumed=%v records=%d", q.resumed, q.records)
	}
	appendRec(t, q, &queueRecord{Type: recCycle, Tenant: "r1", Cycle: 0})
	appendRec(t, q, &queueRecord{Type: recDone, Tenant: "r1", Cycle: 0, Kind: string(KindStage), FullSweep: true, WallNS: 5e6})
	appendRec(t, q, &queueRecord{Type: recDone, Tenant: "r1", Cycle: 0, Kind: string(KindPublish), Gen: 3})

	re, err := openQueueLog(fs, QueuePath)
	if err != nil {
		t.Fatal(err)
	}
	if !re.resumed || re.records != 3 {
		t.Fatalf("reopened: resumed=%v records=%d, want true/3", re.resumed, re.records)
	}
	if !re.hasCycle("r1", 0) || re.hasCycle("r1", 1) {
		t.Fatal("admission index wrong after replay")
	}
	d := re.done(jobKey{"r1", 0, KindStage})
	if d == nil || !d.FullSweep || d.WallNS != 5e6 {
		t.Fatalf("stage done record = %+v", d)
	}
	if re.done(jobKey{"r1", 0, KindTrain}) != nil {
		t.Fatal("uncommitted job reported done")
	}
	if re.maxGen != 3 {
		t.Fatalf("maxGen = %d, want 3", re.maxGen)
	}
}

func TestQueueLogTornTailTruncated(t *testing.T) {
	fs := dfs.New()
	q, err := openQueueLog(fs, QueuePath)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 3; c++ {
		appendRec(t, q, &queueRecord{Type: recCycle, Tenant: "r1", Cycle: c})
	}

	// A crashed writer on a real filesystem can leave a partial final
	// frame: a header that claims more payload bytes than exist.
	data, err := fs.Read(QueuePath)
	if err != nil {
		t.Fatal(err)
	}
	var torn [8]byte
	binary.LittleEndian.PutUint32(torn[0:], 999)
	binary.LittleEndian.PutUint32(torn[4:], 0xdeadbeef)
	corrupted := append(append([]byte{}, data...), torn[:]...)
	corrupted = append(corrupted, 'x', 'y')
	if err := fs.Write(QueuePath, corrupted); err != nil {
		t.Fatal(err)
	}

	re, err := openQueueLog(fs, QueuePath)
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	if re.records != 3 {
		t.Fatalf("records = %d after torn tail, want the 3 clean ones", re.records)
	}
	// Appending rewrites from the last good record: the torn bytes are
	// gone for every later reader.
	appendRec(t, re, &queueRecord{Type: recCycle, Tenant: "r1", Cycle: 3})
	re2, err := openQueueLog(fs, QueuePath)
	if err != nil {
		t.Fatal(err)
	}
	if re2.records != 4 || !re2.hasCycle("r1", 3) {
		t.Fatalf("records = %d hasCycle(3)=%v after repair append", re2.records, re2.hasCycle("r1", 3))
	}
}

func TestQueueLogCorruptTailChecksumDropped(t *testing.T) {
	fs := dfs.New()
	q, err := openQueueLog(fs, QueuePath)
	if err != nil {
		t.Fatal(err)
	}
	appendRec(t, q, &queueRecord{Type: recCycle, Tenant: "r1", Cycle: 0})
	appendRec(t, q, &queueRecord{Type: recDone, Tenant: "r1", Cycle: 0, Kind: string(KindStage)})

	data, err := fs.Read(QueuePath)
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte{}, data...)
	flipped[len(flipped)-1] ^= 0xff // corrupt the last record's payload
	if err := fs.Write(QueuePath, flipped); err != nil {
		t.Fatal(err)
	}

	re, err := openQueueLog(fs, QueuePath)
	if err != nil {
		t.Fatalf("reopen after checksum corruption: %v", err)
	}
	if re.records != 1 {
		t.Fatalf("records = %d, want the 1 before the corrupt suffix", re.records)
	}
	if re.done(jobKey{"r1", 0, KindStage}) != nil {
		t.Fatal("corrupt done record survived replay")
	}
}

func TestQueueLogCrashpointFires(t *testing.T) {
	fs := dfs.New()
	q, err := openQueueLog(fs, QueuePath)
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.NewInjector(1, faults.Rule{
		Ops:          []faults.Op{faults.OpCoordinator},
		Kind:         faults.Error,
		PathContains: "sched/record-",
		After:        1,
		EveryNth:     1,
		Times:        1,
	})
	pol := retry.Policy{}
	if err := q.append(context.Background(), &queueRecord{Type: recCycle, Tenant: "r1", Cycle: 0}, pol, 1, inj); err != nil {
		t.Fatalf("first append: %v", err)
	}
	err = q.append(context.Background(), &queueRecord{Type: recDone, Tenant: "r1", Cycle: 0, Kind: string(KindStage)}, pol, 1, inj)
	if err == nil {
		t.Fatal("crashpoint did not fire")
	}
	if !IsCrash(err) {
		t.Fatalf("err = %v, want an injected crash", err)
	}
	var ce *CrashError
	if !errors.As(err, &ce) || ce.Record != 1 {
		t.Fatalf("crash record = %+v, want record 1", ce)
	}

	// The crash fires after the append commits: both records survive.
	re, err := openQueueLog(fs, QueuePath)
	if err != nil {
		t.Fatal(err)
	}
	if re.records != 2 || re.done(jobKey{"r1", 0, KindStage}) == nil {
		t.Fatalf("records = %d after crash, want both committed", re.records)
	}

	if IsCrash(errors.New("plain")) {
		t.Fatal("plain error classified as crash")
	}
	if IsCrash(&CrashError{Err: errors.New("append exhausted")}) {
		t.Fatal("non-crash CrashError classified as crash")
	}
}
