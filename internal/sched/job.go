// Package sched is the continuous fleet scheduler: it replaces the
// synchronized daily loop with a durable priority queue of typed
// per-tenant jobs (stage → train → infer → guard → publish), dispatched
// deadline- and cost-aware onto a fixed pool of virtual worker slots.
//
// Time is simulated: the scheduler advances a virtual clock through a
// discrete-event loop, so freshness tiers (an hourly tenant refreshing 24x
// as often as a daily one) are exercised in milliseconds of real time
// while the jobs themselves execute real pipeline work. Each job's
// virtual duration comes from the runtime estimator (an EWMA over the
// per-tenant walls the pipeline measures) or from an injected cost
// function in tests.
//
// Every state transition is journaled to a durable, CRC-framed queue log
// (the same dfs.Journal framing the day journal uses) with
// write-then-commit discipline: a job's artifacts are durable in the
// shared filesystem before its completion record commits, so a crashed
// scheduler resumes by replaying the log — committed jobs are skipped,
// in-flight jobs re-execute idempotently, and the publish sequence comes
// out identical to an uninterrupted run.
package sched

import (
	"context"
	"time"

	"sigmund/internal/catalog"
	"sigmund/internal/core/modelselect"
	"sigmund/internal/pipeline"
)

// Tier is a tenant's freshness class: how often its cycle is re-run and
// how its jobs rank against other tenants'.
type Tier string

const (
	// TierHourly tenants re-cycle every virtual hour (big tenants whose
	// catalogs churn fast).
	TierHourly Tier = "hourly"
	// TierDaily tenants re-cycle every virtual day — the legacy RunDay
	// cadence.
	TierDaily Tier = "daily"
	// TierBestEffort tenants re-cycle daily but rank below everyone else;
	// priority aging still bounds their starvation (see
	// Options.MaxQueueAge).
	TierBestEffort Tier = "best-effort"
)

// rank orders tiers for dispatch tie-breaks: urgent tiers first.
func (t Tier) rank() int {
	switch t {
	case TierHourly:
		return 0
	case TierDaily:
		return 1
	default:
		return 2
	}
}

// ValidTier reports whether s names a tier.
func ValidTier(s string) bool {
	switch Tier(s) {
	case TierHourly, TierDaily, TierBestEffort:
		return true
	}
	return false
}

// JobKind is one stage of a tenant's cycle. Kinds form a fixed chain;
// completing one enqueues the next.
type JobKind string

const (
	KindStage   JobKind = "stage"
	KindTrain   JobKind = "train"
	KindInfer   JobKind = "infer"
	KindGuard   JobKind = "guard"
	KindPublish JobKind = "publish"
)

// kindChain is the cycle's stage order.
var kindChain = []JobKind{KindStage, KindTrain, KindInfer, KindGuard, KindPublish}

// nextKind returns the successor stage (ok=false after publish).
func nextKind(k JobKind) (JobKind, bool) {
	for i, kk := range kindChain {
		if kk == k && i+1 < len(kindChain) {
			return kindChain[i+1], true
		}
	}
	return "", false
}

// kindIndex returns a kind's position in the chain (publish = 4).
func kindIndex(k JobKind) int {
	for i, kk := range kindChain {
		if kk == k {
			return i
		}
	}
	return len(kindChain)
}

// Job is one schedulable unit: one stage of one tenant's cycle. Payload
// fields carry the predecessor stage's output forward; after a crash they
// are reconstructed from the queue log and the durable artifacts instead.
type Job struct {
	Tenant catalog.RetailerID
	// Cycle is the tenant's cycle counter (each admission increments it;
	// it takes the role of "day" in every shared-filesystem path).
	Cycle int
	Kind  JobKind
	Tier  Tier

	// Due is the cycle's virtual due time (cycle index x tier period);
	// the dispatch priority is slack against Due + one period.
	Due time.Duration
	// Ready is the virtual time the job became dispatchable (its
	// predecessor's completion).
	Ready time.Duration

	// FullSweep / Configs: staged plan (input to train).
	FullSweep bool
	Configs   []modelselect.ConfigRecord
	// Best / BestMAP: selection outcome (input to infer and guard).
	Best    modelselect.ConfigRecord
	BestMAP float64
	// ItemsServed: materialization size (publish bookkeeping).
	ItemsServed int
	// Verdict / Reason / CanaryFraction: the guard's journaled decision
	// (input to publish).
	Verdict        string
	Reason         string
	CanaryFraction float64
	// Gen is the global publish generation, assigned at dispatch of the
	// publish job.
	Gen int64

	// Infer carries the cycle's materialized recommendations in memory
	// between infer, guard, and publish. nil after a crash — executors
	// reload the durable recs blob instead.
	Infer *pipeline.InferResult
}

// JobResult is what executing a job produced; which fields are meaningful
// depends on the job's kind.
type JobResult struct {
	// stage
	FullSweep bool
	Configs   []modelselect.ConfigRecord
	// train
	Best      modelselect.ConfigRecord
	BestOK    bool
	BestMAP   float64
	ConfigsOK int
	// infer
	Infer       *pipeline.InferResult
	ItemsServed int
	// guard
	Verdict        string
	Reason         string
	CanaryFraction float64
	Guard          pipeline.GuardResult
	// Wall is the job's measured real runtime; it feeds the estimator
	// (scaled into virtual time).
	Wall time.Duration
}

// Executor runs one job's real work. Execute must follow
// write-then-commit discipline: all artifacts durable before returning,
// so the scheduler can journal the completion afterwards. Committed is
// called after the job's completion record is durable — side effects that
// must not precede the journaled verdict (the guard's baseline fold) go
// there. The final verdict passed to Committed may be the journal-replayed
// one rather than the freshly computed one.
type Executor interface {
	Execute(ctx context.Context, job *Job) (JobResult, error)
	Committed(job *Job, res JobResult)
}
