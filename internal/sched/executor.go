package sched

import (
	"context"
	"fmt"
	"time"

	"sigmund/internal/catalog"
	"sigmund/internal/core/inference"
	"sigmund/internal/guard"
	"sigmund/internal/pipeline"
	"sigmund/internal/serving"
)

// pipelineExecutor bridges scheduler jobs onto the pipeline's per-tenant
// stage API. Each Execute follows write-then-commit: the stage's durable
// artifacts (staged data, trained records, recs blob) are committed to
// the shared filesystem before it returns, so the scheduler's completion
// record never points at work that isn't there.
type pipelineExecutor struct {
	p   *pipeline.Pipeline
	pub pipeline.Publisher
}

func newPipelineExecutor(p *pipeline.Pipeline) *pipelineExecutor {
	e := &pipelineExecutor{p: p}
	if p != nil {
		e.pub = p.PublisherHandle()
	}
	return e
}

func (e *pipelineExecutor) Execute(ctx context.Context, job *Job) (res JobResult, err error) {
	start := time.Now()
	defer func() { res.Wall = time.Since(start) }()

	switch job.Kind {
	case KindStage:
		sr, serr := e.p.StageTenant(ctx, job.Cycle, job.Tenant)
		if serr != nil {
			return res, serr
		}
		res.FullSweep, res.Configs = sr.FullSweep, sr.Configs

	case KindTrain:
		tr, terr := e.p.TrainTenant(ctx, job.Cycle, job.Tenant, job.Configs)
		if e.pub != nil {
			e.pub.AddJobCounters(tr.Counters)
		}
		if terr != nil {
			return res, terr
		}
		if !tr.BestOK {
			if tr.FirstErr != "" {
				return res, fmt.Errorf("sched: no model trained for %s: %s", job.Tenant, tr.FirstErr)
			}
			return res, fmt.Errorf("sched: no model trained for %s", job.Tenant)
		}
		res.Best, res.BestOK = tr.Best, true
		res.BestMAP = tr.Best.Metrics.MAP
		res.ConfigsOK = tr.ConfigsOK

	case KindInfer:
		ir, ierr := e.p.InferTenant(ctx, job.Cycle, job.Tenant, job.Best)
		if e.pub != nil {
			e.pub.AddJobCounters(ir.Counters)
		}
		if ierr != nil {
			return res, ierr
		}
		res.Infer = &ir
		res.ItemsServed = len(ir.Items)

	case KindGuard:
		if !e.p.GuardEnabled() {
			res.Verdict = string(guard.VerdictPass)
			return res, nil
		}
		inf, lerr := e.recs(job)
		if lerr != nil {
			return res, fmt.Errorf("sched: reloading recs for guard: %w", lerr)
		}
		gr, gerr := e.p.EvaluateGuardTenant(job.Cycle, job.Tenant, job.BestMAP, retailerRecs(inf))
		if gerr != nil {
			return res, gerr
		}
		res.Guard = gr
		res.Verdict = string(gr.Report.Verdict)
		res.Reason = gr.Report.Reason
		if gr.Report.Verdict == guard.VerdictCanary {
			res.CanaryFraction = gr.CanaryFraction
		}
		res.Infer = inf

	case KindPublish:
		res.Verdict = job.Verdict
		if guard.Verdict(job.Verdict) == guard.VerdictVeto || e.pub == nil {
			// Vetoed cycle: nothing to push — the rolling previous
			// generation keeps serving (the store's equivalent of the
			// daily path's carry-forward).
			return res, nil
		}
		inf, lerr := e.recs(job)
		if lerr != nil {
			return res, fmt.Errorf("sched: reloading recs for publish: %w", lerr)
		}
		snap := serving.BuildSnapshot(job.Gen,
			map[catalog.RetailerID][]inference.ItemRecs{job.Tenant: inf.Items},
			map[catalog.RetailerID][]catalog.ItemID{job.Tenant: inf.Sellers})
		snap.Rolling = true
		if guard.Verdict(job.Verdict) == guard.VerdictCanary {
			st := snap.Status[job.Tenant]
			st.Canary = true
			st.CanaryFraction = job.CanaryFraction
		}
		e.pub.Publish(snap)
		res.ItemsServed = len(inf.Items)
	}
	return res, nil
}

// Committed applies post-journal side effects: the guard's baseline fold
// happens only after the verdict is durable, mirroring the daily path's
// journal-before-apply discipline.
func (e *pipelineExecutor) Committed(job *Job, res JobResult) {
	if job.Kind == KindGuard && e.p.GuardEnabled() {
		e.p.FoldGuardBaseline(job.Cycle, job.Tenant, res.Verdict, res.Guard)
	}
}

// recs returns the job's in-memory materialization, falling back to the
// durable recs blob (the resume path: the infer stage committed before a
// crash wiped the in-memory handoff).
func (e *pipelineExecutor) recs(job *Job) (*pipeline.InferResult, error) {
	if job.Infer != nil {
		return job.Infer, nil
	}
	loaded, err := e.p.LoadTenantRecs(job.Cycle, job.Tenant)
	if err != nil {
		return nil, err
	}
	return &loaded, nil
}

// retailerRecs adapts a tenant's materialization to the guard's serving
// view (the same shape BuildSnapshot produces).
func retailerRecs(inf *pipeline.InferResult) *serving.RetailerRecs {
	rr := &serving.RetailerRecs{
		Recs:       make(map[catalog.ItemID]inference.ItemRecs, len(inf.Items)),
		TopSellers: inf.Sellers,
	}
	for _, ir := range inf.Items {
		rr.Recs[ir.Item] = ir
	}
	return rr
}
