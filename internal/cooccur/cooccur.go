// Package cooccur implements the item-item co-occurrence recommender from
// Section III-E of the paper: PMI-scored co-view and co-buy associations,
// the simple/scalable family of methods behind Amazon's and YouTube's
// classic recommenders.
//
// Sigmund uses co-occurrence two ways: as the production recommender for
// popular (head) items — where it is hard to beat — and as the source of
// co-view/co-buy sets for factorization candidate selection and negative
// sampling. Unlike the factorization model it updates instantly as events
// arrive, so the Model supports both bulk construction from a log and
// incremental Observe calls.
package cooccur

import (
	"math"
	"sort"

	"sigmund/internal/catalog"
	"sigmund/internal/interactions"
)

// Kind selects which association class a query refers to.
type Kind uint8

const (
	// CoView associates items viewed/searched near each other in one
	// user's history — substitute-flavoured associations.
	CoView Kind = iota
	// CoBuy associates items cart-added/purchased by the same user —
	// complement-flavoured associations.
	CoBuy
)

// Neighbor is an associated item with its co-occurrence support and PMI
// score.
type Neighbor struct {
	Item  catalog.ItemID
	Count int
	PMI   float64
}

// Model holds co-occurrence counts for one retailer.
type Model struct {
	numItems int
	window   int

	// adjacency[kind][i] maps neighbor -> pair count. Symmetric.
	adj [2]map[catalog.ItemID]map[catalog.ItemID]int
	// itemCount[kind][i] counts events of the kind's classes on item i.
	itemCount [2][]int
	// totalPairs[kind] is the number of (unordered) pair observations.
	totalPairs [2]int
	// totalEvents[kind] is the sum of itemCount[kind], kept incrementally so
	// marginal probabilities are O(1).
	totalEvents [2]int

	// hist[u] is the user's recent items per kind, for windowed pairing.
	hist map[interactions.UserID]*userHist
}

type userHist struct {
	items [2][]catalog.ItemID // ring of most recent items per kind
}

// DefaultWindow is how many recent same-kind items a new event is paired
// with. Small windows keep associations tight (same shopping mission).
const DefaultWindow = 5

// NewModel returns an empty model for a catalog of numItems items.
func NewModel(numItems, window int) *Model {
	if window <= 0 {
		window = DefaultWindow
	}
	m := &Model{
		numItems: numItems,
		window:   window,
		hist:     make(map[interactions.UserID]*userHist),
	}
	for k := range m.adj {
		m.adj[k] = make(map[catalog.ItemID]map[catalog.ItemID]int)
		m.itemCount[k] = make([]int, numItems)
	}
	return m
}

// FromLog builds a model from a complete log (events are replayed in time
// order).
func FromLog(l *interactions.Log, numItems, window int) *Model {
	m := NewModel(numItems, window)
	for _, e := range l.Events() {
		m.Observe(e)
	}
	return m
}

func kindOf(t interactions.EventType) Kind {
	if t >= interactions.Cart {
		return CoBuy
	}
	return CoView
}

// Observe incorporates one event, pairing the item with the user's recent
// items of the same kind. Cart/conversion events also count as views for
// co-view purposes (a purchased item was certainly examined).
func (m *Model) Observe(e interactions.Event) {
	if int(e.Item) < 0 || int(e.Item) >= m.numItems {
		return
	}
	m.observeKind(e.User, e.Item, kindOf(e.Type))
	if kindOf(e.Type) == CoBuy {
		m.observeKind(e.User, e.Item, CoView)
	}
}

func (m *Model) observeKind(u interactions.UserID, item catalog.ItemID, k Kind) {
	h := m.hist[u]
	if h == nil {
		h = &userHist{}
		m.hist[u] = h
	}
	m.itemCount[k][item]++
	m.totalEvents[k]++
	for _, prev := range h.items[k] {
		if prev == item {
			continue
		}
		m.addPair(k, item, prev)
	}
	h.items[k] = append(h.items[k], item)
	if len(h.items[k]) > m.window {
		h.items[k] = h.items[k][len(h.items[k])-m.window:]
	}
}

func (m *Model) addPair(k Kind, a, b catalog.ItemID) {
	for _, pair := range [2][2]catalog.ItemID{{a, b}, {b, a}} {
		row := m.adj[k][pair[0]]
		if row == nil {
			row = make(map[catalog.ItemID]int)
			m.adj[k][pair[0]] = row
		}
		row[pair[1]]++
	}
	m.totalPairs[k]++
}

// Count returns the number of times items a and b co-occurred under kind k.
func (m *Model) Count(k Kind, a, b catalog.ItemID) int {
	return m.adj[k][a][b]
}

// ItemCount returns how many kind-k events item i has received.
func (m *Model) ItemCount(k Kind, i catalog.ItemID) int {
	return m.itemCount[k][i]
}

// PMI returns the (smoothed) pointwise mutual information between a and b
// under kind k:
//
//	log( P(a,b) / (P(a) P(b)) )
//
// with add-one smoothing on the pair count so unseen pairs score very low
// rather than -Inf. Returns 0 when marginals are missing.
func (m *Model) PMI(k Kind, a, b catalog.ItemID) float64 {
	ca, cb := m.itemCount[k][a], m.itemCount[k][b]
	if ca == 0 || cb == 0 || m.totalPairs[k] == 0 {
		return 0
	}
	pair := float64(m.adj[k][a][b]) + 1e-3
	n := float64(m.totalPairs[k])
	total := float64(m.totalEvents[k])
	pa := float64(ca) / total
	pb := float64(cb) / total
	return math.Log(pair / n / (pa * pb))
}

// Neighbors returns items co-occurring with i under kind k, holding at
// least minSupport joint observations, sorted by descending PMI. A
// minSupport of >= 2 suppresses flukes; the hybrid recommender uses higher
// thresholds for head items where data is plentiful.
func (m *Model) Neighbors(k Kind, i catalog.ItemID, minSupport int) []Neighbor {
	row := m.adj[k][i]
	if len(row) == 0 {
		return nil
	}
	total := float64(m.totalEvents[k])
	n := float64(m.totalPairs[k])
	pi := float64(m.itemCount[k][i]) / total
	out := make([]Neighbor, 0, len(row))
	for j, c := range row {
		if c < minSupport {
			continue
		}
		pj := float64(m.itemCount[k][j]) / total
		pmi := math.Log((float64(c) + 1e-3) / n / (pi * pj))
		out = append(out, Neighbor{Item: j, Count: c, PMI: pmi})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].PMI != out[b].PMI {
			return out[a].PMI > out[b].PMI
		}
		return out[a].Item < out[b].Item
	})
	return out
}

// TopK returns the k best neighbors of i under kind kd (by PMI, with
// minSupport filtering).
func (m *Model) TopK(kd Kind, i catalog.ItemID, k, minSupport int) []Neighbor {
	ns := m.Neighbors(kd, i, minSupport)
	if len(ns) > k {
		ns = ns[:k]
	}
	return ns
}

// TopKByCount returns the k neighbors of i with the highest raw pair
// counts — the classic "customers who viewed X also viewed Y" frequency
// ranking. Count ranking favours popular partners and cannot distinguish
// among the ubiquitous count-1 pairs of the long tail, which is exactly the
// behaviour of the simple co-occurrence baselines the paper compares
// against.
func (m *Model) TopKByCount(kd Kind, i catalog.ItemID, k, minSupport int) []Neighbor {
	ns := m.Neighbors(kd, i, minSupport)
	sort.SliceStable(ns, func(a, b int) bool {
		if ns[a].Count != ns[b].Count {
			return ns[a].Count > ns[b].Count
		}
		return ns[a].Item < ns[b].Item
	})
	if len(ns) > k {
		ns = ns[:k]
	}
	return ns
}

// CoViewed returns the ids of items co-viewed with i (the paper's cv(i)),
// with at least minSupport joint observations.
func (m *Model) CoViewed(i catalog.ItemID, minSupport int) []catalog.ItemID {
	return m.ids(CoView, i, minSupport)
}

// CoBought returns the ids of items co-bought with i (the paper's cb(i)).
func (m *Model) CoBought(i catalog.ItemID, minSupport int) []catalog.ItemID {
	return m.ids(CoBuy, i, minSupport)
}

func (m *Model) ids(k Kind, i catalog.ItemID, minSupport int) []catalog.ItemID {
	row := m.adj[k][i]
	out := make([]catalog.ItemID, 0, len(row))
	for j, c := range row {
		if c >= minSupport {
			out = append(out, j)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// HighlyAssociated reports whether a and b are strongly co-viewed or
// co-bought. Negative sampling uses this to exclude items that merely look
// like negatives but are actually related (Section III-B3).
func (m *Model) HighlyAssociated(a, b catalog.ItemID, minSupport int) bool {
	return m.adj[CoView][a][b] >= minSupport || m.adj[CoBuy][a][b] >= minSupport
}

// NumItems returns the catalog size this model was built for.
func (m *Model) NumItems() int { return m.numItems }
