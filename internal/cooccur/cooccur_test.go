package cooccur

import (
	"testing"

	"sigmund/internal/catalog"
	"sigmund/internal/interactions"
	"sigmund/internal/synth"
)

func view(u interactions.UserID, i catalog.ItemID, t int64) interactions.Event {
	return interactions.Event{User: u, Item: i, Type: interactions.View, Time: t}
}

func buy(u interactions.UserID, i catalog.ItemID, t int64) interactions.Event {
	return interactions.Event{User: u, Item: i, Type: interactions.Conversion, Time: t}
}

func TestObservePairsWithinWindow(t *testing.T) {
	m := NewModel(10, 3)
	// User views 0,1,2,3 in order with window 3: pairs (0,1),(0,2),(1,2),(1,3),(2,3),(0,3).
	for i, it := range []catalog.ItemID{0, 1, 2, 3} {
		m.Observe(view(1, it, int64(i)))
	}
	if got := m.Count(CoView, 0, 1); got != 1 {
		t.Errorf("Count(0,1) = %d, want 1", got)
	}
	if got := m.Count(CoView, 0, 3); got != 1 {
		t.Errorf("Count(0,3) = %d, want 1 (0 still within window of 3)", got)
	}
	// Symmetry.
	if m.Count(CoView, 3, 0) != m.Count(CoView, 0, 3) {
		t.Error("pair counts not symmetric")
	}
	// Add item 4: window now holds {1(evicted? no: 1,2,3)} — after inserting
	// 4, pairs with 1,2,3 but not 0.
	m.Observe(view(1, 4, 5))
	if got := m.Count(CoView, 0, 4); got != 0 {
		t.Errorf("Count(0,4) = %d, want 0 (0 evicted from window)", got)
	}
	if got := m.Count(CoView, 1, 4); got != 1 {
		t.Errorf("Count(1,4) = %d, want 1", got)
	}
}

func TestWindowAcrossUsers(t *testing.T) {
	m := NewModel(10, 5)
	m.Observe(view(1, 0, 0))
	m.Observe(view(2, 1, 1)) // different user — must not pair with item 0
	if got := m.Count(CoView, 0, 1); got != 0 {
		t.Fatalf("cross-user pairing: Count = %d, want 0", got)
	}
}

func TestRepeatedItemDoesNotSelfPair(t *testing.T) {
	m := NewModel(10, 5)
	m.Observe(view(1, 3, 0))
	m.Observe(view(1, 3, 1))
	if got := m.Count(CoView, 3, 3); got != 0 {
		t.Fatalf("self pair count = %d, want 0", got)
	}
}

func TestCoBuyVsCoView(t *testing.T) {
	m := NewModel(10, 5)
	m.Observe(view(1, 0, 0))
	m.Observe(buy(1, 1, 1))
	m.Observe(buy(1, 2, 2))
	// Purchases pair under CoBuy.
	if got := m.Count(CoBuy, 1, 2); got != 1 {
		t.Errorf("CoBuy(1,2) = %d, want 1", got)
	}
	// The viewed item 0 never pairs under CoBuy.
	if got := m.Count(CoBuy, 0, 1); got != 0 {
		t.Errorf("CoBuy(0,1) = %d, want 0", got)
	}
	// Purchases also register as views, so CoView(0,1) exists.
	if got := m.Count(CoView, 0, 1); got != 1 {
		t.Errorf("CoView(0,1) = %d, want 1 (purchase implies view)", got)
	}
}

func TestPMIFavorsGenuineAssociation(t *testing.T) {
	m := NewModel(20, 2)
	// Items 0,1 always co-occur (10 users). Item 2 is globally popular —
	// co-viewed once with 0 but mostly with unrelated items — so its
	// marginal is large and PMI(0,2) must come out low.
	for u := 0; u < 10; u++ {
		m.Observe(view(interactions.UserID(u), 0, int64(3*u)))
		m.Observe(view(interactions.UserID(u), 1, int64(3*u+1)))
	}
	m.Observe(view(0, 2, 100)) // one fluke (1,2)+(0,2 within window? window=2: pairs with 0? no: user 0 history [0,1] -> pairs (2,0),(2,1))
	for u := 50; u < 80; u++ {
		m.Observe(view(interactions.UserID(u), 2, int64(200+2*u)))
		m.Observe(view(interactions.UserID(u), catalog.ItemID(5+u%10), int64(201+2*u)))
	}
	if m.PMI(CoView, 0, 1) <= m.PMI(CoView, 0, 2) {
		t.Fatalf("PMI(0,1)=%v should exceed PMI(0,2)=%v: 2 is popular noise",
			m.PMI(CoView, 0, 1), m.PMI(CoView, 0, 2))
	}
	// Missing marginals -> 0.
	if got := m.PMI(CoView, 0, 19); got != 0 {
		t.Errorf("PMI with unseen item = %v, want 0", got)
	}
}

func TestNeighborsSortedAndFiltered(t *testing.T) {
	m := NewModel(20, 3)
	for u := 0; u < 6; u++ {
		m.Observe(view(interactions.UserID(u), 0, int64(10*u)))
		m.Observe(view(interactions.UserID(u), 1, int64(10*u+1)))
	}
	m.Observe(view(99, 0, 1000))
	m.Observe(view(99, 5, 1001)) // single fluke pair (0,5)
	ns := m.Neighbors(CoView, 0, 2)
	for _, nb := range ns {
		if nb.Item == 5 {
			t.Fatal("minSupport=2 did not filter the fluke pair")
		}
	}
	if len(ns) == 0 || ns[0].Item != 1 {
		t.Fatalf("Neighbors = %+v, want item 1 first", ns)
	}
	// Sorted descending by PMI.
	for i := 1; i < len(ns); i++ {
		if ns[i].PMI > ns[i-1].PMI {
			t.Fatal("Neighbors not sorted by PMI")
		}
	}
	// TopK truncation.
	all := m.Neighbors(CoView, 0, 1)
	if len(all) >= 2 {
		top := m.TopK(CoView, 0, 1, 1)
		if len(top) != 1 || top[0] != all[0] {
			t.Fatalf("TopK(1) = %+v, want first of %+v", top, all)
		}
	}
}

func TestCoViewedCoBoughtIDs(t *testing.T) {
	m := NewModel(10, 5)
	m.Observe(view(1, 0, 0))
	m.Observe(view(1, 2, 1))
	m.Observe(buy(2, 0, 2))
	m.Observe(buy(2, 4, 3))
	cv := m.CoViewed(0, 1)
	if len(cv) != 2 || cv[0] != 2 || cv[1] != 4 {
		// item 4's purchase also registered a view pairing with 0's view? No:
		// different users. But user 2's purchases register views (0,4).
		t.Fatalf("CoViewed(0) = %v", cv)
	}
	cb := m.CoBought(0, 1)
	if len(cb) != 1 || cb[0] != 4 {
		t.Fatalf("CoBought(0) = %v", cb)
	}
	if !m.HighlyAssociated(0, 4, 1) {
		t.Error("HighlyAssociated(0,4) should hold")
	}
	if m.HighlyAssociated(0, 9, 1) {
		t.Error("HighlyAssociated(0,9) should not hold")
	}
}

func TestObserveIgnoresOutOfRange(t *testing.T) {
	m := NewModel(5, 3)
	m.Observe(view(1, 99, 0)) // silently ignored
	m.Observe(view(1, -1, 1))
	if m.ItemCount(CoView, 0) != 0 {
		t.Fatal("out-of-range events mutated state")
	}
}

func TestFromLogEquivalentToObserve(t *testing.T) {
	r := synth.GenerateRetailer(synth.RetailerSpec{NumItems: 100, NumUsers: 60, EventsPerUserMean: 10, Seed: 21})
	a := FromLog(r.Log, 100, 5)
	b := NewModel(100, 5)
	for _, e := range r.Log.Events() {
		b.Observe(e)
	}
	for i := 0; i < 100; i++ {
		ii := catalog.ItemID(i)
		if a.ItemCount(CoView, ii) != b.ItemCount(CoView, ii) {
			t.Fatalf("item %d: FromLog and Observe disagree", i)
		}
		na, nb := a.Neighbors(CoView, ii, 1), b.Neighbors(CoView, ii, 1)
		if len(na) != len(nb) {
			t.Fatalf("item %d: neighbor counts differ: %d vs %d", i, len(na), len(nb))
		}
	}
}

func TestIncrementalUpdateChangesRecommendations(t *testing.T) {
	// The paper values co-occurrence models because they update instantly.
	m := NewModel(10, 5)
	for u := 0; u < 5; u++ {
		m.Observe(view(interactions.UserID(u), 0, int64(2*u)))
		m.Observe(view(interactions.UserID(u), 1, int64(2*u+1)))
	}
	before := m.TopK(CoView, 0, 1, 1)
	if len(before) != 1 || before[0].Item != 1 {
		t.Fatalf("setup: TopK = %+v", before)
	}
	// New evidence arrives: (0,2) co-views appear, while item 1 turns out to
	// be globally popular (viewed with many unrelated items), which dilutes
	// PMI(0,1). The model must reflect this instantly, no retraining.
	for u := 10; u < 20; u++ {
		m.Observe(view(interactions.UserID(u), 0, int64(100+2*u)))
		m.Observe(view(interactions.UserID(u), 2, int64(101+2*u)))
	}
	for u := 30; u < 60; u++ {
		m.Observe(view(interactions.UserID(u), 1, int64(300+2*u)))
		m.Observe(view(interactions.UserID(u), catalog.ItemID(3+u%6), int64(301+2*u)))
	}
	after := m.TopK(CoView, 0, 1, 1)
	if len(after) != 1 || after[0].Item != 2 {
		t.Fatalf("after new evidence: TopK = %+v, want item 2", after)
	}
}

func TestTopKByCount(t *testing.T) {
	m := NewModel(20, 3)
	// (0,1) x5, (0,2) x2, (0,3) x1 — count ranking puts 1 first even though
	// PMI might prefer the rarer pairs.
	for u := 0; u < 5; u++ {
		m.Observe(view(interactions.UserID(u), 0, int64(10*u)))
		m.Observe(view(interactions.UserID(u), 1, int64(10*u+1)))
	}
	for u := 10; u < 12; u++ {
		m.Observe(view(interactions.UserID(u), 0, int64(10*u)))
		m.Observe(view(interactions.UserID(u), 2, int64(10*u+1)))
	}
	m.Observe(view(30, 0, 900))
	m.Observe(view(30, 3, 901))

	got := m.TopKByCount(CoView, 0, 2, 1)
	if len(got) != 2 || got[0].Item != 1 || got[0].Count != 5 || got[1].Item != 2 {
		t.Fatalf("TopKByCount = %+v", got)
	}
	// minSupport filters the singleton pair.
	all := m.TopKByCount(CoView, 0, 10, 2)
	for _, n := range all {
		if n.Item == 3 {
			t.Fatal("minSupport not applied")
		}
	}
	if m.NumItems() != 20 {
		t.Fatal("NumItems wrong")
	}
}
