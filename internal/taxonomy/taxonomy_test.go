package taxonomy

import (
	"testing"
	"testing/quick"

	"sigmund/internal/linalg"
)

// buildPhones reproduces Figure 3 of the paper:
//
//	Cell Phones
//	├── Smart Phones
//	│   ├── Android Phones   (Nexus 6P, Nexus 5X live here)
//	│   └── Apple Phones     (iPhone 6 lives here)
//	└── Other
func buildPhones(t *testing.T) (*Taxonomy, map[string]NodeID) {
	t.Helper()
	b := NewBuilder("Cell Phones")
	ids := map[string]NodeID{}
	ids["smart"] = b.AddChild(Root, "Smart Phones")
	ids["other"] = b.AddChild(Root, "Other")
	ids["android"] = b.AddChild(ids["smart"], "Android Phones")
	ids["apple"] = b.AddChild(ids["smart"], "Apple Phones")
	// Items are represented as leaf categories one level below their family,
	// matching the figure where items are leaves of the tree.
	ids["nexus6p"] = b.AddChild(ids["android"], "Nexus 6P")
	ids["nexus5x"] = b.AddChild(ids["android"], "Nexus 5X")
	ids["iphone6"] = b.AddChild(ids["apple"], "iPhone 6")
	ids["otherphone"] = b.AddChild(ids["other"], "Feature Phone")
	return b.Build(), ids
}

func TestFigure3Distances(t *testing.T) {
	tx, ids := buildPhones(t)
	tests := []struct {
		a, b string
		want int
	}{
		{"nexus5x", "nexus6p", 1},
		{"nexus5x", "iphone6", 2},
		{"nexus5x", "otherphone", 3},
		{"nexus5x", "nexus5x", 0},
		{"iphone6", "nexus6p", 2},
	}
	for _, tt := range tests {
		if got := tx.Distance(ids[tt.a], ids[tt.b]); got != tt.want {
			t.Errorf("Distance(%s, %s) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
		// Symmetry.
		if got := tx.Distance(ids[tt.b], ids[tt.a]); got != tt.want {
			t.Errorf("Distance(%s, %s) = %d, want %d (symmetry)", tt.b, tt.a, got, tt.want)
		}
	}
}

func TestLCA(t *testing.T) {
	tx, ids := buildPhones(t)
	if got := tx.LCA(ids["nexus5x"], ids["nexus6p"]); got != ids["android"] {
		t.Errorf("LCA(nexus5x, nexus6p) = %v, want android", got)
	}
	if got := tx.LCA(ids["nexus5x"], ids["iphone6"]); got != ids["smart"] {
		t.Errorf("LCA(nexus5x, iphone6) = %v, want smart", got)
	}
	if got := tx.LCA(ids["nexus5x"], ids["otherphone"]); got != Root {
		t.Errorf("LCA across departments = %v, want root", got)
	}
	if got := tx.LCA(ids["smart"], ids["nexus5x"]); got != ids["smart"] {
		t.Errorf("LCA(ancestor, descendant) = %v, want the ancestor", got)
	}
}

func TestWithinLCAMatchesDistance(t *testing.T) {
	tx, ids := buildPhones(t)
	all := []string{"nexus5x", "nexus6p", "iphone6", "otherphone"}
	for _, a := range all {
		for _, b := range all {
			for k := 0; k <= 4; k++ {
				want := tx.Distance(ids[a], ids[b]) <= k
				if got := tx.WithinLCA(ids[a], ids[b], k); got != want {
					t.Errorf("WithinLCA(%s, %s, %d) = %v, want %v", a, b, k, got, want)
				}
			}
		}
	}
}

func TestAncestorsAndPath(t *testing.T) {
	tx, ids := buildPhones(t)
	anc := tx.Ancestors(ids["nexus5x"])
	if len(anc) != 4 || anc[0] != ids["nexus5x"] || anc[len(anc)-1] != Root {
		t.Fatalf("Ancestors(nexus5x) = %v", anc)
	}
	if got := tx.Path(ids["nexus5x"]); got != "Cell Phones > Smart Phones > Android Phones > Nexus 5X" {
		t.Errorf("Path = %q", got)
	}
	if got := tx.Ancestor(ids["nexus5x"], 2); got != ids["smart"] {
		t.Errorf("Ancestor(nexus5x, 2) = %v, want smart", got)
	}
	// Clamped at root.
	if got := tx.Ancestor(ids["nexus5x"], 99); got != Root {
		t.Errorf("Ancestor overflow = %v, want root", got)
	}
}

func TestIsDescendant(t *testing.T) {
	tx, ids := buildPhones(t)
	if !tx.IsDescendant(ids["nexus5x"], ids["smart"]) {
		t.Error("nexus5x should descend from smart")
	}
	if !tx.IsDescendant(ids["smart"], ids["smart"]) {
		t.Error("node should descend from itself")
	}
	if tx.IsDescendant(ids["smart"], ids["nexus5x"]) {
		t.Error("ancestor is not a descendant")
	}
	if tx.IsDescendant(ids["iphone6"], ids["android"]) {
		t.Error("iphone6 does not descend from android")
	}
}

func TestLeavesAndSubtreeSize(t *testing.T) {
	tx, ids := buildPhones(t)
	leaves := tx.Leaves()
	if len(leaves) != 4 {
		t.Fatalf("got %d leaves, want 4", len(leaves))
	}
	if got := tx.SubtreeSize(ids["smart"]); got != 6 { // smart, android, apple, 3 phones
		t.Errorf("SubtreeSize(smart) = %d, want 6", got)
	}
	if got := tx.SubtreeSize(Root); got != tx.NumNodes() {
		t.Errorf("SubtreeSize(root) = %d, want %d", got, tx.NumNodes())
	}
}

func TestBuilderPanicsOnBadParent(t *testing.T) {
	b := NewBuilder("root")
	defer func() {
		if recover() == nil {
			t.Fatal("AddChild with unknown parent did not panic")
		}
	}()
	b.AddChild(NodeID(99), "orphan")
}

func TestGenerateShape(t *testing.T) {
	rng := linalg.NewRNG(11)
	spec := GenSpec{Depth: 3, MinFanout: 2, MaxFanout: 4, RootName: "R", NamePrefix: "c"}
	tx := Generate(spec, rng)
	if tx.NumNodes() < 1+2+4+8 {
		t.Fatalf("tree too small: %d nodes", tx.NumNodes())
	}
	for _, leaf := range tx.Leaves() {
		if tx.Depth(leaf) != 3 {
			t.Fatalf("leaf %d at depth %d, want 3", leaf, tx.Depth(leaf))
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultGenSpec(), linalg.NewRNG(5))
	b := Generate(DefaultGenSpec(), linalg.NewRNG(5))
	if a.NumNodes() != b.NumNodes() {
		t.Fatalf("same seed produced different trees: %d vs %d nodes", a.NumNodes(), b.NumNodes())
	}
	for i := 0; i < a.NumNodes(); i++ {
		if a.Node(NodeID(i)).Name != b.Node(NodeID(i)).Name {
			t.Fatalf("node %d differs: %q vs %q", i, a.Node(NodeID(i)).Name, b.Node(NodeID(i)).Name)
		}
	}
}

func TestGenerateDegenerateSpec(t *testing.T) {
	tx := Generate(GenSpec{}, linalg.NewRNG(1)) // all defaults clamped
	if tx.NumNodes() < 2 {
		t.Fatalf("degenerate spec produced %d nodes", tx.NumNodes())
	}
}

// Property: on random trees, Distance is a metric restricted to tree
// structure — symmetric, zero iff equal nodes at equal category, and
// WithinLCA is monotone in k.
func TestDistanceProperties(t *testing.T) {
	f := func(seed uint64) bool {
		rng := linalg.NewRNG(seed)
		tx := Generate(GenSpec{Depth: 1 + rng.Intn(4), MinFanout: 1, MaxFanout: 3}, rng)
		n := tx.NumNodes()
		for trial := 0; trial < 20; trial++ {
			a := NodeID(rng.Intn(n))
			b := NodeID(rng.Intn(n))
			d := tx.Distance(a, b)
			if d != tx.Distance(b, a) {
				return false
			}
			if (d == 0) != (tx.LCA(a, b) == a && tx.LCA(a, b) == b) {
				return false
			}
			// Monotone membership in k.
			prev := false
			for k := 0; k <= 6; k++ {
				cur := tx.WithinLCA(a, b, k)
				if prev && !cur {
					return false
				}
				prev = cur
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestParentAndChildren(t *testing.T) {
	tx, ids := buildPhones(t)
	if tx.Parent(ids["android"]) != ids["smart"] {
		t.Fatal("Parent wrong")
	}
	if tx.Parent(Root) != None {
		t.Fatal("root parent should be None")
	}
	kids := tx.Children(ids["smart"])
	if len(kids) != 2 || kids[0] != ids["android"] || kids[1] != ids["apple"] {
		t.Fatalf("Children = %v", kids)
	}
}
