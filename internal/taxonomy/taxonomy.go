// Package taxonomy implements the product-category tree Sigmund uses for
// feature smoothing, negative sampling, and candidate selection.
//
// A taxonomy is a tree of categories ("Cell Phones" > "Smart Phones" >
// "Android Phones"); items attach to (usually leaf) categories. The paper
// measures item similarity with the least-common-ancestor (LCA) distance
// illustrated in its Figure 3: distance(Nexus 5X, Nexus 6P) = 1 because both
// sit under "Android Phones", distance(Nexus 5X, iPhone 6) = 2 via "Smart
// Phones", and so on. lca_k(i) is the set of items within LCA distance k of
// item i; candidate selection unions these sets over co-occurring items.
package taxonomy

import (
	"fmt"
	"strings"
)

// NodeID identifies a category node within one Taxonomy. The root is always
// node 0.
type NodeID int32

// Root is the NodeID of the taxonomy root.
const Root NodeID = 0

// None marks the absence of a node (e.g. the parent of the root).
const None NodeID = -1

// Node is one category in the tree.
type Node struct {
	ID       NodeID
	Name     string
	Parent   NodeID // None for the root
	Depth    int    // 0 for the root
	Children []NodeID
}

// Taxonomy is an immutable-after-Build category tree. Build it with a
// Builder; the zero value is not usable.
type Taxonomy struct {
	nodes []Node
	// subtree[n] records the half-open interval of an Euler-tour (preorder)
	// numbering such that node m is in the subtree of n iff
	// subtree[n].lo <= order[m] < subtree[n].hi. This makes "is descendant"
	// and therefore lca_k membership O(1).
	order   []int32
	subtree []span
}

type span struct{ lo, hi int32 }

// Builder accumulates categories and produces a Taxonomy.
type Builder struct {
	nodes []Node
}

// NewBuilder returns a Builder pre-populated with the root category.
func NewBuilder(rootName string) *Builder {
	return &Builder{nodes: []Node{{ID: Root, Name: rootName, Parent: None, Depth: 0}}}
}

// AddChild creates a category under parent and returns its id. It panics if
// parent does not exist, since taxonomy construction is programmer-driven
// (the synthetic generator or a catalog loader) and a bad parent is a bug.
func (b *Builder) AddChild(parent NodeID, name string) NodeID {
	if int(parent) < 0 || int(parent) >= len(b.nodes) {
		panic(fmt.Sprintf("taxonomy: AddChild with unknown parent %d", parent))
	}
	id := NodeID(len(b.nodes))
	b.nodes = append(b.nodes, Node{
		ID:     id,
		Name:   name,
		Parent: parent,
		Depth:  b.nodes[parent].Depth + 1,
	})
	b.nodes[parent].Children = append(b.nodes[parent].Children, id)
	return id
}

// Build freezes the builder into a Taxonomy. The builder must not be used
// afterwards.
func (b *Builder) Build() *Taxonomy {
	t := &Taxonomy{
		nodes:   b.nodes,
		order:   make([]int32, len(b.nodes)),
		subtree: make([]span, len(b.nodes)),
	}
	// Iterative preorder DFS to compute Euler intervals.
	var counter int32
	type frame struct {
		node  NodeID
		child int
	}
	stack := []frame{{node: Root}}
	t.order[Root] = counter
	t.subtree[Root].lo = counter
	counter++
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		n := &t.nodes[f.node]
		if f.child < len(n.Children) {
			c := n.Children[f.child]
			f.child++
			t.order[c] = counter
			t.subtree[c].lo = counter
			counter++
			stack = append(stack, frame{node: c})
			continue
		}
		t.subtree[f.node].hi = counter
		stack = stack[:len(stack)-1]
	}
	return t
}

// NumNodes returns the number of categories including the root.
func (t *Taxonomy) NumNodes() int { return len(t.nodes) }

// Node returns the category with the given id.
func (t *Taxonomy) Node(id NodeID) Node {
	return t.nodes[id]
}

// Depth returns the depth of node id (root = 0).
func (t *Taxonomy) Depth(id NodeID) int { return t.nodes[id].Depth }

// Parent returns the parent of id, or None for the root.
func (t *Taxonomy) Parent(id NodeID) NodeID { return t.nodes[id].Parent }

// Children returns the direct children of id. The returned slice must not
// be modified.
func (t *Taxonomy) Children(id NodeID) []NodeID { return t.nodes[id].Children }

// IsDescendant reports whether node m lies in the subtree rooted at n
// (a node is a descendant of itself).
func (t *Taxonomy) IsDescendant(m, n NodeID) bool {
	o := t.order[m]
	return o >= t.subtree[n].lo && o < t.subtree[n].hi
}

// Ancestors returns the path from id up to and including the root,
// starting with id itself. The hierarchical additive embedding model
// (Kanagal et al., used in Section III-B4) sums embeddings along this path.
func (t *Taxonomy) Ancestors(id NodeID) []NodeID {
	var path []NodeID
	for n := id; n != None; n = t.nodes[n].Parent {
		path = append(path, n)
	}
	return path
}

// Ancestor returns the ancestor of id exactly k levels up, clamped at the
// root. Ancestor(id, 0) == id.
func (t *Taxonomy) Ancestor(id NodeID, k int) NodeID {
	n := id
	for i := 0; i < k && t.nodes[n].Parent != None; i++ {
		n = t.nodes[n].Parent
	}
	return n
}

// LCA returns the least common ancestor of a and b.
func (t *Taxonomy) LCA(a, b NodeID) NodeID {
	for t.nodes[a].Depth > t.nodes[b].Depth {
		a = t.nodes[a].Parent
	}
	for t.nodes[b].Depth > t.nodes[a].Depth {
		b = t.nodes[b].Parent
	}
	for a != b {
		a = t.nodes[a].Parent
		b = t.nodes[b].Parent
	}
	return a
}

// Distance returns the paper's LCA distance between two category nodes:
// the number of levels you must climb from the deeper node to reach the
// least common ancestor. Items in the same category have distance 0 (their
// categories coincide); siblings under one parent have distance 1.
func (t *Taxonomy) Distance(a, b NodeID) int {
	l := t.LCA(a, b)
	da := t.nodes[a].Depth - t.nodes[l].Depth
	db := t.nodes[b].Depth - t.nodes[l].Depth
	if da > db {
		return da
	}
	return db
}

// WithinLCA reports whether Distance(a, b) <= k without materializing a set:
// b is within LCA distance k of a iff b lies in the subtree of a's k-th
// ancestor AND a lies in the subtree of b's k-th ancestor (the distance is
// symmetric and limited by the deeper side).
func (t *Taxonomy) WithinLCA(a, b NodeID, k int) bool {
	return t.IsDescendant(b, t.Ancestor(a, k)) && t.IsDescendant(a, t.Ancestor(b, k))
}

// Path returns a human-readable "Root > ... > Name" string for debugging
// and example output.
func (t *Taxonomy) Path(id NodeID) string {
	anc := t.Ancestors(id)
	parts := make([]string, len(anc))
	for i, n := range anc {
		parts[len(anc)-1-i] = t.nodes[n].Name
	}
	return strings.Join(parts, " > ")
}

// Leaves returns all nodes with no children, in id order. Synthetic
// catalogs attach items to leaves.
func (t *Taxonomy) Leaves() []NodeID {
	var out []NodeID
	for i := range t.nodes {
		if len(t.nodes[i].Children) == 0 {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// SubtreeSize returns the number of nodes (including id itself) under id.
func (t *Taxonomy) SubtreeSize(id NodeID) int {
	s := t.subtree[id]
	return int(s.hi - s.lo)
}
