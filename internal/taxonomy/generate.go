package taxonomy

import (
	"fmt"

	"sigmund/internal/linalg"
)

// GenSpec describes a synthetic taxonomy. The synthetic workload generator
// uses it to produce category trees that look like real retail taxonomies:
// a few top-level departments, fanning out to leaf categories that hold the
// actual items.
type GenSpec struct {
	Depth      int // levels below the root; e.g. 3 gives dept > family > leaf
	MinFanout  int // minimum children per internal node
	MaxFanout  int // maximum children per internal node (inclusive)
	RootName   string
	NamePrefix string // category names are "<prefix>-<level>-<ordinal>"
}

// DefaultGenSpec returns the tree shape used throughout the tests and
// benchmarks: depth 3 with fanout 2-4, giving on the order of dozens of
// leaf categories.
func DefaultGenSpec() GenSpec {
	return GenSpec{Depth: 3, MinFanout: 2, MaxFanout: 4, RootName: "All Products", NamePrefix: "cat"}
}

// Generate builds a random taxonomy according to spec using rng. The result
// is deterministic for a given (spec, rng state) pair.
func Generate(spec GenSpec, rng *linalg.RNG) *Taxonomy {
	if spec.Depth < 1 {
		spec.Depth = 1
	}
	if spec.MinFanout < 1 {
		spec.MinFanout = 1
	}
	if spec.MaxFanout < spec.MinFanout {
		spec.MaxFanout = spec.MinFanout
	}
	if spec.RootName == "" {
		spec.RootName = "All Products"
	}
	if spec.NamePrefix == "" {
		spec.NamePrefix = "cat"
	}
	b := NewBuilder(spec.RootName)
	frontier := []NodeID{Root}
	ordinal := 0
	for level := 1; level <= spec.Depth; level++ {
		var next []NodeID
		for _, parent := range frontier {
			fan := spec.MinFanout
			if spec.MaxFanout > spec.MinFanout {
				fan += rng.Intn(spec.MaxFanout - spec.MinFanout + 1)
			}
			for c := 0; c < fan; c++ {
				name := fmt.Sprintf("%s-%d-%d", spec.NamePrefix, level, ordinal)
				ordinal++
				next = append(next, b.AddChild(parent, name))
			}
		}
		frontier = next
	}
	return b.Build()
}
