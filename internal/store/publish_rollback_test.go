package store

import (
	"fmt"
	"strings"
	"testing"

	"sigmund/internal/dfs"
	"sigmund/internal/faults"
	"sigmund/internal/serving"
)

// TestPublishRollbackAccounting: a publish that dies mid-commit (segments
// written, manifest write fails past the retry budget) must leave no trace
// — every shard uniformly on generation N−1, the generation's files
// deleted, and /statz plus sigmund_store_publishes_total agreeing on
// exactly one commit and one rollback.
func TestPublishRollbackAccounting(t *testing.T) {
	// The manifest write fails on every retry attempt (the fast test
	// policy makes two), then the rule is spent — so the recovery publish
	// at the end of the test can commit.
	inj := faults.NewInjector(11, faults.Rule{
		Ops: []faults.Op{faults.OpWrite}, PathContains: "store/gen-2/MANIFEST",
		Kind: faults.Error, EveryNth: 1, Times: 2,
	})
	fs := dfs.New()
	fs.SetInjector(inj)
	st := New(fs, Options{Shards: 3, Replicas: 2, CacheSize: -1, Retry: fastRetry})
	defer st.Close()

	retailers := testRetailers(12)
	st.Publish(testSnapshot(1, retailers...))
	if err := st.PublishErr(); err != nil {
		t.Fatalf("publish 1: %v", err)
	}

	st.Publish(testSnapshot(2, retailers...))
	if err := st.PublishErr(); err == nil {
		t.Fatal("publish 2 succeeded despite the injected manifest-write failure")
	}

	// Accounting: one committed generation, one rolled back.
	if committed, rolledBack := st.Publishes(); committed != 1 || rolledBack != 1 {
		t.Fatalf("Publishes = (%d, %d), want (1, 1)", committed, rolledBack)
	}
	if st.Version() != 1 {
		t.Fatalf("Version = %d, want 1", st.Version())
	}
	// Every shard — and every replica — is uniformly on generation 1.
	for s := 0; s < st.NumShards(); s++ {
		if g := st.shards[s].gen.Load(); g != 1 {
			t.Fatalf("shard %d at generation %d, want 1", s, g)
		}
		for i := 0; i < st.NumReplicas(s); i++ {
			if g := st.Replica(s, i).Gen(); g != 1 {
				t.Fatalf("replica %d/%d at generation %d, want 1", s, i, g)
			}
		}
	}
	// The aborted generation's files are gone from the shared filesystem.
	if left := fs.List("store/gen-2/"); len(left) != 0 {
		t.Fatalf("rolled-back generation left files behind: %v", left)
	}
	// Serving still answers from generation 1 for every tenant.
	for _, r := range retailers {
		recs, src, gen, err := st.Serve(r, viewCtx(), 5)
		if err != nil || src != serving.SourceModel || gen != 1 || len(recs) == 0 {
			t.Fatalf("Serve(%s) after rollback: recs=%v src=%v gen=%d err=%v", r, recs, src, gen, err)
		}
	}
	// /statz and the registry agree with the counters.
	s := fmt.Sprintf("%+v", st.StatzBlocks()["store"])
	if !strings.Contains(s, "Publishes:1") || !strings.Contains(s, "Rollbacks:1") {
		t.Fatalf("statz store block inconsistent with counters: %s", s)
	}
	var sb strings.Builder
	st.Observer().Reg().WritePrometheus(&sb)
	text := sb.String()
	if !strings.Contains(text, `sigmund_store_publishes_total{outcome="committed"} 1`) ||
		!strings.Contains(text, `sigmund_store_publishes_total{outcome="rolled_back"} 1`) {
		t.Fatalf("publish metrics inconsistent:\n%s", text)
	}

	// A later publish commits cleanly: the rollback left no poison behind.
	st.Publish(testSnapshot(3, retailers...))
	if err := st.PublishErr(); err != nil {
		t.Fatalf("publish 3 after rollback: %v", err)
	}
	if st.Version() != 3 {
		t.Fatalf("Version = %d after recovery publish, want 3", st.Version())
	}
}
