package store

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"sigmund/internal/dfs"
	"sigmund/internal/serving"
)

// Storage integrity: corruption of a blob the store depends on must be a
// detected, attributed, and self-healed event — never a corrupt
// /recommend response. Detection is two-layer (the dfs integrity footer,
// then the structural decoders for blobs whose footer itself was
// destroyed), and every incident funnels through the same machinery here:
// it is counted in sigmund_integrity_corrupt_total, the path is
// quarantined, and repair is attempted — first by re-reading the
// filesystem (transient read rot), then by re-replicating from a healthy
// peer replica's in-memory copy, and finally by falling back to the
// replica's own previous-generation data so the affected tenants serve
// gen N−1 instead of poison. The background scrubber (scrub.go) closes
// the loop for at-rest rot between publishes.

// integrityReadAttempts bounds re-reads of a blob that failed
// verification before repair escalates past the filesystem.
const integrityReadAttempts = 3

// writeVerifyAttempts bounds write → read-back → rewrite cycles during
// publish and repair.
const writeVerifyAttempts = 3

// isIntegrityErr classifies a read failure as a corruption incident —
// something verification caught — as opposed to an availability failure
// (injected I/O error, replica down) that retry and failover own. A
// referenced blob that does not exist is an integrity event: the manifest
// says it must.
func isIntegrityErr(err error) bool {
	return errors.Is(err, dfs.ErrCorrupt) || errors.Is(err, dfs.ErrNotExist)
}

// noteCorrupt records one detected corruption incident: counter, metric,
// and quarantine (first failure observed wins as the recorded reason).
func (st *Store) noteCorrupt(path string, err error) {
	st.integCorrupt.Add(1)
	st.m.integCorrupt.Inc()
	st.integMu.Lock()
	if _, ok := st.quarantined[path]; !ok {
		st.quarantined[path] = err.Error()
	}
	st.integMu.Unlock()
}

// noteRepaired records one repaired incident and lifts the quarantine.
func (st *Store) noteRepaired(path string) {
	st.integRepaired.Add(1)
	st.m.integRepaired.Inc()
	st.integMu.Lock()
	delete(st.quarantined, path)
	st.integMu.Unlock()
}

// clearQuarantine drops a path from the quarantine set without counting a
// repair (used when the blob is no longer referenced by any manifest).
func (st *Store) clearQuarantine(path string) {
	st.integMu.Lock()
	delete(st.quarantined, path)
	st.integMu.Unlock()
}

// IntegrityCounts reports the subsystem's cumulative counters: blobs the
// scrubber verified, corruption incidents detected, and incidents
// repaired.
func (st *Store) IntegrityCounts() (scrubbed, corrupt, repaired int64) {
	return st.integScrubbed.Load(), st.integCorrupt.Load(), st.integRepaired.Load()
}

// IntegrityFallbacks reports tenants that served their previous
// generation because their fresh segment failed verification and could
// not be repaired in time.
func (st *Store) IntegrityFallbacks() int64 { return st.integFallbacks.Load() }

// QuarantinedBlobs returns the sorted paths currently quarantined:
// detected corrupt (or missing while referenced) and not yet repaired.
func (st *Store) QuarantinedBlobs() []string {
	st.integMu.Lock()
	out := make([]string, 0, len(st.quarantined))
	for p := range st.quarantined {
		out = append(out, p)
	}
	st.integMu.Unlock()
	sort.Strings(out)
	return out
}

// integrityInfo assembles the /statz "integrity" block.
func (st *Store) integrityInfo() serving.IntegrityInfo {
	scrubbed, corrupt, repaired := st.IntegrityCounts()
	return serving.IntegrityInfo{
		Scrubbed:    scrubbed,
		Corrupt:     corrupt,
		Repaired:    repaired,
		Fallbacks:   st.integFallbacks.Load(),
		OrphansGCed: st.orphansGCed.Load(),
		ScrubPasses: st.scrubPasses.Load(),
		Quarantined: st.QuarantinedBlobs(),
	}
}

// fetchVerified reads and structurally decodes one segment blob, retrying
// transient read corruption. The first failed attempt counts one corrupt
// incident and quarantines the path; a later attempt succeeding counts
// the matching repair (the re-read IS the repair). The returned flag
// reports whether the final failure was an integrity incident (corrupt,
// malformed, or missing) — availability errors return false and were not
// counted, so the caller keeps its ordinary failure semantics for them.
func (st *Store) fetchVerified(path string) (*serving.RetailerRecs, bool, error) {
	var lastErr error
	integrity, flagged := false, false
	for attempt := 0; attempt < integrityReadAttempts; attempt++ {
		data, err := st.fs.Read(path)
		if err == nil {
			rr, derr := DecodeSegment(data)
			if derr == nil {
				if flagged {
					st.noteRepaired(path)
				}
				return rr, false, nil
			}
			// Structural decode failure: the bytes are there but not the
			// shape that was written — corruption that destroyed the
			// footer (truncation, a flip in the footer magic) lands here.
			err = derr
			integrity = true
		} else if isIntegrityErr(err) {
			integrity = true
		} else {
			return nil, false, err // availability failure: not ours
		}
		lastErr = err
		if !flagged {
			st.noteCorrupt(path, lastErr)
			flagged = true
		}
		if errors.Is(lastErr, dfs.ErrNotExist) {
			break // re-reading a missing file cannot help; peer repair might
		}
	}
	return nil, integrity, lastErr
}

// writeVerified durably writes a blob and reads it back, rewriting when
// the stored image fails verification or does not match — the
// write-path arm of corruption detection, catching rot injected at
// OpWrite before any replica can load it. Each detected mismatch counts
// one corrupt incident; a later clean read-back counts the repair.
func (st *Store) writeVerified(path string, data []byte) error {
	var lastErr error
	flagged := false
	for attempt := 0; attempt < writeVerifyAttempts; attempt++ {
		if err := st.writeWithRetry(path, data); err != nil {
			return err
		}
		got, err := st.fs.Read(path)
		if err == nil && bytes.Equal(got, data) {
			if flagged {
				st.noteRepaired(path)
			}
			return nil
		}
		if err == nil {
			err = fmt.Errorf("store: read-back of %s returned %d bytes, wrote %d: %w",
				path, len(got), len(data), dfs.ErrCorrupt)
		} else if !isIntegrityErr(err) {
			return err // availability failure: let the publish retry policy own it
		}
		lastErr = err
		if !flagged {
			st.noteCorrupt(path, lastErr)
			flagged = true
		}
	}
	return lastErr
}

// segmentResolver gives a replica's bulk load access to the store-level
// integrity machinery: incident accounting, peer re-replication from the
// owning shard's other replicas, and file healing.
type segmentResolver struct {
	st *Store
	sh *shard
}

// peerBytes asks the shard's other replicas for their in-memory copy of
// the entry's segment at the exact version the manifest references.
// Flat-backed recs re-encode byte-for-byte, so a successful peer fetch
// reproduces the original blob exactly.
func (res *segmentResolver) peerBytes(e ManifestEntry, self *Replica, canary bool) []byte {
	res.sh.mu.RLock()
	reps := append([]*Replica(nil), res.sh.replicas...)
	res.sh.mu.RUnlock()
	for _, rep := range reps {
		if rep == self || rep.Down() {
			continue
		}
		if data := rep.segmentBytes(e, canary); data != nil {
			return data
		}
	}
	return nil
}

// healFile rewrites a quarantined blob from recovered bytes and verifies
// the result; only a clean read-back counts as a repair (a persistent
// read-rot rule keeps the path quarantined, which is the truth).
func (res *segmentResolver) healFile(path string, data []byte) {
	st := res.st
	if err := st.writeWithRetry(path, data); err != nil {
		return
	}
	if got, err := st.fs.Read(path); err == nil && bytes.Equal(got, data) {
		st.noteRepaired(path)
	}
}
