package store

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"sigmund/internal/dfs"
	"sigmund/internal/faults"
)

// slowPrimaryStore builds a 1-shard, 2-replica store where replica 0
// stalls every serve for stall; hedged reads should race past it to
// replica 1.
func slowPrimaryStore(t *testing.T, stall, hedgeAfter time.Duration) *Store {
	t.Helper()
	inj := faults.NewInjector(1, faults.Rule{
		Ops: []faults.Op{faults.OpReplica}, PathContains: "replica-0/serve",
		Kind: faults.Stall, Prob: 1, Delay: stall,
	})
	fs := dfs.New()
	st := New(fs, Options{Shards: 1, Replicas: 2, CacheSize: -1, Faults: inj, HedgeAfter: hedgeAfter})
	st.Publish(testSnapshot(1, "shop-a"))
	if err := st.PublishErr(); err != nil {
		t.Fatalf("publish: %v", err)
	}
	return st
}

// TestHedgedReadBeatsSlowReplica: with the primary stalled far past the
// hedge threshold, requests complete at hedge speed, not stall speed.
func TestHedgedReadBeatsSlowReplica(t *testing.T) {
	st := slowPrimaryStore(t, 300*time.Millisecond, 2*time.Millisecond)
	defer st.Close()
	// Replica selection rotates, so half the reads pick the slow replica
	// first; every one of those must be rescued by its hedge.
	start := time.Now()
	const reads = 10
	for i := 0; i < reads; i++ {
		if _, _, _, err := st.Serve("shop-a", viewCtx(), 5); err != nil {
			t.Fatalf("Serve %d: %v", i, err)
		}
	}
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Fatalf("%d reads took %v — hedging is not racing past the stalled replica", reads, elapsed)
	}
	if st.Hedges() == 0 || st.HedgeWins() == 0 {
		t.Fatalf("hedges=%d wins=%d, want both > 0", st.Hedges(), st.HedgeWins())
	}
}

// TestHedgeLoserIsCancelled: when the hedge wins, the stalled primary's
// request is cancelled through its context rather than left running to
// completion.
func TestHedgeLoserIsCancelled(t *testing.T) {
	st := slowPrimaryStore(t, 5*time.Second, time.Millisecond)
	for i := 0; i < 10; i++ {
		if _, _, _, err := st.Serve("shop-a", viewCtx(), 5); err != nil {
			t.Fatalf("Serve %d: %v", i, err)
		}
	}
	// Close cancels the root context and waits for every in-flight replica
	// goroutine — with 5s stalls, finishing in test time proves the losers
	// were cancelled, not waited for.
	start := time.Now()
	st.Close()
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Close took %v — hedge losers were not cancelled", elapsed)
	}
	if n := st.Replica(0, 0).Cancelled(); n == 0 {
		t.Fatal("slow replica recorded no cancelled requests")
	}
}

// TestCloseDrainsGoroutines: the router leaks no goroutines — after Close,
// everything fanout spawned is gone, even with requests stalled mid-read.
func TestCloseDrainsGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	st := slowPrimaryStore(t, 10*time.Second, time.Millisecond)
	for i := 0; i < 50; i++ {
		if _, _, _, err := st.Serve("shop-a", viewCtx(), 5); err != nil {
			t.Fatalf("Serve %d: %v", i, err)
		}
	}
	st.Close()
	// GC of finished goroutines is asynchronous; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after Close — fanout leaked", before, runtime.NumGoroutine())
}

// TestNoHedgeUnderThreshold: fast replicas never trigger hedges when the
// threshold is far above their latency.
func TestNoHedgeUnderThreshold(t *testing.T) {
	fs := dfs.New()
	st := New(fs, Options{Shards: 1, Replicas: 2, CacheSize: -1, HedgeAfter: time.Second})
	defer st.Close()
	st.Publish(testSnapshot(1, "shop-a"))
	for i := 0; i < 50; i++ {
		if _, _, _, err := st.Serve("shop-a", viewCtx(), 5); err != nil {
			t.Fatalf("Serve %d: %v", i, err)
		}
	}
	if st.Hedges() != 0 {
		t.Fatalf("Hedges = %d with instantaneous replicas and a 1s threshold, want 0", st.Hedges())
	}
}

// TestAdaptiveHedgeThresholdTracksLatency: with no fixed threshold the
// router learns the p95 from observed latencies, floored at HedgeMin.
func TestAdaptiveHedgeThresholdTracksLatency(t *testing.T) {
	lw := newLatencyWindow(0.95, 500*time.Microsecond)
	// Cold start: conservative default, not the floor.
	if th := lw.threshold(); th < 2*time.Millisecond {
		t.Fatalf("cold-start threshold %v, want >= 2ms", th)
	}
	for i := 0; i < 100; i++ {
		lw.record(time.Duration(i%10+1) * time.Millisecond)
	}
	th := lw.threshold()
	if th < 8*time.Millisecond || th > 11*time.Millisecond {
		t.Fatalf("p95 of 1..10ms latencies = %v, want ~10ms", th)
	}
	// A uniformly fast workload clamps to the floor.
	lw2 := newLatencyWindow(0.95, 500*time.Microsecond)
	for i := 0; i < 100; i++ {
		lw2.record(10 * time.Microsecond)
	}
	if th := lw2.threshold(); th != 500*time.Microsecond {
		t.Fatalf("threshold %v for 10µs latencies, want the 500µs floor", th)
	}
}

// TestRoutedThroughputScales is the capacity claim behind the sharded
// store: with per-replica service time and single-request concurrency
// modeling one machine, a 4x2 routed fleet sustains well over twice the
// QPS of a single node at the same per-request latency.
func TestRoutedThroughputScales(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput measurement; skipped in -short")
	}
	retailers := testRetailers(64)
	run := func(shards, replicas int) float64 {
		fs := dfs.New()
		st := New(fs, Options{
			Shards: shards, Replicas: replicas, CacheSize: -1,
			ServeDelay: 2 * time.Millisecond, ReplicaConcurrency: 1,
			HedgeAfter: 250 * time.Millisecond, // out of the way: measuring capacity, not tail rescue
		})
		defer st.Close()
		st.Publish(testSnapshot(1, retailers...))
		if err := st.PublishErr(); err != nil {
			t.Fatalf("publish: %v", err)
		}
		const clients = 32
		const window = 400 * time.Millisecond
		var served atomic.Int64
		var stop atomic.Int64
		done := make(chan struct{})
		for c := 0; c < clients; c++ {
			go func(c int) {
				defer func() { done <- struct{}{} }()
				for i := 0; stop.Load() == 0; i++ {
					if _, _, _, err := st.Serve(retailers[(c*7+i)%len(retailers)], viewCtx(), 5); err == nil {
						served.Add(1)
					}
				}
			}(c)
		}
		time.Sleep(window)
		stop.Add(1)
		for c := 0; c < clients; c++ {
			<-done
		}
		return float64(served.Load()) / window.Seconds()
	}
	single := run(1, 1)
	routed := run(4, 2)
	t.Logf("single-node: %.0f qps, routed 4x2: %.0f qps (%.1fx)", single, routed, routed/single)
	if routed < 2*single {
		t.Fatalf("routed store %.0f qps < 2x single-node %.0f qps", routed, single)
	}
}
