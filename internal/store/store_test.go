package store

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"sigmund/internal/catalog"
	"sigmund/internal/core/hybrid"
	"sigmund/internal/core/inference"
	"sigmund/internal/dfs"
	"sigmund/internal/faults"
	"sigmund/internal/interactions"
	"sigmund/internal/retry"
	"sigmund/internal/serving"
)

// testSnapshot builds a generation with a few items per retailer: item 0's
// view list recommends items 1 and 2, so a "view:0" context answers from
// the model, and an unmatched context falls back to top sellers.
func testSnapshot(gen int64, retailers ...catalog.RetailerID) *serving.Snapshot {
	per := map[catalog.RetailerID][]inference.ItemRecs{}
	pop := map[catalog.RetailerID][]catalog.ItemID{}
	for _, r := range retailers {
		per[r] = []inference.ItemRecs{
			{Item: 0, View: []hybrid.Scored{{Item: 1, Score: 0.9}, {Item: 2, Score: 0.8}},
				Purchase: []hybrid.Scored{{Item: 2, Score: 0.7}}},
			{Item: 1, View: []hybrid.Scored{{Item: 0, Score: 0.6}}},
		}
		pop[r] = []catalog.ItemID{1, 2, 0}
	}
	return serving.BuildSnapshot(gen, per, pop)
}

func viewCtx() interactions.Context {
	return interactions.Context{{Type: interactions.View, Item: 0}}
}

func testRetailers(n int) []catalog.RetailerID {
	out := make([]catalog.RetailerID, n)
	for i := range out {
		out[i] = catalog.RetailerID(fmt.Sprintf("retailer-%03d", i))
	}
	return out
}

// fastRetry keeps rollback tests quick: the write either succeeds or the
// publish gives up within a couple of milliseconds.
var fastRetry = retry.Policy{Attempts: 2, BaseDelay: 100 * time.Microsecond, MaxDelay: time.Millisecond, Multiplier: 1}

func TestPublishAndServe(t *testing.T) {
	fs := dfs.New()
	st := New(fs, Options{Shards: 4, Replicas: 2, CacheSize: -1})
	defer st.Close()
	retailers := testRetailers(20)
	st.Publish(testSnapshot(1, retailers...))
	if err := st.PublishErr(); err != nil {
		t.Fatalf("publish failed: %v", err)
	}
	if got := st.Version(); got != 1 {
		t.Fatalf("Version = %d, want 1", got)
	}
	for _, r := range retailers {
		recs, src, gen, err := st.Serve(r, viewCtx(), 5)
		if err != nil {
			t.Fatalf("Serve(%s): %v", r, err)
		}
		if src != serving.SourceModel {
			t.Fatalf("Serve(%s) source = %v, want model", r, src)
		}
		if gen != 1 {
			t.Fatalf("Serve(%s) answered from generation %d, want 1", r, gen)
		}
		if len(recs) == 0 || recs[0].Item != 1 {
			t.Fatalf("Serve(%s) = %+v, want item 1 first", r, recs)
		}
	}
	// Unmatched context falls back to top sellers, routed like any read.
	if _, src, _, err := st.Serve(retailers[0], nil, 3); err != nil || src != serving.SourceTopSellers {
		t.Fatalf("fallback read: src=%v err=%v, want top-sellers", src, err)
	}
	// Unknown retailers are a miss, not an error: the owning shard answers
	// "no such tenant" exactly like the single-node server.
	recs, src, _, err := st.Serve("never-registered", viewCtx(), 5)
	if err != nil || recs != nil || src != serving.SourceNone {
		t.Fatalf("unknown retailer: recs=%v src=%v err=%v, want nil/none/nil", recs, src, err)
	}
}

func TestServeCacheHits(t *testing.T) {
	fs := dfs.New()
	st := New(fs, Options{Shards: 2, Replicas: 1, CacheSize: 64})
	defer st.Close()
	st.Publish(testSnapshot(1, "shop-a"))
	for i := 0; i < 10; i++ {
		if _, _, _, err := st.Serve("shop-a", viewCtx(), 5); err != nil {
			t.Fatalf("Serve: %v", err)
		}
	}
	if _, hits := st.cache.stats(); hits < 9 {
		t.Fatalf("cache hits = %d after 10 identical reads, want >= 9", hits)
	}
	// A new generation changes the cache key, so the first read after a
	// publish goes to a replica again.
	st.Publish(testSnapshot(2, "shop-a"))
	_, _, gen, err := st.Serve("shop-a", viewCtx(), 5)
	if err != nil || gen != 2 {
		t.Fatalf("post-publish read: gen=%d err=%v, want gen 2", gen, err)
	}
}

func TestStaleCarryForward(t *testing.T) {
	fs := dfs.New()
	st := New(fs, Options{Shards: 2, Replicas: 2, CacheSize: -1})
	defer st.Close()
	st.Publish(testSnapshot(1, "shop-a", "shop-b"))

	// Day 2: shop-a's cycle failed — no fresh recommendations, degraded
	// mark only. Its manifest entry must carry the gen-1 segment forward.
	snap := testSnapshot(2, "shop-b")
	snap.MarkDegraded("shop-a", "train", false)
	st.Publish(snap)
	if err := st.PublishErr(); err != nil {
		t.Fatalf("publish 2 failed: %v", err)
	}
	if st.Version() != 2 {
		t.Fatalf("Version = %d, want 2", st.Version())
	}
	recs, src, _, err := st.Serve("shop-a", viewCtx(), 5)
	if err != nil || src != serving.SourceModel || len(recs) == 0 {
		t.Fatalf("degraded tenant read: recs=%v src=%v err=%v, want stale model recs", recs, src, err)
	}
	if st.StaleServes() == 0 {
		t.Fatal("StaleServes = 0 after serving a degraded tenant")
	}
	sts := st.TenantStatuses()
	if !sts["shop-a"].Degraded || sts["shop-a"].RecsVersion != 1 {
		t.Fatalf("shop-a status = %+v, want degraded at recs version 1", sts["shop-a"])
	}
	if sts["shop-b"].Degraded || sts["shop-b"].RecsVersion != 2 {
		t.Fatalf("shop-b status = %+v, want healthy at recs version 2", sts["shop-b"])
	}
}

// TestPublishRollsBackOnWriteFailure: if the publish phase cannot get the
// generation onto the shared filesystem, nothing of it survives — replicas
// keep serving the previous generation and the partial directory is
// removed.
func TestPublishRollsBackOnWriteFailure(t *testing.T) {
	inj := faults.NewInjector(1, faults.Rule{
		Ops: []faults.Op{faults.OpWrite}, PathContains: "store/gen-2/", Kind: faults.Error, Prob: 1,
	})
	fs := dfs.New()
	fs.SetInjector(inj)
	st := New(fs, Options{Shards: 2, Replicas: 2, CacheSize: -1, Retry: fastRetry})
	defer st.Close()
	st.Publish(testSnapshot(1, "shop-a", "shop-b"))
	if err := st.PublishErr(); err != nil {
		t.Fatalf("publish 1 failed: %v", err)
	}

	st.Publish(testSnapshot(2, "shop-a", "shop-b"))
	if err := st.PublishErr(); err == nil {
		t.Fatal("publish 2 succeeded despite every gen-2 write failing")
	}
	if st.Version() != 1 {
		t.Fatalf("Version = %d after failed publish, want 1", st.Version())
	}
	for _, p := range fs.List("store/gen-2") {
		t.Errorf("rolled-back generation left file %s behind", p)
	}
	_, _, gen, err := st.Serve("shop-a", viewCtx(), 5)
	if err != nil || gen != 1 {
		t.Fatalf("read after rollback: gen=%d err=%v, want gen 1", gen, err)
	}
	if _, rolledBack := st.Publishes(); rolledBack != 1 {
		t.Fatalf("rolledBack = %d, want 1", rolledBack)
	}
}

// TestFailoverOnReplicaError: a replica failing every serve is routed
// around; requests still succeed and the failover counter moves.
func TestFailoverOnReplicaError(t *testing.T) {
	inj := faults.NewInjector(1, faults.Rule{
		Ops: []faults.Op{faults.OpReplica}, PathContains: "replica-0/serve", Kind: faults.Error, Prob: 1,
	})
	fs := dfs.New()
	st := New(fs, Options{Shards: 1, Replicas: 2, CacheSize: -1, Faults: inj, HedgeAfter: time.Second})
	defer st.Close()
	st.Publish(testSnapshot(1, "shop-a"))
	for i := 0; i < 20; i++ {
		if _, _, _, err := st.Serve("shop-a", viewCtx(), 5); err != nil {
			t.Fatalf("Serve %d: %v", i, err)
		}
	}
	if st.Failovers() == 0 {
		t.Fatal("Failovers = 0 though replica 0 fails every serve")
	}
	// After enough consecutive failures the router stops preferring the
	// bad replica, so failovers taper off rather than costing every read.
	if rep := st.Replica(0, 0); rep.healthy() {
		t.Fatal("replica 0 still marked healthy after persistent failures")
	}
}

// TestAllReplicasDownFailsFast: with every replica of a shard gone the
// request errors instead of hanging.
func TestAllReplicasDownFailsFast(t *testing.T) {
	fs := dfs.New()
	st := New(fs, Options{Shards: 1, Replicas: 2, CacheSize: -1})
	defer st.Close()
	st.Publish(testSnapshot(1, "shop-a"))
	st.KillReplica(0, 0)
	st.KillReplica(0, 1)
	_, _, _, err := st.Serve("shop-a", viewCtx(), 5)
	if !errors.Is(err, errNoReplicas) {
		t.Fatalf("err = %v, want errNoReplicas", err)
	}
}

// TestKillReviveCatchUp: a replica that missed a publish while down must
// catch up to the committed generation before serving again.
func TestKillReviveCatchUp(t *testing.T) {
	fs := dfs.New()
	st := New(fs, Options{Shards: 1, Replicas: 2, CacheSize: -1})
	defer st.Close()
	st.Publish(testSnapshot(1, "shop-a"))
	st.KillReplica(0, 0)
	st.Publish(testSnapshot(2, "shop-a"))
	if err := st.PublishErr(); err != nil {
		t.Fatalf("publish 2 with one replica down: %v", err)
	}
	if g := st.Replica(0, 0).Gen(); g != 1 {
		t.Fatalf("dead replica generation = %d, want 1 (missed the publish)", g)
	}
	if err := st.ReviveReplica(0, 0); err != nil {
		t.Fatalf("ReviveReplica: %v", err)
	}
	if g := st.Replica(0, 0).Gen(); g != 2 {
		t.Fatalf("revived replica generation = %d, want 2 after catch-up", g)
	}
	// And it serves gen-2 answers.
	st.KillReplica(0, 1) // force routing to the revived replica
	_, _, gen, err := st.Serve("shop-a", viewCtx(), 5)
	if err != nil || gen != 2 {
		t.Fatalf("read from revived replica: gen=%d err=%v, want 2", gen, err)
	}
}

// TestAddReplicaBulkLoads: a replica added after a publish joins at the
// committed generation.
func TestAddReplicaBulkLoads(t *testing.T) {
	fs := dfs.New()
	st := New(fs, Options{Shards: 1, Replicas: 1, CacheSize: -1})
	defer st.Close()
	st.Publish(testSnapshot(3, "shop-a"))
	rep, err := st.AddReplica(0)
	if err != nil {
		t.Fatalf("AddReplica: %v", err)
	}
	if rep.Gen() != 3 {
		t.Fatalf("new replica generation = %d, want 3", rep.Gen())
	}
	if st.NumReplicas(0) != 2 {
		t.Fatalf("NumReplicas = %d, want 2", st.NumReplicas(0))
	}
}

// TestLoadShedding: past the in-flight budget requests fail fast with
// ErrShed instead of queueing.
func TestLoadShedding(t *testing.T) {
	inj := faults.NewInjector(1, faults.Rule{
		Ops: []faults.Op{faults.OpReplica}, PathContains: "serve", Kind: faults.Stall, Prob: 1, Delay: 200 * time.Millisecond,
	})
	fs := dfs.New()
	st := New(fs, Options{Shards: 1, Replicas: 1, CacheSize: -1, Faults: inj, MaxInflight: 2, HedgeAfter: time.Second})
	defer st.Close()
	st.Publish(testSnapshot(1, "shop-a"))

	var wg sync.WaitGroup
	shedded := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, _, err := st.Serve("shop-a", viewCtx(), 5)
			shedded <- err
		}()
	}
	wg.Wait()
	close(shedded)
	var sheds int
	for err := range shedded {
		if errors.Is(err, ErrShed) {
			sheds++
		}
	}
	if sheds == 0 {
		t.Fatal("no request shed with 8 concurrent reads against MaxInflight=2")
	}
	if st.Shed() != int64(sheds) {
		t.Fatalf("Shed() = %d, want %d", st.Shed(), sheds)
	}
}

// TestGCKeepsReferencedSegments: generation GC never deletes a segment the
// committed manifest still points at (a degraded tenant's carried-forward
// file), but does collect old unreferenced generations.
func TestGCKeepsReferencedSegments(t *testing.T) {
	fs := dfs.New()
	st := New(fs, Options{Shards: 1, Replicas: 1, CacheSize: -1, KeepGenerations: 1})
	defer st.Close()
	st.Publish(testSnapshot(1, "shop-a", "shop-b"))
	for gen := int64(2); gen <= 5; gen++ {
		snap := testSnapshot(gen, "shop-b")
		snap.MarkDegraded("shop-a", "train", false)
		st.Publish(snap)
		if err := st.PublishErr(); err != nil {
			t.Fatalf("publish %d: %v", gen, err)
		}
	}
	// shop-a still serves its gen-1 segment through four stale publishes.
	if !fs.Exists(segmentPath(1, "shop-a")) {
		t.Fatal("GC deleted the carried-forward segment for shop-a")
	}
	recs, _, _, err := st.Serve("shop-a", viewCtx(), 5)
	if err != nil || len(recs) == 0 {
		t.Fatalf("stale read after GC: recs=%v err=%v", recs, err)
	}
	// shop-b's old generations are unreferenced and past retention.
	if fs.Exists(segmentPath(2, "shop-b")) {
		t.Fatal("GC kept an unreferenced, out-of-retention segment")
	}
}

// TestStatzBlocks: the /statz extension reports per-shard replica health
// and the committed generation.
func TestStatzBlocks(t *testing.T) {
	fs := dfs.New()
	st := New(fs, Options{Shards: 2, Replicas: 2, CacheSize: -1})
	defer st.Close()
	st.Publish(testSnapshot(1, testRetailers(8)...))
	st.KillReplica(1, 0)
	blocks := st.StatzBlocks()
	block, ok := blocks["store"]
	if !ok {
		t.Fatalf("StatzBlocks missing 'store': %v", blocks)
	}
	// Render as the HTTP layer would and spot-check the content.
	s := fmt.Sprintf("%+v", block)
	for _, want := range []string{"Generation:1", "Down:true"} {
		if !strings.Contains(s, want) {
			t.Errorf("store block %s missing %q", s, want)
		}
	}
}

func TestClosedStoreRejectsRequests(t *testing.T) {
	fs := dfs.New()
	st := New(fs, Options{Shards: 1, Replicas: 1, CacheSize: -1})
	st.Publish(testSnapshot(1, "shop-a"))
	st.Close()
	if _, _, _, err := st.Serve("shop-a", viewCtx(), 5); !errors.Is(err, ErrClosed) {
		t.Fatalf("Serve after Close: %v, want ErrClosed", err)
	}
	st.Close() // idempotent
}
