package store

import (
	"testing"
	"time"
)

// manualAdmitter returns an admitter driven by a test-owned clock, so
// refill arithmetic is exact and runs reproduce regardless of scheduler
// jitter.
func manualAdmitter(rate float64, burst int) (*admitter, *time.Duration) {
	a := newAdmitter(rate, burst)
	clk := new(time.Duration)
	a.now = func() time.Duration { return *clk }
	return a, clk
}

func TestTokenBucketDeterministicRefill(t *testing.T) {
	a, clk := manualAdmitter(10, 10)

	// A single tenant owns the whole budget: the full burst admits, then
	// the bucket is dry.
	for i := 0; i < 10; i++ {
		if !a.admit("solo") {
			t.Fatalf("admit %d of burst rejected", i)
		}
	}
	if a.admit("solo") {
		t.Fatal("admit past burst succeeded")
	}

	// 500ms at 10/s refills exactly 5 tokens.
	*clk += 500 * time.Millisecond
	for i := 0; i < 5; i++ {
		if !a.admit("solo") {
			t.Fatalf("admit %d after refill rejected", i)
		}
	}
	if a.admit("solo") {
		t.Fatal("admit past refilled tokens succeeded")
	}

	adm, rej, tenants := a.stats()
	if adm != 15 || rej != 2 || tenants != 1 {
		t.Fatalf("stats = (%d, %d, %d), want (15, 2, 1)", adm, rej, tenants)
	}
}

func TestTokenBucketFairnessUnderSkew(t *testing.T) {
	// Two tenants share 100/s: "cold" offers exactly its fair share, "hot"
	// offers 20x capacity. Cold must keep essentially all of its
	// throughput; hot soaks up only the slack.
	a, clk := manualAdmitter(100, 100)

	var hotOff, hotAdm, coldOff, coldAdm int
	for step := 0; step < 100; step++ { // 1 simulated second, 10ms steps
		*clk += 10 * time.Millisecond
		for i := 0; i < 20; i++ { // 2000/s
			hotOff++
			if a.admit("hot") {
				hotAdm++
			}
		}
		if step%2 == 0 { // 50/s, the fair share
			coldOff++
			if a.admit("cold") {
				coldAdm++
			}
		}
	}
	if frac := float64(coldAdm) / float64(coldOff); frac < 0.95 {
		t.Fatalf("cold tenant at fair share admitted %.2f of offered, want >= 0.95", frac)
	}
	if frac := float64(hotAdm) / float64(hotOff); frac > 0.15 {
		t.Fatalf("hot tenant at 20x share admitted %.2f of offered, want <= 0.15", frac)
	}
	// Work conservation caps total admits at burst + one second of refill.
	if total := hotAdm + coldAdm; total > 210 {
		t.Fatalf("admitted %d total, want <= burst+rate = 200 (+slack)", total)
	}
}

func TestTokenBucketBorrowRespectsReserve(t *testing.T) {
	a, _ := manualAdmitter(100, 100) // reserve = 25
	if !a.admit("cold") || !a.admit("hot") {
		t.Fatal("first admits rejected")
	}
	// The hot tenant spends its own share, then borrows — but borrowing
	// stops at the reserve, not at empty.
	hotAdmits := 0
	for i := 0; i < 500; i++ {
		if a.admit("hot") {
			hotAdmits++
		}
	}
	if hotAdmits >= 499 {
		t.Fatal("hot tenant never hit the borrow floor")
	}
	if a.global < 1 {
		t.Fatalf("global bucket fully drained (%.1f tokens); borrowing must stop at the reserve", a.global)
	}
	// The reserve is exactly what keeps in-share tenants unaffected: cold
	// still admits from its own untouched budget.
	if !a.admit("cold") {
		t.Fatal("in-share tenant rejected while the reserve holds tokens")
	}
}

func TestTokenBucketIdleSweep(t *testing.T) {
	a, clk := manualAdmitter(100, 100)
	a.admit("a")
	a.admit("b")
	if _, _, n := a.stats(); n != 2 {
		t.Fatalf("active tenants = %d, want 2", n)
	}
	// Only "a" stays active past the idle horizon; the sweep drops "b" so
	// fair shares recover.
	*clk += a.idleAfter + time.Second
	a.admit("a")
	if _, _, n := a.stats(); n != 1 {
		t.Fatalf("active tenants after sweep = %d, want 1", n)
	}
}

func TestAdmitFastPathZeroAlloc(t *testing.T) {
	a := newAdmitter(1e9, 1<<20)
	a.admit("tenant") // create the bucket outside the measured window
	if allocs := testing.AllocsPerRun(200, func() { a.admit("tenant") }); allocs != 0 {
		t.Fatalf("admit fast path allocates %.1f per op, want 0", allocs)
	}
}

func TestAdmitterNilSafe(t *testing.T) {
	var a *admitter
	if !a.admit("any") {
		t.Fatal("nil admitter must admit everything")
	}
	if adm, rej, n := a.stats(); adm != 0 || rej != 0 || n != 0 {
		t.Fatalf("nil admitter stats = (%d, %d, %d), want zeros", adm, rej, n)
	}
	if newAdmitter(0, 10) != nil {
		t.Fatal("rate 0 must disable admission (nil admitter)")
	}
}
