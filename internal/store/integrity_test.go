package store

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"sigmund/internal/catalog"
	"sigmund/internal/core/hybrid"
	"sigmund/internal/core/inference"
	"sigmund/internal/dfs"
	"sigmund/internal/faults"
	"sigmund/internal/serving"
)

// integritySnapshot is testSnapshot with generation-dependent item IDs, so
// a tenant serving generation N−1 data is distinguishable from one serving
// generation N by response content, not just metadata (blending normalizes
// scores, so varying those alone would not show through).
func integritySnapshot(gen int64, retailers ...catalog.RetailerID) *serving.Snapshot {
	per := map[catalog.RetailerID][]inference.ItemRecs{}
	pop := map[catalog.RetailerID][]catalog.ItemID{}
	a, b := catalog.ItemID(100+gen), catalog.ItemID(200+gen)
	for _, r := range retailers {
		per[r] = []inference.ItemRecs{
			{Item: 0, View: []hybrid.Scored{{Item: a, Score: 0.9}, {Item: b, Score: 0.8}},
				Purchase: []hybrid.Scored{{Item: b, Score: 0.7}}},
			{Item: 1, View: []hybrid.Scored{{Item: 0, Score: 0.6}}},
		}
		pop[r] = []catalog.ItemID{a, b, 0}
	}
	return serving.BuildSnapshot(gen, per, pop)
}

// TestChaosIntegrityDrill is the end-to-end bit-rot drill: a control fleet
// publishes two clean generations while the victim fleet takes the same
// publishes through write rot (a flipped bit, a truncation), transient
// read rot at load time, and at-rest rot between publishes. The invariants:
// zero corrupt responses escape (every response byte-identical to the
// control's), every injected corruption is detected and counted, every one
// is repaired, and after the scrub pass the victim's stored fleet is
// byte-identical to the uninjected control's.
func TestChaosIntegrityDrill(t *testing.T) {
	const seed = 42
	retailers := testRetailers(8)
	newStore := func(fs *dfs.FS) *Store {
		return New(fs, Options{Shards: 2, Replicas: 2, CacheSize: -1, Seed: seed, Retry: fastRetry})
	}
	serve := func(st *Store, r catalog.RetailerID) []serving.Recommendation {
		t.Helper()
		recs, _, _, err := st.Serve(r, viewCtx(), 5)
		if err != nil {
			t.Fatalf("Serve(%s): %v", r, err)
		}
		if len(recs) == 0 {
			t.Fatalf("Serve(%s) returned nothing", r)
		}
		return recs
	}

	controlFS := dfs.New()
	control := newStore(controlFS)
	defer control.Close()
	control.Publish(integritySnapshot(1, retailers...))
	control.Publish(integritySnapshot(2, retailers...))
	if err := control.PublishErr(); err != nil {
		t.Fatalf("control publish: %v", err)
	}
	want := map[catalog.RetailerID][]serving.Recommendation{}
	for _, r := range retailers {
		want[r] = serve(control, r)
	}

	victimFS := dfs.New()
	victim := newStore(victimFS)
	defer victim.Close()
	victim.Publish(integritySnapshot(1, retailers...))
	if err := victim.PublishErr(); err != nil {
		t.Fatalf("victim publish 1: %v", err)
	}

	// Generation 2 publishes through three distinct corruption events:
	// write rot on two segments (a flipped bit, a truncation — caught by
	// the publish write-verify before any replica loads them) and one
	// transient read rot at the first replica load (After:1 skips the
	// write-verify read-back; the verified re-read repairs it).
	victimFS.SetInjector(faults.NewInjector(seed,
		faults.Rule{Ops: []faults.Op{faults.OpWrite}, Kind: faults.BitFlip,
			PathContains: "gen-2/seg/retailer-000", EveryNth: 1, Times: 1},
		faults.Rule{Ops: []faults.Op{faults.OpWrite}, Kind: faults.Truncate,
			PathContains: "gen-2/seg/retailer-001", EveryNth: 1, Times: 1},
		faults.Rule{Ops: []faults.Op{faults.OpRead}, Kind: faults.BitFlip,
			PathContains: "gen-2/seg/retailer-002", EveryNth: 1, After: 1, Times: 1},
	))
	victim.Publish(integritySnapshot(2, retailers...))
	if err := victim.PublishErr(); err != nil {
		t.Fatalf("victim publish 2 under corruption: %v", err)
	}
	victimFS.SetInjector(nil)

	_, corrupt, repaired := victim.IntegrityCounts()
	if corrupt != 3 || repaired != 3 {
		t.Fatalf("after corrupted publish: corrupt=%d repaired=%d, want 3/3", corrupt, repaired)
	}
	if q := victim.QuarantinedBlobs(); len(q) != 0 {
		t.Fatalf("quarantine not empty after repair: %v", q)
	}
	if n := victim.IntegrityFallbacks(); n != 0 {
		t.Fatalf("IntegrityFallbacks = %d, want 0 (everything repaired in place)", n)
	}
	for _, r := range retailers {
		if got := serve(victim, r); !reflect.DeepEqual(got, want[r]) {
			t.Fatalf("response for %s diverged from control:\n got: %+v\nwant: %+v", r, got, want[r])
		}
	}

	// At-rest rot between publishes: flip one bit inside retailer-003's
	// committed gen-2 segment image on the shelf (the raw writer bypasses
	// the footer, so the stored blob carries a checksum that no longer
	// matches). Serving is untouched — replicas hold verified in-memory
	// copies — and the scrubber detects the rot and re-replicates the blob
	// from a replica.
	target := segmentPath(2, retailers[3])
	clean, err := victimFS.Read(target)
	if err != nil {
		t.Fatalf("reading %s before rot: %v", target, err)
	}
	image := dfs.AppendFooter(clean)
	image[7] ^= 0x20
	if err := victimFS.WriteLegacy(target, image); err != nil {
		t.Fatalf("planting at-rest rot: %v", err)
	}
	if got := serve(victim, retailers[3]); !reflect.DeepEqual(got, want[retailers[3]]) {
		t.Fatalf("at-rest rot leaked into serving: %+v", got)
	}
	rep := victim.ScrubOnce()
	if rep.Corrupt != 1 || rep.Repaired != 1 || len(rep.Unrepaired) != 0 {
		t.Fatalf("scrub report = %+v, want 1 detected, 1 repaired, none unrepaired", rep)
	}
	if rep.Scrubbed == 0 {
		t.Fatal("scrub verified nothing")
	}
	scrubbed, corrupt, repaired := victim.IntegrityCounts()
	if corrupt != 4 || repaired != 4 || scrubbed == 0 {
		t.Fatalf("final counts: scrubbed=%d corrupt=%d repaired=%d, want 4 corrupt, 4 repaired", scrubbed, corrupt, repaired)
	}

	// Post-repair, the victim's stored fleet is byte-identical to the
	// uninjected control's: same files, same payloads, all verifying.
	wantFiles := controlFS.List("store/")
	gotFiles := victimFS.List("store/")
	if !reflect.DeepEqual(gotFiles, wantFiles) {
		t.Fatalf("file sets diverged:\n got: %v\nwant: %v", gotFiles, wantFiles)
	}
	for _, path := range wantFiles {
		cb, cerr := controlFS.Read(path)
		vb, verr := victimFS.Read(path)
		if cerr != nil || verr != nil {
			t.Fatalf("reading %s: control err %v, victim err %v", path, cerr, verr)
		}
		if !bytes.Equal(cb, vb) {
			t.Fatalf("%s differs from control after repair", path)
		}
	}
	for _, r := range retailers {
		if got := serve(victim, r); !reflect.DeepEqual(got, want[r]) {
			t.Fatalf("post-scrub response for %s diverged from control", r)
		}
	}

	// The /statz integrity block reports the whole story.
	info, ok := victim.StatzBlocks()["integrity"].(serving.IntegrityInfo)
	if !ok {
		t.Fatal("StatzBlocks missing the integrity block")
	}
	if info.Corrupt != 4 || info.Repaired != 4 || info.ScrubPasses != 1 || len(info.Quarantined) != 0 {
		t.Fatalf("integrity block = %+v", info)
	}
}

// TestScrubKeepsCarriedForwardSegmentAndHealsDeletion: a segment
// generations past the retention window but still referenced by a
// carry-forward manifest entry must survive scrub GC; hand-deleting it is
// detected as an integrity event and healed from a replica's in-memory
// copy — never surfacing as a serving error.
func TestScrubKeepsCarriedForwardSegmentAndHealsDeletion(t *testing.T) {
	fs := dfs.New()
	st := New(fs, Options{Shards: 1, Replicas: 2, CacheSize: -1, KeepGenerations: 1})
	defer st.Close()
	st.Publish(integritySnapshot(1, "shop-a", "shop-b"))
	if err := st.PublishErr(); err != nil {
		t.Fatalf("publish 1: %v", err)
	}
	wantStale, _, _, err := st.Serve("shop-a", viewCtx(), 5)
	if err != nil {
		t.Fatalf("Serve(shop-a): %v", err)
	}

	// Three cycles where shop-a degrades without fresh data: its manifest
	// entry keeps pointing at the gen-1 segment, far past KeepGenerations.
	for gen := int64(2); gen <= 4; gen++ {
		snap := integritySnapshot(gen, "shop-b")
		snap.MarkDegraded("shop-a", "train", false)
		st.Publish(snap)
		if err := st.PublishErr(); err != nil {
			t.Fatalf("publish %d: %v", gen, err)
		}
		if rep := st.ScrubOnce(); rep.Corrupt != 0 || len(rep.Unrepaired) != 0 {
			t.Fatalf("clean fleet scrub at gen %d reported %+v", gen, rep)
		}
	}
	carried := segmentPath(1, "shop-a")
	if !fs.Exists(carried) {
		t.Fatal("scrub GC deleted the carried-forward segment")
	}
	if fs.Exists(segmentPath(2, "shop-b")) {
		t.Fatal("unreferenced out-of-retention segment survived GC")
	}

	// At-rest data loss: the carried-forward blob vanishes. Serving keeps
	// answering from memory, and the scrubber re-replicates the blob from
	// a replica's committed copy — which still holds exactly recs version 1
	// for shop-a.
	if err := fs.Delete(carried); err != nil {
		t.Fatalf("deleting %s: %v", carried, err)
	}
	got, _, _, err := st.Serve("shop-a", viewCtx(), 5)
	if err != nil || !reflect.DeepEqual(got, wantStale) {
		t.Fatalf("serving after deletion: recs=%+v err=%v, want the stale gen-1 recs", got, err)
	}
	rep := st.ScrubOnce()
	if rep.Corrupt != 1 || rep.Repaired != 1 {
		t.Fatalf("scrub after deletion = %+v, want 1 detected, 1 repaired", rep)
	}
	if !fs.Exists(carried) {
		t.Fatal("scrub did not restore the deleted segment")
	}
	rr, _, err := st.fetchVerified(carried)
	if err != nil || rr == nil {
		t.Fatalf("restored segment unreadable: %v", err)
	}

	// A crashed replica catches up through the restored blob too.
	st.KillReplica(0, 1)
	if err := st.ReviveReplica(0, 1); err != nil {
		t.Fatalf("revive after heal: %v", err)
	}
	if got, _, _, err := st.Serve("shop-a", viewCtx(), 5); err != nil || !reflect.DeepEqual(got, wantStale) {
		t.Fatalf("post-revive serving: recs=%+v err=%v", got, err)
	}
	if q := st.QuarantinedBlobs(); len(q) != 0 {
		t.Fatalf("quarantine not empty: %v", q)
	}
}

// TestReviveHealsDeletedSegmentFromPeer: a replica bulk-loading a
// generation whose blob is missing re-replicates it from a live peer
// replica instead of failing the load.
func TestReviveHealsDeletedSegmentFromPeer(t *testing.T) {
	fs := dfs.New()
	st := New(fs, Options{Shards: 1, Replicas: 2, CacheSize: -1})
	defer st.Close()
	st.Publish(integritySnapshot(1, "shop-a", "shop-b"))
	if err := st.PublishErr(); err != nil {
		t.Fatalf("publish: %v", err)
	}
	path := segmentPath(1, "shop-a")
	if err := fs.Delete(path); err != nil {
		t.Fatal(err)
	}
	st.KillReplica(0, 0)
	if err := st.ReviveReplica(0, 0); err != nil {
		t.Fatalf("revive with missing blob: %v", err)
	}
	if !fs.Exists(path) {
		t.Fatal("revive did not heal the missing blob")
	}
	_, corrupt, repaired := st.IntegrityCounts()
	if corrupt != 1 || repaired != 1 {
		t.Fatalf("counts = %d/%d, want 1 detected, 1 repaired", corrupt, repaired)
	}
	if recs, _, _, err := st.Serve("shop-a", viewCtx(), 5); err != nil || len(recs) == 0 {
		t.Fatalf("serving after heal: %v", err)
	}
}

// TestIntegrityLoadFallsBackToPreviousGeneration: persistent rot on a
// fresh segment that no peer can repair (nobody holds the new generation
// yet) must not poison serving or fail the publish — the affected tenant
// keeps its previous generation, marked degraded with phase "integrity",
// while the rest of the fleet advances.
func TestIntegrityLoadFallsBackToPreviousGeneration(t *testing.T) {
	fs := dfs.New()
	st := New(fs, Options{Shards: 1, Replicas: 2, CacheSize: -1, Retry: fastRetry})
	defer st.Close()
	st.Publish(integritySnapshot(1, "shop-a", "shop-b"))
	if err := st.PublishErr(); err != nil {
		t.Fatalf("publish 1: %v", err)
	}
	gen1Recs, _, _, err := st.Serve("shop-a", viewCtx(), 5)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}

	// Every read of shop-a's gen-2 segment after the write-verify
	// read-back returns flipped bits: re-reads can't fix it, and no
	// replica holds generation 2 yet, so peer repair has nothing to offer.
	fs.SetInjector(faults.NewInjector(7, faults.Rule{
		Ops: []faults.Op{faults.OpRead}, Kind: faults.BitFlip,
		PathContains: "gen-2/seg/shop-a", EveryNth: 1, After: 1,
	}))
	st.Publish(integritySnapshot(2, "shop-a", "shop-b"))
	if err := st.PublishErr(); err != nil {
		t.Fatalf("publish 2 must survive unrepairable rot: %v", err)
	}

	// shop-b is fresh at generation 2; shop-a still serves its gen-1 data.
	if _, _, gen, err := st.Serve("shop-b", viewCtx(), 5); err != nil || gen != 2 {
		t.Fatalf("shop-b: gen=%d err=%v, want generation 2", gen, err)
	}
	got, _, _, err := st.Serve("shop-a", viewCtx(), 5)
	if err != nil {
		t.Fatalf("shop-a must keep serving: %v", err)
	}
	if !reflect.DeepEqual(got, gen1Recs) {
		t.Fatalf("shop-a recs = %+v, want the gen-1 recs (poison-free fallback)", got)
	}
	if st.IntegrityFallbacks() == 0 {
		t.Fatal("no integrity fallback recorded")
	}
	_, corrupt, repaired := st.IntegrityCounts()
	if corrupt == 0 || repaired != 0 {
		t.Fatalf("counts = %d/%d, want detections and no (false) repairs", corrupt, repaired)
	}
	if q := st.QuarantinedBlobs(); len(q) != 1 || q[0] != segmentPath(2, "shop-a") {
		t.Fatalf("quarantine = %v, want exactly the rotten segment", q)
	}
	// The replica-level status carries the mark.
	rep := st.Replica(0, 0)
	rep.mu.Lock()
	ts := rep.mainSnap.Status["shop-a"]
	rep.mu.Unlock()
	if ts == nil || !ts.Degraded || ts.DegradedPhase != "integrity" || ts.RecsVersion != 1 {
		t.Fatalf("shop-a status = %+v, want degraded/integrity at recs version 1", ts)
	}

	// The rot clears; the next publish heals the tenant and the scrubber
	// lifts the now-unreferenced quarantine entry.
	fs.SetInjector(nil)
	st.Publish(integritySnapshot(3, "shop-a", "shop-b"))
	if err := st.PublishErr(); err != nil {
		t.Fatalf("publish 3: %v", err)
	}
	if got, _, _, err := st.Serve("shop-a", viewCtx(), 5); err != nil || reflect.DeepEqual(got, gen1Recs) {
		t.Fatalf("shop-a not healed by the next publish: recs=%+v err=%v", got, err)
	}
	st.ScrubOnce()
	if q := st.QuarantinedBlobs(); len(q) != 0 {
		t.Fatalf("stale quarantine survived scrub: %v", q)
	}
}

// TestScrubResetsCorruptGuardBaseline: a guard baseline that fails
// verification is deleted, converting silent poison into the guard's
// well-defined warmup path (LoadBaseline returns nil).
func TestScrubResetsCorruptGuardBaseline(t *testing.T) {
	fs := dfs.New()
	st := New(fs, Options{Shards: 1, Replicas: 1, CacheSize: -1})
	defer st.Close()
	fs.Write("guard/baselines/shop-a", []byte(`{"map10":0.5,"days":3}`))
	rotten := dfs.AppendFooter([]byte(`{"map10":0.9,"days":9}`))
	rotten[3] ^= 1
	fs.WriteLegacy("guard/baselines/shop-b", rotten)

	rep := st.ScrubOnce()
	if rep.Corrupt != 1 {
		t.Fatalf("scrub report = %+v, want 1 corrupt baseline", rep)
	}
	if !fs.Exists("guard/baselines/shop-a") {
		t.Fatal("healthy baseline deleted")
	}
	if fs.Exists("guard/baselines/shop-b") {
		t.Fatal("corrupt baseline not reset")
	}
	if q := st.QuarantinedBlobs(); len(q) != 0 {
		t.Fatalf("reset baseline left quarantine: %v", q)
	}
}

// TestPrepareWithoutResolverKeepsStrictSemantics: internal callers that
// pass no resolver (none remain, but the contract is load-bearing for the
// fallback ladder) still fail the whole load on a bad segment.
func TestPrepareWithoutResolverKeepsStrictSemantics(t *testing.T) {
	fs := dfs.New()
	st := New(fs, Options{Shards: 1, Replicas: 1, CacheSize: -1})
	defer st.Close()
	st.Publish(integritySnapshot(1, "shop-a"))
	if err := st.PublishErr(); err != nil {
		t.Fatal(err)
	}
	fs.Delete(segmentPath(1, "shop-a"))
	rep := newReplica(0, 9, st.opts)
	err := rep.prepare(fs, 1, st.shardEntries(st.man, 0), nil)
	if !errors.Is(err, dfs.ErrNotExist) {
		t.Fatalf("strict prepare err = %v, want ErrNotExist", err)
	}
}
