package store

import "testing"

func TestCheapRNGDeterministic(t *testing.T) {
	a, b := newCheapRNG(42), newCheapRNG(42)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatalf("same-seeded streams diverged at draw %d", i)
		}
	}
	c, d := newCheapRNG(43), newCheapRNG(42)
	same := 0
	for i := 0; i < 100; i++ {
		if d.next() == c.next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("differently-seeded streams collided %d/100 times", same)
	}
}

func TestPickTwoPrefersShorterQueue(t *testing.T) {
	rng := newCheapRNG(1)
	busy, idle := &Replica{}, &Replica{}
	busy.inflight.Store(100)
	// With two replicas both are always sampled, so the idle one must win
	// the primary slot every time regardless of initial order.
	for i := 0; i < 50; i++ {
		reps := []*Replica{busy, idle}
		if i%2 == 1 {
			reps = []*Replica{idle, busy}
		}
		pickTwo(reps, rng)
		if reps[0] != idle {
			t.Fatalf("trial %d: busy replica won the primary slot", i)
		}
	}
}

func TestPickTwoShiftsLoadOffHotReplica(t *testing.T) {
	// Among several replicas one is overloaded: power-of-two-choices must
	// route to it far less often than uniform random would (1/4 here).
	rng := newCheapRNG(7)
	reps := make([]*Replica, 4)
	for i := range reps {
		reps[i] = &Replica{}
	}
	hot := reps[3]
	hot.inflight.Store(50)
	hotWins := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		order := []*Replica{reps[0], reps[1], reps[2], reps[3]}
		pickTwo(order, rng)
		if order[0] == hot {
			hotWins++
		}
	}
	// The hot replica wins only when it isn't sampled against anyone
	// (p = it lands in slot 0 unsampled) — well under 10% in expectation.
	if frac := float64(hotWins) / trials; frac > 0.15 {
		t.Fatalf("hot replica kept the primary slot %.0f%% of trials, want < 15%%", 100*frac)
	}
}

func TestPickTwoBalancesEqualLoad(t *testing.T) {
	// Equal queues: every replica should land in the primary slot a
	// healthy fraction of the time (no starvation, no fixed winner).
	rng := newCheapRNG(99)
	reps := make([]*Replica, 3)
	for i := range reps {
		reps[i] = &Replica{idx: i}
	}
	wins := make([]int, 3)
	for i := 0; i < 3000; i++ {
		order := []*Replica{reps[0], reps[1], reps[2]}
		pickTwo(order, rng)
		wins[order[0].idx]++
	}
	for i, w := range wins {
		if w < 500 {
			t.Fatalf("replica %d won the primary slot only %d/3000 trials: %v", i, w, wins)
		}
	}
}

func TestPickTwoDegenerateSlices(t *testing.T) {
	rng := newCheapRNG(1)
	pickTwo(nil, rng) // must not panic
	one := []*Replica{{}}
	pickTwo(one, rng)
	if len(one) != 1 {
		t.Fatal("single-replica slice mutated")
	}
}
