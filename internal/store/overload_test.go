package store

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sigmund/internal/catalog"
	"sigmund/internal/dfs"
	"sigmund/internal/serving"
)

func TestServeRejectsWithErrAdmission(t *testing.T) {
	st := New(dfs.New(), Options{Shards: 1, Replicas: 1, CacheSize: -1, AdmitQPS: 1, AdmitBurst: 1})
	defer st.Close()
	st.Publish(testSnapshot(1, "shop-a"))

	if _, _, _, err := st.Serve("shop-a", viewCtx(), 5); err != nil {
		t.Fatalf("first request within budget rejected: %v", err)
	}
	_, _, _, err := st.Serve("shop-a", viewCtx(), 5)
	if !errors.Is(err, ErrAdmission) {
		t.Fatalf("over-budget request: err = %v, want ErrAdmission", err)
	}
	var re *RejectError
	if !errors.As(err, &re) || re.RejectReason() != "admission" {
		t.Fatalf("rejection reason = %v, want \"admission\"", err)
	}
	shed, admission, repFail := st.Rejects()
	if shed != 0 || admission != 1 || repFail != 0 {
		t.Fatalf("Rejects() = (%d, %d, %d), want (0, 1, 0)", shed, admission, repFail)
	}
	if st.Admitted() != 1 {
		t.Fatalf("Admitted() = %d, want 1", st.Admitted())
	}
}

func TestBrownoutLadderServesCacheThenStale(t *testing.T) {
	st := New(dfs.New(), Options{Shards: 1, Replicas: 1, CacheSize: 64, AdmitQPS: 0.001, AdmitBurst: 2})
	defer st.Close()
	st.Publish(testSnapshot(1, "shop-a"))

	// Two tokens: the first admit primes the gen-1 cache entry.
	if _, _, _, err := st.Serve("shop-a", viewCtx(), 5); err != nil {
		t.Fatalf("priming request: %v", err)
	}
	// Budget exhausted for the tenant (share of burst 2 is 2 while alone);
	// burn whatever remains so the next reads are over budget.
	for i := 0; i < 4; i++ {
		st.Serve("shop-a", viewCtx(), 5)
	}
	// Rung 1: the current generation's cache answers instead of rejecting.
	recs, _, gen, err := st.Serve("shop-a", viewCtx(), 5)
	if err != nil || gen != 1 || len(recs) == 0 {
		t.Fatalf("brownout cache serve: recs=%v gen=%d err=%v", recs, gen, err)
	}
	cacheServes, _ := st.BrownoutServes()
	if cacheServes == 0 {
		t.Fatal("brownout cache counter did not move")
	}

	// Publish gen 2 — the gen-1 cache entries survive under their old key.
	st.Publish(testSnapshot(2, "shop-a"))
	if err := st.PublishErr(); err != nil {
		t.Fatalf("publish 2: %v", err)
	}
	// Rung 2: no gen-2 entry exists, so the ladder falls back to the
	// stale gen-1 answer rather than rejecting.
	recs, _, gen, err = st.Serve("shop-a", viewCtx(), 5)
	if err != nil || gen != 1 || len(recs) == 0 {
		t.Fatalf("brownout stale serve: recs=%v gen=%d err=%v", recs, gen, err)
	}
	if _, staleServes := st.BrownoutServes(); staleServes == 0 {
		t.Fatal("brownout stale counter did not move")
	}

	// A context never cached falls off the ladder to a real rejection.
	missCtx := viewCtx()
	missCtx[0].Item = 1
	if _, _, _, err := st.Serve("shop-a", missCtx, 5); !errors.Is(err, ErrAdmission) {
		t.Fatalf("uncached over-budget read: err = %v, want ErrAdmission", err)
	}
}

func TestStatzReportsOverloadBlock(t *testing.T) {
	st := New(dfs.New(), Options{Shards: 1, Replicas: 1, CacheSize: -1, AdmitQPS: 1, AdmitBurst: 1})
	defer st.Close()
	st.Publish(testSnapshot(1, "shop-a"))
	st.Serve("shop-a", viewCtx(), 5)
	st.Serve("shop-a", viewCtx(), 5) // rejected
	blocks := st.StatzBlocks()
	block, ok := blocks["overload"]
	if !ok {
		t.Fatalf("StatzBlocks missing 'overload': %v", blocks)
	}
	s := fmt.Sprintf("%+v", block)
	for _, want := range []string{"Admitted:1", "RejectsAdmission:1", "ActiveTenants:1"} {
		if !strings.Contains(s, want) {
			t.Errorf("overload block %s missing %q", s, want)
		}
	}
}

// TestOverloadAdmissionFairTail floods one tenant at many times its fair
// share while tail tenants pace inside theirs: the tail keeps its
// throughput and the flood absorbs the rejections.
func TestOverloadAdmissionFairTail(t *testing.T) {
	const tailTenants = 8
	retailers := testRetailers(tailTenants + 1)
	hot := retailers[0]
	st := New(dfs.New(), Options{
		Shards: 2, Replicas: 2, CacheSize: -1,
		AdmitQPS: 400, AdmitBurst: 40, HedgeAfter: time.Second,
	})
	defer st.Close()
	st.Publish(testSnapshot(1, retailers...))
	if err := st.PublishErr(); err != nil {
		t.Fatalf("publish: %v", err)
	}

	const window = 400 * time.Millisecond
	var (
		wg          sync.WaitGroup
		stop        atomic.Bool
		hotOffered  atomic.Int64
		hotRejected atomic.Int64
		tailOffered atomic.Int64
		tailadmit   atomic.Int64
	)
	// The flood: a tight loop against one tenant, far beyond its
	// ~44 qps fair share.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			hotOffered.Add(1)
			if _, _, _, err := st.Serve(hot, viewCtx(), 5); errors.Is(err, ErrAdmission) {
				hotRejected.Add(1)
			}
		}
	}()
	// The tail: each tenant paced at ~20 qps, safely inside its share.
	for i := 1; i <= tailTenants; i++ {
		wg.Add(1)
		go func(r catalog.RetailerID) {
			defer wg.Done()
			tick := time.NewTicker(50 * time.Millisecond)
			defer tick.Stop()
			for !stop.Load() {
				<-tick.C
				tailOffered.Add(1)
				if _, _, _, err := st.Serve(r, viewCtx(), 5); err == nil {
					tailadmit.Add(1)
				}
			}
		}(retailers[i])
	}
	time.Sleep(window)
	stop.Store(true)
	wg.Wait()

	if hotRejected.Load() == 0 {
		t.Fatal("the flooding tenant was never rejected")
	}
	if frac := float64(tailadmit.Load()) / float64(tailOffered.Load()); frac < 0.9 {
		t.Fatalf("tail tenants admitted %.2f of offered load under the flood, want >= 0.9", frac)
	}
	_, admission, _ := st.Rejects()
	if hotShare := float64(hotRejected.Load()) / float64(admission); hotShare < 0.8 {
		t.Fatalf("hot tenant got %.2f of admission rejects, want >= 0.8", hotShare)
	}
}

// TestOverloadKillHottestShardAutoscales is the chaos drill: overload plus
// a replica kill on the hottest shard, with the autoscaler running and a
// generation publish mid-flight. The autoscaler must restore capacity, no
// admitted request may observe a torn generation, and tail latency must
// stay bounded.
func TestOverloadKillHottestShardAutoscales(t *testing.T) {
	retailers := testRetailers(12)
	hot := retailers[0]
	st := New(dfs.New(), Options{
		Shards: 2, Replicas: 2, CacheSize: -1,
		Autoscale: true, MinReplicas: 2, MaxReplicas: 4,
		ScaleInterval: 5 * time.Millisecond, ScaleUpQueue: 1, ScaleDownQueue: -1,
		ServeDelay: 2 * time.Millisecond, HedgeAfter: time.Second, Seed: 7,
	})
	defer st.Close()
	st.Publish(testSnapshot(1, retailers...))
	if err := st.PublishErr(); err != nil {
		t.Fatalf("publish: %v", err)
	}
	hotShard := st.ShardFor(hot)

	var (
		wg      sync.WaitGroup
		stop    atomic.Bool
		served  atomic.Int64
		badGen  atomic.Int64
		latMu   sync.Mutex
		latency []time.Duration
	)
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			local := make([]time.Duration, 0, 1024)
			for i := 0; !stop.Load(); i++ {
				r := hot
				if c >= 4 { // two clients spread over the tail
					r = retailers[1+(i%(len(retailers)-1))]
				}
				t0 := time.Now()
				_, _, gen, err := st.Serve(r, viewCtx(), 5)
				if err != nil {
					continue
				}
				local = append(local, time.Since(t0))
				served.Add(1)
				if gen != 1 && gen != 2 {
					badGen.Store(gen)
				}
			}
			latMu.Lock()
			latency = append(latency, local...)
			latMu.Unlock()
		}(c)
	}

	time.Sleep(60 * time.Millisecond)
	st.KillReplica(hotShard, 0) // take out a replica under load
	time.Sleep(60 * time.Millisecond)
	st.Publish(testSnapshot(2, retailers...)) // publish while scaling
	if err := st.PublishErr(); err != nil {
		t.Fatalf("mid-run publish: %v", err)
	}
	time.Sleep(150 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if served.Load() == 0 {
		t.Fatal("nothing served during the chaos window")
	}
	if g := badGen.Load(); g != 0 {
		t.Fatalf("a request observed torn generation %d (want 1 or 2)", g)
	}
	ups, _ := st.ScaleEvents()
	if ups == 0 {
		t.Fatal("autoscaler added no capacity while a loaded shard ran a replica short")
	}
	// The killed replica's capacity is back: either revived or replaced.
	sh := st.shards[hotShard]
	sh.mu.RLock()
	live := 0
	for _, rep := range sh.replicas {
		if !rep.Down() {
			live++
		}
	}
	sh.mu.RUnlock()
	if live < 2 {
		t.Fatalf("hot shard has %d live replicas after recovery, want >= 2", live)
	}
	// Generous single-core bound: instantaneous replicas mean even the p99
	// of a contended run sits far under this unless routing regressed.
	sortDurations(latency)
	if p99 := latency[len(latency)*99/100]; p99 > 250*time.Millisecond {
		t.Fatalf("admitted p99 = %v during chaos, want < 250ms", p99)
	}
}

func sortDurations(d []time.Duration) {
	for i := 1; i < len(d); i++ {
		for j := i; j > 0 && d[j] < d[j-1]; j-- {
			d[j], d[j-1] = d[j-1], d[j]
		}
	}
}

// TestRecommendOrRejectSurfacesErrors pins the serving.Rejecter contract
// the HTTP layer depends on.
func TestRecommendOrRejectSurfacesErrors(t *testing.T) {
	st := New(dfs.New(), Options{Shards: 1, Replicas: 1, CacheSize: -1, AdmitQPS: 1, AdmitBurst: 1})
	defer st.Close()
	st.Publish(testSnapshot(1, "shop-a"))
	var _ serving.Rejecter = st
	if recs, err := st.RecommendOrReject("shop-a", viewCtx(), 5); err != nil || len(recs) == 0 {
		t.Fatalf("in-budget RecommendOrReject: recs=%v err=%v", recs, err)
	}
	if _, err := st.RecommendOrReject("shop-a", viewCtx(), 5); !errors.Is(err, ErrAdmission) {
		t.Fatalf("over-budget RecommendOrReject err = %v, want ErrAdmission", err)
	}
}
