// Package store is Sigmund's sharded, replicated serving subsystem: the
// production-shaped successor to the single-process serving.Server. The
// daily pipeline still produces one immutable snapshot per generation
// (Section V's batch-update model), but here the snapshot is split into
// per-retailer segments written through the shared filesystem, bulk-loaded
// by every replica of the owning shard, and swapped atomically per
// generation. A front-end Router maps retailers to shards over a
// consistent-hash ring, fans requests to replicas with hedged reads and
// failover, sheds load past a bounded in-flight budget, and keeps a small
// hot-key cache for head queries.
package store

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring mapping string keys (retailer IDs) to
// shards. Each shard contributes VirtualNodes points on the ring so key
// ranges stay balanced; points are derived deterministically from the seed,
// so every process that builds the ring with the same parameters routes
// identically — the property replicated routers depend on.
//
// Methods are not safe for concurrent mutation; the Store guards topology
// changes with its own lock and Lookup is read-only after construction.
type Ring struct {
	seed   uint64
	vnodes int
	points []ringPoint // sorted by hash
	shards map[int]bool
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewRing builds a ring with shards numbered [0, shards) and the given
// number of virtual nodes per shard (<= 0 takes the default 64).
func NewRing(shards, vnodes int, seed uint64) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	r := &Ring{seed: seed, vnodes: vnodes, shards: make(map[int]bool, shards)}
	for s := 0; s < shards; s++ {
		r.Add(s)
	}
	return r
}

// Add inserts a shard's virtual nodes. Adding an existing shard is a no-op.
// Consistent hashing guarantees only keys now owned by the new shard move;
// every other key keeps its old owner.
func (r *Ring) Add(shard int) {
	if r.shards[shard] {
		return
	}
	r.shards[shard] = true
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, ringPoint{hash: r.pointHash(shard, v), shard: shard})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a shard's virtual nodes; its keys redistribute to the
// ring's surviving shards and no other key moves.
func (r *Ring) Remove(shard int) {
	if !r.shards[shard] {
		return
	}
	delete(r.shards, shard)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.shard != shard {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Lookup returns the shard owning key (-1 on an empty ring).
func (r *Ring) Lookup(key string) int {
	if len(r.points) == 0 {
		return -1
	}
	h := r.keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap around the circle
	}
	return r.points[i].shard
}

// NumShards returns the number of shards on the ring.
func (r *Ring) NumShards() int { return len(r.shards) }

func (r *Ring) pointHash(shard, vnode int) uint64 {
	return hash64(fmt.Sprintf("%d|shard-%d|vnode-%d", r.seed, shard, vnode))
}

func (r *Ring) keyHash(key string) uint64 {
	return hash64(fmt.Sprintf("%d|key|%s", r.seed, key))
}

// hash64 is fnv64a with a splitmix64-style finalizer. The finalizer
// matters: raw FNV of keys differing only in their trailing characters
// (retailer-001, retailer-002, ...) yields hashes a few multiples of the
// FNV prime apart — adjacent on a 2^64 ring whose points sit ~2^56 apart,
// which parks entire sequential fleets on one shard. The avalanche step
// spreads those neighbors across the whole ring.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
