// Package store is Sigmund's sharded, replicated serving subsystem: the
// production-shaped successor to the single-process serving.Server. The
// daily pipeline still produces one immutable snapshot per generation
// (Section V's batch-update model), but here the snapshot is split into
// per-retailer segments written through the shared filesystem, bulk-loaded
// by every replica of the owning shard, and swapped atomically per
// generation. A front-end Router maps retailers to shards over a
// consistent-hash ring, fans requests to replicas with hedged reads and
// failover, sheds load past a bounded in-flight budget, and keeps a small
// hot-key cache for head queries.
package store

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring mapping string keys (retailer IDs) to
// shards. Each shard contributes VirtualNodes points on the ring so key
// ranges stay balanced; points are derived deterministically from the seed,
// so every process that builds the ring with the same parameters routes
// identically — the property replicated routers depend on.
//
// Methods are not safe for concurrent mutation; the Store guards topology
// changes with its own lock and Lookup is read-only after construction.
type Ring struct {
	seed   uint64
	vnodes int
	points []ringPoint // sorted by hash
	shards map[int]bool
	// keyPrefix is the precomputed "<seed>|key|" byte sequence every key
	// hash starts with, so the per-request keyHash never formats a string.
	keyPrefix string
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewRing builds a ring with shards numbered [0, shards) and the given
// number of virtual nodes per shard (<= 0 takes the default 64).
func NewRing(shards, vnodes int, seed uint64) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	r := &Ring{
		seed:      seed,
		vnodes:    vnodes,
		shards:    make(map[int]bool, shards),
		keyPrefix: strconv.FormatUint(seed, 10) + "|key|",
	}
	for s := 0; s < shards; s++ {
		r.Add(s)
	}
	return r
}

// Add inserts a shard's virtual nodes. Adding an existing shard is a no-op.
// Consistent hashing guarantees only keys now owned by the new shard move;
// every other key keeps its old owner.
func (r *Ring) Add(shard int) {
	if r.shards[shard] {
		return
	}
	r.shards[shard] = true
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, ringPoint{hash: r.pointHash(shard, v), shard: shard})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a shard's virtual nodes; its keys redistribute to the
// ring's surviving shards and no other key moves.
func (r *Ring) Remove(shard int) {
	if !r.shards[shard] {
		return
	}
	delete(r.shards, shard)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.shard != shard {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Lookup returns the shard owning key (-1 on an empty ring).
func (r *Ring) Lookup(key string) int {
	if len(r.points) == 0 {
		return -1
	}
	h := r.keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap around the circle
	}
	return r.points[i].shard
}

// NumShards returns the number of shards on the ring.
func (r *Ring) NumShards() int { return len(r.shards) }

func (r *Ring) pointHash(shard, vnode int) uint64 {
	return hash64(fmt.Sprintf("%d|shard-%d|vnode-%d", r.seed, shard, vnode))
}

// keyHash hashes a request key. It is called on every routed request, so
// it inlines FNV-1a over the precomputed prefix and the key — producing
// exactly the bytes (and therefore exactly the hash) of
// hash64(fmt.Sprintf("%d|key|%s", seed, key)) with zero allocations;
// seeded shard assignments are stable across this rewrite.
func (r *Ring) keyHash(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	x := uint64(offset64)
	for i := 0; i < len(r.keyPrefix); i++ {
		x ^= uint64(r.keyPrefix[i])
		x *= prime64
	}
	for i := 0; i < len(key); i++ {
		x ^= uint64(key[i])
		x *= prime64
	}
	return avalanche(x)
}

// hash64 is fnv64a with a splitmix64-style finalizer. The finalizer
// matters: raw FNV of keys differing only in their trailing characters
// (retailer-001, retailer-002, ...) yields hashes a few multiples of the
// FNV prime apart — adjacent on a 2^64 ring whose points sit ~2^56 apart,
// which parks entire sequential fleets on one shard. The avalanche step
// spreads those neighbors across the whole ring.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return avalanche(h.Sum64())
}

// avalanche is the splitmix64-style finalizer shared by hash64 and the
// inlined keyHash.
func avalanche(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
