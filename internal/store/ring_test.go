package store

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("retailer-%03d", i)
	}
	return keys
}

func TestRingDeterministic(t *testing.T) {
	a := NewRing(4, 64, 42)
	b := NewRing(4, 64, 42)
	for _, k := range ringKeys(200) {
		if a.Lookup(k) != b.Lookup(k) {
			t.Fatalf("rings with identical parameters disagree on %q: %d vs %d", k, a.Lookup(k), b.Lookup(k))
		}
	}
	c := NewRing(4, 64, 43)
	diff := 0
	for _, k := range ringKeys(200) {
		if a.Lookup(k) != c.Lookup(k) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical routing — seed is not feeding the hash")
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(4, 64, 1)
	counts := make([]int, 4)
	keys := ringKeys(4000)
	for _, k := range keys {
		s := r.Lookup(k)
		if s < 0 || s >= 4 {
			t.Fatalf("Lookup(%q) = %d, out of range", k, s)
		}
		counts[s]++
	}
	// Perfect balance is 1000 per shard; virtual nodes should keep every
	// shard within a loose 3x band.
	for s, c := range counts {
		if c < 300 || c > 2200 {
			t.Errorf("shard %d owns %d/%d keys — ring badly unbalanced: %v", s, c, len(keys), counts)
		}
	}

	// Regression guard: a small fleet of sequential IDs (differing only in
	// trailing digits) must still spread — raw FNV without a finalizer
	// clusters such keys into one ring gap and parks them all on one shard.
	small := make([]int, 4)
	for _, k := range ringKeys(64) {
		small[r.Lookup(k)]++
	}
	for s, c := range small {
		if c == 0 {
			t.Errorf("shard %d owns none of 64 sequential keys: %v", s, small)
		}
	}
}

// TestRingAddMovesOnlyNewKeys is the consistent-hashing contract: growing
// the ring moves only the keys the new shard takes over; every other key
// keeps its owner.
func TestRingAddMovesOnlyNewKeys(t *testing.T) {
	r := NewRing(4, 64, 7)
	keys := ringKeys(2000)
	before := make(map[string]int, len(keys))
	for _, k := range keys {
		before[k] = r.Lookup(k)
	}
	r.Add(4)
	moved := 0
	for _, k := range keys {
		after := r.Lookup(k)
		if after != before[k] {
			if after != 4 {
				t.Fatalf("key %q moved %d -> %d, but only the new shard 4 may gain keys", k, before[k], after)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("new shard received no keys")
	}
	// Expected share is 1/5 of the keyspace; assert a loose band.
	if moved > len(keys)/2 {
		t.Fatalf("adding one shard moved %d/%d keys — far more than its fair share", moved, len(keys))
	}
}

// TestRingRemoveMovesOnlyOwnedKeys: shrinking the ring redistributes only
// the removed shard's keys.
func TestRingRemoveMovesOnlyOwnedKeys(t *testing.T) {
	r := NewRing(5, 64, 7)
	keys := ringKeys(2000)
	before := make(map[string]int, len(keys))
	for _, k := range keys {
		before[k] = r.Lookup(k)
	}
	r.Remove(2)
	for _, k := range keys {
		after := r.Lookup(k)
		if after == 2 {
			t.Fatalf("key %q still maps to removed shard 2", k)
		}
		if before[k] != 2 && after != before[k] {
			t.Fatalf("key %q moved %d -> %d though its owner was not removed", k, before[k], after)
		}
	}
	if r.NumShards() != 4 {
		t.Fatalf("NumShards = %d after remove, want 4", r.NumShards())
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(0, 64, 1)
	if got := r.Lookup("anything"); got != -1 {
		t.Fatalf("Lookup on empty ring = %d, want -1", got)
	}
}
