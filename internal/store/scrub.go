package store

import (
	"bytes"
	"strings"
	"time"

	"sigmund/internal/dfs"
)

// The background scrubber closes the integrity loop for at-rest rot: a
// blob can be verified at write time and at load time and still decay on
// the shelf between publishes. Each pass re-verifies every blob the
// committed manifest references (segments, canary segments, and the
// manifest itself), the guard baselines, and the training checkpoints,
// repairs what it can — segments from replica in-memory copies, the
// manifest from the committed in-memory state, baselines and checkpoints
// by deletion, which their loaders treat as a clean fresh start — and
// garbage-collects orphaned blobs that are provably unreferenced.

// ScrubReport summarizes one scrub pass.
type ScrubReport struct {
	// Scrubbed counts blobs whose integrity this pass verified.
	Scrubbed int
	// Corrupt counts corruption incidents this pass detected.
	Corrupt int
	// Repaired counts incidents this pass healed.
	Repaired int
	// OrphansGCed counts unreferenced blobs this pass deleted.
	OrphansGCed int
	// Unrepaired lists blob paths still quarantined after the pass.
	Unrepaired []string
}

// noteScrubbed records one blob verified by the scrubber.
func (st *Store) noteScrubbed() {
	st.integScrubbed.Add(1)
	st.m.integScrubbed.Inc()
}

// ScrubOnce runs one full scrub pass. It serializes with publishes
// (taking the same lock), so it always sees a committed, stable
// generation and never races a manifest swap.
func (st *Store) ScrubOnce() ScrubReport {
	st.pubMu.Lock()
	defer st.pubMu.Unlock()

	corruptBefore := st.integCorrupt.Load()
	repairedBefore := st.integRepaired.Load()
	var rep ScrubReport

	st.stateMu.RLock()
	gen, man := st.gen, st.man
	st.stateMu.RUnlock()

	referenced := map[string]bool{}
	if man != nil {
		// The manifest blob itself: a corrupt manifest would strand
		// crashed-replica catch-up, and we hold the authoritative copy in
		// memory, so repair is a straight re-encode.
		mpath := manifestPath(gen)
		referenced[mpath] = true
		rep.Scrubbed++
		st.noteScrubbed()
		if data, err := st.fs.Read(mpath); err != nil || !bytes.Equal(data, EncodeManifest(man)) {
			if err == nil || isIntegrityErr(err) {
				st.noteCorrupt(mpath, errOr(err, "manifest diverged from committed state"))
				(&segmentResolver{st: st}).healFile(mpath, EncodeManifest(man))
			}
		}

		// Every referenced segment, including carry-forward and canary
		// entries pointing into older generations. Repair draws on the
		// owning shard's replica copies, which hold exactly the versions
		// the manifest references.
		for _, e := range man.Entries {
			for _, canary := range []bool{false, true} {
				path := e.Segment
				if canary {
					if path = e.CanarySegment; path == "" {
						continue
					}
				}
				referenced[path] = true
				rep.Scrubbed++
				st.noteScrubbed()
				if _, integrity, err := st.fetchVerified(path); err == nil || !integrity {
					continue
				}
				res := &segmentResolver{st: st, sh: st.shards[st.ring.Lookup(string(e.Retailer))]}
				if data := res.peerBytes(e, nil, canary); data != nil {
					if _, derr := DecodeSegment(data); derr == nil {
						res.healFile(path, data)
					}
				}
			}
		}
	}

	// Guard baselines and training checkpoints have no redundant copy to
	// repair from, but their loaders already treat a missing blob as a
	// clean fresh start (warmup for the guard, an earlier checkpoint or a
	// cold start for training). Deleting a corrupt one converts silent
	// poison into that well-trodden path.
	for _, path := range st.fs.List("guard/baselines/") {
		rep.Scrubbed++
		st.noteScrubbed()
		if _, err := st.fs.Read(path); err != nil && isIntegrityErr(err) {
			st.noteCorrupt(path, err)
			st.fs.Delete(path)
			st.clearQuarantine(path)
		}
	}
	for _, path := range st.fs.List("") {
		if !strings.Contains(path, "/ckpt.") || strings.HasSuffix(path, ".tmp") {
			continue
		}
		rep.Scrubbed++
		st.noteScrubbed()
		if _, err := st.fs.Read(path); err != nil && isIntegrityErr(err) {
			st.noteCorrupt(path, err)
			st.fs.Delete(path)
			st.clearQuarantine(path)
		}
	}

	if man != nil {
		// Orphan GC: delete only blobs that are provably unreferenced —
		// past the retention window and named by no committed manifest
		// entry (gcGenerations re-derives the referenced set itself).
		removed := st.gcGenerations(gen, man)
		rep.OrphansGCed = removed
		st.orphansGCed.Add(int64(removed))

		// A quarantined store blob the manifest no longer references is
		// moot: nothing will ever load it, so the quarantine lifts without
		// counting a repair.
		for _, path := range st.QuarantinedBlobs() {
			if strings.HasPrefix(path, "store/gen-") && !referenced[path] {
				st.clearQuarantine(path)
			}
		}
	}

	st.scrubPasses.Add(1)
	rep.Corrupt = int(st.integCorrupt.Load() - corruptBefore)
	rep.Repaired = int(st.integRepaired.Load() - repairedBefore)
	rep.Unrepaired = st.QuarantinedBlobs()
	return rep
}

// errOr returns err when non-nil, else a fresh corruption error carrying
// the given detail.
func errOr(err error, detail string) error {
	if err != nil {
		return err
	}
	return &scrubDivergence{detail}
}

// scrubDivergence marks a blob whose stored bytes differ from the
// committed in-memory state; it classifies as dfs.ErrCorrupt.
type scrubDivergence struct{ detail string }

func (d *scrubDivergence) Error() string { return "store: " + d.detail }
func (d *scrubDivergence) Unwrap() error { return dfs.ErrCorrupt }

// runScrubber drives periodic scrub passes until the store closes.
func (st *Store) runScrubber(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-st.rootCtx.Done():
			return
		case <-t.C:
			st.ScrubOnce()
		}
	}
}
