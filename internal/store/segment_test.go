package store

import (
	"bytes"
	"reflect"
	"testing"

	"sigmund/internal/catalog"
	"sigmund/internal/core/hybrid"
	"sigmund/internal/core/inference"
	"sigmund/internal/serving"
)

func testRetailerRecs() *serving.RetailerRecs {
	return &serving.RetailerRecs{
		Recs: map[catalog.ItemID]inference.ItemRecs{
			0: {
				Item:     0,
				View:     []hybrid.Scored{{Item: 1, Score: 0.9}, {Item: 2, Score: 0.5}},
				Purchase: []hybrid.Scored{{Item: 2, Score: 0.8}},
			},
			3: {
				Item:       3,
				View:       []hybrid.Scored{{Item: 0, Score: 0.7}},
				LateFunnel: []hybrid.Scored{{Item: 1, Score: 0.4}},
			},
		},
		TopSellers: []catalog.ItemID{2, 0, 1},
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	rr := testRetailerRecs()
	data := EncodeSegment(rr)
	got, err := DecodeSegment(data)
	if err != nil {
		t.Fatalf("DecodeSegment: %v", err)
	}
	if !reflect.DeepEqual(rr, got) {
		t.Fatalf("round trip mismatch:\n  in:  %+v\n  out: %+v", rr, got)
	}
}

func TestSegmentDeterministic(t *testing.T) {
	rr := testRetailerRecs()
	if !bytes.Equal(EncodeSegment(rr), EncodeSegment(rr)) {
		t.Fatal("EncodeSegment is not byte-deterministic")
	}
}

func TestSegmentRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("BOGUS"),
		EncodeSegment(testRetailerRecs())[:10], // truncated
		append(EncodeSegment(testRetailerRecs()), 0xde, 0xad),        // trailing bytes
		append([]byte(segMagic), 0xff, 0xff, 0xff, 0xff, 0x00, 0x00), // absurd count
	}
	for i, data := range cases {
		if _, err := DecodeSegment(data); err == nil {
			t.Errorf("case %d: DecodeSegment accepted corrupt input", i)
		}
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := &Manifest{
		Generation: 7,
		Entries: []ManifestEntry{
			{Retailer: "zeta", Segment: segmentPath(7, "zeta"), RecsVersion: 7},
			{Retailer: "alpha", Segment: segmentPath(5, "alpha"), RecsVersion: 5, Degraded: true, Phase: "train"},
		},
	}
	got, err := DecodeManifest(EncodeManifest(m))
	if err != nil {
		t.Fatalf("DecodeManifest: %v", err)
	}
	if got.Generation != 7 || len(got.Entries) != 2 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	// EncodeManifest sorts entries by retailer.
	if got.Entries[0].Retailer != "alpha" || got.Entries[1].Retailer != "zeta" {
		t.Fatalf("entries not sorted by retailer: %+v", got.Entries)
	}
	st := got.Entries[0].status()
	if !st.Degraded || st.DegradedPhase != "train" || st.RecsVersion != 5 {
		t.Fatalf("status() lost fields: %+v", st)
	}
}
