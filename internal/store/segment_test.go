package store

import (
	"bytes"
	"reflect"
	"testing"

	"sigmund/internal/catalog"
	"sigmund/internal/core/hybrid"
	"sigmund/internal/core/inference"
	"sigmund/internal/serving"
)

func testRetailerRecs() *serving.RetailerRecs {
	return &serving.RetailerRecs{
		Recs: map[catalog.ItemID]inference.ItemRecs{
			0: {
				Item:     0,
				View:     []hybrid.Scored{{Item: 1, Score: 0.9}, {Item: 2, Score: 0.5}},
				Purchase: []hybrid.Scored{{Item: 2, Score: 0.8}},
			},
			3: {
				Item:       3,
				View:       []hybrid.Scored{{Item: 0, Score: 0.7}},
				LateFunnel: []hybrid.Scored{{Item: 1, Score: 0.4}},
			},
		},
		TopSellers: []catalog.ItemID{2, 0, 1},
	}
}

// materialized flattens either representation into comparable heap form.
func materialized(t *testing.T, rr *serving.RetailerRecs) (map[catalog.ItemID]inference.ItemRecs, []catalog.ItemID) {
	t.Helper()
	if rr.Flat == nil {
		return rr.Recs, rr.TopSellers
	}
	items, top := rr.Flat.Materialize()
	m := make(map[catalog.ItemID]inference.ItemRecs, len(items))
	for _, ir := range items {
		m[ir.Item] = ir
	}
	return m, top
}

func TestSegmentRoundTrip(t *testing.T) {
	rr := testRetailerRecs()
	data := EncodeSegment(rr)
	got, err := DecodeSegment(data)
	if err != nil {
		t.Fatalf("DecodeSegment: %v", err)
	}
	if got.Flat == nil {
		t.Fatal("v2 decode should be flat-backed, got a map")
	}
	gotRecs, gotTop := materialized(t, got)
	if !reflect.DeepEqual(rr.Recs, gotRecs) {
		t.Fatalf("round trip mismatch:\n  in:  %+v\n  out: %+v", rr.Recs, gotRecs)
	}
	if !reflect.DeepEqual(rr.TopSellers, gotTop) {
		t.Fatalf("top sellers mismatch: in %v out %v", rr.TopSellers, gotTop)
	}
	// Re-encoding a flat-backed decode must be the identity.
	if !bytes.Equal(data, EncodeSegment(got)) {
		t.Fatal("encode → decode → encode is not a fixed point")
	}
}

// TestSegmentV1Compatibility proves carry-forward manifests still work:
// bytes written by the previous encoder decode into the same logical recs
// the v2 path serves.
func TestSegmentV1Compatibility(t *testing.T) {
	rr := testRetailerRecs()
	old, err := DecodeSegment(EncodeSegmentV1(rr))
	if err != nil {
		t.Fatalf("decoding v1 segment: %v", err)
	}
	if old.Flat != nil {
		t.Fatal("v1 decode should be map-backed")
	}
	if !reflect.DeepEqual(rr.Recs, old.Recs) || !reflect.DeepEqual(rr.TopSellers, old.TopSellers) {
		t.Fatalf("v1 round trip mismatch: %+v", old)
	}
	// Old-encode → new-serve: re-encoding the v1 decode lands in v2, and
	// the flat view answers lookups with the original lists.
	fresh, err := DecodeSegment(EncodeSegment(old))
	if err != nil {
		t.Fatalf("re-encoding v1 decode: %v", err)
	}
	freshRecs, freshTop := materialized(t, fresh)
	if !reflect.DeepEqual(rr.Recs, freshRecs) || !reflect.DeepEqual(rr.TopSellers, freshTop) {
		t.Fatalf("v1 → v2 migration lost data:\n  in:  %+v\n  out: %+v", rr.Recs, freshRecs)
	}
}

func TestSegmentDeterministic(t *testing.T) {
	rr := testRetailerRecs()
	if !bytes.Equal(EncodeSegment(rr), EncodeSegment(rr)) {
		t.Fatal("EncodeSegment is not byte-deterministic")
	}
}

func TestSegmentRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("BOGUS"),
		EncodeSegment(testRetailerRecs())[:10], // truncated v2
		append(EncodeSegment(testRetailerRecs()), 0xde, 0xad),        // trailing bytes (v2)
		EncodeSegmentV1(testRetailerRecs())[:10],                     // truncated v1
		append(EncodeSegmentV1(testRetailerRecs()), 0xde),            // trailing bytes (v1)
		append([]byte(segMagic), 0xff, 0xff, 0xff, 0xff, 0x00, 0x00), // absurd v1 count
	}
	for i, data := range cases {
		if _, err := DecodeSegment(data); err == nil {
			t.Errorf("case %d: DecodeSegment accepted corrupt input", i)
		}
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := &Manifest{
		Generation: 7,
		Entries: []ManifestEntry{
			{Retailer: "zeta", Segment: segmentPath(7, "zeta"), RecsVersion: 7},
			{Retailer: "alpha", Segment: segmentPath(5, "alpha"), RecsVersion: 5, Degraded: true, Phase: "train"},
		},
	}
	got, err := DecodeManifest(EncodeManifest(m))
	if err != nil {
		t.Fatalf("DecodeManifest: %v", err)
	}
	if got.Generation != 7 || len(got.Entries) != 2 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	// EncodeManifest sorts entries by retailer.
	if got.Entries[0].Retailer != "alpha" || got.Entries[1].Retailer != "zeta" {
		t.Fatalf("entries not sorted by retailer: %+v", got.Entries)
	}
	st := got.Entries[0].status()
	if !st.Degraded || st.DegradedPhase != "train" || st.RecsVersion != 5 {
		t.Fatalf("status() lost fields: %+v", st)
	}
}
