package store

import (
	"bytes"
	"testing"

	"sigmund/internal/catalog"
	"sigmund/internal/core/hybrid"
	"sigmund/internal/core/inference"
	"sigmund/internal/serving"
)

// FuzzSegmentDecode feeds arbitrary bytes to DecodeSegment. Decoding must
// never panic or over-allocate on hostile length prefixes; anything that
// decodes must re-encode canonically (encode → decode → encode is a
// fixed point, byte for byte — scores compare as raw float bits, so NaN
// payloads can't produce false mismatches).
func FuzzSegmentDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("SSEG"))
	f.Add([]byte("XXXX definitely not a segment"))
	f.Add(EncodeSegment(&serving.RetailerRecs{Recs: map[catalog.ItemID]inference.ItemRecs{}}))
	f.Add(EncodeSegment(&serving.RetailerRecs{
		Recs: map[catalog.ItemID]inference.ItemRecs{
			0: {Item: 0, View: []hybrid.Scored{{Item: 1, Score: 0.9}, {Item: 2, Score: 0.8}}},
			1: {Item: 1, Purchase: []hybrid.Scored{{Item: 0, Score: 0.5}}},
		},
		TopSellers: []catalog.ItemID{1, 2, 0},
	}))
	// A count field claiming far more items than the bytes can hold.
	f.Add(append([]byte("SSEG"), 0xff, 0xff, 0xff, 0x7f))

	f.Fuzz(func(t *testing.T, data []byte) {
		rr, err := DecodeSegment(data)
		if err != nil {
			return // rejected input; the only requirement is no panic
		}
		if rr == nil || rr.Recs == nil {
			t.Fatal("successful decode returned a nil payload")
		}
		enc := EncodeSegment(rr)
		rr2, err := DecodeSegment(enc)
		if err != nil {
			t.Fatalf("re-decoding canonical encoding: %v", err)
		}
		if !bytes.Equal(enc, EncodeSegment(rr2)) {
			t.Fatal("encode → decode → encode is not a fixed point")
		}
	})
}
