package store

import (
	"bytes"
	"encoding/binary"
	"testing"

	"sigmund/internal/catalog"
	"sigmund/internal/core/hybrid"
	"sigmund/internal/core/inference"
	"sigmund/internal/dfs"
	"sigmund/internal/interactions"
	"sigmund/internal/segment"
	"sigmund/internal/serving"
)

// FuzzSegmentDecode feeds arbitrary bytes to DecodeSegment. Decoding must
// never panic or over-allocate on hostile length prefixes; anything that
// decodes must re-encode canonically (encode → decode → encode is a
// fixed point, byte for byte — scores compare as raw float bits, so NaN
// payloads can't produce false mismatches).
func FuzzSegmentDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("SSEG"))
	f.Add([]byte("XXXX definitely not a segment"))
	f.Add(EncodeSegment(&serving.RetailerRecs{Recs: map[catalog.ItemID]inference.ItemRecs{}}))
	f.Add(EncodeSegment(&serving.RetailerRecs{
		Recs: map[catalog.ItemID]inference.ItemRecs{
			0: {Item: 0, View: []hybrid.Scored{{Item: 1, Score: 0.9}, {Item: 2, Score: 0.8}}},
			1: {Item: 1, Purchase: []hybrid.Scored{{Item: 0, Score: 0.5}}},
		},
		TopSellers: []catalog.ItemID{1, 2, 0},
	}))
	// A count field claiming far more items than the bytes can hold.
	f.Add(append([]byte("SSEG"), 0xff, 0xff, 0xff, 0x7f))
	// Footer variants: a segment with the dfs integrity footer still
	// attached (a raw stored image that bypassed Read's strip), a footered
	// image truncated into the footer, and one whose footer magic was
	// flipped — the structural layer must reject all three without panic.
	footered := dfs.AppendFooter(EncodeSegment(&serving.RetailerRecs{
		Recs: map[catalog.ItemID]inference.ItemRecs{
			2: {Item: 2, View: []hybrid.Scored{{Item: 3, Score: 0.7}}},
		},
	}))
	f.Add(footered)
	f.Add(footered[:len(footered)-dfs.FooterLen/2])
	magicFlipped := bytes.Clone(footered)
	magicFlipped[len(magicFlipped)-dfs.FooterLen] ^= 0xff
	f.Add(magicFlipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		rr, err := DecodeSegment(data)
		if err != nil {
			return // rejected input; the only requirement is no panic
		}
		if rr == nil || (rr.Recs == nil && rr.Flat == nil) {
			t.Fatal("successful decode returned a nil payload")
		}
		enc := EncodeSegment(rr)
		rr2, err := DecodeSegment(enc)
		if err != nil {
			t.Fatalf("re-decoding canonical encoding: %v", err)
		}
		if !bytes.Equal(enc, EncodeSegment(rr2)) {
			t.Fatal("encode → decode → encode is not a fixed point")
		}
	})
}

// FuzzSegmentLookup hammers the v2 flat-segment parser and its zero-copy
// lookup path: Parse must reject anything structurally unsound, and
// whatever it accepts must survive lookups and a full blend without
// panicking or reading out of bounds. Seeds cover a valid flat segment,
// a truncated index, an off-by-one entry offset, and a v1 segment (which
// the flat parser must refuse — format sniffing handles it upstream).
func FuzzSegmentLookup(f *testing.F) {
	valid := EncodeSegment(&serving.RetailerRecs{
		Recs: map[catalog.ItemID]inference.ItemRecs{
			0: {Item: 0, View: []hybrid.Scored{{Item: 1, Score: 0.9}, {Item: 2, Score: 0.8}}},
			5: {Item: 5, Purchase: []hybrid.Scored{{Item: 0, Score: 0.5}}, LateFunnel: []hybrid.Scored{{Item: 2, Score: 0.4}}},
		},
		TopSellers: []catalog.ItemID{1, 2, 0},
	})
	f.Add(valid)
	f.Add(valid[:len(valid)-1])           // truncated tail
	f.Add(valid[:20])                     // truncated index
	f.Add([]byte(segment.Magic))          // magic only
	f.Add([]byte("SSG2\x01\x00\x00\x00")) // header cut short
	offByOne := bytes.Clone(valid)
	if len(offByOne) > 24 {
		// Bump the first index entry's offset by one.
		off := binary.LittleEndian.Uint32(offByOne[20:24])
		binary.LittleEndian.PutUint32(offByOne[20:24], off+1)
	}
	f.Add(offByOne)
	f.Add(EncodeSegmentV1(&serving.RetailerRecs{ // old format: must be refused here
		Recs:       map[catalog.ItemID]inference.ItemRecs{1: {Item: 1, View: []hybrid.Scored{{Item: 0, Score: 1}}}},
		TopSellers: []catalog.ItemID{0, 1},
	}))
	// A valid segment with the dfs integrity footer still attached: extra
	// trailing bytes must fail the exact-length check, never parse.
	f.Add(dfs.AppendFooter(valid))

	f.Fuzz(func(t *testing.T, data []byte) {
		fl, err := segment.Parse(data)
		if err != nil {
			return // rejected input; the only requirement is no panic
		}
		// Walk the whole index and every list entry: any out-of-bounds
		// layout Parse failed to reject panics here.
		for i := 0; i < fl.NumItems(); i++ {
			id := fl.ItemAt(i)
			ls, ok := fl.Lookup(id)
			if !ok {
				t.Fatalf("indexed item %d not found by Lookup", id)
			}
			for _, l := range []segment.List{ls.View, ls.Purchase, ls.LateFunnel} {
				for j := 0; j < l.Len(); j++ {
					_, _, _ = l.Item(j), l.Score(j), l.Source(j)
				}
			}
		}
		for i := 0; i < fl.NumTopSellers(); i++ {
			_ = fl.TopSeller(i)
		}
		// And the full serve path: blend a context through the flat view.
		srv := serving.NewServer()
		srv.Publish(&serving.Snapshot{
			Version:   1,
			Retailers: map[catalog.RetailerID]*serving.RetailerRecs{"shop": {Flat: fl}},
		})
		ctx := interactions.Context{{Type: interactions.View, Item: 0}}
		if fl.NumItems() > 0 {
			ctx = append(ctx, interactions.Action{Type: interactions.Cart, Item: fl.ItemAt(0)})
		}
		srv.Recommend("shop", ctx, 10)
	})
}
