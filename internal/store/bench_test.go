package store

import (
	"sync"
	"testing"
	"time"

	"sigmund/internal/dfs"
)

// BenchmarkServeRouted measures the routed read path — ring lookup,
// replica selection, fanout bookkeeping, and the embedded replica serve —
// with instantaneous replicas, so the number is pure router overhead.
// Each iteration pushes a fixed batch of requests through concurrent
// clients (single requests are too small to time stably at -benchtime=1x).
// scripts/benchcheck compares ns/op against BENCH_store.json in CI.
func BenchmarkServeRouted(b *testing.B) {
	const (
		clients  = 8
		requests = 10_000
	)
	run := func(b *testing.B, st *Store) {
		b.Helper()
		retailers := testRetailers(64)
		st.Publish(testSnapshot(1, retailers...))
		if err := st.PublishErr(); err != nil {
			b.Fatalf("publish: %v", err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for j := 0; j < requests/clients; j++ {
						if _, _, _, err := st.Serve(retailers[(c*13+j)%len(retailers)], viewCtx(), 5); err != nil {
							b.Error(err)
							return
						}
					}
				}(c)
			}
			wg.Wait()
		}
	}
	b.Run("routed-4x2-10k", func(b *testing.B) {
		st := New(dfs.New(), Options{Shards: 4, Replicas: 2, CacheSize: -1, HedgeAfter: time.Second})
		defer st.Close()
		run(b, st)
	})
	b.Run("routed-cached-10k", func(b *testing.B) {
		st := New(dfs.New(), Options{Shards: 4, Replicas: 2, CacheSize: 4096, HedgeAfter: time.Second})
		defer st.Close()
		run(b, st)
	})
	// The publish path end to end — segment encoding, integrity-footer
	// hashing, the write-verify read-back, manifest write, and the
	// two-phase replica load — so the at-rest integrity machinery's cost
	// stays gated alongside the read path it protects.
	b.Run("publish-4x2-64t", func(b *testing.B) {
		st := New(dfs.New(), Options{Shards: 4, Replicas: 2, CacheSize: -1, HedgeAfter: time.Second})
		defer st.Close()
		retailers := testRetailers(64)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := st.PublishGeneration(testSnapshot(int64(i+1), retailers...)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkServeAdmitted is BenchmarkServeRouted with the admission
// controller in the path at a budget the workload never exhausts, so it
// times the admit fast path (refill arithmetic + tenant lookup) on top of
// routing. scripts/benchcheck compares against BENCH_store_admit.json; a
// regression here means the per-request admission cost grew.
func BenchmarkServeAdmitted(b *testing.B) {
	const (
		clients  = 8
		requests = 10_000
	)
	st := New(dfs.New(), Options{
		Shards: 4, Replicas: 2, CacheSize: -1, HedgeAfter: time.Second,
		AdmitQPS: 1e9, AdmitBurst: 1 << 30,
	})
	defer st.Close()
	retailers := testRetailers(64)
	st.Publish(testSnapshot(1, retailers...))
	if err := st.PublishErr(); err != nil {
		b.Fatalf("publish: %v", err)
	}
	b.Run("admitted-4x2-10k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for j := 0; j < requests/clients; j++ {
						if _, _, _, err := st.Serve(retailers[(c*13+j)%len(retailers)], viewCtx(), 5); err != nil {
							b.Error(err)
							return
						}
					}
				}(c)
			}
			wg.Wait()
		}
		if st.Admitted() == 0 {
			b.Fatal("admission controller was not in the path")
		}
	})
}
