package store

import (
	"sync"
	"sync/atomic"
	"time"

	"sigmund/internal/catalog"
	"sigmund/internal/interactions"
)

// Live canary: when the guard marks a tenant's fresh generation as
// borderline, the publish keeps the tenant's control (previous) segment
// as the main serving path and loads the fresh segment into a side
// serving engine on every replica. The router then deterministically
// hash-slices the tenant's requests: CanaryFraction of user contexts read
// the canary arm, the rest the control arm. Once both arms have enough
// samples the store compares their live behavior — fallback/miss rate,
// errors, latency — and either promotes the canary (the fresh generation
// becomes the main path fleet-wide) or rolls it back (the canary routing
// is dropped; control was already serving, so rollback is just ceasing
// the experiment). A canary left undecided when the next generation
// publishes expires and is counted separately.

// Decision thresholds: the canary is rolled back when its bad-answer
// rate (fallbacks + misses over requests) exceeds control's by more than
// the margin, or its mean latency exceeds control's by more than the
// factor (above a floor that keeps microsecond noise from deciding).
const (
	canaryBadRateMargin  = 0.05
	canaryLatencyFactor  = 3.0
	canaryLatencyFloorNs = int64(2 * time.Millisecond)
)

// canaryState is the controller's live view of one tenant's canary.
type canaryState struct {
	retailer catalog.RetailerID
	fraction float64
	version  int64  // the canary (fresh) generation
	segment  string // the canary segment path, promoted into lastSeg on success

	control canaryArm
	canary  canaryArm

	decided atomic.Bool
	// outcome is "" while undecided, then "promoted" or
	// "rolled_back:<reason>" (or "expired" when the next publish
	// superseded it).
	outcome atomic.Pointer[string]
}

// canaryArm accumulates one arm's live request statistics.
type canaryArm struct {
	requests  atomic.Int64
	bad       atomic.Int64 // fallback or miss answers
	errors    atomic.Int64
	latencyNs atomic.Int64
}

func (a *canaryArm) badRate() float64 {
	n := a.requests.Load() + a.errors.Load()
	if n == 0 {
		return 0
	}
	return float64(a.bad.Load()+a.errors.Load()) / float64(n)
}

func (a *canaryArm) meanLatencyNs() int64 {
	n := a.requests.Load()
	if n == 0 {
		return 0
	}
	return a.latencyNs.Load() / n
}

func (cs *canaryState) outcomeString() string {
	if p := cs.outcome.Load(); p != nil {
		return *p
	}
	return ""
}

// canarySlice deterministically assigns a request to the canary arm: the
// same user context always lands on the same arm, across replicas and
// across runs, so the experiment is a stable population split rather than
// a per-request coin flip.
func canarySlice(r catalog.RetailerID, uctx interactions.Context, fraction float64) bool {
	if fraction <= 0 {
		return false
	}
	if fraction >= 1 {
		return true
	}
	// Inline FNV-1a over the retailer and the context's actions.
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(r); i++ {
		h = (h ^ uint64(r[i])) * prime64
	}
	for _, a := range uctx {
		h = (h ^ uint64(a.Type)) * prime64
		it := uint32(a.Item)
		h = (h ^ uint64(it&0xff)) * prime64
		h = (h ^ uint64((it>>8)&0xff)) * prime64
		h = (h ^ uint64((it>>16)&0xff)) * prime64
		h = (h ^ uint64(it>>24)) * prime64
	}
	return h%10000 < uint64(fraction*10000+0.5)
}

// canaryController holds the store's active canaries, rebuilt from the
// manifest on every publish.
type canaryController struct {
	mu       sync.RWMutex
	canaries map[catalog.RetailerID]*canaryState
	resolved []*canaryState // decided or expired this generation, for /statz
}

func (cc *canaryController) get(r catalog.RetailerID) *canaryState {
	cc.mu.RLock()
	defer cc.mu.RUnlock()
	return cc.canaries[r]
}

func (cc *canaryController) active() int {
	cc.mu.RLock()
	defer cc.mu.RUnlock()
	return len(cc.canaries)
}

// remove moves a decided canary out of the active set (it stays visible
// in resolved until the next publish).
func (cc *canaryController) remove(cs *canaryState) {
	cc.mu.Lock()
	if cc.canaries[cs.retailer] == cs {
		delete(cc.canaries, cs.retailer)
		cc.resolved = append(cc.resolved, cs)
	}
	cc.mu.Unlock()
}

// reset replaces the active set after a publish, returning any canaries
// the new generation superseded while they were still undecided.
func (cc *canaryController) reset(fresh map[catalog.RetailerID]*canaryState) []*canaryState {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	var expired []*canaryState
	for _, cs := range cc.canaries {
		if !cs.decided.Load() {
			expired = append(expired, cs)
		}
	}
	cc.canaries = fresh
	cc.resolved = nil
	return expired
}

// snapshotStates returns the active and resolved canaries for /statz.
func (cc *canaryController) snapshotStates() []*canaryState {
	cc.mu.RLock()
	defer cc.mu.RUnlock()
	out := make([]*canaryState, 0, len(cc.canaries)+len(cc.resolved))
	for _, cs := range cc.canaries {
		out = append(out, cs)
	}
	out = append(out, cc.resolved...)
	return out
}
