package store

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sigmund/internal/catalog"
	"sigmund/internal/dfs"
	"sigmund/internal/faults"
	"sigmund/internal/interactions"
	"sigmund/internal/obs"
	"sigmund/internal/serving"
)

// Replica is one copy of a shard's data: an embedded single-node serving
// engine holding the immutable segments of the shard's current generation.
// Publishes are two-phase — prepare bulk-loads the next generation's
// segments from the shared filesystem into a staged snapshot, commit swaps
// it in atomically — so a failed load never tears the serving generation.
//
// A replica simulates one machine: an optional per-request service time
// and a bounded concurrency gate model its capacity, and the fault plan
// (faults.OpReplica) can crash it, stall it, or fail individual requests.
type Replica struct {
	shard, idx int
	// srv reports into a private observer: replica-internal serving
	// counters would collide across shards in the shared registry (every
	// shard holds a different tenant subset); the store's own
	// sigmund_store_* metrics carry the fleet-wide signal instead.
	srv *serving.Server
	// canary is a second serving engine holding canaried tenants' fresh
	// generation; the router sends those tenants' canary hash-slice here
	// while srv keeps serving the control generation.
	canary *serving.Server

	gen  atomic.Int64 // generation currently being served
	down atomic.Bool  // crashed (by chaos or Kill) until revived

	mu            sync.Mutex
	pending       *serving.Snapshot // staged by prepare, swapped in by commit
	pendingCanary *serving.Snapshot
	// mainSnap/canarySnap are the last committed snapshots, retained so a
	// canary resolution can rebuild either side without refetching segments.
	mainSnap   *serving.Snapshot
	canarySnap *serving.Snapshot

	plan  faults.ReplicaPlanFunc
	delay time.Duration // simulated per-request service time
	gate  chan struct{} // bounded concurrency (nil = unlimited)

	// consecFails drives the router's health ordering: replicas failing
	// repeatedly are tried last until a success clears them.
	consecFails atomic.Int64
	served      atomic.Int64
	cancelled   atomic.Int64
	// inflight is the live queue depth the control plane routes and scales
	// on: requests currently inside get(), including gate waiters.
	inflight atomic.Int64
}

func newReplica(shard, idx int, opts Options) *Replica {
	rep := &Replica{
		shard:  shard,
		idx:    idx,
		srv:    serving.NewServerWithObs(obs.NewObserver()),
		canary: serving.NewServerWithObs(obs.NewObserver()),
		plan:   opts.Faults.ReplicaPlan(),
		delay:  opts.ServeDelay,
	}
	if opts.ReplicaConcurrency > 0 {
		rep.gate = make(chan struct{}, opts.ReplicaConcurrency)
	}
	return rep
}

// errReplicaDown is returned by operations on a crashed replica.
type errReplicaDown struct{ shard, idx int }

func (e errReplicaDown) Error() string {
	return fmt.Sprintf("store: replica %d/%d is down", e.shard, e.idx)
}

// Gen returns the generation the replica currently serves.
func (rep *Replica) Gen() int64 { return rep.gen.Load() }

// Down reports whether the replica is crashed.
func (rep *Replica) Down() bool { return rep.down.Load() }

// Kill crashes the replica: every operation fails until Revive.
func (rep *Replica) Kill() { rep.down.Store(true) }

// healthy reports whether the router should prefer this replica.
func (rep *Replica) healthy() bool { return rep.consecFails.Load() < 3 }

// Served and Cancelled report how many requests this replica answered and
// how many were abandoned mid-flight by context cancellation (hedge
// losers, Close).
func (rep *Replica) Served() int64    { return rep.served.Load() }
func (rep *Replica) Cancelled() int64 { return rep.cancelled.Load() }

// Inflight reports the replica's live queue depth — requests currently
// being answered (or waiting on the concurrency gate). The
// power-of-two-choices picker and the autoscaler both read it.
func (rep *Replica) Inflight() int64 { return rep.inflight.Load() }

func (rep *Replica) servePath(r catalog.RetailerID) string {
	return fmt.Sprintf("shard-%d/replica-%d/serve/%s", rep.shard, rep.idx, r)
}

func (rep *Replica) loadPath(gen int64) string {
	return fmt.Sprintf("shard-%d/replica-%d/load/gen-%d", rep.shard, rep.idx, gen)
}

// get answers one request from the replica's current generation. It honors
// ctx throughout — a hedge winner elsewhere cancels this replica's work —
// and consults the fault plan first, so chaos rules can crash, stall, or
// fail it.
func (rep *Replica) get(ctx context.Context, r catalog.RetailerID, uctx interactions.Context, k int, canaryArm bool) ([]serving.Recommendation, serving.Source, int64, error) {
	rep.inflight.Add(1)
	defer rep.inflight.Add(-1)
	if rep.down.Load() {
		rep.consecFails.Add(1)
		return nil, serving.SourceNone, 0, errReplicaDown{rep.shard, rep.idx}
	}
	if rep.plan != nil {
		switch fault, delay := rep.plan(rep.servePath(r)); fault {
		case faults.ReplicaCrash:
			rep.Kill()
			rep.consecFails.Add(1)
			return nil, serving.SourceNone, 0, errReplicaDown{rep.shard, rep.idx}
		case faults.ReplicaStall:
			// The replica is frozen, not dead: it answers after the stall
			// unless the request was already won elsewhere.
			if err := sleepCtx(ctx, delay); err != nil {
				rep.cancelled.Add(1)
				return nil, serving.SourceNone, 0, err
			}
		case faults.ReplicaFail:
			rep.consecFails.Add(1)
			return nil, serving.SourceNone, 0, fmt.Errorf("store: injected failure on replica %d/%d", rep.shard, rep.idx)
		}
	}
	if rep.gate != nil {
		select {
		case rep.gate <- struct{}{}:
			defer func() { <-rep.gate }()
		case <-ctx.Done():
			rep.cancelled.Add(1)
			return nil, serving.SourceNone, 0, ctx.Err()
		}
	}
	if rep.delay > 0 {
		if err := sleepCtx(ctx, rep.delay); err != nil {
			rep.cancelled.Add(1)
			return nil, serving.SourceNone, 0, err
		}
	}
	if err := ctx.Err(); err != nil {
		rep.cancelled.Add(1)
		return nil, serving.SourceNone, 0, err
	}
	srv := rep.srv
	if canaryArm && rep.canaryServes(r) {
		srv = rep.canary
	}
	recs, src := srv.RecommendWithSource(r, uctx, k)
	rep.consecFails.Store(0)
	rep.served.Add(1)
	return recs, src, rep.srv.Version(), nil
}

// canaryServes reports whether this replica holds canary data for the
// retailer (routing falls back to the control engine otherwise, e.g. on a
// replica that missed the canary's publish).
func (rep *Replica) canaryServes(r catalog.RetailerID) bool {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	return rep.canarySnap != nil && rep.canarySnap.Retailers[r] != nil
}

// prepare bulk-loads the generation's segments for the given manifest
// entries (already filtered to this replica's shard) and stages the result.
// The currently served generation is untouched; a failure leaves the
// replica serving exactly what it served before.
//
// Every segment is verified at load time — this is the only verification
// point on the serving side, so the per-request hot path stays zero-copy
// and checksum-free. A segment that fails verification is quarantined and
// repaired if possible (re-read, then a peer replica's in-memory copy);
// when repair fails, the replica keeps its own current copy of that
// tenant — gen N−1, marked degraded with phase "integrity" — so a corrupt
// blob degrades freshness, never correctness. res carries the store-level
// integrity machinery; a nil res restores strict fail-the-load semantics.
func (rep *Replica) prepare(fs *dfs.FS, gen int64, entries []ManifestEntry, res *segmentResolver) error {
	if rep.down.Load() {
		return errReplicaDown{rep.shard, rep.idx}
	}
	if rep.plan != nil {
		switch fault, delay := rep.plan(rep.loadPath(gen)); fault {
		case faults.ReplicaCrash:
			rep.Kill()
			return errReplicaDown{rep.shard, rep.idx}
		case faults.ReplicaStall:
			time.Sleep(delay)
		case faults.ReplicaFail:
			return fmt.Errorf("store: injected load failure on replica %d/%d", rep.shard, rep.idx)
		}
	}
	snap := &serving.Snapshot{
		Version:   gen,
		Retailers: make(map[catalog.RetailerID]*serving.RetailerRecs, len(entries)),
		Status:    make(map[catalog.RetailerID]*serving.TenantStatus, len(entries)),
	}
	for _, e := range entries {
		rr, integrity, err := rep.loadEntry(fs, e, res, false)
		ts := e.status()
		if err != nil {
			if !integrity {
				return fmt.Errorf("store: replica %d/%d loading %s: %w", rep.shard, rep.idx, e.Retailer, err)
			}
			// Unrepairable right now: fall back to this replica's current
			// copy of the tenant (the previous committed generation) inside
			// the new snapshot. The tenant serves gen N−1 — stale, marked,
			// and correct — instead of poison or an outage.
			prevRR, prevTS := rep.prevCopy(e.Retailer)
			if prevRR == nil {
				return fmt.Errorf("store: replica %d/%d loading %s (no previous copy to fall back to): %w",
					rep.shard, rep.idx, e.Retailer, err)
			}
			res.st.integFallbacks.Add(1)
			rr, ts = prevRR, prevTS
			ts.Degraded = true
			ts.DegradedPhase = "integrity"
		}
		snap.Retailers[e.Retailer] = rr
		snap.Status[e.Retailer] = ts
	}
	// Stage the canary side too — always, even empty, so committing a
	// generation with no canaries clears any prior generation's.
	canary := &serving.Snapshot{
		Version:   gen,
		Retailers: map[catalog.RetailerID]*serving.RetailerRecs{},
		Status:    map[catalog.RetailerID]*serving.TenantStatus{},
	}
	for _, e := range entries {
		if e.CanarySegment == "" {
			continue
		}
		rr, integrity, err := rep.loadEntry(fs, e, res, true)
		if err != nil {
			if !integrity {
				return fmt.Errorf("store: replica %d/%d loading canary %s: %w", rep.shard, rep.idx, e.Retailer, err)
			}
			// A corrupt, unrepairable canary segment is dropped: the
			// control arm serves the whole population (the incident is
			// already counted and the path quarantined).
			continue
		}
		canary.Retailers[e.Retailer] = rr
		canary.Status[e.Retailer] = &serving.TenantStatus{RecsVersion: e.CanaryVersion}
	}
	rep.mu.Lock()
	rep.pending = snap
	rep.pendingCanary = canary
	rep.mu.Unlock()
	return nil
}

// loadEntry fetches one manifest entry's segment (main or canary side)
// with verification. With a resolver, detection and the escalating repair
// ladder run here: verified re-reads first (inside fetchVerified), then a
// healthy peer replica's in-memory copy, which also heals the file on
// shared storage for every future reader. Without a resolver it is a
// plain read + decode and integrity is never reported, restoring the old
// strict fail-the-load semantics.
func (rep *Replica) loadEntry(fs *dfs.FS, e ManifestEntry, res *segmentResolver, canary bool) (*serving.RetailerRecs, bool, error) {
	path := e.Segment
	if canary {
		path = e.CanarySegment
	}
	if res == nil {
		data, err := fs.Read(path)
		if err != nil {
			return nil, false, err
		}
		rr, err := DecodeSegment(data)
		return rr, false, err
	}
	rr, integrity, err := res.st.fetchVerified(path)
	if err == nil {
		return rr, false, nil
	}
	if !integrity {
		return nil, false, err
	}
	if data := res.peerBytes(e, rep, canary); data != nil {
		if rr, derr := DecodeSegment(data); derr == nil {
			res.healFile(path, data)
			return rr, true, nil
		}
	}
	return nil, true, err
}

// segmentBytes re-encodes this replica's committed in-memory copy of one
// manifest entry's segment, or nil when the replica does not hold exactly
// the referenced version. This is the redundancy the repair path draws
// on: for flat (v2) segments the encoding is the original blob bytes.
func (rep *Replica) segmentBytes(e ManifestEntry, canary bool) []byte {
	r, version := e.Retailer, e.RecsVersion
	rep.mu.Lock()
	snap := rep.mainSnap
	if canary {
		snap = rep.canarySnap
		version = e.CanaryVersion
	}
	rep.mu.Unlock()
	if snap == nil {
		return nil
	}
	rr, ts := snap.Retailers[r], snap.Status[r]
	if rr == nil || ts == nil || ts.RecsVersion != version {
		return nil
	}
	return EncodeSegment(rr)
}

// prevCopy returns this replica's committed copy of one tenant (the
// generation it currently serves) plus a copy of its status — the
// fallback data for a tenant whose fresh segment is unrepairable.
func (rep *Replica) prevCopy(r catalog.RetailerID) (*serving.RetailerRecs, *serving.TenantStatus) {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if rep.mainSnap == nil {
		return nil, nil
	}
	rr := rep.mainSnap.Retailers[r]
	if rr == nil {
		return nil, nil
	}
	ts := serving.TenantStatus{}
	if s := rep.mainSnap.Status[r]; s != nil {
		ts = *s
	}
	return rr, &ts
}

// commit atomically swaps the staged generation in. Committing without a
// staged snapshot is a no-op (false).
func (rep *Replica) commit(gen int64) bool {
	rep.mu.Lock()
	snap, canary := rep.pending, rep.pendingCanary
	rep.pending, rep.pendingCanary = nil, nil
	rep.mu.Unlock()
	if snap == nil || snap.Version != gen {
		return false
	}
	rep.srv.Publish(snap)
	if canary != nil {
		rep.canary.Publish(canary)
	}
	rep.mu.Lock()
	rep.mainSnap = snap
	if canary != nil {
		rep.canarySnap = canary
	}
	rep.mu.Unlock()
	rep.gen.Store(gen)
	return true
}

// abort drops any staged snapshot.
func (rep *Replica) abort() {
	rep.mu.Lock()
	rep.pending = nil
	rep.pendingCanary = nil
	rep.mu.Unlock()
}

// resolveCanary ends one tenant's canary on this replica: on promote the
// canary data becomes the tenant's main serving data; either way the
// tenant leaves the canary engine, so its whole population converges on
// one generation.
func (rep *Replica) resolveCanary(r catalog.RetailerID, promote bool) {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if rep.canarySnap == nil || rep.canarySnap.Retailers[r] == nil {
		return
	}
	if promote && rep.mainSnap != nil {
		main := copySnapshot(rep.mainSnap)
		main.Retailers[r] = rep.canarySnap.Retailers[r]
		st := serving.TenantStatus{}
		if cst := rep.canarySnap.Status[r]; cst != nil {
			st = *cst
		}
		main.Status[r] = &st
		rep.srv.Publish(main)
		rep.mainSnap = main
	}
	can := copySnapshot(rep.canarySnap)
	delete(can.Retailers, r)
	delete(can.Status, r)
	rep.canary.Publish(can)
	rep.canarySnap = can
}

// copySnapshot shallow-copies a snapshot's maps so a canary resolution can
// republish a mutated view without racing readers of the original.
func copySnapshot(s *serving.Snapshot) *serving.Snapshot {
	out := &serving.Snapshot{
		Version:   s.Version,
		Retailers: make(map[catalog.RetailerID]*serving.RetailerRecs, len(s.Retailers)),
		Status:    make(map[catalog.RetailerID]*serving.TenantStatus, len(s.Status)),
	}
	for k, v := range s.Retailers {
		out.Retailers[k] = v
	}
	for k, v := range s.Status {
		out.Status[k] = v
	}
	return out
}

// sleepCtx sleeps for d or until ctx is cancelled, returning ctx's error
// in the latter case.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
