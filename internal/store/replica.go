package store

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sigmund/internal/catalog"
	"sigmund/internal/dfs"
	"sigmund/internal/faults"
	"sigmund/internal/interactions"
	"sigmund/internal/obs"
	"sigmund/internal/serving"
)

// Replica is one copy of a shard's data: an embedded single-node serving
// engine holding the immutable segments of the shard's current generation.
// Publishes are two-phase — prepare bulk-loads the next generation's
// segments from the shared filesystem into a staged snapshot, commit swaps
// it in atomically — so a failed load never tears the serving generation.
//
// A replica simulates one machine: an optional per-request service time
// and a bounded concurrency gate model its capacity, and the fault plan
// (faults.OpReplica) can crash it, stall it, or fail individual requests.
type Replica struct {
	shard, idx int
	// srv reports into a private observer: replica-internal serving
	// counters would collide across shards in the shared registry (every
	// shard holds a different tenant subset); the store's own
	// sigmund_store_* metrics carry the fleet-wide signal instead.
	srv *serving.Server
	// canary is a second serving engine holding canaried tenants' fresh
	// generation; the router sends those tenants' canary hash-slice here
	// while srv keeps serving the control generation.
	canary *serving.Server

	gen  atomic.Int64 // generation currently being served
	down atomic.Bool  // crashed (by chaos or Kill) until revived

	mu            sync.Mutex
	pending       *serving.Snapshot // staged by prepare, swapped in by commit
	pendingCanary *serving.Snapshot
	// mainSnap/canarySnap are the last committed snapshots, retained so a
	// canary resolution can rebuild either side without refetching segments.
	mainSnap   *serving.Snapshot
	canarySnap *serving.Snapshot

	plan  faults.ReplicaPlanFunc
	delay time.Duration // simulated per-request service time
	gate  chan struct{} // bounded concurrency (nil = unlimited)

	// consecFails drives the router's health ordering: replicas failing
	// repeatedly are tried last until a success clears them.
	consecFails atomic.Int64
	served      atomic.Int64
	cancelled   atomic.Int64
	// inflight is the live queue depth the control plane routes and scales
	// on: requests currently inside get(), including gate waiters.
	inflight atomic.Int64
}

func newReplica(shard, idx int, opts Options) *Replica {
	rep := &Replica{
		shard:  shard,
		idx:    idx,
		srv:    serving.NewServerWithObs(obs.NewObserver()),
		canary: serving.NewServerWithObs(obs.NewObserver()),
		plan:   opts.Faults.ReplicaPlan(),
		delay:  opts.ServeDelay,
	}
	if opts.ReplicaConcurrency > 0 {
		rep.gate = make(chan struct{}, opts.ReplicaConcurrency)
	}
	return rep
}

// errReplicaDown is returned by operations on a crashed replica.
type errReplicaDown struct{ shard, idx int }

func (e errReplicaDown) Error() string {
	return fmt.Sprintf("store: replica %d/%d is down", e.shard, e.idx)
}

// Gen returns the generation the replica currently serves.
func (rep *Replica) Gen() int64 { return rep.gen.Load() }

// Down reports whether the replica is crashed.
func (rep *Replica) Down() bool { return rep.down.Load() }

// Kill crashes the replica: every operation fails until Revive.
func (rep *Replica) Kill() { rep.down.Store(true) }

// healthy reports whether the router should prefer this replica.
func (rep *Replica) healthy() bool { return rep.consecFails.Load() < 3 }

// Served and Cancelled report how many requests this replica answered and
// how many were abandoned mid-flight by context cancellation (hedge
// losers, Close).
func (rep *Replica) Served() int64    { return rep.served.Load() }
func (rep *Replica) Cancelled() int64 { return rep.cancelled.Load() }

// Inflight reports the replica's live queue depth — requests currently
// being answered (or waiting on the concurrency gate). The
// power-of-two-choices picker and the autoscaler both read it.
func (rep *Replica) Inflight() int64 { return rep.inflight.Load() }

func (rep *Replica) servePath(r catalog.RetailerID) string {
	return fmt.Sprintf("shard-%d/replica-%d/serve/%s", rep.shard, rep.idx, r)
}

func (rep *Replica) loadPath(gen int64) string {
	return fmt.Sprintf("shard-%d/replica-%d/load/gen-%d", rep.shard, rep.idx, gen)
}

// get answers one request from the replica's current generation. It honors
// ctx throughout — a hedge winner elsewhere cancels this replica's work —
// and consults the fault plan first, so chaos rules can crash, stall, or
// fail it.
func (rep *Replica) get(ctx context.Context, r catalog.RetailerID, uctx interactions.Context, k int, canaryArm bool) ([]serving.Recommendation, serving.Source, int64, error) {
	rep.inflight.Add(1)
	defer rep.inflight.Add(-1)
	if rep.down.Load() {
		rep.consecFails.Add(1)
		return nil, serving.SourceNone, 0, errReplicaDown{rep.shard, rep.idx}
	}
	if rep.plan != nil {
		switch fault, delay := rep.plan(rep.servePath(r)); fault {
		case faults.ReplicaCrash:
			rep.Kill()
			rep.consecFails.Add(1)
			return nil, serving.SourceNone, 0, errReplicaDown{rep.shard, rep.idx}
		case faults.ReplicaStall:
			// The replica is frozen, not dead: it answers after the stall
			// unless the request was already won elsewhere.
			if err := sleepCtx(ctx, delay); err != nil {
				rep.cancelled.Add(1)
				return nil, serving.SourceNone, 0, err
			}
		case faults.ReplicaFail:
			rep.consecFails.Add(1)
			return nil, serving.SourceNone, 0, fmt.Errorf("store: injected failure on replica %d/%d", rep.shard, rep.idx)
		}
	}
	if rep.gate != nil {
		select {
		case rep.gate <- struct{}{}:
			defer func() { <-rep.gate }()
		case <-ctx.Done():
			rep.cancelled.Add(1)
			return nil, serving.SourceNone, 0, ctx.Err()
		}
	}
	if rep.delay > 0 {
		if err := sleepCtx(ctx, rep.delay); err != nil {
			rep.cancelled.Add(1)
			return nil, serving.SourceNone, 0, err
		}
	}
	if err := ctx.Err(); err != nil {
		rep.cancelled.Add(1)
		return nil, serving.SourceNone, 0, err
	}
	srv := rep.srv
	if canaryArm && rep.canaryServes(r) {
		srv = rep.canary
	}
	recs, src := srv.RecommendWithSource(r, uctx, k)
	rep.consecFails.Store(0)
	rep.served.Add(1)
	return recs, src, rep.srv.Version(), nil
}

// canaryServes reports whether this replica holds canary data for the
// retailer (routing falls back to the control engine otherwise, e.g. on a
// replica that missed the canary's publish).
func (rep *Replica) canaryServes(r catalog.RetailerID) bool {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	return rep.canarySnap != nil && rep.canarySnap.Retailers[r] != nil
}

// prepare bulk-loads the generation's segments for the given manifest
// entries (already filtered to this replica's shard) and stages the result.
// The currently served generation is untouched; a failure leaves the
// replica serving exactly what it served before.
func (rep *Replica) prepare(fs *dfs.FS, gen int64, entries []ManifestEntry) error {
	if rep.down.Load() {
		return errReplicaDown{rep.shard, rep.idx}
	}
	if rep.plan != nil {
		switch fault, delay := rep.plan(rep.loadPath(gen)); fault {
		case faults.ReplicaCrash:
			rep.Kill()
			return errReplicaDown{rep.shard, rep.idx}
		case faults.ReplicaStall:
			time.Sleep(delay)
		case faults.ReplicaFail:
			return fmt.Errorf("store: injected load failure on replica %d/%d", rep.shard, rep.idx)
		}
	}
	snap := &serving.Snapshot{
		Version:   gen,
		Retailers: make(map[catalog.RetailerID]*serving.RetailerRecs, len(entries)),
		Status:    make(map[catalog.RetailerID]*serving.TenantStatus, len(entries)),
	}
	for _, e := range entries {
		data, err := fs.Read(e.Segment)
		if err != nil {
			return fmt.Errorf("store: replica %d/%d loading %s: %w", rep.shard, rep.idx, e.Retailer, err)
		}
		rr, err := DecodeSegment(data)
		if err != nil {
			return fmt.Errorf("store: replica %d/%d loading %s: %w", rep.shard, rep.idx, e.Retailer, err)
		}
		snap.Retailers[e.Retailer] = rr
		snap.Status[e.Retailer] = e.status()
	}
	// Stage the canary side too — always, even empty, so committing a
	// generation with no canaries clears any prior generation's.
	canary := &serving.Snapshot{
		Version:   gen,
		Retailers: map[catalog.RetailerID]*serving.RetailerRecs{},
		Status:    map[catalog.RetailerID]*serving.TenantStatus{},
	}
	for _, e := range entries {
		if e.CanarySegment == "" {
			continue
		}
		data, err := fs.Read(e.CanarySegment)
		if err != nil {
			return fmt.Errorf("store: replica %d/%d loading canary %s: %w", rep.shard, rep.idx, e.Retailer, err)
		}
		rr, err := DecodeSegment(data)
		if err != nil {
			return fmt.Errorf("store: replica %d/%d loading canary %s: %w", rep.shard, rep.idx, e.Retailer, err)
		}
		canary.Retailers[e.Retailer] = rr
		canary.Status[e.Retailer] = &serving.TenantStatus{RecsVersion: e.CanaryVersion}
	}
	rep.mu.Lock()
	rep.pending = snap
	rep.pendingCanary = canary
	rep.mu.Unlock()
	return nil
}

// commit atomically swaps the staged generation in. Committing without a
// staged snapshot is a no-op (false).
func (rep *Replica) commit(gen int64) bool {
	rep.mu.Lock()
	snap, canary := rep.pending, rep.pendingCanary
	rep.pending, rep.pendingCanary = nil, nil
	rep.mu.Unlock()
	if snap == nil || snap.Version != gen {
		return false
	}
	rep.srv.Publish(snap)
	if canary != nil {
		rep.canary.Publish(canary)
	}
	rep.mu.Lock()
	rep.mainSnap = snap
	if canary != nil {
		rep.canarySnap = canary
	}
	rep.mu.Unlock()
	rep.gen.Store(gen)
	return true
}

// abort drops any staged snapshot.
func (rep *Replica) abort() {
	rep.mu.Lock()
	rep.pending = nil
	rep.pendingCanary = nil
	rep.mu.Unlock()
}

// resolveCanary ends one tenant's canary on this replica: on promote the
// canary data becomes the tenant's main serving data; either way the
// tenant leaves the canary engine, so its whole population converges on
// one generation.
func (rep *Replica) resolveCanary(r catalog.RetailerID, promote bool) {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if rep.canarySnap == nil || rep.canarySnap.Retailers[r] == nil {
		return
	}
	if promote && rep.mainSnap != nil {
		main := copySnapshot(rep.mainSnap)
		main.Retailers[r] = rep.canarySnap.Retailers[r]
		st := serving.TenantStatus{}
		if cst := rep.canarySnap.Status[r]; cst != nil {
			st = *cst
		}
		main.Status[r] = &st
		rep.srv.Publish(main)
		rep.mainSnap = main
	}
	can := copySnapshot(rep.canarySnap)
	delete(can.Retailers, r)
	delete(can.Status, r)
	rep.canary.Publish(can)
	rep.canarySnap = can
}

// copySnapshot shallow-copies a snapshot's maps so a canary resolution can
// republish a mutated view without racing readers of the original.
func copySnapshot(s *serving.Snapshot) *serving.Snapshot {
	out := &serving.Snapshot{
		Version:   s.Version,
		Retailers: make(map[catalog.RetailerID]*serving.RetailerRecs, len(s.Retailers)),
		Status:    make(map[catalog.RetailerID]*serving.TenantStatus, len(s.Status)),
	}
	for k, v := range s.Retailers {
		out.Retailers[k] = v
	}
	for k, v := range s.Status {
		out.Status[k] = v
	}
	return out
}

// sleepCtx sleeps for d or until ctx is cancelled, returning ctx's error
// in the latter case.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
