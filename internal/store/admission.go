package store

import (
	"sync"
	"sync/atomic"
	"time"
)

// admitter is the store's token-bucket admission controller with
// per-tenant fair budgets — the first stage of the request control plane
// (admission → routing → autoscaling). One fleet-wide bucket refills at
// AdmitQPS tokens per second and hard-caps the admitted rate; on top of it
// every active tenant owns a private bucket refilling at an equal share of
// the global rate (weighted max-min with equal weights). A request is
// admitted from its tenant's own share first — in-share admits never
// consult the global level, only debit it — and a tenant past its share
// may borrow, but only while the global bucket holds surplus above a
// reserve. A zipf-hot tenant flooding at a multiple of capacity therefore
// soaks up exactly the idle capacity and its own share, while tenants
// under their share never see its overload.
//
// The admit path is allocation-free (guarded by a testing.AllocsPerRun
// test): one mutex, float refill arithmetic, and a map lookup. Tenants
// idle past idleAfter are swept so fair shares recover as traffic shifts.
type admitter struct {
	mu    sync.Mutex
	rate  float64 // global refill, tokens/second
	burst float64 // global bucket capacity
	// reserve is the borrow floor: surplus below it is off-limits to
	// over-share tenants, so in-share admits (which only need one global
	// token) never starve behind a flooding neighbor.
	reserve float64
	global  float64
	last    time.Duration

	tenants   map[string]*tenantBucket
	idleAfter time.Duration
	lastSweep time.Duration

	// epoch anchors the wall clock; now overrides it for deterministic
	// unit tests (nil = time.Since(epoch)).
	epoch time.Time
	now   func() time.Duration

	admitted atomic.Int64
	rejected atomic.Int64
}

// tenantBucket is one tenant's fair-share budget. last doubles as the
// tenant's last-seen time for the idle sweep.
type tenantBucket struct {
	tokens float64
	last   time.Duration
}

// newAdmitter builds the controller for a global budget of rate
// requests/second. burst <= 0 defaults to a quarter second of budget,
// floored at 16 tokens. A rate <= 0 disables admission (nil admitter; all
// methods are nil-safe).
func newAdmitter(rate float64, burst int) *admitter {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if b <= 0 {
		b = rate / 4
		if b < 16 {
			b = 16
		}
	}
	a := &admitter{
		rate:      rate,
		burst:     b,
		reserve:   b / 4,
		global:    b,
		tenants:   make(map[string]*tenantBucket),
		idleAfter: 10 * time.Second,
		epoch:     time.Now(),
	}
	if a.reserve < 1 {
		a.reserve = 1
	}
	return a
}

func (a *admitter) clock() time.Duration {
	if a.now != nil {
		return a.now()
	}
	return time.Since(a.epoch)
}

// admit decides one request. True consumes one global token (and one of
// the tenant's own when it admits in-share); false is a rejection the
// caller surfaces as ErrAdmission (after the brownout ladder).
func (a *admitter) admit(tenant string) bool {
	if a == nil {
		return true
	}
	now := a.clock()
	a.mu.Lock()
	if dt := now - a.last; dt > 0 {
		a.global += a.rate * dt.Seconds()
		if a.global > a.burst {
			a.global = a.burst
		}
		a.last = now
	}
	tb, fresh := a.tenants[tenant], false
	if tb == nil {
		tb = &tenantBucket{last: now}
		a.tenants[tenant] = tb
		fresh = true
	}
	// Equal fair shares over the tenants currently active. Recomputed on
	// every admit so shares track the live tenant set, not a stale census.
	n := float64(len(a.tenants))
	share := a.rate / n
	shareBurst := a.burst / n
	if shareBurst < 1 {
		shareBurst = 1
	}
	if fresh {
		// A new tenant starts with its full share of burst so its first
		// requests aren't at the mercy of the borrow reserve.
		tb.tokens = shareBurst
	} else if dt := now - tb.last; dt > 0 {
		tb.tokens += share * dt.Seconds()
		if tb.tokens > shareBurst {
			tb.tokens = shareBurst
		}
		tb.last = now
	}
	ok := false
	switch {
	case fresh:
		// A tenant's first request of an accounting epoch always admits: it
		// cannot be over a budget it never drew on, and its arrival must not
		// depend on how hard the incumbents are flooding (a solo flooder's
		// in-share spend tracks the full refill rate, pinning the global
		// bucket near empty). The draw may push the global bucket into
		// debt, bounded by the tenant census and paid down by refill before
		// anyone else admits.
		tb.tokens--
		a.global--
		ok = true
	case tb.tokens >= 1:
		// In-share: the tenant spends its own budget. Like the fresh case,
		// the draw may push the global bucket into debt — per-tenant refills
		// sum to the global refill rate and per-tenant bursts sum to the
		// global burst, so the debt is bounded by one burst and paid down
		// before any borrowing resumes. Gating in-share admits on the global
		// bucket instead would let a flooding neighbor pin it near zero and
		// reject tenants inside their own share — exactly the unfairness the
		// per-tenant buckets exist to prevent.
		tb.tokens--
		a.global--
		ok = true
	case a.global >= 1+a.reserve:
		// Over-share: work conservation lets the tenant borrow idle
		// capacity, but never the reserve backing everyone's shares.
		a.global--
		ok = true
	}
	if now-a.lastSweep > a.idleAfter {
		a.lastSweep = now
		for id, b := range a.tenants {
			if now-b.last > a.idleAfter {
				delete(a.tenants, id)
			}
		}
	}
	a.mu.Unlock()
	if ok {
		a.admitted.Add(1)
	} else {
		a.rejected.Add(1)
	}
	return ok
}

// stats reports lifetime admits/rejects and the active tenant census.
func (a *admitter) stats() (admitted, rejected int64, tenants int) {
	if a == nil {
		return 0, 0, 0
	}
	a.mu.Lock()
	tenants = len(a.tenants)
	a.mu.Unlock()
	return a.admitted.Load(), a.rejected.Load(), tenants
}
