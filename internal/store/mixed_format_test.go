package store

import (
	"testing"
	"time"

	"sigmund/internal/catalog"
	"sigmund/internal/core/inference"
	"sigmund/internal/dfs"
	"sigmund/internal/faults"
	"sigmund/internal/serving"
)

// TestMixedFormatGenerations proves a committed generation can serve v1
// (legacy length-prefixed) and v2 (flat) segments side by side: a tenant
// whose last good segment predates the flat format is carried forward by
// the manifest and decoded map-backed, while freshly published tenants
// load as zero-copy flat views — and both answer identically through the
// full router path, hedged reads and hot-key cache included.
func TestMixedFormatGenerations(t *testing.T) {
	// Stall replica 0 so every read exercises the hedge machinery instead
	// of the single-replica fast path.
	inj := faults.NewInjector(1, faults.Rule{
		Ops: []faults.Op{faults.OpReplica}, PathContains: "replica-0/serve",
		Kind: faults.Stall, Prob: 1, Delay: 20 * time.Millisecond,
	})
	fs := dfs.New()
	st := New(fs, Options{Shards: 1, Replicas: 2, CacheSize: 8, Faults: inj, HedgeAfter: time.Millisecond})
	defer st.Close()

	// Generation 1: both tenants publish fresh (v2 on disk).
	st.Publish(testSnapshot(1, "shop-old", "shop-new"))
	if err := st.PublishErr(); err != nil {
		t.Fatalf("publish gen 1: %v", err)
	}

	// Rewrite shop-old's gen-1 segment in the legacy format, as if it had
	// been written by a pre-upgrade publisher and survived on the shared
	// filesystem.
	data, err := fs.Read(segmentPath(1, "shop-old"))
	if err != nil {
		t.Fatalf("read gen-1 segment: %v", err)
	}
	rr, err := DecodeSegment(data)
	if err != nil {
		t.Fatalf("decode gen-1 segment: %v", err)
	}
	items, top := rr.Flat.Materialize()
	mapRR := &serving.RetailerRecs{Recs: make(map[catalog.ItemID]inference.ItemRecs, len(items)), TopSellers: top}
	for _, ir := range items {
		mapRR.Recs[ir.Item] = ir
	}
	if err := fs.Write(segmentPath(1, "shop-old"), EncodeSegmentV1(mapRR)); err != nil {
		t.Fatalf("rewrite as v1: %v", err)
	}

	// Generation 2: shop-new refreshes, shop-old is degraded with no fresh
	// data — its manifest entry carries the (now v1) gen-1 segment forward.
	snap := testSnapshot(2, "shop-new")
	snap.MarkDegraded("shop-old", "inference", false)
	st.Publish(snap)
	if err := st.PublishErr(); err != nil {
		t.Fatalf("publish gen 2: %v", err)
	}
	if got := st.Version(); got != 2 {
		t.Fatalf("Version = %d, want 2", got)
	}

	// Every replica's committed snapshot must hold both representations:
	// the carried-forward tenant map-backed, the fresh tenant flat-backed.
	st.shards[0].mu.RLock()
	reps := append([]*Replica(nil), st.shards[0].replicas...)
	st.shards[0].mu.RUnlock()
	for _, rep := range reps {
		rep.mu.Lock()
		snap := rep.mainSnap
		rep.mu.Unlock()
		if snap == nil || snap.Version != 2 {
			t.Fatalf("replica %d: committed snapshot %+v, want generation 2", rep.idx, snap)
		}
		old := snap.Retailers["shop-old"]
		if old == nil || old.Recs == nil || old.Flat != nil {
			t.Fatalf("replica %d: shop-old should be map-backed (v1 carry-forward), got %+v", rep.idx, old)
		}
		fresh := snap.Retailers["shop-new"]
		if fresh == nil || fresh.Flat == nil || fresh.Recs != nil {
			t.Fatalf("replica %d: shop-new should be flat-backed (v2), got %+v", rep.idx, fresh)
		}
	}

	// Both tenants answer identically through the hedged router path.
	// Varying k defeats the cache so each query fans out; replica rotation
	// guarantees some of them start on the stalled replica and hedge.
	for _, shop := range []catalog.RetailerID{"shop-old", "shop-new"} {
		for i := 0; i < 4; i++ {
			recs, src, _, err := st.Serve(shop, viewCtx(), 2+i)
			if err != nil {
				t.Fatalf("Serve(%s) #%d: %v", shop, i, err)
			}
			if src != serving.SourceModel {
				t.Fatalf("Serve(%s) #%d source = %v, want model", shop, i, src)
			}
			if len(recs) != 2 || recs[0].Item != 1 || recs[1].Item != 2 {
				t.Fatalf("Serve(%s) #%d = %+v, want items [1 2]", shop, i, recs)
			}
		}
		// Repeat the last query verbatim: this one must hit the hot-key cache.
		if _, src, _, err := st.Serve(shop, viewCtx(), 5); err != nil || src != serving.SourceModel {
			t.Fatalf("Serve(%s) repeat: src=%v err=%v", shop, src, err)
		}
	}
	if st.Hedges() == 0 {
		t.Fatalf("no hedged reads fired — the slow path was not exercised")
	}
	if _, hits := st.cache.stats(); hits == 0 {
		t.Fatalf("no hot-key cache hits — repeated identical queries should hit")
	}
}
