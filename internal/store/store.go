package store

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sigmund/internal/catalog"
	"sigmund/internal/dfs"
	"sigmund/internal/faults"
	"sigmund/internal/interactions"
	"sigmund/internal/linalg"
	"sigmund/internal/mapreduce"
	"sigmund/internal/obs"
	"sigmund/internal/retry"
	"sigmund/internal/serving"
)

// Options configures a Store. The zero value takes Defaulted's settings.
type Options struct {
	// Shards is the number of consistent-hash shards; Replicas is the
	// number of copies of each shard's data.
	Shards   int
	Replicas int
	// VirtualNodes per shard on the hash ring (more = smoother balance).
	VirtualNodes int

	// HedgeAfter is the fixed latency threshold after which the router
	// issues a hedged read to a second replica. 0 selects the adaptive
	// threshold: the HedgePercentile of a sliding window of observed
	// request latencies, floored at HedgeMin.
	HedgeAfter      time.Duration
	HedgePercentile float64
	HedgeMin        time.Duration

	// MaxInflight bounds concurrently running requests; beyond it the
	// router sheds instead of queueing (counted, fast-failing).
	MaxInflight int

	// AdmitQPS caps the fleet-wide admitted request rate with a token
	// bucket whose budget is split into equal fair shares across active
	// tenants (see admission.go): a tenant under its share is never
	// rejected because a neighbor floods, and a tenant past its share may
	// only borrow genuinely idle capacity. 0 disables admission control.
	// AdmitBurst is the bucket's burst capacity (0 = a quarter second of
	// budget, floored at 16).
	AdmitQPS   float64
	AdmitBurst int

	// Autoscale starts the replica autoscaler: a controller goroutine
	// that grows hot shards and drains idle ones from per-shard queue
	// depth and the router's sliding tail latency, between MinReplicas
	// (0 = Replicas) and MaxReplicas (0 = 2*Replicas) per shard, with
	// hysteresis and per-action cooldown. ScaleInterval is the evaluation
	// cadence (0 = 100ms); ScaleUpQueue/ScaleDownQueue are the
	// per-replica queue depths marking a shard hot/idle (0 = 3 / 0.5);
	// ScaleLatency, when set, halves the hot threshold while the window's
	// tail latency exceeds it.
	Autoscale      bool
	MinReplicas    int
	MaxReplicas    int
	ScaleInterval  time.Duration
	ScaleUpQueue   float64
	ScaleDownQueue float64
	ScaleLatency   time.Duration
	// CacheSize is the hot-key LRU capacity (0 = default 1024, < 0
	// disables).
	CacheSize int

	// CanaryMinSamples is how many live requests each canary arm
	// (control and canary) must answer before the store compares them and
	// auto-promotes or auto-rolls-back a canaried tenant (0 = 32).
	CanaryMinSamples int

	// ServeDelay simulates per-request service time at a replica, and
	// ReplicaConcurrency bounds a replica's concurrent requests — together
	// they model single-machine capacity for load experiments (cmd/loadgen)
	// and keep the routed-vs-single comparison honest. Zero values mean
	// instantaneous, unbounded replicas.
	ServeDelay         time.Duration
	ReplicaConcurrency int

	// Faults optionally injects replica-scoped chaos (faults.OpReplica:
	// crash, stall, flake) into serves and bulk loads.
	Faults *faults.Injector
	// Retry is the backoff policy for segment and manifest writes during
	// publish (the shared filesystem can fail transiently).
	Retry retry.Policy
	// KeepGenerations retains this many generations of segment files for
	// replica catch-up; older unreferenced files are garbage-collected
	// after each publish.
	KeepGenerations int

	// ScrubInterval starts the background integrity scrubber at this
	// cadence: every pass re-verifies the blobs the committed manifest
	// references (segments, canary segments, the manifest itself), plus
	// guard baselines and checkpoints, repairs what it can from replica
	// memory, and GCs provably unreferenced orphans. 0 disables the loop;
	// ScrubOnce can still be called manually.
	ScrubInterval time.Duration

	// Obs is the observability surface (sigmund_store_* metrics). nil gets
	// a private observer.
	Obs *obs.Observer

	Seed uint64
}

// Defaulted fills zero fields.
func (o Options) Defaulted() Options {
	if o.Shards <= 0 {
		o.Shards = 4
	}
	if o.Replicas <= 0 {
		o.Replicas = 2
	}
	if o.VirtualNodes <= 0 {
		o.VirtualNodes = 64
	}
	if o.HedgePercentile <= 0 || o.HedgePercentile >= 1 {
		o.HedgePercentile = 0.95
	}
	if o.HedgeMin <= 0 {
		o.HedgeMin = 500 * time.Microsecond
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 4096
	}
	if o.CacheSize == 0 {
		o.CacheSize = 1024
	}
	if o.CanaryMinSamples <= 0 {
		o.CanaryMinSamples = 32
	}
	if o.KeepGenerations <= 0 {
		o.KeepGenerations = 2
	}
	if o.MinReplicas <= 0 {
		o.MinReplicas = o.Replicas
	}
	if o.MaxReplicas <= 0 {
		o.MaxReplicas = 2 * o.Replicas
	}
	if o.ScaleInterval <= 0 {
		o.ScaleInterval = 100 * time.Millisecond
	}
	if o.ScaleUpQueue <= 0 {
		o.ScaleUpQueue = 3
	}
	if o.ScaleDownQueue <= 0 {
		o.ScaleDownQueue = 0.5
	}
	if o.Obs == nil {
		o.Obs = obs.NewObserver()
	}
	o.Retry = o.Retry.Defaulted()
	return o
}

// The store is a drop-in serving backend for the HTTP layer.
var (
	_ serving.Backend        = (*Store)(nil)
	_ serving.StatzExtension = (*Store)(nil)
)

// RejectError is a categorized refusal: the router turned a request away
// on purpose rather than failing to answer it. Reason distinguishes the
// control-plane stage that refused ("admission" vs "shed") so callers,
// metrics, and the HTTP layer can attribute rejects; it satisfies
// serving.RejectionError.
type RejectError struct {
	Reason string
	msg    string
}

func (e *RejectError) Error() string        { return e.msg }
func (e *RejectError) RejectReason() string { return e.Reason }

// ErrShed is returned when the router's in-flight budget is exhausted.
var ErrShed error = &RejectError{Reason: "shed", msg: "store: load shed (in-flight budget exhausted)"}

// ErrAdmission is returned when per-tenant admission control refuses a
// request: the tenant is past its fair share and the fleet has no idle
// capacity to lend.
var ErrAdmission error = &RejectError{Reason: "admission", msg: "store: rejected by per-tenant admission control"}

// ErrClosed is returned by requests after Close.
var ErrClosed = errors.New("store: closed")

// errNoReplicas is returned when a shard has no live replica at the
// committed generation.
var errNoReplicas = errors.New("store: no live replica for shard")

// shard groups one key range's replicas.
type shard struct {
	id int
	// gen is the shard's committed generation: the router only reads from
	// replicas at or past it, so a shard never serves a mix of generations
	// that includes anything older than its last commit.
	gen atomic.Int64
	rr  atomic.Uint64 // rotation cursor for replica selection

	mu       sync.RWMutex
	replicas []*Replica
}

// order returns the replicas eligible for a read — live and at (or past)
// the shard's committed generation — healthy ones first, rotated for
// balance, with power-of-two-choices promoting the less-loaded of two
// sampled healthy replicas to primary. Failover and hedging walk the rest
// in rotation order.
func (sh *shard) order(rng *cheapRNG) []*Replica {
	gen := sh.gen.Load()
	sh.mu.RLock()
	reps := sh.replicas
	n := len(reps)
	start := int(sh.rr.Add(1)) % n
	healthy := make([]*Replica, 0, n)
	var suspect []*Replica
	for i := 0; i < n; i++ {
		rep := reps[(start+i)%n]
		if rep.Down() || rep.Gen() < gen {
			continue
		}
		if rep.healthy() {
			healthy = append(healthy, rep)
		} else {
			suspect = append(suspect, rep)
		}
	}
	sh.mu.RUnlock()
	pickTwo(healthy, rng)
	return append(healthy, suspect...)
}

// pickLive is the fast path's allocation-free replica selection: the same
// rotation + power-of-two-choices policy as order(), but returning only
// the primary. It scans for the first two eligible healthy replicas and
// prefers the less loaded; with no healthy replica it settles for the
// first eligible suspect. Returns nil when no replica can serve.
func (sh *shard) pickLive() *Replica {
	gen := sh.gen.Load()
	sh.mu.RLock()
	reps := sh.replicas
	n := len(reps)
	if n == 0 {
		sh.mu.RUnlock()
		return nil
	}
	start := int(sh.rr.Add(1)) % n
	var first, second, suspect *Replica
	for i := 0; i < n && second == nil; i++ {
		rep := reps[(start+i)%n]
		if rep.Down() || rep.Gen() < gen {
			continue
		}
		if !rep.healthy() {
			if suspect == nil {
				suspect = rep
			}
			continue
		}
		if first == nil {
			first = rep
		} else {
			second = rep
		}
	}
	sh.mu.RUnlock()
	if first == nil {
		return suspect
	}
	// Power of two choices: prefer the less-loaded of the two sampled
	// healthy replicas (the rotation cursor supplies the randomness the
	// full path gets from the rng).
	if second != nil && second.Inflight() < first.Inflight() {
		return second
	}
	return first
}

// Store is the sharded, replicated serving store plus its front-end
// router. It implements the same serving surface as serving.Server
// (serving.Backend), so the HTTP handler, the service facade, and the
// pipeline's publish phase work against either interchangeably.
type Store struct {
	fs   *dfs.FS
	opts Options
	ring *Ring

	shards []*shard

	// fast marks a store whose replicas answer instantaneously (no fault
	// plan, no simulated service time, no concurrency gate): requests are
	// served inline on the caller's goroutine with no hedge machinery, and
	// the full fanout path is kept as the failover fallback. Chaos and
	// load-model configurations clear it, so hedging, stall racing, and
	// cancellation semantics are exercised exactly as before.
	fast bool

	// pubMu serializes publishes; stateMu guards the committed manifest.
	pubMu   sync.Mutex
	stateMu sync.RWMutex
	gen     int64
	man     *Manifest
	lastSeg map[catalog.RetailerID]ManifestEntry
	pubErr  error

	rootCtx  context.Context
	cancel   context.CancelFunc
	closed   atomic.Bool
	wg       sync.WaitGroup
	inflight atomic.Int64

	cache *lruCache
	lat   *latencyWindow

	// The request control plane: admission (per-tenant fair token
	// bucket), routing randomness (power-of-two-choices), and the replica
	// autoscaler. admit and scaler are nil when their stage is disabled.
	admit  *admitter
	rng    *cheapRNG
	scaler *autoscaler

	requests    atomic.Int64
	fallbacks   atomic.Int64
	misses      atomic.Int64
	staleServes atomic.Int64
	hedges      atomic.Int64
	hedgeWins   atomic.Int64
	failovers   atomic.Int64
	shed        atomic.Int64
	admRejects  atomic.Int64
	repFailures atomic.Int64
	brownCache  atomic.Int64
	brownStale  atomic.Int64
	scaleUps    atomic.Int64
	scaleDowns  atomic.Int64
	publishes   atomic.Int64
	rollbacks   atomic.Int64

	// Live-canary controller state and decision counters.
	canaries         canaryController
	canaryPromotions atomic.Int64
	canaryRollbacks  atomic.Int64
	canaryExpired    atomic.Int64

	jobMu       sync.Mutex
	jobCounters mapreduce.Counters

	// resume mirrors serving.Server's crash-recovery metadata for the
	// /statz "resume" block when the pipeline publishes through the store.
	resume atomic.Pointer[serving.ResumeInfo]
	// guardInfo mirrors the pipeline's quality-firewall summary for the
	// /statz "guard" block.
	guardInfo atomic.Pointer[serving.GuardInfo]
	// freshness mirrors the fleet's per-tier staleness summary for the
	// /statz "freshness" block.
	freshness atomic.Pointer[serving.FreshnessInfo]

	// Storage-integrity subsystem (integrity.go, scrub.go): the quarantine
	// set of blobs that failed verification and are awaiting repair, plus
	// detection/repair counters.
	integMu        sync.Mutex
	quarantined    map[string]string // blob path -> first failure observed
	integScrubbed  atomic.Int64
	integCorrupt   atomic.Int64
	integRepaired  atomic.Int64
	integFallbacks atomic.Int64
	orphansGCed    atomic.Int64
	scrubPasses    atomic.Int64

	m storeMetrics
}

// SetResumeInfo records the last completed day's crash-recovery metadata
// (the pipeline calls this when day journaling is on).
func (st *Store) SetResumeInfo(info serving.ResumeInfo) {
	st.resume.Store(&info)
}

// SetGuardInfo records the last completed day's quality-firewall summary
// (the pipeline calls this when the guard is on).
func (st *Store) SetGuardInfo(info serving.GuardInfo) {
	st.guardInfo.Store(&info)
}

// SetFreshnessInfo records the fleet's latest per-tier staleness summary
// (either scheduling path calls this after publishing).
func (st *Store) SetFreshnessInfo(info serving.FreshnessInfo) {
	st.freshness.Store(&info)
}

// storeMetrics are the sigmund_store_* registry handles. Shard indices are
// bounded and numeric, so — unlike tenant IDs — they are safe as labels.
type storeMetrics struct {
	requests  []*obs.Counter // per shard
	hedges    []*obs.Counter
	failovers []*obs.Counter
	healthy   []*obs.Gauge
	replicas  []*obs.Gauge

	hedgeWins  *obs.Counter
	cacheHits  *obs.Counter
	publishes  *obs.Counter
	rollbacks  *obs.Counter
	generation *obs.Gauge

	// Overload control plane: refusals by cause, admitted requests, the
	// brownout ladder's degraded serves, and autoscaler actions.
	rejectShed      *obs.Counter
	rejectAdmission *obs.Counter
	rejectReplica   *obs.Counter

	// Live-canary controller.
	canaryPromoted   *obs.Counter
	canaryRolledBack *obs.Counter
	canaryExpired    *obs.Counter
	canariesActive   *obs.Gauge
	admitted         *obs.Counter
	brownoutCache    *obs.Counter
	brownoutStale    *obs.Counter
	scaleUps         *obs.Counter
	scaleDowns       *obs.Counter

	// Storage-integrity subsystem.
	integScrubbed *obs.Counter
	integCorrupt  *obs.Counter
	integRepaired *obs.Counter

	requestSeconds *obs.Histogram
	publishSeconds *obs.Histogram
	loadSeconds    *obs.Histogram
}

func newStoreMetrics(reg *obs.Registry, shards int) storeMetrics {
	m := storeMetrics{
		hedgeWins:  reg.Counter("sigmund_store_hedge_wins_total", "Hedged reads that answered before the primary."),
		cacheHits:  reg.Counter("sigmund_store_cache_hits_total", "Requests answered from the router's hot-key cache."),
		rejectShed: reg.Counter("sigmund_store_rejects_total", "Requests refused, by cause.", obs.L("reason", "shed")),
		rejectAdmission: reg.Counter("sigmund_store_rejects_total", "Requests refused, by cause.",
			obs.L("reason", "admission")),
		rejectReplica: reg.Counter("sigmund_store_rejects_total", "Requests refused, by cause.",
			obs.L("reason", "replica_failure")),
		admitted: reg.Counter("sigmund_store_admitted_total", "Requests past per-tenant admission control."),
		canaryPromoted: reg.Counter("sigmund_guard_canary_decisions_total",
			"Live-canary outcomes, by decision.", obs.L("outcome", "promoted")),
		canaryRolledBack: reg.Counter("sigmund_guard_canary_decisions_total",
			"Live-canary outcomes, by decision.", obs.L("outcome", "rolled_back")),
		canaryExpired: reg.Counter("sigmund_guard_canary_decisions_total",
			"Live-canary outcomes, by decision.", obs.L("outcome", "expired")),
		canariesActive: reg.Gauge("sigmund_guard_canaries_active",
			"Tenants currently serving behind a live canary slice."),
		brownoutCache: reg.Counter("sigmund_store_brownout_serves_total",
			"Overloaded requests rescued by the brownout ladder, by rung.", obs.L("stage", "cache")),
		brownoutStale: reg.Counter("sigmund_store_brownout_serves_total",
			"Overloaded requests rescued by the brownout ladder, by rung.", obs.L("stage", "stale")),
		scaleUps: reg.Counter("sigmund_store_autoscale_events_total",
			"Replica autoscaler actions, by direction.", obs.L("direction", "up")),
		scaleDowns: reg.Counter("sigmund_store_autoscale_events_total",
			"Replica autoscaler actions, by direction.", obs.L("direction", "down")),
		integScrubbed: reg.Counter("sigmund_integrity_scrubbed_total",
			"Blobs whose integrity the scrubber verified."),
		integCorrupt: reg.Counter("sigmund_integrity_corrupt_total",
			"Corruption incidents detected: footer or structural verification failures, and referenced blobs found missing."),
		integRepaired: reg.Counter("sigmund_integrity_repaired_total",
			"Corruption incidents repaired, by re-read, peer re-replication, or rewrite."),
		publishes:  reg.Counter("sigmund_store_publishes_total", "Generations published to the store.", obs.L("outcome", "committed")),
		rollbacks:  reg.Counter("sigmund_store_publishes_total", "Generations published to the store.", obs.L("outcome", "rolled_back")),
		generation: reg.Gauge("sigmund_store_generation", "Last committed store generation."),
		requestSeconds: reg.Histogram("sigmund_store_request_seconds",
			"End-to-end routed request latency.", obs.DurationBuckets()),
		publishSeconds: reg.Histogram("sigmund_store_publish_seconds",
			"Wall time of one generation publish (segments + loads + swap).", obs.DurationBuckets()),
		loadSeconds: reg.Histogram("sigmund_store_segment_load_seconds",
			"Wall time of one replica's bulk load of a generation.", obs.DurationBuckets()),
	}
	for s := 0; s < shards; s++ {
		l := obs.L("shard", strconv.Itoa(s))
		m.requests = append(m.requests, reg.Counter("sigmund_store_requests_total", "Routed requests, by shard.", l))
		m.hedges = append(m.hedges, reg.Counter("sigmund_store_hedges_total", "Hedged reads issued, by shard.", l))
		m.failovers = append(m.failovers, reg.Counter("sigmund_store_failovers_total", "Failover attempts after a replica error, by shard.", l))
		m.healthy = append(m.healthy, reg.Gauge("sigmund_store_replicas_healthy", "Live replicas at the committed generation, by shard.", l))
		m.replicas = append(m.replicas, reg.Gauge("sigmund_store_replicas", "Configured replicas, by shard.", l))
	}
	return m
}

// New builds a store over the shared filesystem: Shards × Replicas empty
// replicas behind a consistent-hash router. Publish loads them.
func New(fs *dfs.FS, opts Options) *Store {
	opts = opts.Defaulted()
	st := &Store{
		fs:          fs,
		opts:        opts,
		ring:        NewRing(opts.Shards, opts.VirtualNodes, opts.Seed),
		lastSeg:     map[catalog.RetailerID]ManifestEntry{},
		quarantined: map[string]string{},
		cache:       newLRUCache(opts.CacheSize),
		lat:         newLatencyWindow(opts.HedgePercentile, opts.HedgeMin),
		admit:       newAdmitter(opts.AdmitQPS, opts.AdmitBurst),
		rng:         newCheapRNG(opts.Seed ^ 0xba1a9cedb002c4e5),
		m:           newStoreMetrics(opts.Obs.Reg(), opts.Shards),
		fast:        opts.Faults == nil && opts.ServeDelay == 0 && opts.ReplicaConcurrency == 0,
	}
	st.canaries.canaries = map[catalog.RetailerID]*canaryState{}
	st.rootCtx, st.cancel = context.WithCancel(context.Background())
	for s := 0; s < opts.Shards; s++ {
		sh := &shard{id: s}
		for i := 0; i < opts.Replicas; i++ {
			sh.replicas = append(sh.replicas, newReplica(s, i, opts))
		}
		st.shards = append(st.shards, sh)
	}
	if opts.Autoscale {
		st.scaler = newAutoscaler(st, opts)
		st.wg.Add(1)
		go func() {
			defer st.wg.Done()
			st.scaler.run(st.rootCtx, opts.ScaleInterval)
		}()
	}
	if opts.ScrubInterval > 0 {
		st.wg.Add(1)
		go func() {
			defer st.wg.Done()
			st.runScrubber(opts.ScrubInterval)
		}()
	}
	st.refreshReplicaGauges()
	return st
}

// Observer returns the store's observability surface.
func (st *Store) Observer() *obs.Observer { return st.opts.Obs }

// NumShards returns the shard count.
func (st *Store) NumShards() int { return len(st.shards) }

// ShardFor returns the shard index owning a retailer.
func (st *Store) ShardFor(r catalog.RetailerID) int { return st.ring.Lookup(string(r)) }

// Replica returns one replica (for tests and chaos drivers).
func (st *Store) Replica(shardID, idx int) *Replica {
	sh := st.shards[shardID]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.replicas[idx]
}

// NumReplicas returns a shard's replica count.
func (st *Store) NumReplicas(shardID int) int {
	sh := st.shards[shardID]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.replicas)
}

// KillReplica crashes one replica (requests fail over around it).
func (st *Store) KillReplica(shardID, idx int) {
	st.Replica(shardID, idx).Kill()
	st.refreshReplicaGauges()
}

// ReviveReplica brings a crashed replica back: it catches up to the
// shard's committed generation from the filesystem manifest before taking
// traffic again, so a revived replica can never serve a stale generation.
func (st *Store) ReviveReplica(shardID, idx int) error {
	rep := st.Replica(shardID, idx)
	rep.down.Store(false)
	rep.consecFails.Store(0)
	err := st.catchUp(st.shards[shardID], rep)
	st.refreshReplicaGauges()
	return err
}

// AddReplica grows a shard by one replica, bulk-loading the committed
// generation before it joins the rotation.
func (st *Store) AddReplica(shardID int) (*Replica, error) {
	sh := st.shards[shardID]
	sh.mu.Lock()
	rep := newReplica(shardID, len(sh.replicas), st.opts)
	sh.replicas = append(sh.replicas, rep)
	sh.mu.Unlock()
	err := st.catchUp(sh, rep)
	st.refreshReplicaGauges()
	return rep, err
}

// catchUp loads the shard's committed generation into a (re)joining
// replica. With no committed manifest yet the replica is already current.
func (st *Store) catchUp(sh *shard, rep *Replica) error {
	st.stateMu.RLock()
	man := st.man
	st.stateMu.RUnlock()
	gen := sh.gen.Load()
	if man == nil || gen == 0 {
		rep.gen.Store(gen)
		return nil
	}
	if man.Generation != gen {
		// The shard lags the fleet (it missed a publish wholesale); load
		// its generation's manifest from the filesystem.
		data, err := st.fs.Read(manifestPath(gen))
		if err != nil {
			return fmt.Errorf("store: catch-up manifest for shard %d: %w", sh.id, err)
		}
		if man, err = DecodeManifest(data); err != nil {
			return fmt.Errorf("store: catch-up manifest for shard %d: %w", sh.id, err)
		}
	}
	if err := rep.prepare(st.fs, gen, st.shardEntries(man, sh.id), &segmentResolver{st: st, sh: sh}); err != nil {
		return err
	}
	rep.commit(gen)
	return nil
}

// shardEntries filters a manifest down to the retailers a shard owns.
func (st *Store) shardEntries(man *Manifest, shardID int) []ManifestEntry {
	var out []ManifestEntry
	for _, e := range man.Entries {
		if st.ring.Lookup(string(e.Retailer)) == shardID {
			out = append(out, e)
		}
	}
	return out
}

func (st *Store) refreshReplicaGauges() {
	for s, sh := range st.shards {
		gen := sh.gen.Load()
		sh.mu.RLock()
		total := len(sh.replicas)
		live := 0
		for _, rep := range sh.replicas {
			if !rep.Down() && rep.Gen() >= gen {
				live++
			}
		}
		sh.mu.RUnlock()
		st.m.replicas[s].Set(float64(total))
		st.m.healthy[s].Set(float64(live))
	}
}

// --- Publish: batch bulk-load of one generation ---

// Publish writes the snapshot as immutable per-retailer segments through
// the shared filesystem, bulk-loads them into every live replica
// (two-phase per shard), and swaps generations atomically. Degraded
// tenants with no fresh recommendations carry their last good segment
// forward via the manifest. On any storage failure the whole generation
// rolls back — the store never serves a torn generation — and the error is
// retained for PublishErr.
//
// Publish satisfies the serving.Server publish contract so the pipeline
// can publish to either backend.
func (st *Store) Publish(snap *serving.Snapshot) {
	if err := st.PublishGeneration(snap); err != nil {
		st.stateMu.Lock()
		st.pubErr = err
		st.stateMu.Unlock()
	}
}

// PublishErr returns the most recent failed publish's error (nil after a
// successful publish).
func (st *Store) PublishErr() error {
	st.stateMu.RLock()
	defer st.stateMu.RUnlock()
	return st.pubErr
}

// PublishGeneration is Publish with the error surfaced.
func (st *Store) PublishGeneration(snap *serving.Snapshot) error {
	st.pubMu.Lock()
	defer st.pubMu.Unlock()
	start := time.Now()
	gen := snap.Version

	// 1. Write fresh segments. Any failure past the retry budget rolls the
	// whole generation back: replicas never observed it.
	var entries []ManifestEntry
	rollback := func(err error) error {
		st.fs.DeletePrefix(genPrefix(gen))
		st.rollbacks.Add(1)
		st.m.rollbacks.Inc()
		return err
	}
	for _, r := range sortedRetailers(snap.Retailers) {
		path := segmentPath(gen, r)
		if err := st.writeVerified(path, EncodeSegment(snap.Retailers[r])); err != nil {
			return rollback(fmt.Errorf("store: writing segment for %s: %w", r, err))
		}
		e := ManifestEntry{Retailer: r, Segment: path, RecsVersion: gen}
		if ts := snap.Status[r]; ts != nil {
			e.Degraded = ts.Degraded
			e.Quarantined = ts.Quarantined
			e.Phase = ts.DegradedPhase
			if ts.Canary {
				// The guard sent this tenant to a live canary: keep the
				// previous generation as the serving (control) path and hang
				// the fresh segment off the entry's canary side. With no
				// previous generation there is nothing to control against,
				// so the fresh data publishes normally.
				st.stateMu.RLock()
				prev, ok := st.lastSeg[r]
				st.stateMu.RUnlock()
				if ok && prev.RecsVersion < gen {
					e.Segment = prev.Segment
					e.RecsVersion = prev.RecsVersion
					e.CanarySegment = path
					e.CanaryVersion = gen
					e.CanaryFraction = ts.CanaryFraction
				}
			}
		}
		entries = append(entries, e)
	}
	// 2. Carry forward degraded tenants without fresh data: their manifest
	// entry keeps pointing at the last good generation's segment.
	st.stateMu.RLock()
	for r, ts := range snap.Status {
		if snap.Retailers[r] != nil || ts == nil {
			continue
		}
		prev, ok := st.lastSeg[r]
		if !ok {
			continue // nothing to serve, same as the single-node server
		}
		entries = append(entries, ManifestEntry{
			Retailer:    r,
			Segment:     prev.Segment,
			RecsVersion: prev.RecsVersion,
			Degraded:    ts.Degraded,
			Quarantined: ts.Quarantined,
			Phase:       ts.DegradedPhase,
		})
	}
	if snap.Rolling {
		// Rolling publish: every retailer the snapshot doesn't mention
		// keeps its previous manifest entry verbatim, so a one-tenant
		// refresh never drops the rest of the fleet from service. Sorted
		// so the manifest encodes deterministically.
		var carried []catalog.RetailerID
		for r := range st.lastSeg {
			if snap.Retailers[r] != nil || snap.Status[r] != nil {
				continue
			}
			carried = append(carried, r)
		}
		sort.Slice(carried, func(i, j int) bool { return carried[i] < carried[j] })
		for _, r := range carried {
			entries = append(entries, st.lastSeg[r])
		}
	}
	st.stateMu.RUnlock()
	man := &Manifest{Generation: gen, Entries: entries}
	if err := st.writeVerified(manifestPath(gen), EncodeManifest(man)); err != nil {
		return rollback(fmt.Errorf("store: writing manifest: %w", err))
	}

	// 3. Two-phase load per shard: prepare every live replica, commit the
	// ones that staged successfully. A shard where no replica could load
	// stays wholly on its previous generation — uniformly stale, never
	// torn; it re-syncs on the next publish or via catch-up.
	committedShards := 0
	for _, sh := range st.shards {
		mine := st.shardEntries(man, sh.id)
		sh.mu.RLock()
		reps := append([]*Replica(nil), sh.replicas...)
		sh.mu.RUnlock()
		var prepared []*Replica
		for _, rep := range reps {
			if rep.Down() {
				continue
			}
			loadStart := time.Now()
			if err := rep.prepare(st.fs, gen, mine, &segmentResolver{st: st, sh: sh}); err != nil {
				rep.abort()
				continue
			}
			st.m.loadSeconds.Observe(time.Since(loadStart).Seconds())
			prepared = append(prepared, rep)
		}
		if len(prepared) == 0 {
			continue
		}
		for _, rep := range prepared {
			rep.commit(gen)
		}
		sh.gen.Store(gen)
		committedShards++
	}
	if committedShards == 0 {
		return rollback(fmt.Errorf("store: no shard could load generation %d", gen))
	}

	// 4. Commit the store-level state and garbage-collect generations no
	// manifest entry references anymore.
	st.stateMu.Lock()
	st.gen = gen
	st.man = man
	st.pubErr = nil
	for _, e := range entries {
		st.lastSeg[e.Retailer] = e
	}
	st.stateMu.Unlock()

	// Rebuild the canary controller from the committed entries; canaries
	// the new generation superseded while still undecided expire.
	fresh := map[catalog.RetailerID]*canaryState{}
	for _, e := range entries {
		if e.CanarySegment != "" {
			fresh[e.Retailer] = &canaryState{
				retailer: e.Retailer,
				fraction: e.CanaryFraction,
				version:  e.CanaryVersion,
				segment:  e.CanarySegment,
			}
		}
	}
	for _, cs := range st.canaries.reset(fresh) {
		outcome := "expired"
		cs.outcome.Store(&outcome)
		st.canaryExpired.Add(1)
		st.m.canaryExpired.Inc()
	}
	st.m.canariesActive.Set(float64(len(fresh)))

	st.gcGenerations(gen, man)

	st.publishes.Add(1)
	st.m.publishes.Inc()
	st.m.generation.Set(float64(gen))
	st.refreshReplicaGauges()
	st.m.publishSeconds.Observe(time.Since(start).Seconds())
	return nil
}

// gcGenerations deletes segment files older than the retention window that
// the committed manifest no longer references, returning how many files it
// removed. A blob is only deleted when it is provably unreferenced: its
// generation is past the keep window AND no committed manifest entry —
// including carry-forward and canary entries pointing into old generations
// — names it.
func (st *Store) gcGenerations(gen int64, man *Manifest) int {
	referenced := make(map[string]bool, len(man.Entries))
	for _, e := range man.Entries {
		referenced[e.Segment] = true
		if e.CanarySegment != "" {
			referenced[e.CanarySegment] = true
		}
	}
	cutoff := gen - int64(st.opts.KeepGenerations)
	removed := 0
	for _, path := range st.fs.List("store/gen-") {
		rest := strings.TrimPrefix(path, "store/gen-")
		slash := strings.IndexByte(rest, '/')
		if slash < 0 {
			continue
		}
		g, err := strconv.ParseInt(rest[:slash], 10, 64)
		if err != nil || g > cutoff || referenced[path] {
			continue
		}
		if st.fs.Delete(path) == nil {
			removed++
		}
	}
	return removed
}

func (st *Store) writeWithRetry(path string, data []byte) error {
	rng := linalg.NewRNG(st.opts.Seed ^ hash64(path))
	return retry.Do(context.Background(), st.opts.Retry, rng, func(int) error {
		return st.fs.Write(path, data)
	})
}

func sortedRetailers(m map[catalog.RetailerID]*serving.RetailerRecs) []catalog.RetailerID {
	out := make([]catalog.RetailerID, 0, len(m))
	for r := range m {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// --- Read path: route, hedge, fail over ---

// Serve answers one request through the three-stage control plane:
// admission (per-tenant fair token bucket), then the in-flight budget,
// then routing — cache first, then the owning shard's replicas with
// power-of-two-choices selection, hedged reads (a second replica is tried
// after the latency threshold; first response wins and the loser's
// context is cancelled) and failover on error. A request the admission or
// shed stage would refuse first descends the brownout ladder (hot-key
// cache at the current generation, then the previous generation's
// entries) and is only rejected when no rung answers. It returns the
// generation that answered.
func (st *Store) Serve(r catalog.RetailerID, uctx interactions.Context, k int) ([]serving.Recommendation, serving.Source, int64, error) {
	if st.closed.Load() {
		return nil, serving.SourceNone, 0, ErrClosed
	}
	if k <= 0 {
		k = 10
	}
	st.requests.Add(1)

	shardID := st.ring.Lookup(string(r))
	if shardID < 0 {
		st.misses.Add(1)
		return nil, serving.SourceNone, 0, errNoReplicas
	}
	sh := st.shards[shardID]
	gen := sh.gen.Load()

	if st.admit != nil {
		if !st.admit.admit(string(r)) {
			if recs, src, served, ok := st.brownout(gen, r, uctx, k); ok {
				return recs, src, served, nil
			}
			st.admRejects.Add(1)
			st.m.rejectAdmission.Inc()
			return nil, serving.SourceNone, 0, ErrAdmission
		}
		st.m.admitted.Inc()
	}
	if st.inflight.Add(1) > int64(st.opts.MaxInflight) {
		st.inflight.Add(-1)
		if recs, src, served, ok := st.brownout(gen, r, uctx, k); ok {
			return recs, src, served, nil
		}
		st.shed.Add(1)
		st.m.rejectShed.Inc()
		return nil, serving.SourceNone, 0, ErrShed
	}
	defer st.inflight.Add(-1)
	st.m.requests[shardID].Inc()

	// An active canary takes the tenant off the hot-key cache entirely:
	// a cached answer would blur the two arms' populations and starve the
	// experiment of samples.
	cs := st.canaries.get(r)
	if cs == nil && st.cache != nil {
		kb := keyBufPool.Get().(*[]byte)
		key := cacheKey((*kb)[:0], gen, r, uctx, k)
		recs, src, ok := st.cache.get(key)
		*kb = key[:0]
		keyBufPool.Put(kb)
		if ok {
			st.m.cacheHits.Inc()
			st.countSource(r, src)
			return recs, src, gen, nil
		}
	}

	arm := cs != nil && canarySlice(r, uctx, cs.fraction)
	start := time.Now()
	recs, src, served, err := st.serveShard(sh, r, uctx, k, arm)
	if cs != nil {
		st.observeCanary(cs, arm, src, err, time.Since(start))
	}
	if err != nil {
		st.misses.Add(1)
		if !errors.Is(err, ErrClosed) {
			st.repFailures.Add(1)
			st.m.rejectReplica.Inc()
		}
		return nil, serving.SourceNone, 0, err
	}
	st.lat.record(time.Since(start))
	st.m.requestSeconds.Observe(time.Since(start).Seconds())
	st.countSource(r, src)
	if src != serving.SourceNone && cs == nil && st.cache != nil {
		kb := keyBufPool.Get().(*[]byte)
		key := cacheKey((*kb)[:0], served, r, uctx, k)
		st.cache.put(key, recs, src)
		*kb = key[:0]
		keyBufPool.Put(kb)
	}
	return recs, src, served, nil
}

// serveShard answers one admitted request from a shard. On the fast path
// (instantaneous replicas: no faults, no service delay, no gate) the
// primary replica is called inline on this goroutine — no hedge context,
// channel, timer, or goroutines — and any error falls back to the full
// fanout, which retries the healthy-first order with failover. Everything
// else goes straight to fanout.
func (st *Store) serveShard(sh *shard, r catalog.RetailerID, uctx interactions.Context, k int, canaryArm bool) ([]serving.Recommendation, serving.Source, int64, error) {
	if st.fast {
		if rep := sh.pickLive(); rep != nil {
			recs, src, gen, err := rep.get(st.rootCtx, r, uctx, k, canaryArm)
			if err == nil {
				return recs, src, gen, nil
			}
			st.failovers.Add(1)
			st.m.failovers[sh.id].Inc()
		}
	}
	return st.fanout(sh, r, uctx, k, canaryArm)
}

// observeCanary rolls one live request into its arm's statistics and
// triggers the promote/rollback decision once both arms have enough
// samples. Decided canaries stop accumulating — their outcome is frozen.
func (st *Store) observeCanary(cs *canaryState, arm bool, src serving.Source, err error, d time.Duration) {
	if cs.decided.Load() {
		return
	}
	a := &cs.control
	if arm {
		a = &cs.canary
	}
	if err != nil {
		a.errors.Add(1)
	} else {
		a.requests.Add(1)
		if src == serving.SourceTopSellers || src == serving.SourceNone {
			a.bad.Add(1)
		}
		a.latencyNs.Add(d.Nanoseconds())
	}
	min := int64(st.opts.CanaryMinSamples)
	if cs.control.requests.Load()+cs.control.errors.Load() >= min &&
		cs.canary.requests.Load()+cs.canary.errors.Load() >= min {
		st.decideCanary(cs)
	}
}

// decideCanary compares the two arms and promotes or rolls back. Exactly
// one caller wins the decided flag; everyone else is a no-op.
func (st *Store) decideCanary(cs *canaryState) {
	if cs.decided.Swap(true) {
		return
	}
	promote, reason := true, ""
	if cs.canary.badRate() > cs.control.badRate()+canaryBadRateMargin {
		promote, reason = false, "bad_rate"
	} else if can := cs.canary.meanLatencyNs(); can > canaryLatencyFloorNs &&
		float64(can) > canaryLatencyFactor*float64(cs.control.meanLatencyNs()) {
		promote, reason = false, "latency"
	}
	shardID := st.ring.Lookup(string(cs.retailer))
	if shardID >= 0 {
		sh := st.shards[shardID]
		sh.mu.RLock()
		reps := append([]*Replica(nil), sh.replicas...)
		sh.mu.RUnlock()
		for _, rep := range reps {
			rep.resolveCanary(cs.retailer, promote)
		}
	}
	// Rewrite the committed in-memory state so carry-forward, catch-up, and
	// tenant statuses all agree with the decision.
	st.stateMu.Lock()
	if e, ok := st.lastSeg[cs.retailer]; ok && e.CanarySegment == cs.segment {
		if promote {
			e.Segment = cs.segment
			e.RecsVersion = cs.version
		}
		e.CanarySegment, e.CanaryVersion, e.CanaryFraction = "", 0, 0
		st.lastSeg[cs.retailer] = e
		if st.man != nil {
			for i := range st.man.Entries {
				if st.man.Entries[i].Retailer == cs.retailer {
					st.man.Entries[i] = e
				}
			}
		}
	}
	st.stateMu.Unlock()
	outcome := "promoted"
	if !promote {
		outcome = "rolled_back:" + reason
		st.canaryRollbacks.Add(1)
		st.m.canaryRolledBack.Inc()
	} else {
		st.canaryPromotions.Add(1)
		st.m.canaryPromoted.Inc()
	}
	cs.outcome.Store(&outcome)
	st.canaries.remove(cs)
	st.m.canariesActive.Set(float64(st.canaries.active()))
}

// brownout is the final degradation rung before a reject: under overload
// an answer that is cached — even one generation stale — beats an error.
// The ladder tries the hot-key cache at the shard's committed generation,
// then the previous generation's still-resident entries (cache keys are
// generation-prefixed, so a publish leaves the old generation's entries
// readable until they age out). Every rescue is counted by rung; with the
// cache disabled the ladder is empty and the reject stands.
func (st *Store) brownout(gen int64, r catalog.RetailerID, uctx interactions.Context, k int) ([]serving.Recommendation, serving.Source, int64, bool) {
	if st.cache == nil {
		return nil, serving.SourceNone, 0, false
	}
	kb := keyBufPool.Get().(*[]byte)
	defer func() {
		*kb = (*kb)[:0]
		keyBufPool.Put(kb)
	}()
	key := cacheKey((*kb)[:0], gen, r, uctx, k)
	*kb = key
	if recs, src, ok := st.cache.get(key); ok {
		st.brownCache.Add(1)
		st.m.brownoutCache.Inc()
		st.countSource(r, src)
		return recs, src, gen, true
	}
	if gen > 1 {
		key = cacheKey((*kb)[:0], gen-1, r, uctx, k)
		*kb = key
		if recs, src, ok := st.cache.get(key); ok {
			st.brownStale.Add(1)
			st.m.brownoutStale.Inc()
			st.countSource(r, src)
			return recs, src, gen - 1, true
		}
	}
	return nil, serving.SourceNone, 0, false
}

// countSource rolls a served answer into the router's fallback chain
// counters, including stale-serve attribution from the manifest.
func (st *Store) countSource(r catalog.RetailerID, src serving.Source) {
	switch src {
	case serving.SourceTopSellers:
		st.fallbacks.Add(1)
	case serving.SourceNone:
		st.misses.Add(1)
	}
	if src != serving.SourceNone {
		st.stateMu.RLock()
		e, ok := st.lastSeg[r]
		st.stateMu.RUnlock()
		if ok && e.Degraded {
			st.staleServes.Add(1)
		}
	}
}

// fanout races replicas for one request: primary first, a hedge after the
// latency threshold, failover on error. The winner's response cancels
// every loser via the shared context.
func (st *Store) fanout(sh *shard, r catalog.RetailerID, uctx interactions.Context, k int, canaryArm bool) ([]serving.Recommendation, serving.Source, int64, error) {
	order := sh.order(st.rng)
	if len(order) == 0 {
		return nil, serving.SourceNone, 0, errNoReplicas
	}
	ctx, cancel := context.WithCancel(st.rootCtx)
	defer cancel()

	type result struct {
		recs   []serving.Recommendation
		src    serving.Source
		gen    int64
		err    error
		hedged bool
	}
	ch := make(chan result, len(order)) // buffered: losers never block
	next := 0
	launch := func(hedged bool) {
		rep := order[next]
		next++
		st.wg.Add(1)
		go func() {
			defer st.wg.Done()
			recs, src, gen, err := rep.get(ctx, r, uctx, k, canaryArm)
			ch <- result{recs: recs, src: src, gen: gen, err: err, hedged: hedged}
		}()
	}
	launch(false)
	outstanding := 1
	threshold := st.hedgeThreshold()
	timer := time.NewTimer(threshold)
	defer timer.Stop()
	var lastErr error
	for {
		select {
		case <-st.rootCtx.Done():
			return nil, serving.SourceNone, 0, ErrClosed
		case <-timer.C:
			if next < len(order) {
				st.hedges.Add(1)
				st.m.hedges[sh.id].Inc()
				launch(true)
				outstanding++
				timer.Reset(threshold)
			}
		case res := <-ch:
			if res.err == nil {
				if res.hedged {
					st.hedgeWins.Add(1)
					st.m.hedgeWins.Inc()
				}
				return res.recs, res.src, res.gen, nil
			}
			lastErr = res.err
			outstanding--
			if next < len(order) {
				st.failovers.Add(1)
				st.m.failovers[sh.id].Inc()
				launch(false)
				outstanding++
			} else if outstanding == 0 {
				return nil, serving.SourceNone, 0, lastErr
			}
		}
	}
}

func (st *Store) hedgeThreshold() time.Duration {
	if st.opts.HedgeAfter > 0 {
		return st.opts.HedgeAfter
	}
	return st.lat.threshold()
}

// Close rejects new requests, cancels every in-flight replica read, and
// waits for their goroutines to drain.
func (st *Store) Close() {
	if st.closed.Swap(true) {
		return
	}
	st.cancel()
	st.wg.Wait()
}

// --- serving.Backend surface ---

// Recommend answers from the routed store (nil on miss/shed, like the
// single-node server).
func (st *Store) Recommend(r catalog.RetailerID, uctx interactions.Context, k int) []serving.Recommendation {
	recs, _ := st.RecommendWithSource(r, uctx, k)
	return recs
}

// RecommendWithSource is Recommend plus the fallback rung that answered.
func (st *Store) RecommendWithSource(r catalog.RetailerID, uctx interactions.Context, k int) ([]serving.Recommendation, serving.Source) {
	recs, src, _, _ := st.Serve(r, uctx, k)
	return recs, src
}

// Version returns the last committed generation.
func (st *Store) Version() int64 {
	st.stateMu.RLock()
	defer st.stateMu.RUnlock()
	return st.gen
}

// Stats reports router request counters (requests, fallbacks, misses).
func (st *Store) Stats() (requests, fallbacks, misses int64) {
	return st.requests.Load(), st.fallbacks.Load(), st.misses.Load()
}

// StaleServes reports requests answered from a degraded tenant's
// carried-forward segment.
func (st *Store) StaleServes() int64 { return st.staleServes.Load() }

// Hedges, HedgeWins, Failovers, Shed, and Publishes report router health
// counters.
func (st *Store) Hedges() int64    { return st.hedges.Load() }
func (st *Store) HedgeWins() int64 { return st.hedgeWins.Load() }
func (st *Store) Failovers() int64 { return st.failovers.Load() }
func (st *Store) Shed() int64      { return st.shed.Load() }
func (st *Store) Publishes() (committed, rolledBack int64) {
	return st.publishes.Load(), st.rollbacks.Load()
}

// Rejects breaks refusals down by cause: shed (in-flight budget),
// admission (per-tenant token bucket), and replica failure (every
// eligible replica errored or none was live).
func (st *Store) Rejects() (shed, admission, replicaFailure int64) {
	return st.shed.Load(), st.admRejects.Load(), st.repFailures.Load()
}

// Admitted reports requests that passed admission control (0 when
// admission is disabled), and ActiveTenants the admitter's live census.
func (st *Store) Admitted() int64 {
	adm, _, _ := st.admit.stats()
	return adm
}

// ActiveTenants reports how many tenants currently hold an admission
// budget (0 when admission is disabled).
func (st *Store) ActiveTenants() int {
	_, _, n := st.admit.stats()
	return n
}

// BrownoutServes reports requests the brownout ladder rescued from a
// reject, by rung: the current generation's cache and the previous
// (stale) generation's.
func (st *Store) BrownoutServes() (cache, stale int64) {
	return st.brownCache.Load(), st.brownStale.Load()
}

// ScaleEvents reports autoscaler actions.
func (st *Store) ScaleEvents() (up, down int64) {
	return st.scaleUps.Load(), st.scaleDowns.Load()
}

// CanaryDecisions reports live-canary outcomes since start.
func (st *Store) CanaryDecisions() (promoted, rolledBack, expired int64) {
	return st.canaryPromotions.Load(), st.canaryRollbacks.Load(), st.canaryExpired.Load()
}

// ActiveCanaries reports tenants currently serving behind a canary slice.
func (st *Store) ActiveCanaries() int { return st.canaries.active() }

// CanaryOutcome returns a tenant's canary outcome this generation: "" while
// undecided (or never canaried), else "promoted", "rolled_back:<reason>",
// or "expired".
func (st *Store) CanaryOutcome(r catalog.RetailerID) string {
	for _, cs := range st.canaries.snapshotStates() {
		if cs.retailer == r {
			return cs.outcomeString()
		}
	}
	return ""
}

// RecommendOrReject implements serving.Rejecter: Recommend with the
// control plane's refusal surfaced instead of swallowed, so the HTTP
// layer can map admission rejects and sheds onto distinct status codes.
func (st *Store) RecommendOrReject(r catalog.RetailerID, uctx interactions.Context, k int) ([]serving.Recommendation, error) {
	recs, _, _, err := st.Serve(r, uctx, k)
	return recs, err
}

// TenantStatuses returns the committed manifest's per-retailer health.
func (st *Store) TenantStatuses() map[catalog.RetailerID]serving.TenantStatus {
	st.stateMu.RLock()
	defer st.stateMu.RUnlock()
	out := map[catalog.RetailerID]serving.TenantStatus{}
	if st.man == nil {
		return out
	}
	for _, e := range st.man.Entries {
		out[e.Retailer] = *e.status()
	}
	return out
}

// AddJobCounters and JobCounters mirror the single-node server's
// fleet-wide MapReduce counter accumulation for /statz.
func (st *Store) AddJobCounters(c mapreduce.Counters) {
	st.jobMu.Lock()
	st.jobCounters.Add(c)
	st.jobMu.Unlock()
}

func (st *Store) JobCounters() mapreduce.Counters {
	st.jobMu.Lock()
	defer st.jobMu.Unlock()
	return st.jobCounters
}

// StatzBlocks contributes the "store" block to /statz: per-shard replica
// health and generation, plus router counters.
func (st *Store) StatzBlocks() map[string]any {
	type replicaStatz struct {
		Generation int64 `json:"generation"`
		Down       bool  `json:"down"`
		Healthy    bool  `json:"healthy"`
		Served     int64 `json:"served"`
		Cancelled  int64 `json:"cancelled"`
	}
	type shardStatz struct {
		Generation int64          `json:"generation"`
		Replicas   []replicaStatz `json:"replicas"`
	}
	st.refreshReplicaGauges()
	shards := make([]shardStatz, len(st.shards))
	for s, sh := range st.shards {
		ss := shardStatz{Generation: sh.gen.Load()}
		sh.mu.RLock()
		for _, rep := range sh.replicas {
			ss.Replicas = append(ss.Replicas, replicaStatz{
				Generation: rep.Gen(),
				Down:       rep.Down(),
				Healthy:    rep.healthy(),
				Served:     rep.Served(),
				Cancelled:  rep.Cancelled(),
			})
		}
		sh.mu.RUnlock()
		shards[s] = ss
	}
	entries, hits := st.cache.stats()
	committed, rolledBack := st.Publishes()
	blocks := map[string]any{}
	if info := st.resume.Load(); info != nil {
		blocks["resume"] = *info
	}
	blocks["store"] = struct {
		Generation   int64        `json:"generation"`
		Shards       []shardStatz `json:"shards"`
		Hedges       int64        `json:"hedges"`
		HedgeWins    int64        `json:"hedge_wins"`
		Failovers    int64        `json:"failovers"`
		Shed         int64        `json:"shed"`
		CacheEntries int          `json:"cache_entries"`
		CacheHits    int64        `json:"cache_hits"`
		Publishes    int64        `json:"publishes"`
		Rollbacks    int64        `json:"rollbacks"`
	}{st.Version(), shards, st.Hedges(), st.HedgeWins(), st.Failovers(), st.Shed(), entries, hits, committed, rolledBack}
	shed, admission, repFail := st.Rejects()
	bCache, bStale := st.BrownoutServes()
	ups, downs := st.ScaleEvents()
	blocks["overload"] = struct {
		Admitted            int64 `json:"admitted"`
		ActiveTenants       int   `json:"active_tenants"`
		RejectsShed         int64 `json:"rejects_shed"`
		RejectsAdmission    int64 `json:"rejects_admission"`
		RejectsReplica      int64 `json:"rejects_replica_failure"`
		BrownoutCacheServes int64 `json:"brownout_cache_serves"`
		BrownoutStaleServes int64 `json:"brownout_stale_serves"`
		ScaleUps            int64 `json:"scale_ups"`
		ScaleDowns          int64 `json:"scale_downs"`
	}{st.Admitted(), st.ActiveTenants(), shed, admission, repFail, bCache, bStale, ups, downs}
	states := st.canaries.snapshotStates()
	if info := st.guardInfo.Load(); info != nil || len(states) > 0 {
		type canaryStatz struct {
			Retailer        string  `json:"retailer"`
			Fraction        float64 `json:"fraction"`
			Version         int64   `json:"version"`
			ControlRequests int64   `json:"control_requests"`
			CanaryRequests  int64   `json:"canary_requests"`
			Outcome         string  `json:"outcome,omitempty"`
		}
		cz := make([]canaryStatz, 0, len(states))
		for _, cs := range states {
			cz = append(cz, canaryStatz{
				Retailer:        string(cs.retailer),
				Fraction:        cs.fraction,
				Version:         cs.version,
				ControlRequests: cs.control.requests.Load(),
				CanaryRequests:  cs.canary.requests.Load(),
				Outcome:         cs.outcomeString(),
			})
		}
		sort.Slice(cz, func(i, j int) bool { return cz[i].Retailer < cz[j].Retailer })
		promoted, rolledBack, expired := st.CanaryDecisions()
		blocks["guard"] = struct {
			Pipeline         *serving.GuardInfo `json:"pipeline,omitempty"`
			CanaryPromotions int64              `json:"canary_promotions"`
			CanaryRollbacks  int64              `json:"canary_rollbacks"`
			CanariesExpired  int64              `json:"canaries_expired"`
			Canaries         []canaryStatz      `json:"canaries,omitempty"`
		}{st.guardInfo.Load(), promoted, rolledBack, expired, cz}
	}
	if info := st.freshness.Load(); info != nil {
		blocks["freshness"] = *info
	}
	blocks["integrity"] = st.integrityInfo()
	return blocks
}

// latencyWindow tracks recent request latencies for the adaptive hedge
// threshold: hedge after the window's configured percentile, floored at
// min. Until enough samples arrive it returns a conservative default so
// cold starts don't hedge every request.
type latencyWindow struct {
	mu     sync.Mutex
	buf    []time.Duration
	n, idx int
	since  int
	cached time.Duration
	pct    float64
	min    time.Duration
	// scratch is the reusable sort buffer for recalcLocked, so the
	// periodic percentile recomputation never allocates.
	scratch []time.Duration
}

const latWindowSize = 512

func newLatencyWindow(pct float64, min time.Duration) *latencyWindow {
	return &latencyWindow{buf: make([]time.Duration, latWindowSize), pct: pct, min: min}
}

func (lw *latencyWindow) record(d time.Duration) {
	lw.mu.Lock()
	lw.buf[lw.idx] = d
	lw.idx = (lw.idx + 1) % len(lw.buf)
	if lw.n < len(lw.buf) {
		lw.n++
	}
	lw.since++
	if lw.since >= 64 || lw.cached == 0 {
		lw.since = 0
		lw.recalcLocked()
	}
	lw.mu.Unlock()
}

func (lw *latencyWindow) recalcLocked() {
	if lw.n == 0 {
		return
	}
	if cap(lw.scratch) < lw.n {
		lw.scratch = make([]time.Duration, lw.n)
	}
	cp := lw.scratch[:lw.n]
	copy(cp, lw.buf[:lw.n])
	slices.Sort(cp)
	p := cp[int(lw.pct*float64(lw.n-1))]
	if p < lw.min {
		p = lw.min
	}
	lw.cached = p
}

// current returns the window's cached percentile with no cold-start
// default — 0 until samples arrive. The autoscaler reads this: before
// traffic there is no latency signal, and the generous cold-start hedge
// default must not read as overload.
func (lw *latencyWindow) current() time.Duration {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	if lw.n == 0 {
		return 0
	}
	return lw.cached
}

func (lw *latencyWindow) threshold() time.Duration {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	if lw.n < 20 {
		// Cold start: a generous default so the first requests don't all
		// hedge before the window has signal.
		if d := 16 * lw.min; d > 2*time.Millisecond {
			return d
		}
		return 2 * time.Millisecond
	}
	return lw.cached
}
