package store

import (
	"container/list"
	"strconv"
	"strings"
	"sync"

	"sigmund/internal/catalog"
	"sigmund/internal/interactions"
	"sigmund/internal/serving"
)

// lruCache is the router's hot-key cache: head queries (popular retailer ×
// context pairs, zipf-distributed in practice) answer without touching a
// replica. Keys embed the shard's committed generation, so a publish
// naturally invalidates: new-generation keys miss and the old entries age
// out of the LRU.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	items map[string]*list.Element

	hits int64 // counted under mu; read via stats()
}

type cacheEntry struct {
	key  string
	recs []serving.Recommendation
	src  serving.Source
}

func newLRUCache(capacity int) *lruCache {
	if capacity <= 0 {
		return nil
	}
	return &lruCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element, capacity)}
}

// get returns a cached answer, promoting the entry. A nil cache misses.
func (c *lruCache) get(key string) ([]serving.Recommendation, serving.Source, bool) {
	if c == nil {
		return nil, serving.SourceNone, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, serving.SourceNone, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	e := el.Value.(*cacheEntry)
	return e.recs, e.src, true
}

// put stores an answer, evicting the coldest entry past capacity.
func (c *lruCache) put(key string, recs []serving.Recommendation, src serving.Source) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		e.recs, e.src = recs, src
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, recs: recs, src: src})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// stats returns (entries, hits).
func (c *lruCache) stats() (int, int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.hits
}

// cacheKey renders a request into its cache identity. The generation
// prefix scopes entries to one published snapshot.
func cacheKey(gen int64, r catalog.RetailerID, uctx interactions.Context, k int) string {
	var b strings.Builder
	b.WriteString(strconv.FormatInt(gen, 10))
	b.WriteByte('|')
	b.WriteString(string(r))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(k))
	for _, a := range uctx {
		b.WriteByte('|')
		b.WriteString(strconv.Itoa(int(a.Type)))
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(int(a.Item)))
	}
	return b.String()
}
