package store

import (
	"container/list"
	"strconv"
	"sync"

	"sigmund/internal/catalog"
	"sigmund/internal/interactions"
	"sigmund/internal/serving"
)

// lruCache is the router's hot-key cache: head queries (popular retailer ×
// context pairs, zipf-distributed in practice) answer without touching a
// replica. Keys embed the shard's committed generation, so a publish
// naturally invalidates: new-generation keys miss and the old entries age
// out of the LRU.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	items map[string]*list.Element

	hits int64 // counted under mu; read via stats()
}

type cacheEntry struct {
	key  string
	recs []serving.Recommendation
	src  serving.Source
}

func newLRUCache(capacity int) *lruCache {
	if capacity <= 0 {
		return nil
	}
	return &lruCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element, capacity)}
}

// get returns a cached answer, promoting the entry. A nil cache misses.
// The key is passed as bytes so a lookup never allocates: the map index
// expression converts without a copy.
func (c *lruCache) get(key []byte) ([]serving.Recommendation, serving.Source, bool) {
	if c == nil {
		return nil, serving.SourceNone, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[string(key)]
	if !ok {
		return nil, serving.SourceNone, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	e := el.Value.(*cacheEntry)
	return e.recs, e.src, true
}

// put stores an answer, evicting the coldest entry past capacity. Only an
// insert materializes the key string; refreshing an existing entry stays
// allocation-free.
func (c *lruCache) put(key []byte, recs []serving.Recommendation, src serving.Source) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[string(key)]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		e.recs, e.src = recs, src
		return
	}
	k := string(key)
	c.items[k] = c.ll.PushFront(&cacheEntry{key: k, recs: recs, src: src})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// stats returns (entries, hits).
func (c *lruCache) stats() (int, int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.hits
}

// keyBufPool recycles cacheKey's scratch buffers; a served request builds
// its key into a pooled buffer, looks up or inserts, and returns it.
var keyBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 128)
	return &b
}}

// cacheKey renders a request into its cache identity, appending to buf
// (pass a pooled buffer's contents sliced to zero). The generation prefix
// scopes entries to one published snapshot.
func cacheKey(buf []byte, gen int64, r catalog.RetailerID, uctx interactions.Context, k int) []byte {
	buf = strconv.AppendInt(buf, gen, 10)
	buf = append(buf, '|')
	buf = append(buf, r...)
	buf = append(buf, '|')
	buf = strconv.AppendInt(buf, int64(k), 10)
	for _, a := range uctx {
		buf = append(buf, '|')
		buf = strconv.AppendInt(buf, int64(a.Type), 10)
		buf = append(buf, ':')
		buf = strconv.AppendInt(buf, int64(a.Item), 10)
	}
	return buf
}
