package store

import (
	"testing"
	"time"

	"sigmund/internal/dfs"
)

// scaleHarness builds a published 1-shard store and a manually-ticked
// autoscaler over it, so tests control time exactly.
func scaleHarness(t *testing.T, replicas int) (*Store, *autoscaler) {
	t.Helper()
	st := New(dfs.New(), Options{Shards: 1, Replicas: replicas, CacheSize: -1})
	t.Cleanup(st.Close)
	st.Publish(testSnapshot(1, testRetailers(8)...))
	if err := st.PublishErr(); err != nil {
		t.Fatalf("publish: %v", err)
	}
	as := newAutoscaler(st, Options{
		MinReplicas: replicas, MaxReplicas: replicas + 2,
		ScaleUpQueue: 3, ScaleDownQueue: 0.5,
	})
	return st, as
}

func setQueues(st *Store, depth int64) {
	sh := st.shards[0]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	for _, rep := range sh.replicas {
		if !rep.Down() {
			rep.inflight.Store(depth)
		}
	}
}

func replicaCounts(st *Store) (live, total int) {
	sh := st.shards[0]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	for _, rep := range sh.replicas {
		if !rep.Down() {
			live++
		}
	}
	return live, len(sh.replicas)
}

func TestAutoscaleUpNeedsConsecutiveHotTicks(t *testing.T) {
	st, as := scaleHarness(t, 2)
	setQueues(st, 10) // well past ScaleUpQueue
	as.tick()
	if _, total := replicaCounts(st); total != 2 {
		t.Fatalf("scaled after one hot tick: %d replicas (hysteresis wants 2 ticks)", total)
	}
	setQueues(st, 10)
	as.tick()
	if _, total := replicaCounts(st); total != 3 {
		t.Fatalf("after 2 hot ticks: %d replicas, want 3", total)
	}
	if ups, _ := st.ScaleEvents(); ups != 1 {
		t.Fatalf("scale-up events = %d, want 1", ups)
	}
}

func TestAutoscaleCooldownAndMaxBound(t *testing.T) {
	st, as := scaleHarness(t, 2) // max = 4
	for i := 0; i < 2; i++ {
		setQueues(st, 10)
		as.tick()
	}
	if _, total := replicaCounts(st); total != 3 {
		t.Fatalf("setup: %d replicas, want 3", total)
	}
	// The cooldown holds the next 5 ticks even though the shard stays hot.
	for i := 0; i < 5; i++ {
		setQueues(st, 10)
		as.tick()
		if _, total := replicaCounts(st); total != 3 {
			t.Fatalf("cooldown tick %d acted: %d replicas", i, total)
		}
	}
	// Past cooldown it grows to max and then stops for good.
	for i := 0; i < 20; i++ {
		setQueues(st, 10)
		as.tick()
	}
	if _, total := replicaCounts(st); total != 4 {
		t.Fatalf("replicas = %d, want capped at max 4", total)
	}
}

func TestAutoscaleDownAfterSustainedIdleRespectsMin(t *testing.T) {
	st, as := scaleHarness(t, 2)
	// Grow to 3 first.
	for i := 0; i < 2; i++ {
		setQueues(st, 10)
		as.tick()
	}
	// Idle: 5 cooldown ticks + 10 idle ticks before the drain fires.
	setQueues(st, 0)
	for i := 0; i < 14; i++ {
		as.tick()
		if live, _ := replicaCounts(st); live != 3 {
			t.Fatalf("tick %d drained early: %d live", i, live)
		}
	}
	as.tick()
	if live, _ := replicaCounts(st); live != 2 {
		t.Fatalf("after sustained idle: %d live replicas, want 2", live)
	}
	if _, downs := st.ScaleEvents(); downs != 1 {
		t.Fatalf("scale-down events = %d, want 1", downs)
	}
	// At min it never drains further, no matter how long it idles.
	for i := 0; i < 30; i++ {
		as.tick()
	}
	if live, _ := replicaCounts(st); live != 2 {
		t.Fatalf("drained below min: %d live", live)
	}
}

func TestAutoscaleUpRevivesBeforeGrowing(t *testing.T) {
	st, as := scaleHarness(t, 2)
	st.KillReplica(0, 1)
	if live, total := replicaCounts(st); live != 1 || total != 2 {
		t.Fatalf("setup: live=%d total=%d", live, total)
	}
	for i := 0; i < 2; i++ {
		setQueues(st, 10)
		as.tick()
	}
	// Capacity came back by revival: live grew, the shard did not.
	if live, total := replicaCounts(st); live != 2 || total != 2 {
		t.Fatalf("after hot ticks: live=%d total=%d, want revive to 2/2", live, total)
	}
}

func TestAutoscaleZeroLiveRecoversImmediately(t *testing.T) {
	st, as := scaleHarness(t, 2)
	st.KillReplica(0, 0)
	st.KillReplica(0, 1)
	as.tick() // no hysteresis when nothing is routable
	if live, _ := replicaCounts(st); live < 1 {
		t.Fatalf("live = %d after outage tick, want >= 1", live)
	}
	if _, _, _, err := st.Serve(testRetailers(1)[0], viewCtx(), 3); err != nil {
		t.Fatalf("serve after recovery: %v", err)
	}
}

func TestAutoscaleLatencyTargetTightensUpThreshold(t *testing.T) {
	st := New(dfs.New(), Options{Shards: 1, Replicas: 2, CacheSize: -1})
	defer st.Close()
	st.Publish(testSnapshot(1, testRetailers(4)...))
	if err := st.PublishErr(); err != nil {
		t.Fatalf("publish: %v", err)
	}
	as := newAutoscaler(st, Options{
		MinReplicas: 2, MaxReplicas: 3,
		ScaleUpQueue: 4, ScaleDownQueue: 0.5,
		ScaleLatency: time.Millisecond,
	})
	// Tail latency over target halves the queue threshold: depth 2 (< 4,
	// >= 2) now reads as hot.
	for i := 0; i < 600; i++ {
		st.lat.record(10 * time.Millisecond)
	}
	for i := 0; i < 2; i++ {
		setQueues(st, 2)
		as.tick()
	}
	if _, total := replicaCounts(st); total != 3 {
		t.Fatalf("latency-tightened threshold did not trigger scale-up: %d replicas", total)
	}
}
