package store

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sigmund/internal/dfs"
	"sigmund/internal/faults"
)

// TestReplicaCrashMidPublishServesNoTornGeneration is the store's core
// chaos guarantee: a replica dying in the middle of a generation's
// bulk-load must not fail a single client request, and no request may ever
// observe a generation other than the previous or the new one. The shard
// that lost its replica commits on the survivor; the dead replica catches
// up from the filesystem manifest on revival.
func TestReplicaCrashMidPublishServesNoTornGeneration(t *testing.T) {
	inj := faults.NewInjector(7, faults.Rule{
		// The first replica to bulk-load generation 2 on shard 0 dies
		// mid-publish, exactly once.
		Ops: []faults.Op{faults.OpReplica}, PathContains: "shard-0/replica-0/load/gen-2",
		Kind: faults.Crash, EveryNth: 1, Times: 1,
	})
	fs := dfs.New()
	st := New(fs, Options{Shards: 2, Replicas: 2, CacheSize: -1, Faults: inj, HedgeAfter: 50 * time.Millisecond})
	defer st.Close()

	retailers := testRetailers(16)
	st.Publish(testSnapshot(1, retailers...))
	if err := st.PublishErr(); err != nil {
		t.Fatalf("publish 1: %v", err)
	}

	// Hammer the store from concurrent clients for the whole publish.
	var (
		stop   atomic.Bool
		failed atomic.Int64
		badGen atomic.Int64
		served atomic.Int64
		wg     sync.WaitGroup
	)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				r := retailers[(c+i)%len(retailers)]
				_, _, gen, err := st.Serve(r, viewCtx(), 5)
				if err != nil {
					failed.Add(1)
					continue
				}
				served.Add(1)
				if gen != 1 && gen != 2 {
					badGen.Add(1)
				}
			}
		}(c)
	}

	time.Sleep(5 * time.Millisecond)
	st.Publish(testSnapshot(2, retailers...))
	pubErr := st.PublishErr()
	time.Sleep(5 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if pubErr != nil {
		t.Fatalf("publish 2 failed despite a surviving replica per shard: %v", pubErr)
	}
	if n := failed.Load(); n != 0 {
		t.Fatalf("%d client requests failed during the mid-publish replica crash", n)
	}
	if n := badGen.Load(); n != 0 {
		t.Fatalf("%d responses served a torn generation (neither 1 nor 2)", n)
	}
	if served.Load() == 0 {
		t.Fatal("no requests served — the test raced past the publish")
	}
	if fired := inj.Fired(); fired == 0 {
		t.Fatal("the crash rule never fired — the scenario did not run")
	}

	// The fleet committed generation 2 everywhere; the crashed replica is
	// down, behind, and excluded from routing.
	if st.Version() != 2 {
		t.Fatalf("Version = %d, want 2", st.Version())
	}
	dead := st.Replica(0, 0)
	if !dead.Down() || dead.Gen() != 1 {
		t.Fatalf("crashed replica: down=%v gen=%d, want down at gen 1", dead.Down(), dead.Gen())
	}
	for s := 0; s < st.NumShards(); s++ {
		if g := st.shards[s].gen.Load(); g != 2 {
			t.Fatalf("shard %d committed generation %d, want 2", s, g)
		}
	}

	// Revival catches the replica up to the committed generation from the
	// filesystem alone.
	if err := st.ReviveReplica(0, 0); err != nil {
		t.Fatalf("ReviveReplica: %v", err)
	}
	if g := dead.Gen(); g != 2 {
		t.Fatalf("revived replica at generation %d, want 2", g)
	}
}

// TestShardWithNoLoadableReplicaStaysUniformlyStale: when every replica of
// one shard fails its bulk-load, that shard keeps serving the old
// generation wholesale while other shards move on — cross-shard skew is
// allowed, within-shard tearing is not.
func TestShardWithNoLoadableReplicaStaysUniformlyStale(t *testing.T) {
	inj := faults.NewInjector(3, faults.Rule{
		Ops: []faults.Op{faults.OpReplica}, PathContains: "shard-0/", Kind: faults.Error, Prob: 1,
	})
	fs := dfs.New()
	st := New(fs, Options{Shards: 2, Replicas: 2, CacheSize: -1, HedgeAfter: 50 * time.Millisecond})
	defer st.Close()
	retailers := testRetailers(16)
	st.Publish(testSnapshot(1, retailers...))
	if err := st.PublishErr(); err != nil {
		t.Fatalf("publish 1: %v", err)
	}

	// Install the injector only for generation 2's loads: every shard-0
	// replica operation (load and serve alike) now fails.
	for _, sh := range st.shards {
		sh.mu.RLock()
		for _, rep := range sh.replicas {
			rep.plan = inj.ReplicaPlan()
		}
		sh.mu.RUnlock()
	}
	st.Publish(testSnapshot(2, retailers...))
	if err := st.PublishErr(); err != nil {
		t.Fatalf("publish 2: %v (shard 1 should still commit)", err)
	}
	if g := st.shards[0].gen.Load(); g != 1 {
		t.Fatalf("shard 0 generation = %d, want 1 (no replica could load)", g)
	}
	if g := st.shards[1].gen.Load(); g != 2 {
		t.Fatalf("shard 1 generation = %d, want 2", g)
	}
	// Shard-0 replicas both still serve generation 1 — uniformly stale.
	for i := 0; i < 2; i++ {
		if g := st.Replica(0, i).Gen(); g != 1 {
			t.Fatalf("shard 0 replica %d at generation %d, want 1", i, g)
		}
	}
	// The next clean publish re-syncs the lagging shard.
	for _, sh := range st.shards {
		sh.mu.RLock()
		for _, rep := range sh.replicas {
			rep.plan = nil
		}
		sh.mu.RUnlock()
	}
	st.Publish(testSnapshot(3, retailers...))
	if err := st.PublishErr(); err != nil {
		t.Fatalf("publish 3: %v", err)
	}
	for s := 0; s < 2; s++ {
		if g := st.shards[s].gen.Load(); g != 3 {
			t.Fatalf("shard %d generation = %d after recovery publish, want 3", s, g)
		}
	}
}

// TestPublishUnderContinuousChaos: many generations published while
// replicas randomly crash-and-revive and flake; no client request may see
// a generation outside the committed window and the store must converge.
func TestPublishUnderContinuousChaos(t *testing.T) {
	inj := faults.NewInjector(11,
		faults.Rule{Ops: []faults.Op{faults.OpReplica}, PathContains: "/serve/", Kind: faults.Error, Prob: 0.05},
		faults.Rule{Ops: []faults.Op{faults.OpReplica}, PathContains: "/load/", Kind: faults.Error, Prob: 0.10},
	)
	fs := dfs.New()
	st := New(fs, Options{Shards: 3, Replicas: 2, CacheSize: -1, Faults: inj, HedgeAfter: 20 * time.Millisecond})
	defer st.Close()
	retailers := testRetailers(24)
	st.Publish(testSnapshot(1, retailers...))
	if err := st.PublishErr(); err != nil {
		t.Fatalf("publish 1: %v", err)
	}

	var stop atomic.Bool
	var served, failed, badGen atomic.Int64
	var minGen atomic.Int64
	minGen.Store(1)
	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				floor := minGen.Load()
				_, _, gen, err := st.Serve(retailers[(c+i)%len(retailers)], viewCtx(), 5)
				if err != nil {
					// Flaky serves exhaust a shard's replica list
					// occasionally under Prob 0.05 errors; that surfaces as
					// an error, not a wrong answer. Count it.
					failed.Add(1)
					continue
				}
				served.Add(1)
				// A response may be one generation behind the last commit
				// started before the read, never more.
				if gen < floor-1 || gen > st.Version()+1 {
					badGen.Add(1)
				}
			}
		}(c)
	}
	for gen := int64(2); gen <= 8; gen++ {
		st.Publish(testSnapshot(gen, retailers...))
		if st.PublishErr() == nil {
			minGen.Store(gen)
		}
		// Let the clients read against this generation before the next
		// publish races in.
		time.Sleep(3 * time.Millisecond)
	}
	// Keep hammering briefly after the last publish so the failover path
	// accumulates real traffic at the final generation.
	time.Sleep(30 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if n := badGen.Load(); n != 0 {
		t.Fatalf("%d responses outside the committed generation window", n)
	}
	// Failovers hide single-replica flakes; a request fails only when every
	// replica of the shard errors (~0.25% at Prob 0.05), so the failure
	// rate must stay far below the raw 5% flake rate.
	if f, s := failed.Load(), served.Load(); f > s/20+10 {
		t.Fatalf("%d/%d requests failed — failover is not absorbing replica flakes", f, f+s)
	}
	if st.Failovers() == 0 {
		t.Fatal("no failovers recorded under 5% serve-error chaos")
	}
}

// TestChaosSeedReproducibility: the same seed yields the same fault
// pattern, so chaos runs replay exactly.
func TestChaosSeedReproducibility(t *testing.T) {
	run := func() (int64, string) {
		inj := faults.NewInjector(5, faults.Rule{
			Ops: []faults.Op{faults.OpReplica}, PathContains: "/serve/", Kind: faults.Error, Prob: 0.2,
		})
		fs := dfs.New()
		st := New(fs, Options{Shards: 2, Replicas: 2, CacheSize: -1, Faults: inj, HedgeAfter: 50 * time.Millisecond, Seed: 9})
		defer st.Close()
		retailers := testRetailers(8)
		st.Publish(testSnapshot(1, retailers...))
		var trace []byte
		for i := 0; i < 200; i++ {
			_, _, _, err := st.Serve(retailers[i%len(retailers)], viewCtx(), 5)
			if err != nil {
				trace = append(trace, 'x')
			} else {
				trace = append(trace, '.')
			}
		}
		return st.Failovers(), string(trace)
	}
	f1, t1 := run()
	f2, t2 := run()
	if f1 != f2 || t1 != t2 {
		t.Fatalf("chaos runs diverged: failovers %d vs %d, traces equal=%v", f1, f2, t1 == t2)
	}
}
