package store

import (
	"fmt"
	"strings"
	"testing"

	"sigmund/internal/catalog"
	"sigmund/internal/core/hybrid"
	"sigmund/internal/core/inference"
	"sigmund/internal/dfs"
	"sigmund/internal/interactions"
	"sigmund/internal/serving"
)

// snapFirst builds a one-retailer generation whose "view:0" answer leads
// with the given item, so tests can tell which generation answered.
func snapFirst(gen int64, r catalog.RetailerID, first catalog.ItemID) *serving.Snapshot {
	per := map[catalog.RetailerID][]inference.ItemRecs{
		r: {
			{Item: 0, View: []hybrid.Scored{{Item: first, Score: 0.9}, {Item: first + 1, Score: 0.8}}},
		},
	}
	pop := map[catalog.RetailerID][]catalog.ItemID{r: {first, first + 1}}
	return serving.BuildSnapshot(gen, per, pop)
}

// varyCtx returns a context that answers from item 0's view list but
// hashes differently per i, spreading requests across both canary arms.
func varyCtx(i int) interactions.Context {
	return interactions.Context{
		{Type: interactions.View, Item: catalog.ItemID(10000 + i)},
		{Type: interactions.View, Item: 0},
	}
}

func TestCanarySliceDeterministicAndProportional(t *testing.T) {
	r := catalog.RetailerID("shop-a")
	hits := 0
	const n = 4000
	for i := 0; i < n; i++ {
		uctx := varyCtx(i)
		arm := canarySlice(r, uctx, 0.2)
		for j := 0; j < 3; j++ {
			if canarySlice(r, uctx, 0.2) != arm {
				t.Fatalf("canarySlice not deterministic for context %d", i)
			}
		}
		if canarySlice(r, uctx, 0) {
			t.Fatal("fraction 0 must never select the canary arm")
		}
		if !canarySlice(r, uctx, 1) {
			t.Fatal("fraction 1 must always select the canary arm")
		}
		if arm {
			hits++
		}
	}
	got := float64(hits) / n
	if got < 0.15 || got > 0.25 {
		t.Fatalf("canary slice at fraction 0.2 captured %.3f of contexts", got)
	}
}

func TestCanaryPublishSplitsTraffic(t *testing.T) {
	fs := dfs.New()
	st := New(fs, Options{Shards: 2, Replicas: 2, CacheSize: -1, CanaryMinSamples: 1 << 30})
	defer st.Close()
	r := catalog.RetailerID("shop-a")
	st.Publish(snapFirst(1, r, 1))
	if err := st.PublishErr(); err != nil {
		t.Fatalf("publish 1: %v", err)
	}
	snap := snapFirst(2, r, 3)
	snap.Status[r].Canary = true
	snap.Status[r].CanaryFraction = 0.5
	st.Publish(snap)
	if err := st.PublishErr(); err != nil {
		t.Fatalf("publish 2: %v", err)
	}

	if st.ActiveCanaries() != 1 {
		t.Fatalf("ActiveCanaries = %d, want 1", st.ActiveCanaries())
	}
	ts := st.TenantStatuses()[r]
	if !ts.Canary || ts.CanaryFraction != 0.5 || ts.RecsVersion != 1 {
		t.Fatalf("tenant status = %+v, want canary at fraction 0.5 with control gen 1", ts)
	}

	var control, canary int
	for i := 0; i < 200; i++ {
		uctx := varyCtx(i)
		recs, _, _, err := st.Serve(r, uctx, 5)
		if err != nil || len(recs) == 0 {
			t.Fatalf("Serve(%d): recs=%v err=%v", i, recs, err)
		}
		if canarySlice(r, uctx, 0.5) {
			canary++
			if recs[0].Item != 3 {
				t.Fatalf("canary-arm context %d answered item %d, want 3 (gen 2)", i, recs[0].Item)
			}
		} else {
			control++
			if recs[0].Item != 1 {
				t.Fatalf("control-arm context %d answered item %d, want 1 (gen 1)", i, recs[0].Item)
			}
		}
	}
	if control == 0 || canary == 0 {
		t.Fatalf("split failed to exercise both arms: control=%d canary=%d", control, canary)
	}
}

func TestCanaryAutoPromote(t *testing.T) {
	fs := dfs.New()
	st := New(fs, Options{Shards: 2, Replicas: 2, CacheSize: -1, CanaryMinSamples: 8})
	defer st.Close()
	r := catalog.RetailerID("shop-a")
	st.Publish(snapFirst(1, r, 1))
	snap := snapFirst(2, r, 3)
	snap.Status[r].Canary = true
	snap.Status[r].CanaryFraction = 0.5
	st.Publish(snap)
	if err := st.PublishErr(); err != nil {
		t.Fatalf("publish 2: %v", err)
	}

	// Both arms serve healthy model answers; once both have enough samples
	// the canary auto-promotes.
	for i := 0; i < 200 && st.ActiveCanaries() > 0; i++ {
		if _, _, _, err := st.Serve(r, varyCtx(i), 5); err != nil {
			t.Fatalf("Serve(%d): %v", i, err)
		}
	}
	promoted, rolledBack, expired := st.CanaryDecisions()
	if promoted != 1 || rolledBack != 0 || expired != 0 {
		t.Fatalf("decisions = (%d, %d, %d), want (1, 0, 0)", promoted, rolledBack, expired)
	}
	if got := st.CanaryOutcome(r); got != "promoted" {
		t.Fatalf("CanaryOutcome = %q, want promoted", got)
	}
	// The whole population now serves the fresh generation.
	for i := 0; i < 50; i++ {
		recs, _, _, err := st.Serve(r, varyCtx(i), 5)
		if err != nil || len(recs) == 0 || recs[0].Item != 3 {
			t.Fatalf("post-promote Serve(%d) = %v (err %v), want item 3 first", i, recs, err)
		}
	}
	ts := st.TenantStatuses()[r]
	if ts.Canary || ts.RecsVersion != 2 {
		t.Fatalf("post-promote status = %+v, want gen 2, no canary", ts)
	}
}

func TestCanaryAutoRollbackOnBadRate(t *testing.T) {
	fs := dfs.New()
	st := New(fs, Options{Shards: 2, Replicas: 2, CacheSize: -1, CanaryMinSamples: 8})
	defer st.Close()
	r := catalog.RetailerID("shop-a")
	st.Publish(snapFirst(1, r, 1))
	// The fresh generation has no model answers at all: every canary-arm
	// request falls back to top sellers while control answers from the
	// model, so the canary's bad rate is 1 against control's 0.
	bad := serving.BuildSnapshot(2, map[catalog.RetailerID][]inference.ItemRecs{r: {}},
		map[catalog.RetailerID][]catalog.ItemID{r: {9}})
	bad.Status[r].Canary = true
	bad.Status[r].CanaryFraction = 0.5
	st.Publish(bad)
	if err := st.PublishErr(); err != nil {
		t.Fatalf("publish 2: %v", err)
	}

	for i := 0; i < 200 && st.ActiveCanaries() > 0; i++ {
		if _, _, _, err := st.Serve(r, varyCtx(i), 5); err != nil {
			t.Fatalf("Serve(%d): %v", i, err)
		}
	}
	promoted, rolledBack, _ := st.CanaryDecisions()
	if promoted != 0 || rolledBack != 1 {
		t.Fatalf("decisions = (%d, %d), want (0, 1)", promoted, rolledBack)
	}
	if got := st.CanaryOutcome(r); got != "rolled_back:bad_rate" {
		t.Fatalf("CanaryOutcome = %q, want rolled_back:bad_rate", got)
	}
	// The degenerate generation never reaches the control population; the
	// tenant converges back on generation 1's model everywhere.
	for i := 0; i < 50; i++ {
		recs, src, _, err := st.Serve(r, varyCtx(i), 5)
		if err != nil || src != serving.SourceModel || len(recs) == 0 || recs[0].Item != 1 {
			t.Fatalf("post-rollback Serve(%d) = %v src=%v err=%v, want item 1 from model", i, recs, src, err)
		}
	}
	ts := st.TenantStatuses()[r]
	if ts.Canary || ts.RecsVersion != 1 {
		t.Fatalf("post-rollback status = %+v, want control gen 1, no canary", ts)
	}
	// The decision is visible on /statz and in the registry.
	blocks := st.StatzBlocks()
	gb, ok := blocks["guard"]
	if !ok {
		t.Fatalf("statz has no guard block: %v", blocks)
	}
	if s := fmt.Sprintf("%+v", gb); !strings.Contains(s, "rolled_back:bad_rate") {
		t.Fatalf("guard statz block missing rollback outcome: %s", s)
	}
	var sb strings.Builder
	st.Observer().Reg().WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `sigmund_guard_canary_decisions_total{outcome="rolled_back"} 1`) {
		t.Fatalf("registry missing canary rollback counter:\n%s", sb.String())
	}
}

func TestCanaryExpiresOnNextPublish(t *testing.T) {
	fs := dfs.New()
	st := New(fs, Options{Shards: 2, Replicas: 1, CacheSize: -1, CanaryMinSamples: 1 << 30})
	defer st.Close()
	r := catalog.RetailerID("shop-a")
	st.Publish(snapFirst(1, r, 1))
	snap := snapFirst(2, r, 3)
	snap.Status[r].Canary = true
	snap.Status[r].CanaryFraction = 0.5
	st.Publish(snap)
	if st.ActiveCanaries() != 1 {
		t.Fatalf("ActiveCanaries = %d, want 1", st.ActiveCanaries())
	}
	// The next generation supersedes the undecided canary.
	st.Publish(snapFirst(3, r, 5))
	if err := st.PublishErr(); err != nil {
		t.Fatalf("publish 3: %v", err)
	}
	_, _, expired := st.CanaryDecisions()
	if expired != 1 || st.ActiveCanaries() != 0 {
		t.Fatalf("expired = %d, active = %d, want 1 and 0", expired, st.ActiveCanaries())
	}
	recs, _, _, err := st.Serve(r, varyCtx(0), 5)
	if err != nil || len(recs) == 0 || recs[0].Item != 5 {
		t.Fatalf("post-expiry Serve = %v (err %v), want item 5 (gen 3)", recs, err)
	}
}
