package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"sigmund/internal/catalog"
	"sigmund/internal/core/inference"
	"sigmund/internal/segment"
	"sigmund/internal/serving"
)

// Segments are the bulk-load unit of the store: one immutable file per
// retailer per generation, written through the shared filesystem by the
// publish phase and read back by every replica of the owning shard. A
// degraded tenant gets no fresh segment; its manifest entry points at the
// last good generation's file instead (stale carry-forward), so a replica
// recovering later can still rebuild the full generation from the
// filesystem alone.
//
// Two wire formats coexist. The publish phase emits v2 ("SSG2",
// internal/segment): a flat offset-indexed layout replicas serve directly
// from the loaded bytes with no per-tenant map reconstruction. The legacy
// v1 format ("SSEG", length-prefixed per-item payloads) is still decoded —
// carry-forward manifests can point at segment files written before the
// format change, and those must keep serving until every tenant has
// published a fresh generation past them.

const segMagic = "SSEG"

// EncodeSegment serializes one retailer's materialized recommendations in
// the v2 flat format. Flat-backed recs pass through byte-for-byte (their
// bytes ARE the canonical encoding); map-backed recs are packed into the
// canonical sorted layout.
func EncodeSegment(rr *serving.RetailerRecs) []byte {
	if rr.Flat != nil {
		return rr.Flat.Bytes()
	}
	items := make([]inference.ItemRecs, 0, len(rr.Recs))
	for _, ir := range rr.Recs {
		items = append(items, ir)
	}
	return segment.Encode(items, rr.TopSellers)
}

// EncodeSegmentV1 serializes recommendations in the legacy v1 format.
// Only tests use it now, to prove the mixed-format carry-forward path.
func EncodeSegmentV1(rr *serving.RetailerRecs) []byte {
	var buf bytes.Buffer
	buf.WriteString(segMagic)
	var b4 [4]byte
	// Items sorted by id so the encoding is byte-deterministic.
	ids := make([]catalog.ItemID, 0, len(rr.Recs))
	for id := range rr.Recs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	binary.LittleEndian.PutUint32(b4[:], uint32(len(ids)))
	buf.Write(b4[:])
	for _, id := range ids {
		payload := inference.EncodeItemRecs(rr.Recs[id])
		binary.LittleEndian.PutUint32(b4[:], uint32(len(payload)))
		buf.Write(b4[:])
		buf.Write(payload)
	}
	binary.LittleEndian.PutUint32(b4[:], uint32(len(rr.TopSellers)))
	buf.Write(b4[:])
	for _, id := range rr.TopSellers {
		binary.LittleEndian.PutUint32(b4[:], uint32(id))
		buf.Write(b4[:])
	}
	return buf.Bytes()
}

// DecodeSegment sniffs the format magic and decodes either generation of
// segment: v2 validates in place and returns a zero-copy flat-backed
// RetailerRecs (retaining data, which must stay immutable); v1 decodes
// into the map-backed heap form.
func DecodeSegment(data []byte) (*serving.RetailerRecs, error) {
	if segment.IsFlat(data) {
		f, err := segment.Parse(data)
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		return &serving.RetailerRecs{Flat: f}, nil
	}
	return decodeSegmentV1(data)
}

// decodeSegmentV1 reverses EncodeSegmentV1.
func decodeSegmentV1(data []byte) (*serving.RetailerRecs, error) {
	r := bytes.NewReader(data)
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != segMagic {
		return nil, fmt.Errorf("store: bad segment encoding (magic %q, err %v)", magic, err)
	}
	var b4 [4]byte
	if _, err := io.ReadFull(r, b4[:]); err != nil {
		return nil, fmt.Errorf("store: truncated segment header: %w", err)
	}
	n := int(binary.LittleEndian.Uint32(b4[:]))
	// Every item costs at least its 4-byte length prefix, so a count the
	// remaining bytes cannot cover is corruption — reject it before
	// allocating anything sized by it.
	if n > r.Len()/4 {
		return nil, fmt.Errorf("store: segment claims %d items in %d bytes", n, r.Len())
	}
	rr := &serving.RetailerRecs{Recs: make(map[catalog.ItemID]inference.ItemRecs, n)}
	for i := 0; i < n; i++ {
		if _, err := io.ReadFull(r, b4[:]); err != nil {
			return nil, fmt.Errorf("store: truncated segment at item %d: %w", i, err)
		}
		size := int(binary.LittleEndian.Uint32(b4[:]))
		if size > r.Len() {
			return nil, fmt.Errorf("store: segment item %d claims %d bytes, %d remain", i, size, r.Len())
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, fmt.Errorf("store: truncated segment payload at item %d: %w", i, err)
		}
		ir, err := inference.DecodeItemRecs(payload)
		if err != nil {
			return nil, fmt.Errorf("store: decoding segment item %d: %w", i, err)
		}
		rr.Recs[ir.Item] = ir
	}
	if _, err := io.ReadFull(r, b4[:]); err != nil {
		return nil, fmt.Errorf("store: truncated top-sellers header: %w", err)
	}
	k := int(binary.LittleEndian.Uint32(b4[:]))
	if k > r.Len()/4 {
		return nil, fmt.Errorf("store: segment claims %d top sellers in %d bytes", k, r.Len())
	}
	rr.TopSellers = make([]catalog.ItemID, 0, k)
	for i := 0; i < k; i++ {
		if _, err := io.ReadFull(r, b4[:]); err != nil {
			return nil, fmt.Errorf("store: truncated top-sellers list: %w", err)
		}
		rr.TopSellers = append(rr.TopSellers, catalog.ItemID(binary.LittleEndian.Uint32(b4[:])))
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("store: %d trailing bytes in segment", r.Len())
	}
	return rr, nil
}

// Manifest describes one published generation: for every retailer, which
// segment file holds its recommendations (possibly from an older
// generation, for stale carry-forward) and its health metadata. The
// manifest is the generation's authoritative file-system record — a
// replica that missed the publish (crashed, partitioned) catches up by
// re-reading it.
type Manifest struct {
	Generation int64           `json:"generation"`
	Entries    []ManifestEntry `json:"entries"`
}

// ManifestEntry is one retailer's row in a generation manifest.
type ManifestEntry struct {
	Retailer catalog.RetailerID `json:"retailer"`
	// Segment is the shared-filesystem path of the retailer's segment. For
	// degraded tenants it points into an older generation's directory.
	Segment string `json:"segment"`
	// RecsVersion is the generation the segment was materialized in.
	RecsVersion int64  `json:"recs_version"`
	Degraded    bool   `json:"degraded,omitempty"`
	Quarantined bool   `json:"quarantined,omitempty"`
	Phase       string `json:"phase,omitempty"`

	// Canary fields, set when the guard sent this tenant's fresh
	// generation to a live canary: Segment/RecsVersion above keep
	// pointing at the control (previous) generation that serves most
	// traffic, while CanarySegment holds the fresh generation served to
	// the CanaryFraction hash-slice until the store promotes or rolls it
	// back.
	CanarySegment  string  `json:"canary_segment,omitempty"`
	CanaryVersion  int64   `json:"canary_version,omitempty"`
	CanaryFraction float64 `json:"canary_fraction,omitempty"`
}

// EncodeManifest serializes a manifest with entries sorted by retailer.
func EncodeManifest(m *Manifest) []byte {
	sort.Slice(m.Entries, func(i, j int) bool { return m.Entries[i].Retailer < m.Entries[j].Retailer })
	data, err := json.Marshal(m)
	if err != nil {
		// Manifest contains only marshalable fields; this is a bug.
		panic(fmt.Sprintf("store: encoding manifest: %v", err))
	}
	return data
}

// DecodeManifest reverses EncodeManifest.
func DecodeManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("store: decoding manifest: %w", err)
	}
	return &m, nil
}

// status converts a manifest entry into the serving layer's per-tenant
// health record.
func (e ManifestEntry) status() *serving.TenantStatus {
	return &serving.TenantStatus{
		Degraded:       e.Degraded,
		Quarantined:    e.Quarantined,
		DegradedPhase:  e.Phase,
		RecsVersion:    e.RecsVersion,
		Canary:         e.CanarySegment != "",
		CanaryFraction: e.CanaryFraction,
	}
}

// Shared-filesystem layout: everything for one generation lives under one
// prefix so rollback and GC are prefix operations.

func genPrefix(gen int64) string {
	return fmt.Sprintf("store/gen-%d/", gen)
}

func segmentPath(gen int64, r catalog.RetailerID) string {
	return fmt.Sprintf("store/gen-%d/seg/%s", gen, r)
}

func manifestPath(gen int64) string {
	return fmt.Sprintf("store/gen-%d/MANIFEST", gen)
}
