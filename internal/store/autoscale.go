package store

import (
	"context"
	"time"
)

// autoscaler is the control plane's third stage: a controller that watches
// the router's sliding latency window and each shard's live queue depth,
// and drives the existing AddReplica/KillReplica/ReviveReplica machinery
// to grow hot shards and drain idle ones. Decisions are hysteretic — a
// shard must look hot (or idle) for several consecutive ticks before the
// controller acts, and every action starts a cooldown — so transient
// bursts don't thrash replica counts. Replica counts stay inside
// [MinReplicas, MaxReplicas]; scale-up prefers reviving a drained replica
// (a cheap catch-up from the committed manifest) over growing the shard.
type autoscaler struct {
	st *Store

	min, max  int
	upQueue   float64 // per-replica queue depth marking a shard hot
	downQueue float64 // per-replica queue depth marking a shard idle
	// latTarget: when the window's tail latency exceeds it, the up
	// threshold halves — queue depth alone misses slow-but-unqueued
	// overload (e.g. one replica absorbing hedges). 0 disables.
	latTarget time.Duration

	upAfter, downAfter int // consecutive hot/idle ticks before acting
	cooldown           int // ticks to hold after any action

	shards []scaleState
}

type scaleState struct {
	upStreak, downStreak, cooldown int
}

func newAutoscaler(st *Store, opts Options) *autoscaler {
	as := &autoscaler{
		st:        st,
		min:       opts.MinReplicas,
		max:       opts.MaxReplicas,
		upQueue:   opts.ScaleUpQueue,
		downQueue: opts.ScaleDownQueue,
		latTarget: opts.ScaleLatency,
		upAfter:   2,
		downAfter: 10,
		cooldown:  5,
		shards:    make([]scaleState, len(st.shards)),
	}
	return as
}

// run ticks the controller until the store closes.
func (as *autoscaler) run(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			as.tick()
		}
	}
}

// tick evaluates every shard once. Exposed separately from run so tests
// drive the controller deterministically.
func (as *autoscaler) tick() {
	up := as.upQueue
	if as.latTarget > 0 && as.st.lat.current() > as.latTarget {
		up /= 2
	}
	for s, sh := range as.st.shards {
		state := &as.shards[s]
		if state.cooldown > 0 {
			state.cooldown--
			continue
		}
		live, total, queue := sh.load()
		if live == 0 {
			// Nothing routable: grow immediately, hysteresis would only
			// prolong the outage.
			if as.scaleUp(s, total) {
				state.cooldown = as.cooldown
			}
			continue
		}
		perReplica := float64(queue) / float64(live)
		switch {
		case perReplica >= up:
			state.upStreak++
			state.downStreak = 0
			if state.upStreak >= as.upAfter && as.scaleUp(s, total) {
				state.upStreak = 0
				state.cooldown = as.cooldown
			}
		case perReplica <= as.downQueue:
			state.downStreak++
			state.upStreak = 0
			if state.downStreak >= as.downAfter && live > as.min && as.scaleDown(s) {
				state.downStreak = 0
				state.cooldown = as.cooldown
			}
		default:
			state.upStreak, state.downStreak = 0, 0
		}
	}
}

// load reports a shard's routable replicas, its configured total, and the
// live queue depth (requests in flight across routable replicas).
func (sh *shard) load() (live, total int, queue int64) {
	gen := sh.gen.Load()
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	total = len(sh.replicas)
	for _, rep := range sh.replicas {
		if rep.Down() || rep.Gen() < gen {
			continue
		}
		live++
		queue += rep.Inflight()
	}
	return live, total, queue
}

// scaleUp adds capacity to one shard: revive a down replica if one
// exists, otherwise grow the shard — bounded by max.
func (as *autoscaler) scaleUp(shardID, total int) bool {
	st := as.st
	sh := st.shards[shardID]
	sh.mu.RLock()
	downIdx := -1
	for i, rep := range sh.replicas {
		if rep.Down() {
			downIdx = i
			break
		}
	}
	sh.mu.RUnlock()
	if downIdx >= 0 {
		if err := st.ReviveReplica(shardID, downIdx); err != nil {
			return false
		}
	} else {
		if total >= as.max {
			return false
		}
		if _, err := st.AddReplica(shardID); err != nil {
			return false
		}
	}
	st.scaleUps.Add(1)
	st.m.scaleUps.Inc()
	return true
}

// scaleDown drains one shard's least-loaded live replica. In this
// simulation Kill is the drain: the replica stops receiving new requests
// immediately (routing checks Down at entry) while requests already past
// that check complete normally; a later scale-up revives it at the
// committed generation.
func (as *autoscaler) scaleDown(shardID int) bool {
	st := as.st
	sh := st.shards[shardID]
	gen := sh.gen.Load()
	sh.mu.RLock()
	idx, best := -1, int64(0)
	for i, rep := range sh.replicas {
		if rep.Down() || rep.Gen() < gen {
			continue
		}
		if q := rep.Inflight(); idx < 0 || q < best {
			idx, best = i, q
		}
	}
	sh.mu.RUnlock()
	if idx < 0 {
		return false
	}
	st.KillReplica(shardID, idx)
	st.scaleDowns.Add(1)
	st.m.scaleDowns.Inc()
	return true
}
