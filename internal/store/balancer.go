package store

import "sync/atomic"

// cheapRNG is a lock-free splitmix64 stream for the routing hot path:
// every call advances the shared state by the golden-ratio gamma and mixes
// it, so concurrent callers draw distinct, well-distributed values with a
// single atomic add and no allocation. Seeded, so routing decisions replay
// under a fixed seed and interleaving.
type cheapRNG struct {
	state atomic.Uint64
}

func newCheapRNG(seed uint64) *cheapRNG {
	r := &cheapRNG{}
	r.state.Store(seed)
	return r
}

func (r *cheapRNG) next() uint64 {
	x := r.state.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// pickTwo is the routing stage's power-of-two-choices step: sample two
// distinct replicas from the eligible list and promote the one with the
// shorter live queue (in-flight requests) to the primary slot. Two random
// probes are enough to shift load off a slow or draining replica with
// exponentially better balance than random choice, without the herding a
// global shortest-queue scan causes; the rest of the list keeps its
// rotation order for failover and hedging.
func pickTwo(reps []*Replica, rng *cheapRNG) {
	n := len(reps)
	if n < 2 {
		return
	}
	x := rng.next()
	i := int(x % uint64(n))
	j := int((x >> 32) % uint64(n-1))
	if j >= i {
		j++
	}
	best := i
	if reps[j].Inflight() < reps[i].Inflight() {
		best = j
	}
	if best != 0 {
		reps[0], reps[best] = reps[best], reps[0]
	}
}
