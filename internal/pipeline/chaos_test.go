package pipeline

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"sigmund/internal/catalog"
	"sigmund/internal/core/bpr"
	"sigmund/internal/core/modelselect"
	"sigmund/internal/dfs"
	"sigmund/internal/faults"
	"sigmund/internal/mapreduce"
	"sigmund/internal/preempt"
	"sigmund/internal/serving"
	"sigmund/internal/synth"
)

// chaosFleet builds a deterministic n-tenant fleet; generating it twice
// with the same seed yields identical tenants, so a faulted run can be
// compared against a fault-free control run.
func chaosFleet(t testing.TB, n int) []*synth.Retailer {
	t.Helper()
	return synth.GenerateFleet(synth.FleetSpec{
		NumRetailers: n, MinItems: 40, MaxItems: 80,
		UsersPerItem: 1.0, EventsPerUserMean: 10, Seed: 1234,
	})
}

func mustAdd(t testing.TB, p *Pipeline, r *synth.Retailer) {
	t.Helper()
	if err := p.AddRetailer(r.Catalog, r.Log); err != nil {
		t.Fatal(err)
	}
}

// TestMultiDayChaosPerTenantFaultDomains is the end-to-end degradation
// scenario: over a multi-day run, faults are injected into exactly one
// tenant's training and another tenant's inference on day 1. Exactly those
// tenants must degrade — healthy tenants' published recommendations stay
// byte-identical to a fault-free control run — and the degraded tenants
// keep serving the previous day's recommendations, observable through the
// /statz version metadata.
func TestMultiDayChaosPerTenantFaultDomains(t *testing.T) {
	run := func(inj *faults.Injector) (*Pipeline, *serving.Server) {
		opts := testOptions()
		opts.Injector = inj
		server := serving.NewServer()
		p := New(dfs.New(), server, opts)
		for _, r := range chaosFleet(t, 3) {
			mustAdd(t, p, r)
		}
		return p, server
	}

	fleet := chaosFleet(t, 3)
	trainVictim := fleet[0].Catalog.Retailer
	inferVictim := fleet[1].Catalog.Retailer
	healthy := fleet[len(fleet)-1].Catalog.Retailer

	inj := faults.NewInjector(42,
		faults.Rule{Ops: []faults.Op{faults.OpTrain}, PathContains: "days/1/" + string(trainVictim), EveryNth: 1},
		faults.Rule{Ops: []faults.Op{faults.OpInfer}, PathContains: "days/1/" + string(inferVictim), EveryNth: 1},
	)
	control, controlServer := run(nil)
	chaos, chaosServer := run(inj)

	// Day 0: fault-free everywhere (the rules are scoped to day 1), giving
	// every tenant a good snapshot to fall back on.
	for _, p := range []*Pipeline{control, chaos} {
		rep, err := p.RunDay(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Degraded) != 0 {
			t.Fatalf("day 0 degraded: %v", rep.Degraded)
		}
	}
	day0Victim := chaosServer.Snapshot().Retailers[trainVictim]
	day0InferVictim := chaosServer.Snapshot().Retailers[inferVictim]

	// Day 1: chaos.
	if _, err := control.RunDay(context.Background()); err != nil {
		t.Fatal(err)
	}
	rep, err := chaos.RunDay(context.Background())
	if err != nil {
		t.Fatalf("chaos day returned a fleet-level error: %v", err)
	}

	wantDegraded := map[catalog.RetailerID]string{
		trainVictim: PhaseTrain,
		inferVictim: PhaseInfer,
	}
	for _, rr := range rep.Retailers {
		phase, want := wantDegraded[rr.Retailer]
		if rr.Degraded != want {
			t.Fatalf("%s: Degraded = %v, want %v (%+v)", rr.Retailer, rr.Degraded, want, rr)
		}
		if want && rr.DegradedPhase != phase {
			t.Fatalf("%s: phase = %q, want %q (err: %s)", rr.Retailer, rr.DegradedPhase, phase, rr.Err)
		}
		if want && rr.Err == "" {
			t.Fatalf("%s: degraded without an error", rr.Retailer)
		}
	}
	if len(rep.Degraded) != len(wantDegraded) {
		t.Fatalf("Degraded = %v", rep.Degraded)
	}

	// Healthy tenants are byte-identical to the fault-free control run.
	chaosSnap := chaosServer.Snapshot()
	controlSnap := controlServer.Snapshot()
	if !reflect.DeepEqual(chaosSnap.Retailers[healthy], controlSnap.Retailers[healthy]) {
		t.Fatalf("healthy tenant %s diverged from the fault-free run", healthy)
	}

	// Degraded tenants serve yesterday's recommendations: the carried
	// forward RetailerRecs are the day-0 generation, and the snapshot
	// metadata says so.
	if chaosSnap.Retailers[trainVictim] != day0Victim {
		t.Fatalf("%s: recs not carried forward from day 0", trainVictim)
	}
	if chaosSnap.Retailers[inferVictim] != day0InferVictim {
		t.Fatalf("%s: recs not carried forward from day 0", inferVictim)
	}
	if got := chaosServer.SnapshotAge(trainVictim); got != 1 {
		t.Fatalf("SnapshotAge(%s) = %d, want 1", trainVictim, got)
	}
	if got := chaosServer.SnapshotAge(healthy); got != 0 {
		t.Fatalf("SnapshotAge(%s) = %d, want 0", healthy, got)
	}

	// Stale tenants still answer requests, and the serve is counted.
	if recs := chaosServer.Recommend(trainVictim, nil, 5); len(recs) == 0 {
		t.Fatalf("%s: no recommendations while degraded", trainVictim)
	}
	if chaosServer.StaleServes() == 0 {
		t.Fatal("stale serve not counted")
	}

	// /statz exposes the degradation and the per-tenant staleness.
	rr := httptest.NewRecorder()
	serving.NewHandler(chaosServer).ServeHTTP(rr, httptest.NewRequest("GET", "/statz", nil))
	var statz struct {
		Version     int64    `json:"version"`
		StaleServes int64    `json:"stale_serves"`
		Degraded    []string `json:"degraded"`
		Tenants     map[string]struct {
			Degraded      bool   `json:"degraded"`
			DegradedPhase string `json:"degraded_phase"`
			RecsVersion   int64  `json:"recs_version"`
			SnapshotAge   int64  `json:"snapshot_age"`
		} `json:"tenants"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &statz); err != nil {
		t.Fatalf("statz: %v (%s)", err, rr.Body.String())
	}
	if statz.Version != 2 || len(statz.Degraded) != 2 {
		t.Fatalf("statz = %+v", statz)
	}
	tv := statz.Tenants[string(trainVictim)]
	if !tv.Degraded || tv.DegradedPhase != PhaseTrain || tv.RecsVersion != 1 || tv.SnapshotAge != 1 {
		t.Fatalf("statz[%s] = %+v", trainVictim, tv)
	}
	if hv := statz.Tenants[string(healthy)]; hv.Degraded || hv.SnapshotAge != 0 {
		t.Fatalf("statz[%s] = %+v", healthy, hv)
	}
	if statz.StaleServes == 0 {
		t.Fatal("statz stale_serves = 0")
	}

	// Day 2: faults gone; the degraded tenants recover and serve fresh.
	rep, err = chaos.RunDay(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Degraded) != 0 {
		t.Fatalf("day 2 degraded: %v", rep.Degraded)
	}
	if got := chaosServer.SnapshotAge(trainVictim); got != 0 {
		t.Fatalf("after recovery SnapshotAge(%s) = %d", trainVictim, got)
	}
	if _, err := control.RunDay(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(chaosServer.Snapshot().Retailers[healthy], controlServer.Snapshot().Retailers[healthy]) {
		t.Fatalf("healthy tenant %s diverged on the recovery day", healthy)
	}
}

// TestQuarantineLifecycle drives one tenant through the full state
// machine: consecutive failures -> quarantine -> skipped days -> failed
// re-admission probe -> successful probe -> full re-admission. A healthy
// tenant riding along must never be affected.
func TestQuarantineLifecycle(t *testing.T) {
	fleet := chaosFleet(t, 2)
	victim := fleet[0].Catalog.Retailer
	healthy := fleet[1].Catalog.Retailer

	// Training fails on days 1, 2 (entering quarantine after the 2nd
	// consecutive failure) and on day 4 (the first re-admission probe);
	// the day-6 probe finds the tenant healthy again.
	inj := faults.NewInjector(7,
		faults.Rule{Ops: []faults.Op{faults.OpTrain}, PathContains: "days/1/" + string(victim), EveryNth: 1},
		faults.Rule{Ops: []faults.Op{faults.OpTrain}, PathContains: "days/2/" + string(victim), EveryNth: 1},
		faults.Rule{Ops: []faults.Op{faults.OpTrain}, PathContains: "days/4/" + string(victim), EveryNth: 1},
	)
	opts := testOptions()
	opts.Injector = inj
	opts.QuarantineAfter = 2
	opts.QuarantineProbeEvery = 2
	server := serving.NewServer()
	p := New(dfs.New(), server, opts)
	mustAdd(t, p, fleet[0])
	mustAdd(t, p, fleet[1])

	victimReport := func(rep DayReport) RetailerReport {
		for _, rr := range rep.Retailers {
			if rr.Retailer == victim {
				return rr
			}
		}
		t.Fatalf("day %d: victim missing from report", rep.Day)
		return RetailerReport{}
	}
	type expect struct {
		phase       string // "" = healthy
		quarantined bool
		consec      int
	}
	want := []expect{
		{"", false, 0},             // day 0: baseline
		{PhaseTrain, false, 1},     // day 1: first failure
		{PhaseTrain, true, 2},      // day 2: second failure -> quarantined
		{PhaseQuarantine, true, 2}, // day 3: skipped in quarantine
		{PhaseTrain, true, 3},      // day 4: probe runs and fails
		{PhaseQuarantine, true, 3}, // day 5: skipped again
		{"", false, 0},             // day 6: probe succeeds -> readmitted
	}
	for day, w := range want {
		rep, err := p.RunDay(context.Background())
		if err != nil {
			t.Fatalf("day %d: %v", day, err)
		}
		got := victimReport(rep)
		if (got.DegradedPhase != w.phase) || (got.Quarantined != w.quarantined) || (got.ConsecutiveFailures != w.consec) {
			t.Fatalf("day %d: phase=%q quarantined=%v consec=%d, want %+v (err: %s)",
				day, got.DegradedPhase, got.Quarantined, got.ConsecutiveFailures, w, got.Err)
		}
		for _, rr := range rep.Retailers {
			if rr.Retailer == healthy && rr.Degraded {
				t.Fatalf("day %d: healthy tenant degraded: %+v", day, rr)
			}
		}
	}

	// Throughout the quarantine the victim kept serving its day-0 recs;
	// after re-admission it serves fresh ones.
	if got := server.SnapshotAge(victim); got != 0 {
		t.Fatalf("after re-admission SnapshotAge = %d", got)
	}
	if recs := server.Recommend(victim, nil, 5); len(recs) == 0 {
		t.Fatal("victim serving nothing after re-admission")
	}
}

// TestGarbledCheckpointFallsBack covers the non-fatal checkpoint-recovery
// path: a training task that finds an unreadable checkpoint discards it
// (counted), GCs it, and falls back to a fresh model instead of failing.
func TestGarbledCheckpointFallsBack(t *testing.T) {
	fs := dfs.New()
	p := New(fs, nil, testOptions())
	r := chaosFleet(t, 1)[0]
	mustAdd(t, p, r)

	base := checkpointBase(0, "m")
	if err := fs.Write(base+"/ckpt.0", []byte("not a model")); err != nil {
		t.Fatal(err)
	}
	rec := modelselect.ConfigRecord{
		Retailer: r.Catalog.Retailer, ModelID: "m", Hyper: bpr.DefaultHyperparams(),
	}
	model, err := p.buildModel(rec, r.Catalog, base)
	if err != nil {
		t.Fatalf("garbled checkpoint sank the task: %v", err)
	}
	if model == nil {
		t.Fatal("no model built")
	}
	if got := p.discardedCkpts.Load(); got != 1 {
		t.Fatalf("discardedCkpts = %d, want 1", got)
	}
	if _, ok := dfs.LatestCheckpoint(fs, base); ok {
		t.Fatal("garbled checkpoint not GCed")
	}
}

// TestCheckpointWriteFailuresMidTraining verifies that a filesystem where
// every checkpoint write fails does not sink training: checkpoint saves
// are best-effort (the train loop drops the failed save and continues),
// and the day completes with every tenant healthy.
func TestCheckpointWriteFailuresMidTraining(t *testing.T) {
	fs := dfs.New()
	fs.SetInjector(faults.NewInjector(3, faults.Rule{
		Ops: []faults.Op{faults.OpWrite, faults.OpRename}, PathContains: "/ckpt/", EveryNth: 1,
	}))
	opts := testOptions()
	opts.CheckpointEvery = time.Millisecond
	server := serving.NewServer()
	p := New(fs, server, opts)
	r := chaosFleet(t, 1)[0]
	mustAdd(t, p, r)

	rep, err := p.RunDay(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Degraded) != 0 {
		t.Fatalf("degraded under checkpoint-write failures: %+v", rep.Retailers)
	}
	if rr := rep.Retailers[0]; rr.BestMAP <= 0 || rr.ItemsServed == 0 {
		t.Fatalf("day did not complete normally: %+v", rr)
	}
	if got := fs.List("days/0/ckpt/"); len(got) != 0 {
		t.Fatalf("checkpoints exist despite every write failing: %v", got)
	}
}

// TestWorkerPreemptionChaosDay is the end-to-end acceptance scenario for
// the preemptible-worker substrate: a full daily cycle where every
// training and inference MapReduce runs on preemptible workers — a seeded
// exponential arrival process with a mean well above the per-task runtime
// (the C6 regime time-scaled to test speed), plus one deterministic
// zero-delay crash per job so the preemption assertions never depend on
// timing. Every tenant's day must complete with zero lost or duplicated
// output: the published snapshot is byte-identical to a fault-free
// control run, and the day's counters and /statz report the preemptions.
func TestWorkerPreemptionChaosDay(t *testing.T) {
	run := func(sub mapreduce.Substrate) (DayReport, *serving.Server) {
		opts := testOptions()
		opts.Substrate = sub
		server := serving.NewServer()
		p := New(dfs.New(), server, opts)
		for _, r := range chaosFleet(t, 3) {
			mustAdd(t, p, r)
		}
		rep, err := p.RunDay(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep, server
	}

	controlRep, controlServer := run(mapreduce.Substrate{})
	chaosRep, chaosServer := run(mapreduce.Substrate{
		Preemption:  preempt.FromMeanBetween(250*time.Millisecond, 99),
		Speculative: true,
		WorkerFaults: func(phase mapreduce.Phase, _, _, task, attempt int) (mapreduce.WorkerFault, time.Duration) {
			// Exactly one guaranteed preemption per job: the first attempt
			// of map task 0 crashes at attempt start and is requeued.
			if phase == mapreduce.MapPhase && task == 0 && attempt == 0 {
				return mapreduce.WorkerCrash, 0
			}
			return mapreduce.WorkerOK, 0
		},
	})

	// Every tenant completes its day despite the preemptions.
	if len(chaosRep.Degraded) != 0 {
		t.Fatalf("degraded under preemption: %v", chaosRep.Degraded)
	}
	var total mapreduce.Counters
	total.Add(chaosRep.TrainCounters)
	total.Add(chaosRep.InferCounters)
	if total.Preemptions == 0 {
		t.Fatal("no preemptions counted despite injected crashes")
	}
	if total.MapAttempts <= controlRep.TrainCounters.MapAttempts+controlRep.InferCounters.MapAttempts {
		t.Fatalf("preempted attempts not re-executed: %d attempts vs control %d",
			total.MapAttempts, controlRep.TrainCounters.MapAttempts+controlRep.InferCounters.MapAttempts)
	}

	// Exactly-once output: the published snapshot — every tenant's full
	// recommendation store — is byte-identical to the fault-free control.
	if !reflect.DeepEqual(chaosServer.Snapshot().Retailers, controlServer.Snapshot().Retailers) {
		t.Fatal("preempted run's snapshot differs from fault-free control")
	}

	// The day's substrate counters surface on /statz.
	rr := httptest.NewRecorder()
	serving.NewHandler(chaosServer).ServeHTTP(rr, httptest.NewRequest("GET", "/statz", nil))
	var statz struct {
		MapReduce struct {
			MapAttempts int64 `json:"map_attempts"`
			Preemptions int64 `json:"preemptions"`
		} `json:"mapreduce"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &statz); err != nil {
		t.Fatalf("statz: %v (%s)", err, rr.Body.String())
	}
	if statz.MapReduce.Preemptions != total.Preemptions || statz.MapReduce.MapAttempts == 0 {
		t.Fatalf("statz mapreduce block = %+v, want %d preemptions", statz.MapReduce, total.Preemptions)
	}
}
