package pipeline

import (
	"context"
	"fmt"
	"math"
	"strconv"

	"sigmund/internal/catalog"
	"sigmund/internal/core/hybrid"
	"sigmund/internal/core/inference"
	"sigmund/internal/faults"
	"sigmund/internal/guard"
	"sigmund/internal/obs"
	"sigmund/internal/serving"
)

// modelCliffFactor is how hard an injected ModelCliff craters a tenant's
// offline selection metric — far below any MinMAPRatio a sane config
// would use.
const modelCliffFactor = 0.05

// runGuard is the publish-time quality firewall: after inference has
// materialized the day's candidate snapshot, every healthy tenant's
// candidate is evaluated against structural invariants and its trailing
// per-tenant baseline. Vetoed tenants are folded into the existing
// degraded machinery (carry forward generation N−1); borderline tenants
// are flagged for a live canary in the snapshot status; passing tenants
// fold the day's measurements into their baseline.
//
// Determinism: tenants are processed in sorted (admitted) order, each
// verdict is committed to the day journal before it is applied, and a
// journaled verdict always overrides the freshly computed one — so a
// resume replays identical verdicts even though the baseline may already
// have been folded forward by the crashed incarnation.
func (p *Pipeline) runGuard(ctx context.Context, day int, admitted []catalog.RetailerID,
	tenants map[catalog.RetailerID]*Tenant, perRetailer map[catalog.RetailerID]*RetailerReport,
	degraded map[catalog.RetailerID]*degradation, snap *serving.Snapshot,
	report *DayReport, dspan *obs.Span, dj *dayJournal) error {

	g := p.opts.Guard.Defaulted()
	gspan := dspan.Child("guard")
	for _, r := range admitted {
		if degraded[r] != nil || snap.Retailers[r] == nil {
			continue
		}
		rep := perRetailer[r]
		report.GuardEvaluated++

		grep, adjMAP := p.evaluateGuard(day, r, rep.BestMAP, snap.Retailers[r], tenants[r].Catalog.NumItems())
		rep.BestMAP = adjMAP

		verdict, reason := grep.Verdict, grep.Reason
		if dj != nil {
			if jr := dj.guardRecord(r); jr != nil {
				verdict, reason = guard.Verdict(jr.Verdict), jr.Reason
			} else if err := dj.append(ctx, journalRecord{Type: recGuard, Retailer: r, Verdict: string(verdict), Reason: reason}); err != nil {
				return err
			}
		}
		rep.GuardVerdict = string(verdict)
		rep.GuardReason = reason

		tspan := gspan.Child("tenant:"+string(r), obs.L("verdict", string(verdict)))
		if reason != "" {
			tspan.SetAttr("reason", reason)
		}
		tspan.SetAttr("map", strconv.FormatFloat(grep.MAP, 'g', 4, 64))
		tspan.End()

		switch verdict {
		case guard.VerdictVeto:
			degraded[r] = &degradation{
				phase: PhaseGuard,
				err:   fmt.Errorf("pipeline: guard vetoed publish: %s", reason),
			}
			// Drop the candidate so both publishers carry forward the
			// tenant's previous generation (MarkDegraded at publish
			// re-creates the status entry).
			delete(snap.Retailers, r)
			delete(snap.Status, r)
			report.Vetoed = append(report.Vetoed, r)
		case guard.VerdictCanary:
			st := snap.Status[r]
			if st == nil {
				st = &serving.TenantStatus{RecsVersion: snap.Version}
				snap.Status[r] = st
			}
			st.Canary = true
			st.CanaryFraction = g.CanaryFraction
			report.Canaried = append(report.Canaried, r)
		case guard.VerdictPass:
			p.foldGuardBaseline(day, r, grep)
		}
	}
	gspan.End()
	return nil
}

// evaluateGuard is the per-tenant verdict core shared by runGuard and the
// scheduler's guard jobs: apply any injected metric-cliff degradation to
// the selection metric, load the tenant's trailing baseline, and run every
// gate. It does not fold the baseline — callers journal the verdict first
// (see foldGuardBaseline). The returned float is the cliff-adjusted MAP.
func (p *Pipeline) evaluateGuard(day int, r catalog.RetailerID, bestMAP float64, rr *serving.RetailerRecs, catalogSize int) (guard.Report, float64) {
	g := p.opts.Guard.Defaulted()
	// Metric-cliff injection: a bad hyper-parameter draw whose damage
	// only offline eval can see. Applied to the selection metric the
	// guard consumes, deterministically per tenant-day.
	if _, ok := p.opts.Injector.ModelFault(faultPath(day, r), faults.ModelCliff); ok {
		bestMAP *= modelCliffFactor
	}
	base := guard.LoadBaseline(p.fs, r)
	grep := guard.Evaluate(guard.Candidate{
		MAP:         bestMAP,
		Recs:        rr,
		CatalogSize: catalogSize,
	}, base, g)
	return grep, bestMAP
}

// foldGuardBaseline folds a passing cycle's measurements into the
// tenant's baseline — but only once per day/cycle, so a crash-resume that
// replays the verdict does not double-fold. A transiently failed save
// just leaves the baseline one cycle staler (best-effort).
func (p *Pipeline) foldGuardBaseline(day int, r catalog.RetailerID, grep guard.Report) {
	g := p.opts.Guard.Defaulted()
	base := guard.LoadBaseline(p.fs, r)
	if base == nil {
		base = &guard.Baseline{}
	}
	if base.Days == 0 || base.Day < day {
		base.Fold(grep, day, g.Alpha)
		_ = guard.SaveBaseline(p.fs, r, base)
	}
}

// guardInfo condenses a finished day's guard activity for the /statz
// "guard" block.
func guardInfo(report DayReport) serving.GuardInfo {
	info := serving.GuardInfo{Day: report.Day, Evaluated: report.GuardEvaluated}
	for _, rep := range report.Retailers {
		switch guard.Verdict(rep.GuardVerdict) {
		case guard.VerdictPass:
			info.Passed++
		case guard.VerdictVeto:
			info.Vetoed = append(info.Vetoed, string(rep.Retailer))
			if info.VetoReasons == nil {
				info.VetoReasons = map[string]int{}
			}
			info.VetoReasons[rep.GuardReason]++
		case guard.VerdictCanary:
			info.Canaried = append(info.Canaried, string(rep.Retailer))
		}
	}
	return info
}

// emitGuardMetrics rolls one finished day's guard verdicts into the
// registry. Reasons are a bounded label set; tenant identity stays out of
// labels as everywhere else.
func (p *Pipeline) emitGuardMetrics(report DayReport) {
	reg := p.opts.Obs.Reg()
	if reg == nil {
		return
	}
	verdictHelp := "Guard verdicts on candidate generations, by verdict."
	vetoHelp := "Guard vetoes, by the gate that tripped."
	for _, rep := range report.Retailers {
		if rep.GuardVerdict == "" {
			continue
		}
		reg.Counter("sigmund_guard_verdicts_total", verdictHelp, obs.L("verdict", rep.GuardVerdict)).Inc()
		if rep.GuardVerdict == string(guard.VerdictVeto) {
			reg.Counter("sigmund_guard_vetoes_total", vetoHelp, obs.L("reason", rep.GuardReason)).Inc()
		}
	}
}

// degradeModelOutput applies a degenerate-model fault to one tenant's
// materialized lists, in place. ModelNaN poisons every score with NaN
// (broken embeddings); ModelCollapse rewrites every item's lists to the
// first item's (a constant scorer). Both are deterministic so a replayed
// day reproduces the same corruption byte for byte.
func degradeModelOutput(kind faults.Kind, items []inference.ItemRecs) {
	switch kind {
	case faults.ModelNaN:
		nan := math.NaN()
		for i := range items {
			for _, list := range [][]hybrid.Scored{items[i].View, items[i].Purchase, items[i].LateFunnel} {
				for j := range list {
					list[j].Score = nan
				}
			}
		}
	case faults.ModelCollapse:
		if len(items) == 0 {
			return
		}
		src := items[0]
		for i := 1; i < len(items); i++ {
			items[i].View = src.View
			items[i].Purchase = src.Purchase
			items[i].LateFunnel = src.LateFunnel
		}
	}
}
