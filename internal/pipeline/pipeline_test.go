package pipeline

import (
	"context"
	"strings"
	"testing"
	"time"

	"sigmund/internal/catalog"
	"sigmund/internal/core/bpr"
	"sigmund/internal/core/modelselect"
	"sigmund/internal/dfs"
	"sigmund/internal/interactions"
	"sigmund/internal/mapreduce"
	"sigmund/internal/serving"
	"sigmund/internal/synth"
	"sigmund/internal/taxonomy"
)

func testOptions() Options {
	return Options{
		Grid:              modelselect.SmallGrid(),
		BaseHyper:         bpr.DefaultHyperparams(),
		FullEpochs:        4,
		IncrementalEpochs: 2,
		TopKIncremental:   2,
		TrainWorkers:      4,
		TrainThreads:      1,
		Cells:             2,
		InferTopK:         5,
		InferWorkers:      2,
		HeadMinEvents:     20,
		Seed:              1,
	}
}

func smallFleet(t testing.TB, n int, seed uint64) []*synth.Retailer {
	t.Helper()
	return synth.GenerateFleet(synth.FleetSpec{
		NumRetailers: n, MinItems: 40, MaxItems: 120,
		UsersPerItem: 1.0, EventsPerUserMean: 10, Seed: seed,
	})
}

func TestEncodeDecodeLog(t *testing.T) {
	r := synth.GenerateRetailer(synth.RetailerSpec{NumItems: 50, NumUsers: 30, Seed: 3})
	data := EncodeLog(r.Log)
	got, err := DecodeLog(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != r.Log.Len() {
		t.Fatalf("lengths differ: %d vs %d", got.Len(), r.Log.Len())
	}
	a, b := r.Log.Events(), got.Events()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs", i)
		}
	}
	if _, err := DecodeLog([]byte("garbage")); err == nil {
		t.Fatal("garbage decoded")
	}
	if _, err := DecodeLog(data[:len(data)/2]); err == nil {
		t.Fatal("truncated log decoded")
	}
}

func TestEncodeDecodeHoldout(t *testing.T) {
	h := []interactions.HoldoutExample{
		{User: 3, Item: 7, Context: interactions.Context{{Type: interactions.View, Item: 1}}},
		{User: 4, Item: 9, Context: nil},
	}
	got, err := DecodeHoldout(EncodeHoldout(h))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Item != 7 || got[0].Context[0].Item != 1 || got[1].User != 4 {
		t.Fatalf("roundtrip: %+v", got)
	}
	if _, err := DecodeHoldout([]byte("{bad json\n")); err == nil {
		t.Fatal("bad holdout decoded")
	}
}

func TestEncodeDecodeConfigRecord(t *testing.T) {
	rec := modelselect.ConfigRecord{
		Retailer: "r", ModelID: "r/x", Hyper: bpr.DefaultHyperparams(),
		TrainDataPath: "p", ModelPath: "m", Epochs: 5,
	}
	got, err := DecodeConfigRecord(EncodeConfigRecord(rec))
	if err != nil {
		t.Fatal(err)
	}
	if got.ModelID != rec.ModelID || got.Hyper != rec.Hyper {
		t.Fatalf("roundtrip: %+v", got)
	}
	if _, err := DecodeConfigRecord([]byte("nope")); err == nil {
		t.Fatal("bad record decoded")
	}
}

func TestRunDayFullCycle(t *testing.T) {
	fs := dfs.New()
	server := serving.NewServer()
	p := New(fs, server, testOptions())
	fleet := smallFleet(t, 3, 71)
	for _, r := range fleet {
		p.AddRetailer(r.Catalog, r.Log)
	}
	if p.NumTenants() != 3 {
		t.Fatalf("tenants = %d", p.NumTenants())
	}

	report, err := p.RunDay(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Retailers) != 3 {
		t.Fatalf("report covers %d retailers", len(report.Retailers))
	}
	grid := modelselect.SmallGrid().Size()
	for _, rr := range report.Retailers {
		if !rr.FullSweep {
			t.Fatalf("%s: first day must be a full sweep", rr.Retailer)
		}
		if rr.ConfigsPlaned != grid || rr.ConfigsOK != grid {
			t.Fatalf("%s: configs %d/%d, want %d trained", rr.Retailer, rr.ConfigsOK, rr.ConfigsPlaned, grid)
		}
		if rr.BestMAP <= 0 || rr.BestModelID == "" {
			t.Fatalf("%s: no best model selected: %+v", rr.Retailer, rr)
		}
		if rr.ItemsServed == 0 {
			t.Fatalf("%s: nothing materialized", rr.Retailer)
		}
	}
	if !report.SnapshotPushed || server.Version() != 1 {
		t.Fatalf("snapshot not pushed: %+v, version %d", report, server.Version())
	}
	if p.Day() != 1 {
		t.Fatalf("Day = %d", p.Day())
	}

	// Models live in the shared filesystem.
	if len(fs.List("days/0/models/")) != 3*grid {
		t.Fatalf("models persisted: %v", fs.List("days/0/models/"))
	}
	// Checkpoints were cleaned after success.
	for _, path := range fs.List("days/0/ckpt/") {
		t.Fatalf("leftover checkpoint %s", path)
	}

	// The snapshot actually answers requests.
	r0 := fleet[0]
	stats := interactions.ComputeItemStats(r0.Log, r0.Catalog.NumItems())
	popular := stats.PopularityOrder()[0]
	recs := server.Recommend(r0.Catalog.Retailer, interactions.Context{{Type: interactions.View, Item: popular}}, 5)
	if len(recs) == 0 {
		t.Fatal("no recommendations served for a popular item")
	}
}

func TestSecondDayIsIncremental(t *testing.T) {
	fs := dfs.New()
	server := serving.NewServer()
	opts := testOptions()
	p := New(fs, server, opts)
	fleet := smallFleet(t, 2, 72)
	for _, r := range fleet {
		p.AddRetailer(r.Catalog, r.Log)
	}
	if _, err := p.RunDay(context.Background()); err != nil {
		t.Fatal(err)
	}
	report, err := p.RunDay(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, rr := range report.Retailers {
		if rr.FullSweep {
			t.Fatalf("%s: second day should be incremental", rr.Retailer)
		}
		if rr.ConfigsPlaned != opts.TopKIncremental {
			t.Fatalf("%s: incremental planned %d configs, want %d", rr.Retailer, rr.ConfigsPlaned, opts.TopKIncremental)
		}
		if rr.BestMAP <= 0 {
			t.Fatalf("%s: incremental produced no model", rr.Retailer)
		}
	}
	if server.Version() != 2 {
		t.Fatalf("snapshot version = %d", server.Version())
	}
}

func TestNewRetailerGetsFullSweepMidFleet(t *testing.T) {
	fs := dfs.New()
	p := New(fs, serving.NewServer(), testOptions())
	fleet := smallFleet(t, 2, 73)
	p.AddRetailer(fleet[0].Catalog, fleet[0].Log)
	if _, err := p.RunDay(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Second retailer signs up after day 0.
	p.AddRetailer(fleet[1].Catalog, fleet[1].Log)
	report, err := p.RunDay(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var oldRep, newRep *RetailerReport
	for i := range report.Retailers {
		if report.Retailers[i].Retailer == fleet[0].Catalog.Retailer {
			oldRep = &report.Retailers[i]
		} else {
			newRep = &report.Retailers[i]
		}
	}
	if oldRep == nil || newRep == nil {
		t.Fatal("missing reports")
	}
	if oldRep.FullSweep {
		t.Fatal("existing retailer re-swept")
	}
	if !newRep.FullSweep {
		t.Fatal("new retailer did not get a full sweep")
	}
}

func TestFullRestartEvery(t *testing.T) {
	opts := testOptions()
	opts.FullRestartEvery = 2
	p := New(dfs.New(), serving.NewServer(), opts)
	fleet := smallFleet(t, 1, 74)
	p.AddRetailer(fleet[0].Catalog, fleet[0].Log)
	sweeps := []bool{}
	for day := 0; day < 4; day++ {
		report, err := p.RunDay(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		sweeps = append(sweeps, report.Retailers[0].FullSweep)
	}
	// Day 0 full (new), day 1 incremental, day 2 full (restart), day 3 incremental.
	want := []bool{true, false, true, false}
	for i := range want {
		if sweeps[i] != want[i] {
			t.Fatalf("sweep pattern = %v, want %v", sweeps, want)
		}
	}
}

func TestTrainingSurvivesInjectedPreemptions(t *testing.T) {
	opts := testOptions()
	opts.CheckpointEvery = 5 * time.Millisecond
	opts.FullEpochs = 6
	// Kill the first attempt of every third map task shortly after start.
	opts.Faults = func(phase mapreduce.Phase, task, attempt int) (bool, time.Duration) {
		return phase == mapreduce.MapPhase && task%3 == 0 && attempt == 0, 3 * time.Millisecond
	}
	p := New(dfs.New(), serving.NewServer(), opts)
	fleet := smallFleet(t, 2, 75)
	for _, r := range fleet {
		p.AddRetailer(r.Catalog, r.Log)
	}
	report, err := p.RunDay(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if report.TrainCounters.MapFailures == 0 {
		t.Fatal("fault plan injected no failures")
	}
	for _, rr := range report.Retailers {
		if rr.ConfigsOK != rr.ConfigsPlaned {
			t.Fatalf("%s: %d/%d configs trained despite retries", rr.Retailer, rr.ConfigsOK, rr.ConfigsPlaned)
		}
		if rr.BestMAP <= 0 {
			t.Fatalf("%s: no model after preemptions", rr.Retailer)
		}
	}
}

func TestCatalogGrowthBetweenDays(t *testing.T) {
	p := New(dfs.New(), serving.NewServer(), testOptions())
	fleet := smallFleet(t, 1, 76)
	r := fleet[0]
	p.AddRetailer(r.Catalog, r.Log)
	if _, err := p.RunDay(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Retailer adds items overnight.
	before := r.Catalog.NumItems()
	leaf := r.Catalog.Tax.Leaves()[0]
	for i := 0; i < 5; i++ {
		r.Catalog.AddItem(catalog.Item{Name: "new", Category: leaf, InStock: true})
	}
	report, err := p.RunDay(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if report.Retailers[0].ItemsServed != before+5 {
		t.Fatalf("served %d items, want %d", report.Retailers[0].ItemsServed, before+5)
	}
}

func TestRunDayEmptyFleet(t *testing.T) {
	p := New(dfs.New(), serving.NewServer(), testOptions())
	report, err := p.RunDay(context.Background())
	if err != nil || len(report.Retailers) != 0 {
		t.Fatalf("empty fleet: %+v, %v", report, err)
	}
	if p.Day() != 1 {
		t.Fatal("day did not advance")
	}
}

func TestAddRetailerDuplicateIsError(t *testing.T) {
	p := New(dfs.New(), nil, testOptions())
	b := taxonomy.NewBuilder("r")
	cat := catalog.New("dup", b.Build())
	if err := p.AddRetailer(cat, interactions.NewLog()); err != nil {
		t.Fatalf("first registration: %v", err)
	}
	if err := p.AddRetailer(cat, interactions.NewLog()); err == nil {
		t.Fatal("duplicate registration did not error")
	}
	if p.NumTenants() != 1 {
		t.Fatalf("NumTenants = %d after rejected duplicate", p.NumTenants())
	}
}

func TestDayReportBestMAP(t *testing.T) {
	d := DayReport{Retailers: []RetailerReport{{BestMAP: 0.2}, {BestMAP: 0.4}}}
	if got := d.BestMAP(); got < 0.299 || got > 0.301 {
		t.Fatalf("BestMAP = %v", got)
	}
	if (DayReport{}).BestMAP() != 0 {
		t.Fatal("empty report BestMAP")
	}
}

func TestPathsAreDayScoped(t *testing.T) {
	if !strings.HasPrefix(trainDataPath(3, "r"), "days/3/") ||
		!strings.HasPrefix(modelPath(3, "m"), "days/3/") ||
		!strings.HasPrefix(checkpointBase(3, "m"), "days/3/") ||
		!strings.HasPrefix(holdoutPath(3, "r"), "days/3/") ||
		!strings.HasPrefix(recordsPath(3, 1), "days/3/") {
		t.Fatal("paths not day-scoped")
	}
}

func TestPipelineSurvivesFilesystemFailures(t *testing.T) {
	// Every 6th shared-filesystem write fails (a flaky replica). Staging
	// retries ride through it; training tasks whose model save fails turn
	// into error records and the MapReduce retries the task; the day must
	// still complete with models for every retailer.
	fs := dfs.New()
	fs.FailEveryNthWrite(6)
	server := serving.NewServer()
	opts := testOptions()
	opts.CheckpointEvery = 10 * time.Millisecond
	p := New(fs, server, opts)
	fleet := smallFleet(t, 2, 77)
	for _, r := range fleet {
		p.AddRetailer(r.Catalog, r.Log)
	}
	report, err := p.RunDay(context.Background())
	if err != nil {
		t.Fatalf("day failed under write faults: %v", err)
	}
	for _, rr := range report.Retailers {
		if rr.BestMAP <= 0 {
			t.Fatalf("%s: no model survived the flaky filesystem", rr.Retailer)
		}
	}
	if !report.SnapshotPushed {
		t.Fatal("no snapshot pushed")
	}
}

func TestPipelineLateFunnelMaterialization(t *testing.T) {
	opts := testOptions()
	opts.LateFunnelFacets = []string{"color"}
	server := serving.NewServer()
	p := New(dfs.New(), server, opts)
	r := smallFleet(t, 1, 78)[0]
	// Give items facets so the constrained surface is non-trivial.
	for i := 0; i < r.Catalog.NumItems(); i++ {
		it := r.Catalog.Items()[i]
		color := "black"
		if i%2 == 1 {
			color = "red"
		}
		it.Facets = map[string]string{"color": color}
		r.Catalog.Items()[i] = it
	}
	p.AddRetailer(r.Catalog, r.Log)
	if _, err := p.RunDay(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap := server.Snapshot()
	rr := snap.Retailers[r.Catalog.Retailer]
	if rr == nil {
		t.Fatal("retailer missing from snapshot")
	}
	withLF := 0
	for _, ir := range rr.Recs {
		for _, s := range ir.LateFunnel {
			if r.Catalog.Item(s.Item).Facets["color"] != r.Catalog.Item(ir.Item).Facets["color"] {
				t.Fatalf("late-funnel rec %d facet mismatch for query %d", s.Item, ir.Item)
			}
		}
		if len(ir.LateFunnel) > 0 {
			withLF++
		}
	}
	if withLF == 0 {
		t.Fatal("no late-funnel surfaces materialized")
	}
}

func TestKeepDaysGarbageCollection(t *testing.T) {
	fs := dfs.New()
	opts := testOptions()
	opts.KeepDays = 2
	p := New(fs, serving.NewServer(), opts)
	r := smallFleet(t, 1, 79)[0]
	p.AddRetailer(r.Catalog, r.Log)
	for day := 0; day < 3; day++ {
		if _, err := p.RunDay(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	// After day 2 completes, day 0 is expired; days 1 and 2 remain (day 1
	// holds the warm-start models day 3 would load).
	if got := fs.List("days/0/"); len(got) != 0 {
		t.Fatalf("day 0 not GCed: %v", got)
	}
	if got := fs.List("days/1/models/"); len(got) == 0 {
		t.Fatal("day 1 models GCed too early")
	}
	if got := fs.List("days/2/models/"); len(got) == 0 {
		t.Fatal("current day GCed")
	}
	// The next incremental day still works (warm starts come from day 2).
	if report, err := p.RunDay(context.Background()); err != nil || report.Retailers[0].BestMAP <= 0 {
		t.Fatalf("day after GC failed: %+v, %v", report, err)
	}
}
