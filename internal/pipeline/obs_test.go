package pipeline

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"sigmund/internal/dfs"
	"sigmund/internal/faults"
	"sigmund/internal/obs"
	"sigmund/internal/serving"
)

// findChild returns the first child span with the given name (nil if none).
func findChild(s obs.SpanJSON, name string) *obs.SpanJSON {
	for i := range s.Children {
		if s.Children[i].Name == name {
			return &s.Children[i]
		}
	}
	return nil
}

// TestDayTraceTwoTenants runs a two-tenant day where one tenant's training
// is failed by the fault injector, and checks the exported span tree: the
// day root carries every phase, both tenants appear under the train phase,
// and the degraded tenant's span attributes name the failing phase and
// error — the /tracez attribution story end to end, including over HTTP.
func TestDayTraceTwoTenants(t *testing.T) {
	fleet := smallFleet(t, 2, 11)
	healthy := fleet[0].Catalog.Retailer
	broken := fleet[1].Catalog.Retailer

	observer := obs.NewObserver()
	opts := testOptions()
	opts.Obs = observer
	// Fail every training task of the second tenant; the first is
	// untouched. EveryNth is deterministic, so the outcome is exact.
	opts.Injector = faults.NewInjector(1, faults.Rule{
		Ops:          []faults.Op{faults.OpTrain},
		PathContains: string(broken),
		Kind:         faults.Error,
		EveryNth:     1,
	})
	opts.Injector.SetMetrics(observer.Reg())

	fs := dfs.New()
	server := serving.NewServerWithObs(observer)
	p := New(fs, server, opts)
	for _, r := range fleet {
		if err := p.AddRetailer(r.Catalog, r.Log); err != nil {
			t.Fatal(err)
		}
	}
	report, err := p.RunDay(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Degraded) != 1 || report.Degraded[0] != broken {
		t.Fatalf("degraded = %v, want [%s]", report.Degraded, broken)
	}

	roots := observer.Trace().Recent()
	if len(roots) != 1 {
		t.Fatalf("got %d root spans, want 1", len(roots))
	}
	day := roots[0]
	if day.Name != "day" || day.Attrs["day"] != "0" {
		t.Fatalf("root span = %s %v", day.Name, day.Attrs)
	}
	if day.Attrs["degraded"] != "1" {
		t.Errorf("day degraded attr = %q, want 1", day.Attrs["degraded"])
	}
	if day.Attrs["outcome"] != "degraded" {
		t.Errorf("day outcome attr = %q, want degraded", day.Attrs["outcome"])
	}
	for _, phase := range []string{"staging", "train", "select", "infer", "publish"} {
		if findChild(day, phase) == nil {
			t.Fatalf("day span has no %q child; children: %+v", phase, day.Children)
		}
	}

	train := findChild(day, "train")
	for _, r := range []string{string(healthy), string(broken)} {
		if findChild(*train, "tenant:"+r) == nil {
			t.Fatalf("train span missing tenant:%s; children: %+v", r, train.Children)
		}
	}
	bad := findChild(*train, "tenant:"+string(broken))
	if bad.Attrs["outcome"] != "degraded" || bad.Attrs["phase"] != PhaseTrain {
		t.Errorf("broken tenant attrs = %v, want outcome=degraded phase=train", bad.Attrs)
	}
	if !strings.Contains(bad.Attrs["error"], "injected") {
		t.Errorf("broken tenant error attr = %q, want injected-fault text", bad.Attrs["error"])
	}
	good := findChild(*train, "tenant:"+string(healthy))
	if good.Attrs["outcome"] != "ok" {
		t.Errorf("healthy tenant attrs = %v, want outcome=ok", good.Attrs)
	}
	if good.DurationMS <= 0 {
		t.Errorf("healthy tenant train span duration = %v, want > 0", good.DurationMS)
	}

	// Only the healthy tenant reaches inference.
	infer := findChild(day, "infer")
	if findChild(*infer, "tenant:"+string(healthy)) == nil {
		t.Fatalf("infer span missing healthy tenant; children: %+v", infer.Children)
	}
	if findChild(*infer, "tenant:"+string(broken)) != nil {
		t.Fatal("degraded tenant must not reach inference")
	}

	// The same tree over HTTP: GET /tracez on the serving handler.
	srv := httptest.NewServer(serving.NewHandler(server))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/tracez")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/tracez status = %d", resp.StatusCode)
	}
	var body struct {
		Spans []obs.SpanJSON `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Spans) != 1 || body.Spans[0].Name != "day" {
		t.Fatalf("/tracez spans = %+v", body.Spans)
	}

	// And the day's metrics on GET /metrics, Prometheus text format.
	mresp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if got := mresp.Header.Get("Content-Type"); got != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("/metrics content type = %q", got)
	}
	var sb strings.Builder
	observer.Reg().WritePrometheus(&sb)
	text := sb.String()
	for _, want := range []string{
		"sigmund_pipeline_days_total 1",
		`sigmund_pipeline_tenant_days_total{outcome="degraded"} 1`,
		`sigmund_pipeline_tenant_days_total{outcome="healthy"} 1`,
		`sigmund_pipeline_degraded_total{phase="train"} 1`,
		`sigmund_faults_injected_total{kind="error",op="train"}`,
		`sigmund_mapreduce_jobs_total{result="ok"}`,
		"sigmund_serving_snapshot_publishes_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

// TestRunDayPhaseTimings: the DayReport's phase breakdown covers the whole
// cycle and the per-tenant timings are populated for healthy tenants.
func TestRunDayPhaseTimings(t *testing.T) {
	fleet := smallFleet(t, 2, 12)
	fs := dfs.New()
	server := serving.NewServer()
	p := New(fs, server, testOptions())
	for _, r := range fleet {
		if err := p.AddRetailer(r.Catalog, r.Log); err != nil {
			t.Fatal(err)
		}
	}
	report, err := p.RunDay(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if report.StagingWall <= 0 || report.TrainWall <= 0 || report.InferWall <= 0 {
		t.Errorf("phase walls not populated: staging=%v train=%v infer=%v",
			report.StagingWall, report.TrainWall, report.InferWall)
	}
	for _, rr := range report.Retailers {
		if rr.Degraded {
			continue
		}
		if rr.StagingWall <= 0 || rr.TrainWall <= 0 || rr.InferWall <= 0 {
			t.Errorf("%s: tenant walls not populated: staging=%v train=%v infer=%v",
				rr.Retailer, rr.StagingWall, rr.TrainWall, rr.InferWall)
		}
	}
}
