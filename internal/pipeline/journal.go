package pipeline

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"sigmund/internal/catalog"
	"sigmund/internal/core/inference"
	"sigmund/internal/core/modelselect"
	"sigmund/internal/dfs"
	"sigmund/internal/faults"
	"sigmund/internal/linalg"
	"sigmund/internal/mapreduce"
	"sigmund/internal/obs"
	"sigmund/internal/retry"
	"sigmund/internal/serving"
)

// The day journal makes RunDay crash-resumable: an intent record pins the
// day's plan, then each unit of work appends a completion record only
// after its artifacts are durable in the shared filesystem. A restarted
// coordinator replays the journal and skips everything already committed:
//
//	intent     day, tenant set, plan hash — replay refuses a changed plan
//	staged     one per tenant: the exact planned config records (training
//	           data and holdout are durable before this commits)
//	cell       one per training cell: its outputs are durable at
//	           recordsPath before this commits; counters ride along so a
//	           resumed day's totals match an uninterrupted one
//	inferred   one per tenant: materialized recommendations are durable
//	           at recsPath before this commits
//	published  the snapshot version handed to the publisher (publishing
//	           is idempotent, so resume re-publishes unconditionally)
//	done       the day completed; everything before the next intent is
//	           replayable
//	abort      a clean context-cancelled shutdown (informational)
//
// Work with no completion record at replay time was in flight when the
// coordinator died and is simply re-executed — every stage writes its
// artifacts with write-then-commit discipline, so re-execution is
// idempotent.
const (
	recIntent    = "intent"
	recStaged    = "staged"
	recCell      = "cell"
	recInferred  = "inferred"
	recGuard     = "guard"
	recPublished = "published"
	recDone      = "done"
	recAbort     = "abort"
)

// journalRecord is the JSON payload of one day-journal record; which
// fields are meaningful depends on Type.
type journalRecord struct {
	Type string `json:"type"`
	Day  int    `json:"day"`

	// intent
	PlanHash string               `json:"plan_hash,omitempty"`
	Tenants  []catalog.RetailerID `json:"tenants,omitempty"`

	// staged / inferred
	Retailer catalog.RetailerID `json:"retailer,omitempty"`

	// staged
	FullSweep bool                       `json:"full_sweep,omitempty"`
	Configs   []modelselect.ConfigRecord `json:"configs,omitempty"`

	// cell
	Cell int `json:"cell"`

	// cell / inferred
	Counters *mapreduce.Counters `json:"counters,omitempty"`

	// inferred
	ItemsServed int `json:"items_served,omitempty"`

	// published
	Version int64 `json:"version,omitempty"`

	// guard: the quality firewall's decision for Retailer. Committed
	// before the verdict is applied, so a resume replays the same
	// decision even if the baseline was folded forward in between.
	Verdict string `json:"verdict,omitempty"`

	// abort / guard (the gate that tripped)
	Reason string `json:"reason,omitempty"`
}

// journalError is a fleet-level day-journal failure: either an injected
// coordinator crashpoint fired (crash == true) or appending a record
// exhausted its retry budget. Both abort the whole day — a journal that
// cannot record progress must not let work commit invisibly past it.
type journalError struct {
	day    int
	record int
	crash  bool
	err    error
}

func (e *journalError) Error() string {
	if e.crash {
		return fmt.Sprintf("pipeline: coordinator crashed after day %d journal record %d: %v", e.day, e.record, e.err)
	}
	return fmt.Sprintf("pipeline: day %d journal: %v", e.day, e.err)
}

func (e *journalError) Unwrap() error { return e.err }

// IsCoordinatorCrash reports whether err is an injected coordinator
// crash (a faults.OpCoordinator crashpoint). The day's journal survives,
// so calling RunDay again resumes the same day instead of restarting it —
// the supervisor loop in cmd/sigmundd keys its auto-restart on this.
func IsCoordinatorCrash(err error) bool {
	var je *journalError
	return errors.As(err, &je) && je.crash
}

// coordinatorCrashPath is the path an OpCoordinator rule matches:
// "day-<day>/record-<index>/". The trailing slash keeps "record-1/" from
// substring-matching "record-10".
func coordinatorCrashPath(day, record int) string {
	return fmt.Sprintf("day-%d/record-%d/", day, record)
}

// dayJournal is one RunDay's view of its journal: the replayed completion
// state plus live bookkeeping for the resume metrics.
type dayJournal struct {
	p   *Pipeline
	j   *dfs.Journal
	day int

	// Replayed state, read-only after openDayJournal.
	resumed   bool
	replayed  int
	staged    map[catalog.RetailerID]*journalRecord
	cells     map[int]*journalRecord
	inferred  map[catalog.RetailerID]*journalRecord
	guard     map[catalog.RetailerID]*journalRecord
	published bool
	done      bool

	mu              sync.Mutex
	skippedCells    int
	replayedTenants int
}

// openDayJournal opens (or creates) the day's journal, replays its
// records, verifies the replay invariants against the current plan, and
// commits the intent record on a fresh day. The intent append is the
// day's first crashpoint.
func (p *Pipeline) openDayJournal(ctx context.Context, day int, ids []catalog.RetailerID) (*dayJournal, error) {
	j, raw, err := dfs.OpenJournal(p.fs, journalPath(day))
	if err != nil {
		return nil, fmt.Errorf("pipeline: opening day %d journal: %w", day, err)
	}
	dj := &dayJournal{
		p: p, j: j, day: day,
		staged:   map[catalog.RetailerID]*journalRecord{},
		cells:    map[int]*journalRecord{},
		inferred: map[catalog.RetailerID]*journalRecord{},
		guard:    map[catalog.RetailerID]*journalRecord{},
	}
	hash := p.planHash(ids)
	var intent *journalRecord
	for _, payload := range raw {
		rec := new(journalRecord)
		if err := json.Unmarshal(payload, rec); err != nil {
			// The checksum passed, so this is not a torn write; a record
			// that frames cleanly but does not decode is a format bug.
			return nil, fmt.Errorf("pipeline: decoding day %d journal record: %w", day, err)
		}
		switch rec.Type {
		case recIntent:
			if intent == nil {
				intent = rec
			}
		case recStaged:
			dj.staged[rec.Retailer] = rec
		case recCell:
			dj.cells[rec.Cell] = rec
		case recInferred:
			dj.inferred[rec.Retailer] = rec
		case recGuard:
			dj.guard[rec.Retailer] = rec
		case recPublished:
			dj.published = true
		case recDone:
			dj.done = true
		case recAbort:
			// Informational: a previous incarnation shut down cleanly.
		}
	}
	if intent == nil {
		// Fresh day (or a journal truncated back to nothing).
		dj.staged = map[catalog.RetailerID]*journalRecord{}
		return dj, dj.append(ctx, journalRecord{Type: recIntent, Day: day, PlanHash: hash, Tenants: ids})
	}
	// Replay invariants: resuming under a different day, plan, or tenant
	// set would silently diverge from the journaled work, so refuse.
	if intent.Day != day {
		return nil, fmt.Errorf("pipeline: day %d journal holds an intent for day %d", day, intent.Day)
	}
	if intent.PlanHash != hash {
		return nil, fmt.Errorf("pipeline: day %d journal was written under plan %s, current plan is %s: configuration changed between crash and resume", day, intent.PlanHash, hash)
	}
	if !equalTenantSets(intent.Tenants, ids) {
		return nil, fmt.Errorf("pipeline: day %d journal covers tenants %v, current fleet is %v", day, intent.Tenants, ids)
	}
	dj.resumed = true
	dj.replayed = len(raw)
	return dj, nil
}

// append durably commits one record, observes the write latency, and then
// consults the coordinator crashpoint keyed by the record's index. Safe
// for concurrent use (training cells and inference jobs append from their
// own goroutines).
func (dj *dayJournal) append(ctx context.Context, rec journalRecord) error {
	rec.Day = dj.day
	payload, err := json.Marshal(rec)
	if err != nil {
		panic(fmt.Sprintf("pipeline: encoding journal record: %v", err))
	}
	p := dj.p
	start := time.Now()
	rng := linalg.NewRNG(p.opts.Seed ^ pathHash("journal/"+rec.Type))
	var idx int
	err = retry.Do(ctx, p.opts.Retry, rng, func(int) error {
		var aerr error
		idx, aerr = dj.j.Append(payload)
		return aerr
	})
	if reg := p.opts.Obs.Reg(); reg != nil {
		reg.Histogram("sigmund_pipeline_journal_write_seconds",
			"Durable day-journal record commit latency (retries included).",
			obs.DurationBuckets()).Observe(time.Since(start).Seconds())
	}
	if err != nil {
		return &journalError{day: dj.day, err: fmt.Errorf("appending %s record: %w", rec.Type, err)}
	}
	if err := p.opts.Injector.Before(faults.OpCoordinator, coordinatorCrashPath(dj.day, idx)); err != nil {
		return &journalError{day: dj.day, record: idx, crash: true, err: err}
	}
	return nil
}

// appendAbort best-effort records a clean context-cancelled shutdown. It
// writes directly — no retry (the context is already dead) and no
// crashpoint (the process is exiting anyway). A lost abort record costs
// nothing: it is informational.
func (dj *dayJournal) appendAbort(reason string) {
	payload, err := json.Marshal(journalRecord{Type: recAbort, Day: dj.day, Reason: reason})
	if err != nil {
		return
	}
	_, _ = dj.j.Append(payload)
}

func (dj *dayJournal) stagedRecord(r catalog.RetailerID) *journalRecord { return dj.staged[r] }
func (dj *dayJournal) guardRecord(r catalog.RetailerID) *journalRecord  { return dj.guard[r] }
func (dj *dayJournal) cellRecord(cell int) *journalRecord               { return dj.cells[cell] }
func (dj *dayJournal) inferredRecord(r catalog.RetailerID) *journalRecord {
	return dj.inferred[r]
}

func (dj *dayJournal) noteSkippedCell() {
	dj.mu.Lock()
	dj.skippedCells++
	dj.mu.Unlock()
}

func (dj *dayJournal) noteReplayedTenant() {
	dj.mu.Lock()
	dj.replayedTenants++
	dj.mu.Unlock()
}

func (dj *dayJournal) counts() (skippedCells, replayedTenants int) {
	dj.mu.Lock()
	defer dj.mu.Unlock()
	return dj.skippedCells, dj.replayedTenants
}

// planHash fingerprints the options that determine a day's plan: sweep
// shapes, epochs, cell layout, and the seed that drives the config
// shuffle. A resumed day must run under the same fingerprint or the
// journaled completion records would not line up with the replanned work.
func (p *Pipeline) planHash(ids []catalog.RetailerID) string {
	h := fnv.New64a()
	o := p.opts
	fmt.Fprintf(h, "grid=%+v|hyper=%+v|fe=%d|ie=%d|topk=%d|restart=%d|cells=%d|infk=%d|seed=%d|tenants=%v",
		o.Grid, o.BaseHyper, o.FullEpochs, o.IncrementalEpochs, o.TopKIncremental,
		o.FullRestartEvery, o.Cells, o.InferTopK, o.Seed, ids)
	return fmt.Sprintf("%016x", h.Sum64())
}

func equalTenantSets(a, b []catalog.RetailerID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// loadCellRecords decodes a replayed training cell's committed output
// records from the shared filesystem.
func (p *Pipeline) loadCellRecords(day, cell int) ([]modelselect.ConfigRecord, error) {
	raw, err := p.fs.Read(recordsPath(day, cell))
	if err != nil {
		return nil, err
	}
	var out []modelselect.ConfigRecord
	for _, line := range bytes.Split(raw, []byte{'\n'}) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		rec, err := DecodeConfigRecord(line)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("pipeline: cell %d records empty", cell)
	}
	return out, nil
}

const recsBlobMagic = "SREC"

// encodeRecsBlob persists one tenant's materialized recommendations:
// uvarint-length-framed EncodeItemRecs entries (the per-item codec does
// not self-delimit) followed by the popularity fallback list. The framing
// lets a resumed day reload exactly what inference produced, bit for bit.
func encodeRecsBlob(items []inference.ItemRecs, sellers []catalog.ItemID) []byte {
	buf := []byte(recsBlobMagic)
	buf = binary.AppendUvarint(buf, uint64(len(items)))
	for _, ir := range items {
		enc := inference.EncodeItemRecs(ir)
		buf = binary.AppendUvarint(buf, uint64(len(enc)))
		buf = append(buf, enc...)
	}
	buf = binary.AppendUvarint(buf, uint64(len(sellers)))
	for _, id := range sellers {
		buf = binary.AppendUvarint(buf, uint64(id))
	}
	return buf
}

// decodeRecsBlob reverses encodeRecsBlob. Zero-length sections decode to
// nil so a replayed tenant compares deep-equal with a fresh run.
func decodeRecsBlob(data []byte) ([]inference.ItemRecs, []catalog.ItemID, error) {
	if len(data) < len(recsBlobMagic) || string(data[:len(recsBlobMagic)]) != recsBlobMagic {
		return nil, nil, errors.New("pipeline: bad recs blob magic")
	}
	data = data[len(recsBlobMagic):]
	nItems, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, nil, errors.New("pipeline: truncated recs blob")
	}
	data = data[n:]
	var items []inference.ItemRecs
	for i := uint64(0); i < nItems; i++ {
		size, n := binary.Uvarint(data)
		if n <= 0 || uint64(len(data)-n) < size {
			return nil, nil, fmt.Errorf("pipeline: truncated recs blob at item %d", i)
		}
		data = data[n:]
		ir, err := inference.DecodeItemRecs(data[:size])
		if err != nil {
			return nil, nil, err
		}
		items = append(items, ir)
		data = data[size:]
	}
	nSellers, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, nil, errors.New("pipeline: truncated recs blob sellers")
	}
	data = data[n:]
	var sellers []catalog.ItemID
	for i := uint64(0); i < nSellers; i++ {
		id, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, nil, fmt.Errorf("pipeline: truncated recs blob seller %d", i)
		}
		sellers = append(sellers, catalog.ItemID(id))
		data = data[n:]
	}
	return items, sellers, nil
}

// loadRecsBlob reloads a replayed tenant's committed recommendations.
func (p *Pipeline) loadRecsBlob(day int, r catalog.RetailerID) ([]inference.ItemRecs, []catalog.ItemID, error) {
	raw, err := p.fs.Read(recsPath(day, r))
	if err != nil {
		return nil, nil, err
	}
	return decodeRecsBlob(raw)
}

// resumeInfo converts the journal's bookkeeping into the serving layer's
// /statz resume block.
func (dj *dayJournal) resumeInfo() serving.ResumeInfo {
	skipped, replayedTenants := dj.counts()
	return serving.ResumeInfo{
		Day:             dj.day,
		Resumed:         dj.resumed,
		RecordsReplayed: dj.replayed,
		CellsSkipped:    skipped,
		TenantsReplayed: replayedTenants,
		JournalRecords:  dj.j.Len(),
	}
}
