package pipeline

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"sigmund/internal/catalog"
	"sigmund/internal/dfs"
	"sigmund/internal/faults"
	"sigmund/internal/guard"
	"sigmund/internal/obs"
	"sigmund/internal/serving"
)

// guardTestOptions is testOptions with the quality firewall on.
func guardTestOptions() Options {
	opts := testOptions()
	opts.Guard = guard.Options{Enabled: true}
	opts.Obs = obs.NewObserver()
	return opts
}

// TestChaosGuardDrill is the firewall's acceptance drill: on day 1, three
// tenants' models are made degenerate in three different ways — NaN
// scores (broken embeddings), a collapsed constant scorer, and an offline
// metric cliff. The guard must veto exactly those three with the right
// reasons, carry their day-0 generation forward, leave the healthy tenant
// byte-identical to a fault-free control run, and surface the verdicts on
// /statz and the metrics registry. On day 2 the victims recover and the
// whole fleet reconverges with the control run.
func TestChaosGuardDrill(t *testing.T) {
	fleet := chaosFleet(t, 4)
	nanVictim := fleet[0].Catalog.Retailer
	collapseVictim := fleet[1].Catalog.Retailer
	cliffVictim := fleet[2].Catalog.Retailer
	healthy := fleet[3].Catalog.Retailer

	run := func(inj *faults.Injector) (*Pipeline, *serving.Server) {
		opts := guardTestOptions()
		opts.Injector = inj
		server := serving.NewServer()
		p := New(dfs.New(), server, opts)
		for _, r := range chaosFleet(t, 4) {
			mustAdd(t, p, r)
		}
		return p, server
	}
	inj := faults.NewInjector(42,
		faults.Rule{Ops: []faults.Op{faults.OpModel}, Kind: faults.ModelNaN,
			PathContains: "days/1/" + string(nanVictim), EveryNth: 1},
		faults.Rule{Ops: []faults.Op{faults.OpModel}, Kind: faults.ModelCollapse,
			PathContains: "days/1/" + string(collapseVictim), EveryNth: 1},
		faults.Rule{Ops: []faults.Op{faults.OpModel}, Kind: faults.ModelCliff,
			PathContains: "days/1/" + string(cliffVictim), EveryNth: 1},
	)
	control, controlServer := run(nil)
	chaos, chaosServer := run(inj)

	// Day 0: fault-free; every tenant passes the guard in warmup and seeds
	// its baseline.
	for _, p := range []*Pipeline{control, chaos} {
		rep, err := p.RunDay(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if rep.GuardEvaluated != 4 || len(rep.Vetoed) != 0 {
			t.Fatalf("day 0 guard: evaluated %d, vetoed %v", rep.GuardEvaluated, rep.Vetoed)
		}
	}
	day0 := map[catalog.RetailerID]*serving.RetailerRecs{}
	for _, r := range []catalog.RetailerID{nanVictim, collapseVictim, cliffVictim} {
		day0[r] = chaosServer.Snapshot().Retailers[r]
	}

	// Day 1: three degenerate models ship toward the store; zero may serve.
	if _, err := control.RunDay(context.Background()); err != nil {
		t.Fatal(err)
	}
	rep, err := chaos.RunDay(context.Background())
	if err != nil {
		t.Fatalf("chaos day 1: %v", err)
	}

	wantReason := map[catalog.RetailerID]string{
		nanVictim:      guard.ReasonNaNScores,
		collapseVictim: guard.ReasonCollapsedRecs,
		cliffVictim:    guard.ReasonMAPCliff,
	}
	for _, rr := range rep.Retailers {
		reason, want := wantReason[rr.Retailer]
		if want {
			if rr.GuardVerdict != string(guard.VerdictVeto) || rr.GuardReason != reason {
				t.Fatalf("%s: guard = %s/%s, want veto/%s", rr.Retailer, rr.GuardVerdict, rr.GuardReason, reason)
			}
			if !rr.Degraded || rr.DegradedPhase != PhaseGuard {
				t.Fatalf("%s: degraded=%v phase=%q, want guard-degraded", rr.Retailer, rr.Degraded, rr.DegradedPhase)
			}
		} else if rr.GuardVerdict != string(guard.VerdictPass) {
			t.Fatalf("%s: guard verdict = %s (%s), want pass", rr.Retailer, rr.GuardVerdict, rr.GuardReason)
		}
	}
	if len(rep.Vetoed) != 3 {
		t.Fatalf("Vetoed = %v, want the 3 victims", rep.Vetoed)
	}

	// Vetoed tenants serve their day-0 generation; no degenerate model is
	// live anywhere.
	snap := chaosServer.Snapshot()
	for r, recs := range day0 {
		if snap.Retailers[r] != recs {
			t.Fatalf("%s: day-1 candidate reached the serving snapshot despite the veto", r)
		}
	}
	// The healthy tenant's published recommendations are byte-identical to
	// the fault-free control run.
	if !reflect.DeepEqual(snap.Retailers[healthy], controlServer.Snapshot().Retailers[healthy]) {
		t.Fatalf("healthy tenant %s diverged from the control run", healthy)
	}

	// Verdicts are visible on /statz ("guard" block data) and in metrics.
	info, ok := chaosServer.GuardInfo()
	if !ok || info.Evaluated != 4 || info.Passed != 1 || len(info.Vetoed) != 3 {
		t.Fatalf("statz guard info = %+v (ok=%v)", info, ok)
	}
	for _, reason := range wantReason {
		if info.VetoReasons[reason] != 1 {
			t.Fatalf("statz veto reasons = %v, want one %s", info.VetoReasons, reason)
		}
	}
	var sb strings.Builder
	chaos.opts.Obs.Reg().WritePrometheus(&sb)
	text := sb.String()
	for _, want := range []string{
		`sigmund_guard_verdicts_total{verdict="veto"} 3`,
		`sigmund_guard_vetoes_total{reason="nan_scores"} 1`,
		`sigmund_guard_vetoes_total{reason="collapsed_recs"} 1`,
		`sigmund_guard_vetoes_total{reason="map_cliff"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}

	// Day 2: fault-free again. The victims' models were never poisoned —
	// only their day-1 outputs were — so they publish fresh generations
	// and the whole fleet reconverges with the control run.
	controlRep, err := control.RunDay(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	chaosRep, err := chaos.RunDay(context.Background())
	if err != nil {
		t.Fatalf("chaos day 2: %v", err)
	}
	if len(chaosRep.Degraded) != 0 || len(chaosRep.Vetoed) != 0 {
		t.Fatalf("day 2 did not recover: degraded %v, vetoed %v", chaosRep.Degraded, chaosRep.Vetoed)
	}
	if len(controlRep.Degraded) != 0 {
		t.Fatalf("control day 2 degraded: %v", controlRep.Degraded)
	}
	chaosSnap, controlSnap := chaosServer.Snapshot(), controlServer.Snapshot()
	for _, r := range []catalog.RetailerID{nanVictim, collapseVictim, cliffVictim, healthy} {
		if !reflect.DeepEqual(chaosSnap.Retailers[r], controlSnap.Retailers[r]) {
			t.Fatalf("%s: day-2 recommendations diverged from control", r)
		}
	}
}

// TestGuardCanaryVerdictMarksStatus: with a canary fraction configured, a
// borderline candidate is published with the canary flag in its tenant
// status instead of being vetoed, and the day report attributes it.
func TestGuardCanaryVerdictMarksStatus(t *testing.T) {
	opts := guardTestOptions()
	// A borderline threshold above any real ratio sends every baselined
	// tenant to canary deterministically.
	opts.Guard.BorderlineMAPRatio = 2.0
	opts.Guard.CanaryFraction = 0.25
	server := serving.NewServer()
	p := New(dfs.New(), server, opts)
	for _, r := range chaosFleet(t, 2) {
		mustAdd(t, p, r)
	}
	if _, err := p.RunDay(context.Background()); err != nil {
		t.Fatal(err) // day 0: warmup, no baseline yet
	}
	rep, err := p.RunDay(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Canaried) != 2 || len(rep.Vetoed) != 0 {
		t.Fatalf("canaried %v, vetoed %v, want 2 canaried", rep.Canaried, rep.Vetoed)
	}
	for _, rr := range rep.Retailers {
		if rr.GuardVerdict != string(guard.VerdictCanary) {
			t.Fatalf("%s: verdict %s, want canary", rr.Retailer, rr.GuardVerdict)
		}
	}
	for r, ts := range server.TenantStatuses() {
		if !ts.Canary || ts.CanaryFraction != 0.25 {
			t.Fatalf("%s: status %+v, want canary at 0.25", r, ts)
		}
	}
}

// TestGuardVetoFeedsQuarantine: repeated vetoes are failures like any
// other — a tenant whose models are degenerate day after day ends up
// quarantined by the existing health machinery.
func TestGuardVetoFeedsQuarantine(t *testing.T) {
	opts := guardTestOptions()
	opts.QuarantineAfter = 2
	opts.QuarantineProbeEvery = 100 // no probes inside this test
	fleet := chaosFleet(t, 2)
	victim := fleet[0].Catalog.Retailer
	inj := faults.NewInjector(7, faults.Rule{
		Ops: []faults.Op{faults.OpModel}, Kind: faults.ModelNaN,
		PathContains: "/" + string(victim), EveryNth: 1,
	})
	opts.Injector = inj
	server := serving.NewServer()
	p := New(dfs.New(), server, opts)
	for _, r := range fleet {
		mustAdd(t, p, r)
	}
	// Day 0 vetoes (warmup structural gate still catches NaN), day 1
	// vetoes again, tripping QuarantineAfter=2.
	for day := 0; day < 2; day++ {
		rep, err := p.RunDay(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Vetoed) != 1 || rep.Vetoed[0] != victim {
			t.Fatalf("day %d vetoed = %v, want %s", day, rep.Vetoed, victim)
		}
	}
	rep, err := p.RunDay(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, rr := range rep.Retailers {
		if rr.Retailer == victim && !rr.Quarantined {
			t.Fatalf("victim not quarantined after repeated vetoes: %+v", rr)
		}
	}
}

// TestGuardCrashResumeReplaysVerdicts: for every record index k of a
// chaotic day-1 journal, crash the coordinator right after record k
// commits and resume. The resumed day must reproduce the control day's
// guard verdicts, report, published snapshot, and persisted baselines
// exactly — whether the verdicts replay from journaled guard records or
// are recomputed against the (identically re-injected) degenerate models.
func TestGuardCrashResumeReplaysVerdicts(t *testing.T) {
	fleet := chaosFleet(t, 3)
	nanVictim := fleet[0].Catalog.Retailer
	cliffVictim := fleet[1].Catalog.Retailer

	modelRules := func() []faults.Rule {
		return []faults.Rule{
			{Ops: []faults.Op{faults.OpModel}, Kind: faults.ModelNaN,
				PathContains: "days/1/" + string(nanVictim), EveryNth: 1},
			{Ops: []faults.Op{faults.OpModel}, Kind: faults.ModelCliff,
				PathContains: "days/1/" + string(cliffVictim), EveryNth: 1},
		}
	}
	newRun := func(extra ...faults.Rule) (*Pipeline, *dfs.FS, *serving.Server) {
		opts := guardTestOptions()
		opts.Journal = true
		opts.Injector = faults.NewInjector(9, append(modelRules(), extra...)...)
		fs := dfs.New()
		server := serving.NewServer()
		p := New(fs, server, opts)
		for _, r := range chaosFleet(t, 3) {
			mustAdd(t, p, r)
		}
		return p, fs, server
	}
	baselines := func(fs *dfs.FS) map[string][]byte {
		out := map[string][]byte{}
		for _, name := range fs.List("guard/baselines/") {
			data, err := fs.Read(name)
			if err != nil {
				t.Fatalf("reading %s: %v", name, err)
			}
			out[name] = data
		}
		return out
	}

	// Control: day 0 (clean, seeds baselines) + day 1 (two degenerate
	// models vetoed), uninterrupted.
	control, controlFS, controlServer := newRun()
	if _, err := control.RunDay(context.Background()); err != nil {
		t.Fatal(err)
	}
	controlRep, err := control.RunDay(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(controlRep.Vetoed) != 2 {
		t.Fatalf("control day 1 vetoed %v, want the 2 victims", controlRep.Vetoed)
	}
	n := len(readJournalRecords(t, controlFS, 1))
	guardRecords := 0
	for _, rec := range readJournalRecords(t, controlFS, 1) {
		if rec.Type == recGuard {
			guardRecords++
		}
	}
	if guardRecords != 3 {
		t.Fatalf("control day-1 journal has %d guard records, want 3", guardRecords)
	}
	wantReport := normalizeReport(controlRep)
	wantRecs := controlServer.Snapshot().Retailers
	wantBaselines := baselines(controlFS)

	for k := 0; k < n; k++ {
		crashed, fs, server := newRun(faults.Rule{
			Ops:          []faults.Op{faults.OpCoordinator},
			PathContains: "day-1/",
			Kind:         faults.Error,
			After:        k,
			EveryNth:     1,
			Times:        1,
		})
		if _, err := crashed.RunDay(context.Background()); err != nil {
			t.Fatalf("k=%d: clean day 0 failed: %v", k, err)
		}
		if _, err := crashed.RunDay(context.Background()); err == nil {
			t.Fatalf("k=%d: day 1 survived its crashpoint", k)
		}
		left := readJournalRecords(t, fs, 1)

		// Resume as a restarted coordinator would: a fresh process over the
		// same filesystem and serving state, with the same model faults (a
		// restart hits the same bad models). It re-derives day 0 — a
		// deterministic no-op against the durable state; the baseline fold
		// is idempotent per day — then resumes day 1 from its journal.
		opts := guardTestOptions()
		opts.Journal = true
		opts.Injector = faults.NewInjector(9, modelRules()...)
		resumed := New(fs, server, opts)
		for _, r := range chaosFleet(t, 3) {
			mustAdd(t, resumed, r)
		}
		if _, err := resumed.RunDay(context.Background()); err != nil {
			t.Fatalf("k=%d: re-deriving day 0 failed: %v", k, err)
		}
		rep, err := resumed.RunDay(context.Background())
		if err != nil {
			t.Fatalf("k=%d: resume failed: %v", k, err)
		}
		// A torn day-1 journal must be resumed, not re-run. (If the crash
		// landed after the final done record, the day was complete and a
		// clean re-run is legitimate.)
		if torn := left[len(left)-1].Type != recDone; torn && !rep.Resumed {
			t.Fatalf("k=%d: resumed day not marked Resumed", k)
		}
		if got := normalizeReport(rep); !reflect.DeepEqual(got, wantReport) {
			t.Fatalf("k=%d: resumed report diverged from control:\n got: %+v\nwant: %+v", k, got, wantReport)
		}
		if !reflect.DeepEqual(server.Snapshot().Retailers, wantRecs) {
			t.Fatalf("k=%d: resumed recommendations diverged from control", k)
		}
		if got := baselines(fs); !reflect.DeepEqual(got, wantBaselines) {
			t.Fatalf("k=%d: persisted baselines diverged:\n got: %v\nwant: %v", k, got, wantBaselines)
		}
	}
}
