package pipeline

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"sigmund/internal/catalog"
	"sigmund/internal/cooccur"
	"sigmund/internal/core/candidates"
	"sigmund/internal/core/hybrid"
	"sigmund/internal/core/inference"
	"sigmund/internal/core/modelselect"
	"sigmund/internal/faults"
	"sigmund/internal/interactions"
	"sigmund/internal/mapreduce"
	"sigmund/internal/obs"
	"sigmund/internal/serving"
)

// runInference materializes recommendations for every healthy retailer
// with a trained model and builds one batch snapshot (Figure 5's
// schematic). Retailers are bin-packed across cells by inventory size —
// greedy first-fit, the paper's heuristic — and cells run concurrently.
//
// Each retailer's materialization is its own fault domain: a failure
// (including a recovered panic) marks only that retailer degraded —
// recorded in the degraded map — and the rest of the cell's retailers
// still materialize. The returned snapshot contains recommendations for
// the successful retailers; the caller marks degraded tenants on it before
// publishing so serving carries their previous recommendations forward.
// The returned counters aggregate every materialization job's MapReduce
// counters (including failed jobs' partial work).
//
// With day journaling (dj != nil), each tenant's materialized
// recommendations are persisted to the shared filesystem before its
// completion record commits; a resumed day reloads them bit-for-bit
// instead of re-materializing. The returned error is fleet-level only
// (journal failure or coordinator crash).
func (p *Pipeline) runInference(
	ctx context.Context,
	day int,
	ids []catalog.RetailerID,
	tenants map[catalog.RetailerID]*Tenant,
	byRetailer map[catalog.RetailerID][]modelselect.ConfigRecord,
	reports map[catalog.RetailerID]*RetailerReport,
	degraded map[catalog.RetailerID]*degradation,
	span *obs.Span,
	dj *dayJournal,
) (*serving.Snapshot, mapreduce.Counters, error) {
	// Only healthy retailers with a usable best model are materialized.
	type job struct {
		id     catalog.RetailerID
		tenant *Tenant
		best   modelselect.ConfigRecord
	}
	var jobs []job
	var weights []float64
	for _, id := range ids {
		if degraded[id] != nil {
			continue
		}
		best, ok := modelselect.Best(byRetailer[id])
		if !ok {
			continue
		}
		t := tenants[id]
		jobs = append(jobs, job{id: id, tenant: t, best: best})
		weights = append(weights, float64(t.Catalog.NumItems()))
	}

	perRetailer := make(map[catalog.RetailerID][]inference.ItemRecs, len(jobs))
	pop := make(map[catalog.RetailerID][]catalog.ItemID, len(jobs))
	failed := map[catalog.RetailerID]error{}
	var counters mapreduce.Counters
	var fleetErr error // journal failure or coordinator crash
	if len(jobs) > 0 {
		assign := inference.Partition(weights, p.opts.Cells, inference.GreedyFirstFit)
		var (
			mu sync.Mutex
			wg sync.WaitGroup
		)
		for cell := 0; cell < p.opts.Cells; cell++ {
			var mine []job
			for i, j := range jobs {
				if assign.Bin[i] == cell {
					mine = append(mine, j)
				}
			}
			if len(mine) == 0 {
				continue
			}
			wg.Add(1)
			go func(cell int, mine []job) {
				defer wg.Done()
				for _, j := range mine {
					jobStart := time.Now()
					tspan := span.Child("tenant:"+string(j.id), obs.L("cell", strconv.Itoa(cell)))
					if dj != nil {
						if rec := dj.inferredRecord(j.id); rec != nil {
							recs, sellers, lerr := p.loadRecsBlob(day, j.id)
							if lerr == nil {
								mu.Lock()
								if rec.Counters != nil {
									counters.Add(*rec.Counters)
								}
								perRetailer[j.id] = recs
								pop[j.id] = sellers
								if rep := reports[j.id]; rep != nil {
									rep.ItemsServed = len(recs)
								}
								mu.Unlock()
								tspan.SetAttr("outcome", "replayed")
								tspan.SetAttr("items", strconv.Itoa(len(recs)))
								tspan.EndWith(0)
								continue
							}
							// Missing/corrupt blob: re-materialize below.
						}
					}
					recs, sellers, c, err := p.inferRetailerSafe(ctx, day, j.tenant, j.best)
					mu.Lock()
					counters.Add(c)
					if err != nil {
						failed[j.id] = fmt.Errorf("inference for %s (cell %d): %w", j.id, cell, err)
						if rep := reports[j.id]; rep != nil {
							rep.InferWall = time.Since(jobStart)
						}
						mu.Unlock()
						endTenantSpan(tspan, &degradation{phase: PhaseInfer, err: err})
						continue
					}
					perRetailer[j.id] = recs
					pop[j.id] = sellers
					if rep := reports[j.id]; rep != nil {
						rep.ItemsServed = len(recs)
						rep.InferWall = time.Since(jobStart)
					}
					mu.Unlock()
					if dj != nil {
						// Persist the materialization, then commit its
						// completion record. If the blob write fails the
						// record is withheld: a resume just re-materializes
						// this tenant. A failed record append is fleet-level
						// — the work itself succeeded.
						if werr := p.writeWithRetry(ctx, recsPath(day, j.id), encodeRecsBlob(recs, sellers)); werr == nil {
							if aerr := dj.append(ctx, journalRecord{Type: recInferred, Retailer: j.id, Counters: &c, ItemsServed: len(recs)}); aerr != nil {
								mu.Lock()
								if fleetErr == nil {
									fleetErr = aerr
								}
								mu.Unlock()
							}
						}
					}
					tspan.SetAttr("outcome", "ok")
					tspan.SetAttr("items", strconv.Itoa(len(recs)))
					tspan.End()
				}
			}(cell, mine)
		}
		wg.Wait()
	}
	if fleetErr != nil {
		return nil, counters, fleetErr
	}

	for id, err := range failed {
		if degraded[id] == nil {
			degraded[id] = &degradation{phase: PhaseInfer, err: err}
		}
	}
	return serving.BuildSnapshot(int64(day+1), perRetailer, pop), counters, nil
}

// inferRetailerSafe runs one retailer's materialization behind the fault
// injector and a panic barrier: a panicking inference job degrades only
// its own retailer.
func (p *Pipeline) inferRetailerSafe(ctx context.Context, day int, t *Tenant, best modelselect.ConfigRecord) (items []inference.ItemRecs, sellers []catalog.ItemID, counters mapreduce.Counters, err error) {
	defer func() {
		if r := recover(); r != nil {
			items, sellers = nil, nil
			err = fmt.Errorf("pipeline: inference for %s panicked: %v", best.Retailer, r)
		}
	}()
	if err := p.opts.Injector.Before(faults.OpInfer, faultPath(day, best.Retailer)); err != nil {
		return nil, nil, counters, err
	}
	items, sellers, counters, err = p.inferRetailer(ctx, day, t, best)
	if err == nil {
		// Degenerate-model injection (OpModel) corrupts the materialized
		// lists here, before they are persisted to the recs blob, so a
		// crash-resume replays the exact same degenerate output and the
		// guard's verdict is reproducible.
		if kind, ok := p.opts.Injector.ModelFault(faultPath(day, best.Retailer), faults.ModelNaN, faults.ModelCollapse); ok {
			degradeModelOutput(kind, items)
		}
	}
	return items, sellers, counters, err
}

// inferRetailer materializes one retailer: load the best model, assemble
// the hybrid recommender over fresh co-occurrence/stats/candidates, and run
// the per-item job.
func (p *Pipeline) inferRetailer(ctx context.Context, day int, t *Tenant, best modelselect.ConfigRecord) ([]inference.ItemRecs, []catalog.ItemID, mapreduce.Counters, error) {
	var counters mapreduce.Counters
	model, err := p.loadModelFrom(best.ModelPath)
	if err != nil {
		return nil, nil, counters, err
	}
	cat := t.Catalog
	if model.NumItems < cat.NumItems() {
		// Items added after training still need serving coverage: grow the
		// model with cold random embeddings (features carry them).
		if err := model.ExpandToCatalog(cat, warmStartRNG(best)); err != nil {
			return nil, nil, counters, err
		}
	}
	cooc := cooccur.FromLog(t.Log, cat.NumItems(), cooccur.DefaultWindow)
	stats := interactions.ComputeItemStats(t.Log, cat.NumItems())
	sel := candidates.NewSelector(cat, cooc)
	sel.Repurchase = candidates.ComputeRepurchase(t.Log, cat, 0.3)
	rec := hybrid.NewRecommender(cooc, model, sel, stats)
	rec.HeadMinEvents = p.opts.HeadMinEvents
	rec.TopK = p.opts.InferTopK

	items, counters, err := inference.MaterializeStats(ctx, rec, cat, inference.Options{
		TopK:             p.opts.InferTopK,
		Workers:          p.opts.InferWorkers,
		SkipOutOfStock:   true,
		LateFunnelFacets: p.opts.LateFunnelFacets,
		Substrate:        p.substrateFor(day, "infer/"+string(best.Retailer)),
		Metrics:          p.opts.Obs.Reg(),
	})
	if err != nil {
		return nil, nil, counters, err
	}

	// Popularity fallback list for contextless users.
	var sellers []catalog.ItemID
	for _, id := range stats.PopularityOrder() {
		if !cat.Item(id).InStock {
			continue
		}
		sellers = append(sellers, id)
		if len(sellers) == 50 {
			break
		}
	}
	return items, sellers, counters, nil
}
