package pipeline

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"sigmund/internal/catalog"
	"sigmund/internal/cooccur"
	"sigmund/internal/core/bpr"
	"sigmund/internal/core/eval"
	"sigmund/internal/core/modelselect"
	"sigmund/internal/dfs"
	"sigmund/internal/faults"
	"sigmund/internal/linalg"
	"sigmund/internal/mapreduce"
)

// runTraining executes the training stage: config records are divided
// round-robin across cells (after the random permutation), each cell runs
// an independent MapReduce whose map phase calls Train() on each record,
// and the output config records are gathered (Figure 4's schematic).
//
// A sunk cell (its MapReduce exhausting all attempts) degrades exactly the
// tenants whose configs it carried — reported in the returned map — while
// the other cells' output is kept. Only fleet-level failures (context
// cancellation, day-journal failures) surface as the error.
//
// With day journaling (dj != nil), a cell whose completion record is in
// the journal is replayed: its committed output records are decoded from
// the shared filesystem and its recorded counters restored, with no
// MapReduce launched. Cells that finish fresh commit a completion record
// — after their outputs are durable — so the next resume can skip them.
func (p *Pipeline) runTraining(ctx context.Context, day int, records []modelselect.ConfigRecord, dj *dayJournal) ([]modelselect.ConfigRecord, mapreduce.Counters, map[catalog.RetailerID]error, map[catalog.RetailerID]time.Duration, error) {
	cells := p.opts.Cells
	perCell := make([][]modelselect.ConfigRecord, cells)
	for i, rec := range records {
		perCell[i%cells] = append(perCell[i%cells], rec)
	}

	// Per-day co-occurrence model cache: many configs share one retailer's
	// training data, and the heuristic negative sampler wants the same
	// co-occurrence structure for all of them.
	coocCache := &coocCache{fs: p.fs, day: day, models: map[catalog.RetailerID]*cooccur.Model{}}

	// wall attributes training compute back to tenants: one tenant's
	// configs train interleaved with everyone else's across the shared
	// MapReduce, so each map task adds its elapsed time (retried and lost
	// attempts included) to its record's retailer.
	wall := &tenantWall{d: map[catalog.RetailerID]time.Duration{}}

	var (
		mu       sync.Mutex
		out      []modelselect.ConfigRecord
		counters mapreduce.Counters
		wg       sync.WaitGroup
		failed   = map[catalog.RetailerID]error{}
		fleetErr error // journal failure or coordinator crash: aborts the day
	)
	for cell := 0; cell < cells; cell++ {
		if len(perCell[cell]) == 0 {
			continue
		}
		if dj != nil {
			if rec := dj.cellRecord(cell); rec != nil {
				cellOut, err := p.loadCellRecords(day, cell)
				if err == nil {
					mu.Lock()
					out = append(out, cellOut...)
					if rec.Counters != nil {
						counters.Add(*rec.Counters)
					}
					mu.Unlock()
					dj.noteSkippedCell()
					continue
				}
				// The completion record survived but its artifacts did not
				// (partial GC, corrupted file): fall through and re-run the
				// cell — replay must degrade to re-execution, never fail.
			}
		}
		wg.Add(1)
		go func(cell int, recs []modelselect.ConfigRecord) {
			defer wg.Done()
			cellOut, c, err := p.runTrainingCell(ctx, day, cell, recs, coocCache, wall)
			mu.Lock()
			counters.Add(c)
			if err != nil {
				for _, rec := range recs {
					if failed[rec.Retailer] == nil {
						failed[rec.Retailer] = fmt.Errorf("training cell %d: %w", cell, err)
					}
				}
				mu.Unlock()
				return
			}
			out = append(out, cellOut...)
			mu.Unlock()
			if dj != nil {
				// The cell's outputs are durable (runTrainingCell persists
				// them before returning), so its completion can commit. A
				// failed append is fleet-level, not this cell's tenants'
				// fault: the work itself succeeded.
				if aerr := dj.append(ctx, journalRecord{Type: recCell, Cell: cell, Counters: &c}); aerr != nil {
					mu.Lock()
					if fleetErr == nil {
						fleetErr = aerr
					}
					mu.Unlock()
				}
			}
		}(cell, perCell[cell])
	}
	wg.Wait()
	if fleetErr != nil {
		return nil, counters, nil, nil, fleetErr
	}
	if err := ctx.Err(); err != nil {
		return nil, counters, nil, nil, err
	}
	return out, counters, failed, wall.snapshot(), nil
}

// tenantWall accumulates per-tenant training compute across concurrent map
// tasks.
type tenantWall struct {
	mu sync.Mutex
	d  map[catalog.RetailerID]time.Duration
}

func (w *tenantWall) add(r catalog.RetailerID, d time.Duration) {
	w.mu.Lock()
	w.d[r] += d
	w.mu.Unlock()
}

func (w *tenantWall) snapshot() map[catalog.RetailerID]time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make(map[catalog.RetailerID]time.Duration, len(w.d))
	for r, d := range w.d {
		out[r] = d
	}
	return out
}

func (p *Pipeline) runTrainingCell(ctx context.Context, day, cell int, recs []modelselect.ConfigRecord, cache *coocCache, wall *tenantWall) ([]modelselect.ConfigRecord, mapreduce.Counters, error) {
	return p.trainRecordSet(ctx, day, fmt.Sprintf("cell-%d", cell), recordsPath(day, cell), recs, cache, wall)
}

// trainRecordSet runs one training MapReduce over a set of config records
// and persists the output records durably at persistPath. It is the body
// shared by the daily per-cell jobs (label "cell-<n>") and the
// scheduler's per-tenant train jobs (label "tenant-<r>"): one config per
// map task, panic containment per config, substrate preemption seed
// decorrelated by day and label.
func (p *Pipeline) trainRecordSet(ctx context.Context, day int, label, persistPath string, recs []modelselect.ConfigRecord, cache *coocCache, wall *tenantWall) ([]modelselect.ConfigRecord, mapreduce.Counters, error) {
	input := make([]mapreduce.Record, len(recs))
	for i, rec := range recs {
		input[i] = mapreduce.Record{Key: rec.ModelID, Value: EncodeConfigRecord(rec)}
	}
	mapper := mapreduce.MapperFunc(func(mctx context.Context, r mapreduce.Record, emit mapreduce.Emit) error {
		rec, err := DecodeConfigRecord(r.Value)
		if err != nil {
			return err
		}
		taskStart := time.Now()
		outRec, err := p.trainOneSafe(mctx, day, rec, cache)
		wall.add(rec.Retailer, time.Since(taskStart))
		if err != nil {
			// Context/injected-preemption errors propagate so the framework
			// re-executes the task (resuming from the checkpoint). Anything
			// else becomes an error record: one broken config must not sink
			// the fleet's day.
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return err
			}
			outRec = rec
			outRec.Trained = false
			outRec.Err = err.Error()
		}
		emit(string(outRec.Retailer), EncodeConfigRecord(outRec))
		return nil
	})
	spec := mapreduce.Spec{
		Name: fmt.Sprintf("train/day-%d/%s", day, label),
		// One config record per map task: a model trains on one "machine"
		// at a time (Section IV-B2), with Hogwild threads inside.
		NumMapTasks:    len(input),
		NumReduceTasks: 4,
		Workers:        p.opts.TrainWorkers,
		Faults:         p.opts.Faults,
		Substrate:      p.substrateFor(day, "train/"+label),
		MaxAttempts:    5,
		Metrics:        p.opts.Obs.Reg(),
	}
	res, err := mapreduce.Run(ctx, spec, input, mapper, mapreduce.IdentityReducer)
	if err != nil {
		return nil, res.Counters, err
	}
	out := make([]modelselect.ConfigRecord, 0, len(res.Output))
	var persist bytes.Buffer
	for _, kv := range res.Output {
		rec, err := DecodeConfigRecord(kv.Value)
		if err != nil {
			return nil, res.Counters, err
		}
		out = append(out, rec)
		persist.Write(kv.Value)
		persist.WriteByte('\n')
	}
	// Persist the output records for inspection and recovery.
	if err := p.writeWithRetry(ctx, persistPath, persist.Bytes()); err != nil {
		return nil, res.Counters, err
	}
	return out, res.Counters, nil
}

// trainOneSafe runs trainOne with panic containment: a panicking training
// task (bad data, injected chaos) is converted to an error record for its
// own config instead of crashing the worker and sinking the cell's day.
func (p *Pipeline) trainOneSafe(ctx context.Context, day int, rec modelselect.ConfigRecord, cache *coocCache) (out modelselect.ConfigRecord, err error) {
	defer func() {
		if r := recover(); r != nil {
			out = rec
			err = fmt.Errorf("pipeline: training %s panicked: %v", rec.ModelID, r)
		}
	}()
	return p.trainOne(ctx, day, rec, cache)
}

// trainOne is the body of one training map task: the Train() function from
// Section IV-B. It reads the staged data, builds or restores the model
// (checkpoint first — preemption recovery — then warm start, then fresh),
// trains with asynchronous wall-clock checkpointing, evaluates on the
// holdout, and persists the final model.
func (p *Pipeline) trainOne(ctx context.Context, day int, rec modelselect.ConfigRecord, cache *coocCache) (modelselect.ConfigRecord, error) {
	if err := p.opts.Injector.Before(faults.OpTrain, faultPath(day, rec.Retailer)); err != nil {
		return rec, fmt.Errorf("training %s: %w", rec.ModelID, err)
	}
	tenant := p.Tenant(rec.Retailer)
	if tenant == nil {
		return rec, fmt.Errorf("unknown retailer %s", rec.Retailer)
	}
	cat := tenant.Catalog

	raw, err := p.fs.Read(rec.TrainDataPath)
	if err != nil {
		return rec, fmt.Errorf("reading training data: %w", err)
	}
	trainLog, err := DecodeLog(raw)
	if err != nil {
		return rec, err
	}
	rawH, err := p.fs.Read(holdoutPath(day, rec.Retailer))
	if err != nil {
		return rec, fmt.Errorf("reading holdout: %w", err)
	}
	holdout, err := DecodeHoldout(rawH)
	if err != nil {
		return rec, err
	}

	ds := bpr.NewDataset(trainLog, cat)
	cooc, err := cache.get(rec.Retailer, rec.TrainDataPath, cat.NumItems())
	if err != nil {
		return rec, err
	}

	ckptBase := checkpointBase(day, rec.ModelID)
	model, err := p.buildModel(rec, cat, ckptBase)
	if err != nil {
		return rec, err
	}

	ckpt := dfs.NewCheckpointer(p.fs, ckptBase)
	topts := bpr.TrainOptions{
		Epochs:  rec.Epochs,
		Threads: p.opts.TrainThreads,
		Cooc:    cooc,
	}
	if p.opts.CheckpointEvery > 0 {
		topts.CheckpointEvery = p.opts.CheckpointEvery
		topts.Checkpoint = func(m *bpr.Model) error {
			_, err := ckpt.Save(func(w io.Writer) error { return m.Save(w) })
			return err
		}
	}
	if _, err := bpr.Train(ctx, model, ds, topts); err != nil {
		return rec, err
	}

	rec.Metrics = eval.Evaluate(model, holdout, cat.NumItems(), p.evalOptionsFor(cat.NumItems()))
	rec.Trained = true

	// Persist the final model with write-then-rename visibility, then GC
	// the checkpoints. Both steps ride through transient filesystem
	// failures with the same backoff schedule as staging: losing a
	// finished model to one flaky replica write would waste the whole
	// training run.
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		return rec, fmt.Errorf("saving model: %w", err)
	}
	tmp := rec.ModelPath + ".tmp"
	if err := p.writeWithRetry(ctx, tmp, buf.Bytes()); err != nil {
		return rec, fmt.Errorf("saving model: %w", err)
	}
	if err := p.renameWithRetry(ctx, tmp, rec.ModelPath); err != nil {
		return rec, err
	}
	ckpt.Clean()
	return rec, nil
}

// buildModel constructs the model a training task starts from, in
// preference order: a checkpoint from a preempted previous attempt, then a
// warm start from yesterday's model (incremental runs), then a fresh
// random initialization. A garbled or unreadable checkpoint is discarded —
// counted in the day's DiscardedCheckpoints — and the task falls back to
// the next source instead of failing outright.
func (p *Pipeline) buildModel(rec modelselect.ConfigRecord, cat *catalog.Catalog, ckptBase string) (*bpr.Model, error) {
	if path, ok := dfs.LatestCheckpoint(p.fs, ckptBase); ok {
		model, err := p.loadModelFrom(path)
		if err == nil {
			return model, nil
		}
		p.discardedCkpts.Add(1)
		dfs.NewCheckpointer(p.fs, ckptBase).Clean()
	}
	if rec.WarmStartPath != "" && p.fs.Exists(rec.WarmStartPath) {
		// Incremental run: warm-start from yesterday's model, grow to
		// cover new items, and reset the Adagrad norms (Section III-C3).
		model, err := p.loadModelFrom(rec.WarmStartPath)
		if err != nil {
			return nil, err
		}
		if err := model.ExpandToCatalog(cat, warmStartRNG(rec)); err != nil {
			return nil, err
		}
		model.ResetAdagradNorms()
		return model, nil
	}
	return bpr.NewModel(rec.Hyper, cat)
}

func (p *Pipeline) loadModelFrom(path string) (*bpr.Model, error) {
	r, err := p.fs.Open(path)
	if err != nil {
		return nil, err
	}
	m, err := bpr.Load(r)
	if err != nil {
		return nil, fmt.Errorf("loading model %s: %w", path, err)
	}
	return m, nil
}

// warmStartRNG derives the RNG used to initialize embeddings for items that
// appeared since yesterday's model.
func warmStartRNG(rec modelselect.ConfigRecord) *linalg.RNG {
	return linalg.NewRNG(rec.Hyper.Seed ^ 0xfeed)
}

// coocCache builds one co-occurrence model per retailer per day (all grid
// points share it).
type coocCache struct {
	fs  *dfs.FS
	day int

	mu     sync.Mutex
	models map[catalog.RetailerID]*cooccur.Model
}

func (c *coocCache) get(r catalog.RetailerID, trainPath string, numItems int) (*cooccur.Model, error) {
	c.mu.Lock()
	m, ok := c.models[r]
	c.mu.Unlock()
	if ok {
		return m, nil
	}
	raw, err := c.fs.Read(trainPath)
	if err != nil {
		return nil, err
	}
	log, err := DecodeLog(raw)
	if err != nil {
		return nil, err
	}
	m = cooccur.FromLog(log, numItems, cooccur.DefaultWindow)
	c.mu.Lock()
	c.models[r] = m
	c.mu.Unlock()
	return m, nil
}
