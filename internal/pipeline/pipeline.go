package pipeline

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"sigmund/internal/catalog"
	"sigmund/internal/core/bpr"
	"sigmund/internal/core/eval"
	"sigmund/internal/core/modelselect"
	"sigmund/internal/dfs"
	"sigmund/internal/interactions"
	"sigmund/internal/linalg"
	"sigmund/internal/mapreduce"
	"sigmund/internal/serving"
)

// Options configures the pipeline.
type Options struct {
	// Grid is the hyper-parameter search space (pruned per retailer by
	// feature coverage before expansion).
	Grid modelselect.Grid
	// BaseHyper supplies values for dimensions the grid does not sweep.
	BaseHyper bpr.Hyperparams

	// FullEpochs / IncrementalEpochs: training lengths for full sweeps and
	// warm-started incremental runs (incremental converges much faster).
	FullEpochs        int
	IncrementalEpochs int
	// TopKIncremental is how many of yesterday's best configs the
	// incremental sweep re-trains (paper: 3-5).
	TopKIncremental int
	// FullRestartEvery forces a periodic full sweep (in days) so models
	// only reflect recent history — the terms-of-service constraint from
	// Section III-C3. 0 disables.
	FullRestartEvery int

	// TrainWorkers is the number of concurrent training tasks per cell
	// ("machines"); TrainThreads is Hogwild parallelism within one model.
	TrainWorkers int
	TrainThreads int
	// Cells splits training and inference work across simulated data
	// centers.
	Cells int

	// CheckpointEvery is the wall-clock checkpoint interval during
	// training (Section IV-B3). 0 disables checkpointing.
	CheckpointEvery time.Duration

	// SampleMAPOverItems switches holdout evaluation to 10%-sampled MAP
	// for retailers with more items than this (paper Section III-C2).
	SampleMAPOverItems int

	// InferTopK is the number of recommendations materialized per item.
	InferTopK int
	// InferWorkers is the parallelism of each retailer's inference job.
	InferWorkers int
	// HeadMinEvents is the hybrid recommender's popularity threshold.
	HeadMinEvents int
	// LateFunnelFacets enables materializing the facet-constrained
	// late-funnel surface (nil = off).
	LateFunnelFacets []string

	// Faults optionally injects preemptions into the training MapReduce.
	Faults mapreduce.FaultPlan

	// MinFeatureCoverage is the feature-selection pruning threshold
	// (paper: ~0.1 for brand coverage).
	MinFeatureCoverage float64

	// KeepDays garbage-collects a day's staged data, checkpoints, models,
	// and records from the shared filesystem once it is this many days old
	// (the paper's terms-of-service posture: only recent history is
	// retained). Incremental warm starts only ever read yesterday's
	// models, so KeepDays >= 2 is always safe. 0 keeps everything.
	KeepDays int

	Seed uint64
}

// Defaulted fills zero fields.
func (o Options) Defaulted() Options {
	if o.Grid.Size() <= 1 && len(o.Grid.Factors) == 0 {
		o.Grid = modelselect.DefaultGrid()
	}
	if o.BaseHyper.Factors == 0 {
		o.BaseHyper = bpr.DefaultHyperparams()
	}
	if o.FullEpochs <= 0 {
		o.FullEpochs = 10
	}
	if o.IncrementalEpochs <= 0 {
		o.IncrementalEpochs = 3
	}
	if o.TopKIncremental <= 0 {
		o.TopKIncremental = 3
	}
	if o.TrainWorkers <= 0 {
		o.TrainWorkers = 4
	}
	if o.TrainThreads <= 0 {
		o.TrainThreads = 2
	}
	if o.Cells <= 0 {
		o.Cells = 1
	}
	if o.SampleMAPOverItems <= 0 {
		o.SampleMAPOverItems = 5000
	}
	if o.InferTopK <= 0 {
		o.InferTopK = 10
	}
	if o.InferWorkers <= 0 {
		o.InferWorkers = 4
	}
	if o.HeadMinEvents <= 0 {
		o.HeadMinEvents = 30
	}
	if o.MinFeatureCoverage <= 0 {
		o.MinFeatureCoverage = 0.1
	}
	return o
}

// Tenant is one retailer's registered state.
type Tenant struct {
	Catalog *catalog.Catalog
	Log     *interactions.Log
	// isNew marks retailers that have never been through a sweep; they get
	// a full grid search regardless of the day (Section IV-A).
	isNew bool
}

// Pipeline runs the daily cycle for a fleet of tenants.
type Pipeline struct {
	fs     *dfs.FS
	server *serving.Server
	opts   Options

	mu      sync.Mutex
	tenants map[catalog.RetailerID]*Tenant
	order   []catalog.RetailerID // deterministic iteration
	day     int
	// lastRecords holds each retailer's trained config records from the
	// previous sweep, for incremental planning.
	lastRecords map[catalog.RetailerID][]modelselect.ConfigRecord
}

// New creates a pipeline writing to fs and publishing to server (server
// may be nil if only training is wanted).
func New(fs *dfs.FS, server *serving.Server, opts Options) *Pipeline {
	return &Pipeline{
		fs:          fs,
		server:      server,
		opts:        opts.Defaulted(),
		tenants:     make(map[catalog.RetailerID]*Tenant),
		lastRecords: make(map[catalog.RetailerID][]modelselect.ConfigRecord),
	}
}

// AddRetailer registers a tenant. New retailers receive a full grid sweep
// on their first cycle even when the fleet is running incrementally.
func (p *Pipeline) AddRetailer(cat *catalog.Catalog, log *interactions.Log) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.tenants[cat.Retailer]; ok {
		panic(fmt.Sprintf("pipeline: retailer %s already registered", cat.Retailer))
	}
	p.tenants[cat.Retailer] = &Tenant{Catalog: cat, Log: log, isNew: true}
	p.order = append(p.order, cat.Retailer)
	sort.Slice(p.order, func(i, j int) bool { return p.order[i] < p.order[j] })
}

// Tenant returns a registered tenant (nil if unknown).
func (p *Pipeline) Tenant(r catalog.RetailerID) *Tenant {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tenants[r]
}

// NumTenants returns the number of registered retailers.
func (p *Pipeline) NumTenants() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.tenants)
}

// Day returns the number of completed daily cycles.
func (p *Pipeline) Day() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.day
}

// RetailerReport summarizes one retailer's daily cycle.
type RetailerReport struct {
	Retailer      catalog.RetailerID
	FullSweep     bool
	ConfigsPlaned int
	ConfigsOK     int
	BestMAP       float64
	BestModelID   string
	ItemsServed   int
}

// DayReport summarizes a full daily cycle.
type DayReport struct {
	Day            int
	Retailers      []RetailerReport
	TrainCounters  mapreduce.Counters
	TrainWall      time.Duration
	InferWall      time.Duration
	SnapshotPushed bool
}

// BestMAP returns the fleet-average best MAP.
func (d DayReport) BestMAP() float64 {
	if len(d.Retailers) == 0 {
		return 0
	}
	var s float64
	for _, r := range d.Retailers {
		s += r.BestMAP
	}
	return s / float64(len(d.Retailers))
}

// RunDay executes one full cycle: sweep -> train -> select -> infer ->
// publish. It is the programmatic equivalent of the daily production run.
func (p *Pipeline) RunDay(ctx context.Context) (DayReport, error) {
	p.mu.Lock()
	day := p.day
	tenants := make([]*Tenant, 0, len(p.tenants))
	ids := append([]catalog.RetailerID(nil), p.order...)
	for _, id := range ids {
		tenants = append(tenants, p.tenants[id])
	}
	p.mu.Unlock()

	report := DayReport{Day: day}
	if len(tenants) == 0 {
		p.mu.Lock()
		p.day++
		p.mu.Unlock()
		return report, nil
	}

	// --- Stage data + plan sweeps ---
	rng := linalg.NewRNG(p.opts.Seed ^ uint64(day)*0x9e37)
	var allRecords []modelselect.ConfigRecord
	perRetailer := map[catalog.RetailerID]*RetailerReport{}
	for i, t := range tenants {
		r := ids[i]
		split := interactions.HoldoutSplit(t.Log, p.opts.BaseHyper.ContextLen)
		if err := p.writeWithRetry(trainDataPath(day, r), EncodeLog(split.Train)); err != nil {
			return report, fmt.Errorf("staging training data for %s: %w", r, err)
		}
		if err := p.writeWithRetry(holdoutPath(day, r), EncodeHoldout(split.Holdout)); err != nil {
			return report, fmt.Errorf("staging holdout for %s: %w", r, err)
		}

		full := t.isNew || (p.opts.FullRestartEvery > 0 && day%p.opts.FullRestartEvery == 0) || len(p.lastRecords[r]) == 0
		var recs []modelselect.ConfigRecord
		if full {
			grid := p.opts.Grid.PruneForRetailer(t.Catalog, p.opts.MinFeatureCoverage)
			recs = modelselect.PlanFull(r, grid, p.opts.BaseHyper, trainDataPath(day, r), p.opts.FullEpochs)
			for j := range recs {
				recs[j].ModelPath = modelPath(day, recs[j].ModelID)
			}
		} else {
			recs = modelselect.PlanIncremental(p.lastRecords[r], p.opts.TopKIncremental, p.opts.IncrementalEpochs)
			for j := range recs {
				recs[j].TrainDataPath = trainDataPath(day, r)
				recs[j].WarmStartPath = recs[j].ModelPath // yesterday's model
				recs[j].ModelPath = modelPath(day, recs[j].ModelID)
			}
		}
		perRetailer[r] = &RetailerReport{Retailer: r, FullSweep: full, ConfigsPlaned: len(recs)}
		allRecords = append(allRecords, recs...)
		t.isNew = false
	}

	// Random permutation of config records balances work across shards
	// (Section IV-B1).
	rng.Shuffle(len(allRecords), func(i, j int) {
		allRecords[i], allRecords[j] = allRecords[j], allRecords[i]
	})

	// --- Training: one MapReduce per cell ---
	trainStart := time.Now()
	outRecords, counters, err := p.runTraining(ctx, day, allRecords)
	if err != nil {
		return report, err
	}
	report.TrainCounters = counters
	report.TrainWall = time.Since(trainStart)

	// --- Model selection ---
	byRetailer := modelselect.GroupByRetailer(outRecords)
	p.mu.Lock()
	for r, recs := range byRetailer {
		p.lastRecords[r] = recs
		rep := perRetailer[r]
		for _, rec := range recs {
			if rec.Trained && rec.Err == "" {
				rep.ConfigsOK++
			}
		}
		if best, ok := modelselect.Best(recs); ok {
			rep.BestMAP = best.Metrics.MAP
			rep.BestModelID = best.ModelID
		}
	}
	p.mu.Unlock()

	// --- Inference + serving push ---
	inferStart := time.Now()
	if p.server != nil {
		if err := p.runInference(ctx, day, ids, tenants, byRetailer, perRetailer); err != nil {
			return report, err
		}
		report.SnapshotPushed = true
	}
	report.InferWall = time.Since(inferStart)

	for _, id := range ids {
		report.Retailers = append(report.Retailers, *perRetailer[id])
	}

	// Storage GC: drop whole expired days (data, checkpoints, models,
	// records live under one prefix per day, so this is a single sweep).
	if p.opts.KeepDays > 0 && day-p.opts.KeepDays >= 0 {
		p.fs.DeletePrefix(fmt.Sprintf("days/%d/", day-p.opts.KeepDays))
	}

	p.mu.Lock()
	p.day++
	p.mu.Unlock()
	return report, nil
}

// writeWithRetry writes a file with a few attempts — the shared filesystem
// is replicated and an individual write can fail transiently; staging the
// day's inputs must ride through that.
func (p *Pipeline) writeWithRetry(path string, data []byte) error {
	var err error
	for attempt := 0; attempt < 4; attempt++ {
		if err = p.fs.Write(path, data); err == nil {
			return nil
		}
	}
	return err
}

// evalOptionsFor applies the paper's CPU-saving rule: approximate MAP on a
// 10% item sample for very large retailers, exact for everyone else.
func (p *Pipeline) evalOptionsFor(numItems int) eval.Options {
	opts := eval.DefaultOptions()
	if numItems > p.opts.SampleMAPOverItems {
		opts.SampleFraction = 0.10
	}
	return opts
}
