package pipeline

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sigmund/internal/catalog"
	"sigmund/internal/core/bpr"
	"sigmund/internal/core/eval"
	"sigmund/internal/core/modelselect"
	"sigmund/internal/dfs"
	"sigmund/internal/faults"
	"sigmund/internal/guard"
	"sigmund/internal/interactions"
	"sigmund/internal/linalg"
	"sigmund/internal/mapreduce"
	"sigmund/internal/obs"
	"sigmund/internal/retry"
	"sigmund/internal/serving"
)

// Options configures the pipeline.
type Options struct {
	// Grid is the hyper-parameter search space (pruned per retailer by
	// feature coverage before expansion).
	Grid modelselect.Grid
	// BaseHyper supplies values for dimensions the grid does not sweep.
	BaseHyper bpr.Hyperparams

	// FullEpochs / IncrementalEpochs: training lengths for full sweeps and
	// warm-started incremental runs (incremental converges much faster).
	FullEpochs        int
	IncrementalEpochs int
	// TopKIncremental is how many of yesterday's best configs the
	// incremental sweep re-trains (paper: 3-5).
	TopKIncremental int
	// FullRestartEvery forces a periodic full sweep (in days) so models
	// only reflect recent history — the terms-of-service constraint from
	// Section III-C3. 0 disables.
	FullRestartEvery int

	// TrainWorkers is the number of concurrent training tasks per cell
	// ("machines"); TrainThreads is Hogwild parallelism within one model.
	TrainWorkers int
	TrainThreads int
	// Cells splits training and inference work across simulated data
	// centers.
	Cells int

	// CheckpointEvery is the wall-clock checkpoint interval during
	// training (Section IV-B3). 0 disables checkpointing.
	CheckpointEvery time.Duration

	// SampleMAPOverItems switches holdout evaluation to 10%-sampled MAP
	// for retailers with more items than this (paper Section III-C2).
	SampleMAPOverItems int

	// InferTopK is the number of recommendations materialized per item.
	InferTopK int
	// InferWorkers is the parallelism of each retailer's inference job.
	InferWorkers int
	// HeadMinEvents is the hybrid recommender's popularity threshold.
	HeadMinEvents int
	// LateFunnelFacets enables materializing the facet-constrained
	// late-funnel surface (nil = off).
	LateFunnelFacets []string

	// Faults optionally injects preemptions into the training MapReduce.
	Faults mapreduce.FaultPlan

	// Substrate configures the worker substrate — preemption, lease
	// expiry, speculative execution, blacklisting — for every training and
	// inference MapReduce the pipeline runs. The preemption seed is
	// re-derived per day/cell/retailer so each job sees an independent (but
	// deterministic) arrival process. The zero value is reliable workers.
	Substrate mapreduce.Substrate

	// Injector optionally injects deterministic faults into per-tenant
	// pipeline stages: training and inference work consult it under the
	// path "days/<day>/<retailer>" (OpTrain / OpInfer). Install the same
	// injector on the dfs.FS to fault staging writes, checkpoints, and
	// model saves too. nil disables.
	Injector *faults.Injector

	// Retry is the backoff policy for transient shared-filesystem writes
	// (staging data, cell records). Zero fields take retry defaults;
	// jitter is drawn from the pipeline seed so runs stay deterministic.
	Retry retry.Policy

	// Obs is the observability surface the pipeline reports through: every
	// RunDay emits a span tree (day -> phase -> tenant) into its tracer and
	// sigmund_pipeline_* metrics into its registry, and the training and
	// inference MapReduce jobs report their substrate lifecycle there too.
	// Share one observer with the serving layer so /metrics and /tracez
	// cover the whole stack. nil gets a private observer at Defaulted.
	Obs *obs.Observer

	// QuarantineAfter is how many consecutive failed days a tenant may
	// accumulate before it is quarantined: skipped on subsequent days
	// (while its last good snapshot keeps serving) except for periodic
	// re-admission probes. <= 0 defaults to 3.
	QuarantineAfter int
	// QuarantineProbeEvery is how often, in days, a quarantined tenant is
	// probed for re-admission with a full cycle. <= 0 defaults to 2.
	QuarantineProbeEvery int

	// MinFeatureCoverage is the feature-selection pruning threshold
	// (paper: ~0.1 for brand coverage).
	MinFeatureCoverage float64

	// KeepDays garbage-collects a day's staged data, checkpoints, models,
	// and records from the shared filesystem once it is this many days old
	// (the paper's terms-of-service posture: only recent history is
	// retained). Incremental warm starts only ever read yesterday's
	// models, so KeepDays >= 2 is always safe. 0 keeps everything.
	KeepDays int

	// Guard configures the publish-time model-quality firewall: candidate
	// generations are validated against structural invariants and each
	// tenant's trailing baseline before they may publish. Vetoed tenants
	// carry forward their previous generation via the degraded machinery;
	// borderline tenants publish behind a live canary when the store
	// supports one. The zero value (Enabled false) disables the guard.
	Guard guard.Options

	// Journal makes RunDay crash-resumable: the day's plan and each unit
	// of committed work are recorded in a durable append-only journal on
	// the shared filesystem, and a re-run of the same day (after a
	// coordinator crash) replays the journal, skipping finished cells and
	// tenants instead of redoing them. See internal/pipeline/journal.go
	// for the record catalogue and replay invariants.
	Journal bool

	Seed uint64
}

// Defaulted fills zero fields.
func (o Options) Defaulted() Options {
	if o.Grid.Size() <= 1 && len(o.Grid.Factors) == 0 {
		o.Grid = modelselect.DefaultGrid()
	}
	if o.BaseHyper.Factors == 0 {
		o.BaseHyper = bpr.DefaultHyperparams()
	}
	if o.FullEpochs <= 0 {
		o.FullEpochs = 10
	}
	if o.IncrementalEpochs <= 0 {
		o.IncrementalEpochs = 3
	}
	if o.TopKIncremental <= 0 {
		o.TopKIncremental = 3
	}
	if o.TrainWorkers <= 0 {
		o.TrainWorkers = 4
	}
	if o.TrainThreads <= 0 {
		o.TrainThreads = 2
	}
	if o.Cells <= 0 {
		o.Cells = 1
	}
	if o.SampleMAPOverItems <= 0 {
		o.SampleMAPOverItems = 5000
	}
	if o.InferTopK <= 0 {
		o.InferTopK = 10
	}
	if o.InferWorkers <= 0 {
		o.InferWorkers = 4
	}
	if o.HeadMinEvents <= 0 {
		o.HeadMinEvents = 30
	}
	if o.MinFeatureCoverage <= 0 {
		o.MinFeatureCoverage = 0.1
	}
	if o.QuarantineAfter <= 0 {
		o.QuarantineAfter = 3
	}
	if o.QuarantineProbeEvery <= 0 {
		o.QuarantineProbeEvery = 2
	}
	if o.Obs == nil {
		o.Obs = obs.NewObserver()
	}
	o.Retry = o.Retry.Defaulted()
	if o.Retry.Metrics == nil {
		o.Retry.Metrics = o.Obs.Reg()
	}
	return o
}

// Tenant is one retailer's registered state.
type Tenant struct {
	Catalog *catalog.Catalog
	Log     *interactions.Log
	// isNew marks retailers that have never been through a sweep; they get
	// a full grid search regardless of the day (Section IV-A).
	isNew bool
}

// tenantHealth tracks one tenant's fault-domain state across days: how
// many consecutive daily cycles have failed, and whether the tenant is
// quarantined (skipped except for periodic re-admission probes).
type tenantHealth struct {
	consecFailures int
	quarantined    bool
	quarantinedDay int // day the tenant entered quarantine
}

// Publisher receives the pipeline's output: one immutable snapshot per
// day, plus the day's MapReduce counters. The single-node serving.Server
// implements it, and so does the sharded store — the pipeline doesn't care
// whether publish means an in-process pointer swap or a fleet-wide
// segment bulk-load.
type Publisher interface {
	Publish(*serving.Snapshot)
	AddJobCounters(mapreduce.Counters)
}

// Pipeline runs the daily cycle for a fleet of tenants.
type Pipeline struct {
	fs     *dfs.FS
	server Publisher
	opts   Options

	// discardedCkpts counts garbled or unreadable checkpoints that were
	// discarded in favor of a warm or fresh start.
	discardedCkpts atomic.Int64

	mu      sync.Mutex
	tenants map[catalog.RetailerID]*Tenant
	order   []catalog.RetailerID // deterministic iteration
	day     int
	// lastRecords holds each retailer's trained config records from the
	// previous sweep, for incremental planning.
	lastRecords map[catalog.RetailerID][]modelselect.ConfigRecord
	// health holds each retailer's fault-domain state.
	health map[catalog.RetailerID]*tenantHealth
}

// New creates a pipeline writing to fs and publishing to server (server
// may be nil if only training is wanted).
func New(fs *dfs.FS, server Publisher, opts Options) *Pipeline {
	return &Pipeline{
		fs:          fs,
		server:      server,
		opts:        opts.Defaulted(),
		tenants:     make(map[catalog.RetailerID]*Tenant),
		lastRecords: make(map[catalog.RetailerID][]modelselect.ConfigRecord),
		health:      make(map[catalog.RetailerID]*tenantHealth),
	}
}

// AddRetailer registers a tenant. New retailers receive a full grid sweep
// on their first cycle even when the fleet is running incrementally.
// Registering the same retailer twice is an error.
func (p *Pipeline) AddRetailer(cat *catalog.Catalog, log *interactions.Log) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.tenants[cat.Retailer]; ok {
		return fmt.Errorf("pipeline: retailer %s already registered", cat.Retailer)
	}
	p.tenants[cat.Retailer] = &Tenant{Catalog: cat, Log: log, isNew: true}
	p.health[cat.Retailer] = &tenantHealth{}
	p.order = append(p.order, cat.Retailer)
	sort.Slice(p.order, func(i, j int) bool { return p.order[i] < p.order[j] })
	return nil
}

// Tenant returns a registered tenant (nil if unknown).
func (p *Pipeline) Tenant(r catalog.RetailerID) *Tenant {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tenants[r]
}

// NumTenants returns the number of registered retailers.
func (p *Pipeline) NumTenants() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.tenants)
}

// Day returns the number of completed daily cycles.
func (p *Pipeline) Day() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.day
}

// Phase names used in degradation reports.
const (
	PhaseStaging    = "staging"
	PhaseTrain      = "train"
	PhaseInfer      = "infer"
	PhaseGuard      = "guard"
	PhaseQuarantine = "quarantine"
)

// RetailerReport summarizes one retailer's daily cycle.
type RetailerReport struct {
	Retailer      catalog.RetailerID
	FullSweep     bool
	ConfigsPlaned int
	ConfigsOK     int
	BestMAP       float64
	BestModelID   string
	ItemsServed   int

	// Degraded marks a tenant whose cycle failed this day; the serving
	// layer keeps answering from its previous snapshot (stale-but-serving)
	// instead of the fleet's day aborting.
	Degraded bool
	// DegradedPhase is the phase that failed: PhaseStaging, PhaseTrain,
	// PhaseInfer, or PhaseQuarantine (skipped while quarantined).
	DegradedPhase string
	// Err is the first error observed in the failing phase.
	Err string
	// Attempts counts the attempts consumed in the failing phase: the
	// retry budget for staging, failed config records for training, and
	// inference tries for inference.
	Attempts int
	// Quarantined marks tenants in quarantine after this cycle.
	Quarantined bool
	// GuardVerdict is the quality firewall's decision for this tenant's
	// candidate generation ("pass", "canary", "veto"); empty when the
	// guard is off or the tenant had no candidate.
	GuardVerdict string
	// GuardReason names the gate that tripped (veto or canary) or, on a
	// pass, a borderline signal that was waved through.
	GuardReason string
	// ConsecutiveFailures is the tenant's consecutive failed-day count
	// after this cycle (0 for a healthy day).
	ConsecutiveFailures int

	// Per-tenant phase timings: StagingWall brackets the tenant's staging
	// writes, TrainWall is the tenant's summed training compute across its
	// configs (attempts included, even interleaved across a shared
	// MapReduce), InferWall brackets its materialization job. These also
	// appear as tenant spans on /tracez.
	StagingWall time.Duration
	TrainWall   time.Duration
	InferWall   time.Duration
}

// DayReport summarizes a full daily cycle.
type DayReport struct {
	Day       int
	Retailers []RetailerReport
	// TrainCounters / InferCounters aggregate every cell's MapReduce
	// counters for the day, including the worker-substrate counters
	// (preemptions, lease expiries, speculative launches/wins, blacklisted
	// workers).
	TrainCounters mapreduce.Counters
	InferCounters mapreduce.Counters
	// Phase wall times for the whole fleet: together with TrainWall and
	// InferWall they break the day into staging -> train -> select ->
	// infer -> publish, mirroring the day's span tree on /tracez.
	StagingWall    time.Duration
	TrainWall      time.Duration
	SelectWall     time.Duration
	InferWall      time.Duration
	PublishWall    time.Duration
	SnapshotPushed bool

	// Degraded lists tenants whose cycle failed (or was skipped in
	// quarantine) this day; Quarantined lists the subset in quarantine.
	Degraded    []catalog.RetailerID
	Quarantined []catalog.RetailerID
	// Guard attribution (Options.Guard.Enabled only): GuardEvaluated
	// counts candidate generations the firewall examined; Vetoed lists
	// tenants refused publish (they carry forward generation N−1);
	// Canaried lists tenants publishing behind a live canary slice.
	GuardEvaluated int
	Vetoed         []catalog.RetailerID
	Canaried       []catalog.RetailerID
	// DiscardedCheckpoints counts garbled/missing checkpoints discarded in
	// favor of a warm or fresh start during this cycle.
	DiscardedCheckpoints int64

	// Crash-recovery metadata (Options.Journal only). Resumed marks a day
	// that continued from a journal left by a crashed coordinator;
	// RecordsReplayed is how many journal records it replayed;
	// CellsSkipped counts training cells whose committed outputs were
	// reused instead of re-executed; TenantsReplayed counts tenants whose
	// staged plan was reused.
	Resumed         bool
	RecordsReplayed int
	CellsSkipped    int
	TenantsReplayed int
}

// BestMAP returns the fleet-average best MAP over healthy tenants
// (degraded tenants have no fresh model and would drag the average to 0).
func (d DayReport) BestMAP() float64 {
	var s float64
	n := 0
	for _, r := range d.Retailers {
		if r.Degraded {
			continue
		}
		s += r.BestMAP
		n++
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// degradation records why a tenant's cycle failed; it feeds the per-day
// report and the quarantine bookkeeping.
type degradation struct {
	phase    string
	err      error
	attempts int
}

// RunDay executes one full cycle: sweep -> train -> select -> infer ->
// publish. It is the programmatic equivalent of the daily production run.
//
// Each tenant is its own fault domain: a tenant whose staging writes,
// training tasks, or inference job fail (including panics, which are
// recovered into errors) is marked degraded in the DayReport and keeps
// serving its previous snapshot, while every other tenant's day proceeds
// untouched. Tenants failing QuarantineAfter consecutive days are
// quarantined — skipped entirely except for a re-admission probe every
// QuarantineProbeEvery days. RunDay itself only returns an error for
// fleet-level failures: context cancellation, and — with Options.Journal —
// day-journal failures and injected coordinator crashes (see
// IsCoordinatorCrash). A crashed day's journal survives, so calling
// RunDay again resumes it: committed cells and tenants are replayed from
// their durable artifacts instead of re-executed, and the re-publish is
// idempotent.
func (p *Pipeline) RunDay(ctx context.Context) (DayReport, error) {
	var dj *dayJournal
	report, err := p.runDay(ctx, &dj)
	if err != nil && dj != nil && ctx.Err() != nil && !IsCoordinatorCrash(err) {
		// A clean context-cancelled shutdown: leave an abort marker so the
		// journal records that this incarnation stopped deliberately. The
		// next RunDay resumes past it.
		dj.appendAbort(err.Error())
	}
	return report, err
}

func (p *Pipeline) runDay(ctx context.Context, djOut **dayJournal) (DayReport, error) {
	dayStart := time.Now()
	p.mu.Lock()
	day := p.day
	ids := append([]catalog.RetailerID(nil), p.order...)
	tenants := make(map[catalog.RetailerID]*Tenant, len(ids))
	for _, id := range ids {
		tenants[id] = p.tenants[id]
	}
	p.mu.Unlock()

	report := DayReport{Day: day}
	ckptsBefore := p.discardedCkpts.Load()

	// The day's span tree: day -> phase -> tenant. Ending the root via
	// defer publishes it to /tracez even on a fleet-level abort (ending a
	// span twice keeps the first duration, so the normal path is unharmed).
	dspan := p.opts.Obs.Trace().Start("day", obs.L("day", strconv.Itoa(day)))
	defer dspan.End()

	if len(ids) == 0 {
		p.mu.Lock()
		p.day++
		p.mu.Unlock()
		dspan.SetAttr("outcome", "empty")
		return report, nil
	}

	// Open the day journal before any work starts: the intent record is
	// the day's first crashpoint, and a journal left behind by a crashed
	// coordinator turns this run into a resume.
	var dj *dayJournal
	if p.opts.Journal {
		var err error
		dj, err = p.openDayJournal(ctx, day, ids)
		if err != nil {
			return report, err
		}
		*djOut = dj
		report.Resumed = dj.resumed
		report.RecordsReplayed = dj.replayed
		if dj.resumed {
			dspan.SetAttr("resumed", "true")
		}
	}

	perRetailer := map[catalog.RetailerID]*RetailerReport{}
	degraded := map[catalog.RetailerID]*degradation{}

	// --- Quarantine gate ---
	// Quarantined tenants are skipped wholesale (their last good snapshot
	// keeps serving) unless this day is their periodic re-admission probe.
	var admitted []catalog.RetailerID
	var skipped []catalog.RetailerID
	p.mu.Lock()
	for _, id := range ids {
		perRetailer[id] = &RetailerReport{Retailer: id}
		h := p.health[id]
		if h.quarantined && (day-h.quarantinedDay)%p.opts.QuarantineProbeEvery != 0 {
			degraded[id] = &degradation{
				phase: PhaseQuarantine,
				err:   fmt.Errorf("pipeline: tenant quarantined since day %d; next probe pending", h.quarantinedDay),
			}
			skipped = append(skipped, id)
			continue
		}
		admitted = append(admitted, id)
	}
	p.mu.Unlock()
	if len(skipped) > 0 {
		qspan := dspan.Child("quarantine", obs.L("skipped", strconv.Itoa(len(skipped))))
		for _, id := range skipped {
			ts := qspan.Child("tenant:"+string(id), obs.L("outcome", "quarantined"))
			ts.SetAttr("error", degraded[id].err.Error())
			ts.EndWith(0)
		}
		qspan.EndWith(0)
	}

	// --- Stage data + plan sweeps (per-tenant fault domain) ---
	stagingStart := time.Now()
	stagingSpan := dspan.Child("staging")
	rng := linalg.NewRNG(p.opts.Seed ^ uint64(day)*0x9e37)
	var allRecords []modelselect.ConfigRecord
	for _, r := range admitted {
		t := tenants[r]
		tenantStart := time.Now()
		tspan := stagingSpan.Child("tenant:" + string(r))
		if dj != nil {
			if sr := dj.stagedRecord(r); sr != nil {
				// Replay: the plan (and the staged data it points at) was
				// committed before the crash. Reusing the recorded configs —
				// not replanning — keeps ModelIDs, warm-start paths, and the
				// full/incremental decision identical to the original run
				// even when in-memory sweep state died with the coordinator.
				perRetailer[r].FullSweep = sr.FullSweep
				perRetailer[r].ConfigsPlaned = len(sr.Configs)
				allRecords = append(allRecords, sr.Configs...)
				t.isNew = false
				dj.noteReplayedTenant()
				perRetailer[r].StagingWall = time.Since(tenantStart)
				tspan.SetAttr("outcome", "replayed")
				tspan.SetAttr("configs", strconv.Itoa(len(sr.Configs)))
				tspan.End()
				continue
			}
		}
		full, recs, err := p.stageTenantCore(ctx, day, r, t)
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return report, err
			}
			degraded[r] = &degradation{phase: PhaseStaging, err: err, attempts: retryAttempts(err)}
			perRetailer[r].StagingWall = time.Since(tenantStart)
			endTenantSpan(tspan, degraded[r])
			continue
		}
		perRetailer[r].FullSweep = full
		perRetailer[r].ConfigsPlaned = len(recs)
		allRecords = append(allRecords, recs...)
		if dj != nil {
			// The staged record commits the tenant's plan only now that its
			// training data and holdout are durable: a resume that finds
			// this record can train straight from the recorded configs.
			if err := dj.append(ctx, journalRecord{Type: recStaged, Retailer: r, FullSweep: full, Configs: recs}); err != nil {
				return report, err
			}
		}
		perRetailer[r].StagingWall = time.Since(tenantStart)
		tspan.SetAttr("outcome", "ok")
		tspan.SetAttr("configs", strconv.Itoa(len(recs)))
		tspan.End()
	}
	stagingSpan.End()
	report.StagingWall = time.Since(stagingStart)

	// Random permutation of config records balances work across shards
	// (Section IV-B1).
	rng.Shuffle(len(allRecords), func(i, j int) {
		allRecords[i], allRecords[j] = allRecords[j], allRecords[i]
	})

	// --- Training: one MapReduce per cell ---
	trainStart := time.Now()
	trainSpan := dspan.Child("train", obs.L("configs", strconv.Itoa(len(allRecords))))
	outRecords, counters, trainFailed, trainWall, err := p.runTraining(ctx, day, allRecords, dj)
	if err != nil {
		return report, err
	}
	for r, ferr := range trainFailed {
		if degraded[r] == nil {
			degraded[r] = &degradation{phase: PhaseTrain, err: ferr}
		}
	}
	report.TrainCounters = counters
	report.TrainWall = time.Since(trainStart)

	// --- Model selection ---
	// A tenant only advances its sweep state when at least one config
	// trained: a fully failed sweep keeps yesterday's records so the next
	// probe can still warm-start.
	selectStart := time.Now()
	selectSpan := dspan.Child("select")
	byRetailer := modelselect.GroupByRetailer(outRecords)
	p.mu.Lock()
	for r, recs := range byRetailer {
		if degraded[r] != nil {
			continue
		}
		rep := perRetailer[r]
		var firstErr string
		for _, rec := range recs {
			if rec.Trained && rec.Err == "" {
				rep.ConfigsOK++
			} else if firstErr == "" && rec.Err != "" {
				firstErr = rec.Err
			}
		}
		if best, ok := modelselect.Best(recs); ok {
			rep.BestMAP = best.Metrics.MAP
			rep.BestModelID = best.ModelID
			p.lastRecords[r] = recs
		} else {
			degraded[r] = &degradation{
				phase:    PhaseTrain,
				err:      fmt.Errorf("pipeline: no config trained (first error: %s)", firstErr),
				attempts: rep.ConfigsPlaned,
			}
		}
	}
	p.mu.Unlock()
	for _, r := range admitted {
		// Tenants whose records never came back (e.g. a sunk cell) are
		// degraded too.
		if degraded[r] == nil && perRetailer[r].ConfigsPlaned > 0 && len(byRetailer[r]) == 0 {
			degraded[r] = &degradation{phase: PhaseTrain, err: errors.New("pipeline: training produced no records")}
		}
	}
	selectSpan.End()
	report.SelectWall = time.Since(selectStart)

	// Tenant spans under the train phase close with the tenant's summed
	// training compute — its configs train interleaved across a shared
	// MapReduce, so the duration is accumulated externally (EndWith) rather
	// than bracketed.
	for _, r := range admitted {
		rep := perRetailer[r]
		if rep.ConfigsPlaned == 0 {
			continue
		}
		rep.TrainWall = trainWall[r]
		tspan := trainSpan.Child("tenant:" + string(r))
		tspan.SetAttr("configs_ok", strconv.Itoa(rep.ConfigsOK))
		if d := degraded[r]; d != nil && d.phase == PhaseTrain {
			endTenantSpan(tspan, d)
			continue
		}
		tspan.SetAttr("outcome", "ok")
		tspan.EndWith(rep.TrainWall)
	}
	trainSpan.EndWith(report.TrainWall)

	// --- Inference (per-tenant fault domain) ---
	inferStart := time.Now()
	inferSpan := dspan.Child("infer")
	var snap *serving.Snapshot
	if p.server != nil {
		var inferErr error
		snap, report.InferCounters, inferErr = p.runInference(ctx, day, ids, tenants, byRetailer, perRetailer, degraded, inferSpan, dj)
		if inferErr != nil {
			return report, inferErr
		}
		if err := ctx.Err(); err != nil {
			return report, err
		}
	}
	inferSpan.End()
	report.InferWall = time.Since(inferStart)

	// --- Quality firewall: veto/canary gate on candidate generations ---
	// Runs before health bookkeeping so a veto counts as a failed day:
	// repeated garbage models quarantine a tenant like repeated crashes.
	if p.opts.Guard.Enabled && p.server != nil && snap != nil {
		if err := p.runGuard(ctx, day, admitted, tenants, perRetailer, degraded, snap, &report, dspan, dj); err != nil {
			return report, err
		}
	}

	// --- Health bookkeeping: quarantine entries, exits, and counters ---
	p.mu.Lock()
	for _, id := range ids {
		h := p.health[id]
		rep := perRetailer[id]
		if d := degraded[id]; d != nil {
			rep.Degraded = true
			rep.DegradedPhase = d.phase
			if d.err != nil {
				rep.Err = d.err.Error()
			}
			rep.Attempts = d.attempts
			if d.phase != PhaseQuarantine {
				// A real failed attempt (including a failed probe).
				h.consecFailures++
				if !h.quarantined && h.consecFailures >= p.opts.QuarantineAfter {
					h.quarantined = true
					h.quarantinedDay = day
				}
			}
		} else {
			// Healthy day (or successful probe): full re-admission.
			h.consecFailures = 0
			h.quarantined = false
		}
		rep.Quarantined = h.quarantined
		rep.ConsecutiveFailures = h.consecFailures
		if rep.Degraded {
			report.Degraded = append(report.Degraded, id)
		}
		if h.quarantined {
			report.Quarantined = append(report.Quarantined, id)
		}
	}
	p.mu.Unlock()

	// --- Publish: one batch snapshot, with stale carry-forward ---
	// Degraded tenants are marked in the snapshot so the serving layer
	// carries their previous recommendations forward (stale-but-serving)
	// rather than dropping them.
	publishStart := time.Now()
	publishSpan := dspan.Child("publish")
	if p.server != nil && snap != nil {
		for _, id := range ids {
			if degraded[id] != nil {
				snap.MarkDegraded(id, perRetailer[id].DegradedPhase, perRetailer[id].Quarantined)
			}
		}
		// Publishing is idempotent (the single-node server swaps a pointer;
		// the sharded store's two-phase generation swap tolerates a
		// republish of the same generation), so a resumed day publishes
		// unconditionally even when the crashed run already did.
		fresh := len(snap.Retailers) // before Publish adds carried-forward tenants
		p.server.Publish(snap)
		report.SnapshotPushed = true
		publishSpan.SetAttr("version", strconv.FormatInt(snap.Version, 10))
		p.emitFreshness(time.Since(dayStart), len(ids), fresh)
		if dj != nil && !dj.published {
			if err := dj.append(ctx, journalRecord{Type: recPublished, Version: snap.Version}); err != nil {
				return report, err
			}
		}
	}
	if p.server != nil {
		// Roll the day's job counters into the serving layer's running
		// totals so /statz exposes fleet-wide MapReduce health.
		p.server.AddJobCounters(report.TrainCounters)
		p.server.AddJobCounters(report.InferCounters)
	}
	publishSpan.End()
	report.PublishWall = time.Since(publishStart)

	for _, id := range ids {
		report.Retailers = append(report.Retailers, *perRetailer[id])
	}
	report.DiscardedCheckpoints = p.discardedCkpts.Load() - ckptsBefore

	if p.opts.Guard.Enabled && p.server != nil {
		if gr, ok := p.server.(interface{ SetGuardInfo(serving.GuardInfo) }); ok {
			gr.SetGuardInfo(guardInfo(report))
		}
		p.emitGuardMetrics(report)
	}

	if len(report.Degraded) > 0 {
		dspan.SetAttr("outcome", "degraded")
	} else {
		dspan.SetAttr("outcome", "ok")
	}
	dspan.SetAttr("degraded", strconv.Itoa(len(report.Degraded)))
	dspan.SetAttr("quarantined", strconv.Itoa(len(report.Quarantined)))

	if dj != nil {
		// The done record is the last crashpoint: a crash here re-runs the
		// day as a pure replay (everything skips, the publish repeats).
		if !dj.done {
			if err := dj.append(ctx, journalRecord{Type: recDone}); err != nil {
				return report, err
			}
		}
		report.CellsSkipped, report.TenantsReplayed = dj.counts()
		info := dj.resumeInfo()
		if rr, ok := p.server.(interface{ SetResumeInfo(serving.ResumeInfo) }); ok {
			rr.SetResumeInfo(info)
		}
		p.emitResumeMetrics(report)
	}
	p.emitDayMetrics(report)

	// Storage GC: drop whole expired days (data, checkpoints, models,
	// records live under one prefix per day, so this is a single sweep).
	if p.opts.KeepDays > 0 && day-p.opts.KeepDays >= 0 {
		p.fs.DeletePrefix(fmt.Sprintf("days/%d/", day-p.opts.KeepDays))
	}

	p.mu.Lock()
	p.day++
	p.mu.Unlock()
	return report, nil
}

// emitResumeMetrics rolls one journaled day's crash-recovery counters into
// the registry.
func (p *Pipeline) emitResumeMetrics(report DayReport) {
	reg := p.opts.Obs.Reg()
	if reg == nil {
		return
	}
	if report.Resumed {
		reg.Counter("sigmund_pipeline_resumes_total",
			"Daily cycles resumed from a durable day journal after a coordinator crash.").Inc()
	}
	reg.Counter("sigmund_pipeline_journal_replayed_records_total",
		"Day-journal records replayed by resumed daily cycles.").Add(int64(report.RecordsReplayed))
	reg.Counter("sigmund_pipeline_journal_skipped_cells_total",
		"Training cells skipped on resume because their outputs were already committed.").Add(int64(report.CellsSkipped))
	reg.Counter("sigmund_pipeline_journal_replayed_tenants_total",
		"Tenants whose staged plan was replayed from the day journal.").Add(int64(report.TenantsReplayed))
}

// endTenantSpan closes a tenant span for a degraded cycle, tagging it with
// the failing phase, the first error, and the attempts consumed — the
// attribution /tracez shows for a tenant serving stale.
func endTenantSpan(s *obs.Span, d *degradation) {
	s.SetAttr("outcome", "degraded")
	s.SetAttr("phase", d.phase)
	if d.err != nil {
		s.SetAttr("error", d.err.Error())
	}
	if d.attempts > 0 {
		s.SetAttr("attempts", strconv.Itoa(d.attempts))
	}
	s.End()
}

// emitDayMetrics rolls one finished day into the registry. Phase wall
// times observe into one histogram labeled by phase; tenant outcomes
// count by result. Tenant identity deliberately never becomes a metric
// label (unbounded cardinality) — per-tenant attribution lives in the
// day's span tree and the DayReport.
// emitFreshness reports the daily path's publish staleness: every fresh
// tenant's data became servable `stale` after the day started (the whole
// fleet publishes in one batch, so all tenants share one staleness). The
// same histogram and /statz block carry the continuous scheduler's
// per-tier staleness, so the two paths compare directly.
func (p *Pipeline) emitFreshness(stale time.Duration, tenants, fresh int) {
	if reg := p.opts.Obs.Reg(); reg != nil {
		h := reg.Histogram("sigmund_pipeline_staleness_seconds",
			"How far past its due time a tenant's fresh data became servable.",
			obs.StalenessBuckets(), obs.L("path", "daily"), obs.L("tier", "daily"))
		for i := 0; i < fresh; i++ {
			h.Observe(stale.Seconds())
		}
	}
	if sink, ok := p.server.(interface{ SetFreshnessInfo(serving.FreshnessInfo) }); ok {
		sink.SetFreshnessInfo(serving.FreshnessInfo{
			Path: "daily",
			Tiers: map[string]serving.TierFreshness{
				"daily": {
					Tenants:              tenants,
					Publishes:            fresh,
					MeanStalenessSeconds: stale.Seconds(),
					P99StalenessSeconds:  stale.Seconds(),
					MaxStalenessSeconds:  stale.Seconds(),
				},
			},
		})
	}
}

func (p *Pipeline) emitDayMetrics(report DayReport) {
	reg := p.opts.Obs.Reg()
	if reg == nil {
		return
	}
	phaseHelp := "Wall time of one pipeline phase for one day."
	for _, ph := range []struct {
		name string
		wall time.Duration
	}{
		{PhaseStaging, report.StagingWall},
		{PhaseTrain, report.TrainWall},
		{"select", report.SelectWall},
		{PhaseInfer, report.InferWall},
		{"publish", report.PublishWall},
	} {
		reg.Histogram("sigmund_pipeline_phase_seconds", phaseHelp,
			obs.DurationBuckets(), obs.L("phase", ph.name)).Observe(ph.wall.Seconds())
	}
	reg.Counter("sigmund_pipeline_days_total", "Daily cycles completed.").Inc()
	degradedSet := make(map[catalog.RetailerID]bool, len(report.Degraded))
	for _, id := range report.Degraded {
		degradedSet[id] = true
	}
	healthy := 0
	for _, rep := range report.Retailers {
		if degradedSet[rep.Retailer] {
			reg.Counter("sigmund_pipeline_tenant_days_total", "Tenant daily cycles, by outcome.",
				obs.L("outcome", "degraded")).Inc()
			reg.Counter("sigmund_pipeline_degraded_total", "Degraded tenant cycles, by failing phase.",
				obs.L("phase", rep.DegradedPhase)).Inc()
		} else {
			healthy++
		}
	}
	reg.Counter("sigmund_pipeline_tenant_days_total", "Tenant daily cycles, by outcome.",
		obs.L("outcome", "healthy")).Add(int64(healthy))
	reg.Gauge("sigmund_pipeline_tenants_quarantined", "Tenants currently quarantined.").
		Set(float64(len(report.Quarantined)))
	reg.Counter("sigmund_pipeline_discarded_checkpoints_total",
		"Garbled or unreadable checkpoints discarded for a warm or fresh start.").
		Add(report.DiscardedCheckpoints)
}

// writeWithRetry writes a file with exponential backoff — the shared
// filesystem is replicated and an individual write can fail transiently;
// staging the day's inputs must ride through that. Jitter derives from the
// pipeline seed and the path, so retries are decorrelated across paths yet
// deterministic across runs.
func (p *Pipeline) writeWithRetry(ctx context.Context, path string, data []byte) error {
	rng := linalg.NewRNG(p.opts.Seed ^ pathHash(path))
	return retry.Do(ctx, p.opts.Retry, rng, func(int) error {
		return p.fs.Write(path, data)
	})
}

// renameWithRetry commits a temp file to its final name with the same
// backoff schedule as writeWithRetry.
func (p *Pipeline) renameWithRetry(ctx context.Context, from, to string) error {
	rng := linalg.NewRNG(p.opts.Seed ^ pathHash(to))
	return retry.Do(ctx, p.opts.Retry, rng, func(int) error {
		return p.fs.Rename(from, to)
	})
}

// retryAttempts extracts the attempt count from an exhausted retry budget.
func retryAttempts(err error) int {
	var ex *retry.ExhaustedError
	if errors.As(err, &ex) {
		return ex.Attempts
	}
	return 1
}

func pathHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// substrateFor returns the worker substrate for one job, with the
// preemption seed decorrelated by a per-job label ("train/cell-<n>",
// "infer/<retailer>") and the day: without this every cell's workers
// would draw identical preemption arrival times. Exactly-once output is
// independent of the seed; the mixing only keeps chaos runs from being
// synchronized across jobs.
func (p *Pipeline) substrateFor(day int, label string) mapreduce.Substrate {
	sub := p.opts.Substrate
	if sub.Preemption.Enabled() {
		sub.Preemption.Seed ^= pathHash(fmt.Sprintf("day-%d/%s", day, label))
	}
	return sub
}

// faultPath is the label per-tenant pipeline stages present to the fault
// injector: "days/<day>/<retailer>".
func faultPath(day int, r catalog.RetailerID) string {
	return fmt.Sprintf("days/%d/%s", day, r)
}

// evalOptionsFor applies the paper's CPU-saving rule: approximate MAP on a
// 10% item sample for very large retailers, exact for everyone else.
func (p *Pipeline) evalOptionsFor(numItems int) eval.Options {
	opts := eval.DefaultOptions()
	if numItems > p.opts.SampleMAPOverItems {
		opts.SampleFraction = 0.10
	}
	return opts
}
