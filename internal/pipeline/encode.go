// Package pipeline orchestrates Sigmund's daily production cycle (Section
// IV, Figures 4 and 5): sweep planning emits config records; the training
// MapReduce trains and evaluates one model per config record on
// pre-emptible workers with wall-clock checkpointing; model selection picks
// each retailer's best model; the inference MapReduce materializes top-K
// recommendations with retailers bin-packed across cells; and the serving
// snapshot is swapped in one batch update.
package pipeline

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"sigmund/internal/catalog"
	"sigmund/internal/core/modelselect"
	"sigmund/internal/interactions"
)

// Training data and holdout sets are materialized into the shared
// filesystem — the paper migrates training data to whichever data center
// runs the job — using a compact binary encoding.

const logMagic = "SLOG"

// EncodeLog serializes a log's events.
func EncodeLog(l *interactions.Log) []byte {
	events := l.Events()
	var buf bytes.Buffer
	buf.Grow(8 + 17*len(events))
	buf.WriteString(logMagic)
	var b8 [8]byte
	binary.LittleEndian.PutUint32(b8[:4], uint32(len(events)))
	buf.Write(b8[:4])
	for _, e := range events {
		binary.LittleEndian.PutUint32(b8[:4], uint32(e.User))
		buf.Write(b8[:4])
		binary.LittleEndian.PutUint32(b8[:4], uint32(e.Item))
		buf.Write(b8[:4])
		buf.WriteByte(byte(e.Type))
		binary.LittleEndian.PutUint64(b8[:], uint64(e.Time))
		buf.Write(b8[:])
	}
	return buf.Bytes()
}

// DecodeLog reverses EncodeLog.
func DecodeLog(data []byte) (*interactions.Log, error) {
	r := bytes.NewReader(data)
	magic := make([]byte, len(logMagic))
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != logMagic {
		return nil, fmt.Errorf("pipeline: bad log encoding (magic %q, err %v)", magic, err)
	}
	var b8 [8]byte
	if _, err := io.ReadFull(r, b8[:4]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(b8[:4]))
	l := interactions.NewLog()
	for i := 0; i < n; i++ {
		var e interactions.Event
		if _, err := io.ReadFull(r, b8[:4]); err != nil {
			return nil, fmt.Errorf("pipeline: truncated log at event %d: %w", i, err)
		}
		e.User = interactions.UserID(binary.LittleEndian.Uint32(b8[:4]))
		if _, err := io.ReadFull(r, b8[:4]); err != nil {
			return nil, err
		}
		e.Item = catalog.ItemID(binary.LittleEndian.Uint32(b8[:4]))
		t, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		e.Type = interactions.EventType(t)
		if _, err := io.ReadFull(r, b8[:]); err != nil {
			return nil, err
		}
		e.Time = int64(binary.LittleEndian.Uint64(b8[:]))
		l.Append(e)
	}
	return l, nil
}

// EncodeHoldout serializes holdout examples as JSON lines (they are small
// and diagnosable; the hot path is training data, not holdout).
func EncodeHoldout(h []interactions.HoldoutExample) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, ex := range h {
		enc.Encode(ex)
	}
	return buf.Bytes()
}

// DecodeHoldout reverses EncodeHoldout.
func DecodeHoldout(data []byte) ([]interactions.HoldoutExample, error) {
	var out []interactions.HoldoutExample
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var ex interactions.HoldoutExample
		if err := json.Unmarshal(sc.Bytes(), &ex); err != nil {
			return nil, fmt.Errorf("pipeline: decoding holdout: %w", err)
		}
		out = append(out, ex)
	}
	return out, sc.Err()
}

// EncodeConfigRecord / DecodeConfigRecord move config records through
// MapReduce values and filesystem files as JSON.
func EncodeConfigRecord(c modelselect.ConfigRecord) []byte {
	data, err := json.Marshal(c)
	if err != nil {
		// ConfigRecord contains only marshalable fields; this is a bug.
		panic(fmt.Sprintf("pipeline: encoding config record: %v", err))
	}
	return data
}

// DecodeConfigRecord reverses EncodeConfigRecord.
func DecodeConfigRecord(data []byte) (modelselect.ConfigRecord, error) {
	var c modelselect.ConfigRecord
	if err := json.Unmarshal(data, &c); err != nil {
		return c, fmt.Errorf("pipeline: decoding config record: %w", err)
	}
	return c, nil
}

// Shared-filesystem layout helpers. All paths are rooted per day so a
// failed day can be debugged and GCed wholesale.

func trainDataPath(day int, r catalog.RetailerID) string {
	return fmt.Sprintf("days/%d/data/%s/train", day, r)
}

func holdoutPath(day int, r catalog.RetailerID) string {
	return fmt.Sprintf("days/%d/data/%s/holdout", day, r)
}

func modelPath(day int, modelID string) string {
	return fmt.Sprintf("days/%d/models/%s", day, modelID)
}

func checkpointBase(day int, modelID string) string {
	return fmt.Sprintf("days/%d/ckpt/%s", day, modelID)
}

func recordsPath(day int, cell int) string {
	return fmt.Sprintf("days/%d/records/cell-%d", day, cell)
}

// tenantRecordsPath holds one tenant's trained config records when the
// continuous scheduler runs its training as a private per-tenant job
// (the daily path shards records per cell instead).
func tenantRecordsPath(cycle int, r catalog.RetailerID) string {
	return fmt.Sprintf("days/%d/records/tenant-%s", cycle, r)
}

// journalPath is the day's durable journal (Options.Journal); it lives
// under the day prefix so a GCed day takes its journal with it.
func journalPath(day int) string {
	return fmt.Sprintf("days/%d/journal", day)
}

// recsPath holds one tenant's materialized recommendations (written only
// with Options.Journal, so a resumed day can skip re-materialization).
func recsPath(day int, r catalog.RetailerID) string {
	return fmt.Sprintf("days/%d/recs/%s", day, r)
}
