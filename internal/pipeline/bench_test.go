package pipeline

import (
	"context"
	"testing"

	"sigmund/internal/dfs"
	"sigmund/internal/serving"
)

// BenchmarkRunDay measures one full daily cycle — staging, a full-sweep
// training MapReduce, model selection, inference, publish — over a small
// synthetic fleet. scripts/benchcheck compares its ns/op against the
// committed baseline in BENCH_runday.json to catch pipeline-wide
// regressions in CI.
func BenchmarkRunDay(b *testing.B) {
	run := func(b *testing.B, opts Options) {
		fleet := smallFleet(b, 3, 21)
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			fs := dfs.New()
			server := serving.NewServer()
			p := New(fs, server, opts)
			for _, r := range fleet {
				if err := p.AddRetailer(r.Catalog, r.Log); err != nil {
					b.Fatal(err)
				}
			}
			b.StartTimer()
			report, err := p.RunDay(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			if len(report.Degraded) != 0 {
				b.Fatalf("degraded tenants in benchmark day: %v", report.Degraded)
			}
		}
	}
	b.Run("small-fleet", func(b *testing.B) {
		run(b, testOptions())
	})
	// The journaled variant prices crash resumability: every completion
	// record is a durable journal append and every tenant's materialized
	// recommendations are persisted for replay.
	b.Run("small-fleet-journal", func(b *testing.B) {
		opts := testOptions()
		opts.Journal = true
		run(b, opts)
	})
}
