package pipeline

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"sigmund/internal/catalog"
	"sigmund/internal/cooccur"
	"sigmund/internal/core/inference"
	"sigmund/internal/core/modelselect"
	"sigmund/internal/dfs"
	"sigmund/internal/guard"
	"sigmund/internal/interactions"
	"sigmund/internal/mapreduce"
	"sigmund/internal/obs"
	"sigmund/internal/serving"
)

// The per-tenant stage API: each phase of one tenant's cycle — stage,
// train (with selection), infer, guard — callable on its own, with durable
// artifacts under the cycle's day prefix. RunDay drives the whole fleet
// through these cores in lockstep; the continuous scheduler
// (internal/sched) drives one tenant at a time through them as typed jobs
// on its durable queue. "cycle" takes the role of "day" in every
// shared-filesystem path, so a staggered fleet lays its artifacts out
// exactly like a synchronized one.

// StageResult is one tenant's staged cycle: its training data and holdout
// are durable in the shared filesystem and its sweep is planned.
type StageResult struct {
	// FullSweep reports whether the plan is a full grid sweep (new tenant,
	// periodic restart, or no usable history) rather than an incremental
	// re-train of the previous best configs.
	FullSweep bool
	// Configs are the planned config records, ready for TrainTenant.
	Configs []modelselect.ConfigRecord
}

// StageTenant stages one tenant's cycle: holdout split, durable staging
// writes, sweep plan. The plan is deterministic given the tenant's log and
// its sweep state (isNew / previous records).
func (p *Pipeline) StageTenant(ctx context.Context, cycle int, r catalog.RetailerID) (StageResult, error) {
	t := p.Tenant(r)
	if t == nil {
		return StageResult{}, fmt.Errorf("pipeline: unknown retailer %s", r)
	}
	full, recs, err := p.stageTenantCore(ctx, cycle, r, t)
	if err != nil {
		return StageResult{}, err
	}
	return StageResult{FullSweep: full, Configs: recs}, nil
}

// stageTenantCore is the staging body shared by RunDay's staging loop and
// StageTenant: write the split training data and holdout durably, then
// plan the sweep (full for new tenants, periodic restarts, and tenants
// with no usable history; incremental otherwise).
func (p *Pipeline) stageTenantCore(ctx context.Context, day int, r catalog.RetailerID, t *Tenant) (bool, []modelselect.ConfigRecord, error) {
	split := interactions.HoldoutSplit(t.Log, p.opts.BaseHyper.ContextLen)
	if err := p.writeWithRetry(ctx, trainDataPath(day, r), EncodeLog(split.Train)); err != nil {
		return false, nil, fmt.Errorf("staging training data for %s: %w", r, err)
	}
	if err := p.writeWithRetry(ctx, holdoutPath(day, r), EncodeHoldout(split.Holdout)); err != nil {
		return false, nil, fmt.Errorf("staging holdout for %s: %w", r, err)
	}

	p.mu.Lock()
	last := p.lastRecords[r]
	p.mu.Unlock()
	if len(last) == 0 && day > 0 {
		// A restarted process holds no in-memory sweep state. Recover the
		// most recent cycle's persisted tenant records so a tenant that
		// already swept keeps warm-starting incrementally — exactly the
		// state the dead process carried. (The daily path shards records
		// per cell, so this finds nothing there and behavior is unchanged.)
		if recs := p.loadLastTenantRecords(day, r); len(recs) > 0 {
			last = recs
			p.mu.Lock()
			p.lastRecords[r] = recs
			p.mu.Unlock()
		}
	}
	full := (p.opts.FullRestartEvery > 0 && day%p.opts.FullRestartEvery == 0) || len(last) == 0

	var recs []modelselect.ConfigRecord
	if full {
		grid := p.opts.Grid.PruneForRetailer(t.Catalog, p.opts.MinFeatureCoverage)
		recs = modelselect.PlanFull(r, grid, p.opts.BaseHyper, trainDataPath(day, r), p.opts.FullEpochs)
		for j := range recs {
			recs[j].ModelPath = modelPath(day, recs[j].ModelID)
		}
	} else {
		recs = modelselect.PlanIncremental(last, p.opts.TopKIncremental, p.opts.IncrementalEpochs)
		for j := range recs {
			recs[j].TrainDataPath = trainDataPath(day, r)
			recs[j].WarmStartPath = recs[j].ModelPath // previous cycle's model
			recs[j].ModelPath = modelPath(day, recs[j].ModelID)
		}
	}
	p.mu.Lock()
	t.isNew = false
	p.mu.Unlock()
	return full, recs, nil
}

// loadLastTenantRecords scans back from the cycle before `cycle` for the
// most recent persisted tenant record set with a selectable best — the
// durable equivalent of the in-memory sweep state (p.lastRecords) an
// uninterrupted process advances after each successful selection. Record
// sets whose sweep produced nothing selectable are skipped, matching the
// in-memory rule that a failed sweep leaves the state untouched.
func (p *Pipeline) loadLastTenantRecords(cycle int, r catalog.RetailerID) []modelselect.ConfigRecord {
	for day := cycle - 1; day >= 0; day-- {
		data, err := p.fs.Read(tenantRecordsPath(day, r))
		if err != nil {
			continue
		}
		recs, err := decodeRecordLines(data)
		if err != nil {
			continue
		}
		if _, ok := modelselect.Best(recs); ok {
			return recs
		}
	}
	return nil
}

// decodeRecordLines parses the newline-delimited config records
// trainRecordSet persists.
func decodeRecordLines(data []byte) ([]modelselect.ConfigRecord, error) {
	var recs []modelselect.ConfigRecord
	for _, line := range bytes.Split(data, []byte{'\n'}) {
		if len(line) == 0 {
			continue
		}
		rec, err := DecodeConfigRecord(line)
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// TrainResult is one tenant's trained sweep plus its selection outcome.
type TrainResult struct {
	// Records are the output config records (trained and failed alike),
	// persisted durably at the tenant's records path.
	Records []modelselect.ConfigRecord
	// Best is the selected config (BestOK false when nothing trained —
	// the tenant's sweep state is then left untouched so the next cycle
	// can still warm-start from the previous one).
	Best   modelselect.ConfigRecord
	BestOK bool
	// ConfigsOK counts configs that trained cleanly; FirstErr is the
	// first training error observed (for degradation attribution).
	ConfigsOK int
	FirstErr  string
	Counters  mapreduce.Counters
	// Wall is the tenant's summed training compute across its configs.
	Wall time.Duration
}

// TrainTenant trains one tenant's planned configs on a private MapReduce
// (one map task per config, same substrate and checkpointing as the daily
// cell jobs), persists the output records durably, and runs model
// selection: the tenant's sweep state advances only when at least one
// config trained.
func (p *Pipeline) TrainTenant(ctx context.Context, cycle int, r catalog.RetailerID, configs []modelselect.ConfigRecord) (TrainResult, error) {
	if len(configs) == 0 {
		return TrainResult{}, fmt.Errorf("pipeline: no configs planned for %s", r)
	}
	cache := &coocCache{fs: p.fs, day: cycle, models: map[catalog.RetailerID]*cooccur.Model{}}
	wall := &tenantWall{d: map[catalog.RetailerID]time.Duration{}}
	out, counters, err := p.trainRecordSet(ctx, cycle, "tenant-"+string(r), tenantRecordsPath(cycle, r), configs, cache, wall)
	res := TrainResult{Counters: counters, Wall: wall.snapshot()[r]}
	if err != nil {
		return res, fmt.Errorf("training %s: %w", r, err)
	}
	res.Records = out
	for _, rec := range out {
		if rec.Trained && rec.Err == "" {
			res.ConfigsOK++
		} else if res.FirstErr == "" && rec.Err != "" {
			res.FirstErr = rec.Err
		}
	}
	if best, ok := modelselect.Best(out); ok {
		res.Best, res.BestOK = best, true
		p.mu.Lock()
		p.lastRecords[r] = out
		p.mu.Unlock()
	}
	return res, nil
}

// InferResult is one tenant's materialized recommendations, durable at the
// cycle's recs path before InferTenant returns.
type InferResult struct {
	Items    []inference.ItemRecs
	Sellers  []catalog.ItemID
	Counters mapreduce.Counters
}

// InferTenant materializes one tenant's recommendations from its selected
// model and persists the blob durably (write-then-commit: the scheduler
// journals the job's completion only after this returns, so a crashed
// scheduler either re-materializes or reloads the identical bytes).
func (p *Pipeline) InferTenant(ctx context.Context, cycle int, r catalog.RetailerID, best modelselect.ConfigRecord) (InferResult, error) {
	t := p.Tenant(r)
	if t == nil {
		return InferResult{}, fmt.Errorf("pipeline: unknown retailer %s", r)
	}
	items, sellers, counters, err := p.inferRetailerSafe(ctx, cycle, t, best)
	res := InferResult{Counters: counters}
	if err != nil {
		return res, fmt.Errorf("inference for %s: %w", r, err)
	}
	if err := p.writeWithRetry(ctx, recsPath(cycle, r), encodeRecsBlob(items, sellers)); err != nil {
		return res, fmt.Errorf("persisting recs for %s: %w", r, err)
	}
	res.Items, res.Sellers = items, sellers
	return res, nil
}

// LoadTenantRecs reloads a tenant's committed materialization from the
// cycle's recs path — the scheduler's resume path for publish jobs whose
// infer stage committed before a crash.
func (p *Pipeline) LoadTenantRecs(cycle int, r catalog.RetailerID) (InferResult, error) {
	items, sellers, err := p.loadRecsBlob(cycle, r)
	if err != nil {
		return InferResult{}, err
	}
	return InferResult{Items: items, Sellers: sellers}, nil
}

// GuardResult is the quality firewall's evaluation of one tenant's
// candidate cycle.
type GuardResult struct {
	// Report is the full gate evaluation (verdict, tripped gate, measured
	// statistics) — FoldGuardBaseline consumes it on pass.
	Report guard.Report
	// MAP is the selection metric the guard actually judged, after any
	// injected metric-cliff degradation.
	MAP float64
	// CanaryFraction is the traffic slice a canary verdict routes to the
	// candidate (from guard options; meaningful only on canary).
	CanaryFraction float64
}

// GuardEnabled reports whether the publish-time quality firewall is on.
func (p *Pipeline) GuardEnabled() bool { return p.opts.Guard.Enabled }

// EvaluateGuardTenant runs the quality firewall's gates against one
// tenant's materialized candidate without folding the baseline — the
// caller journals the verdict first, then calls FoldGuardBaseline, so a
// crash between the two replays the identical decision.
func (p *Pipeline) EvaluateGuardTenant(cycle int, r catalog.RetailerID, bestMAP float64, rr *serving.RetailerRecs) (GuardResult, error) {
	t := p.Tenant(r)
	if t == nil {
		return GuardResult{}, fmt.Errorf("pipeline: unknown retailer %s", r)
	}
	grep, adjMAP := p.evaluateGuard(cycle, r, bestMAP, rr, t.Catalog.NumItems())
	return GuardResult{Report: grep, MAP: adjMAP, CanaryFraction: p.opts.Guard.Defaulted().CanaryFraction}, nil
}

// FoldGuardBaseline folds a passing cycle's measurements into the
// tenant's trailing baseline, at most once per cycle (idempotent across
// crash-resume re-executions). Non-pass verdicts are ignored. The verdict
// parameter is the final (possibly journal-replayed) decision, which may
// differ from the freshly evaluated report's own verdict.
func (p *Pipeline) FoldGuardBaseline(cycle int, r catalog.RetailerID, verdict string, res GuardResult) {
	if guard.Verdict(verdict) != guard.VerdictPass {
		return
	}
	p.foldGuardBaseline(cycle, r, res.Report)
}

// Retailers returns the registered retailer IDs in deterministic order.
func (p *Pipeline) Retailers() []catalog.RetailerID {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]catalog.RetailerID(nil), p.order...)
}

// PublisherHandle returns the publisher the pipeline was built with (nil
// when only training is wanted).
func (p *Pipeline) PublisherHandle() Publisher { return p.server }

// Observer returns the pipeline's observability surface.
func (p *Pipeline) Observer() *obs.Observer { return p.opts.Obs }

// FS returns the shared filesystem the pipeline stages artifacts on; the
// scheduler keeps its queue journal there so a supervisor restart finds
// it.
func (p *Pipeline) FS() *dfs.FS { return p.fs }
