package pipeline

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"reflect"
	"runtime"
	"testing"
	"time"

	"sigmund/internal/dfs"
	"sigmund/internal/faults"
	"sigmund/internal/serving"
)

// readJournalRecords decodes the day's journal straight from the shared
// filesystem, bypassing the pipeline's replay machinery.
func readJournalRecords(t *testing.T, fs *dfs.FS, day int) []journalRecord {
	t.Helper()
	_, raw, err := dfs.OpenJournal(fs, journalPath(day))
	if err != nil {
		t.Fatalf("opening day %d journal: %v", day, err)
	}
	out := make([]journalRecord, 0, len(raw))
	for _, payload := range raw {
		var rec journalRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			t.Fatalf("decoding journal record: %v", err)
		}
		out = append(out, rec)
	}
	return out
}

// normalizeReport zeroes the fields a resumed day legitimately differs in
// from an uninterrupted control day: wall-clock timings and the
// crash-recovery bookkeeping. Everything else — sweep decisions, configs
// trained, best models, MAP, items served, MapReduce counters — must be
// byte-identical.
func normalizeReport(rep DayReport) DayReport {
	rep.StagingWall, rep.TrainWall, rep.SelectWall = 0, 0, 0
	rep.InferWall, rep.PublishWall = 0, 0
	// WorkersObserved is a max-concurrency observation, not a work count;
	// it depends on goroutine scheduling, not on what the day computed.
	rep.TrainCounters.WorkersObserved = 0
	rep.InferCounters.WorkersObserved = 0
	rep.Resumed = false
	rep.RecordsReplayed, rep.CellsSkipped, rep.TenantsReplayed = 0, 0, 0
	retailers := make([]RetailerReport, len(rep.Retailers))
	copy(retailers, rep.Retailers)
	for i := range retailers {
		retailers[i].StagingWall, retailers[i].TrainWall, retailers[i].InferWall = 0, 0, 0
	}
	rep.Retailers = retailers
	return rep
}

// TestCrashResumeSweep is the crash-recovery proof: for EVERY journal
// record index k of an uninterrupted control day, run a fresh day that
// crashes right after committing record k, resume it, and assert the
// resumed day's report and published recommendations are byte-identical
// to the control's. Along the way, any crash that happened after a
// training cell committed must skip (not re-execute) exactly those cells
// on resume.
func TestCrashResumeSweep(t *testing.T) {
	newRun := func(inj *faults.Injector) (*Pipeline, *dfs.FS, *serving.Server) {
		opts := testOptions()
		opts.Journal = true
		opts.Injector = inj
		fs := dfs.New()
		server := serving.NewServer()
		p := New(fs, server, opts)
		for _, r := range chaosFleet(t, 2) {
			mustAdd(t, p, r)
		}
		return p, fs, server
	}

	// Control: one uninterrupted journaled day.
	control, controlFS, controlServer := newRun(nil)
	controlRep, err := control.RunDay(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	controlRecords := readJournalRecords(t, controlFS, 0)
	n := len(controlRecords)
	// 2 tenants, 2 cells: intent + 2 staged + 2 cells + 2 inferred +
	// published + done.
	if n < 5 {
		t.Fatalf("control journal has %d records, want a full day's worth", n)
	}
	if controlRecords[n-1].Type != recDone {
		t.Fatalf("control journal ends with %q, want %q", controlRecords[n-1].Type, recDone)
	}
	wantReport := normalizeReport(controlRep)
	wantRecs := controlServer.Snapshot().Retailers

	cellSkips := 0
	for k := 0; k < n; k++ {
		// The injector fires exactly once, after the (k+1)th journal
		// record of day 0 commits.
		inj := faults.NewInjector(1, faults.Rule{
			Ops:      []faults.Op{faults.OpCoordinator},
			Kind:     faults.Error,
			After:    k,
			EveryNth: 1,
			Times:    1,
		})
		crashed, fs, server := newRun(inj)
		_, err := crashed.RunDay(context.Background())
		if err == nil {
			t.Fatalf("k=%d: RunDay survived its crashpoint", k)
		}
		if !IsCoordinatorCrash(err) {
			t.Fatalf("k=%d: err = %v, want a coordinator crash", k, err)
		}
		if crashed.Day() != 0 {
			t.Fatalf("k=%d: crashed day still advanced", k)
		}

		// What did the dead coordinator leave behind? Cells and tenants
		// with committed records must be skipped by the resume, not redone.
		left := readJournalRecords(t, fs, 0)
		committedCells := 0
		for _, rec := range left {
			if rec.Type == recCell {
				committedCells++
			}
		}

		// Resume: a fresh coordinator process over the same filesystem and
		// serving state. The fleet re-registers (a restarted process would
		// reload its tenant set the same way).
		opts := testOptions()
		opts.Journal = true
		resumed := New(fs, server, opts)
		for _, r := range chaosFleet(t, 2) {
			mustAdd(t, resumed, r)
		}
		rep, err := resumed.RunDay(context.Background())
		if err != nil {
			t.Fatalf("k=%d: resume failed: %v", k, err)
		}
		if !rep.Resumed {
			t.Fatalf("k=%d: resumed day not marked Resumed", k)
		}
		if rep.RecordsReplayed != len(left) {
			t.Fatalf("k=%d: RecordsReplayed = %d, want %d", k, rep.RecordsReplayed, len(left))
		}
		if rep.CellsSkipped != committedCells {
			t.Fatalf("k=%d: CellsSkipped = %d, want %d (journal had %d cell records)",
				k, rep.CellsSkipped, committedCells, committedCells)
		}
		cellSkips += rep.CellsSkipped

		// The resumed day must be indistinguishable from the control day.
		if got := normalizeReport(rep); !reflect.DeepEqual(got, wantReport) {
			t.Fatalf("k=%d: resumed report diverged from control:\n got: %+v\nwant: %+v", k, got, wantReport)
		}
		if !reflect.DeepEqual(server.Snapshot().Retailers, wantRecs) {
			t.Fatalf("k=%d: resumed recommendations diverged from control", k)
		}
		if server.Snapshot().Version != controlServer.Snapshot().Version {
			t.Fatalf("k=%d: version = %d, want %d", k, server.Snapshot().Version, controlServer.Snapshot().Version)
		}
	}
	if cellSkips == 0 {
		t.Fatal("no resumed run skipped a committed training cell; the sweep never exercised cell replay")
	}
}

// TestCrashResumeIncrementalDay crashes an in-flight incremental day (day
// 1, warm starts) after both training cells and both inference jobs have
// committed, then resumes in-process and runs one more clean day. The
// /statz resume block must report the recovery.
func TestCrashResumeIncrementalDay(t *testing.T) {
	opts := testOptions()
	opts.Journal = true
	// Day-1 record layout is deterministic (phases are barriers): intent,
	// 2 staged, 2 cells, 2 inferred, published, done. After: 6 crashes
	// right after the second inferred record (index 6) commits — all
	// training and inference work is durable, publish is not.
	opts.Injector = faults.NewInjector(1, faults.Rule{
		Ops:          []faults.Op{faults.OpCoordinator},
		PathContains: "day-1/",
		Kind:         faults.Error,
		After:        6,
		EveryNth:     1,
		Times:        1,
	})
	fs := dfs.New()
	server := serving.NewServer()
	p := New(fs, server, opts)
	for _, r := range chaosFleet(t, 2) {
		mustAdd(t, p, r)
	}

	rep, err := p.RunDay(context.Background())
	if err != nil {
		t.Fatalf("day 0: %v", err)
	}
	if rep.Resumed {
		t.Fatal("day 0 marked Resumed")
	}

	// Day 1 crashes mid-publish.
	_, err = p.RunDay(context.Background())
	if !IsCoordinatorCrash(err) {
		t.Fatalf("day 1 err = %v, want coordinator crash", err)
	}
	left := readJournalRecords(t, fs, 1)
	if len(left) != 7 {
		t.Fatalf("crashed day-1 journal has %d records, want 7", len(left))
	}
	if server.Snapshot().Version != 1 {
		t.Fatalf("crashed day published v%d, want day-0 snapshot still serving", server.Snapshot().Version)
	}

	// Same process, same pipeline: the next RunDay resumes day 1. Every
	// cell and tenant replays; only publish and done run fresh.
	rep, err = p.RunDay(context.Background())
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !rep.Resumed || rep.Day != 1 {
		t.Fatalf("resumed report = %+v, want Resumed day 1", rep)
	}
	if rep.RecordsReplayed != 7 || rep.CellsSkipped != 2 || rep.TenantsReplayed != 2 {
		t.Fatalf("replayed=%d skipped=%d tenants=%d, want 7/2/2",
			rep.RecordsReplayed, rep.CellsSkipped, rep.TenantsReplayed)
	}
	if len(rep.Degraded) != 0 {
		t.Fatalf("resumed day degraded: %v", rep.Degraded)
	}
	for _, rr := range rep.Retailers {
		if rr.FullSweep {
			t.Fatalf("%s: resumed day 1 replayed a full sweep, want incremental", rr.Retailer)
		}
		if rr.ConfigsOK == 0 || rr.ItemsServed == 0 {
			t.Fatalf("%s: resumed day produced nothing: %+v", rr.Retailer, rr)
		}
	}
	if server.Snapshot().Version != 2 {
		t.Fatalf("resumed day published v%d, want 2", server.Snapshot().Version)
	}

	// The serving layer's /statz now carries the resume block.
	w := httptest.NewRecorder()
	serving.NewHandler(server).ServeHTTP(w, httptest.NewRequest("GET", "/statz", nil))
	var statz struct {
		Resume *struct {
			Day             int  `json:"day"`
			Resumed         bool `json:"resumed"`
			RecordsReplayed int  `json:"records_replayed"`
			CellsSkipped    int  `json:"cells_skipped"`
			TenantsReplayed int  `json:"tenants_replayed"`
		} `json:"resume"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &statz); err != nil {
		t.Fatalf("statz: %v (%s)", err, w.Body.String())
	}
	if statz.Resume == nil {
		t.Fatalf("statz has no resume block: %s", w.Body.String())
	}
	if !statz.Resume.Resumed || statz.Resume.Day != 1 ||
		statz.Resume.RecordsReplayed != 7 || statz.Resume.CellsSkipped != 2 || statz.Resume.TenantsReplayed != 2 {
		t.Fatalf("statz resume block = %+v", statz.Resume)
	}

	// Day 2 runs clean — the journal machinery must not confuse a fresh
	// day with the recovered one.
	rep, err = p.RunDay(context.Background())
	if err != nil {
		t.Fatalf("day 2: %v", err)
	}
	if rep.Resumed || rep.Day != 2 || rep.CellsSkipped != 0 {
		t.Fatalf("day 2 report = %+v, want a fresh day", rep)
	}
}

// TestRunDayCancellationAbortsJournalCleanly cancels a journaled RunDay
// mid-training and checks the fleet-level contract: a prompt
// context.Canceled return, no leaked goroutines, an abort marker as the
// journal's last record, and a clean resume on the next RunDay.
func TestRunDayCancellationAbortsJournalCleanly(t *testing.T) {
	before := runtime.NumGoroutine()

	opts := testOptions()
	opts.Journal = true
	// Every training task stalls long enough for the cancel to land
	// mid-phase.
	opts.Injector = faults.NewInjector(7, faults.Rule{
		Ops:      []faults.Op{faults.OpTrain},
		Kind:     faults.Latency,
		Delay:    200 * time.Millisecond,
		EveryNth: 1,
	})
	fs := dfs.New()
	server := serving.NewServer()
	p := New(fs, server, opts)
	for _, r := range chaosFleet(t, 2) {
		mustAdd(t, p, r)
	}

	// Cancel once staging has committed (intent + one staged record) and
	// the training phase is under way.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if _, raw, err := dfs.OpenJournal(fs, journalPath(0)); err == nil && len(raw) >= 2 {
				time.Sleep(20 * time.Millisecond) // into the stalled train tasks
				cancel()
				return
			}
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()

	start := time.Now()
	_, err := p.RunDay(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if IsCoordinatorCrash(err) {
		t.Fatalf("cancellation reported as a coordinator crash: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("RunDay took %v after cancellation, want prompt return", elapsed)
	}
	if p.Day() != 0 {
		t.Fatal("cancelled day advanced")
	}

	// Every pipeline goroutine (cells, workers, substrate) must wind
	// down; poll briefly to let deferred exits run.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: before=%d now=%d\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The journal records the clean abort as its final record.
	recs := readJournalRecords(t, fs, 0)
	if len(recs) == 0 {
		t.Fatal("cancelled day left an empty journal")
	}
	last := recs[len(recs)-1]
	if last.Type != recAbort {
		t.Fatalf("last journal record = %q, want %q", last.Type, recAbort)
	}
	if last.Reason == "" {
		t.Fatal("abort record has no reason")
	}

	// A fresh context resumes the aborted day to completion.
	rep, err := p.RunDay(context.Background())
	if err != nil {
		t.Fatalf("resume after abort: %v", err)
	}
	if !rep.Resumed || rep.Day != 0 || !rep.SnapshotPushed {
		t.Fatalf("resumed report = %+v, want completed day 0", rep)
	}
	if len(rep.Degraded) != 0 {
		t.Fatalf("resumed day degraded: %v", rep.Degraded)
	}
}
