package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// fakeClock advances a fixed step per call, making span durations exact.
type fakeClock struct {
	mu   sync.Mutex
	now  time.Time
	step time.Duration
}

func newFakeClock(step time.Duration) *fakeClock {
	return &fakeClock{now: time.Unix(1000, 0), step: step}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.now
	c.now = c.now.Add(c.step)
	return t
}

func TestSpanTreeDeterministic(t *testing.T) {
	tr := NewTracer(4)
	clock := newFakeClock(10 * time.Millisecond)
	tr.SetClock(clock.Now)

	day := tr.Start("day", L("day", "0"))
	staging := day.Child("staging")
	ta := staging.Child("tenant:retailer-a")
	ta.SetAttr("outcome", "ok")
	ta.End()
	tb := staging.Child("tenant:retailer-b", L("outcome", "degraded"))
	tb.SetAttr("err", "faults: injected failure")
	tb.End()
	staging.End()
	train := day.Child("train")
	// Externally measured duration (per-tenant compute accumulated across
	// a shared MapReduce).
	tc := train.Child("tenant:retailer-a")
	tc.EndWith(1500 * time.Millisecond)
	train.End()
	day.SetAttr("degraded", "1")
	day.End()

	got := tr.Recent()
	if len(got) != 1 {
		t.Fatalf("Recent() returned %d roots, want 1", len(got))
	}
	root := got[0]
	if root.Name != "day" || root.Attrs["day"] != "0" || root.Attrs["degraded"] != "1" {
		t.Errorf("root span wrong: %+v", root)
	}
	if len(root.Children) != 2 {
		t.Fatalf("root has %d children, want 2 (staging, train)", len(root.Children))
	}
	if root.Children[0].Name != "staging" || root.Children[1].Name != "train" {
		t.Errorf("phases out of order: %s, %s", root.Children[0].Name, root.Children[1].Name)
	}
	st := root.Children[0]
	if len(st.Children) != 2 {
		t.Fatalf("staging has %d children, want 2", len(st.Children))
	}
	if st.Children[0].Name != "tenant:retailer-a" || st.Children[1].Name != "tenant:retailer-b" {
		t.Errorf("tenant order wrong: %s, %s", st.Children[0].Name, st.Children[1].Name)
	}
	if st.Children[1].Attrs["outcome"] != "degraded" || st.Children[1].Attrs["err"] == "" {
		t.Errorf("degraded tenant attrs missing: %+v", st.Children[1].Attrs)
	}
	// Fake clock: tenant-a span brackets exactly one 10ms tick (Child
	// then End each consume one).
	if st.Children[0].DurationMS != 10 {
		t.Errorf("tenant-a duration %v ms, want 10", st.Children[0].DurationMS)
	}
	if d := root.Children[1].Children[0].DurationMS; d != 1500 {
		t.Errorf("EndWith duration %v ms, want 1500", d)
	}

	// The tree must round-trip through JSON (the /tracez wire format).
	raw, err := json.Marshal(got)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back []SpanJSON
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back[0].Children[0].Children[1].Attrs["outcome"] != "degraded" {
		t.Error("attrs lost in JSON round trip")
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(2)
	for i := 0; i < 5; i++ {
		s := tr.Start("day", L("n", string(rune('a'+i))))
		s.End()
	}
	got := tr.Recent()
	if len(got) != 2 {
		t.Fatalf("kept %d roots, want 2", len(got))
	}
	if got[0].Attrs["n"] != "d" || got[1].Attrs["n"] != "e" {
		t.Errorf("wrong roots kept: %v, %v", got[0].Attrs, got[1].Attrs)
	}
}

// TestConcurrentChildren: tenant spans are created from per-cell
// goroutines; Child and SetAttr must be race-free and every child must be
// exported.
func TestConcurrentChildren(t *testing.T) {
	tr := NewTracer(1)
	root := tr.Start("day")
	phase := root.Child("infer")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := phase.Child("tenant")
			c.SetAttr("outcome", "ok")
			c.End()
		}(i)
	}
	wg.Wait()
	phase.End()
	root.End()
	got := tr.Recent()
	if n := len(got[0].Children[0].Children); n != 16 {
		t.Errorf("exported %d tenant spans, want 16", n)
	}
}

func TestDoubleEndKeepsFirstDuration(t *testing.T) {
	tr := NewTracer(1)
	clock := newFakeClock(time.Second)
	tr.SetClock(clock.Now)
	s := tr.Start("x")
	s.End() // 1s on the fake clock
	s.End() // would be 2s; must be ignored
	if d := tr.Recent()[0].DurationMS; d != 1000 {
		t.Errorf("duration %v ms, want 1000", d)
	}
	if len(tr.Recent()) != 1 {
		t.Error("double End must not record the root twice")
	}
}
