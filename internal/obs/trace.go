package obs

import (
	"sort"
	"sync"
	"time"
)

// Tracer records span trees for recent operations — the pipeline starts
// one root span per day and hangs phase and tenant spans under it — and
// keeps the most recent Keep finished roots for GET /tracez. The clock is
// injectable so span trees are byte-deterministic under test.
type Tracer struct {
	mu     sync.Mutex
	now    func() time.Time
	keep   int
	recent []*Span // finished roots, oldest first
}

// NewTracer returns a tracer retaining the last keep finished root spans
// (keep <= 0 defaults to 16).
func NewTracer(keep int) *Tracer {
	if keep <= 0 {
		keep = 16
	}
	return &Tracer{now: time.Now, keep: keep}
}

// SetClock replaces the tracer's time source (tests pass a fake clock so
// durations are deterministic). Not safe to call concurrently with
// tracing.
func (t *Tracer) SetClock(now func() time.Time) {
	if t == nil || now == nil {
		return
	}
	t.now = now
}

// Span is one timed node in a trace tree. Spans are created by
// Tracer.Start (roots) and Span.Child, annotated with SetAttr, and closed
// with End (measured against the tracer's clock) or EndWith (an
// externally measured duration — e.g. a tenant's summed training compute
// across interleaved MapReduce tasks). The nil Span is a valid no-op, so
// optional tracing needs no guards. A root span enters the tracer's
// recent ring when it ends.
type Span struct {
	tracer *Tracer
	parent *Span

	mu       sync.Mutex
	name     string
	start    time.Time
	duration time.Duration
	ended    bool
	attrs    map[string]string
	children []*Span
}

// Start opens a root span. A nil tracer returns a nil (no-op) span.
func (t *Tracer) Start(name string, attrs ...Label) *Span {
	if t == nil {
		return nil
	}
	return &Span{tracer: t, name: name, start: t.now(), attrs: attrMap(attrs)}
}

// Child opens a sub-span. Safe to call concurrently on one parent (tenant
// spans are created from per-cell goroutines).
func (s *Span) Child(name string, attrs ...Label) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tracer: s.tracer, parent: s, name: name, start: s.tracer.now(), attrs: attrMap(attrs)}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// SetAttr sets one attribute (outcome tags, attempt counts, error text).
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = map[string]string{}
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// End closes the span with wall time from the tracer's clock. Ending a
// span twice keeps the first duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.endWith(s.tracer.now().Sub(s.start))
}

// EndWith closes the span with an externally measured duration — used
// when a span's time is accumulated across interleaved work rather than
// bracketed by Start/End (per-tenant training compute inside a shared
// MapReduce).
func (s *Span) EndWith(d time.Duration) {
	if s == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	s.endWith(d)
}

func (s *Span) endWith(d time.Duration) {
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.duration = d
	root := s.parent == nil
	s.mu.Unlock()
	if root {
		s.tracer.record(s)
	}
}

func (t *Tracer) record(root *Span) {
	t.mu.Lock()
	t.recent = append(t.recent, root)
	if len(t.recent) > t.keep {
		t.recent = t.recent[len(t.recent)-t.keep:]
	}
	t.mu.Unlock()
}

// SpanJSON is the exported form of a span tree — what /tracez serves.
type SpanJSON struct {
	Name       string            `json:"name"`
	Start      time.Time         `json:"start"`
	DurationMS float64           `json:"duration_ms"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Children   []SpanJSON        `json:"children,omitempty"`
}

// Recent exports the retained root spans, oldest first. Children are
// sorted by (start, name) so sequential phases read chronologically and
// concurrently created tenant spans have a stable order. Nil tracers
// export nothing.
func (t *Tracer) Recent() []SpanJSON {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	roots := append([]*Span(nil), t.recent...)
	t.mu.Unlock()
	out := make([]SpanJSON, 0, len(roots))
	for _, r := range roots {
		out = append(out, r.export())
	}
	return out
}

func (s *Span) export() SpanJSON {
	s.mu.Lock()
	j := SpanJSON{
		Name:       s.name,
		Start:      s.start,
		DurationMS: float64(s.duration) / float64(time.Millisecond),
	}
	if len(s.attrs) > 0 {
		j.Attrs = make(map[string]string, len(s.attrs))
		for k, v := range s.attrs {
			j.Attrs[k] = v
		}
	}
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range kids {
		j.Children = append(j.Children, c.export())
	}
	sort.SliceStable(j.Children, func(a, b int) bool {
		if !j.Children[a].Start.Equal(j.Children[b].Start) {
			return j.Children[a].Start.Before(j.Children[b].Start)
		}
		return j.Children[a].Name < j.Children[b].Name
	})
	return j
}

func attrMap(attrs []Label) map[string]string {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]string, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

// Observer bundles the two observability surfaces every layer reports to.
// A nil *Observer is safe everywhere: Reg and Trace return nil, and nil
// registries, tracers, and spans are valid no-ops.
type Observer struct {
	Metrics *Registry
	Tracer  *Tracer
}

// NewObserver returns an observer with a fresh registry and a tracer
// keeping the default number of traces.
func NewObserver() *Observer {
	return &Observer{Metrics: NewRegistry(), Tracer: NewTracer(0)}
}

// Reg returns the registry (nil for a nil observer — itself a no-op sink).
func (o *Observer) Reg() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// Trace returns the tracer (nil for a nil observer).
func (o *Observer) Trace() *Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}
