package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestWritePrometheusGolden locks down the exposition format byte for
// byte: family ordering, label sorting and escaping, histogram cumulative
// buckets, _sum/_count, and float rendering.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()

	req := r.Counter("sigmund_test_requests_total", "Total requests.", L("code", "200"))
	req.Add(3)
	r.Counter("sigmund_test_requests_total", "ignored duplicate help", L("code", "500")).Inc()
	r.Gauge("sigmund_test_tenants", "Registered tenants.").Set(12)
	// Labels are given out of key order and with characters needing
	// escaping; exposition must sort and escape them.
	r.Counter("sigmund_test_faults_total", "Injected faults.",
		L("op", `write"x`), L("kind", "error")).Add(2)

	h := r.Histogram("sigmund_test_latency_seconds", "Request latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005) // first bucket
	h.Observe(0.1)   // exactly on a boundary: belongs to le="0.1"
	h.Observe(5)     // above every bound: +Inf only
	h.Observe(0.25)  // le="1"

	var b strings.Builder
	r.WritePrometheus(&b)
	want := `# HELP sigmund_test_faults_total Injected faults.
# TYPE sigmund_test_faults_total counter
sigmund_test_faults_total{kind="error",op="write\"x"} 2
# HELP sigmund_test_latency_seconds Request latency.
# TYPE sigmund_test_latency_seconds histogram
sigmund_test_latency_seconds_bucket{le="0.01"} 1
sigmund_test_latency_seconds_bucket{le="0.1"} 2
sigmund_test_latency_seconds_bucket{le="1"} 3
sigmund_test_latency_seconds_bucket{le="+Inf"} 4
sigmund_test_latency_seconds_sum 5.355
sigmund_test_latency_seconds_count 4
# HELP sigmund_test_requests_total Total requests.
# TYPE sigmund_test_requests_total counter
sigmund_test_requests_total{code="200"} 3
sigmund_test_requests_total{code="500"} 1
# HELP sigmund_test_tenants Registered tenants.
# TYPE sigmund_test_tenants gauge
sigmund_test_tenants 12
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestHistogramBucketBoundaries pins the le-semantics edge cases: values
// exactly on a bound, below the first bound, above the last, negative,
// and the cumulative rendering.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sigmund_test_h", "", []float64{1, 2, 4})

	cases := []struct {
		v          float64
		wantBucket int // index into counts; 3 = +Inf
	}{
		{-5, 0},  // below first bound lands in first bucket
		{0, 0},   // zero too
		{1, 0},   // exactly on bound 1 → le="1"
		{1.5, 1}, // between bounds → next bound up
		{2, 1},   // exactly on bound 2 → le="2"
		{4, 2},   // exactly on last bound → le="4", not +Inf
		{4.0001, 3},
		{1e12, 3},
	}
	for _, c := range cases {
		before := make([]int64, 4)
		for i := range before {
			before[i] = h.counts[i].Load()
		}
		h.Observe(c.v)
		for i := range before {
			delta := h.counts[i].Load() - before[i]
			want := int64(0)
			if i == c.wantBucket {
				want = 1
			}
			if delta != want {
				t.Errorf("Observe(%v): bucket %d delta %d, want %d", c.v, i, delta, want)
			}
		}
	}
	if h.Count() != int64(len(cases)) {
		t.Errorf("Count = %d, want %d", h.Count(), len(cases))
	}

	// Cumulative exposition: each le line is the sum of all buckets at or
	// below it, and the +Inf line equals _count.
	var b strings.Builder
	r.WritePrometheus(&b)
	for _, line := range []string{
		`sigmund_test_h_bucket{le="1"} 3`,
		`sigmund_test_h_bucket{le="2"} 5`,
		`sigmund_test_h_bucket{le="4"} 6`,
		`sigmund_test_h_bucket{le="+Inf"} 8`,
		`sigmund_test_h_count 8`,
	} {
		if !strings.Contains(b.String(), line+"\n") {
			t.Errorf("exposition missing %q in:\n%s", line, b.String())
		}
	}
}

func TestRegistryReuseAndMismatch(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("sigmund_test_c", "h", L("x", "1"))
	b := r.Counter("sigmund_test_c", "h", L("x", "1"))
	if a != b {
		t.Error("same name+labels must return the same counter")
	}
	if c := r.Counter("sigmund_test_c", "h", L("x", "2")); c == a {
		t.Error("different labels must return a different child")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("registering one name with two types must panic")
			}
		}()
		r.Gauge("sigmund_test_c", "h")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("two bucket layouts for one histogram must panic")
			}
		}()
		r.Histogram("sigmund_test_h2", "", []float64{1, 2})
		r.Histogram("sigmund_test_h2", "", []float64{1, 3})
	}()
}

// TestNilSafety: every metric type and the registry itself are valid
// no-op sinks when nil — optional wiring must not need guards.
func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter value")
	}
	var g *Gauge
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Error("nil gauge value")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram state")
	}
	var r *Registry
	if r.Counter("x", "") != nil {
		t.Error("nil registry must hand out nil (no-op) counters")
	}
	r.Histogram("x", "", nil).Observe(1)
	var b strings.Builder
	r.WritePrometheus(&b)
	if b.Len() != 0 {
		t.Error("nil registry exposition must be empty")
	}
	var o *Observer
	o.Reg().Counter("x", "").Inc()
	o.Trace().Start("x").Child("y").End()
}

func TestCounterConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sigmund_test_conc_total", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExponentialBuckets(0.001, 2, 4)
	want := []float64{0.001, 0.002, 0.004, 0.008}
	for i := range want {
		if exp[i] != want[i] {
			t.Errorf("ExponentialBuckets[%d] = %v, want %v", i, exp[i], want[i])
		}
	}
	lin := LinearBuckets(1, 2, 3)
	wantLin := []float64{1, 3, 5}
	for i := range wantLin {
		if lin[i] != wantLin[i] {
			t.Errorf("LinearBuckets[%d] = %v, want %v", i, lin[i], wantLin[i])
		}
	}
}
