// Package obs is Sigmund's observability substrate: a stdlib-only metrics
// registry (counters, gauges, fixed-bucket histograms with Prometheus text
// exposition) and a lightweight span tracer (per-day → per-phase →
// per-tenant pipeline traces, exportable as JSON).
//
// The operating premise of the paper — one team running thousands of
// independent recommendation problems daily — is only credible if an
// operator can see, per tenant and per phase, where time and failures go.
// Every layer of the stack therefore reports here: the pipeline emits
// spans and phase histograms, the MapReduce worker substrate and the retry
// helper mirror their lifecycle counters, the fault injector counts what
// it fired, and the serving layer exposes the whole registry on
// GET /metrics and recent day traces on GET /tracez.
//
// Metric naming scheme (documented in DESIGN.md):
//
//   - every metric is prefixed "sigmund_" and then named
//     <subsystem>_<what>_<unit|total>: sigmund_pipeline_phase_seconds,
//     sigmund_mapreduce_preemptions_total, sigmund_serving_requests_total;
//   - low-cardinality dimensions (phase, outcome, op) are labels;
//   - per-tenant attribution is NEVER a metric label (thousands of tenants
//     would blow up the time-series space) — it lives in span attributes
//     on /tracez and in the DayReport phase breakdown.
//
// Everything is deterministic under test: counters and histograms are
// plain atomics with no background goroutines, exposition output is fully
// sorted, and the tracer's clock is injectable.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension. Keep cardinality low: phases, outcomes,
// ops — never tenant IDs.
type Label struct{ Key, Value string }

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

type metricType uint8

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonically increasing int64. The nil Counter is a valid
// no-op sink, so optional wiring needs no guards at increment sites.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down. The nil Gauge is a valid
// no-op sink.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments by delta (CAS loop; safe for concurrent use).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into a fixed bucket layout. Buckets are
// upper bounds with Prometheus le-semantics: an observation lands in the
// first bucket whose bound is >= the value, so a value exactly on a
// boundary belongs to that boundary's bucket. The layout is fixed at
// registration, so exposition is deterministic. The nil Histogram is a
// valid no-op sink.
type Histogram struct {
	bounds []float64      // ascending upper bounds, +Inf implicit
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	sum    Gauge          // atomic float64 accumulator
	count  atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bound >= v: le-semantics puts boundary values in their own
	// bucket; values above every bound land in +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the total number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// ExponentialBuckets returns n bounds starting at start, each factor times
// the previous — the layout for latency-style metrics.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic("obs: ExponentialBuckets needs start > 0, factor > 1, n > 0")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// LinearBuckets returns n bounds starting at start, spaced width apart.
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n <= 0 {
		panic("obs: LinearBuckets needs width > 0, n > 0")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start += width
	}
	return out
}

// DurationBuckets is the standard layout for wall-time histograms,
// spanning 1ms to ~65s: the simulated fleet runs on a
// milliseconds-for-minutes clock, and real daily cycles sit in the
// seconds-to-minutes range.
func DurationBuckets() []float64 {
	return ExponentialBuckets(0.001, 2, 17) // 1ms .. 65.536s
}

// StalenessBuckets covers publish-to-servable staleness, which spans
// seconds (an hourly tenant publishing on time) to more than a simulated
// day (a starved best-effort tenant).
func StalenessBuckets() []float64 {
	return ExponentialBuckets(1, 2, 18) // 1s .. ~36h
}

// family is one named metric with all its labeled children.
type family struct {
	name    string
	help    string
	typ     metricType
	buckets []float64
	mu      sync.Mutex
	kids    map[string]any // label signature -> *Counter/*Gauge/*Histogram
	sigs    []string       // sorted at exposition
	labels  map[string][]Label
}

// Registry holds metric families. All methods are safe for concurrent
// use. Registering the same (name, labels) twice returns the existing
// metric; registering one name with two different types or bucket layouts
// panics (a programming error, caught deterministically at startup).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Counter registers (or fetches) a counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.metric(name, help, typeCounter, nil, labels)
	return m.(*Counter)
}

// Gauge registers (or fetches) a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	m := r.metric(name, help, typeGauge, nil, labels)
	return m.(*Gauge)
}

// Histogram registers (or fetches) a histogram with the given bucket
// upper bounds (ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if len(buckets) == 0 {
		buckets = DurationBuckets()
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %s buckets not strictly ascending", name))
		}
	}
	m := r.metric(name, help, typeHistogram, buckets, labels)
	return m.(*Histogram)
}

func (r *Registry) metric(name, help string, typ metricType, buckets []float64, labels []Label) any {
	if r == nil {
		// A nil registry hands out nil metrics, which are valid no-op
		// sinks — optional wiring stays guard-free all the way down.
		switch typ {
		case typeCounter:
			return (*Counter)(nil)
		case typeGauge:
			return (*Gauge)(nil)
		default:
			return (*Histogram)(nil)
		}
	}
	checkName(name)
	for _, l := range labels {
		checkName(l.Key)
	}
	r.mu.Lock()
	fam := r.families[name]
	if fam == nil {
		fam = &family{
			name: name, help: help, typ: typ, buckets: buckets,
			kids: map[string]any{}, labels: map[string][]Label{},
		}
		r.families[name] = fam
		r.names = append(r.names, name)
		sort.Strings(r.names)
	}
	r.mu.Unlock()
	if fam.typ != typ {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, fam.typ, typ))
	}
	if typ == typeHistogram && !equalBuckets(fam.buckets, buckets) {
		panic(fmt.Sprintf("obs: histogram %s registered with two bucket layouts", name))
	}

	sig := signature(labels)
	fam.mu.Lock()
	defer fam.mu.Unlock()
	if m, ok := fam.kids[sig]; ok {
		return m
	}
	var m any
	switch typ {
	case typeCounter:
		m = &Counter{}
	case typeGauge:
		m = &Gauge{}
	default:
		h := &Histogram{bounds: buckets}
		h.counts = make([]atomic.Int64, len(buckets)+1)
		m = h
	}
	fam.kids[sig] = m
	fam.labels[sig] = sortedLabels(labels)
	fam.sigs = append(fam.sigs, sig)
	sort.Strings(fam.sigs)
	return m
}

func equalBuckets(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func checkName(s string) {
	if s == "" {
		panic("obs: empty metric or label name")
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			panic(fmt.Sprintf("obs: invalid metric or label name %q", s))
		}
	}
}

func sortedLabels(labels []Label) []Label {
	cp := append([]Label(nil), labels...)
	sort.Slice(cp, func(i, j int) bool { return cp[i].Key < cp[j].Key })
	return cp
}

// signature renders sorted labels into the map key and exposition form.
func signature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	cp := sortedLabels(labels)
	var b strings.Builder
	for i, l := range cp {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// WritePrometheus writes the whole registry in Prometheus text exposition
// format (version 0.0.4): families sorted by name, children sorted by
// label signature, histograms rendered with cumulative le-buckets plus
// _sum and _count. The output is byte-deterministic for a given set of
// metric values.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	for _, fam := range fams {
		fam.mu.Lock()
		if fam.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", fam.name, strings.ReplaceAll(fam.help, "\n", " "))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", fam.name, fam.typ)
		for _, sig := range fam.sigs {
			switch m := fam.kids[sig].(type) {
			case *Counter:
				fmt.Fprintf(w, "%s%s %d\n", fam.name, braced(sig), m.Value())
			case *Gauge:
				fmt.Fprintf(w, "%s%s %s\n", fam.name, braced(sig), formatFloat(m.Value()))
			case *Histogram:
				writeHistogram(w, fam.name, sig, m)
			}
		}
		fam.mu.Unlock()
	}
}

func writeHistogram(w io.Writer, name, sig string, h *Histogram) {
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, bracedWith(sig, `le="`+formatFloat(bound)+`"`), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, bracedWith(sig, `le="+Inf"`), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, braced(sig), formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, braced(sig), h.Count())
}

func braced(sig string) string {
	if sig == "" {
		return ""
	}
	return "{" + sig + "}"
}

func bracedWith(sig, extra string) string {
	if sig == "" {
		return "{" + extra + "}"
	}
	return "{" + sig + "," + extra + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
