package serving

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"sigmund/internal/catalog"
	"sigmund/internal/interactions"
)

// NewHandler exposes the server over HTTP:
//
//	GET /recommend?retailer=shop-1&context=view:3,search:17,cart:9&k=10
//	GET /healthz
//	GET /statz
//
// The context parameter lists the user's recent actions oldest-first as
// type:itemID pairs (types: view, search, cart, conversion). Responses are
// JSON.
func NewHandler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/recommend", func(w http.ResponseWriter, r *http.Request) {
		retailer := catalog.RetailerID(r.URL.Query().Get("retailer"))
		if retailer == "" {
			http.Error(w, "missing retailer parameter", http.StatusBadRequest)
			return
		}
		ctx, err := ParseContext(r.URL.Query().Get("context"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		k := 10
		if ks := r.URL.Query().Get("k"); ks != "" {
			k, err = strconv.Atoi(ks)
			if err != nil || k < 1 || k > 100 {
				http.Error(w, "k must be an integer in [1,100]", http.StatusBadRequest)
				return
			}
		}
		recs := s.Recommend(retailer, ctx, k)
		if recs == nil {
			recs = []Recommendation{}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Retailer catalog.RetailerID `json:"retailer"`
			Version  int64              `json:"version"`
			Recs     []Recommendation   `json:"recommendations"`
		}{retailer, s.Version(), recs})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/statz", func(w http.ResponseWriter, _ *http.Request) {
		req, fb, miss := s.Stats()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Version   int64 `json:"version"`
			Requests  int64 `json:"requests"`
			Fallbacks int64 `json:"fallbacks"`
			Misses    int64 `json:"misses"`
		}{s.Version(), req, fb, miss})
	})
	return mux
}

// ParseContext parses "view:3,search:17" into a Context. An empty string
// is a valid empty context.
func ParseContext(s string) (interactions.Context, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	ctx := make(interactions.Context, 0, len(parts))
	for _, p := range parts {
		colon := strings.IndexByte(p, ':')
		if colon < 0 {
			return nil, fmt.Errorf("serving: malformed context action %q (want type:item)", p)
		}
		et, err := interactions.ParseEventType(p[:colon])
		if err != nil {
			return nil, fmt.Errorf("serving: unknown action type %q", p[:colon])
		}
		id, err := strconv.Atoi(p[colon+1:])
		if err != nil {
			return nil, fmt.Errorf("serving: bad item id in %q", p)
		}
		ctx = append(ctx, interactions.Action{Type: et, Item: catalog.ItemID(id)})
	}
	return ctx, nil
}
