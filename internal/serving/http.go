package serving

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"sigmund/internal/catalog"
	"sigmund/internal/interactions"
	"sigmund/internal/mapreduce"
	"sigmund/internal/obs"
)

// Backend is the serving surface the HTTP handler needs: the single-node
// Server implements it, and so does the sharded store's router, so a
// process can swap one for the other without touching the HTTP layer.
type Backend interface {
	Recommend(r catalog.RetailerID, ctx interactions.Context, k int) []Recommendation
	Version() int64
	Stats() (requests, fallbacks, misses int64)
	StaleServes() int64
	TenantStatuses() map[catalog.RetailerID]TenantStatus
	JobCounters() mapreduce.Counters
	Observer() *obs.Observer
}

// StatzExtension is an optional Backend extension: extra top-level blocks
// merged into the /statz document (e.g. the sharded store's per-shard
// replica health).
type StatzExtension interface {
	StatzBlocks() map[string]any
}

// Rejecter is an optional Backend extension for backends that can refuse
// requests (admission control, load shedding). When present, /recommend
// uses it instead of Recommend so rejections surface as HTTP errors —
// 429 for admission-control rejections, 503 otherwise — rather than
// silently serving an empty list.
type Rejecter interface {
	RecommendOrReject(r catalog.RetailerID, ctx interactions.Context, k int) ([]Recommendation, error)
}

// RejectionError lets a backend's rejection errors carry a machine-
// readable cause. The store's ErrShed/ErrAdmission implement it; the
// handler maps "admission" to 429 Too Many Requests and everything else
// to 503, and echoes the reason in the X-Reject-Reason header.
type RejectionError interface {
	error
	RejectReason() string
}

// NewHandler exposes a single-node server over HTTP. See NewBackendHandler
// for the endpoints.
func NewHandler(s *Server) http.Handler { return NewBackendHandler(s) }

// NewBackendHandler exposes any serving backend over HTTP:
//
//	GET /recommend?retailer=shop-1&context=view:3,search:17,cart:9&k=10
//	GET /healthz
//	GET /statz
//	GET /metrics   (Prometheus text exposition of the shared registry)
//	GET /tracez    (JSON span trees of recent pipeline days)
//
// The context parameter lists the user's recent actions oldest-first as
// type:itemID pairs (types: view, search, cart, conversion). Responses are
// JSON by default; /recommend also serves the compact binary encoding
// (see BinaryContentType) when asked via format=binary or Accept.
func NewBackendHandler(s Backend) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/recommend", func(w http.ResponseWriter, r *http.Request) {
		retailer := catalog.RetailerID(r.URL.Query().Get("retailer"))
		if retailer == "" {
			http.Error(w, "missing retailer parameter", http.StatusBadRequest)
			return
		}
		ctx, err := ParseContext(r.URL.Query().Get("context"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		k := 10
		if ks := r.URL.Query().Get("k"); ks != "" {
			k, err = strconv.Atoi(ks)
			if err != nil || k < 1 || k > 100 {
				http.Error(w, "k must be an integer in [1,100]", http.StatusBadRequest)
				return
			}
		}
		var recs []Recommendation
		if rej, ok := s.(Rejecter); ok {
			recs, err = rej.RecommendOrReject(retailer, ctx, k)
			if err != nil {
				reason, code := "unavailable", http.StatusServiceUnavailable
				var re RejectionError
				if errors.As(err, &re) {
					reason = re.RejectReason()
					if reason == "admission" {
						code = http.StatusTooManyRequests
					}
				}
				w.Header().Set("X-Reject-Reason", reason)
				http.Error(w, err.Error(), code)
				return
			}
		} else {
			recs = s.Recommend(retailer, ctx, k)
		}
		if recs == nil {
			recs = []Recommendation{}
		}
		if wantsBinary(r) {
			w.Header().Set("Content-Type", BinaryContentType)
			bp := respBufPool.Get().(*[]byte)
			buf := AppendRecsResponse((*bp)[:0], retailer, s.Version(), recs)
			w.Write(buf)
			*bp = buf[:0]
			respBufPool.Put(bp)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Retailer catalog.RetailerID `json:"retailer"`
			Version  int64              `json:"version"`
			Recs     []Recommendation   `json:"recommendations"`
		}{retailer, s.Version(), recs})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		// Still 200 while degraded: the server keeps answering (from
		// carried-forward snapshots), so it is alive — but the body names
		// the tenants running stale so probes can alarm on partial health.
		statuses := s.TenantStatuses()
		var degraded, quarantined []string
		for r, st := range statuses {
			if st.Quarantined {
				quarantined = append(quarantined, string(r))
			} else if st.Degraded {
				degraded = append(degraded, string(r))
			}
		}
		if len(degraded) == 0 && len(quarantined) == 0 {
			fmt.Fprintln(w, "ok")
			return
		}
		fmt.Fprintln(w, "degraded")
		sort.Strings(degraded)
		sort.Strings(quarantined)
		for _, r := range degraded {
			fmt.Fprintf(w, "degraded: %s\n", r)
		}
		for _, r := range quarantined {
			fmt.Fprintf(w, "quarantined: %s\n", r)
		}
	})
	mux.HandleFunc("/statz", func(w http.ResponseWriter, _ *http.Request) {
		req, fb, miss := s.Stats()
		version := s.Version()
		type tenantStatz struct {
			Degraded      bool   `json:"degraded"`
			Quarantined   bool   `json:"quarantined"`
			DegradedPhase string `json:"degraded_phase,omitempty"`
			RecsVersion   int64  `json:"recs_version"`
			SnapshotAge   int64  `json:"snapshot_age"`
		}
		tenants := map[string]tenantStatz{}
		var degraded, quarantined []string
		for r, st := range s.TenantStatuses() {
			tenants[string(r)] = tenantStatz{
				Degraded:      st.Degraded,
				Quarantined:   st.Quarantined,
				DegradedPhase: st.DegradedPhase,
				RecsVersion:   st.RecsVersion,
				SnapshotAge:   version - st.RecsVersion,
			}
			if st.Degraded {
				degraded = append(degraded, string(r))
			}
			if st.Quarantined {
				quarantined = append(quarantined, string(r))
			}
		}
		sort.Strings(degraded)
		sort.Strings(quarantined)
		jc := s.JobCounters()
		mr := mapreduceStatz{
			MapAttempts:         jc.MapAttempts,
			MapFailures:         jc.MapFailures,
			ReduceAttempts:      jc.ReduceAttempts,
			ReduceFailures:      jc.ReduceFailures,
			Preemptions:         jc.Preemptions,
			LeaseExpiries:       jc.LeaseExpiries,
			SpeculativeLaunches: jc.SpeculativeLaunches,
			SpeculativeWins:     jc.SpeculativeWins,
			WorkersBlacklisted:  jc.WorkersBlacklisted,
		}
		doc := map[string]any{
			"version":      version,
			"requests":     req,
			"fallbacks":    fb,
			"misses":       miss,
			"stale_serves": s.StaleServes(),
			"tenants":      tenants,
			"mapreduce":    mr,
		}
		if len(degraded) > 0 {
			doc["degraded"] = degraded
		}
		if len(quarantined) > 0 {
			doc["quarantined"] = quarantined
		}
		if ext, ok := s.(StatzExtension); ok {
			for name, block := range ext.StatzBlocks() {
				doc[name] = block
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(doc)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		reg := s.Observer().Reg()
		if reg == nil {
			http.Error(w, "metrics registry not configured", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, _ *http.Request) {
		tr := s.Observer().Trace()
		if tr == nil {
			http.Error(w, "tracer not configured", http.StatusNotFound)
			return
		}
		spans := tr.Recent()
		if spans == nil {
			spans = []obs.SpanJSON{}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Spans []obs.SpanJSON `json:"spans"`
		}{spans})
	})
	return mux
}

// mapreduceStatz is the /statz view of the accumulated MapReduce job
// counters, including the worker-substrate health signals.
type mapreduceStatz struct {
	MapAttempts         int64 `json:"map_attempts"`
	MapFailures         int64 `json:"map_failures"`
	ReduceAttempts      int64 `json:"reduce_attempts"`
	ReduceFailures      int64 `json:"reduce_failures"`
	Preemptions         int64 `json:"preemptions"`
	LeaseExpiries       int64 `json:"lease_expiries"`
	SpeculativeLaunches int64 `json:"speculative_launches"`
	SpeculativeWins     int64 `json:"speculative_wins"`
	WorkersBlacklisted  int64 `json:"workers_blacklisted"`
}

// wantsBinary reports whether a /recommend request negotiated the compact
// binary response encoding: either format=binary in the query or an Accept
// header naming BinaryContentType. Anything else stays on JSON, so the
// binary path is strictly opt-in.
func wantsBinary(r *http.Request) bool {
	if r.URL.Query().Get("format") == "binary" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), BinaryContentType)
}

// ParseContext parses "view:3,search:17" into a Context. An empty string
// is a valid empty context.
func ParseContext(s string) (interactions.Context, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	ctx := make(interactions.Context, 0, len(parts))
	for _, p := range parts {
		colon := strings.IndexByte(p, ':')
		if colon < 0 {
			return nil, fmt.Errorf("serving: malformed context action %q (want type:item)", p)
		}
		et, err := interactions.ParseEventType(p[:colon])
		if err != nil {
			return nil, fmt.Errorf("serving: unknown action type %q", p[:colon])
		}
		id, err := strconv.Atoi(p[colon+1:])
		if err != nil {
			return nil, fmt.Errorf("serving: bad item id in %q", p)
		}
		ctx = append(ctx, interactions.Action{Type: et, Item: catalog.ItemID(id)})
	}
	return ctx, nil
}
