package serving

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"reflect"
	"testing"

	"sigmund/internal/catalog"
)

func TestBinaryCodecRoundTrip(t *testing.T) {
	recs := []Recommendation{
		{Item: 10, Score: 3.5},
		{Item: 2147483647, Score: -0.25},
		{Item: 0, Score: math.Inf(1)},
	}
	buf := AppendRecsResponse(nil, "shop-42", 9001, recs)
	retailer, version, got, err := DecodeRecsResponse(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if retailer != "shop-42" || version != 9001 {
		t.Fatalf("header = %q/%d, want shop-42/9001", retailer, version)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d recs, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Item != recs[i].Item || got[i].Score != recs[i].Score {
			t.Fatalf("rec %d = %+v, want item %d score %v", i, got[i], recs[i].Item, recs[i].Score)
		}
	}
}

func TestBinaryCodecEmptyResponse(t *testing.T) {
	buf := AppendRecsResponse(nil, "s", 1, nil)
	retailer, version, recs, err := DecodeRecsResponse(buf)
	if err != nil {
		t.Fatalf("decode empty: %v", err)
	}
	if retailer != "s" || version != 1 || len(recs) != 0 {
		t.Fatalf("empty round trip = %q/%d/%d recs", retailer, version, len(recs))
	}
}

func TestBinaryCodecRejectsCorruption(t *testing.T) {
	valid := AppendRecsResponse(nil, "shop", 3, []Recommendation{{Item: 1, Score: 1}})
	cases := map[string][]byte{
		"empty":          nil,
		"bad magic":      append([]byte("XXXX"), valid[4:]...),
		"short header":   valid[:10],
		"truncated body": valid[:len(valid)-5],
		"trailing bytes": append(append([]byte{}, valid...), 0xff),
	}
	for name, data := range cases {
		if _, _, _, err := DecodeRecsResponse(data); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
}

// TestRecommendHTTPBinaryNegotiation drives the same request through the
// JSON default, the format=binary query parameter, and the Accept header,
// and checks all three agree on the payload.
func TestRecommendHTTPBinaryNegotiation(t *testing.T) {
	s := NewServer()
	s.Publish(snapshotFixture())
	h := NewHandler(s)

	// Default: JSON.
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/recommend?retailer=shop&context=view:1&k=3", nil))
	if w.Code != 200 || w.Header().Get("Content-Type") != "application/json" {
		t.Fatalf("JSON request: status %d content-type %q", w.Code, w.Header().Get("Content-Type"))
	}
	var jdoc struct {
		Retailer catalog.RetailerID `json:"retailer"`
		Version  int64              `json:"version"`
		Recs     []Recommendation   `json:"recommendations"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &jdoc); err != nil {
		t.Fatalf("bad JSON body: %v", err)
	}

	decodeBinary := func(target string, accept string) (catalog.RetailerID, int64, []Recommendation) {
		t.Helper()
		req := httptest.NewRequest("GET", target, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != 200 || w.Header().Get("Content-Type") != BinaryContentType {
			t.Fatalf("binary request %s: status %d content-type %q", target, w.Code, w.Header().Get("Content-Type"))
		}
		retailer, version, recs, err := DecodeRecsResponse(w.Body.Bytes())
		if err != nil {
			t.Fatalf("binary request %s: decode: %v", target, err)
		}
		return retailer, version, recs
	}

	check := func(label string, retailer catalog.RetailerID, version int64, recs []Recommendation) {
		t.Helper()
		if retailer != jdoc.Retailer || version != jdoc.Version {
			t.Fatalf("%s header = %q/%d, JSON said %q/%d", label, retailer, version, jdoc.Retailer, jdoc.Version)
		}
		if len(recs) != len(jdoc.Recs) {
			t.Fatalf("%s returned %d recs, JSON said %d", label, len(recs), len(jdoc.Recs))
		}
		for i := range recs {
			if recs[i].Item != jdoc.Recs[i].Item || recs[i].Score != jdoc.Recs[i].Score {
				t.Fatalf("%s rec %d = %+v, JSON said %+v", label, i, recs[i], jdoc.Recs[i])
			}
		}
	}

	r1, v1, recs1 := decodeBinary("/recommend?retailer=shop&context=view:1&k=3&format=binary", "")
	check("format=binary", r1, v1, recs1)
	r2, v2, recs2 := decodeBinary("/recommend?retailer=shop&context=view:1&k=3", BinaryContentType)
	check("Accept header", r2, v2, recs2)
	if !reflect.DeepEqual(recs1, recs2) {
		t.Fatalf("query-param and Accept negotiation disagree: %+v vs %+v", recs1, recs2)
	}
}
