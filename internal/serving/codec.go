package serving

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"sigmund/internal/catalog"
)

// BinaryContentType is the compact wire encoding of a /recommend response,
// negotiated alongside JSON via the Accept header or the format=binary
// query parameter. JSON spends most of its bytes (and encoder CPU) on
// field names and float formatting; high-volume internal callers — the
// load generator, sidecar caches — read this fixed-width layout instead:
//
//	magic "SRB1" | version i64 | retailerLen u16 | retailer bytes |
//	count u32 | count × (item u32 | scoreBits u64)
//
// All integers little-endian. The response carries the same three fields
// as the JSON document; clients that need per-rec sources or statuses
// stay on JSON.
const BinaryContentType = "application/x-sigmund-recs"

const binaryMagic = "SRB1"

// respBufPool recycles response-encoding buffers so a binary response's
// only allocation is what the HTTP layer itself copies out.
var respBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 512)
	return &b
}}

// AppendRecsResponse appends the binary encoding of one /recommend
// response to buf and returns the extended slice.
func AppendRecsResponse(buf []byte, retailer catalog.RetailerID, version int64, recs []Recommendation) []byte {
	buf = append(buf, binaryMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(version))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(retailer)))
	buf = append(buf, retailer...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(recs)))
	for _, rec := range recs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(rec.Item))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(rec.Score))
	}
	return buf
}

// DecodeRecsResponse reverses AppendRecsResponse.
func DecodeRecsResponse(data []byte) (retailer catalog.RetailerID, version int64, recs []Recommendation, err error) {
	const header = 4 + 8 + 2
	if len(data) < header || string(data[:4]) != binaryMagic {
		return "", 0, nil, fmt.Errorf("serving: not a binary recs response (%d bytes)", len(data))
	}
	version = int64(binary.LittleEndian.Uint64(data[4:12]))
	rlen := int(binary.LittleEndian.Uint16(data[12:14]))
	data = data[header:]
	if len(data) < rlen+4 {
		return "", 0, nil, fmt.Errorf("serving: truncated binary recs response")
	}
	retailer = catalog.RetailerID(data[:rlen])
	count := int(binary.LittleEndian.Uint32(data[rlen : rlen+4]))
	data = data[rlen+4:]
	if len(data) != count*12 {
		return "", 0, nil, fmt.Errorf("serving: binary recs response claims %d recs in %d bytes", count, len(data))
	}
	recs = make([]Recommendation, count)
	for i := range recs {
		recs[i] = Recommendation{
			Item:  catalog.ItemID(binary.LittleEndian.Uint32(data[i*12:])),
			Score: math.Float64frombits(binary.LittleEndian.Uint64(data[i*12+4:])),
		}
	}
	return retailer, version, recs, nil
}
