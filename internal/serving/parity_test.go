package serving

import (
	"fmt"
	"reflect"
	"testing"

	"sigmund/internal/catalog"
	"sigmund/internal/core/inference"
	"sigmund/internal/interactions"
	"sigmund/internal/segment"
)

// TestMapFlatServingParity publishes the same logical recommendations in
// both RetailerRecs representations — map-backed (pipeline form) and
// flat-backed (v2 segment view) — and asserts RecommendWithSource returns
// identical answers across context shapes. This is the contract the store
// relies on: replicas serve Flat views straight off segment bytes, while
// the single-node server and v1 carry-forwards serve maps, and a client
// must not be able to tell which one answered.
func TestMapFlatServingParity(t *testing.T) {
	items := []inference.ItemRecs{
		{Item: 1, View: scored(10, 11, 12), Purchase: scored(20, 21), LateFunnel: scored(30)},
		{Item: 2, View: scored(11, 13), Purchase: scored(22)},
		{Item: 3, View: scored(14)},
	}
	top := []catalog.ItemID{1, 2, 10}

	mapBacked := NewServer()
	mapBacked.Publish(BuildSnapshot(7,
		map[catalog.RetailerID][]inference.ItemRecs{"shop": items},
		map[catalog.RetailerID][]catalog.ItemID{"shop": top}))

	fl, err := segment.Parse(segment.Encode(items, top))
	if err != nil {
		t.Fatalf("encode/parse flat: %v", err)
	}
	flatBacked := NewServer()
	flatBacked.Publish(&Snapshot{
		Version:   7,
		Retailers: map[catalog.RetailerID]*RetailerRecs{"shop": {Flat: fl}},
	})

	contexts := map[string]interactions.Context{
		"empty (top-seller fallback)": nil,
		"single view":                 {{Type: interactions.View, Item: 1}},
		"cart (purchase surface)":     {{Type: interactions.Cart, Item: 1}},
		"late funnel": {
			{Type: interactions.View, Item: 1},
			{Type: interactions.Cart, Item: 1},
			{Type: interactions.Conversion, Item: 1},
		},
		"mixed multi-item": {
			{Type: interactions.View, Item: 2},
			{Type: interactions.View, Item: 1},
			{Type: interactions.Cart, Item: 2},
		},
		"unknown item (fallback)": {{Type: interactions.View, Item: 999}},
	}
	for name, ctx := range contexts {
		for _, k := range []int{1, 3, 10} {
			mRecs, mSrc := mapBacked.RecommendWithSource("shop", ctx, k)
			fRecs, fSrc := flatBacked.RecommendWithSource("shop", ctx, k)
			label := fmt.Sprintf("%s k=%d", name, k)
			if mSrc != fSrc {
				t.Errorf("%s: source map=%v flat=%v", label, mSrc, fSrc)
			}
			if !reflect.DeepEqual(mRecs, fRecs) {
				t.Errorf("%s: recs diverge\n  map:  %+v\n  flat: %+v", label, mRecs, fRecs)
			}
		}
	}

	// Unknown retailer misses identically too.
	mRecs, mSrc := mapBacked.RecommendWithSource("ghost", nil, 5)
	fRecs, fSrc := flatBacked.RecommendWithSource("ghost", nil, 5)
	if mSrc != fSrc || !reflect.DeepEqual(mRecs, fRecs) {
		t.Errorf("unknown retailer: map=%+v/%v flat=%+v/%v", mRecs, mSrc, fRecs, fSrc)
	}
}
