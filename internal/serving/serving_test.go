package serving

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"

	"sigmund/internal/catalog"
	"sigmund/internal/core/hybrid"
	"sigmund/internal/core/inference"
	"sigmund/internal/interactions"
)

func scored(items ...catalog.ItemID) []hybrid.Scored {
	out := make([]hybrid.Scored, len(items))
	for i, it := range items {
		out[i] = hybrid.Scored{Item: it, Score: float64(len(items) - i)}
	}
	return out
}

// snapshotFixture: retailer "shop" with recs for items 1 and 2.
//
//	item 1: view -> [10, 11, 12], purchase -> [20, 21]
//	item 2: view -> [11, 13],     purchase -> [22]
func snapshotFixture() *Snapshot {
	return BuildSnapshot(7,
		map[catalog.RetailerID][]inference.ItemRecs{
			"shop": {
				{Item: 1, View: scored(10, 11, 12), Purchase: scored(20, 21)},
				{Item: 2, View: scored(11, 13), Purchase: scored(22)},
			},
		},
		map[catalog.RetailerID][]catalog.ItemID{
			"shop": {1, 2, 10},
		})
}

func TestRecommendSingleViewContext(t *testing.T) {
	s := NewServer()
	s.Publish(snapshotFixture())
	recs := s.Recommend("shop", interactions.Context{{Type: interactions.View, Item: 1}}, 10)
	if len(recs) != 3 {
		t.Fatalf("recs = %+v", recs)
	}
	if recs[0].Item != 10 || recs[1].Item != 11 || recs[2].Item != 12 {
		t.Fatalf("view list order broken: %+v", recs)
	}
}

func TestRecommendPurchaseSurface(t *testing.T) {
	s := NewServer()
	s.Publish(snapshotFixture())
	recs := s.Recommend("shop", interactions.Context{{Type: interactions.Conversion, Item: 1}}, 10)
	if len(recs) != 2 || recs[0].Item != 20 {
		t.Fatalf("purchase surface: %+v", recs)
	}
	// Cart also routes to the purchase surface.
	recs = s.Recommend("shop", interactions.Context{{Type: interactions.Cart, Item: 1}}, 10)
	if len(recs) != 2 || recs[0].Item != 20 {
		t.Fatalf("cart surface: %+v", recs)
	}
}

func TestRecommendBlendsContext(t *testing.T) {
	s := NewServer()
	s.Publish(snapshotFixture())
	// Context: viewed 1 (older), then 2 (newer). Item 11 appears in both
	// lists and should rank first.
	ctx := interactions.Context{
		{Type: interactions.View, Item: 1},
		{Type: interactions.View, Item: 2},
	}
	recs := s.Recommend("shop", ctx, 10)
	if len(recs) == 0 || recs[0].Item != 11 {
		t.Fatalf("blend: %+v", recs)
	}
	// Context items themselves are excluded even if recommended elsewhere.
	for _, r := range recs {
		if r.Item == 1 || r.Item == 2 {
			t.Fatalf("context item recommended back: %+v", recs)
		}
	}
}

func TestRecommendKLimit(t *testing.T) {
	s := NewServer()
	s.Publish(snapshotFixture())
	recs := s.Recommend("shop", interactions.Context{{Type: interactions.View, Item: 1}}, 2)
	if len(recs) != 2 {
		t.Fatalf("k limit: %+v", recs)
	}
	// k <= 0 defaults to 10.
	recs = s.Recommend("shop", interactions.Context{{Type: interactions.View, Item: 1}}, 0)
	if len(recs) != 3 {
		t.Fatalf("default k: %+v", recs)
	}
}

func TestRecommendFallbackToTopSellers(t *testing.T) {
	s := NewServer()
	s.Publish(snapshotFixture())
	// Unknown context item -> popularity fallback, minus context items.
	recs := s.Recommend("shop", interactions.Context{{Type: interactions.View, Item: 999}}, 2)
	if len(recs) != 2 || recs[0].Item != 1 || recs[1].Item != 2 {
		t.Fatalf("fallback: %+v", recs)
	}
	// Empty context -> same fallback.
	recs = s.Recommend("shop", nil, 1)
	if len(recs) != 1 || recs[0].Item != 1 {
		t.Fatalf("empty-context fallback: %+v", recs)
	}
	_, fb, _ := s.Stats()
	if fb != 2 {
		t.Fatalf("fallback counter = %d", fb)
	}
}

func TestRecommendUnknownRetailer(t *testing.T) {
	s := NewServer()
	s.Publish(snapshotFixture())
	if recs := s.Recommend("nope", nil, 5); recs != nil {
		t.Fatalf("unknown retailer: %+v", recs)
	}
	_, _, misses := s.Stats()
	if misses != 1 {
		t.Fatalf("miss counter = %d", misses)
	}
}

func TestPublishSwapsAtomically(t *testing.T) {
	s := NewServer()
	s.Publish(snapshotFixture())
	if s.Version() != 7 {
		t.Fatalf("version = %d", s.Version())
	}
	// Concurrent readers while publishing new generations.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				recs := s.Recommend("shop", interactions.Context{{Type: interactions.View, Item: 1}}, 10)
				// Either generation is fine; a torn read is not.
				if len(recs) != 0 && len(recs) != 3 {
					t.Errorf("torn read: %+v", recs)
					return
				}
			}
		}()
	}
	for v := int64(8); v < 40; v++ {
		snap := snapshotFixture()
		snap.Version = v
		s.Publish(snap)
	}
	close(stop)
	wg.Wait()
	if s.Version() != 39 {
		t.Fatalf("final version = %d", s.Version())
	}
}

func TestSnapshotString(t *testing.T) {
	if snapshotFixture().String() == "" {
		t.Fatal("empty description")
	}
}

func TestParseContext(t *testing.T) {
	ctx, err := ParseContext("view:3,search:17,cart:9,conversion:2,buy:4")
	if err != nil {
		t.Fatal(err)
	}
	if len(ctx) != 5 || ctx[0].Item != 3 || ctx[0].Type != interactions.View ||
		ctx[3].Type != interactions.Conversion || ctx[4].Type != interactions.Conversion {
		t.Fatalf("ParseContext = %+v", ctx)
	}
	if got, err := ParseContext(""); err != nil || got != nil {
		t.Fatal("empty context should parse to nil")
	}
	for _, bad := range []string{"view", "look:3", "view:x", "view:1,"} {
		if _, err := ParseContext(bad); err == nil {
			t.Fatalf("ParseContext(%q) succeeded", bad)
		}
	}
}

func TestHTTPRecommend(t *testing.T) {
	s := NewServer()
	s.Publish(snapshotFixture())
	h := NewHandler(s)

	req := httptest.NewRequest("GET", "/recommend?retailer=shop&context=view:1&k=2", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != 200 {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp struct {
		Retailer string           `json:"retailer"`
		Version  int64            `json:"version"`
		Recs     []Recommendation `json:"recommendations"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Retailer != "shop" || resp.Version != 7 || len(resp.Recs) != 2 || resp.Recs[0].Item != 10 {
		t.Fatalf("response: %+v", resp)
	}
}

func TestHTTPValidation(t *testing.T) {
	s := NewServer()
	s.Publish(snapshotFixture())
	h := NewHandler(s)
	cases := []string{
		"/recommend",                                // missing retailer
		"/recommend?retailer=shop&context=bogus",    // bad context
		"/recommend?retailer=shop&k=0",              // bad k
		"/recommend?retailer=shop&k=101",            // k too large
		"/recommend?retailer=shop&context=view:abc", // bad item id
	}
	for _, url := range cases {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", url, nil))
		if w.Code != 400 {
			t.Fatalf("%s -> %d, want 400", url, w.Code)
		}
	}
}

func TestHTTPHealthAndStats(t *testing.T) {
	s := NewServer()
	s.Publish(snapshotFixture())
	h := NewHandler(s)

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/healthz", nil))
	if w.Code != 200 || w.Body.String() != "ok\n" {
		t.Fatalf("healthz: %d %q", w.Code, w.Body.String())
	}

	// Generate a request, then check counters.
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/recommend?retailer=shop&context=view:1", nil))
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/statz", nil))
	var stats struct {
		Version  int64 `json:"version"`
		Requests int64 `json:"requests"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Version != 7 || stats.Requests != 1 {
		t.Fatalf("statz: %+v", stats)
	}
}

func TestIsLateFunnel(t *testing.T) {
	cases := []struct {
		name string
		ctx  interactions.Context
		want bool
	}{
		{"empty", nil, false},
		{"single view", interactions.Context{{Type: interactions.View, Item: 1}}, false},
		{"browsing different items", interactions.Context{
			{Type: interactions.View, Item: 1}, {Type: interactions.View, Item: 2}, {Type: interactions.View, Item: 3},
		}, false},
		{"searched and revisited", interactions.Context{
			{Type: interactions.View, Item: 1}, {Type: interactions.Search, Item: 1},
		}, true},
		{"cart plus repeat views", interactions.Context{
			{Type: interactions.View, Item: 5}, {Type: interactions.View, Item: 5}, {Type: interactions.Cart, Item: 5},
		}, true},
		{"repeat views without intent", interactions.Context{
			{Type: interactions.View, Item: 5}, {Type: interactions.View, Item: 5},
		}, false},
		{"old search scrolled out of the intent window", interactions.Context{
			{Type: interactions.Search, Item: 1}, {Type: interactions.View, Item: 2},
			{Type: interactions.View, Item: 3}, {Type: interactions.View, Item: 4},
		}, false},
	}
	for _, tt := range cases {
		if got := IsLateFunnel(tt.ctx); got != tt.want {
			t.Errorf("%s: IsLateFunnel = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestRecommendLateFunnelSurface(t *testing.T) {
	s := NewServer()
	snap := BuildSnapshot(1,
		map[catalog.RetailerID][]inference.ItemRecs{
			"shop": {
				{Item: 1,
					View:       scored(10, 11, 12),
					Purchase:   scored(20),
					LateFunnel: scored(12)},
			},
		}, nil)
	s.Publish(snap)
	// Early funnel (single view): broad surface.
	recs := s.Recommend("shop", interactions.Context{{Type: interactions.View, Item: 1}}, 10)
	if len(recs) != 3 {
		t.Fatalf("early funnel got %+v", recs)
	}
	// Late funnel (search + repeat on item 1): constrained surface.
	ctx := interactions.Context{
		{Type: interactions.View, Item: 1},
		{Type: interactions.Search, Item: 1},
	}
	recs = s.Recommend("shop", ctx, 10)
	if len(recs) != 1 || recs[0].Item != 12 {
		t.Fatalf("late funnel got %+v", recs)
	}
	// Cart actions still use the purchase surface even in late funnel.
	ctx = interactions.Context{
		{Type: interactions.Cart, Item: 1},
		{Type: interactions.Cart, Item: 1},
	}
	recs = s.Recommend("shop", ctx, 10)
	if len(recs) != 1 || recs[0].Item != 20 {
		t.Fatalf("purchase surface got %+v", recs)
	}
}

func TestSnapshotAccessor(t *testing.T) {
	s := NewServer()
	snap := snapshotFixture()
	s.Publish(snap)
	if s.Snapshot() != snap {
		t.Fatal("Snapshot accessor returned a different generation")
	}
	// Publishing a snapshot with nil retailers must not panic requests.
	s.Publish(&Snapshot{Version: 9})
	if got := s.Recommend("shop", nil, 3); got != nil {
		t.Fatalf("empty snapshot served %v", got)
	}
}

func TestPublishCarriesForwardDegradedTenant(t *testing.T) {
	s := NewServer()
	s.Publish(snapshotFixture()) // v7: fresh recs for "shop"
	prevRecs := s.Snapshot().Retailers["shop"]

	// Next generation has no fresh recs for "shop" (its cycle failed) but
	// marks it degraded: Publish must carry the previous recs forward and
	// keep the original materialization version visible.
	next := BuildSnapshot(8, nil, nil)
	next.MarkDegraded("shop", "train", false)
	s.Publish(next)

	if s.Snapshot().Retailers["shop"] != prevRecs {
		t.Fatal("degraded tenant's recs not carried forward")
	}
	st := s.TenantStatuses()["shop"]
	if !st.Degraded || st.DegradedPhase != "train" || st.RecsVersion != 7 {
		t.Fatalf("status = %+v", st)
	}
	if got := s.SnapshotAge("shop"); got != 1 {
		t.Fatalf("SnapshotAge = %d", got)
	}

	// Requests keep being answered, counted as stale serves.
	recs := s.Recommend("shop", interactions.Context{{Type: interactions.View, Item: 1}}, 10)
	if len(recs) != 3 {
		t.Fatalf("stale serve returned %+v", recs)
	}
	if s.StaleServes() != 1 {
		t.Fatalf("StaleServes = %d", s.StaleServes())
	}

	// Staleness compounds across generations until a fresh publish.
	n2 := BuildSnapshot(9, nil, nil)
	n2.MarkDegraded("shop", "train", true)
	s.Publish(n2)
	if got := s.SnapshotAge("shop"); got != 2 {
		t.Fatalf("SnapshotAge after second degraded day = %d", got)
	}
	if st := s.TenantStatuses()["shop"]; !st.Quarantined {
		t.Fatalf("status = %+v", st)
	}

	// A healthy day restores fresh serving.
	s.Publish(snapshotFixture())
	if got := s.SnapshotAge("shop"); got != 0 {
		t.Fatalf("SnapshotAge after recovery = %d", got)
	}
	if st := s.TenantStatuses()["shop"]; st.Degraded {
		t.Fatalf("still degraded after recovery: %+v", st)
	}
}

func TestPublishDropsNeverSeenDegradedTenant(t *testing.T) {
	// A degraded tenant with no previous generation to fall back on simply
	// has nothing to serve — no panic, a miss at request time.
	s := NewServer()
	snap := BuildSnapshot(1, nil, nil)
	snap.MarkDegraded("ghost", "staging", false)
	s.Publish(snap)
	if got := s.Recommend("ghost", nil, 5); got != nil {
		t.Fatalf("ghost tenant served %v", got)
	}
}

func TestRecommendWithSourceFallbackChain(t *testing.T) {
	s := NewServer()
	s.Publish(snapshotFixture())

	// Context item with materialized lists -> model.
	recs, src := s.RecommendWithSource("shop", interactions.Context{{Type: interactions.View, Item: 1}}, 5)
	if src != SourceModel || len(recs) == 0 {
		t.Fatalf("src = %q recs = %+v", src, recs)
	}
	// Unknown context item -> top-sellers fallback.
	recs, src = s.RecommendWithSource("shop", interactions.Context{{Type: interactions.View, Item: 999}}, 5)
	if src != SourceTopSellers || len(recs) == 0 {
		t.Fatalf("src = %q recs = %+v", src, recs)
	}
	// Unknown retailer -> nothing.
	if _, src = s.RecommendWithSource("nope", nil, 5); src != SourceNone {
		t.Fatalf("src = %q", src)
	}
}

func TestHealthzReportsDegradedTenants(t *testing.T) {
	s := NewServer()
	s.Publish(snapshotFixture())
	snap := BuildSnapshot(8, nil, nil)
	snap.MarkDegraded("shop", "train", false)
	snap.MarkDegraded("other", "infer", true)
	s.Publish(snap)

	w := httptest.NewRecorder()
	NewHandler(s).ServeHTTP(w, httptest.NewRequest("GET", "/healthz", nil))
	if w.Code != 200 {
		t.Fatalf("healthz while degraded: %d", w.Code)
	}
	body := w.Body.String()
	want := "degraded\ndegraded: shop\nquarantined: other\n"
	if body != want {
		t.Fatalf("healthz body = %q, want %q", body, want)
	}

	// /statz lists both, with quarantined tenants in both lists.
	w = httptest.NewRecorder()
	NewHandler(s).ServeHTTP(w, httptest.NewRequest("GET", "/statz", nil))
	var statz struct {
		Degraded    []string `json:"degraded"`
		Quarantined []string `json:"quarantined"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &statz); err != nil {
		t.Fatal(err)
	}
	if len(statz.Degraded) != 2 || len(statz.Quarantined) != 1 || statz.Quarantined[0] != "other" {
		t.Fatalf("statz = %+v", statz)
	}
}
