// Package serving implements Sigmund's serving system: materialized
// recommendations loaded into memory and swapped atomically in batch after
// each inference run (Section V: the serving infrastructure "can now be
// optimized for batch-updates every time we have the inference job
// complete"), answering low-latency requests that blend the per-item
// recommendation lists of the user's recent context.
package serving

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"sigmund/internal/catalog"
	"sigmund/internal/core/inference"
	"sigmund/internal/interactions"
	"sigmund/internal/mapreduce"
	"sigmund/internal/obs"
	"sigmund/internal/segment"
)

// RetailerRecs is one retailer's materialized recommendation data, in one
// of two representations:
//
//   - map-backed: Recs/TopSellers hold decoded heap values. The pipeline
//     builds snapshots this way, and v1 segments decode into it.
//   - flat-backed: Flat is a zero-copy view over a v2 segment's bytes;
//     Recs is nil and lookups read the mmap-shaped slice directly. Store
//     replicas serve this form — no per-tenant map is ever rebuilt.
//
// Exactly one representation is populated. The blend path handles both;
// everything else goes through NumItems and the top-seller accessors.
type RetailerRecs struct {
	// Recs maps a query item to its two ranked lists (map-backed form).
	Recs map[catalog.ItemID]inference.ItemRecs
	// TopSellers is the popularity-ordered fallback for empty/unknown
	// contexts (new users with no history at all; map-backed form).
	TopSellers []catalog.ItemID
	// Flat is the zero-copy v2 segment view (flat-backed form).
	Flat *segment.Flat
}

// NumItems returns how many query items the retailer's data indexes,
// regardless of representation.
func (rr *RetailerRecs) NumItems() int {
	if rr.Flat != nil {
		return rr.Flat.NumItems()
	}
	return len(rr.Recs)
}

func (rr *RetailerRecs) numTopSellers() int {
	if rr.Flat != nil {
		return rr.Flat.NumTopSellers()
	}
	return len(rr.TopSellers)
}

func (rr *RetailerRecs) topSeller(i int) catalog.ItemID {
	if rr.Flat != nil {
		return rr.Flat.TopSeller(i)
	}
	return rr.TopSellers[i]
}

// TenantStatus describes one retailer's health within a snapshot
// generation: whether its daily cycle degraded, whether it is quarantined,
// and which generation its recommendations were actually materialized in
// (older than the snapshot's own version when they were carried forward).
type TenantStatus struct {
	// Degraded marks a retailer whose pipeline cycle failed this
	// generation; its recommendations are carried forward from the last
	// good generation (stale-but-serving).
	Degraded bool
	// Quarantined marks a retailer the pipeline has quarantined after
	// repeated failures.
	Quarantined bool
	// Canary marks a retailer whose fresh recommendations the guard sent
	// to a live canary: the sharded store routes only a deterministic
	// hash-slice of the tenant's requests to them while the rest keep
	// serving the previous generation. The single-node server ignores
	// the flag — it has no per-request routing.
	Canary bool
	// CanaryFraction is the slice of requests routed to the canary arm.
	CanaryFraction float64
	// DegradedPhase is the pipeline phase that failed ("staging",
	// "train", "infer", "quarantine"); empty for healthy tenants.
	DegradedPhase string
	// RecsVersion is the snapshot version in which this retailer's
	// recommendations were materialized. Equal to the snapshot's Version
	// for fresh tenants; older for carried-forward ones.
	RecsVersion int64
}

// Snapshot is an immutable generation of the whole store. Requests read
// whichever snapshot was current when they arrived; Publish swaps
// generations atomically.
type Snapshot struct {
	Version   int64
	Retailers map[catalog.RetailerID]*RetailerRecs
	// Status carries per-retailer health metadata alongside the recs.
	// Entries may be absent for hand-built snapshots; Publish fills them.
	Status map[catalog.RetailerID]*TenantStatus
	// Rolling marks a partial-fleet publish (the continuous scheduler
	// refreshing one tenant): retailers absent from this snapshot carry
	// forward from the previous generation instead of dropping out of
	// service. The daily pipeline publishes whole-fleet snapshots with
	// Rolling false.
	Rolling bool
}

// MarkDegraded flags a retailer as degraded in this snapshot. Publish uses
// the mark to carry the retailer's previous recommendations forward
// (stale-but-serving) instead of dropping it from service.
func (sn *Snapshot) MarkDegraded(r catalog.RetailerID, phase string, quarantined bool) {
	if sn.Status == nil {
		sn.Status = map[catalog.RetailerID]*TenantStatus{}
	}
	sn.Status[r] = &TenantStatus{
		Degraded:      true,
		Quarantined:   quarantined,
		DegradedPhase: phase,
		RecsVersion:   sn.Version,
	}
}

// Server answers recommendation requests from the current snapshot. The
// zero value is not usable; call NewServer.
type Server struct {
	snap atomic.Pointer[Snapshot]

	requests    atomic.Int64
	fallback    atomic.Int64
	misses      atomic.Int64
	staleServes atomic.Int64

	// jobCounters accumulates MapReduce counters across every pipeline job
	// that fed this server — exposed on /statz so operators can see worker
	// preemptions, lease expiries, and speculative execution fleet-wide.
	jobMu       sync.Mutex
	jobCounters mapreduce.Counters

	// obs is the observability surface /metrics and /tracez expose; the
	// request counters above remain the /statz-compatible view while the
	// registry carries the same signals fleet-wide.
	obs *obs.Observer
	om  servingMetrics

	// resume is the last completed day's crash-recovery metadata, set by
	// the pipeline when day journaling is on; exposed as the /statz
	// "resume" block.
	resume atomic.Pointer[ResumeInfo]

	// guard is the last completed day's quality-firewall summary, set by
	// the pipeline when the guard is on; exposed as the /statz "guard"
	// block.
	guard atomic.Pointer[GuardInfo]

	// freshness is the fleet's latest per-tier staleness summary, set by
	// whichever scheduling path published (the daily loop or the
	// continuous scheduler); exposed as the /statz "freshness" block.
	freshness atomic.Pointer[FreshnessInfo]
}

// ResumeInfo is one day's crash-recovery metadata: whether the day
// resumed from a durable journal, and how much committed work the resume
// reused instead of re-executing.
type ResumeInfo struct {
	// Day is the pipeline day this information describes.
	Day int `json:"day"`
	// Resumed is true when the day continued from a journal left by a
	// crashed coordinator rather than starting fresh.
	Resumed bool `json:"resumed"`
	// RecordsReplayed is how many journal records the resume replayed.
	RecordsReplayed int `json:"records_replayed"`
	// CellsSkipped counts training cells whose committed outputs were
	// reused instead of re-executed.
	CellsSkipped int `json:"cells_skipped"`
	// TenantsReplayed counts tenants whose staged plan was reused.
	TenantsReplayed int `json:"tenants_replayed"`
	// JournalRecords is the journal's total record count after the day
	// completed.
	JournalRecords int `json:"journal_records"`
}

// GuardInfo is one day's model-quality-firewall summary: how many
// candidate generations were evaluated and what the guard decided. Set by
// the pipeline after publish; exposed as the /statz "guard" block.
type GuardInfo struct {
	// Day is the pipeline day this information describes.
	Day int `json:"day"`
	// Evaluated counts tenants whose candidate generation the guard
	// examined.
	Evaluated int `json:"evaluated"`
	// Passed counts candidates published without restriction.
	Passed int `json:"passed"`
	// Vetoed lists tenants whose candidate was refused (they carry
	// forward the previous generation).
	Vetoed []string `json:"vetoed,omitempty"`
	// Canaried lists tenants publishing behind a live canary slice.
	Canaried []string `json:"canaried,omitempty"`
	// VetoReasons counts vetoes by the gate that tripped.
	VetoReasons map[string]int `json:"veto_reasons,omitempty"`
}

// TierFreshness is one freshness tier's staleness summary: how far past
// each cycle's due time its tenants' fresh data became servable.
type TierFreshness struct {
	// Tenants in this tier.
	Tenants int `json:"tenants"`
	// Publishes completed for this tier.
	Publishes int `json:"publishes"`
	// MeanStalenessSeconds / P99StalenessSeconds / MaxStalenessSeconds
	// summarize publish staleness (virtual seconds under the continuous
	// scheduler, wall seconds under the daily loop).
	MeanStalenessSeconds float64 `json:"mean_staleness_seconds"`
	P99StalenessSeconds  float64 `json:"p99_staleness_seconds"`
	MaxStalenessSeconds  float64 `json:"max_staleness_seconds"`
	// MaxDispatchWaitSeconds is the longest a job in this tier sat ready
	// in the queue before dispatch (continuous scheduler only).
	MaxDispatchWaitSeconds float64 `json:"max_dispatch_wait_seconds,omitempty"`
}

// FreshnessInfo is the fleet's per-tier data-freshness summary, set by
// whichever scheduling path drives publishes; exposed as the /statz
// "freshness" block.
type FreshnessInfo struct {
	// Path names the producer: "sched" (continuous scheduler) or "daily"
	// (the legacy synchronized loop, which is all one implicit daily
	// tier).
	Path string `json:"path"`
	// VirtualHours is the scheduler's elapsed virtual time (0 on the
	// daily path).
	VirtualHours float64 `json:"virtual_hours,omitempty"`
	// Tiers summarizes staleness per freshness tier.
	Tiers map[string]TierFreshness `json:"tiers"`
}

// IntegrityInfo is the store's storage-integrity summary: what the
// scrubber and the verified load/publish paths have detected and healed.
// Exposed as the /statz "integrity" block.
type IntegrityInfo struct {
	// Scrubbed counts blobs whose integrity a scrub pass verified.
	Scrubbed int64 `json:"scrubbed"`
	// Corrupt counts detected corruption incidents: footer or structural
	// verification failures, and referenced blobs found missing.
	Corrupt int64 `json:"corrupt"`
	// Repaired counts incidents healed — by re-read, peer
	// re-replication, or rewrite.
	Repaired int64 `json:"repaired"`
	// Fallbacks counts tenant loads that served their previous
	// generation because the fresh segment was unrepairable.
	Fallbacks int64 `json:"integrity_fallbacks"`
	// OrphansGCed counts unreferenced blobs the scrubber deleted.
	OrphansGCed int64 `json:"orphans_gced"`
	// ScrubPasses counts completed scrub passes.
	ScrubPasses int64 `json:"scrub_passes"`
	// Quarantined lists blob paths currently detected-corrupt and not
	// yet repaired.
	Quarantined []string `json:"quarantined,omitempty"`
}

// servingMetrics are the registry handles the server reports through
// (nil no-ops when the observer carries no registry).
type servingMetrics struct {
	requests    *obs.Counter
	fallbacks   *obs.Counter
	misses      *obs.Counter
	staleServes *obs.Counter
	publishes   *obs.Counter
	version     *obs.Gauge
	tenants     *obs.Gauge
	degraded    *obs.Gauge
	quarantined *obs.Gauge
}

func newServingMetrics(reg *obs.Registry) servingMetrics {
	return servingMetrics{
		requests:    reg.Counter("sigmund_serving_requests_total", "Recommendation requests served."),
		fallbacks:   reg.Counter("sigmund_serving_fallbacks_total", "Requests answered from the top-sellers fallback."),
		misses:      reg.Counter("sigmund_serving_misses_total", "Requests with nothing to return (unknown retailer or empty store)."),
		staleServes: reg.Counter("sigmund_serving_stale_serves_total", "Requests answered from a degraded tenant's carried-forward recommendations."),
		publishes:   reg.Counter("sigmund_serving_snapshot_publishes_total", "Snapshot generations published."),
		version:     reg.Gauge("sigmund_serving_snapshot_version", "Current serving snapshot version."),
		tenants:     reg.Gauge("sigmund_serving_tenants", "Retailers in the current snapshot."),
		degraded:    reg.Gauge("sigmund_serving_tenants_degraded", "Retailers serving stale after a degraded cycle."),
		quarantined: reg.Gauge("sigmund_serving_tenants_quarantined", "Retailers currently quarantined."),
	}
}

// NewServer returns a server with an empty snapshot and a private
// observability surface.
func NewServer() *Server {
	return NewServerWithObs(obs.NewObserver())
}

// NewServerWithObs returns a server reporting into the given observer —
// the daily pipeline and the serving layer share one, so /metrics and
// /tracez cover the whole stack. A nil observer disables /metrics and
// /tracez but keeps all /statz counters working.
func NewServerWithObs(o *obs.Observer) *Server {
	s := &Server{obs: o, om: newServingMetrics(o.Reg())}
	s.snap.Store(&Snapshot{
		Retailers: map[catalog.RetailerID]*RetailerRecs{},
		Status:    map[catalog.RetailerID]*TenantStatus{},
	})
	return s
}

// Observer returns the server's observability surface (may be nil).
func (s *Server) Observer() *obs.Observer { return s.obs }

// SetResumeInfo records the last completed day's crash-recovery metadata
// (the pipeline calls this when day journaling is on).
func (s *Server) SetResumeInfo(info ResumeInfo) {
	s.resume.Store(&info)
}

// ResumeInfo returns the last completed day's crash-recovery metadata.
func (s *Server) ResumeInfo() (ResumeInfo, bool) {
	p := s.resume.Load()
	if p == nil {
		return ResumeInfo{}, false
	}
	return *p, true
}

// SetGuardInfo records the last completed day's quality-firewall summary
// (the pipeline calls this when the guard is on).
func (s *Server) SetGuardInfo(info GuardInfo) {
	s.guard.Store(&info)
}

// GuardInfo returns the last completed day's quality-firewall summary.
func (s *Server) GuardInfo() (GuardInfo, bool) {
	p := s.guard.Load()
	if p == nil {
		return GuardInfo{}, false
	}
	return *p, true
}

// SetFreshnessInfo records the fleet's latest per-tier staleness summary
// (either scheduling path calls this after publishing).
func (s *Server) SetFreshnessInfo(info FreshnessInfo) {
	s.freshness.Store(&info)
}

// FreshnessInfo returns the fleet's latest per-tier staleness summary.
func (s *Server) FreshnessInfo() (FreshnessInfo, bool) {
	p := s.freshness.Load()
	if p == nil {
		return FreshnessInfo{}, false
	}
	return *p, true
}

// StatzBlocks implements StatzExtension: a "resume" block appears once
// the pipeline has completed a journaled day, a "guard" block once the
// quality firewall has run, a "freshness" block once either scheduling
// path has published.
func (s *Server) StatzBlocks() map[string]any {
	blocks := map[string]any{}
	if info, ok := s.ResumeInfo(); ok {
		blocks["resume"] = info
	}
	if info, ok := s.GuardInfo(); ok {
		blocks["guard"] = info
	}
	if info, ok := s.FreshnessInfo(); ok {
		blocks["freshness"] = info
	}
	return blocks
}

// Publish atomically replaces the serving snapshot — the batch update at
// the end of the daily pipeline. In-flight requests keep reading the old
// generation.
//
// Graceful degradation happens here: a retailer marked degraded (see
// Snapshot.MarkDegraded) that has no fresh recommendations inherits the
// previous generation's RetailerRecs — including its original
// materialization version, so staleness is observable — rather than
// disappearing from service. RetailerRecs are immutable once published, so
// sharing them across generations is safe.
func (s *Server) Publish(snap *Snapshot) {
	if snap.Retailers == nil {
		snap.Retailers = map[catalog.RetailerID]*RetailerRecs{}
	}
	if snap.Status == nil {
		snap.Status = map[catalog.RetailerID]*TenantStatus{}
	}
	if snap.Rolling {
		// Rolling publish: every retailer the snapshot doesn't mention
		// keeps serving its previous generation — recs pointer shared
		// (immutable once published), status copied so later publishes
		// can't mutate history.
		if prev := s.snap.Load(); prev != nil {
			for r, rr := range prev.Retailers {
				if snap.Retailers[r] != nil || snap.Status[r] != nil {
					continue
				}
				snap.Retailers[r] = rr
				if pst := prev.Status[r]; pst != nil {
					cp := *pst
					snap.Status[r] = &cp
				} else {
					snap.Status[r] = &TenantStatus{RecsVersion: prev.Version}
				}
			}
		}
	}
	for r := range snap.Retailers {
		if snap.Status[r] == nil {
			snap.Status[r] = &TenantStatus{RecsVersion: snap.Version}
		}
	}
	if prev := s.snap.Load(); prev != nil {
		for r, st := range snap.Status {
			if !st.Degraded || snap.Retailers[r] != nil {
				continue
			}
			old := prev.Retailers[r]
			if old == nil {
				continue
			}
			snap.Retailers[r] = old
			if pst := prev.Status[r]; pst != nil {
				st.RecsVersion = pst.RecsVersion
			} else {
				st.RecsVersion = prev.Version
			}
		}
	}
	s.snap.Store(snap)

	s.om.publishes.Inc()
	s.om.version.Set(float64(snap.Version))
	s.om.tenants.Set(float64(len(snap.Retailers)))
	var degraded, quarantined int
	for _, st := range snap.Status {
		if st.Degraded {
			degraded++
		}
		if st.Quarantined {
			quarantined++
		}
	}
	s.om.degraded.Set(float64(degraded))
	s.om.quarantined.Set(float64(quarantined))
}

// Snapshot returns the current generation (for inspection; treat as
// read-only).
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// Version returns the current snapshot's version.
func (s *Server) Version() int64 { return s.snap.Load().Version }

// Stats reports request counters: total requests, fallback answers
// (top-sellers), and misses (unknown retailer / nothing to return).
func (s *Server) Stats() (requests, fallbacks, misses int64) {
	return s.requests.Load(), s.fallback.Load(), s.misses.Load()
}

// StaleServes reports how many requests were answered from carried-forward
// (stale) recommendations of a degraded tenant.
func (s *Server) StaleServes() int64 { return s.staleServes.Load() }

// AddJobCounters rolls one pipeline job's (or day's) MapReduce counters
// into the server's running totals.
func (s *Server) AddJobCounters(c mapreduce.Counters) {
	s.jobMu.Lock()
	s.jobCounters.Add(c)
	s.jobMu.Unlock()
}

// JobCounters returns the accumulated MapReduce counters.
func (s *Server) JobCounters() mapreduce.Counters {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	return s.jobCounters
}

// TenantStatuses returns a copy of the current snapshot's per-retailer
// health metadata.
func (s *Server) TenantStatuses() map[catalog.RetailerID]TenantStatus {
	snap := s.snap.Load()
	out := make(map[catalog.RetailerID]TenantStatus, len(snap.Status))
	for r, st := range snap.Status {
		out[r] = *st
	}
	return out
}

// SnapshotAge returns how many generations a retailer's served
// recommendations lag the current snapshot (0 = fresh, -1 = unknown
// retailer).
func (s *Server) SnapshotAge(r catalog.RetailerID) int64 {
	snap := s.snap.Load()
	st := snap.Status[r]
	if st == nil {
		if snap.Retailers[r] == nil {
			return -1
		}
		return 0
	}
	return snap.Version - st.RecsVersion
}

// Recommendation is one served item.
type Recommendation struct {
	Item  catalog.ItemID `json:"item"`
	Score float64        `json:"score"`
}

// Source identifies which rung of the serving fallback chain produced an
// answer: the materialized model lists, the top-sellers popularity
// fallback, or nothing.
type Source string

const (
	SourceModel      Source = "model"
	SourceTopSellers Source = "top-sellers"
	SourceNone       Source = "none"
)

// Recommend returns up to k recommendations for a user context at the
// given retailer. The context's items vote with their materialized lists —
// purchase-surface lists for cart/conversion actions, view-surface lists
// otherwise — with recency-decayed weights; items already in the context
// are never recommended back.
func (s *Server) Recommend(r catalog.RetailerID, ctx interactions.Context, k int) []Recommendation {
	recs, _ := s.RecommendWithSource(r, ctx, k)
	return recs
}

// blendScratch is the pooled per-request working set of the blend: the
// vote accumulator and the pre-sort candidate buffer. Pooling it keeps the
// hot path's only per-request allocation the result slice that escapes to
// the client.
type blendScratch struct {
	scores map[catalog.ItemID]float64
	cand   []Recommendation
}

var blendPool = sync.Pool{New: func() any {
	return &blendScratch{scores: make(map[catalog.ItemID]float64, 64)}
}}

// ctxContains reports whether an item appears in the (≤ context-length)
// user context; a linear scan beats a per-request membership map.
func ctxContains(ctx interactions.Context, it catalog.ItemID) bool {
	for i := range ctx {
		if ctx[i].Item == it {
			return true
		}
	}
	return false
}

// RecommendWithSource is Recommend plus the fallback rung that answered:
// the materialized model lists when any context item has one, then the
// co-occurrence-seeded top-sellers list, then nothing. Degraded tenants are
// served from their carried-forward snapshot transparently (counted in
// StaleServes).
func (s *Server) RecommendWithSource(r catalog.RetailerID, ctx interactions.Context, k int) ([]Recommendation, Source) {
	s.requests.Add(1)
	s.om.requests.Inc()
	if k <= 0 {
		k = 10
	}
	snap := s.snap.Load()
	rr := snap.Retailers[r]
	if rr == nil {
		s.misses.Add(1)
		s.om.misses.Inc()
		return nil, SourceNone
	}
	if st := snap.Status[r]; st != nil && st.Degraded {
		s.staleServes.Add(1)
		s.om.staleServes.Inc()
	}
	if len(ctx) > interactions.DefaultContextLength {
		ctx = ctx.Truncate(interactions.DefaultContextLength)
	}

	sc := blendPool.Get().(*blendScratch)
	scores := sc.scores
	lateFunnel := IsLateFunnel(ctx)
	const decay = 0.8
	w := 1.0
	for j := len(ctx) - 1; j >= 0; j-- {
		a := ctx[j]
		if rr.Flat != nil {
			if ls, ok := rr.Flat.Lookup(a.Item); ok {
				list := ls.View
				if lateFunnel && ls.LateFunnel.Len() > 0 {
					// Deep-funnel users get the facet-constrained surface
					// (Section III-D1's late-funnel tightening).
					list = ls.LateFunnel
				}
				if a.Type >= interactions.Cart {
					list = ls.Purchase
				}
				n := list.Len()
				for pos := 0; pos < n; pos++ {
					it := list.Item(pos)
					if ctxContains(ctx, it) {
						continue
					}
					// Positional vote: earlier slots in a list count more.
					scores[it] += w * float64(n-pos)
				}
			}
		} else if ir, ok := rr.Recs[a.Item]; ok {
			list := ir.View
			if lateFunnel && len(ir.LateFunnel) > 0 {
				list = ir.LateFunnel
			}
			if a.Type >= interactions.Cart {
				list = ir.Purchase
			}
			for pos, rec := range list {
				if ctxContains(ctx, rec.Item) {
					continue
				}
				scores[rec.Item] += w * float64(len(list)-pos)
			}
		}
		w *= decay
	}

	if len(scores) == 0 {
		blendPool.Put(sc)
		s.fallback.Add(1)
		s.om.fallbacks.Inc()
		out := make([]Recommendation, 0, k)
		for i, n := 0, rr.numTopSellers(); i < n; i++ {
			it := rr.topSeller(i)
			if ctxContains(ctx, it) {
				continue
			}
			out = append(out, Recommendation{Item: it})
			if len(out) == k {
				break
			}
		}
		if len(out) == 0 {
			s.misses.Add(1)
			s.om.misses.Inc()
			return out, SourceNone
		}
		return out, SourceTopSellers
	}

	cand := sc.cand[:0]
	for it, score := range scores {
		cand = append(cand, Recommendation{Item: it, Score: score})
	}
	slices.SortFunc(cand, func(a, b Recommendation) int {
		switch {
		case a.Score > b.Score:
			return -1
		case a.Score < b.Score:
			return 1
		case a.Item < b.Item:
			return -1
		case a.Item > b.Item:
			return 1
		}
		return 0
	})
	if len(cand) > k {
		cand = cand[:k]
	}
	out := make([]Recommendation, len(cand))
	copy(out, cand)
	sc.cand = cand[:0]
	clear(sc.scores)
	blendPool.Put(sc)
	return out, SourceModel
}

// IsLateFunnel classifies a context as deep in the purchase funnel: the
// user's recent actions show focused intent — a search or cart among the
// last three actions, with repeated attention to the same item. Early
// browsers get the broad view surface; late-funnel users get candidates
// "constrained to have the same item facets" (Section III-D1).
func IsLateFunnel(ctx interactions.Context) bool {
	if len(ctx) < 2 {
		return false
	}
	tail := ctx
	if len(tail) > 3 {
		tail = tail[len(tail)-3:]
	}
	intent := false
	for _, a := range tail {
		if a.Type >= interactions.Search {
			intent = true
			break
		}
	}
	if !intent {
		return false
	}
	// Repeated attention: some item appears twice in the recent context.
	// The window is at most five actions, so a quadratic scan is cheaper
	// than a per-request map.
	recent := ctx
	if len(recent) > 5 {
		recent = recent[len(recent)-5:]
	}
	for i := range recent {
		for j := i + 1; j < len(recent); j++ {
			if recent[i].Item == recent[j].Item {
				return true
			}
		}
	}
	return false
}

// BuildSnapshot assembles a snapshot from per-retailer materialized
// outputs and popularity stats.
func BuildSnapshot(version int64, per map[catalog.RetailerID][]inference.ItemRecs, pop map[catalog.RetailerID][]catalog.ItemID) *Snapshot {
	snap := &Snapshot{
		Version:   version,
		Retailers: map[catalog.RetailerID]*RetailerRecs{},
		Status:    map[catalog.RetailerID]*TenantStatus{},
	}
	for r, items := range per {
		rr := &RetailerRecs{Recs: make(map[catalog.ItemID]inference.ItemRecs, len(items))}
		for _, ir := range items {
			rr.Recs[ir.Item] = ir
		}
		rr.TopSellers = pop[r]
		snap.Retailers[r] = rr
		snap.Status[r] = &TenantStatus{RecsVersion: version}
	}
	return snap
}

// String describes the snapshot for logs.
func (sn *Snapshot) String() string {
	items, degraded := 0, 0
	for _, rr := range sn.Retailers {
		items += rr.NumItems()
	}
	for _, st := range sn.Status {
		if st.Degraded {
			degraded++
		}
	}
	return fmt.Sprintf("snapshot{v%d retailers=%d items=%d degraded=%d}", sn.Version, len(sn.Retailers), items, degraded)
}
