// Package serving implements Sigmund's serving system: materialized
// recommendations loaded into memory and swapped atomically in batch after
// each inference run (Section V: the serving infrastructure "can now be
// optimized for batch-updates every time we have the inference job
// complete"), answering low-latency requests that blend the per-item
// recommendation lists of the user's recent context.
package serving

import (
	"fmt"
	"sort"
	"sync/atomic"

	"sigmund/internal/catalog"
	"sigmund/internal/core/inference"
	"sigmund/internal/interactions"
)

// RetailerRecs is one retailer's materialized recommendation data.
type RetailerRecs struct {
	// Recs maps a query item to its two ranked lists.
	Recs map[catalog.ItemID]inference.ItemRecs
	// TopSellers is the popularity-ordered fallback for empty/unknown
	// contexts (new users with no history at all).
	TopSellers []catalog.ItemID
}

// Snapshot is an immutable generation of the whole store. Requests read
// whichever snapshot was current when they arrived; Publish swaps
// generations atomically.
type Snapshot struct {
	Version   int64
	Retailers map[catalog.RetailerID]*RetailerRecs
}

// Server answers recommendation requests from the current snapshot. The
// zero value is not usable; call NewServer.
type Server struct {
	snap atomic.Pointer[Snapshot]

	requests atomic.Int64
	fallback atomic.Int64
	misses   atomic.Int64
}

// NewServer returns a server with an empty snapshot.
func NewServer() *Server {
	s := &Server{}
	s.snap.Store(&Snapshot{Retailers: map[catalog.RetailerID]*RetailerRecs{}})
	return s
}

// Publish atomically replaces the serving snapshot — the batch update at
// the end of the daily pipeline. In-flight requests keep reading the old
// generation.
func (s *Server) Publish(snap *Snapshot) {
	if snap.Retailers == nil {
		snap.Retailers = map[catalog.RetailerID]*RetailerRecs{}
	}
	s.snap.Store(snap)
}

// Snapshot returns the current generation (for inspection; treat as
// read-only).
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// Version returns the current snapshot's version.
func (s *Server) Version() int64 { return s.snap.Load().Version }

// Stats reports request counters: total requests, fallback answers
// (top-sellers), and misses (unknown retailer / nothing to return).
func (s *Server) Stats() (requests, fallbacks, misses int64) {
	return s.requests.Load(), s.fallback.Load(), s.misses.Load()
}

// Recommendation is one served item.
type Recommendation struct {
	Item  catalog.ItemID `json:"item"`
	Score float64        `json:"score"`
}

// Recommend returns up to k recommendations for a user context at the
// given retailer. The context's items vote with their materialized lists —
// purchase-surface lists for cart/conversion actions, view-surface lists
// otherwise — with recency-decayed weights; items already in the context
// are never recommended back.
func (s *Server) Recommend(r catalog.RetailerID, ctx interactions.Context, k int) []Recommendation {
	s.requests.Add(1)
	if k <= 0 {
		k = 10
	}
	snap := s.snap.Load()
	rr := snap.Retailers[r]
	if rr == nil {
		s.misses.Add(1)
		return nil
	}
	if len(ctx) > interactions.DefaultContextLength {
		ctx = ctx.Truncate(interactions.DefaultContextLength)
	}

	inCtx := make(map[catalog.ItemID]bool, len(ctx))
	for _, a := range ctx {
		inCtx[a.Item] = true
	}

	scores := make(map[catalog.ItemID]float64)
	lateFunnel := IsLateFunnel(ctx)
	const decay = 0.8
	w := 1.0
	for j := len(ctx) - 1; j >= 0; j-- {
		a := ctx[j]
		ir, ok := rr.Recs[a.Item]
		if ok {
			list := ir.View
			if lateFunnel && len(ir.LateFunnel) > 0 {
				// Deep-funnel users get the facet-constrained surface
				// (Section III-D1's late-funnel tightening).
				list = ir.LateFunnel
			}
			if a.Type >= interactions.Cart {
				list = ir.Purchase
			}
			for pos, rec := range list {
				if inCtx[rec.Item] {
					continue
				}
				// Positional vote: earlier slots in a list count more.
				scores[rec.Item] += w * float64(len(list)-pos)
			}
		}
		w *= decay
	}

	if len(scores) == 0 {
		s.fallback.Add(1)
		out := make([]Recommendation, 0, k)
		for _, it := range rr.TopSellers {
			if inCtx[it] {
				continue
			}
			out = append(out, Recommendation{Item: it})
			if len(out) == k {
				break
			}
		}
		if len(out) == 0 {
			s.misses.Add(1)
		}
		return out
	}

	out := make([]Recommendation, 0, len(scores))
	for it, sc := range scores {
		out = append(out, Recommendation{Item: it, Score: sc})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].Item < out[b].Item
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// IsLateFunnel classifies a context as deep in the purchase funnel: the
// user's recent actions show focused intent — a search or cart among the
// last three actions, with repeated attention to the same item. Early
// browsers get the broad view surface; late-funnel users get candidates
// "constrained to have the same item facets" (Section III-D1).
func IsLateFunnel(ctx interactions.Context) bool {
	if len(ctx) < 2 {
		return false
	}
	tail := ctx
	if len(tail) > 3 {
		tail = tail[len(tail)-3:]
	}
	intent := false
	for _, a := range tail {
		if a.Type >= interactions.Search {
			intent = true
			break
		}
	}
	if !intent {
		return false
	}
	// Repeated attention: some item appears twice in the recent context.
	seen := map[catalog.ItemID]int{}
	recent := ctx
	if len(recent) > 5 {
		recent = recent[len(recent)-5:]
	}
	for _, a := range recent {
		seen[a.Item]++
		if seen[a.Item] >= 2 {
			return true
		}
	}
	return false
}

// BuildSnapshot assembles a snapshot from per-retailer materialized
// outputs and popularity stats.
func BuildSnapshot(version int64, per map[catalog.RetailerID][]inference.ItemRecs, pop map[catalog.RetailerID][]catalog.ItemID) *Snapshot {
	snap := &Snapshot{Version: version, Retailers: map[catalog.RetailerID]*RetailerRecs{}}
	for r, items := range per {
		rr := &RetailerRecs{Recs: make(map[catalog.ItemID]inference.ItemRecs, len(items))}
		for _, ir := range items {
			rr.Recs[ir.Item] = ir
		}
		rr.TopSellers = pop[r]
		snap.Retailers[r] = rr
	}
	return snap
}

// String describes the snapshot for logs.
func (sn *Snapshot) String() string {
	items := 0
	for _, rr := range sn.Retailers {
		items += len(rr.Recs)
	}
	return fmt.Sprintf("snapshot{v%d retailers=%d items=%d}", sn.Version, len(sn.Retailers), items)
}
