package serving

import (
	"errors"
	"net/http/httptest"
	"testing"

	"sigmund/internal/catalog"
	"sigmund/internal/interactions"
	"sigmund/internal/mapreduce"
	"sigmund/internal/obs"
)

// rejectingBackend wraps a real single-node server and refuses requests
// through the Rejecter surface, standing in for the sharded store's
// admission control and load shedding.
type rejectingBackend struct {
	*Server
	err error
}

func (b *rejectingBackend) RecommendOrReject(r catalog.RetailerID, ctx interactions.Context, k int) ([]Recommendation, error) {
	if b.err != nil {
		return nil, b.err
	}
	return b.Server.Recommend(r, ctx, k), nil
}

func (b *rejectingBackend) JobCounters() mapreduce.Counters { return mapreduce.Counters{} }
func (b *rejectingBackend) Observer() *obs.Observer         { return obs.NewObserver() }

// reasonedError mirrors store.RejectError without importing the store
// package (serving must stay import-free of its callers).
type reasonedError struct{ reason string }

func (e *reasonedError) Error() string        { return "rejected: " + e.reason }
func (e *reasonedError) RejectReason() string { return e.reason }

func TestRecommendHTTPMapsRejectReasons(t *testing.T) {
	s := NewServer()
	s.Publish(snapshotFixture())
	b := &rejectingBackend{Server: s}
	h := NewBackendHandler(b)

	get := func() *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", "/recommend?retailer=shop&context=view:1&k=2", nil))
		return w
	}

	// Not rejecting: the Rejecter path serves normally.
	if w := get(); w.Code != 200 {
		t.Fatalf("healthy backend: status %d, want 200", w.Code)
	}

	// Admission-control rejections are the client's fault: 429.
	b.err = &reasonedError{reason: "admission"}
	if w := get(); w.Code != 429 || w.Header().Get("X-Reject-Reason") != "admission" {
		t.Fatalf("admission reject: status %d reason %q, want 429/admission", w.Code, w.Header().Get("X-Reject-Reason"))
	}

	// Load shedding is the server's state: 503.
	b.err = &reasonedError{reason: "shed"}
	if w := get(); w.Code != 503 || w.Header().Get("X-Reject-Reason") != "shed" {
		t.Fatalf("shed reject: status %d reason %q, want 503/shed", w.Code, w.Header().Get("X-Reject-Reason"))
	}

	// A plain error without a reason still maps to 503.
	b.err = errors.New("replicas unreachable")
	if w := get(); w.Code != 503 || w.Header().Get("X-Reject-Reason") != "unavailable" {
		t.Fatalf("plain error: status %d reason %q, want 503/unavailable", w.Code, w.Header().Get("X-Reject-Reason"))
	}
}
