// Package mapreduce is a small MapReduce framework with the execution
// semantics Sigmund's pipelines rely on (Section IV):
//
//   - the input is divided into contiguous splits — the inference job
//     depends on per-retailer data being contiguous so one map task rarely
//     loads more than one model;
//   - each task processes its records sequentially on a single framework
//     thread; parallelism inside a record (Hogwild training, multi-threaded
//     scoring) is managed by user code, exactly the arrangement Sections
//     IV-B2 and IV-C2 describe;
//   - tasks are retried on failure with attempt-isolated output buffers
//     that commit atomically on success, so re-execution never duplicates
//     output — the property that makes running on pre-emptible VMs safe;
//   - tasks are leased to simulated workers that heartbeat and can be
//     preempted mid-attempt by a seeded exponential arrival process (see
//     worker.go): lost attempts are requeued, hung workers' leases expire
//     and their tasks are reassigned, stragglers get speculative backup
//     attempts (first commit wins), and repeatedly failing workers are
//     blacklisted — the substrate that makes the paper's "entire fleet on
//     pre-emptible VMs" claim testable end-to-end;
//   - a pluggable fault plan kills task attempts by cancelling their
//     context after a delay, which exercises the user code's real
//     checkpoint/recover paths.
//
// The framework executes real Go code with goroutine workers; the cluster
// package separately models the economics of running such jobs on
// pre-emptible machines, sampling preemptions from the same
// internal/preempt model this package uses.
package mapreduce

import (
	"context"
	"errors"
	"hash/fnv"
	"sort"
	"sync/atomic"
	"time"

	"sigmund/internal/obs"
)

// Record is a key/value pair flowing through a job.
type Record struct {
	Key   string
	Value []byte
}

// Emit adds an output pair from user code. Implementations provided by the
// framework are not safe for concurrent use within a task unless stated —
// matching real MapReduce, where emission happens from the task thread.
type Emit func(key string, value []byte)

// Mapper processes one input record.
type Mapper interface {
	Map(ctx context.Context, rec Record, emit Emit) error
}

// MapperFunc adapts a function to Mapper.
type MapperFunc func(ctx context.Context, rec Record, emit Emit) error

// Map implements Mapper.
func (f MapperFunc) Map(ctx context.Context, rec Record, emit Emit) error {
	return f(ctx, rec, emit)
}

// Reducer processes one key and all its values.
type Reducer interface {
	Reduce(ctx context.Context, key string, values [][]byte, emit Emit) error
}

// ReducerFunc adapts a function to Reducer.
type ReducerFunc func(ctx context.Context, key string, values [][]byte, emit Emit) error

// Reduce implements Reducer.
func (f ReducerFunc) Reduce(ctx context.Context, key string, values [][]byte, emit Emit) error {
	return f(ctx, key, values, emit)
}

// IdentityReducer re-emits every value under its key.
var IdentityReducer = ReducerFunc(func(_ context.Context, key string, values [][]byte, emit Emit) error {
	for _, v := range values {
		emit(key, v)
	}
	return nil
})

// Phase identifies the job phase for fault plans and counters.
type Phase uint8

const (
	// MapPhase is the map side of the job.
	MapPhase Phase = iota
	// ReducePhase is the reduce side.
	ReducePhase
)

func (p Phase) String() string {
	if p == MapPhase {
		return "map"
	}
	return "reduce"
}

// FaultPlan decides whether a given task attempt gets killed (its context
// cancelled) and how long after it starts. Deterministic plans make
// fault-tolerance tests reproducible.
type FaultPlan func(phase Phase, task, attempt int) (kill bool, after time.Duration)

// Spec configures a job.
type Spec struct {
	Name string
	// NumMapTasks splits the input into this many contiguous ranges
	// (default: one task per 1 record, capped at 64).
	NumMapTasks int
	// NumReduceTasks partitions the key space (default 1). 0 with a nil
	// reducer produces a map-only job.
	NumReduceTasks int
	// Workers is the number of concurrently executing tasks — the
	// simulated machine pool (default 4).
	Workers int
	// MaxAttempts per task (default 3). Only attempt errors count against
	// it; preemptions are bounded by Substrate.MaxPreemptionsPerTask.
	MaxAttempts int
	// Faults optionally injects attempt kills.
	Faults FaultPlan
	// Substrate configures worker preemption, lease expiry, speculative
	// execution, and blacklisting. The zero value is reliable workers.
	Substrate Substrate
	// Metrics optionally mirrors the job's execution into an obs.Registry:
	// attempt/failure counters and the task-duration histogram stream live
	// (per event, labeled by phase) and the bulk record counts roll up when
	// the job finishes. The per-job Counters struct remains the job-scoped
	// view; the registry accumulates fleet-wide totals across jobs. nil
	// disables with zero overhead.
	Metrics *obs.Registry
}

func (s Spec) defaulted(inputLen int) Spec {
	if s.NumMapTasks <= 0 {
		s.NumMapTasks = inputLen
		if s.NumMapTasks > 64 {
			s.NumMapTasks = 64
		}
		if s.NumMapTasks == 0 {
			s.NumMapTasks = 1
		}
	}
	if s.NumMapTasks > inputLen && inputLen > 0 {
		s.NumMapTasks = inputLen
	}
	if s.NumReduceTasks <= 0 {
		s.NumReduceTasks = 1
	}
	if s.Workers <= 0 {
		s.Workers = 4
	}
	if s.MaxAttempts <= 0 {
		s.MaxAttempts = 3
	}
	s.Substrate = s.Substrate.defaulted()
	return s
}

// Counters reports one job's execution statistics — the per-job
// compatibility view. The same events stream into the obs.Registry passed
// via Spec.Metrics (fleet-wide, labeled by phase), which is the surface
// /metrics exposes; Counters remains for job results, DayReports, and
// /statz. Adding a field here requires extending Add — a reflection test
// (counters_test.go) fails the build if the two drift.
type Counters struct {
	MapAttempts     int64
	MapFailures     int64
	ReduceAttempts  int64
	ReduceFailures  int64
	RecordsMapped   int64
	PairsShuffled   int64
	RecordsReduced  int64
	OutputRecords   int64
	WorkersObserved int64 // max concurrently running tasks seen

	// Worker-substrate counters.
	Preemptions         int64 // attempts lost to worker preemption (incl. injected crashes)
	LeaseExpiries       int64 // leases revoked after missed heartbeats
	SpeculativeLaunches int64 // backup attempts started for stragglers
	SpeculativeWins     int64 // tasks whose backup committed first
	WorkersBlacklisted  int64 // workers removed after repeated failures
}

// Add accumulates o into c, field by field — the aggregation the pipeline
// uses to roll per-cell job counters into a DayReport and the serving
// layer uses for /statz. WorkersObserved is a high-water mark, so the max
// is kept rather than the sum.
func (c *Counters) Add(o Counters) {
	c.MapAttempts += o.MapAttempts
	c.MapFailures += o.MapFailures
	c.ReduceAttempts += o.ReduceAttempts
	c.ReduceFailures += o.ReduceFailures
	c.RecordsMapped += o.RecordsMapped
	c.PairsShuffled += o.PairsShuffled
	c.RecordsReduced += o.RecordsReduced
	c.OutputRecords += o.OutputRecords
	if o.WorkersObserved > c.WorkersObserved {
		c.WorkersObserved = o.WorkersObserved
	}
	c.Preemptions += o.Preemptions
	c.LeaseExpiries += o.LeaseExpiries
	c.SpeculativeLaunches += o.SpeculativeLaunches
	c.SpeculativeWins += o.SpeculativeWins
	c.WorkersBlacklisted += o.WorkersBlacklisted
}

// Result is a completed job's output.
type Result struct {
	Output   []Record // sorted by key, then by emission order
	Counters Counters
}

// ErrTaskFailed wraps a task that exhausted its attempts.
var ErrTaskFailed = errors.New("mapreduce: task exhausted attempts")

// Run executes the job. The returned output is sorted by key (stable in
// emission order within a key). When multiple tasks fail permanently the
// returned error is the errors.Join of all of them (each matching
// errors.Is(err, ErrTaskFailed)), not just the first.
func Run(ctx context.Context, spec Spec, input []Record, m Mapper, r Reducer) (Result, error) {
	res, err := run(ctx, spec, input, m, r)
	if reg := spec.Metrics; reg != nil {
		// Bulk record counts mirror once per job rather than per record, so
		// the hot map/shuffle paths carry no registry overhead; lifecycle
		// events (attempts, failures, preemptions, leases, speculation)
		// stream live from the worker substrate.
		mirrorRecordCounts(reg, res.Counters)
		result := "ok"
		if err != nil {
			result = "failed"
		}
		reg.Counter("sigmund_mapreduce_jobs_total", "MapReduce jobs finished.",
			obs.L("result", result)).Inc()
	}
	return res, err
}

func mirrorRecordCounts(reg *obs.Registry, c Counters) {
	const name, help = "sigmund_mapreduce_records_total", "Records processed by MapReduce jobs, by stage."
	reg.Counter(name, help, obs.L("stage", "mapped")).Add(c.RecordsMapped)
	reg.Counter(name, help, obs.L("stage", "shuffled")).Add(c.PairsShuffled)
	reg.Counter(name, help, obs.L("stage", "reduced")).Add(c.RecordsReduced)
	reg.Counter(name, help, obs.L("stage", "output")).Add(c.OutputRecords)
}

func run(ctx context.Context, spec Spec, input []Record, m Mapper, r Reducer) (Result, error) {
	spec = spec.defaulted(len(input))
	var res Result
	var gauge concurrencyGauge

	// --- Map phase ---
	splits := contiguousSplits(len(input), spec.NumMapTasks)
	mapOut := make([][]Record, len(splits)) // committed per task
	err := runPhase(ctx, spec, MapPhase, len(splits), &res.Counters, &gauge,
		func(actx context.Context, task int, emit Emit) error {
			split := splits[task]
			for _, rec := range input[split.lo:split.hi] {
				if err := actx.Err(); err != nil {
					return err
				}
				if err := m.Map(actx, rec, emit); err != nil {
					return err
				}
				atomic.AddInt64(&res.Counters.RecordsMapped, 1)
			}
			return nil
		},
		func(task int, buf []Record) { mapOut[task] = buf })
	res.Counters.WorkersObserved = gauge.observed()
	if err != nil {
		return res, err
	}

	if r == nil {
		// Map-only job.
		for _, buf := range mapOut {
			res.Output = append(res.Output, buf...)
		}
		sortRecords(res.Output)
		res.Counters.OutputRecords = int64(len(res.Output))
		return res, nil
	}

	// --- Shuffle ---
	type keyVals struct {
		key  string
		vals [][]byte
	}
	partitions := make([]map[string][][]byte, spec.NumReduceTasks)
	for i := range partitions {
		partitions[i] = make(map[string][][]byte)
	}
	for _, buf := range mapOut { // deterministic: task order, then emit order
		for _, rec := range buf {
			p := int(keyHash(rec.Key) % uint32(spec.NumReduceTasks))
			partitions[p][rec.Key] = append(partitions[p][rec.Key], rec.Value)
			atomic.AddInt64(&res.Counters.PairsShuffled, 1)
		}
	}
	partKeys := make([][]keyVals, spec.NumReduceTasks)
	for p := range partitions {
		keys := make([]string, 0, len(partitions[p]))
		for k := range partitions[p] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			partKeys[p] = append(partKeys[p], keyVals{key: k, vals: partitions[p][k]})
		}
	}

	// --- Reduce phase ---
	redOut := make([][]Record, spec.NumReduceTasks)
	err = runPhase(ctx, spec, ReducePhase, spec.NumReduceTasks, &res.Counters, &gauge,
		func(actx context.Context, task int, emit Emit) error {
			for _, kv := range partKeys[task] {
				if err := actx.Err(); err != nil {
					return err
				}
				if err := r.Reduce(actx, kv.key, kv.vals, emit); err != nil {
					return err
				}
				atomic.AddInt64(&res.Counters.RecordsReduced, 1)
			}
			return nil
		},
		func(task int, buf []Record) { redOut[task] = buf })
	res.Counters.WorkersObserved = gauge.observed()
	if err != nil {
		return res, err
	}
	for _, buf := range redOut {
		res.Output = append(res.Output, buf...)
	}
	sortRecords(res.Output)
	res.Counters.OutputRecords = int64(len(res.Output))
	return res, nil
}

type split struct{ lo, hi int }

// contiguousSplits divides [0, n) into k contiguous ranges of near-equal
// size (never splitting below 1 record except when n < k).
func contiguousSplits(n, k int) []split {
	if k > n {
		k = n
	}
	if k <= 0 {
		k = 1
	}
	out := make([]split, 0, k)
	base := n / k
	rem := n % k
	lo := 0
	for i := 0; i < k; i++ {
		size := base
		if i < rem {
			size++
		}
		out = append(out, split{lo: lo, hi: lo + size})
		lo += size
	}
	return out
}

func keyHash(k string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(k))
	return h.Sum32()
}

func sortRecords(recs []Record) {
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Key < recs[j].Key })
}
