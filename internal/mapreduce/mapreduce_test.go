package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// wordCount is the canonical smoke test.
func wordCountJob(t *testing.T, spec Spec, docs []string) Result {
	t.Helper()
	input := make([]Record, len(docs))
	for i, d := range docs {
		input[i] = Record{Key: fmt.Sprintf("doc%d", i), Value: []byte(d)}
	}
	m := MapperFunc(func(_ context.Context, rec Record, emit Emit) error {
		for _, w := range strings.Fields(string(rec.Value)) {
			emit(w, []byte("1"))
		}
		return nil
	})
	r := ReducerFunc(func(_ context.Context, key string, values [][]byte, emit Emit) error {
		emit(key, []byte(strconv.Itoa(len(values))))
		return nil
	})
	res, err := Run(context.Background(), spec, input, m, r)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWordCount(t *testing.T) {
	res := wordCountJob(t, Spec{Name: "wc", NumMapTasks: 3, NumReduceTasks: 4, Workers: 4},
		[]string{"a b a", "b c", "a"})
	want := map[string]string{"a": "3", "b": "2", "c": "1"}
	if len(res.Output) != 3 {
		t.Fatalf("output = %+v", res.Output)
	}
	for _, rec := range res.Output {
		if want[rec.Key] != string(rec.Value) {
			t.Fatalf("%s = %s, want %s", rec.Key, rec.Value, want[rec.Key])
		}
	}
	// Output sorted by key.
	if res.Output[0].Key != "a" || res.Output[2].Key != "c" {
		t.Fatalf("output not sorted: %+v", res.Output)
	}
	if res.Counters.RecordsMapped != 3 || res.Counters.PairsShuffled != 6 {
		t.Fatalf("counters = %+v", res.Counters)
	}
}

func TestMapOnlyJob(t *testing.T) {
	input := []Record{{Key: "x", Value: []byte("1")}, {Key: "y", Value: []byte("2")}}
	m := MapperFunc(func(_ context.Context, rec Record, emit Emit) error {
		emit(rec.Key+"!", rec.Value)
		return nil
	})
	res, err := Run(context.Background(), Spec{Name: "mo"}, input, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 2 || res.Output[0].Key != "x!" {
		t.Fatalf("map-only output: %+v", res.Output)
	}
}

func TestIdentityReducer(t *testing.T) {
	input := []Record{{Key: "k", Value: []byte("v1")}, {Key: "k", Value: []byte("v2")}}
	m := MapperFunc(func(_ context.Context, rec Record, emit Emit) error {
		emit(rec.Key, rec.Value)
		return nil
	})
	res, err := Run(context.Background(), Spec{Name: "id"}, input, m, IdentityReducer)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 2 {
		t.Fatalf("output: %+v", res.Output)
	}
}

func TestContiguousSplits(t *testing.T) {
	tests := []struct {
		n, k    int
		wantLen int
	}{
		{10, 3, 3}, {3, 10, 3}, {0, 5, 1}, {64, 64, 64},
	}
	for _, tt := range tests {
		splits := contiguousSplits(tt.n, tt.k)
		if len(splits) != tt.wantLen {
			t.Fatalf("contiguousSplits(%d,%d) len = %d, want %d", tt.n, tt.k, len(splits), tt.wantLen)
		}
		// Contiguity and coverage.
		pos := 0
		for _, s := range splits {
			if s.lo != pos {
				t.Fatalf("gap at %d: %+v", pos, splits)
			}
			pos = s.hi
		}
		if pos != tt.n {
			t.Fatalf("splits cover %d of %d", pos, tt.n)
		}
	}
}

func TestRetryOnTransientError(t *testing.T) {
	var calls int64
	m := MapperFunc(func(_ context.Context, rec Record, emit Emit) error {
		if atomic.AddInt64(&calls, 1) == 1 {
			return errors.New("transient")
		}
		emit(rec.Key, rec.Value)
		return nil
	})
	input := []Record{{Key: "a", Value: []byte("v")}}
	res, err := Run(context.Background(), Spec{Name: "retry", MaxAttempts: 3}, input, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 {
		t.Fatalf("output: %+v", res.Output)
	}
	if res.Counters.MapFailures != 1 || res.Counters.MapAttempts != 2 {
		t.Fatalf("counters: %+v", res.Counters)
	}
}

func TestNoDuplicateOutputAcrossRetries(t *testing.T) {
	// The mapper emits, THEN fails on its first attempt: the attempt's
	// output must be discarded, not duplicated.
	var attempts int64
	m := MapperFunc(func(_ context.Context, rec Record, emit Emit) error {
		emit(rec.Key, rec.Value)
		if atomic.AddInt64(&attempts, 1) == 1 {
			return errors.New("die after emitting")
		}
		return nil
	})
	input := []Record{{Key: "a", Value: []byte("v")}}
	res, err := Run(context.Background(), Spec{Name: "dup", MaxAttempts: 3}, input, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 {
		t.Fatalf("retry duplicated output: %+v", res.Output)
	}
}

func TestTaskFailsAfterMaxAttempts(t *testing.T) {
	m := MapperFunc(func(_ context.Context, _ Record, _ Emit) error {
		return errors.New("always broken")
	})
	input := []Record{{Key: "a"}}
	_, err := Run(context.Background(), Spec{Name: "fail", MaxAttempts: 2}, input, m, nil)
	if !errors.Is(err, ErrTaskFailed) {
		t.Fatalf("err = %v, want ErrTaskFailed", err)
	}
}

func TestFaultInjectionKillsAndRecovers(t *testing.T) {
	// Attempt 0 of map task 0 is killed shortly after start; the retry
	// succeeds. This is the pre-emptible-VM path.
	slowMapper := MapperFunc(func(ctx context.Context, rec Record, emit Emit) error {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(30 * time.Millisecond):
		}
		emit(rec.Key, rec.Value)
		return nil
	})
	faults := func(phase Phase, task, attempt int) (bool, time.Duration) {
		return phase == MapPhase && task == 0 && attempt == 0, 5 * time.Millisecond
	}
	input := []Record{{Key: "a", Value: []byte("v")}}
	res, err := Run(context.Background(), Spec{Name: "faulty", Faults: faults, MaxAttempts: 3}, input, slowMapper, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.MapFailures != 1 {
		t.Fatalf("expected exactly one injected failure: %+v", res.Counters)
	}
	if len(res.Output) != 1 {
		t.Fatalf("output after recovery: %+v", res.Output)
	}
}

func TestJobContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := MapperFunc(func(ctx context.Context, rec Record, emit Emit) error {
		return ctx.Err()
	})
	input := make([]Record, 100)
	_, err := Run(ctx, Spec{Name: "cancelled"}, input, m, nil)
	if err == nil {
		t.Fatal("expected cancellation error")
	}
}

func TestWorkerLimitRespected(t *testing.T) {
	var running, maxSeen int64
	m := MapperFunc(func(_ context.Context, rec Record, emit Emit) error {
		cur := atomic.AddInt64(&running, 1)
		for {
			prev := atomic.LoadInt64(&maxSeen)
			if cur <= prev || atomic.CompareAndSwapInt64(&maxSeen, prev, cur) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		atomic.AddInt64(&running, -1)
		return nil
	})
	input := make([]Record, 20)
	for i := range input {
		input[i] = Record{Key: fmt.Sprintf("%d", i)}
	}
	_, err := Run(context.Background(), Spec{Name: "limit", NumMapTasks: 20, Workers: 3}, input, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(&maxSeen); got > 3 {
		t.Fatalf("observed %d concurrent tasks, limit 3", got)
	}
}

func TestDeterministicOutputOrder(t *testing.T) {
	docs := []string{"z y x", "c b a", "m n o p"}
	a := wordCountJob(t, Spec{Name: "d", NumMapTasks: 3, NumReduceTasks: 2, Workers: 4}, docs)
	b := wordCountJob(t, Spec{Name: "d", NumMapTasks: 3, NumReduceTasks: 2, Workers: 1}, docs)
	if len(a.Output) != len(b.Output) {
		t.Fatal("lengths differ across worker counts")
	}
	for i := range a.Output {
		if a.Output[i].Key != b.Output[i].Key || string(a.Output[i].Value) != string(b.Output[i].Value) {
			t.Fatalf("output %d differs: %+v vs %+v", i, a.Output[i], b.Output[i])
		}
	}
}

func TestEmitCopiesValues(t *testing.T) {
	buf := []byte("abc")
	m := MapperFunc(func(_ context.Context, rec Record, emit Emit) error {
		emit("k", buf)
		buf[0] = 'X' // mutation after emit must not corrupt output
		return nil
	})
	res, err := Run(context.Background(), Spec{Name: "copy"}, []Record{{Key: "r"}}, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Output[0].Value) != "abc" {
		t.Fatalf("emit aliased caller buffer: %q", res.Output[0].Value)
	}
}

func TestPhaseString(t *testing.T) {
	if MapPhase.String() != "map" || ReducePhase.String() != "reduce" {
		t.Fatal("phase strings")
	}
}
