package mapreduce

import (
	"context"
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"sigmund/internal/preempt"
)

// benchInput builds n records with fixed-size payloads.
func benchInput(n, payload int) []Record {
	in := make([]Record, n)
	for i := range in {
		v := make([]byte, payload)
		binary.LittleEndian.PutUint64(v, uint64(i))
		in[i] = Record{Key: fmt.Sprintf("k%06d", i), Value: v}
	}
	return in
}

// chew is the per-record CPU work for the map-heavy shape: enough mixing
// that the framework overhead does not dominate the measurement.
func chew(v []byte) uint64 {
	h := uint64(14695981039346656037)
	for round := 0; round < 16; round++ {
		for _, c := range v {
			h = (h ^ uint64(c)) * 1099511628211
		}
	}
	return h
}

// BenchmarkMapReduce measures the framework under its two load shapes —
// map-heavy (map-only job, CPU in the mapper) and shuffle-heavy (high
// pair fan-out through the sort/partition path) — plus the map-heavy
// shape on the full worker substrate (heartbeats, lease monitor,
// speculation armed, preemption mean far above task runtime), which
// bounds the substrate's bookkeeping overhead.
func BenchmarkMapReduce(b *testing.B) {
	const records = 2048

	mapHeavy := MapperFunc(func(_ context.Context, r Record, emit Emit) error {
		var out [8]byte
		binary.LittleEndian.PutUint64(out[:], chew(r.Value))
		emit(r.Key, out[:])
		return nil
	})

	b.Run("map-heavy", func(b *testing.B) {
		in := benchInput(records, 256)
		spec := Spec{Name: "bench/map-heavy", NumMapTasks: 32, Workers: 4}
		b.SetBytes(int64(records * 256))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := Run(context.Background(), spec, in, mapHeavy, nil)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Output) != records {
				b.Fatalf("output %d, want %d", len(res.Output), records)
			}
		}
	})

	b.Run("shuffle-heavy", func(b *testing.B) {
		in := benchInput(records, 64)
		// Each record fans out to 8 of 64 shared keys: ~16k pairs per run
		// through partitioning, key sort, and reduction.
		mapper := MapperFunc(func(_ context.Context, r Record, emit Emit) error {
			base := binary.LittleEndian.Uint64(r.Value)
			var out [8]byte
			for j := uint64(0); j < 8; j++ {
				binary.LittleEndian.PutUint64(out[:], base+j)
				emit(fmt.Sprintf("g%02d", (base+j)%64), out[:])
			}
			return nil
		})
		reducer := ReducerFunc(func(_ context.Context, key string, values [][]byte, emit Emit) error {
			var sum uint64
			for _, v := range values {
				sum += binary.LittleEndian.Uint64(v)
			}
			var out [8]byte
			binary.LittleEndian.PutUint64(out[:], sum)
			emit(key, out[:])
			return nil
		})
		spec := Spec{Name: "bench/shuffle-heavy", NumMapTasks: 32, NumReduceTasks: 8, Workers: 4}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := Run(context.Background(), spec, in, mapper, reducer)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Output) != 64 {
				b.Fatalf("output %d, want 64", len(res.Output))
			}
		}
	})

	b.Run("map-heavy-substrate", func(b *testing.B) {
		in := benchInput(records, 256)
		spec := Spec{
			Name: "bench/map-heavy-substrate", NumMapTasks: 32, Workers: 4,
			Substrate: Substrate{
				Preemption:  preempt.FromMeanBetween(5*time.Second, 7),
				Speculative: true,
			},
		}
		b.SetBytes(int64(records * 256))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := Run(context.Background(), spec, in, mapHeavy, nil)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Output) != records {
				b.Fatalf("output %d, want %d", len(res.Output), records)
			}
		}
	})
}
