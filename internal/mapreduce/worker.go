package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sigmund/internal/obs"
	"sigmund/internal/preempt"
)

// This file is the preemptible-worker substrate: tasks are leased to N
// simulated workers, each leased attempt heartbeats, and three failure
// processes can take an attempt down mid-flight —
//
//   - preemption: a seeded exponential arrival process (the same
//     internal/preempt model the cluster cost simulator prices) kills the
//     worker, losing its uncommitted attempt; the worker reincarnates as
//     a fresh machine and the task returns to the queue without consuming
//     its error budget;
//   - lease expiry: a worker that stops heartbeating (hung, stalled) has
//     its lease revoked by the monitor and the task is reassigned; the
//     zombie attempt may still be running but can never commit;
//   - worker faults: injected crash/stall/error rules from
//     internal/faults, scoped to (worker, incarnation) rather than to an
//     op.
//
// Near the end of a phase the monitor also launches speculative backup
// attempts for stragglers (runtime above a percentile of completed
// peers); attempt-isolated buffers make first-commit-wins safe, so a
// backup can overtake a slow primary without duplicating output.

// WorkerFault is a worker-scoped failure mode injected via
// Substrate.WorkerFaults.
type WorkerFault uint8

const (
	// WorkerOK leaves the attempt alone.
	WorkerOK WorkerFault = iota
	// WorkerCrash kills the worker mid-attempt (counted as a preemption):
	// the attempt is lost and the worker reincarnates.
	WorkerCrash
	// WorkerStall freezes the worker's heartbeats: its lease expires and
	// the task is reassigned to another worker.
	WorkerStall
	// WorkerFlake makes the attempt fail with ErrWorkerFailure — a
	// worker-attributed error that drives blacklisting.
	WorkerFlake
)

// WorkerFaultPlan decides the fate of one attempt on one worker
// incarnation. The delay is how long after the attempt starts the fault
// fires (crash/stall) or how long the attempt runs before erroring
// (flake); a crash with zero delay fires synchronously at attempt start,
// so it preempts deterministically even on very fast tasks. Deterministic
// plans make chaos tests reproducible.
type WorkerFaultPlan func(phase Phase, worker, incarnation, task, attempt int) (WorkerFault, time.Duration)

// Substrate configures the worker-failure substrate for a job. The zero
// value means reliable workers and no speculation — the original
// framework behavior, with no monitor or heartbeat overhead.
type Substrate struct {
	// Preemption is the seeded kill-arrival process; each worker draws an
	// independent stream from it.
	Preemption preempt.Model
	// WorkerFaults optionally injects worker-scoped crash/stall/error
	// faults (see internal/faults.WorkerPlan).
	WorkerFaults WorkerFaultPlan
	// Speculative enables backup attempts for stragglers.
	Speculative bool
	// BlacklistAfter removes a worker from the pool after this many
	// attempt failures attributed to it (0 = never blacklist).
	BlacklistAfter int
	// MaxPreemptionsPerTask bounds how many times one task may be lost to
	// preemption before the job gives up on it (default 50). Preemptions
	// intentionally do not consume Spec.MaxAttempts: at realistic rates
	// they would exhaust a 3–5 attempt budget that exists to catch
	// deterministic task bugs, not machine churn.
	MaxPreemptionsPerTask int
	// HeartbeatEvery is the worker heartbeat and monitor interval
	// (default 2ms — the simulated fleet runs on a milliseconds-for-
	// minutes clock).
	HeartbeatEvery time.Duration
	// LeaseTimeout revokes a lease after this long without a heartbeat
	// (default 75 heartbeat intervals).
	LeaseTimeout time.Duration
	// SpeculativeAfter is the fraction of the phase's tasks that must be
	// committed before backups launch (default 0.5).
	SpeculativeAfter float64
	// SpeculativeQuantile is the percentile of completed-task durations a
	// straggler is compared against (default 0.75).
	SpeculativeQuantile float64
	// SpeculativeSlowdown is how many times that percentile a task must
	// have been running to earn a backup (default 2).
	SpeculativeSlowdown float64
}

// active reports whether any failure process or speculation is on; when
// false the engine skips heartbeats and the monitor entirely.
func (s Substrate) active() bool {
	return s.Preemption.Enabled() || s.WorkerFaults != nil || s.Speculative
}

func (s Substrate) defaulted() Substrate {
	if s.HeartbeatEvery <= 0 {
		s.HeartbeatEvery = 2 * time.Millisecond
	}
	if s.LeaseTimeout <= 0 {
		s.LeaseTimeout = 75 * s.HeartbeatEvery
	}
	if s.MaxPreemptionsPerTask <= 0 {
		s.MaxPreemptionsPerTask = 50
	}
	if s.SpeculativeAfter <= 0 {
		s.SpeculativeAfter = 0.5
	}
	if s.SpeculativeQuantile <= 0 {
		s.SpeculativeQuantile = 0.75
	}
	if s.SpeculativeSlowdown <= 0 {
		s.SpeculativeSlowdown = 2
	}
	return s
}

// ErrWorkerFailure is the attempt error produced by WorkerFlake faults.
var ErrWorkerFailure = errors.New("mapreduce: worker failed attempt")

// ErrNoWorkers reports a job whose entire worker pool was blacklisted
// with tasks still outstanding.
var ErrNoWorkers = errors.New("mapreduce: all workers blacklisted")

// concurrencyGauge tracks the high-water mark of concurrently executing
// attempts across both phases (Counters.WorkersObserved).
type concurrencyGauge struct{ cur, max int64 }

func (g *concurrencyGauge) inc() {
	cur := atomic.AddInt64(&g.cur, 1)
	for {
		prev := atomic.LoadInt64(&g.max)
		if cur <= prev || atomic.CompareAndSwapInt64(&g.max, prev, cur) {
			return
		}
	}
}

func (g *concurrencyGauge) dec() { atomic.AddInt64(&g.cur, -1) }

func (g *concurrencyGauge) observed() int64 { return atomic.LoadInt64(&g.max) }

// attempt is one lease of one task to one worker incarnation.
type attempt struct {
	task    *taskState
	worker  *workerState
	ordinal int  // attempt index seen by fault plans
	backup  bool // speculative backup
	started time.Time
	ctx     context.Context
	cancel  context.CancelFunc

	lastBeat atomic.Int64 // UnixNano of the last heartbeat
	stalled  atomic.Bool  // injected stall: heartbeats freeze

	// Guarded by phaseExec.mu.
	preempted bool // the worker died under this attempt
	expired   bool // the monitor revoked the lease
	settled   bool
}

// taskState is the scheduler's view of one task. All fields are guarded
// by phaseExec.mu.
type taskState struct {
	idx          int
	failures     int // error attempts, counted against Spec.MaxAttempts
	preempts     int // lost-to-preemption attempts, bounded separately
	launched     int // attempts started (ordinal source)
	live         []*attempt
	queued       bool
	backupQueued bool
	committed    bool
	failed       bool
}

func (t *taskState) detach(at *attempt) {
	for i, a := range t.live {
		if a == at {
			t.live = append(t.live[:i], t.live[i+1:]...)
			return
		}
	}
}

// workerState is one simulated machine. Mutable fields are written only
// under phaseExec.mu, and only from the worker's own goroutine.
type workerState struct {
	id          int
	incarnation int
	failures    int
	blacklisted bool
	arrivals    *preempt.Stream
}

// phaseMetrics are the registry handles one phase streams its lifecycle
// through (Spec.Metrics). With a nil registry every handle is a nil
// no-op, so event sites never guard.
type phaseMetrics struct {
	attempts      *obs.Counter
	failures      *obs.Counter
	preemptions   *obs.Counter
	leaseExpiries *obs.Counter
	specLaunches  *obs.Counter
	specWins      *obs.Counter
	blacklisted   *obs.Counter
	taskSeconds   *obs.Histogram
}

func newPhaseMetrics(reg *obs.Registry, phase Phase) phaseMetrics {
	pl := obs.L("phase", phase.String())
	return phaseMetrics{
		attempts:      reg.Counter("sigmund_mapreduce_attempts_total", "Task attempts started, by phase.", pl),
		failures:      reg.Counter("sigmund_mapreduce_attempt_failures_total", "Task attempts failed with an error, by phase.", pl),
		preemptions:   reg.Counter("sigmund_mapreduce_preemptions_total", "Attempts lost to worker preemption (incl. injected crashes), by phase.", pl),
		leaseExpiries: reg.Counter("sigmund_mapreduce_lease_expiries_total", "Leases revoked after missed heartbeats, by phase.", pl),
		specLaunches:  reg.Counter("sigmund_mapreduce_speculative_launches_total", "Backup attempts started for stragglers, by phase.", pl),
		specWins:      reg.Counter("sigmund_mapreduce_speculative_wins_total", "Tasks whose speculative backup committed first, by phase.", pl),
		blacklisted:   reg.Counter("sigmund_mapreduce_workers_blacklisted_total", "Workers removed after repeated failures, by phase.", pl),
		taskSeconds:   reg.Histogram("sigmund_mapreduce_task_seconds", "Committed task attempt durations, by phase.", obs.DurationBuckets(), pl),
	}
}

// phaseExec runs one phase's tasks over the worker pool.
type phaseExec struct {
	ctx      context.Context
	spec     Spec
	phase    Phase
	n        int
	body     func(ctx context.Context, task int, emit Emit) error
	commit   func(task int, buf []Record)
	counters *Counters
	gauge    *concurrencyGauge
	pm       phaseMetrics

	monitored bool

	mu          sync.Mutex
	cond        *sync.Cond
	tasks       []*taskState
	queue       []int // pending task indices, FIFO
	backups     []int // speculative candidates, FIFO
	terminal    int   // committed + failed
	liveWorkers int
	errs        []error
	durations   []float64 // committed-attempt runtimes, seconds
}

// runPhase executes tasks 0..n-1 through the worker substrate and
// returns nil, the job context's error, or the errors.Join of every task
// that permanently failed (drain-all semantics: one sunk task does not
// abandon the rest of the phase).
func runPhase(ctx context.Context, spec Spec, phase Phase, n int, counters *Counters, gauge *concurrencyGauge,
	body func(ctx context.Context, task int, emit Emit) error, commit func(task int, buf []Record)) error {
	if n == 0 {
		return ctx.Err()
	}
	workers := spec.Workers
	if workers > n {
		workers = n
	}
	if workers <= 0 {
		workers = 1
	}
	e := &phaseExec{
		ctx: ctx, spec: spec, phase: phase, n: n,
		body: body, commit: commit, counters: counters, gauge: gauge,
		pm:          newPhaseMetrics(spec.Metrics, phase),
		monitored:   spec.Substrate.active(),
		liveWorkers: workers,
	}
	e.cond = sync.NewCond(&e.mu)
	e.tasks = make([]*taskState, n)
	for i := range e.tasks {
		e.tasks[i] = &taskState{idx: i, queued: true}
		e.queue = append(e.queue, i)
	}

	var workerWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		ws := &workerState{id: w}
		if spec.Substrate.Preemption.Enabled() {
			ws.arrivals = spec.Substrate.Preemption.Stream(uint64(phase+1)<<32 | uint64(w))
		}
		workerWG.Add(1)
		go func() {
			defer workerWG.Done()
			e.workerLoop(ws)
		}()
	}

	stop := make(chan struct{})
	var auxWG sync.WaitGroup
	if e.monitored {
		auxWG.Add(1)
		go func() {
			defer auxWG.Done()
			e.monitor(stop)
		}()
	}
	auxWG.Add(1)
	go func() { // wake idle workers when the job dies
		defer auxWG.Done()
		select {
		case <-ctx.Done():
			e.mu.Lock()
			e.cond.Broadcast()
			e.mu.Unlock()
		case <-stop:
		}
	}()

	workerWG.Wait()
	close(stop)
	auxWG.Wait()

	if err := ctx.Err(); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.errs) > 0 {
		return errors.Join(e.errs...)
	}
	return nil
}

func (e *phaseExec) workerLoop(w *workerState) {
	for {
		at := e.next(w)
		if at == nil {
			return
		}
		e.runAttempt(at)
	}
}

// next blocks until the worker gets a lease, or returns nil when the
// phase is over, the job is cancelled, or the worker is blacklisted.
func (e *phaseExec) next(w *workerState) *attempt {
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		if e.ctx.Err() != nil || e.terminal >= e.n || w.blacklisted {
			e.workerExit()
			return nil
		}
		if len(e.queue) > 0 {
			t := e.tasks[e.queue[0]]
			e.queue = e.queue[1:]
			t.queued = false
			return e.lease(w, t, false)
		}
		if len(e.backups) > 0 {
			leased := e.nextBackup(w)
			if leased != nil {
				return leased
			}
			continue // queues changed; re-check exit conditions
		}
		e.cond.Wait()
	}
}

func (e *phaseExec) nextBackup(w *workerState) *attempt {
	for len(e.backups) > 0 {
		t := e.tasks[e.backups[0]]
		e.backups = e.backups[1:]
		t.backupQueued = false
		if t.committed || t.failed || len(t.live) != 1 {
			continue // candidate went stale while queued
		}
		e.counters.SpeculativeLaunches++
		e.pm.specLaunches.Inc()
		return e.lease(w, t, true)
	}
	return nil
}

// workerExit retires the worker. If blacklisting emptied the pool with
// work outstanding, the remaining tasks fail rather than wedging the job.
func (e *phaseExec) workerExit() {
	e.liveWorkers--
	if e.liveWorkers > 0 || e.terminal >= e.n || e.ctx.Err() != nil {
		return
	}
	for _, t := range e.tasks {
		if !t.committed && !t.failed {
			e.failTask(t, fmt.Errorf("%s %s task %d: %w", e.spec.Name, e.phase, t.idx, ErrNoWorkers))
		}
	}
	e.cond.Broadcast()
}

// lease grants the task to the worker. Called with mu held.
func (e *phaseExec) lease(w *workerState, t *taskState, backup bool) *attempt {
	actx, cancel := context.WithCancel(e.ctx)
	at := &attempt{
		task: t, worker: w, ordinal: t.launched, backup: backup,
		started: time.Now(), ctx: actx, cancel: cancel,
	}
	t.launched++
	at.lastBeat.Store(at.started.UnixNano())
	t.live = append(t.live, at)
	return at
}

// runAttempt executes one leased attempt on the worker's goroutine: arms
// fault timers and the preemption clock, heartbeats, runs the body into
// an attempt-isolated buffer, and settles the outcome.
func (e *phaseExec) runAttempt(at *attempt) {
	t, w := at.task, at.worker
	e.gauge.inc()
	defer e.gauge.dec()
	if e.phase == MapPhase {
		atomic.AddInt64(&e.counters.MapAttempts, 1)
	} else {
		atomic.AddInt64(&e.counters.ReduceAttempts, 1)
	}
	e.pm.attempts.Inc()

	var timers []*time.Timer
	if e.spec.Faults != nil {
		if kill, after := e.spec.Faults(e.phase, t.idx, at.ordinal); kill {
			timers = append(timers, time.AfterFunc(after, at.cancel))
		}
	}
	flake := false
	var flakeAfter time.Duration
	if plan := e.spec.Substrate.WorkerFaults; plan != nil {
		fault, after := plan(e.phase, w.id, w.incarnation, t.idx, at.ordinal)
		switch fault {
		case WorkerCrash:
			if after <= 0 {
				// A zero-delay crash preempts deterministically at attempt
				// start; a timer would race the body on fast tasks.
				e.preempt(at)
			} else {
				timers = append(timers, time.AfterFunc(after, func() { e.preempt(at) }))
			}
		case WorkerStall:
			timers = append(timers, time.AfterFunc(after, func() { at.stalled.Store(true) }))
		case WorkerFlake:
			flake, flakeAfter = true, after
		}
	}
	if w.arrivals != nil {
		// Fresh draw per attempt: exponential arrivals are memoryless, so
		// this is the same process as one continuous preemption clock over
		// the worker's busy time.
		timers = append(timers, time.AfterFunc(w.arrivals.Next(), func() { e.preempt(at) }))
	}
	var hbStop chan struct{}
	if e.monitored {
		hbStop = make(chan struct{})
		go heartbeat(at, e.spec.Substrate.HeartbeatEvery, hbStop)
	}

	var buf []Record
	emit := func(k string, v []byte) {
		cp := make([]byte, len(v))
		copy(cp, v)
		buf = append(buf, Record{Key: k, Value: cp})
	}
	var err error
	if flake {
		if flakeAfter > 0 {
			select {
			case <-at.ctx.Done():
			case <-time.After(flakeAfter):
			}
		}
		err = fmt.Errorf("%w (worker %d)", ErrWorkerFailure, w.id)
	} else {
		err = e.body(at.ctx, t.idx, emit)
	}
	// Each attempt stops its own timers as soon as its body returns (the
	// old implementation deferred Stop inside the retry loop, keeping
	// every dead attempt's timer alive until the whole task finished).
	for _, tm := range timers {
		tm.Stop()
	}
	at.cancel()
	if hbStop != nil {
		close(hbStop)
	}
	e.settle(at, buf, err)
}

func heartbeat(at *attempt, every time.Duration, stop chan struct{}) {
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			if !at.stalled.Load() {
				at.lastBeat.Store(time.Now().UnixNano())
			}
		}
	}
}

// preempt kills the worker under a live attempt (preemption arrival or
// injected crash). Settlement on the worker's goroutine does the
// bookkeeping; committed, expired, or already-preempted attempts are
// beyond reach.
func (e *phaseExec) preempt(at *attempt) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if at.settled || at.expired || at.preempted {
		return
	}
	at.preempted = true
	at.cancel()
}

// settle classifies a finished attempt: commit, discard, retry, or fail.
// The priority order is what guarantees exactly-once output — an expired
// lease can never commit, and a committed task discards every rival.
func (e *phaseExec) settle(at *attempt, buf []Record, err error) {
	e.mu.Lock()
	defer e.cond.Broadcast()
	defer e.mu.Unlock()
	at.settled = true
	t, w := at.task, at.worker

	if at.expired {
		// The monitor already revoked this lease and requeued the task; a
		// zombie's output is discarded no matter how it finished.
		return
	}
	t.detach(at)
	if t.committed || t.failed {
		return // settled by a rival attempt (first commit wins)
	}
	if at.preempted {
		// The machine died under the attempt: output lost, worker
		// reincarnates fresh, task goes back to the queue. Not charged
		// against MaxAttempts — machine churn is not a task bug — but
		// bounded so a pathological rate still terminates.
		w.incarnation++
		e.counters.Preemptions++
		e.pm.preemptions.Inc()
		t.preempts++
		if t.preempts > e.spec.Substrate.MaxPreemptionsPerTask {
			e.failTask(t, fmt.Errorf("%s %s task %d: %w (lost to %d preemptions)",
				e.spec.Name, e.phase, t.idx, ErrTaskFailed, t.preempts))
			return
		}
		e.requeue(t)
		return
	}
	if err == nil {
		t.committed = true
		e.terminal++
		e.commit(t.idx, buf)
		dur := time.Since(at.started).Seconds()
		e.durations = append(e.durations, dur)
		e.pm.taskSeconds.Observe(dur)
		if at.backup {
			e.counters.SpeculativeWins++
			e.pm.specWins.Inc()
		}
		for _, rival := range t.live {
			rival.cancel()
		}
		return
	}
	if e.ctx.Err() != nil {
		return // job-level cancellation, not a task failure
	}
	if e.phase == MapPhase {
		e.counters.MapFailures++
	} else {
		e.counters.ReduceFailures++
	}
	e.pm.failures.Inc()
	t.failures++
	w.failures++
	if after := e.spec.Substrate.BlacklistAfter; after > 0 && !w.blacklisted && w.failures >= after {
		w.blacklisted = true
		e.counters.WorkersBlacklisted++
		e.pm.blacklisted.Inc()
	}
	if t.failures >= e.spec.MaxAttempts {
		e.failTask(t, fmt.Errorf("%s %s task %d: %w (last error: %v)",
			e.spec.Name, e.phase, t.idx, ErrTaskFailed, err))
		return
	}
	e.requeue(t)
}

// failTask permanently fails the task. Called with mu held.
func (e *phaseExec) failTask(t *taskState, err error) {
	t.failed = true
	e.errs = append(e.errs, err)
	e.terminal++
	for _, rival := range t.live {
		rival.cancel()
	}
}

// requeue returns the task to the pending queue unless it is settled or
// still has a live attempt (that attempt's settlement will requeue).
// Called with mu held.
func (e *phaseExec) requeue(t *taskState) {
	if t.committed || t.failed || t.queued || len(t.live) > 0 {
		return
	}
	t.queued = true
	e.queue = append(e.queue, t.idx)
}

// monitor is the phase's lease supervisor: every heartbeat interval it
// expires leases that missed heartbeats and nominates stragglers for
// speculative backups.
func (e *phaseExec) monitor(stop chan struct{}) {
	sub := e.spec.Substrate
	tick := time.NewTicker(sub.HeartbeatEvery)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		now := time.Now()
		e.mu.Lock()
		for _, t := range e.tasks {
			if t.committed || t.failed {
				continue
			}
			for i := 0; i < len(t.live); i++ {
				at := t.live[i]
				if now.UnixNano()-at.lastBeat.Load() <= int64(sub.LeaseTimeout) {
					continue
				}
				at.expired = true
				at.cancel()
				t.live = append(t.live[:i], t.live[i+1:]...)
				i--
				e.counters.LeaseExpiries++
				e.pm.leaseExpiries.Inc()
			}
			e.requeue(t)
		}
		if sub.Speculative {
			e.scheduleBackups(now)
		}
		e.cond.Broadcast()
		e.mu.Unlock()
	}
}

// scheduleBackups nominates stragglers once enough of the phase has
// committed to know what "slow" means. Called with mu held.
func (e *phaseExec) scheduleBackups(now time.Time) {
	sub := e.spec.Substrate
	done := len(e.durations)
	if done < 2 || float64(done) < sub.SpeculativeAfter*float64(e.n) {
		return
	}
	threshold := sub.SpeculativeSlowdown * quantile(e.durations, sub.SpeculativeQuantile)
	if floor := sub.HeartbeatEvery.Seconds(); threshold < floor {
		threshold = floor
	}
	for _, t := range e.tasks {
		if t.committed || t.failed || t.queued || t.backupQueued || len(t.live) != 1 {
			continue
		}
		if now.Sub(t.live[0].started).Seconds() <= threshold {
			continue
		}
		t.backupQueued = true
		e.backups = append(e.backups, t.idx)
	}
}

// quantile returns the q-th empirical quantile of xs (nearest rank).
func quantile(xs []float64, q float64) float64 {
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	idx := int(q * float64(len(cp)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(cp) {
		idx = len(cp) - 1
	}
	return cp[idx]
}
