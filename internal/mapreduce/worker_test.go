package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sigmund/internal/preempt"
)

// sleepCtx sleeps for d or until ctx is cancelled, returning ctx.Err() in
// the latter case — a well-behaved task body.
func sleepCtx(ctx context.Context, d time.Duration) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(d):
		return nil
	}
}

// echoTaskMapper emits one record per input record after simulating work.
func echoTaskMapper(work time.Duration) Mapper {
	return MapperFunc(func(ctx context.Context, rec Record, emit Emit) error {
		if err := sleepCtx(ctx, work); err != nil {
			return err
		}
		emit(rec.Key, rec.Value)
		return nil
	})
}

func makeInput(n int) []Record {
	input := make([]Record, n)
	for i := range input {
		input[i] = Record{Key: fmt.Sprintf("k%03d", i), Value: []byte{byte(i)}}
	}
	return input
}

// TestPreemptionRecovery runs a map-only job under an aggressive seeded
// preemption process and checks the exactly-once guarantee: every input
// record appears in the output exactly once, despite attempts being lost
// mid-flight.
func TestPreemptionRecovery(t *testing.T) {
	input := makeInput(8)
	spec := Spec{
		Name:        "preempt",
		NumMapTasks: len(input),
		Workers:     3,
		Substrate: Substrate{
			Preemption: preempt.FromMeanBetween(6*time.Millisecond, 42),
		},
	}
	res, err := Run(context.Background(), spec, input, echoTaskMapper(8*time.Millisecond), nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Output) != len(input) {
		t.Fatalf("output records = %d, want %d", len(res.Output), len(input))
	}
	seen := map[string]int{}
	for _, rec := range res.Output {
		seen[rec.Key]++
	}
	for _, rec := range input {
		if seen[rec.Key] != 1 {
			t.Fatalf("key %s appears %d times, want exactly once", rec.Key, seen[rec.Key])
		}
	}
	// With a 6ms mean between preemptions and ~64ms of work per worker,
	// the odds of zero arrivals are negligible.
	if res.Counters.Preemptions == 0 {
		t.Fatal("expected at least one preemption")
	}
	if res.Counters.MapFailures != 0 {
		t.Fatalf("preemptions must not count as task failures, got MapFailures=%d", res.Counters.MapFailures)
	}
	if res.Counters.MapAttempts < int64(len(input))+res.Counters.Preemptions {
		t.Fatalf("attempts=%d < tasks+preemptions=%d", res.Counters.MapAttempts,
			int64(len(input))+res.Counters.Preemptions)
	}
}

// TestLeaseExpiryReassignsTask stalls the first attempt's heartbeats; the
// monitor must revoke the lease and reassign the task, and the zombie
// attempt's output must be discarded even though its body finishes.
func TestLeaseExpiryReassignsTask(t *testing.T) {
	var stalls atomic.Int32
	input := makeInput(3)
	spec := Spec{
		Name:        "expiry",
		NumMapTasks: len(input),
		Workers:     2,
		Substrate: Substrate{
			HeartbeatEvery: time.Millisecond,
			LeaseTimeout:   8 * time.Millisecond,
			WorkerFaults: func(phase Phase, worker, incarnation, task, attempt int) (WorkerFault, time.Duration) {
				if phase == MapPhase && stalls.CompareAndSwap(0, 1) {
					return WorkerStall, 0
				}
				return WorkerOK, 0
			},
		},
	}
	// The body ignores cancellation for a while: the zombie genuinely
	// outlives its lease and still emits, which must not duplicate output.
	mapper := MapperFunc(func(ctx context.Context, rec Record, emit Emit) error {
		time.Sleep(20 * time.Millisecond)
		emit(rec.Key, rec.Value)
		return nil
	})
	res, err := Run(context.Background(), spec, input, mapper, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Counters.LeaseExpiries == 0 {
		t.Fatal("expected at least one lease expiry")
	}
	if got := len(res.Output); got != len(input) {
		t.Fatalf("output records = %d, want %d (zombie output must be rejected)", got, len(input))
	}
}

// TestSpeculativeExecution makes one task's first attempt a straggler;
// the monitor must launch a backup that commits first.
func TestSpeculativeExecution(t *testing.T) {
	const n = 8
	input := makeInput(n)
	var slowHits atomic.Int32
	mapper := MapperFunc(func(ctx context.Context, rec Record, emit Emit) error {
		d := 4 * time.Millisecond
		// Input is one record per task, so the record key identifies the
		// task. Only the straggler's first attempt is slow.
		if rec.Key == "k007" && slowHits.Add(1) == 1 {
			d = 500 * time.Millisecond
		}
		if err := sleepCtx(ctx, d); err != nil {
			return err
		}
		emit(rec.Key, rec.Value)
		return nil
	})
	spec := Spec{
		Name:        "straggler",
		NumMapTasks: n,
		Workers:     4,
		Substrate: Substrate{
			Speculative:    true,
			HeartbeatEvery: time.Millisecond,
		},
	}
	res, err := Run(context.Background(), spec, input, mapper, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Counters.SpeculativeLaunches == 0 {
		t.Fatal("expected a speculative backup to launch")
	}
	if res.Counters.SpeculativeWins == 0 {
		t.Fatal("expected the backup to win against the straggler")
	}
	if got := len(res.Output); got != n {
		t.Fatalf("output records = %d, want %d (first commit wins must not duplicate)", got, n)
	}
}

// TestWorkerBlacklisting gives worker 1 a permanent flake: after
// BlacklistAfter failures it must be retired and the job must still
// complete on the healthy worker.
func TestWorkerBlacklisting(t *testing.T) {
	input := makeInput(6)
	spec := Spec{
		Name:        "blacklist",
		NumMapTasks: len(input),
		Workers:     2,
		MaxAttempts: 5,
		Substrate: Substrate{
			BlacklistAfter: 2,
			WorkerFaults: func(phase Phase, worker, incarnation, task, attempt int) (WorkerFault, time.Duration) {
				if worker == 1 {
					return WorkerFlake, 0
				}
				return WorkerOK, 0
			},
		},
	}
	res, err := Run(context.Background(), spec, input, echoTaskMapper(time.Millisecond), nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Counters.WorkersBlacklisted != 1 {
		t.Fatalf("WorkersBlacklisted = %d, want 1", res.Counters.WorkersBlacklisted)
	}
	if res.Counters.MapFailures != 2 {
		t.Fatalf("MapFailures = %d, want exactly BlacklistAfter=2", res.Counters.MapFailures)
	}
	if len(res.Output) != len(input) {
		t.Fatalf("output records = %d, want %d", len(res.Output), len(input))
	}
}

// TestAllWorkersBlacklistedFailsJob drains the whole pool and expects a
// prompt ErrNoWorkers failure instead of a wedged job.
func TestAllWorkersBlacklistedFailsJob(t *testing.T) {
	input := makeInput(4)
	spec := Spec{
		Name:        "drained",
		NumMapTasks: len(input),
		Workers:     2,
		MaxAttempts: 100, // tasks never exhaust attempts; the pool dies first
		Substrate: Substrate{
			BlacklistAfter: 1,
			WorkerFaults: func(Phase, int, int, int, int) (WorkerFault, time.Duration) {
				return WorkerFlake, 0
			},
		},
	}
	done := make(chan struct{})
	var err error
	go func() {
		defer close(done)
		_, err = Run(context.Background(), spec, input, echoTaskMapper(0), nil)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("job wedged after losing every worker")
	}
	if !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v, want ErrNoWorkers", err)
	}
}

// TestMultiTaskErrorsAggregated verifies the errors.Join satellite: when
// several tasks fail permanently, every one of them is reported.
func TestMultiTaskErrorsAggregated(t *testing.T) {
	input := makeInput(4)
	mapper := MapperFunc(func(ctx context.Context, rec Record, emit Emit) error {
		if rec.Key == "k001" || rec.Key == "k003" {
			return fmt.Errorf("broken record %s", rec.Key)
		}
		emit(rec.Key, rec.Value)
		return nil
	})
	spec := Spec{Name: "multi-err", NumMapTasks: len(input), Workers: 2, MaxAttempts: 2}
	_, err := Run(context.Background(), spec, input, mapper, nil)
	if !errors.Is(err, ErrTaskFailed) {
		t.Fatalf("err = %v, want ErrTaskFailed", err)
	}
	msg := err.Error()
	for _, want := range []string{"task 1", "task 3"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("aggregated error %q is missing %q", msg, want)
		}
	}
}

// TestJobCancellationMidMapNoLeaks cancels the job context mid-map with
// the full substrate armed (monitor, heartbeats, preemption timers) and
// checks Run returns promptly, leaks no goroutines, and leaves counters
// internally consistent.
func TestJobCancellationMidMapNoLeaks(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	firstTask := make(chan struct{})
	var once atomic.Bool
	mapper := MapperFunc(func(mctx context.Context, rec Record, emit Emit) error {
		if once.CompareAndSwap(false, true) {
			close(firstTask)
		}
		<-mctx.Done() // block until cancelled, like a long training step
		return mctx.Err()
	})
	go func() {
		<-firstTask
		cancel()
	}()

	input := makeInput(32)
	spec := Spec{
		Name:        "cancelled",
		NumMapTasks: len(input),
		Workers:     4,
		Substrate: Substrate{
			Speculative: true,
			Preemption:  preempt.FromMeanBetween(50*time.Millisecond, 7),
		},
	}
	start := time.Now()
	res, err := Run(ctx, spec, input, mapper, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Run took %v after cancellation, want prompt return", elapsed)
	}
	if len(res.Output) != 0 {
		t.Fatalf("cancelled job produced %d output records, want 0", len(res.Output))
	}
	c := res.Counters
	if c.MapAttempts < c.MapFailures {
		t.Fatalf("counters inconsistent: attempts=%d < failures=%d", c.MapAttempts, c.MapFailures)
	}
	if c.MapAttempts == 0 {
		t.Fatal("expected at least one attempt before cancellation")
	}

	// Every substrate goroutine (workers, monitor, heartbeats, watchers)
	// must wind down; poll briefly to let deferred exits run.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: before=%d now=%d\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSubstrateDisabledNoOverheadPath ensures the zero-value substrate
// keeps the original counter semantics (exercised heavily by the word
// count tests) and never reports substrate activity.
func TestSubstrateDisabledNoOverheadPath(t *testing.T) {
	input := makeInput(10)
	res, err := Run(context.Background(), Spec{Name: "plain", Workers: 4}, input, echoTaskMapper(0), nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	c := res.Counters
	if c.Preemptions+c.LeaseExpiries+c.SpeculativeLaunches+c.SpeculativeWins+c.WorkersBlacklisted != 0 {
		t.Fatalf("substrate counters nonzero on a plain job: %+v", c)
	}
	if len(res.Output) != len(input) {
		t.Fatalf("output records = %d, want %d", len(res.Output), len(input))
	}
}

// TestCountersAdd covers the aggregation used by the pipeline and /statz.
func TestCountersAdd(t *testing.T) {
	a := Counters{MapAttempts: 3, Preemptions: 2, WorkersObserved: 4, SpeculativeWins: 1}
	b := Counters{MapAttempts: 2, Preemptions: 1, WorkersObserved: 2, LeaseExpiries: 5}
	a.Add(b)
	if a.MapAttempts != 5 || a.Preemptions != 3 || a.LeaseExpiries != 5 || a.SpeculativeWins != 1 {
		t.Fatalf("Add mismatch: %+v", a)
	}
	if a.WorkersObserved != 4 {
		t.Fatalf("WorkersObserved should keep the max, got %d", a.WorkersObserved)
	}
}
