package mapreduce

import (
	"reflect"
	"testing"
)

// highWaterFields are aggregated by max, not sum, in Counters.Add.
var highWaterFields = map[string]bool{"WorkersObserved": true}

// TestCountersAddCoversEveryField fails when a counter field is added to
// Counters but not aggregated in Add — exactly the drift risk of the
// field-by-field implementation. Every field gets a distinct nonzero
// value; adding into a zero Counters must reproduce each one (true for
// both sum and high-water semantics), and adding a second time must
// double the summed fields while the high-water marks hold.
func TestCountersAddCoversEveryField(t *testing.T) {
	var o Counters
	ov := reflect.ValueOf(&o).Elem()
	typ := ov.Type()
	for i := 0; i < ov.NumField(); i++ {
		if ov.Field(i).Kind() != reflect.Int64 {
			t.Fatalf("Counters.%s is a %s; this test (and probably Add) only understands int64 — extend both",
				typ.Field(i).Name, ov.Field(i).Kind())
		}
		ov.Field(i).SetInt(int64(i + 1))
	}

	var c Counters
	c.Add(o)
	cv := reflect.ValueOf(c)
	for i := 0; i < cv.NumField(); i++ {
		if got, want := cv.Field(i).Int(), int64(i+1); got != want {
			t.Errorf("after Add into zero, Counters.%s = %d, want %d — new field not aggregated in Add?",
				typ.Field(i).Name, got, want)
		}
	}

	c.Add(o)
	cv = reflect.ValueOf(c)
	for i := 0; i < cv.NumField(); i++ {
		name := typ.Field(i).Name
		want := int64(2 * (i + 1))
		if highWaterFields[name] {
			want = int64(i + 1) // max(x, x) = x
		}
		if got := cv.Field(i).Int(); got != want {
			t.Errorf("after second Add, Counters.%s = %d, want %d", name, got, want)
		}
	}
}
