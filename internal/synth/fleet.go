package synth

import (
	"fmt"
	"math"
	"sort"

	"sigmund/internal/catalog"
	"sigmund/internal/interactions"
	"sigmund/internal/linalg"
)

// FleetSpec describes a population of retailers with power-law size skew —
// the heterogeneity that drives most of Sigmund's systems design (Section
// IV): "the largest retailer in our system has tens of millions of items
// ... the smallest retailer only has a few dozen items".
type FleetSpec struct {
	NumRetailers int
	// MinItems/MaxItems bound inventory sizes; sizes follow a power law
	// between them (many small retailers, few large ones).
	MinItems int
	MaxItems int
	// SizeExponent shapes the power law (larger = more skew). Typical: 1.2.
	SizeExponent float64
	// UsersPerItem and EventsPerUserMean scale traffic with inventory.
	UsersPerItem      float64
	EventsPerUserMean float64
	Days              int
	Seed              uint64
	// HourlyFraction / BestEffortFraction assign freshness tiers for the
	// continuous scheduler: the largest HourlyFraction of retailers (by
	// catalog size) become "hourly", the smallest BestEffortFraction
	// become "best-effort", everyone else "daily". Both default to 0 (the
	// whole fleet daily — the legacy cadence). The tier names match
	// internal/sched's Tier values; synth keeps plain strings so the
	// generator stays dependency-free.
	HourlyFraction     float64
	BestEffortFraction float64
}

// Defaulted returns spec with zero fields replaced by usable defaults.
func (s FleetSpec) Defaulted() FleetSpec {
	if s.NumRetailers <= 0 {
		s.NumRetailers = 10
	}
	if s.MinItems <= 0 {
		s.MinItems = 40
	}
	if s.MaxItems < s.MinItems {
		s.MaxItems = s.MinItems * 50
	}
	if s.SizeExponent <= 0 {
		s.SizeExponent = 1.2
	}
	if s.UsersPerItem <= 0 {
		s.UsersPerItem = 0.5
	}
	if s.EventsPerUserMean <= 0 {
		s.EventsPerUserMean = 12
	}
	if s.Days <= 0 {
		s.Days = 1
	}
	return s
}

// GenerateFleet builds NumRetailers synthetic retailers. Retailer i is
// reproducible independently: its seed derives from (fleet seed, i).
func GenerateFleet(spec FleetSpec) []*Retailer {
	spec = spec.Defaulted()
	rng := linalg.NewRNG(spec.Seed)
	out := make([]*Retailer, spec.NumRetailers)
	for i := range out {
		// Power-law size: invert CDF of p(x) ∝ x^-a on [min, max].
		u := rng.Float64()
		a := spec.SizeExponent
		lo, hi := float64(spec.MinItems), float64(spec.MaxItems)
		var size float64
		if a == 1 {
			size = lo * math.Pow(hi/lo, u)
		} else {
			oneMinusA := 1 - a
			size = math.Pow(u*(math.Pow(hi, oneMinusA)-math.Pow(lo, oneMinusA))+math.Pow(lo, oneMinusA), 1/oneMinusA)
		}
		nItems := int(size)
		if nItems < spec.MinItems {
			nItems = spec.MinItems
		}
		nUsers := int(float64(nItems) * spec.UsersPerItem)
		if nUsers < 10 {
			nUsers = 10
		}
		rs := RetailerSpec{
			ID:                catalog.RetailerID(fmt.Sprintf("retailer-%03d", i)),
			NumItems:          nItems,
			NumUsers:          nUsers,
			EventsPerUserMean: spec.EventsPerUserMean,
			Days:              spec.Days,
			NumBrands:         5 + rng.Intn(20),
			BrandCoverage:     rng.Float64(), // deliberately spans 0..1: some retailers have poor brand data
			PriceCoverage:     0.5 + 0.5*rng.Float64(),
			Seed:              rng.Uint64(),
		}
		out[i] = GenerateRetailer(rs)
	}
	assignTiers(out, spec)
	return out
}

// assignTiers stamps freshness tiers by catalog size: the biggest
// retailers churn fastest (hourly), the smallest can wait (best-effort).
// Ties break by ID so the assignment is deterministic.
func assignTiers(fleet []*Retailer, spec FleetSpec) {
	order := make([]int, len(fleet))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ra, rb := fleet[order[a]], fleet[order[b]]
		if ra.Spec.NumItems != rb.Spec.NumItems {
			return ra.Spec.NumItems > rb.Spec.NumItems
		}
		return ra.Spec.ID < rb.Spec.ID
	})
	hourly := int(math.Ceil(spec.HourlyFraction * float64(len(fleet))))
	bestEffort := int(math.Ceil(spec.BestEffortFraction * float64(len(fleet))))
	if hourly+bestEffort > len(fleet) {
		bestEffort = len(fleet) - hourly
	}
	for rank, idx := range order {
		switch {
		case rank < hourly:
			fleet[idx].Tier = "hourly"
		case rank >= len(fleet)-bestEffort:
			fleet[idx].Tier = "best-effort"
		default:
			fleet[idx].Tier = "daily"
		}
	}
}

// ClickModel converts ground-truth affinity into click behaviour for the
// serving simulation that regenerates Figure 6. A recommendation shown at
// position p (0-based) to user u is clicked with probability
//
//	examine(p) * sigmoid(scale * (affinity - threshold))
//
// where examine is a position-discount (users look at the top slots more),
// matching standard cascade-style click models.
type ClickModel struct {
	Threshold float64 // affinity at which click probability is 50% (pre-discount)
	Scale     float64 // steepness
	// PosDiscount[p] multiplies the click probability at position p; the
	// last entry applies to all deeper positions.
	PosDiscount []float64
}

// DefaultClickModel returns the model used by the experiment harness.
func DefaultClickModel() ClickModel {
	return ClickModel{
		Threshold:   1.0,
		Scale:       1.5,
		PosDiscount: []float64{1.0, 0.85, 0.7, 0.6, 0.5, 0.42, 0.36, 0.3, 0.26, 0.22},
	}
}

// ClickProb returns the probability user u clicks item i shown at position
// pos.
func (m ClickModel) ClickProb(g *GroundTruth, c *catalog.Catalog, u interactions.UserID, i catalog.ItemID, pos int) float64 {
	d := m.PosDiscount[len(m.PosDiscount)-1]
	if pos < len(m.PosDiscount) {
		d = m.PosDiscount[pos]
	}
	return d * linalg.Sigmoid(m.Scale*(g.Affinity(c, u, i)-m.Threshold))
}

// CalibratedClickModel fits the threshold and scale to a retailer's actual
// affinity distribution, so click probabilities discriminate between good
// and mediocre recommendations instead of saturating. The threshold sits
// one standard deviation above the mean random user-item affinity; the
// scale is inversely proportional to that deviation.
func CalibratedClickModel(g *GroundTruth, c *catalog.Catalog, nUsers int, rng *linalg.RNG) ClickModel {
	const samples = 2000
	var sum, sumsq float64
	for s := 0; s < samples; s++ {
		u := interactions.UserID(rng.Intn(nUsers))
		i := catalog.ItemID(rng.Intn(c.NumItems()))
		a := g.Affinity(c, u, i)
		sum += a
		sumsq += a * a
	}
	mean := sum / samples
	sd := math.Sqrt(sumsq/samples - mean*mean)
	if sd < 1e-6 {
		sd = 1
	}
	m := DefaultClickModel()
	m.Threshold = mean + 1.2*sd
	m.Scale = 1.5 / sd
	return m
}
