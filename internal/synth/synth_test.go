package synth

import (
	"math"
	"testing"

	"sigmund/internal/catalog"
	"sigmund/internal/interactions"
	"sigmund/internal/linalg"
)

func smallSpec(seed uint64) RetailerSpec {
	return RetailerSpec{
		ID:                "test-shop",
		NumItems:          120,
		NumUsers:          80,
		EventsPerUserMean: 15,
		NumBrands:         6,
		BrandCoverage:     0.6,
		Seed:              seed,
	}
}

func TestGenerateRetailerBasics(t *testing.T) {
	r := GenerateRetailer(smallSpec(1))
	if r.Catalog.NumItems() != 120 {
		t.Fatalf("NumItems = %d", r.Catalog.NumItems())
	}
	if r.Log.Len() == 0 {
		t.Fatal("no events generated")
	}
	for _, e := range r.Log.Events() {
		if int(e.Item) < 0 || int(e.Item) >= 120 {
			t.Fatalf("event references unknown item %d", e.Item)
		}
		if int(e.User) < 0 || int(e.User) >= 80 {
			t.Fatalf("event references unknown user %d", e.User)
		}
	}
}

func TestGenerateRetailerDeterministic(t *testing.T) {
	a := GenerateRetailer(smallSpec(7))
	b := GenerateRetailer(smallSpec(7))
	if a.Log.Len() != b.Log.Len() {
		t.Fatalf("same seed, different event counts: %d vs %d", a.Log.Len(), b.Log.Len())
	}
	ea, eb := a.Log.Events(), b.Log.Events()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
	c := GenerateRetailer(smallSpec(8))
	if c.Log.Len() == a.Log.Len() {
		// Lengths colliding is possible but the full streams should differ.
		same := true
		ec := c.Log.Events()
		for i := range ea {
			if ea[i] != ec[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical logs")
		}
	}
}

func TestEventTypeSkew(t *testing.T) {
	// Conversions must be much rarer than views (Section III-A: "orders of
	// magnitude fewer"). At this small scale we require at least 5x.
	r := GenerateRetailer(RetailerSpec{NumItems: 300, NumUsers: 400, EventsPerUserMean: 20, Seed: 3})
	c := r.Log.CountByType()
	if c[interactions.View] == 0 {
		t.Fatal("no views generated")
	}
	if c[interactions.Conversion]*5 > c[interactions.View] {
		t.Fatalf("conversion/view ratio too high: %v", c)
	}
	if c[interactions.Search] > c[interactions.View] {
		t.Fatalf("searches exceed views: %v", c)
	}
}

func TestPopularityLongTail(t *testing.T) {
	r := GenerateRetailer(RetailerSpec{NumItems: 500, NumUsers: 600, EventsPerUserMean: 20, Seed: 4})
	stats := interactions.ComputeItemStats(r.Log, r.Catalog.NumItems())
	order := stats.PopularityOrder()
	// Top 10% of items should dominate interactions; the tail half should
	// still get some — that is the long tail Figure 6 studies.
	head := 0
	for _, id := range order[:50] {
		head += stats.Total[id]
	}
	tail := 0
	for _, id := range order[250:] {
		tail += stats.Total[id]
	}
	if head <= tail {
		t.Fatalf("no popularity skew: head=%d tail=%d", head, tail)
	}
	if head < r.Log.Len()/4 {
		t.Fatalf("head too weak: %d of %d", head, r.Log.Len())
	}
}

func TestTaxonomyCoherence(t *testing.T) {
	// Items in the same leaf category must be more similar (ground truth)
	// than items in different top-level departments, on average.
	r := GenerateRetailer(RetailerSpec{NumItems: 300, NumUsers: 10, EventsPerUserMean: 1, Seed: 5})
	tx := r.Catalog.Tax
	var same, diff []float64
	items := r.Catalog.Items()
	for i := 0; i < 200; i++ {
		a, b := items[i%len(items)], items[(i*7+3)%len(items)]
		if a.ID == b.ID {
			continue
		}
		sim := float64(linalg.CosineSim(r.Truth.Item(a.ID), r.Truth.Item(b.ID)))
		if a.Category == b.Category {
			same = append(same, sim)
		} else if tx.Distance(a.Category, b.Category) >= 3 {
			diff = append(diff, sim)
		}
	}
	if len(same) == 0 || len(diff) == 0 {
		t.Skip("sample did not produce both groups")
	}
	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if mean(same) <= mean(diff) {
		t.Fatalf("same-category similarity %.3f <= cross-department %.3f", mean(same), mean(diff))
	}
}

func TestAffinityBrandAndPrice(t *testing.T) {
	r := GenerateRetailer(smallSpec(9))
	// Find a user with a preferred brand and an item of that brand.
	for u := 0; u < r.Spec.NumUsers; u++ {
		b := r.Truth.PreferredBrand[u]
		if b == catalog.NoBrand {
			continue
		}
		for _, it := range r.Catalog.Items() {
			if it.Brand != b {
				continue
			}
			uid := interactions.UserID(u)
			base := float64(linalg.Dot(r.Truth.User(uid), r.Truth.Item(it.ID)))
			aff := r.Truth.Affinity(r.Catalog, uid, it.ID)
			// Brand bonus is +0.5 before any price penalty.
			if aff < base-3 || aff > base+1 {
				t.Fatalf("affinity %v implausibly far from base %v", aff, base)
			}
			if r.Truth.PriceTarget[u] < 0 && aff != base+0.5 { // default BrandAffinity
				t.Fatalf("price-insensitive user: affinity %v != base+0.5 (%v)", aff, base+0.5)
			}
			return
		}
	}
	t.Skip("no brand-affine user with matching item in sample")
}

func TestGenerateFleetSizes(t *testing.T) {
	fleet := GenerateFleet(FleetSpec{NumRetailers: 12, MinItems: 30, MaxItems: 600, Seed: 10})
	if len(fleet) != 12 {
		t.Fatalf("fleet size = %d", len(fleet))
	}
	minSeen, maxSeen := math.MaxInt, 0
	ids := map[catalog.RetailerID]bool{}
	for _, r := range fleet {
		n := r.Catalog.NumItems()
		if n < 30 {
			t.Fatalf("retailer below MinItems: %d", n)
		}
		if n < minSeen {
			minSeen = n
		}
		if n > maxSeen {
			maxSeen = n
		}
		if ids[r.Catalog.Retailer] {
			t.Fatalf("duplicate retailer id %s", r.Catalog.Retailer)
		}
		ids[r.Catalog.Retailer] = true
	}
	if maxSeen <= 2*minSeen {
		t.Fatalf("no size heterogeneity: min=%d max=%d", minSeen, maxSeen)
	}
}

func TestClickModel(t *testing.T) {
	r := GenerateRetailer(smallSpec(11))
	m := DefaultClickModel()
	u := interactions.UserID(0)
	// Position monotonicity: same item, deeper position, lower click prob.
	var prev float64 = 2
	for pos := 0; pos < 12; pos++ {
		p := m.ClickProb(r.Truth, r.Catalog, u, 0, pos)
		if p < 0 || p > 1 {
			t.Fatalf("click prob out of range: %v", p)
		}
		if p > prev {
			t.Fatalf("click prob increased with position at %d", pos)
		}
		prev = p
	}
	// Affinity monotonicity: find two items with clearly different affinity.
	var lo, hi catalog.ItemID = -1, -1
	var loA, hiA float64
	for i := 0; i < r.Catalog.NumItems(); i++ {
		a := r.Truth.Affinity(r.Catalog, u, catalog.ItemID(i))
		if lo == -1 || a < loA {
			lo, loA = catalog.ItemID(i), a
		}
		if hi == -1 || a > hiA {
			hi, hiA = catalog.ItemID(i), a
		}
	}
	if hiA-loA > 0.5 {
		if m.ClickProb(r.Truth, r.Catalog, u, hi, 0) <= m.ClickProb(r.Truth, r.Catalog, u, lo, 0) {
			t.Fatal("higher affinity did not yield higher click probability")
		}
	}
}

func TestDefaultedSpec(t *testing.T) {
	s := RetailerSpec{}.Defaulted()
	if s.NumItems == 0 || s.NumUsers == 0 || s.TruthDim == 0 || s.PopularityExponent == 0 {
		t.Fatalf("Defaulted left zeros: %+v", s)
	}
	f := FleetSpec{}.Defaulted()
	if f.NumRetailers == 0 || f.MaxItems < f.MinItems {
		t.Fatalf("FleetSpec.Defaulted bad: %+v", f)
	}
}

func TestDaysSpreadEvents(t *testing.T) {
	r := GenerateRetailer(RetailerSpec{NumItems: 100, NumUsers: 100, EventsPerUserMean: 10, Days: 3, Seed: 12})
	daySeen := map[int64]bool{}
	for _, e := range r.Log.Events() {
		daySeen[e.Time/TicksPerDay] = true
	}
	if len(daySeen) != 3 {
		t.Fatalf("events on %d days, want 3", len(daySeen))
	}
}

func TestCalibratedClickModel(t *testing.T) {
	r := GenerateRetailer(smallSpec(13))
	m := CalibratedClickModel(r.Truth, r.Catalog, r.Spec.NumUsers, linalg.NewRNG(1))
	if m.Scale <= 0 || m.Threshold == 0 {
		t.Fatalf("degenerate calibration: %+v", m)
	}
	// Random-pair click probability at position 0 should be clearly below
	// 50% (threshold sits above the mean affinity).
	rng := linalg.NewRNG(2)
	var sum float64
	const n = 500
	for i := 0; i < n; i++ {
		u := interactions.UserID(rng.Intn(r.Spec.NumUsers))
		it := catalog.ItemID(rng.Intn(r.Catalog.NumItems()))
		sum += m.ClickProb(r.Truth, r.Catalog, u, it, 0)
	}
	mean := sum / n
	if mean > 0.4 || mean < 0.01 {
		t.Fatalf("random-pair click prob %v outside the calibrated regime", mean)
	}
}
