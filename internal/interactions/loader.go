package interactions

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"sigmund/internal/catalog"
)

// CSV interaction-log interchange format: a header row then
//
//	user_id,item_id,type,time
//	17,3,view,1690000000
//
// Types are view/search/cart/conversion (or buy). The format is what a
// retailer would export from their clickstream warehouse.

// LoadCSV reads an interaction log from CSV. Item ids are validated
// against numItems when numItems > 0.
func LoadCSV(r io.Reader, numItems int) (*Log, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("interactions: reading CSV header: %w", err)
	}
	if header[0] != "user_id" || header[1] != "item_id" || header[2] != "type" || header[3] != "time" {
		return nil, fmt.Errorf("interactions: unexpected CSV header %v", header)
	}
	log := NewLog()
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("interactions: line %d: %w", line, err)
		}
		user, err := strconv.ParseInt(rec[0], 10, 32)
		if err != nil || user < 0 {
			return nil, fmt.Errorf("interactions: line %d: bad user_id %q", line, rec[0])
		}
		item, err := strconv.ParseInt(rec[1], 10, 32)
		if err != nil || item < 0 {
			return nil, fmt.Errorf("interactions: line %d: bad item_id %q", line, rec[1])
		}
		if numItems > 0 && item >= int64(numItems) {
			return nil, fmt.Errorf("interactions: line %d: item_id %d outside catalog of %d items", line, item, numItems)
		}
		et, err := ParseEventType(rec[2])
		if err != nil {
			return nil, fmt.Errorf("interactions: line %d: %w", line, err)
		}
		ts, err := strconv.ParseInt(rec[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("interactions: line %d: bad time %q", line, rec[3])
		}
		log.Append(Event{
			User: UserID(user),
			Item: catalog.ItemID(item),
			Type: et,
			Time: ts,
		})
	}
	return log, nil
}

// SaveCSV writes the log in the interchange format.
func (l *Log) SaveCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"user_id", "item_id", "type", "time"}); err != nil {
		return err
	}
	for _, e := range l.Events() {
		rec := []string{
			strconv.FormatInt(int64(e.User), 10),
			strconv.FormatInt(int64(e.Item), 10),
			e.Type.String(),
			strconv.FormatInt(e.Time, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ParseEventType parses the lowercase names used in logs and APIs ("buy"
// is accepted as an alias for conversion).
func ParseEventType(s string) (EventType, error) {
	switch s {
	case "view":
		return View, nil
	case "search":
		return Search, nil
	case "cart":
		return Cart, nil
	case "conversion", "buy":
		return Conversion, nil
	}
	return 0, fmt.Errorf("interactions: unknown event type %q", s)
}
