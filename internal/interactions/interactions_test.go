package interactions

import (
	"testing"
	"testing/quick"

	"sigmund/internal/catalog"
	"sigmund/internal/linalg"
)

func ev(u UserID, it catalog.ItemID, t EventType, tm int64) Event {
	return Event{User: u, Item: it, Type: t, Time: tm}
}

func TestEventTypeOrdering(t *testing.T) {
	if !Search.Stronger(View) || !Cart.Stronger(Search) || !Conversion.Stronger(Cart) {
		t.Fatal("strength order view < search < cart < conversion broken")
	}
	if View.Stronger(View) {
		t.Fatal("an event type is not stronger than itself")
	}
	names := map[EventType]string{View: "view", Search: "search", Cart: "cart", Conversion: "conversion"}
	for et, want := range names {
		if et.String() != want {
			t.Errorf("String(%d) = %q, want %q", et, et.String(), want)
		}
	}
	if EventType(9).String() != "EventType(9)" {
		t.Errorf("unknown event type String = %q", EventType(9).String())
	}
}

func TestLogSorting(t *testing.T) {
	l := NewLog()
	l.Append(ev(2, 0, View, 10))
	l.Append(ev(1, 1, View, 5)) // out of order
	l.Append(ev(1, 2, Search, 7))
	events := l.Events()
	if events[0].Time != 5 || events[1].Time != 7 || events[2].Time != 10 {
		t.Fatalf("Events not time-sorted: %+v", events)
	}
	// Ties broken by user.
	l2 := NewLog()
	l2.Append(ev(5, 0, View, 1))
	l2.Append(ev(3, 1, View, 1))
	es := l2.Events()
	if es[0].User != 3 || es[1].User != 5 {
		t.Fatalf("tie-break by user failed: %+v", es)
	}
}

func TestCountByType(t *testing.T) {
	l := NewLog()
	l.Append(ev(0, 0, View, 1))
	l.Append(ev(0, 1, View, 2))
	l.Append(ev(0, 1, Cart, 3))
	l.Append(ev(0, 1, Conversion, 4))
	c := l.CountByType()
	if c[View] != 2 || c[Search] != 0 || c[Cart] != 1 || c[Conversion] != 1 {
		t.Fatalf("CountByType = %v", c)
	}
}

func TestWindow(t *testing.T) {
	l := NewLog()
	for i := int64(0); i < 10; i++ {
		l.Append(ev(0, catalog.ItemID(i), View, i))
	}
	w := l.Window(3, 7)
	if w.Len() != 4 {
		t.Fatalf("Window(3,7) has %d events, want 4", w.Len())
	}
	for _, e := range w.Events() {
		if e.Time < 3 || e.Time >= 7 {
			t.Fatalf("event outside window: %+v", e)
		}
	}
}

func TestBySequence(t *testing.T) {
	l := NewLog()
	l.Append(ev(1, 0, View, 1))
	l.Append(ev(0, 1, View, 2))
	l.Append(ev(1, 2, Search, 3))
	seqs := l.BySequence()
	if len(seqs) != 2 {
		t.Fatalf("got %d sequences, want 2", len(seqs))
	}
	if seqs[0].User != 0 || seqs[1].User != 1 {
		t.Fatalf("sequences not ordered by user: %+v", seqs)
	}
	if len(seqs[1].Events) != 2 || seqs[1].Events[0].Item != 0 || seqs[1].Events[1].Item != 2 {
		t.Fatalf("user 1 sequence wrong: %+v", seqs[1].Events)
	}
}

func TestContextBefore(t *testing.T) {
	seq := UserSequence{User: 0, Events: []Event{
		ev(0, 10, View, 1), ev(0, 11, Search, 2), ev(0, 12, Cart, 3), ev(0, 13, Conversion, 4),
	}}
	ctx := ContextBefore(seq, 3, 25)
	if len(ctx) != 3 || ctx[0].Item != 10 || ctx[2].Item != 12 {
		t.Fatalf("ContextBefore(3) = %+v", ctx)
	}
	// Truncation keeps the most recent actions.
	ctx = ContextBefore(seq, 4, 2)
	if len(ctx) != 2 || ctx[0].Item != 12 || ctx[1].Item != 13 {
		t.Fatalf("truncated context = %+v", ctx)
	}
	// n beyond sequence length clamps.
	ctx = ContextBefore(seq, 99, 25)
	if len(ctx) != 4 {
		t.Fatalf("clamped context = %+v", ctx)
	}
}

func TestContextHelpers(t *testing.T) {
	ctx := Context{{View, 1}, {Search, 2}, {View, 3}}
	if !ctx.Contains(2) || ctx.Contains(9) {
		t.Error("Contains wrong")
	}
	if got := ctx.LastOfType(View); got != 3 {
		t.Errorf("LastOfType(View) = %d, want 3", got)
	}
	if got := ctx.LastOfType(Conversion); got != catalog.NoItem {
		t.Errorf("LastOfType(missing) = %d, want NoItem", got)
	}
	if got := ctx.Truncate(2); len(got) != 2 || got[0].Item != 2 {
		t.Errorf("Truncate = %+v", got)
	}
	if got := ctx.Truncate(10); len(got) != 3 {
		t.Errorf("Truncate beyond length = %+v", got)
	}
}

func TestHoldoutSplitProtocol(t *testing.T) {
	l := NewLog()
	// User 0: 4 interactions -> eligible, last item (13) held out.
	l.Append(ev(0, 10, View, 1))
	l.Append(ev(0, 11, View, 2))
	l.Append(ev(0, 12, Search, 3))
	l.Append(ev(0, 13, Conversion, 4))
	// User 1: exactly 2 interactions -> NOT eligible ("more than 2").
	l.Append(ev(1, 20, View, 1))
	l.Append(ev(1, 21, View, 2))
	// User 2: 1 interaction -> not eligible.
	l.Append(ev(2, 30, View, 5))

	s := HoldoutSplit(l, 25)
	if len(s.Holdout) != 1 {
		t.Fatalf("holdout size = %d, want 1", len(s.Holdout))
	}
	h := s.Holdout[0]
	if h.User != 0 || h.Item != 13 {
		t.Fatalf("holdout example = %+v", h)
	}
	if len(h.Context) != 3 || h.Context[2].Item != 12 {
		t.Fatalf("holdout context = %+v", h.Context)
	}
	// Train keeps everything except user 0's last event.
	if s.Train.Len() != 6 {
		t.Fatalf("train size = %d, want 6", s.Train.Len())
	}
	for _, e := range s.Train.Events() {
		if e.User == 0 && e.Item == 13 {
			t.Fatal("held-out event leaked into training data")
		}
	}
}

func TestHoldoutSplitContextTruncation(t *testing.T) {
	l := NewLog()
	for i := int64(0); i < 40; i++ {
		l.Append(ev(0, catalog.ItemID(i), View, i))
	}
	s := HoldoutSplit(l, 25)
	if len(s.Holdout) != 1 {
		t.Fatalf("holdout size = %d", len(s.Holdout))
	}
	if got := len(s.Holdout[0].Context); got != 25 {
		t.Fatalf("context length = %d, want 25 (K from the paper)", got)
	}
	// Most recent context action is event 38 (event 39 held out).
	if got := s.Holdout[0].Context[24].Item; got != 38 {
		t.Fatalf("newest context item = %d, want 38", got)
	}
}

func TestItemStats(t *testing.T) {
	l := NewLog()
	l.Append(ev(0, 0, View, 1))
	l.Append(ev(1, 0, View, 2))
	l.Append(ev(0, 1, Conversion, 3))
	s := ComputeItemStats(l, 3)
	if s.Count[View][0] != 2 || s.Count[Conversion][1] != 1 || s.Total[2] != 0 {
		t.Fatalf("stats = %+v", s)
	}
	order := s.PopularityOrder()
	if order[0] != 0 {
		t.Fatalf("PopularityOrder = %v, want item 0 first", order)
	}
}

// Property: HoldoutSplit conserves events — every input event is either in
// Train or is the single held-out final event of an eligible user.
func TestHoldoutSplitConservation(t *testing.T) {
	f := func(seed uint64) bool {
		rng := linalg.NewRNG(seed)
		l := NewLog()
		nUsers := 1 + rng.Intn(10)
		total := 0
		for u := 0; u < nUsers; u++ {
			n := rng.Intn(8)
			for i := 0; i < n; i++ {
				l.Append(ev(UserID(u), catalog.ItemID(rng.Intn(20)), EventType(rng.Intn(4)), int64(total)))
				total++
			}
		}
		s := HoldoutSplit(l, 25)
		return s.Train.Len()+len(s.Holdout) == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
