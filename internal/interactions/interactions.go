// Package interactions models the implicit-feedback interaction log that is
// Sigmund's training input: views, searches, cart-adds, and conversions,
// ordered by increasing strength (Section III-A of the paper). There are no
// explicit ratings anywhere in the system.
//
// The package also implements the user-context representation from Section
// III-B2: a user is not an identifier with its own embedding but the
// sequence of their last K actions, so the model generalizes to brand-new
// users without retraining.
package interactions

import (
	"fmt"
	"sort"

	"sigmund/internal/catalog"
)

// UserID identifies a user within one retailer's log. Like item ids they
// are dense and retailer-local.
type UserID int32

// EventType is the kind of user interaction. The declared order IS the
// strength order from the paper: View < Search < Cart < Conversion.
type EventType uint8

const (
	View EventType = iota
	Search
	Cart
	Conversion
	numEventTypes
)

// NumEventTypes is the number of distinct interaction strengths.
const NumEventTypes = int(numEventTypes)

// String returns the lowercase name used in logs and config records.
func (e EventType) String() string {
	switch e {
	case View:
		return "view"
	case Search:
		return "search"
	case Cart:
		return "cart"
	case Conversion:
		return "conversion"
	}
	return fmt.Sprintf("EventType(%d)", uint8(e))
}

// Stronger reports whether e carries more intent than o
// (conversion > cart > search > view).
func (e EventType) Stronger(o EventType) bool { return e > o }

// Event is one user interaction. Time is an abstract non-decreasing tick
// (the synthetic generator uses one tick per simulated action; a production
// loader would use epoch seconds).
type Event struct {
	User UserID
	Item catalog.ItemID
	Type EventType
	Time int64
}

// Action is an (EventType, ItemID) pair inside a user context.
type Action struct {
	Type EventType
	Item catalog.ItemID
}

// Context is the sequence of a user's most recent actions, oldest first.
// Per the paper the user embedding is a decayed linear combination of the
// context items' embeddings (Equation 1), with K ≈ 25.
type Context []Action

// DefaultContextLength is the K from the paper ("usually about 25").
const DefaultContextLength = 25

// Truncate returns the context restricted to its most recent k actions.
func (c Context) Truncate(k int) Context {
	if len(c) <= k {
		return c
	}
	return c[len(c)-k:]
}

// Contains reports whether the context includes item id with any action
// type.
func (c Context) Contains(id catalog.ItemID) bool {
	for _, a := range c {
		if a.Item == id {
			return true
		}
	}
	return false
}

// LastOfType returns the most recent item the user touched with the given
// event type, or NoItem.
func (c Context) LastOfType(t EventType) catalog.ItemID {
	for i := len(c) - 1; i >= 0; i-- {
		if c[i].Type == t {
			return c[i].Item
		}
	}
	return catalog.NoItem
}

// Log is a retailer's full interaction history. Events append in time
// order per user; across users the builder sorts on demand.
type Log struct {
	events []Event
	sorted bool
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{sorted: true} }

// Append adds an event to the log.
func (l *Log) Append(e Event) {
	if n := len(l.events); n > 0 && l.sorted {
		last := l.events[n-1]
		if e.Time < last.Time || (e.Time == last.Time && e.User < last.User) {
			l.sorted = false
		}
	}
	l.events = append(l.events, e)
}

// Len returns the number of events.
func (l *Log) Len() int { return len(l.events) }

// Events returns the events sorted by (time, user). The slice must not be
// modified.
func (l *Log) Events() []Event {
	l.ensureSorted()
	return l.events
}

func (l *Log) ensureSorted() {
	if l.sorted {
		return
	}
	sort.SliceStable(l.events, func(i, j int) bool {
		if l.events[i].Time != l.events[j].Time {
			return l.events[i].Time < l.events[j].Time
		}
		return l.events[i].User < l.events[j].User
	})
	l.sorted = true
}

// CountByType returns per-EventType event counts. In realistic logs
// conversions and cart events are orders of magnitude rarer than views.
func (l *Log) CountByType() [NumEventTypes]int {
	var out [NumEventTypes]int
	for i := range l.events {
		out[l.events[i].Type]++
	}
	return out
}

// Window returns a new Log holding only events with from <= Time < to.
// The daily pipeline uses windows both for incremental training (today's
// events) and for the periodic full restart that drops long-term history,
// a terms-of-service constraint described in Section III-C3.
func (l *Log) Window(from, to int64) *Log {
	l.ensureSorted()
	out := NewLog()
	for _, e := range l.events {
		if e.Time >= from && e.Time < to {
			out.Append(e)
		}
	}
	return out
}

// UserSequence is one user's events in time order.
type UserSequence struct {
	User   UserID
	Events []Event
}

// BySequence groups the log into per-user sequences ordered by user id;
// each sequence is in time order. This is the unit from which training
// examples and holdout sets are built.
func (l *Log) BySequence() []UserSequence {
	l.ensureSorted()
	byUser := make(map[UserID][]Event)
	for _, e := range l.events {
		byUser[e.User] = append(byUser[e.User], e)
	}
	users := make([]UserID, 0, len(byUser))
	for u := range byUser {
		users = append(users, u)
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
	out := make([]UserSequence, len(users))
	for i, u := range users {
		out[i] = UserSequence{User: u, Events: byUser[u]}
	}
	return out
}

// ContextBefore returns the user context induced by the first n events of
// seq, truncated to the most recent maxLen actions.
func ContextBefore(seq UserSequence, n, maxLen int) Context {
	if n > len(seq.Events) {
		n = len(seq.Events)
	}
	start := 0
	if n > maxLen {
		start = n - maxLen
	}
	ctx := make(Context, 0, n-start)
	for _, e := range seq.Events[start:n] {
		ctx = append(ctx, Action{Type: e.Type, Item: e.Item})
	}
	return ctx
}

// Split is a train/holdout division of a log.
type Split struct {
	Train *Log
	// Holdout has one entry per eligible user: the user's context at the
	// moment of their final interaction, plus the held-out item itself.
	Holdout []HoldoutExample
}

// HoldoutExample is a single evaluation case: given Context, the model
// should rank Item highly.
type HoldoutExample struct {
	User    UserID
	Context Context
	Item    catalog.ItemID
}

// HoldoutSplit implements the paper's evaluation protocol (Section III-C2):
// for every user with more than 2 interactions, the last item in their
// sequence is withheld from training and becomes an evaluation example; all
// other events train. Contexts are truncated to maxCtx actions.
func HoldoutSplit(l *Log, maxCtx int) Split {
	train := NewLog()
	var holdout []HoldoutExample
	for _, seq := range l.BySequence() {
		n := len(seq.Events)
		if n <= 2 {
			for _, e := range seq.Events {
				train.Append(e)
			}
			continue
		}
		for _, e := range seq.Events[:n-1] {
			train.Append(e)
		}
		holdout = append(holdout, HoldoutExample{
			User:    seq.User,
			Context: ContextBefore(seq, n-1, maxCtx),
			Item:    seq.Events[n-1].Item,
		})
	}
	return Split{Train: train, Holdout: holdout}
}

// ItemStats aggregates per-item interaction counts from a log.
type ItemStats struct {
	// Count[t][i] is the number of events of type t on item i.
	Count [NumEventTypes][]int
	// Total[i] is the number of events of any type on item i.
	Total []int
}

// ComputeItemStats scans the log once; numItems must cover every item id
// present.
func ComputeItemStats(l *Log, numItems int) *ItemStats {
	s := &ItemStats{}
	for t := range s.Count {
		s.Count[t] = make([]int, numItems)
	}
	s.Total = make([]int, numItems)
	for _, e := range l.Events() {
		s.Count[e.Type][e.Item]++
		s.Total[e.Item]++
	}
	return s
}

// PopularityOrder returns item ids sorted by descending total interaction
// count. The hybrid recommender uses the head/tail division of this order.
func (s *ItemStats) PopularityOrder() []catalog.ItemID {
	ids := make([]catalog.ItemID, len(s.Total))
	for i := range ids {
		ids[i] = catalog.ItemID(i)
	}
	sort.SliceStable(ids, func(a, b int) bool { return s.Total[ids[a]] > s.Total[ids[b]] })
	return ids
}
