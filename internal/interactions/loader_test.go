package interactions

import (
	"bytes"
	"strings"
	"testing"
)

const sampleCSV = `user_id,item_id,type,time
0,3,view,100
0,3,search,101
1,7,cart,102
1,7,buy,103
2,5,conversion,104
`

func TestLoadCSV(t *testing.T) {
	l, err := LoadCSV(strings.NewReader(sampleCSV), 10)
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 5 {
		t.Fatalf("loaded %d events", l.Len())
	}
	events := l.Events()
	if events[0].User != 0 || events[0].Item != 3 || events[0].Type != View || events[0].Time != 100 {
		t.Fatalf("first event: %+v", events[0])
	}
	// "buy" is an alias for conversion.
	if events[3].Type != Conversion || events[4].Type != Conversion {
		t.Fatalf("buy alias: %+v %+v", events[3], events[4])
	}
}

func TestLoadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"bad header":    "a,b,c,d\n0,1,view,2\n",
		"bad user":      "user_id,item_id,type,time\nx,1,view,2\n",
		"negative user": "user_id,item_id,type,time\n-1,1,view,2\n",
		"bad item":      "user_id,item_id,type,time\n0,x,view,2\n",
		"bad type":      "user_id,item_id,type,time\n0,1,swipe,2\n",
		"bad time":      "user_id,item_id,type,time\n0,1,view,x\n",
		"wrong fields":  "user_id,item_id,type,time\n0,1,view\n",
		"out of range":  "user_id,item_id,type,time\n0,99,view,2\n",
		"empty":         "",
	}
	for name, in := range cases {
		if _, err := LoadCSV(strings.NewReader(in), 10); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// numItems=0 disables range validation.
	if _, err := LoadCSV(strings.NewReader("user_id,item_id,type,time\n0,99,view,2\n"), 0); err != nil {
		t.Errorf("range validation not disabled: %v", err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig, err := LoadCSV(strings.NewReader(sampleCSV), 10)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.SaveCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCSV(&buf, 10)
	if err != nil {
		t.Fatal(err)
	}
	a, b := orig.Events(), got.Events()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestParseEventType(t *testing.T) {
	for name, want := range map[string]EventType{
		"view": View, "search": Search, "cart": Cart, "conversion": Conversion, "buy": Conversion,
	} {
		got, err := ParseEventType(name)
		if err != nil || got != want {
			t.Errorf("ParseEventType(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseEventType("VIEW"); err == nil {
		t.Error("case-sensitive parse accepted uppercase")
	}
}
